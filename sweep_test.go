package preexec

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// stageCounts snapshots the heavy pipeline-stage probes of a Lab.
func stageCounts(lab *Lab) map[Stage]int64 {
	out := map[Stage]int64{}
	for _, st := range []Stage{StageTrace, StageProfile, StageProblems, StageSlices,
		StageCurves, StageBaseline, StageParams, StagePrepared} {
		out[st] = lab.StagePrepares(st)
	}
	return out
}

// TestSweepGridStageReuse is the acceptance probe of the staged pipeline: a
// 3-point single-axis sweep must perform exactly 1 trace, 1 profile and 1
// slice-tree build per benchmark (vs 3 under the monolithic preparation),
// rebuilding only the stages the axis actually touches.
func TestSweepGridStageReuse(t *testing.T) {
	ctx := context.Background()

	// Idle-energy axis: pure energy knob. Everything up to and including
	// the baseline simulation is shared; only params (and the assembled
	// view) rebuild per point.
	lab := New()
	if _, err := lab.Sweep(ctx, Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor)},
		Benchmarks: []string{"gap"},
		Targets:    []Target{TargetL},
	}); err != nil {
		t.Fatal(err)
	}
	got := stageCounts(lab)
	want := map[Stage]int64{
		StageTrace: 1, StageProfile: 1, StageProblems: 1, StageSlices: 1,
		StageCurves: 1, StageBaseline: 1, StageParams: 3, StagePrepared: 3,
	}
	for st, n := range want {
		if got[st] != n {
			t.Errorf("idle axis: StagePrepares(%s) = %d, want %d", st, got[st], n)
		}
	}
	if lab.StagePrepares(StagePrepared) != 3 {
		t.Errorf("idle axis: StagePrepares(prepared) = %d, want 3 (one assembly per point)", lab.StagePrepares(StagePrepared))
	}

	// Memory-latency axis: a timing knob. Trace, profile and slices are
	// still shared; curves, baseline and params rebuild per point.
	lab = New()
	if _, err := lab.Sweep(ctx, Grid{
		Axes:       []Axis{GridAxis(SweepMemLatency)},
		Benchmarks: []string{"gap"},
		Targets:    []Target{TargetL},
	}); err != nil {
		t.Fatal(err)
	}
	got = stageCounts(lab)
	want = map[Stage]int64{
		StageTrace: 1, StageProfile: 1, StageProblems: 1, StageSlices: 1,
		StageCurves: 3, StageBaseline: 3, StageParams: 3, StagePrepared: 3,
	}
	for st, n := range want {
		if got[st] != n {
			t.Errorf("mem axis: StagePrepares(%s) = %d, want %d", st, got[st], n)
		}
	}

	// L2-size axis: a cache-geometry knob the profiler reads. Only the
	// trace survives across points.
	lab = New()
	if _, err := lab.Sweep(ctx, Grid{
		Axes:       []Axis{GridAxis(SweepL2Size)},
		Benchmarks: []string{"gap"},
		Targets:    []Target{TargetL},
	}); err != nil {
		t.Fatal(err)
	}
	if n := lab.StagePrepares(StageTrace); n != 1 {
		t.Errorf("l2 axis: StagePrepares(trace) = %d, want 1", n)
	}
	if n := lab.StagePrepares(StageProfile); n != 3 {
		t.Errorf("l2 axis: StagePrepares(profile) = %d, want 3 (profiling reads L2 geometry)", n)
	}
}

// TestSweepMultiAxisGrid: a 2-axis grid enumerates the full cartesian
// product in deterministic benchmark-major, row-major order, and still
// builds each benchmark's trace exactly once.
func TestSweepMultiAxisGrid(t *testing.T) {
	ctx := context.Background()
	lab := New()
	grid := Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor), GridAxis(SweepMemLatency)},
		Benchmarks: []string{"gap"},
		Targets:    []Target{TargetL},
	}
	if grid.Points() != 9 {
		t.Fatalf("grid points = %d, want 9", grid.Points())
	}
	rep, err := lab.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 9 {
		t.Fatalf("report points = %d, want 9", len(rep.Points))
	}
	if len(rep.Axes) != 2 || rep.Axes[0] != "idle-energy-factor" || rep.Axes[1] != "memory-latency" {
		t.Errorf("axes = %v", rep.Axes)
	}
	// Row-major: first axis slowest.
	wantLabels := [][]string{
		{"0%", "100"}, {"0%", "200"}, {"0%", "300"},
		{"5%", "100"}, {"5%", "200"}, {"5%", "300"},
		{"10%", "100"}, {"10%", "200"}, {"10%", "300"},
	}
	for i, pt := range rep.Points {
		if pt.Bench != "gap" || strings.Join(pt.Labels, ",") != strings.Join(wantLabels[i], ",") {
			t.Errorf("point %d = %s@%v, want gap@%v", i, pt.Bench, pt.Labels, wantLabels[i])
		}
	}
	if n := lab.StagePrepares(StageTrace); n != 1 {
		t.Errorf("9-point grid built the trace %d times, want 1", n)
	}
	// The idle sub-axis never re-fingerprints the baseline: only the three
	// memory latencies do.
	if n := lab.StagePrepares(StageBaseline); n != 3 {
		t.Errorf("9-point grid ran %d baselines, want 3 (one per memory latency)", n)
	}
}

// TestSweepEnergyPointsReuseBaseline pins the Params fix: sweep points that
// only mutate energy parameters must reuse the cached baseline simulation
// while deriving per-point L0/E0 from it. Observables: exactly one baseline
// runs across the idle axis, yet each point's energy numbers differ (the
// per-point E0 and measured breakdowns are re-derived from the shared
// event counts), and the 0% point reproduces the paper's §5.4 observation
// that no E-p-thread survives selection.
func TestSweepEnergyPointsReuseBaseline(t *testing.T) {
	ctx := context.Background()
	lab := New()
	rep, err := lab.Sweep(ctx, Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor)},
		Benchmarks: []string{"vortex"},
		Targets:    []Target{TargetE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := lab.StagePrepares(StageBaseline); n != 1 {
		t.Fatalf("energy-only sweep ran %d baselines, want 1", n)
	}
	if n := lab.StagePrepares(StageParams); n != 3 {
		t.Fatalf("energy-only sweep derived params %d times, want 3 (per point)", n)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(rep.Points))
	}
	e := []float64{rep.Points[0].Runs[0].EnergyTotal, rep.Points[1].Runs[0].EnergyTotal, rep.Points[2].Runs[0].EnergyTotal}
	if !(e[0] < e[1] && e[1] < e[2]) {
		t.Errorf("measured energy must grow with the idle factor: %v", e)
	}
	if n := rep.Points[0].Runs[0].PThreads; n != 0 {
		t.Errorf("0%% idle point selected %d E-p-threads, want 0", n)
	}
}

// TestSweepReportRoundTrip: the sweep report must survive a JSON round trip
// byte-for-byte and render identically from the decoded form (the contract
// cmd/sweep -json | cmd/report -render relies on).
func TestSweepReportRoundTrip(t *testing.T) {
	ctx := context.Background()
	rep, err := New().Sweep(ctx, Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor)},
		Benchmarks: []string{"gap"},
		Targets:    []Target{TargetL},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded SweepReport
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("sweep report changed across round-trip:\n%s\nvs\n%s", raw, raw2)
	}
	if decoded.Render() != rep.Render() {
		t.Error("rendered sweep changed across the JSON round-trip")
	}
}

// TestFigure5MatchesSweepGrid: the grid-backed Figure5 must agree point for
// point with independently computed monolithic preparations (the
// numerically-identical-to-goldens requirement, exercised end to end).
func TestFigure5MatchesSweepGrid(t *testing.T) {
	ctx := context.Background()
	names := []string{"gap"}
	rep, err := New().Figure5(ctx, SweepMemLatency, names)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New().Sweep(ctx, Grid{
		Axes:       []Axis{GridAxis(SweepMemLatency)},
		Benchmarks: names,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(sw.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(rep.Points), len(sw.Points))
	}
	for i := range rep.Points {
		a, b := rep.Points[i], sw.Points[i]
		if a.Bench != b.Bench || a.Point != b.Labels[0] {
			t.Errorf("point %d identity: %s@%s vs %s@%v", i, a.Bench, a.Point, b.Bench, b.Labels)
		}
		ra, _ := json.Marshal(stripRunThroughput(a.Runs))
		rb, _ := json.Marshal(stripRunThroughput(b.Runs))
		if !bytes.Equal(ra, rb) {
			t.Errorf("point %d runs diverged:\n%s\nvs\n%s", i, ra, rb)
		}
	}
}

// stripRunThroughput zeroes the wall-clock throughput column so value
// comparisons see only deterministic fields.
func stripRunThroughput(runs []RunReport) []RunReport {
	out := append([]RunReport(nil), runs...)
	for i := range out {
		out[i].SimCyclesPerSec = 0
	}
	return out
}

// TestSweepConcurrentSingleflight hammers one engine with concurrent
// identical sweeps (run under -race in CI): the per-stage store must
// deduplicate every artifact build so the heavy stages still execute
// exactly once per benchmark.
func TestSweepConcurrentSingleflight(t *testing.T) {
	ctx := context.Background()
	lab := New(WithParallelism(8))
	grid := Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor)},
		Benchmarks: []string{"gap", "twolf"},
		Targets:    []Target{TargetL},
	}
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	reps := make([]*SweepReport, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reps[g], errs[g] = lab.Sweep(ctx, grid)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for _, st := range []Stage{StageTrace, StageProfile, StageSlices} {
		if n := lab.StagePrepares(st); n != 2 {
			t.Errorf("StagePrepares(%s) = %d, want 2 (one per benchmark) under concurrency", st, n)
		}
	}
	// All goroutines must agree on the (deterministic) values.
	want, _ := json.Marshal(stripSweepThroughput(reps[0]))
	for g := 1; g < goroutines; g++ {
		got, _ := json.Marshal(stripSweepThroughput(reps[g]))
		if !bytes.Equal(want, got) {
			t.Errorf("goroutine %d saw different sweep values", g)
		}
	}
}

func stripSweepThroughput(rep *SweepReport) *SweepReport {
	out := *rep
	out.Points = append([]SweepPointReport(nil), rep.Points...)
	for i := range out.Points {
		out.Points[i].Runs = stripRunThroughput(out.Points[i].Runs)
	}
	return &out
}
