package pthsel

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/slicer"
	"repro/internal/trace"
)

// Selection is the output of a selection run: the chosen p-threads ready for
// installation in the simulator, plus the model's aggregate predictions
// (used by the paper's validation experiment, Table 3).
type Selection struct {
	Target   Target
	PThreads []*cpu.PThread

	// Aggregate predictions over the selected set, after overlap
	// discounting: predicted cycles saved, energy saved, and composite
	// (ED^W) advantage.
	PredLADV float64
	PredEADV float64
	PredCADV float64

	// Chosen is the per-candidate detail, for diagnostics.
	Chosen []*Candidate

	// CandidatesEvaluated counts all tree nodes examined.
	CandidatesEvaluated int
}

// AvgPThreadLen returns the mean selected body length (the paper's "avg pth
// len" diagnostic).
func (s *Selection) AvgPThreadLen() float64 {
	if len(s.Chosen) == 0 {
		return 0
	}
	sum := 0
	for _, c := range s.Chosen {
		sum += c.Size
	}
	return float64(sum) / float64(len(s.Chosen))
}

// Select runs the full selection pipeline for one program: evaluate every
// slice-tree candidate under the target's objective, keep the positive set,
// apply parent/child overlap discounting (de-selecting candidates whose
// discounted advantage turns negative, eq. L7), and merge selected p-threads
// with common triggers (the paper's post-pass).
func Select(tr *trace.Trace, prof *profile.Profile, trees []*slicer.Tree, prm Params, target Target) *Selection {
	sel := &Selection{Target: target}

	// Evaluate every candidate.
	var all []*Candidate
	for _, tree := range trees {
		tree.Walk(func(n *slicer.Node) {
			sel.CandidatesEvaluated++
			c := evaluate(tree, n, tr.Prog, prof, prm, target)
			if c.DCptcm >= prm.MinDCptcm && c.objective(target, prm, 0) > 0 {
				all = append(all, c)
			}
		})
	}

	// Best-first greedy with overlap discounting (the paper's L7): rank by
	// undiscounted objective, then admit each candidate only if it remains
	// profitable after crediting misses already covered by selected
	// candidates on the same tree path. For an ancestor/descendant pair the
	// shared misses are the deeper node's coverage (its slices pass through
	// the shallower node). This keeps the sweet-spot candidate of each path
	// and admits siblings that add coverage (control forks).
	sort.Slice(all, func(i, j int) bool {
		oi, oj := all[i].objective(target, prm, 0), all[j].objective(target, prm, 0)
		if oi != oj {
			return oi > oj
		}
		if all[i].Node.PC != all[j].Node.PC {
			return all[i].Node.PC < all[j].Node.PC
		}
		return all[i].Node.Depth < all[j].Node.Depth
	})
	var selected []*Candidate
	for _, c := range all {
		overlap := 0.0
		dupTrigger := false
		for _, s := range selected {
			if s.Tree != c.Tree {
				continue
			}
			if s.Node.PC == c.Node.PC {
				// A same-trigger candidate for the same load is already
				// selected: this one is the same slice at a different
				// unroll phase. Admitting it would double the per-spawn
				// cost without being priced by the per-candidate model.
				dupTrigger = true
				break
			}
			if isAncestor(s.Node, c.Node) {
				overlap += c.DCptcm // c's slices pass through s
			} else if isAncestor(c.Node, s.Node) {
				overlap += s.DCptcm
			}
		}
		if dupTrigger {
			continue
		}
		if overlap > c.DCptcm {
			overlap = c.DCptcm
		}
		if c.objective(target, prm, overlap) > 0 {
			c.selected = true
			c.overlap = overlap
			selected = append(selected, c)
		}
	}

	// Aggregate discounted predictions over the selected set.
	for _, c := range selected {
		eff := c.DCptcm - c.overlap
		if eff < 0 {
			eff = 0
		}
		ladv := eff*c.PerMiss - c.LOHagg
		eadv := ladv*prm.Energy.IdlePerCycle() - c.EOHagg
		sel.PredLADV += ladv
		sel.PredEADV += eadv
		sel.Chosen = append(sel.Chosen, c)
	}
	sel.PredCADV = compositeADV(target.W(), prm.L0, prm.E0, sel.PredLADV, sel.PredEADV)

	sel.PThreads = assemble(sel.Chosen)
	return sel
}

// isAncestor reports whether a is a (strict or equal) ancestor of b in the
// slice tree.
func isAncestor(a, b *slicer.Node) bool {
	for cur := b; cur != nil; cur = cur.Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// assemble converts the chosen candidates into simulator p-threads, merging
// bodies that share a trigger PC when the merge is dataflow-safe.
func assemble(chosen []*Candidate) []*cpu.PThread {
	// Deterministic order: by trigger PC, then body size.
	sorted := append([]*Candidate(nil), chosen...)
	sort.Slice(sorted, func(i, j int) bool {
		ti := triggerPC(sorted[i])
		tj := triggerPC(sorted[j])
		if ti != tj {
			return ti < tj
		}
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].Tree.TargetPC < sorted[j].Tree.TargetPC
	})

	var out []*cpu.PThread
	for _, c := range sorted {
		trig := triggerPC(c)
		merged := false
		for _, pt := range out {
			if pt.TriggerPC != trig {
				continue
			}
			m, ok := slicer.MergeBodies(pt.Body, c.Body)
			if !ok {
				continue
			}
			// Only merge when the bodies genuinely share work: a merge that
			// appends a mostly-disjoint suffix doubles the spawn's energy
			// without the shared-prefix benefit the post-pass assumes.
			shared := len(pt.Body) + len(c.Body) - len(m)
			if shared*2 < len(c.Body) {
				continue
			}
			// Merging appends the new body's divergent suffix, so prior
			// target indices are unchanged. The new target (the new body's
			// last instruction) lands at the end of the merged body —
			// unless the new body was entirely contained in the prefix, in
			// which case it keeps its own index.
			newTarget := len(m) - 1
			if len(m) == len(pt.Body) { // fully contained
				newTarget = len(c.Body) - 1
			}
			pt.Body = m
			dup := false
			for _, t := range pt.Targets {
				if t == newTarget {
					dup = true
				}
			}
			if !dup {
				pt.Targets = append(pt.Targets, newTarget)
			}
			merged = true
			break
		}
		if merged {
			continue
		}
		out = append(out, &cpu.PThread{
			ID:        int32(len(out)),
			TriggerPC: trig,
			Body:      append([]isa.Inst(nil), c.Body...),
			Targets:   []int{len(c.Body) - 1},
			TargetPC:  c.Tree.TargetPC,
		})
	}
	return out
}

// triggerPC returns the candidate's trigger: the static PC of its earliest
// body instruction (the deepest tree node).
func triggerPC(c *Candidate) int32 { return c.Node.PC }
