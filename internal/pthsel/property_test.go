package pthsel

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: compositeADV at W=1 recovers the latency advantage exactly and
// at W=0 the energy advantage exactly, for any positive baselines and
// advantages smaller than them.
func TestCompositeEndpointsProperty(t *testing.T) {
	check := func(l0u, e0u, lu, eu uint32) bool {
		l0 := float64(l0u%1_000_000) + 1000
		e0 := float64(e0u%5_000_000) + 1000
		ladv := float64(lu) * l0 / (2 * float64(math.MaxUint32))
		eadv := float64(eu) * e0 / (2 * float64(math.MaxUint32))
		w1 := compositeADV(1, l0, e0, ladv, eadv)
		w0 := compositeADV(0, l0, e0, ladv, eadv)
		return math.Abs(w1-ladv) < 1e-6*l0 && math.Abs(w0-eadv) < 1e-6*e0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: compositeADV is monotone in both advantages for any W in (0,1).
func TestCompositeMonotoneProperty(t *testing.T) {
	check := func(wu uint8, lu, eu uint16) bool {
		w := (float64(wu%99) + 1) / 100
		l0, e0 := 1e6, 4e6
		ladv := float64(lu % 10000)
		eadv := float64(eu % 10000)
		base := compositeADV(w, l0, e0, ladv, eadv)
		moreL := compositeADV(w, l0, e0, ladv+1000, eadv)
		moreE := compositeADV(w, l0, e0, ladv, eadv+1000)
		return moreL >= base-1e-9 && moreE >= base-1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: composite advantage of zero advantages is zero and negative
// advantages compose to a negative composite (for interior W).
func TestCompositeSignProperty(t *testing.T) {
	check := func(lu, eu uint16) bool {
		l0, e0 := 1e6, 4e6
		loss := compositeADV(0.5, l0, e0, -float64(lu%10000)-1, -float64(eu%10000)-1)
		return loss < 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	if compositeADV(0.5, 1e6, 4e6, 0, 0) != 0 {
		t.Error("zero advantages must compose to zero")
	}
}
