package pthsel

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/critpath"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/slicer"
	"repro/internal/trace"
)

func TestTargetNamesAndWeights(t *testing.T) {
	cases := []struct {
		tgt  Target
		name string
		w    float64
	}{
		{TargetO, "O", 1},
		{TargetL, "L", 1},
		{TargetE, "E", 0},
		{TargetP, "P", 0.5},
		{TargetP2, "P2", 0.67},
	}
	for _, c := range cases {
		if c.tgt.String() != c.name {
			t.Errorf("target name = %q, want %q", c.tgt.String(), c.name)
		}
		if c.tgt.W() != c.w {
			t.Errorf("W(%s) = %v, want %v", c.name, c.tgt.W(), c.w)
		}
	}
}

func TestCompositeADVReducesToComponents(t *testing.T) {
	l0, e0 := 1e6, 5e6
	ladv, eadv := 1e5, 2e5
	// W=1: CADV = L0 - (L0-LADV) = LADV exactly.
	if got := compositeADV(1, l0, e0, ladv, eadv); math.Abs(got-ladv) > 1e-6 {
		t.Errorf("W=1 composite = %v, want %v", got, ladv)
	}
	// W=0: CADV = E0 - (E0-EADV) = EADV exactly.
	if got := compositeADV(0, l0, e0, ladv, eadv); math.Abs(got-eadv) > 1e-6 {
		t.Errorf("W=0 composite = %v, want %v", got, eadv)
	}
}

func TestCompositeADVMonotone(t *testing.T) {
	l0, e0 := 1e6, 5e6
	base := compositeADV(0.5, l0, e0, 1e5, 1e5)
	if compositeADV(0.5, l0, e0, 2e5, 1e5) <= base {
		t.Error("composite not monotone in LADV")
	}
	if compositeADV(0.5, l0, e0, 1e5, 2e5) <= base {
		t.Error("composite not monotone in EADV")
	}
	if compositeADV(0.5, l0, e0, 0, 0) != 0 {
		t.Error("zero advantages must compose to zero")
	}
	// Degenerate baselines.
	if compositeADV(0.5, 0, e0, 1, 1) != 0 {
		t.Error("degenerate L0 must yield 0")
	}
}

func TestCompositeADVNegativeEADV(t *testing.T) {
	// A latency gain with an energy loss: ED advantage must fall between
	// the pure-latency and pure-energy views and stay finite.
	l0, e0 := 1e6, 5e6
	got := compositeADV(0.5, l0, e0, 1e5, -2e5)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatal("composite not finite")
	}
	if got >= compositeADV(0.5, l0, e0, 1e5, 0) {
		t.Error("energy loss must reduce the composite")
	}
}

// testWorkload builds a stride-miss loop with filler work — the canonical
// pre-executable workload — and returns everything selection needs.
func testWorkload(t *testing.T, iters, filler int) (*trace.Trace, *profile.Profile, []*slicer.Tree, Params) {
	t.Helper()
	const (
		rI, rN, rAddr, rV, rAcc, rC, rF = isa.Reg(1), isa.Reg(2), isa.Reg(3),
			isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7)
	)
	b := isa.NewBuilder("wl")
	b.MovI(rI, 0)
	b.MovI(rN, int64(iters))
	b.Label("top")
	b.AddI(rI, rI, 1)
	b.ShlI(rAddr, rI, 6)
	b.Load(rV, rAddr, 0)
	b.Add(rAcc, rAcc, rV)
	for k := 0; k < filler; k++ {
		b.AddI(rF, rF, 1)
	}
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(make([]int64, iters*8+16))
	tr := trace.MustRun(b.MustBuild())

	// Disable the conventional stride prefetcher: this synthetic loop is a
	// pure stride walk, and the tests are about selection mechanics.
	hier := cache.DefaultHierConfig()
	hier.StrideEntries = 0
	prof := profile.Collect(tr, profile.ConfigFromHier(hier))
	problems := prof.ProblemLoads(0.9, 50)
	if len(problems) == 0 {
		t.Fatal("workload has no problem loads")
	}
	trees := slicer.BuildTrees(tr, prof, problems, slicer.DefaultConfig())

	cp := critpath.New(tr, prof, critpath.DefaultConfig(hier))
	curves := make(map[int32]critpath.Curve)
	for _, ls := range problems {
		curves[ls.PC] = cp.CostCurve(ls.PC)
	}
	baseline := float64(cp.Baseline())
	prm := Params{
		BWSEQproc: 6,
		BWSEQmt:   float64(tr.Len()) / baseline,
		MissLat:   float64(hier.MemLatency),
		LatL1:     float64(hier.L1D.HitLatency),
		LatL2:     float64(hier.L1D.HitLatency + hier.L2.HitLatency),
		LatMem:    float64(hier.L1D.HitLatency + hier.L2.HitLatency + hier.MemLatency),
		Energy:    energy.DefaultParams(),
		L0:        baseline,
		E0:        baseline * 30, // rough absolute energy; only ratios matter
		Curves:    curves,
	}
	return tr, prof, trees, prm
}

func TestSelectLatencyProducesHoistedPThreads(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 4800, 20)
	sel := Select(tr, prof, trees, prm, TargetL)
	if len(sel.PThreads) == 0 {
		t.Fatal("no p-threads selected for an ideal pre-execution workload")
	}
	for _, pt := range sel.PThreads {
		if err := pt.Validate(); err != nil {
			t.Errorf("selected p-thread invalid: %v", err)
		}
	}
	if sel.PredLADV <= 0 {
		t.Error("predicted latency advantage must be positive")
	}
	// The selected body must contain a collapsed induction — evidence of
	// hoisting via induction unrolling (i += k with k > 1).
	found := false
	for _, pt := range sel.PThreads {
		for _, in := range pt.Body {
			if in.Op == isa.AddI && in.Dst == in.Src1 && in.Imm > 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no collapsed induction (i += k) in any selected body")
	}
}

func TestSelectTargetsAreOrdered(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 4800, 20)
	selL := Select(tr, prof, trees, prm, TargetL)
	selE := Select(tr, prof, trees, prm, TargetE)
	selP := Select(tr, prof, trees, prm, TargetP)

	// Model-space robustness: L maximizes predicted latency advantage,
	// E maximizes predicted energy advantage.
	if selL.PredLADV < selE.PredLADV-1e-6 {
		t.Errorf("L predicts less latency gain (%v) than E (%v)", selL.PredLADV, selE.PredLADV)
	}
	if selE.PredEADV < selL.PredEADV-1e-6 {
		t.Errorf("E predicts less energy gain (%v) than L (%v)", selE.PredEADV, selL.PredEADV)
	}
	// E-p-threads only pay for themselves: every chosen candidate's
	// discounted energy objective was positive.
	for _, c := range selE.Chosen {
		if c.EADVagg <= 0 {
			t.Errorf("E target selected a candidate with EADVagg = %v", c.EADVagg)
		}
	}
	// ED sits between: its predicted LADV between E's and L's.
	if selP.PredLADV > selL.PredLADV+1e-6 {
		t.Error("P predicts more latency gain than L")
	}
	_ = selP
}

func TestSelectOWithFlatModelIsMoreAggressive(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 4800, 20)
	selO := Select(tr, prof, trees, prm, TargetO)
	selL := Select(tr, prof, trees, prm, TargetL)
	if len(selO.PThreads) == 0 {
		t.Fatal("O selected nothing")
	}
	// The flat model over-credits latency tolerance, so O's predicted
	// advantage is at least L's (same candidates, inflated gains).
	if selO.PredLADV < selL.PredLADV-1e-6 {
		t.Errorf("O prediction %v below L prediction %v", selO.PredLADV, selL.PredLADV)
	}
	// O's selections are roughly as long/aggressive on average (the flat
	// model's sweet spot can differ per path by an instruction or two).
	if selO.AvgPThreadLen() < selL.AvgPThreadLen()-2 {
		t.Errorf("O avg body %v much shorter than L %v", selO.AvgPThreadLen(), selL.AvgPThreadLen())
	}
}

func TestZeroIdleFactorKillsEPThreads(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 4800, 20)
	prm.Energy.IdleFactor = 0
	selE := Select(tr, prof, trees, prm, TargetE)
	// With Eidle/c = 0, EREDagg is zero and every EADVagg is negative: the
	// paper's observation that no E-p-threads exist at a 0% idle factor.
	if len(selE.PThreads) != 0 {
		t.Errorf("E target selected %d p-threads with zero idle energy", len(selE.PThreads))
	}
}

func TestSelectionDeterminism(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 3000, 16)
	a := Select(tr, prof, trees, prm, TargetP)
	b := Select(tr, prof, trees, prm, TargetP)
	if len(a.PThreads) != len(b.PThreads) || a.PredLADV != b.PredLADV {
		t.Fatal("selection not deterministic")
	}
	for i := range a.PThreads {
		if a.PThreads[i].TriggerPC != b.PThreads[i].TriggerPC ||
			len(a.PThreads[i].Body) != len(b.PThreads[i].Body) {
			t.Fatal("p-thread sets differ between runs")
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 3000, 16)
	tree := trees[0]
	var anyNode *slicer.Node
	tree.Walk(func(n *slicer.Node) {
		if n.Depth >= 3 && anyNode == nil {
			anyNode = n
		}
	})
	if anyNode == nil {
		t.Fatal("no deep node")
	}
	c := evaluate(tree, anyNode, tr.Prog, prof, prm, TargetL)
	if c.Size <= 0 || c.Size > anyNode.Depth {
		t.Errorf("size %d vs depth %d", c.Size, anyNode.Depth)
	}
	if c.Loads < 1 {
		t.Error("body must include the target load")
	}
	if c.DCtrig <= 0 || c.DCptcm <= 0 {
		t.Error("dynamic counts missing")
	}
	if c.EOH <= 0 {
		t.Error("energy overhead must be positive")
	}
	// E5: fetch energy quantized in processor-width blocks.
	wantEf := math.Ceil(float64(c.Size)/prm.BWSEQproc) * prm.Energy.FetchBlock
	ex := float64(c.Size)*prm.Energy.ExecAll + float64(c.ALUs)*prm.Energy.ExecALU + float64(c.Loads)*prm.Energy.ExecLoad
	if c.EOH < wantEf+ex-1e-9 {
		t.Errorf("EOH %v below fetch+exec %v", c.EOH, wantEf+ex)
	}
}

func TestOverlapDiscounting(t *testing.T) {
	tr, prof, trees, prm := testWorkload(t, 4800, 20)
	sel := Select(tr, prof, trees, prm, TargetL)
	// Total predicted advantage must not exceed the undiscounted sum of
	// advantages (discounting can only reduce) and must not double-count:
	// it cannot exceed total misses × max per-miss gain.
	var rawSum, maxGain float64
	for _, c := range sel.Chosen {
		rawSum += c.LADVagg
		if c.PerMiss > maxGain {
			maxGain = c.PerMiss
		}
	}
	if sel.PredLADV > rawSum+1e-6 {
		t.Errorf("discounted total %v exceeds raw sum %v", sel.PredLADV, rawSum)
	}
	totalMisses := float64(prof.TotalL2)
	if sel.PredLADV > totalMisses*maxGain*1.05 {
		t.Errorf("predicted advantage %v exceeds coverage bound %v", sel.PredLADV, totalMisses*maxGain)
	}
}
