// Package pthsel implements the paper's primary contribution: the analytical
// p-thread selection frameworks.
//
// PTHSEL (Roth & Sohi, MICRO-35; the paper's Table 1) evaluates every slice-
// tree candidate with the aggregate latency advantage
//
//	LADVagg(p) = DCptcm(p)·LRED(p) − DCtrig(p)·LOH(p)          (L1–L3)
//	LOH(p)     = (SIZE(p)/BWSEQproc)·(BWSEQmt/BWSEQproc)       (L4)
//
// and selects the positive-advantage set, discounting parents by the
// coverage of selected children (L7).
//
// This package also implements both of the paper's extensions:
//
//   - the criticality-based load cost model (§4.1): LRED is passed through a
//     per-load latency-reduction → execution-time-reduction curve computed by
//     the critpath package, replacing the flat cycle-for-cycle assumption;
//
//   - PTHSEL+E (§4.2, Table 2): the explicit energy model
//
//     EADVagg(p) = LADVagg(p)·Eidle/c − DCtrig(p)·EOH(p)         (E1–E3)
//     EOH(p)     = Ef(p) + Ex(p) + EL2(p)                        (E4–E7)
//
//     and the composite advantage (C1)
//
//     CADVagg(p) = L0^W·E0^(1−W) − (L0−LADVagg)^W·(E0−EADVagg)^(1−W)
//
// which retargets selection at latency (W=1), energy (W=0), ED (W=0.5) or
// ED² (W=0.67).
package pthsel

import (
	"math"

	"repro/internal/critpath"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/slicer"
)

// Target selects the optimization objective, named as in the paper's
// evaluation: O-p-threads (original flat-cost PTHSEL), L (latency with the
// criticality model), E (energy), P (ED), P2 (ED²).
type Target int

// Selection targets.
const (
	TargetO  Target = iota // original PTHSEL: flat miss-cost model, latency objective
	TargetL                // PTHSEL+E latency: criticality-based cost model
	TargetE                // PTHSEL+E energy (W = 0)
	TargetP                // PTHSEL+E ED (W = 0.5)
	TargetP2               // PTHSEL+E ED² (W = 0.67)
)

// String names the target as the paper's figures do.
func (t Target) String() string {
	switch t {
	case TargetO:
		return "O"
	case TargetL:
		return "L"
	case TargetE:
		return "E"
	case TargetP:
		return "P"
	default:
		return "P2"
	}
}

// W returns the composition weight parameter (C2) of the target.
func (t Target) W() float64 {
	switch t {
	case TargetO, TargetL:
		return 1
	case TargetE:
		return 0
	case TargetP:
		return 0.5
	default:
		return 0.67
	}
}

// Params carries the external parameters of the selection equations.
type Params struct {
	BWSEQproc float64 // processor sequencing width (L5)
	BWSEQmt   float64 // unoptimized main-thread IPC (L6)
	MissLat   float64 // Lcm: full L2-miss latency (L5)

	// Per-hierarchy-level load-use latencies, for estimating the execution
	// time of p-thread bodies with embedded loads.
	LatL1, LatL2, LatMem float64

	Energy energy.Params // supplies Ef/a, Exall/a, Exalu/a, Exload/a, EL2/a, Eidle/c (E8)

	L0 float64 // unoptimized execution time (C2)
	E0 float64 // unoptimized energy, absolute, including idle (C2)

	// Curves maps problem-load PCs to criticality cost curves. Targets
	// other than O require an entry per tree; TargetO always uses the flat
	// curve regardless.
	Curves map[int32]critpath.Curve

	// MinDCptcm drops candidates covering fewer (scaled) misses: tiny
	// one-off slices (e.g. triggered at loop-entry code that executes once)
	// pass the positive-advantage test but are statistical noise.
	MinDCptcm float64
}

// Candidate is one evaluated (trigger, body) pair with its model metrics.
type Candidate struct {
	Tree *slicer.Tree
	Node *slicer.Node

	Body    []isa.Inst // optimized body (inductions collapsed)
	Size    int        // SIZE(p) after optimization
	Loads   int        // LOAD(p): embedded loads + target
	ALUs    int        // ALU(p)
	DCtrig  float64
	DCptcm  float64 // scaled to full-run misses
	Dist    float64 // mean trigger→target dynamic distance (instructions)
	LRED    float64 // tolerated latency per covered miss (cycles)
	PerMiss float64 // execution-time gain per covered miss (curve(LRED))

	LOHagg  float64 // aggregate latency overhead (L2)
	LADVagg float64 // aggregate latency advantage (L1), before overlap discount
	EOH     float64 // per-instance energy overhead (E4)
	EOHagg  float64 // aggregate energy overhead (E3)
	EADVagg float64 // aggregate energy advantage (E1)

	selected bool
	overlap  float64 // misses credited to other selected candidates on the same path
}

// Objective returns the candidate's advantage under the target, given
// effective (possibly overlap-discounted) coverage.
func (c *Candidate) objective(t Target, prm Params, coveredBelow float64) float64 {
	eff := c.DCptcm - coveredBelow
	if eff < 0 {
		eff = 0
	}
	ladv := eff*c.PerMiss - c.LOHagg
	eadv := ladv*prm.Energy.IdlePerCycle() - c.EOHagg
	switch t {
	case TargetO, TargetL:
		return ladv
	case TargetE:
		return eadv
	default:
		return compositeADV(t.W(), prm.L0, prm.E0, ladv, eadv)
	}
}

// compositeADV implements equation C1. Advantages approaching the absolute
// baselines are clamped (they cannot exceed them physically; the model's
// aggressiveness occasionally predicts more).
func compositeADV(w, l0, e0, ladv, eadv float64) float64 {
	if l0 <= 0 || e0 <= 0 {
		return 0
	}
	lrem := l0 - ladv
	if lrem < 1 {
		lrem = 1
	}
	erem := e0 - eadv
	if erem < 1 {
		erem = 1
	}
	return math.Pow(l0, w)*math.Pow(e0, 1-w) - math.Pow(lrem, w)*math.Pow(erem, 1-w)
}

// evaluate computes the model metrics of one slice-tree node.
func evaluate(tree *slicer.Tree, node *slicer.Node, prog *isa.Program, prof *profile.Profile, prm Params, t Target) *Candidate {
	rawBody := node.Body(prog)
	pcs := pathPCs(node) // static PC of each raw body instruction
	body := slicer.OptimizeBody(rawBody)
	c := &Candidate{
		Tree:   tree,
		Node:   node,
		Body:   body,
		Size:   len(body),
		DCtrig: float64(node.DCtrig),
		DCptcm: float64(node.DCptcm) * tree.Scale,
		Dist:   node.MeanDist(),
	}
	for _, in := range body {
		switch {
		case in.IsLoad():
			c.Loads++
		case in.IsALU():
			c.ALUs++
		}
	}

	// --- Latency model (Table 1). ---
	// The main thread reaches the target Dist instructions after the
	// trigger; the p-thread issues its target after sequencing the body at
	// 1 IPC and waiting for embedded loads (estimated at their main-program
	// service levels). Optimization never removes loads, so the raw body's
	// PCs identify them exactly.
	tMain := c.Dist / prm.BWSEQmt
	tPth := float64(c.Size)
	for i, in := range rawBody {
		if in.IsLoad() && i != len(rawBody)-1 {
			tPth += embeddedLoadLatency(prof, pcs[i], prm)
		}
	}
	lred := tMain - tPth
	if lred < 0 {
		lred = 0
	}
	if lred > prm.MissLat {
		lred = prm.MissLat
	}
	c.LRED = lred

	curve := critpath.FlatCurve(prm.MissLat)
	if t != TargetO {
		if cv, ok := prm.Curves[tree.TargetPC]; ok {
			curve = cv
		}
	}
	c.PerMiss = curve.GainAt(lred)

	loh := (float64(c.Size) / prm.BWSEQproc) * (prm.BWSEQmt / prm.BWSEQproc) // L4
	c.LOHagg = c.DCtrig * loh                                                // L2
	c.LADVagg = c.DCptcm*c.PerMiss - c.LOHagg                                // L1, L3

	// --- Energy model (Table 2). ---
	ep := prm.Energy
	ef := math.Ceil(float64(c.Size)/prm.BWSEQproc) * ep.FetchBlock                               // E5
	ex := float64(c.Size)*ep.ExecAll + float64(c.ALUs)*ep.ExecALU + float64(c.Loads)*ep.ExecLoad // E6
	el2 := 0.0                                                                                   // E7
	for i, in := range rawBody {
		if !in.IsLoad() {
			continue
		}
		if i == len(rawBody)-1 {
			el2 += ep.L2Access // the target load always accesses the L2
		} else if ls, ok := prof.Loads[pcs[i]]; ok {
			el2 += ls.L1MissRate() * ep.L2Access
		}
	}
	c.EOH = ef + ex + el2
	c.EOHagg = c.DCtrig * c.EOH                        // E3
	c.EADVagg = c.LADVagg*ep.IdlePerCycle() - c.EOHagg // E1, E2

	return c
}

// pathPCs returns the static PC of each raw body instruction, in body
// (execution) order: the node itself is body[0], the root load is last.
func pathPCs(node *slicer.Node) []int32 {
	var pcs []int32
	for n := node; n != nil; n = n.Parent {
		pcs = append(pcs, n.PC)
	}
	return pcs
}

// embeddedLoadLatency estimates an embedded p-thread load’s latency from
// the main program’s service-level statistics for the same static load
// (eq. E7’s assumption: embedded p-thread loads miss at the rate of the
// corresponding main-program load).
func embeddedLoadLatency(prof *profile.Profile, pc int32, prm Params) float64 {
	ls, ok := prof.Loads[pc]
	if !ok || ls.Execs == 0 {
		return prm.LatL1
	}
	l1m := ls.L1MissRate()
	l2m := float64(ls.L2Misses) / float64(ls.Execs)
	return prm.LatL1 + l1m*(prm.LatL2-prm.LatL1) + l2m*(prm.LatMem-prm.LatL2)
}
