package pthsel

import (
	"repro/internal/critpath"
	"repro/internal/energy"
	"repro/internal/fingerprint"
)

// DeriveConfig captures exactly the configuration the selection-params
// derivation stage reads: sequencing bandwidth, hierarchy latencies, the
// energy model and the candidate coverage floor. Everything else in Params
// is measured (baseline cycles, energy, IPC) or an upstream artifact (the
// criticality curves), so the staged pipeline keys the params artifact on
// this struct plus the baseline and curve fingerprints — which is what lets
// an energy-only sweep point rebuild params without re-simulating.
type DeriveConfig struct {
	BWSEQproc float64 // processor sequencing width (L5)
	MissLat   float64 // Lcm: full L2-miss latency (L5)

	// Per-hierarchy-level load-use latencies (body execution estimates).
	LatL1, LatL2, LatMem float64

	Energy energy.Params // supplies the E8 constants and Eidle/c

	// MinDCptcm drops candidates covering fewer (scaled) misses.
	MinDCptcm float64
}

// Fingerprint returns the content fingerprint of the derivation config.
func (c DeriveConfig) Fingerprint() (string, error) { return fingerprint.JSON(c) }

// Derive assembles the selection Params from the baseline measurements
// (unoptimized cycles L0, energy E0 and IPC) and the criticality curves.
func (c DeriveConfig) Derive(l0, e0, ipc float64, curves map[int32]critpath.Curve) Params {
	return Params{
		BWSEQproc: c.BWSEQproc,
		BWSEQmt:   ipc,
		MissLat:   c.MissLat,
		LatL1:     c.LatL1,
		LatL2:     c.LatL2,
		LatMem:    c.LatMem,
		Energy:    c.Energy,
		L0:        l0,
		E0:        e0,
		Curves:    curves,
		MinDCptcm: c.MinDCptcm,
	}
}
