package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Add: "add", Load: "ld", Store: "st", BrNZ: "brnz", Halt: "halt",
		MovI: "movi", CmpLTI: "cmplti",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestOpValid(t *testing.T) {
	if !Add.Valid() || !Halt.Valid() {
		t.Error("defined opcodes must be valid")
	}
	if Op(250).Valid() || numOps.Valid() {
		t.Error("out-of-range opcodes must be invalid")
	}
}

func TestInstClassifiers(t *testing.T) {
	ld := Inst{Op: Load, Dst: 1, Src1: 2}
	st := Inst{Op: Store, Src1: 2, Src2: 3}
	br := Inst{Op: BrNZ, Src1: 1, Target: 0}
	jp := Inst{Op: Jmp}
	add := Inst{Op: Add, Dst: 1, Src1: 2, Src2: 3}
	mv := Inst{Op: MovI, Dst: 1, Imm: 7}

	if !ld.IsLoad() || ld.IsStore() || !ld.IsMem() || ld.IsALU() || ld.IsBranch() {
		t.Error("load misclassified")
	}
	if !st.IsStore() || st.IsLoad() || !st.IsMem() || st.HasDst() {
		t.Error("store misclassified")
	}
	if !br.IsBranch() || !br.IsControl() || br.IsJump() {
		t.Error("branch misclassified")
	}
	if !jp.IsJump() || !jp.IsControl() || jp.IsBranch() {
		t.Error("jump misclassified")
	}
	if !add.IsALU() || !add.HasDst() || add.IsMem() || add.IsControl() {
		t.Error("add misclassified")
	}
	if !mv.IsALU() || !mv.HasDst() || mv.ReadsSrc1() {
		t.Error("movi misclassified")
	}
}

func TestHasDstZeroRegister(t *testing.T) {
	toZero := Inst{Op: Add, Dst: Zero, Src1: 1, Src2: 2}
	if toZero.HasDst() {
		t.Error("writes to R0 must report no destination")
	}
}

func TestSources(t *testing.T) {
	add := Inst{Op: Add, Src1: 4, Src2: 5}
	s1, s2, r1, r2 := add.Sources()
	if !r1 || !r2 || s1 != 4 || s2 != 5 {
		t.Errorf("add sources = (%d,%v),(%d,%v)", s1, r1, s2, r2)
	}
	ld := Inst{Op: Load, Src1: 6}
	s1, _, r1, r2 = ld.Sources()
	if !r1 || r2 || s1 != 6 {
		t.Error("load must read only its base register")
	}
	mv := Inst{Op: MovI}
	_, _, r1, r2 = mv.Sources()
	if r1 || r2 {
		t.Error("movi reads no registers")
	}
	st := Inst{Op: Store, Src1: 1, Src2: 2}
	_, s2, r1, r2 = st.Sources()
	if !r1 || !r2 || s2 != 2 {
		t.Error("store must read base and data registers")
	}
}

func TestExecLatency(t *testing.T) {
	if (Inst{Op: Add}).ExecLatency() != 1 {
		t.Error("add latency must be 1")
	}
	if (Inst{Op: Mul}).ExecLatency() != 3 || (Inst{Op: MulI}).ExecLatency() != 3 {
		t.Error("mul latency must be 3")
	}
	if (Inst{Op: Div}).ExecLatency() != 20 {
		t.Error("div latency must be 20")
	}
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		in     Inst
		v1, v2 int64
		want   int64
	}{
		{Inst{Op: Add}, 3, 4, 7},
		{Inst{Op: Sub}, 3, 4, -1},
		{Inst{Op: Mul}, 3, 4, 12},
		{Inst{Op: Div}, 12, 4, 3},
		{Inst{Op: Div}, 12, 0, 0},
		{Inst{Op: And}, 6, 3, 2},
		{Inst{Op: Or}, 6, 3, 7},
		{Inst{Op: Xor}, 6, 3, 5},
		{Inst{Op: Shl}, 1, 4, 16},
		{Inst{Op: Shr}, 16, 4, 1},
		{Inst{Op: Shr}, -1, 63, 1},
		{Inst{Op: CmpLT}, 1, 2, 1},
		{Inst{Op: CmpLT}, 2, 1, 0},
		{Inst{Op: CmpEQ}, 5, 5, 1},
		{Inst{Op: AddI, Imm: 10}, 5, 0, 15},
		{Inst{Op: SubI, Imm: 10}, 5, 0, -5},
		{Inst{Op: MulI, Imm: 3}, 5, 0, 15},
		{Inst{Op: AndI, Imm: 1}, 3, 0, 1},
		{Inst{Op: OrI, Imm: 8}, 3, 0, 11},
		{Inst{Op: XorI, Imm: 1}, 3, 0, 2},
		{Inst{Op: ShlI, Imm: 3}, 2, 0, 16},
		{Inst{Op: ShrI, Imm: 1}, 16, 0, 8},
		{Inst{Op: CmpLTI, Imm: 4}, 3, 0, 1},
		{Inst{Op: CmpEQI, Imm: 4}, 4, 0, 1},
		{Inst{Op: MovI, Imm: 42}, 0, 0, 42},
	}
	for _, c := range cases {
		got, err := c.in.Eval(c.v1, c.v2)
		if err != nil {
			t.Errorf("%s.Eval(%d,%d): %v", c.in.Op, c.v1, c.v2, err)
		}
		if got != c.want {
			t.Errorf("%s.Eval(%d,%d) = %d, want %d", c.in.Op, c.v1, c.v2, got, c.want)
		}
	}
}

// TestEvalErrorsOnNonALU pins the panic-path fix: Eval on a non-ALU
// instruction reports an error instead of crashing the caller.
func TestEvalErrorsOnNonALU(t *testing.T) {
	for _, op := range []Op{Nop, Load, Store, BrZ, BrNZ, Jmp, Halt} {
		if _, err := (Inst{Op: op}).Eval(0, 0); err == nil {
			t.Errorf("Eval on %s: want error, got nil", op)
		}
	}
}

// evalOK is the old single-value Eval for tests of ALU-only instructions.
func evalOK(t *testing.T, in Inst, v1, v2 int64) int64 {
	t.Helper()
	v, err := in.Eval(v1, v2)
	if err != nil {
		t.Fatalf("%s.Eval: %v", in.Op, err)
	}
	return v
}

// Property: Add/Sub round-trips and shift semantics match Go's for any inputs.
func TestEvalProperties(t *testing.T) {
	addSub := func(a, b int64) bool {
		s := evalOK(t, Inst{Op: Add}, a, b)
		return evalOK(t, Inst{Op: Sub}, s, b) == a
	}
	if err := quick.Check(addSub, nil); err != nil {
		t.Error(err)
	}
	xorInvolution := func(a, b int64) bool {
		x := evalOK(t, Inst{Op: Xor}, a, b)
		return evalOK(t, Inst{Op: Xor}, x, b) == a
	}
	if err := quick.Check(xorInvolution, nil); err != nil {
		t.Error(err)
	}
	cmpAntisym := func(a, b int64) bool {
		lt := evalOK(t, Inst{Op: CmpLT}, a, b)
		gt := evalOK(t, Inst{Op: CmpLT}, b, a)
		return !(lt == 1 && gt == 1)
	}
	if err := quick.Check(cmpAntisym, nil); err != nil {
		t.Error(err)
	}
}

// TestValidateRejectsWildRegisters pins the mid-sim crash fix: a raw Inst
// with a register operand past the architectural file — expressible because
// Reg is a uint8 — is rejected at Validate time instead of panicking inside
// the interpreter's register-array indexing.
func TestValidateRejectsWildRegisters(t *testing.T) {
	cases := []Inst{
		{Op: Add, Dst: 70, Src1: 1, Src2: 2},
		{Op: Add, Dst: 1, Src1: 200, Src2: 2},
		{Op: Load, Dst: 1, Src1: NumRegs},
		{Op: MovI, Dst: 1, Src2: 255}, // dead operand still indexes the file
	}
	for _, in := range cases {
		p := &Program{Name: "wild", Insts: []Inst{in, {Op: Halt}}}
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", in)
		}
	}
	ok := &Program{Name: "ok", Insts: []Inst{{Op: Add, Dst: 63, Src1: 63, Src2: 63}, {Op: Halt}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected in-range registers: %v", err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Nop}, "nop"},
		{Inst{Op: Halt}, "halt"},
		{Inst{Op: Jmp, Target: 5}, "jmp 5"},
		{Inst{Op: BrZ, Src1: 3, Target: 9}, "brz r3, 9"},
		{Inst{Op: Load, Dst: 1, Src1: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Inst{Op: Store, Src1: 2, Src2: 4, Imm: 16}, "st r4, 16(r2)"},
		{Inst{Op: MovI, Dst: 7, Imm: 3}, "movi r7, 3"},
		{Inst{Op: Add, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
		{Inst{Op: AddI, Dst: 1, Src1: 2, Imm: 4}, "addi r1, r2, 4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	ok := &Program{Name: "ok", Insts: []Inst{{Op: Jmp, Target: 1}, {Op: Halt}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	empty := &Program{Name: "empty"}
	if empty.Validate() == nil {
		t.Error("empty program accepted")
	}
	badEntry := &Program{Name: "bad", Insts: []Inst{{Op: Halt}}, Entry: 3}
	if badEntry.Validate() == nil {
		t.Error("bad entry accepted")
	}
	badTarget := &Program{Name: "bad", Insts: []Inst{{Op: Jmp, Target: 9}}}
	if badTarget.Validate() == nil {
		t.Error("out-of-range target accepted")
	}
	badOp := &Program{Name: "bad", Insts: []Inst{{Op: Op(99)}}}
	if badOp.Validate() == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestMemBytes(t *testing.T) {
	p := &Program{InitMem: make([]int64, 10)}
	if p.MemBytes() != 80 {
		t.Errorf("MemBytes = %d, want 80", p.MemBytes())
	}
}
