package isa

import "fmt"

// Builder assembles a Program incrementally with symbolic labels, the way a
// tiny assembler would. Branch targets may be referenced before they are
// defined; Build resolves all fixups.
//
// All emit methods return the PC of the emitted instruction so workload
// generators can record the static PCs of instructions they care about
// (e.g. problem loads).
type Builder struct {
	name   string
	insts  []Inst
	labels map[string]int
	fixups []fixup
	mem    []int64
	err    error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// PC returns the address the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a symbolic label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("builder %q: duplicate label %q", b.name, name)
	}
	b.labels[name] = len(b.insts)
}

// Emit appends a raw instruction and returns its PC.
func (b *Builder) Emit(in Inst) int {
	b.insts = append(b.insts, in)
	return len(b.insts) - 1
}

// Nop emits a no-op.
func (b *Builder) Nop() int { return b.Emit(Inst{Op: Nop}) }

// Op3 emits a register-register ALU instruction dst = src1 op src2.
func (b *Builder) Op3(op Op, dst, src1, src2 Reg) int {
	return b.Emit(Inst{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// OpI emits a register-immediate ALU instruction dst = src1 op imm.
func (b *Builder) OpI(op Op, dst, src1 Reg, imm int64) int {
	return b.Emit(Inst{Op: op, Dst: dst, Src1: src1, Imm: imm})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 Reg) int { return b.Op3(Add, dst, s1, s2) }

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 Reg) int { return b.Op3(Sub, dst, s1, s2) }

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 Reg) int { return b.Op3(Mul, dst, s1, s2) }

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 Reg) int { return b.Op3(And, dst, s1, s2) }

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 Reg) int { return b.Op3(Or, dst, s1, s2) }

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 Reg) int { return b.Op3(Xor, dst, s1, s2) }

// AddI emits dst = s1 + imm.
func (b *Builder) AddI(dst, s1 Reg, imm int64) int { return b.OpI(AddI, dst, s1, imm) }

// SubI emits dst = s1 - imm.
func (b *Builder) SubI(dst, s1 Reg, imm int64) int { return b.OpI(SubI, dst, s1, imm) }

// MulI emits dst = s1 * imm.
func (b *Builder) MulI(dst, s1 Reg, imm int64) int { return b.OpI(MulI, dst, s1, imm) }

// AndI emits dst = s1 & imm.
func (b *Builder) AndI(dst, s1 Reg, imm int64) int { return b.OpI(AndI, dst, s1, imm) }

// XorI emits dst = s1 ^ imm.
func (b *Builder) XorI(dst, s1 Reg, imm int64) int { return b.OpI(XorI, dst, s1, imm) }

// ShlI emits dst = s1 << imm.
func (b *Builder) ShlI(dst, s1 Reg, imm int64) int { return b.OpI(ShlI, dst, s1, imm) }

// ShrI emits dst = s1 >> imm (logical).
func (b *Builder) ShrI(dst, s1 Reg, imm int64) int { return b.OpI(ShrI, dst, s1, imm) }

// CmpLT emits dst = (s1 < s2).
func (b *Builder) CmpLT(dst, s1, s2 Reg) int { return b.Op3(CmpLT, dst, s1, s2) }

// CmpLTI emits dst = (s1 < imm).
func (b *Builder) CmpLTI(dst, s1 Reg, imm int64) int { return b.OpI(CmpLTI, dst, s1, imm) }

// CmpEQ emits dst = (s1 == s2).
func (b *Builder) CmpEQ(dst, s1, s2 Reg) int { return b.Op3(CmpEQ, dst, s1, s2) }

// CmpEQI emits dst = (s1 == imm).
func (b *Builder) CmpEQI(dst, s1 Reg, imm int64) int { return b.OpI(CmpEQI, dst, s1, imm) }

// MovI emits dst = imm.
func (b *Builder) MovI(dst Reg, imm int64) int { return b.OpI(MovI, dst, Zero, imm) }

// Mov emits dst = s1 (as an AddI with zero immediate).
func (b *Builder) Mov(dst, s1 Reg) int { return b.AddI(dst, s1, 0) }

// Load emits dst = M[base+off].
func (b *Builder) Load(dst, base Reg, off int64) int {
	return b.Emit(Inst{Op: Load, Dst: dst, Src1: base, Imm: off})
}

// Store emits M[base+off] = data.
func (b *Builder) Store(base Reg, off int64, data Reg) int {
	return b.Emit(Inst{Op: Store, Src1: base, Src2: data, Imm: off})
}

// BrZ emits a branch to label taken when cond == 0.
func (b *Builder) BrZ(cond Reg, label string) int { return b.branch(BrZ, cond, label) }

// BrNZ emits a branch to label taken when cond != 0.
func (b *Builder) BrNZ(cond Reg, label string) int { return b.branch(BrNZ, cond, label) }

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) int {
	pc := b.Emit(Inst{Op: Jmp})
	b.fixups = append(b.fixups, fixup{pc, label})
	return pc
}

// Halt emits a halt.
func (b *Builder) Halt() int { return b.Emit(Inst{Op: Halt}) }

func (b *Builder) branch(op Op, cond Reg, label string) int {
	pc := b.Emit(Inst{Op: op, Src1: cond})
	b.fixups = append(b.fixups, fixup{pc, label})
	return pc
}

// SetMem sets the initial data image. Word w corresponds to byte address w*8.
func (b *Builder) SetMem(words []int64) { b.mem = words }

// Build resolves label fixups, validates, and returns the finished Program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("builder %q: undefined label %q", b.name, f.label)
		}
		b.insts[f.pc].Target = target
	}
	p := &Program{Name: b.name, Insts: b.insts, InitMem: b.mem}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for the static workload
// generators whose programs are fixed at development time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
