// Package isa defines the micro-ISA used by the reproduction: a small
// RISC-like register instruction set rich enough to express the SPEC2000-like
// synthetic workloads, backward slices, and p-thread bodies the paper's
// framework operates on.
//
// The ISA is deliberately minimal: 64 integer registers (R0 hardwired to
// zero), three-operand ALU instructions with register and immediate forms,
// loads and stores with base+displacement addressing, direct conditional
// branches, direct jumps, and a halt. PCs are instruction indices, not byte
// addresses. Data memory is byte-addressed with 8-byte words.
package isa

import "fmt"

// Reg identifies one of the 64 architectural integer registers.
// R0 is hardwired to zero: writes to it are discarded, reads return 0.
type Reg uint8

// NumRegs is the number of architectural integer registers.
const NumRegs = 64

// Conventional register aliases used by the workload builders. They carry no
// hardware meaning; they only make generated code readable.
const (
	Zero Reg = 0 // hardwired zero
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. Register-register ALU ops read Src1 and Src2; immediate
// forms read Src1 and Imm. Load reads Src1 (base) and Imm (displacement) and
// writes Dst. Store reads Src1 (base), Imm (displacement) and Src2 (data).
// BrZ/BrNZ read Src1 and branch to Target. Jmp branches unconditionally.
const (
	Nop Op = iota

	// Register-register ALU.
	Add
	Sub
	Mul
	Div // divide; division by zero yields 0 (workloads never rely on traps)
	And
	Or
	Xor
	Shl
	Shr // logical shift right
	CmpLT
	CmpEQ

	// Register-immediate ALU.
	AddI
	SubI
	MulI
	AndI
	OrI
	XorI
	ShlI
	ShrI
	CmpLTI
	CmpEQI
	MovI // Dst = Imm

	// Memory.
	Load  // Dst = M[Src1 + Imm]
	Store // M[Src1 + Imm] = Src2

	// Control.
	BrZ  // if Src1 == 0 goto Target
	BrNZ // if Src1 != 0 goto Target
	Jmp  // goto Target
	Halt // stop execution

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", Div: "div",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	CmpLT: "cmplt", CmpEQ: "cmpeq",
	AddI: "addi", SubI: "subi", MulI: "muli", AndI: "andi", OrI: "ori",
	XorI: "xori", ShlI: "shli", ShrI: "shri", CmpLTI: "cmplti",
	CmpEQI: "cmpeqi", MovI: "movi",
	Load: "ld", Store: "st",
	BrZ: "brz", BrNZ: "brnz", Jmp: "jmp", Halt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Inst is a single static instruction.
type Inst struct {
	Op     Op
	Dst    Reg   // destination register (ALU, Load)
	Src1   Reg   // first source / base / condition register
	Src2   Reg   // second source / store-data register
	Imm    int64 // immediate operand / address displacement
	Target int   // branch or jump target PC (instruction index)
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool { return i.Op == Load }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Op == Store }

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool { return i.Op == Load || i.Op == Store }

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Op == BrZ || i.Op == BrNZ }

// IsJump reports whether the instruction is an unconditional direct jump.
func (i Inst) IsJump() bool { return i.Op == Jmp }

// IsControl reports whether the instruction can redirect the PC.
func (i Inst) IsControl() bool { return i.IsBranch() || i.IsJump() || i.Op == Halt }

// IsALU reports whether the instruction executes on an ALU (it computes a
// value from register/immediate sources, including multiplies and divides).
func (i Inst) IsALU() bool {
	switch i.Op {
	case Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, CmpLT, CmpEQ,
		AddI, SubI, MulI, AndI, OrI, XorI, ShlI, ShrI, CmpLTI, CmpEQI, MovI:
		return true
	}
	return false
}

// HasDst reports whether the instruction writes a register.
func (i Inst) HasDst() bool {
	return (i.IsALU() || i.Op == Load) && i.Dst != Zero
}

// Predicate flag bits packed by Inst.Flags. A precomputed flags byte lets
// per-entry hot loops test several predicates with single-bit probes instead
// of re-running the Op switches behind IsALU/HasDst on every dynamic
// instance of the same static instruction.
const (
	FlagLoad uint8 = 1 << iota
	FlagStore
	FlagBranch
	FlagJump
	FlagALU
	FlagHasDst
)

// Flags packs the instruction's classification predicates into one byte
// (bit set exactly when the corresponding Is*/HasDst method returns true).
func (i Inst) Flags() uint8 {
	var f uint8
	if i.IsLoad() {
		f |= FlagLoad
	}
	if i.IsStore() {
		f |= FlagStore
	}
	if i.IsBranch() {
		f |= FlagBranch
	}
	if i.IsJump() {
		f |= FlagJump
	}
	if i.IsALU() {
		f |= FlagALU
	}
	if i.HasDst() {
		f |= FlagHasDst
	}
	return f
}

// ValidateRegs checks that every register operand names one of the NumRegs
// architectural registers. Reg is a uint8, so raw Inst values (built outside
// the Builder helpers) can carry operands past the register file; the
// interpreter and the simulator index register arrays with all three
// operands unconditionally, so an out-of-range operand — even a dead one —
// must be rejected before execution.
func (i Inst) ValidateRegs() error {
	if i.Dst >= NumRegs || i.Src1 >= NumRegs || i.Src2 >= NumRegs {
		return fmt.Errorf("%s: register operand out of range (dst r%d, src1 r%d, src2 r%d; %d registers)",
			i.Op, i.Dst, i.Src1, i.Src2, NumRegs)
	}
	return nil
}

// ReadsSrc1 reports whether Src1 is a live source operand.
func (i Inst) ReadsSrc1() bool {
	switch i.Op {
	case Nop, MovI, Jmp, Halt:
		return false
	}
	return true
}

// ReadsSrc2 reports whether Src2 is a live source operand.
func (i Inst) ReadsSrc2() bool {
	switch i.Op {
	case Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, CmpLT, CmpEQ, Store:
		return true
	}
	return false
}

// Sources returns the registers the instruction reads. Unused slots are
// filled with Zero; callers must consult the ok flags.
func (i Inst) Sources() (s1, s2 Reg, r1, r2 bool) {
	if i.ReadsSrc1() {
		s1, r1 = i.Src1, true
	}
	if i.ReadsSrc2() {
		s2, r2 = i.Src2, true
	}
	return
}

// ExecLatency returns the execution (functional-unit) latency in cycles of
// the instruction, excluding any memory-hierarchy time for loads/stores.
func (i Inst) ExecLatency() int {
	switch i.Op {
	case Mul, MulI:
		return 3
	case Div:
		return 20
	default:
		return 1
	}
}

// String renders the instruction in a readable assembly-like syntax.
func (i Inst) String() string {
	switch {
	case i.Op == Nop:
		return "nop"
	case i.Op == Halt:
		return "halt"
	case i.Op == Jmp:
		return fmt.Sprintf("jmp %d", i.Target)
	case i.IsBranch():
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Src1, i.Target)
	case i.Op == Load:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Dst, i.Imm, i.Src1)
	case i.Op == Store:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Src2, i.Imm, i.Src1)
	case i.Op == MovI:
		return fmt.Sprintf("movi r%d, %d", i.Dst, i.Imm)
	case i.ReadsSrc2():
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Dst, i.Src1, i.Src2)
	default:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Dst, i.Src1, i.Imm)
	}
}

// Eval computes the result of an ALU instruction given its source values.
// Non-ALU instructions have no ALU semantics and yield an error; callers in
// the interpreter and simulator surface it up the sim loop instead of
// crashing mid-simulation (user-built programs reach Eval through the public
// Builder, so this must never panic).
func (i Inst) Eval(v1, v2 int64) (int64, error) {
	switch i.Op {
	case Add:
		return v1 + v2, nil
	case Sub:
		return v1 - v2, nil
	case Mul:
		return v1 * v2, nil
	case Div:
		if v2 == 0 {
			return 0, nil
		}
		return v1 / v2, nil
	case And:
		return v1 & v2, nil
	case Or:
		return v1 | v2, nil
	case Xor:
		return v1 ^ v2, nil
	case Shl:
		return v1 << (uint64(v2) & 63), nil
	case Shr:
		return int64(uint64(v1) >> (uint64(v2) & 63)), nil
	case CmpLT:
		if v1 < v2 {
			return 1, nil
		}
		return 0, nil
	case CmpEQ:
		if v1 == v2 {
			return 1, nil
		}
		return 0, nil
	case AddI:
		return v1 + i.Imm, nil
	case SubI:
		return v1 - i.Imm, nil
	case MulI:
		return v1 * i.Imm, nil
	case AndI:
		return v1 & i.Imm, nil
	case OrI:
		return v1 | i.Imm, nil
	case XorI:
		return v1 ^ i.Imm, nil
	case ShlI:
		return v1 << (uint64(i.Imm) & 63), nil
	case ShrI:
		return int64(uint64(v1) >> (uint64(i.Imm) & 63)), nil
	case CmpLTI:
		if v1 < i.Imm {
			return 1, nil
		}
		return 0, nil
	case CmpEQI:
		if v1 == i.Imm {
			return 1, nil
		}
		return 0, nil
	case MovI:
		return i.Imm, nil
	}
	return 0, fmt.Errorf("isa: eval of non-ALU instruction %s", i.Op)
}

// Program is a complete executable: static code plus an initial data image.
type Program struct {
	Name  string
	Insts []Inst
	// InitMem is the initial data memory image in 8-byte words. Address A
	// (bytes) maps to word A>>3. The image is prepared by the workload
	// generator (standing in for a compiler/loader's initialized data
	// segment) and is copied, never mutated, by interpreters and simulators.
	InitMem []int64
	// Entry is the PC of the first instruction executed.
	Entry int
}

// MemBytes returns the size of the data segment in bytes.
func (p *Program) MemBytes() int64 { return int64(len(p.InitMem)) * 8 }

// Validate checks structural well-formedness: opcodes defined, register
// operands within the architectural file, branch targets in range, memory
// accesses expressible. It does not execute code. Programs that pass cannot
// crash the interpreter or the simulator mid-run: every instruction either
// executes or was rejected here.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q has no instructions", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Insts) {
		return fmt.Errorf("program %q entry %d out of range", p.Name, p.Entry)
	}
	for pc, in := range p.Insts {
		if !in.Op.Valid() {
			return fmt.Errorf("program %q pc %d: invalid opcode %d", p.Name, pc, in.Op)
		}
		if err := in.ValidateRegs(); err != nil {
			return fmt.Errorf("program %q pc %d: %w", p.Name, pc, err)
		}
		if in.IsBranch() || in.IsJump() {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("program %q pc %d: branch target %d out of range", p.Name, pc, in.Target)
			}
		}
	}
	return nil
}
