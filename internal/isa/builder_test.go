package isa

import "testing"

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("fwd")
	b.MovI(1, 0)
	b.BrZ(1, "done") // forward reference
	b.AddI(1, 1, 1)
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 3 {
		t.Errorf("forward label resolved to %d, want 3", p.Insts[1].Target)
	}
}

func TestBuilderBackwardLabel(t *testing.T) {
	b := NewBuilder("loop")
	b.MovI(1, 10)
	b.Label("top")
	b.SubI(1, 1, 1)
	b.BrNZ(1, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Target != 1 {
		t.Errorf("backward label resolved to %d, want 1", p.Insts[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestBuilderPCAndEmitOrder(t *testing.T) {
	b := NewBuilder("pc")
	if b.PC() != 0 {
		t.Error("initial PC must be 0")
	}
	pc0 := b.MovI(1, 5)
	pc1 := b.Load(2, 1, 8)
	pc2 := b.Store(1, 0, 2)
	if pc0 != 0 || pc1 != 1 || pc2 != 2 {
		t.Errorf("emit PCs = %d,%d,%d", pc0, pc1, pc2)
	}
	if b.PC() != 3 {
		t.Errorf("PC after 3 emits = %d", b.PC())
	}
}

func TestBuilderEmitHelpers(t *testing.T) {
	b := NewBuilder("helpers")
	b.Add(1, 2, 3)
	b.Sub(1, 2, 3)
	b.Mul(1, 2, 3)
	b.And(1, 2, 3)
	b.Xor(1, 2, 3)
	b.AddI(1, 2, 7)
	b.SubI(1, 2, 7)
	b.MulI(1, 2, 7)
	b.AndI(1, 2, 7)
	b.XorI(1, 2, 7)
	b.ShlI(1, 2, 3)
	b.ShrI(1, 2, 3)
	b.CmpLT(1, 2, 3)
	b.CmpLTI(1, 2, 7)
	b.CmpEQ(1, 2, 3)
	b.CmpEQI(1, 2, 7)
	b.Mov(4, 5)
	b.Nop()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{Add, Sub, Mul, And, Xor, AddI, SubI, MulI, AndI, XorI,
		ShlI, ShrI, CmpLT, CmpLTI, CmpEQ, CmpEQI, AddI, Nop, Halt}
	for i, op := range wantOps {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d op = %s, want %s", i, p.Insts[i].Op, op)
		}
	}
	if mov := p.Insts[16]; mov.Dst != 4 || mov.Src1 != 5 || mov.Imm != 0 {
		t.Error("Mov must encode as AddI dst, src, 0")
	}
}

func TestBuilderSetMem(t *testing.T) {
	b := NewBuilder("mem")
	b.Halt()
	b.SetMem([]int64{1, 2, 3})
	p := b.MustBuild()
	if len(p.InitMem) != 3 || p.InitMem[2] != 3 {
		t.Error("SetMem image not carried into program")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on broken program must panic")
		}
	}()
	b := NewBuilder("broken")
	b.Jmp("missing")
	b.MustBuild()
}
