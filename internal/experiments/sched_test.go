package experiments

// Tests for the critical-path scheduler and its EWMA cost model. The
// scheduler's contract is that it changes only build order: every test here
// pins some facet of "identical results, identical store traffic" while the
// priority inputs are varied — including adversarially.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/program"
	"repro/internal/pthsel"
)

// schedTestGrid is a multi-axis grid over two benchmarks: enough shape for
// chains of different lengths (idle points share everything but params;
// mem points rebuild curves and baseline) without a long runtime.
func schedTestGrid() Grid {
	return Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor), GridAxis(SweepMemLatency)},
		Benchmarks: []string{"gap", "twolf"},
		Targets:    []pthsel.Target{pthsel.TargetL},
	}
}

// stripSweepClock zeroes the wall-clock throughput column, the one
// deliberately nondeterministic report field.
func stripSweepClock(rep *SweepReport) *SweepReport {
	out := *rep
	out.Points = append([]SweepPointReport(nil), rep.Points...)
	for i := range out.Points {
		runs := append([]RunReport(nil), out.Points[i].Runs...)
		for j := range runs {
			runs[j].SimCyclesPerSec = 0
		}
		out.Points[i].Runs = runs
	}
	return &out
}

// sweepJSON renders a report deterministically for byte comparison.
func sweepJSON(t *testing.T, rep *SweepReport) []byte {
	t.Helper()
	raw, err := json.Marshal(stripSweepClock(rep))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSweepSchedMatchesNaive pins the tentpole's identity contract: the
// critical-path scheduler and naive bench-major order produce byte-identical
// sweep reports (same rows, same order, same values) and identical per-stage
// cold counts — scheduling changes when stages build, never what builds.
func TestSweepSchedMatchesNaive(t *testing.T) {
	ctx := context.Background()
	grid := schedTestGrid()

	naive := NewRunner(DefaultConfig(), 4, nil)
	naive.SetScheduling(false)
	repN, err := naive.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}

	sched := NewRunner(DefaultConfig(), 4, nil)
	repS, err := sched.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := sweepJSON(t, repN), sweepJSON(t, repS); !bytes.Equal(a, b) {
		t.Errorf("scheduled sweep diverged from naive order:\n%s\nvs\n%s", a, b)
	}
	for _, st := range Stages() {
		if n, s := naive.StagePrepares(st), sched.StagePrepares(st); n != s {
			t.Errorf("StagePrepares(%s): naive %d, scheduled %d — speculation built work naive order would not", st, n, s)
		}
	}
}

// TestSweepSchedAdversarialCosts feeds the scheduler a cost model whose
// estimates invert reality — cheap assembly stages projected enormous, the
// dominant trace stage projected near-free, measurement sinks in between —
// so ready-queue priority ordering is maximally wrong. The report must still
// be byte-identical to naive order and every short chain must still
// complete: priority orders the ready set, it never drops or starves a node.
func TestSweepSchedAdversarialCosts(t *testing.T) {
	ctx := context.Background()
	grid := schedTestGrid()

	naive := NewRunner(DefaultConfig(), 4, nil)
	naive.SetScheduling(false)
	repN, err := naive.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}

	var points atomic.Int64
	sched := NewRunner(DefaultConfig(), 4, func(ev Event) {
		if ev.Kind == EventPointDone {
			points.Add(1)
		}
	})
	adversarial := map[Stage]float64{
		StageTrace:    1e-9, // the real dominator, projected free
		StageProfile:  1e-9,
		StageSlices:   1e-9,
		StageProblems: 1e6, // near-free stages, projected enormous
		StageCurves:   1e6,
		StageBaseline: 1e-9,
		StageParams:   1e6,
		StagePrepared: 1e6,
		stageMeasure:  42,
	}
	sched.costs.mu.Lock()
	for st, sec := range adversarial {
		sched.costs.ewma[costKey{st, 0}] = sec
	}
	sched.costs.mu.Unlock()

	repS, err := sched.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sweepJSON(t, repN), sweepJSON(t, repS); !bytes.Equal(a, b) {
		t.Errorf("adversarial cost model changed sweep values or row order:\n%s\nvs\n%s", a, b)
	}
	if got, want := points.Load(), int64(len(repN.Points)); got != want {
		t.Errorf("completed %d points under adversarial priorities, want %d (starvation?)", got, want)
	}
}

// TestCampaignSchedMatchesNaive extends the identity contract to Campaign,
// including its partial-failure path: a benchmark whose baseline simulation
// fails must report the same error entry under both orders, and the
// scheduler's fail-fast stage nodes must not change the cold counts of the
// doomed chain.
func TestCampaignSchedMatchesNaive(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.CPU.MaxCycles = 600_000 // mcf's baseline exceeds this; gap's does not
	targets := []pthsel.Target{pthsel.TargetL}
	names := []string{"gap", "mcf"}

	run := func(sched bool) (*CampaignReport, *Runner) {
		r := NewRunner(cfg, 4, nil)
		r.SetScheduling(sched)
		rep, err := r.Campaign(ctx, names, targets)
		if err != nil {
			t.Fatal(err)
		}
		return rep, r
	}
	repN, rn := run(false)
	repS, rs := run(true)

	strip := func(rep *CampaignReport) []byte {
		out := *rep
		out.Benchmarks = append([]CampaignBench(nil), rep.Benchmarks...)
		for i := range out.Benchmarks {
			runs := append([]RunReport(nil), out.Benchmarks[i].Runs...)
			for j := range runs {
				runs[j].SimCyclesPerSec = 0
			}
			out.Benchmarks[i].Runs = runs
		}
		raw, err := json.Marshal(&out)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := strip(repN), strip(repS); !bytes.Equal(a, b) {
		t.Errorf("scheduled campaign diverged from naive:\n%s\nvs\n%s", a, b)
	}
	if repS.Err() == nil {
		t.Error("campaign fixture lost its expected mcf failure")
	}
	for _, st := range Stages() {
		if n, s := rn.StagePrepares(st), rs.StagePrepares(st); n != s {
			t.Errorf("StagePrepares(%s): naive %d, scheduled %d on the failure path", st, n, s)
		}
	}
}

// TestSweepSchedConcurrent hammers one engine with concurrent scheduled
// sweeps (run under -race in CI): the cost model and scheduler state are
// shared across simultaneous DAG executions, and the singleflight store must
// still build each heavy stage exactly once.
func TestSweepSchedConcurrent(t *testing.T) {
	ctx := context.Background()
	r := NewRunner(DefaultConfig(), 8, nil)
	grid := Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor)},
		Benchmarks: []string{"gap", "twolf"},
		Targets:    []pthsel.Target{pthsel.TargetL},
	}
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	reps := make([]*SweepReport, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reps[g], errs[g] = r.Sweep(ctx, grid)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for _, st := range []Stage{StageTrace, StageProfile, StageSlices} {
		if n := r.StagePrepares(st); n != 2 {
			t.Errorf("StagePrepares(%s) = %d, want 2 (one per benchmark) under concurrent scheduled sweeps", st, n)
		}
	}
	want := sweepJSON(t, reps[0])
	for g := 1; g < goroutines; g++ {
		if got := sweepJSON(t, reps[g]); !bytes.Equal(want, got) {
			t.Errorf("goroutine %d saw different sweep values", g)
		}
	}
}

// TestSweepDAGExport pins the plan export: node dedup across grid points,
// one measurement sink per job, cold→cached status transitions against the
// live store, and well-formed DOT.
func TestSweepDAGExport(t *testing.T) {
	ctx := context.Background()
	r := NewRunner(DefaultConfig(), 0, nil)
	grid := Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor)},
		Benchmarks: []string{"gap"},
		Targets:    []pthsel.Target{pthsel.TargetL},
	}

	dag, err := r.SweepDAG(grid)
	if err != nil {
		t.Fatal(err)
	}
	var sinks, cold, cached int
	for _, n := range dag.Nodes {
		switch n.Status {
		case schedMeasure:
			sinks++
		case schedCold:
			cold++
		case schedCached:
			cached++
		}
	}
	if sinks != 3 {
		t.Errorf("DAG has %d measurement sinks, want 3 (one per grid point)", sinks)
	}
	if cached != 0 {
		t.Errorf("fresh engine planned %d cached nodes, want 0", cached)
	}
	// The idle axis only perturbs params/prepared: heavy stages dedup to one
	// node each, so the stage-node count is far below 3 points × 8 stages.
	if stageNodes := len(dag.Nodes) - sinks; stageNodes >= 3*len(Stages()) {
		t.Errorf("stage nodes not deduplicated: %d nodes for a 3-point single-bench grid", stageNodes)
	}
	if cold == 0 || len(dag.Edges) == 0 || dag.CriticalPathSec <= 0 {
		t.Errorf("degenerate plan: %d cold nodes, %d edges, critical path %f",
			cold, len(dag.Edges), dag.CriticalPathSec)
	}

	dot := dag.DOT()
	for _, want := range []string{"digraph stages {", "->", "gap/train", "[cold]", "[measure]", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}

	// Planning must not execute or count anything...
	if n := r.StagePrepares(StageTrace); n != 0 {
		t.Fatalf("SweepDAG executed %d trace builds", n)
	}
	// ...and after the sweep actually runs, a re-plan sees a warm store.
	if _, err := r.Sweep(ctx, grid); err != nil {
		t.Fatal(err)
	}
	dag2, err := r.SweepDAG(grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range dag2.Nodes {
		if n.Status == schedCold || n.Status == schedSpill {
			t.Errorf("post-sweep plan still projects %s/%s %s as %s", n.Bench, n.Input, n.Stage, n.Status)
		}
	}
}

// TestCostModelEWMA pins the model's math: first observation is taken
// verbatim, later ones fold at costAlpha, and estimates fall back size
// class → global aggregate → prior.
func TestCostModelEWMA(t *testing.T) {
	m := newCostModel()

	// Unobserved: priors, in the priors' relative order.
	if got := m.estimate(StageTrace, "gap", program.Train); got != costPriors[StageTrace] {
		t.Errorf("prior estimate = %v, want %v", got, costPriors[StageTrace])
	}
	if m.estimate(StageTrace, "gap", program.Train) <= m.estimate(StageParams, "gap", program.Train) {
		t.Error("priors do not order trace above params")
	}
	if got := m.estimate(Stage("no-such-stage"), "gap", program.Train); got != 0.01 {
		t.Errorf("unknown-stage estimate = %v, want the 0.01 floor", got)
	}

	// Global cell: first record verbatim, second folds at alpha.
	m.record(StageTrace, "gap", program.Train, 2.0)
	if got := m.estimate(StageTrace, "gap", program.Train); got != 2.0 {
		t.Errorf("after first record: estimate = %v, want 2.0", got)
	}
	m.record(StageTrace, "gap", program.Train, 1.0)
	want := costAlpha*1.0 + (1-costAlpha)*2.0
	if got := m.estimate(StageTrace, "gap", program.Train); got != want {
		t.Errorf("after second record: estimate = %v, want %v", got, want)
	}

	// Size classes: a known-size workload records into its class cell;
	// same-class workloads share it, different-class workloads fall back to
	// the global aggregate.
	m.observeSize("gap", program.Train, 1000)  // class 10
	m.observeSize("mcf", program.Train, 900)   // class 10 too
	m.observeSize("gcc", program.Train, 1<<20) // far larger class
	m.record(StageProfile, "gap", program.Train, 5.0)
	if got := m.estimate(StageProfile, "mcf", program.Train); got != 5.0 {
		t.Errorf("same-size-class estimate = %v, want 5.0", got)
	}
	m.record(StageProfile, "gcc", program.Train, 50.0)
	if got := m.estimate(StageProfile, "gap", program.Train); got != 5.0 {
		t.Errorf("small workload's estimate polluted by the large class: %v", got)
	}
	if got := m.estimate(StageProfile, "gcc", program.Train); got != 50.0 {
		t.Errorf("large workload's class estimate = %v, want 50.0", got)
	}

	// Non-positive observations are ignored.
	m.record(StageTrace, "gap", program.Train, 0)
	m.record(StageTrace, "gap", program.Train, -1)
	if got := m.estimate(StageTrace, "gap", program.Train); got != want {
		t.Errorf("non-positive record changed the estimate to %v", got)
	}
}

// TestCostModelPersistence pins the restart-warm path: flush writes the
// model, loadFrom restores every cell and size, and a corrupt or absent file
// degrades to an empty model without error.
func TestCostModelPersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/costmodel.json"

	m1 := newCostModel()
	m1.loadFrom(path) // absent: stays empty, attaches the path
	m1.observeSize("gap", program.Train, 12345)
	m1.record(StageTrace, "gap", program.Train, 3.5)
	m1.record(stageMeasure, "gap", program.Train, 0.25)
	m1.flush()

	m2 := newCostModel()
	m2.loadFrom(path)
	for _, st := range []Stage{StageTrace, stageMeasure} {
		if got, want := m2.estimate(st, "gap", program.Train), m1.estimate(st, "gap", program.Train); got != want {
			t.Errorf("restored estimate(%s) = %v, want %v", st, got, want)
		}
	}
	m2.mu.Lock()
	size := m2.sizes[sizeKey("gap", program.Train)]
	m2.mu.Unlock()
	if size != 12345 {
		t.Errorf("restored size = %d, want 12345", size)
	}

	// flush with nothing new is a no-op; a corrupt file loads as empty.
	m2.flush()
	if err := writeFile(path, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	m3 := newCostModel()
	m3.loadFrom(path)
	if got := m3.estimate(StageTrace, "gap", program.Train); got != costPriors[StageTrace] {
		t.Errorf("corrupt file: estimate = %v, want the prior", got)
	}
}

// TestCostModelSizeClasses pins the log2 bucketing.
func TestCostModelSizeClasses(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {1023, 10}, {1024, 11}, {1 << 20, 21}}
	for _, c := range cases {
		if got := classOf(c.n); got != c.want {
			t.Errorf("classOf(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestRunnerFeedsCostModel pins the instrumentation loop: a prepare + run
// populates sizes and per-stage EWMA cells, so the next sweep's plan
// projects from observations rather than priors.
func TestRunnerFeedsCostModel(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	var stageDones, timedDones atomic.Int64
	r := NewRunner(cfg, 0, func(ev Event) {
		if ev.Kind == EventStageDone {
			stageDones.Add(1)
			if ev.DurationNS > 0 {
				timedDones.Add(1)
			}
		}
	})
	prep, err := r.Prepare(ctx, "gap", cfg.MeasureInput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n, timed := stageDones.Load(), timedDones.Load(); n == 0 || timed != n {
		t.Errorf("%d of %d stage-done events carried DurationNS", timed, n)
	}
	if _, err := RunTarget(ctx, prep, prep, pthsel.TargetL, cfg); err != nil {
		t.Fatal(err)
	}
	r.costs.mu.Lock()
	size := r.costs.sizes[sizeKey("gap", cfg.MeasureInput)]
	traceCell, haveTrace := r.costs.ewma[costKey{StageTrace, 0}]
	r.costs.mu.Unlock()
	if size <= 0 {
		t.Error("prepare did not observe the trace size")
	}
	if !haveTrace || traceCell <= 0 {
		t.Errorf("trace build not recorded in the cost model (cell %v, ok %v)", traceCell, haveTrace)
	}

	// The build-latency reservoir behind StoreStats saw the same builds.
	st := r.StoreStats()
	tr := st.Stages[StageTrace]
	if tr.P50BuildNS <= 0 || tr.P95BuildNS < tr.P50BuildNS {
		t.Errorf("trace build-latency percentiles malformed: p50 %d, p95 %d", tr.P50BuildNS, tr.P95BuildNS)
	}
	if un := st.Stages[StageCurves]; un.Cold != 1 {
		t.Errorf("curves cold count = %d, want 1", un.Cold)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
