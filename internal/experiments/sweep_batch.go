package experiments

// Batched sweep scheduling: Runner.Sweep's K>=2 path. Measurements are
// split from preparation, grouped by shared trace artifact, and advanced
// through cpu.BatchSimulator so up to K grid points ride one streaming
// pass over the trace's column chunks. Every simulated Result is
// bit-identical to the serial path's (pinned by TestBatchedMatchesSerial
// and the sweep differential tests); only scheduling, wall-clock and the
// report's Batched/BatchWidth provenance fields differ.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// batchPool recycles batch simulators across sweep batches, mirroring
// simPool: each batch grabs a fully-grown struct-of-simulators and Resets
// it onto its configs, so steady-state batched sweeps allocate nothing in
// the simulation hot loop.
var batchPool sync.Pool

// effectiveBatchWidth resolves the sweep batch width: the installed
// SetBatchWidth value, defaulted to DefaultBatchWidth when the base
// configuration selects cpu.EngineBatched without an explicit width.
func (r *Runner) effectiveBatchWidth() int {
	k := r.batchWidth
	if k < 2 && r.cfg.CPU.Engine == cpu.EngineBatched {
		k = DefaultBatchWidth
	}
	return k
}

// sweepUnit is one (grid point, target) measurement scheduled by the
// batched sweep. Workers fill run/err/batched for disjoint unit sets; the
// per-job pending counter publishes them to whichever worker assembles the
// finished point.
type sweepUnit struct {
	job     int // index into jobs / rep.Points
	ti      int // index into targets
	batched bool
	run     *TargetRun
	err     error
}

// sweepBatched evaluates jobs × targets with batch width k, filling
// rep.Points and errs exactly as the serial path does (same indexing, same
// error wrapping, same event kinds and Done/Total accounting).
func (r *Runner) sweepBatched(ctx context.Context, jobs []sweepJob, targets []pthsel.Target,
	k int, rep *SweepReport, errs []error) {
	var done atomic.Int64

	// Phase 1: prepare every point through the staged store, in parallel —
	// identical store traffic to the serial path. Points that fail to
	// prepare finish (and report) here. With scheduling enabled the
	// preparations run in critical-path order over the grid's stage DAG;
	// the measurement phase below keeps its own trace-grouped batching
	// either way.
	preps := make([]*Prepared, len(jobs))
	prepareJob := func(ctx context.Context, i int) {
		j := jobs[i]
		p, perr := r.Prepare(ctx, j.bench, j.pt.cfg.MeasureInput, j.pt.cfg)
		if perr != nil {
			errs[i] = fmt.Errorf("%s@%s: %w", j.bench, j.pt.point(), perr)
			r.emit(ctx, Event{Kind: EventPointDone, Bench: j.bench,
				Point: j.pt.point(), Err: perr,
				Done: int(done.Add(1)), Total: len(jobs)})
			return
		}
		preps[i] = p
	}
	if r.sched {
		b := r.newDAGBuilder()
		for i, j := range jobs {
			prep, _ := b.addChain(j.bench, j.pt.cfg.MeasureInput, j.pt.cfg)
			i := i
			b.addMeasure(j.pt.point(), 0, prep, func(ctx context.Context) { prepareJob(ctx, i) })
		}
		r.runDAG(ctx, b)
	} else {
		r.forEach(ctx, len(jobs), func(i int) { prepareJob(ctx, i) })
	}

	// Partition measurements into batches. Units are enumerated in job-major,
	// target-minor order and grouped by trace pointer: two units share a
	// group exactly when their points' prepared artifacts resolved to the
	// same trace (same benchmark, input and workload). Each group is chunked
	// into batches of up to k, deterministically. Reference scan-engine
	// points cannot batch and become singleton batches, which take the
	// serial path below.
	units := make([]sweepUnit, 0, len(jobs)*len(targets))
	unitsOf := make([][]int, len(jobs))
	groups := map[*trace.Trace][]int{}
	var groupOrder []*trace.Trace
	var scanUnits []int
	for i := range jobs {
		if preps[i] == nil {
			continue
		}
		for ti := range targets {
			u := len(units)
			units = append(units, sweepUnit{job: i, ti: ti})
			unitsOf[i] = append(unitsOf[i], u)
			if jobs[i].pt.cfg.CPU.Engine == cpu.EngineScan {
				scanUnits = append(scanUnits, u)
				continue
			}
			tr := preps[i].Trace
			if _, ok := groups[tr]; !ok {
				groupOrder = append(groupOrder, tr)
			}
			groups[tr] = append(groups[tr], u)
		}
	}
	var batches [][]int
	for _, tr := range groupOrder {
		g := groups[tr]
		for len(g) > k {
			batches = append(batches, g[:k])
			g = g[k:]
		}
		if len(g) > 0 {
			batches = append(batches, g)
		}
	}
	for _, u := range scanUnits {
		batches = append(batches, []int{u})
	}

	// pending counts each job's outstanding units; the worker that retires
	// a job's last unit assembles and reports its point (the atomic
	// decrement publishes every sibling unit's result to it).
	pending := make([]atomic.Int32, len(jobs))
	for i := range jobs {
		pending[i].Store(int32(len(unitsOf[i])))
	}
	finishJob := func(i int) {
		j := jobs[i]
		var perr error
		for _, u := range unitsOf[i] {
			if units[u].err != nil {
				perr = units[u].err
				break
			}
		}
		if perr != nil {
			errs[i] = fmt.Errorf("%s@%s: %w", j.bench, j.pt.point(), perr)
		} else {
			point := SweepPointReport{Bench: j.bench, Workload: j.wl, Labels: j.pt.labels}
			for _, u := range unitsOf[i] {
				point.Runs = append(point.Runs, runReport(units[u].run))
				if units[u].batched {
					point.Batched = true
					point.BatchWidth = k
				}
			}
			rep.Points[i] = point
		}
		r.emit(ctx, Event{Kind: EventPointDone, Bench: j.bench,
			Point: j.pt.point(), Err: perr,
			Done: int(done.Add(1)), Total: len(jobs)})
	}

	// Phase 2: run the batches on the worker pool.
	r.forEach(ctx, len(batches), func(bi int) {
		batch := batches[bi]
		r.runSweepBatch(ctx, batch, units, jobs, preps, targets)
		for _, u := range batch {
			if pending[units[u].job].Add(-1) == 0 {
				finishJob(units[u].job)
			}
		}
	})
}

// runSweepBatch measures one batch of units. Singletons take the serial
// RunTarget path (also the scan-engine fallback); wider batches select
// p-threads per unit and advance all instances through one shared-cursor
// pass of the common trace.
func (r *Runner) runSweepBatch(ctx context.Context, batch []int, units []sweepUnit,
	jobs []sweepJob, preps []*Prepared, targets []pthsel.Target) {
	if len(batch) == 1 {
		u := &units[batch[0]]
		prep, tgt, cfg := preps[u.job], targets[u.ti], jobs[u.job].pt.cfg
		r.emit(ctx, Event{Kind: EventRunStart, Bench: prep.Name, Target: tgt.String()})
		run, err := RunTarget(ctx, prep, prep, tgt, cfg)
		ev := Event{Kind: EventRunDone, Bench: prep.Name, Target: tgt.String(), Err: err}
		if err == nil {
			ev.SimCyclesPerSec = run.SimCyclesPerSec()
		}
		r.emit(ctx, ev)
		u.run, u.err = run, err
		return
	}

	w := len(batch)
	tr := preps[units[batch[0]].job].Trace
	cfgs := make([]cpu.Config, w)
	pthreads := make([][]*cpu.PThread, w)
	sels := make([]*pthsel.Selection, w)
	for bi, ui := range batch {
		u := &units[ui]
		prep, tgt := preps[u.job], targets[u.ti]
		r.emit(ctx, Event{Kind: EventRunStart, Bench: prep.Name, Target: tgt.String()})
		sel := pthsel.Select(prep.Trace, prep.Prof, prep.Trees, prep.Params, tgt)
		sels[bi] = sel
		cfg := jobs[u.job].pt.cfg.CPU
		cfg.Engine = cpu.EngineEvent
		cfgs[bi] = cfg
		pthreads[bi] = sel.PThreads
	}

	bs, _ := batchPool.Get().(*cpu.BatchSimulator)
	if bs == nil {
		bs = cpu.NewBatchSimulator()
	}
	start := time.Now()
	err := bs.Reset(cfgs, tr, pthreads)
	var results []*cpu.Result
	var serrs []error
	if err == nil {
		results, serrs, err = bs.RunContext(ctx)
	}
	elapsed := time.Since(start).Seconds()
	for bi, ui := range batch {
		u := &units[ui]
		prep, tgt := preps[u.job], targets[u.ti]
		switch {
		case err != nil: // whole-batch failure: bad reset or cancellation
			u.err = fmt.Errorf("%s/%s: %w", prep.Name, tgt, err)
		case serrs[bi] != nil:
			u.err = fmt.Errorf("%s/%s: %w", prep.Name, tgt, serrs[bi])
		default:
			// The batch result borrows simulator memory; clone before the
			// pooled batch is reused. Wall-clock is amortized across the
			// batch (SimSeconds stays a health metric, not an artifact).
			run := Derive(sels[bi], prep.Baseline, results[bi].Clone())
			run.SimSeconds = elapsed / float64(w)
			u.run = run
			u.batched = true
		}
		ev := Event{Kind: EventRunDone, Bench: prep.Name, Target: tgt.String(), Err: u.err}
		if u.err == nil {
			ev.SimCyclesPerSec = u.run.SimCyclesPerSec()
		}
		r.emit(ctx, ev)
	}
	batchPool.Put(bs)
}
