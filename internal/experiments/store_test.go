package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/program"
)

func storeTestKey() artifactKey {
	return artifactKey{name: "bench", input: program.Train, stage: StageTrace, fp: "fp"}
}

// TestStoreRetiresPoisonedEntry pins the poisoned-entry contract: a compute
// that failed because its caller's context was cancelled is retired from the
// store, and the next requester recomputes under its own context instead of
// inheriting someone else's cancellation.
func TestStoreRetiresPoisonedEntry(t *testing.T) {
	s := newArtifactStore()
	key := storeTestKey()
	var builds atomic.Int64

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, outcome, err := s.get(cancelled, key, func() (any, error) {
		return nil, cancelled.Err()
	})
	if outcome != storeCold || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compute: outcome %v err %v", outcome, err)
	}

	val, outcome, err := s.get(context.Background(), key, func() (any, error) {
		builds.Add(1)
		return 42, nil
	})
	if err != nil || val != 42 || outcome != storeCold {
		t.Fatalf("retry after poison: val %v outcome %v err %v", val, outcome, err)
	}
	if builds.Load() != 1 {
		t.Fatalf("retry built %d times, want 1", builds.Load())
	}

	val, outcome, err = s.get(context.Background(), key, func() (any, error) {
		builds.Add(1)
		return 0, errors.New("should not recompute")
	})
	if err != nil || val != 42 || outcome != storeHit {
		t.Fatalf("post-recovery get: val %v outcome %v err %v", val, outcome, err)
	}
	if builds.Load() != 1 {
		t.Fatalf("successful entry was recomputed (%d builds)", builds.Load())
	}
}

// TestStoreCachesGenuineErrors pins the other half of the contract: a
// computation that failed on its own merits stays cached — an artifact that
// cannot build will not build on retry — rather than being retried forever.
func TestStoreCachesGenuineErrors(t *testing.T) {
	s := newArtifactStore()
	key := storeTestKey()
	var builds atomic.Int64
	boom := errors.New("boom")

	for i := 0; i < 3; i++ {
		_, _, err := s.get(context.Background(), key, func() (any, error) {
			builds.Add(1)
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("get %d: err %v, want boom", i, err)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("genuine error recomputed: %d builds, want 1", builds.Load())
	}
}

// TestStorePoisonRetirementConcurrent hammers the retire-and-retry loop from
// many goroutines under the race detector: callers with cancelled contexts
// poison entries while live callers race to retire and recompute them. Every
// live caller must see the value, and exactly one successful build may
// happen per key lifetime (once a good entry lands it is never replaced).
func TestStorePoisonRetirementConcurrent(t *testing.T) {
	s := newArtifactStore()
	key := storeTestKey()
	var goodBuilds atomic.Int64

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	const workers = 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A quarter of the workers carry a dead context and may poison
			// the slot; the rest must always come away with the value.
			ctx := context.Background()
			poisoner := i%4 == 0
			if poisoner {
				ctx = cancelled
			}
			val, _, err := s.get(ctx, key, func() (any, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				goodBuilds.Add(1)
				return 42, nil
			})
			if poisoner {
				return // may legitimately see context.Canceled or the value
			}
			if err != nil {
				errs[i] = err
				return
			}
			if val != 42 {
				errs[i] = errors.New("wrong value")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if n := goodBuilds.Load(); n != 1 {
		t.Errorf("%d successful builds, want exactly 1", n)
	}
	val, outcome, err := s.get(context.Background(), key, func() (any, error) {
		return nil, errors.New("should not recompute")
	})
	if err != nil || val != 42 || outcome != storeHit {
		t.Errorf("final get: val %v outcome %v err %v", val, outcome, err)
	}
}
