package experiments

import (
	"context"
	"sync"

	"repro/internal/program"
)

// artifactKey identifies one store entry: a stage artifact for one benchmark
// prepared on one input, under the stage's content fingerprint (the hash of
// exactly the config fields the stage reads, chained through its upstream
// artifacts' fingerprints).
type artifactKey struct {
	name  string
	input program.InputClass
	stage Stage
	fp    string
}

// artifactEntry is a single-flight store slot: the first requester computes,
// everyone else waits on done.
type artifactEntry struct {
	done chan struct{}
	val  any
	err  error
}

// storeOutcome classifies how a get was satisfied.
type storeOutcome int

const (
	storeCold   storeOutcome = iota // this call executed the computation
	storeHit                        // served from an already-completed entry
	storeShared                     // waited on another caller's in-flight computation
)

// artifactStore is the per-stage, content-addressed artifact cache with
// single-flight deduplication: concurrent requesters of the same key share
// one computation instead of racing to rebuild the artifact.
type artifactStore struct {
	mu      sync.Mutex
	entries map[artifactKey]*artifactEntry
}

func newArtifactStore() *artifactStore {
	return &artifactStore{entries: map[artifactKey]*artifactEntry{}}
}

// peek returns a completed entry's value without counting an outcome or
// waiting on an in-flight computation: ok is false when the key is absent or
// still computing. It exists for two observers of the store, neither of
// which is a request for the artifact: the scheduler's DAG planner (costing
// already-built stages at zero) and compute closures reading upstream
// artifacts their caller already ordered.
func (s *artifactStore) peek(key artifactKey) (any, error, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	select {
	case <-e.done:
		return e.val, e.err, true
	default:
		return nil, nil, false
	}
}

// get returns the artifact for key, computing it at most once per store.
// Concurrent requests for the same key share a single in-flight computation.
// Failed computations are cached (an artifact that cannot build will not
// build on retry) except when the failure was a context cancellation, which
// is the computing caller's problem, not the artifact's: the poisoned entry
// is retired and the next requester recomputes under its own context.
func (s *artifactStore) get(ctx context.Context, key artifactKey, compute func() (any, error)) (any, storeOutcome, error) {
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.mu.Unlock()
			// A true store hit is an entry that was already complete when we
			// found it; waiting for a concurrent in-flight computation shares
			// its result but is not a cache hit (the computing caller's own
			// events already describe that work).
			outcome := storeShared
			select {
			case <-e.done:
				outcome = storeHit
			default:
			}
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, outcome, ctx.Err()
			}
			if e.err == nil {
				return e.val, outcome, nil
			}
			if !isContextErr(e.err) {
				return nil, outcome, e.err
			}
			// The computing caller was cancelled; retire the poisoned entry
			// (unless someone already replaced it) and retry under our ctx.
			s.mu.Lock()
			if s.entries[key] == e {
				delete(s.entries, key)
			}
			s.mu.Unlock()
			continue
		}
		e := &artifactEntry{done: make(chan struct{})}
		s.entries[key] = e
		s.mu.Unlock()

		e.val, e.err = compute()
		close(e.done)
		if isContextErr(e.err) {
			s.mu.Lock()
			if s.entries[key] == e {
				delete(s.entries, key)
			}
			s.mu.Unlock()
		}
		return e.val, storeCold, e.err
	}
}
