package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cpu"
)

// Report is a structured, JSON-marshalable experiment artifact. Every
// figure, table and campaign entry point returns one; Render turns it into
// the human-readable table the paper's reproduction prints. Computation and
// rendering are fully split: Render reads only the exported (serialized)
// fields, so a report decoded from JSON renders identically to the freshly
// computed one.
type Report interface {
	Render() string
}

// BaselineReport summarizes one benchmark's unoptimized run.
type BaselineReport struct {
	Cycles         int64
	IPC            float64
	DemandL2Misses int64
	EnergyTotal    float64
}

func baselineReport(res *cpu.Result) *BaselineReport {
	return &BaselineReport{
		Cycles:         res.Cycles,
		IPC:            res.IPC(),
		DemandL2Misses: res.DemandL2Misses,
		EnergyTotal:    res.Energy.Total(),
	}
}

// RunReport is the JSON-stable summary of one (benchmark, target) measured
// run: the paper's derived percentages plus the headline raw numbers.
type RunReport struct {
	Target        string
	PThreads      int
	Cycles        int64
	EnergyTotal   float64
	SpeedupPct    float64
	EnergySavePct float64
	EDSavePct     float64
	ED2SavePct    float64
	FullCovPct    float64
	PartCovPct    float64
	PInstIncPct   float64
	UsefulPct     float64
	AvgPThreadLen float64

	// SimCyclesPerSec is the measured simulator throughput of this run
	// (simulated cycles per wall-clock second). It is a substrate health
	// metric, not a paper artifact: it varies run to run, so determinism
	// checks must ignore it (omitempty lets them zero it out).
	SimCyclesPerSec float64 `json:",omitempty"`
}

func runReport(r *TargetRun) RunReport {
	return RunReport{
		Target:          r.Target.String(),
		PThreads:        len(r.Sel.PThreads),
		Cycles:          r.Res.Cycles,
		EnergyTotal:     r.Res.Energy.Total(),
		SimCyclesPerSec: r.SimCyclesPerSec(),
		SpeedupPct:      r.SpeedupPct,
		EnergySavePct:   r.EnergySavePct,
		EDSavePct:       r.EDSavePct,
		ED2SavePct:      r.ED2SavePct,
		FullCovPct:      r.FullCovPct,
		PartCovPct:      r.PartCovPct,
		PInstIncPct:     r.PInstIncPct,
		UsefulPct:       r.UsefulPct,
		AvgPThreadLen:   r.AvgPThreadLen,
	}
}

// TimePct is an execution-time breakdown by critical-path category,
// normalized to the unoptimized run's cycles = 100.
type TimePct struct {
	Mem    float64
	L2     float64
	Exec   float64
	Commit float64
	Fetch  float64
	Total  float64
}

func timePct(base, r *cpu.Result) TimePct {
	n := float64(base.Cycles) / 100
	return TimePct{
		Mem:    float64(r.TimeBreakdown[cpu.CatMem]) / n,
		L2:     float64(r.TimeBreakdown[cpu.CatL2]) / n,
		Exec:   float64(r.TimeBreakdown[cpu.CatExec]) / n,
		Commit: float64(r.TimeBreakdown[cpu.CatCommit]) / n,
		Fetch:  float64(r.TimeBreakdown[cpu.CatFetch]) / n,
		Total:  float64(r.Cycles) / n,
	}
}

// EnergyPct is an energy breakdown by structure and thread class, normalized
// to the unoptimized run's energy = 100.
type EnergyPct struct {
	ImemMain float64
	DmemMain float64
	L2Main   float64
	OoOMain  float64
	ROBBpred float64
	Idle     float64
	ImemPth  float64
	DmemPth  float64
	L2Pth    float64
	OoOPth   float64
	Total    float64
}

func energyPct(base, r *cpu.Result) EnergyPct {
	n := base.Energy.Total() / 100
	e := r.Energy
	return EnergyPct{
		ImemMain: e.ImemMain / n,
		DmemMain: e.DmemMain / n,
		L2Main:   e.L2Main / n,
		OoOMain:  e.OoOMain / n,
		ROBBpred: e.ROBBpred / n,
		Idle:     e.Idle / n,
		ImemPth:  e.ImemPth / n,
		DmemPth:  e.DmemPth / n,
		L2Pth:    e.L2Pth / n,
		OoOPth:   e.OoOPth / n,
		Total:    e.Total() / n,
	}
}

// Figure2Row is one benchmark × run-flavour breakdown pair ("N" unoptimized,
// "O" original-PTHSEL pre-execution).
type Figure2Row struct {
	Bench  string
	Run    string
	Time   TimePct
	Energy EnergyPct
}

// Figure2Report reproduces the paper's Figure 2: execution-time and energy
// breakdowns for unoptimized execution and PTHSEL-driven pre-execution.
type Figure2Report struct {
	Rows []Figure2Row
}

// Render formats both breakdown tables.
func (f *Figure2Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (left): execution-time breakdown, %% of unoptimized cycles\n")
	fmt.Fprintf(&b, "%-10s %-3s %7s %7s %7s %7s %7s %8s\n", "bench", "run", "mem", "L2", "exec", "commit", "fetch", "total")
	for _, row := range f.Rows {
		t := row.Time
		fmt.Fprintf(&b, "%-10s %-3s %7.1f %7.1f %7.1f %7.1f %7.1f %8.1f\n",
			row.Bench, row.Run, t.Mem, t.L2, t.Exec, t.Commit, t.Fetch, t.Total)
	}
	fmt.Fprintf(&b, "\nFigure 2 (right): energy breakdown, %% of unoptimized energy\n")
	fmt.Fprintf(&b, "%-10s %-3s %6s %6s %6s %6s %6s %6s %6s %6s %6s %6s %8s\n",
		"bench", "run", "imem", "dmem", "l2", "OoO", "rob+bp", "idle", "imemP", "dmemP", "l2P", "OoOP", "total")
	for _, row := range f.Rows {
		e := row.Energy
		fmt.Fprintf(&b, "%-10s %-3s %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %8.1f\n",
			row.Bench, row.Run,
			e.ImemMain, e.DmemMain, e.L2Main, e.OoOMain, e.ROBBpred, e.Idle,
			e.ImemPth, e.DmemPth, e.L2Pth, e.OoOPth, e.Total)
	}
	return b.String()
}

// BenchRuns couples one benchmark with its per-target run summaries, in the
// report's target order.
type BenchRuns struct {
	Name string
	Runs []RunReport
}

// GMeanRow is one target's geometric-mean improvements across a report's
// benchmarks.
type GMeanRow struct {
	Target        string
	SpeedupPct    float64
	EnergySavePct float64
	EDSavePct     float64
}

// Figure3Report reproduces the paper's Figure 3: improvements and
// diagnostics for the four primary targets across the benchmark suite.
type Figure3Report struct {
	Targets    []string
	Benchmarks []BenchRuns
	GMeans     []GMeanRow
}

// Render formats the improvements and diagnostics tables.
func (f *Figure3Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (top): %%IPC gain / %%energy save / %%ED save\n")
	fmt.Fprintf(&b, "%-10s", "bench")
	for _, tgt := range f.Targets {
		fmt.Fprintf(&b, " |%22s", tgt+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, br := range f.Benchmarks {
		fmt.Fprintf(&b, "%-10s", br.Name)
		for _, r := range br.Runs {
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-10s", "GMean")
	for _, g := range f.GMeans {
		fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", g.SpeedupPct, g.EnergySavePct, g.EDSavePct)
	}
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "\nFigure 3 (diagnostics): full+part coverage %% / %%useful spawns / %%p-inst increase / avg length\n")
	fmt.Fprintf(&b, "%-10s", "bench")
	for _, tgt := range f.Targets {
		fmt.Fprintf(&b, " |%28s", tgt+" (cov/useful/pinst/len)")
	}
	fmt.Fprintln(&b)
	for _, br := range f.Benchmarks {
		fmt.Fprintf(&b, "%-10s", br.Name)
		for _, r := range br.Runs {
			fmt.Fprintf(&b, " |%5.0f+%-4.0f%6.0f%8.1f%6.1f",
				r.FullCovPct, r.PartCovPct, r.UsefulPct, r.PInstIncPct, r.AvgPThreadLen)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table3Row is one benchmark's model-validation ratios: measured reduction
// divided by predicted reduction (1.0 = perfect; <1 = over-estimation).
type Table3Row struct {
	Name        string
	LatencyPred float64 // (Lbase − Lpe) / LADVagg
	EnergyPred  float64 // (Ebase − Epe) / EADVagg
	EDPred      float64 // (Pbase − Ppe) / PADVagg (composite at W = 0.5)
}

// Table3Report reproduces the paper's validation table for L-p-threads.
type Table3Report struct {
	Rows []Table3Row
}

// Render formats the validation table.
func (t *Table3Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: PTHSEL+E model validation (actual/predicted; 1.0 = exact)\n")
	fmt.Fprintf(&b, "%-24s", "Validation")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %10s", r.Name)
	}
	fmt.Fprintln(&b)
	for _, line := range []struct {
		label string
		get   func(Table3Row) float64
	}{
		{"Latency prediction", func(r Table3Row) float64 { return r.LatencyPred }},
		{"Energy prediction", func(r Table3Row) float64 { return r.EnergyPred }},
		{"ED prediction", func(r Table3Row) float64 { return r.EDPred }},
	} {
		fmt.Fprintf(&b, "%-24s", line.label)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, " %10.2f", line.get(r))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Figure4Report reproduces the realistic-profiling experiment (§5.3):
// p-threads selected from Ref-input profiles, measured on the Train input.
type Figure4Report struct {
	Targets    []string
	Benchmarks []BenchRuns
}

// Render formats the realistic-profiling table.
func (f *Figure4Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: realistic profiling (select on ref, measure on train)\n")
	fmt.Fprintf(&b, "%-10s", "bench")
	for _, tgt := range f.Targets {
		fmt.Fprintf(&b, " |%22s", tgt+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, br := range f.Benchmarks {
		fmt.Fprintf(&b, "%-10s", br.Name)
		for _, r := range br.Runs {
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Figure5Point is one (benchmark, axis point) evaluation of a sensitivity
// sweep.
type Figure5Point struct {
	Bench string
	Point string
	Runs  []RunReport
}

// Figure5Report reproduces one of the paper's Figure 5 sensitivity sweeps.
type Figure5Report struct {
	Axis    string
	Targets []string
	Points  []Figure5Point
}

// Render formats the sweep table.
func (f *Figure5Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: sensitivity to %s\n", f.Axis)
	fmt.Fprintf(&b, "%-10s %-9s", "bench", "point")
	for _, tgt := range f.Targets {
		fmt.Fprintf(&b, " |%22s", tgt+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%-10s %-9s", pt.Bench, pt.Point)
		for _, r := range pt.Runs {
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// SweepPointReport is one (benchmark, grid point) evaluation of a
// declarative sweep: the point's per-axis labels and its per-target runs.
type SweepPointReport struct {
	Bench string
	// Workload is the grid's label for a generated-workload row (the Bench
	// field carries the registered canonical name); empty for named
	// benchmarks.
	Workload string   `json:",omitempty"`
	Labels   []string `json:",omitempty"` // one per axis; empty for the base point
	Runs     []RunReport

	// Batched reports that at least one of this point's target runs was
	// measured through the shared-cursor batched engine (see
	// Runner.SetBatchWidth); BatchWidth is the configured batch width the
	// sweep scheduled with, not the realized size of any one batch (a
	// trace's last partial batch can be narrower, and its singletons fall
	// back to the serial path). Batched results are bit-identical to serial
	// runs, so these fields are scheduling provenance, not a result
	// dimension; serial sweeps omit them.
	Batched    bool `json:",omitempty"`
	BatchWidth int  `json:",omitempty"`
}

// benchLabel is the bench-column display name: the workload label when the
// row is a generated workload, the benchmark name otherwise.
func (p SweepPointReport) benchLabel() string {
	if p.Workload != "" {
		return p.Workload
	}
	return p.Bench
}

// Point renders the per-axis labels as a single point name.
func (p SweepPointReport) Point() string {
	if len(p.Labels) == 0 {
		return "base"
	}
	return strings.Join(p.Labels, "/")
}

// SweepReport is the structured result of a declarative multi-axis sweep:
// the cartesian grid's points, ordered benchmark-major then row-major
// across the axes (first axis slowest).
type SweepReport struct {
	Axes    []string `json:",omitempty"`
	Targets []string
	Points  []SweepPointReport
}

// Render formats the sweep grid table.
func (s *SweepReport) Render() string {
	var b strings.Builder
	axes := strings.Join(s.Axes, " × ")
	if axes == "" {
		axes = "base configuration"
	}
	fmt.Fprintf(&b, "Sweep: %s (%d points)\n", axes, len(s.Points))
	// Generated-workload labels and canonical gen/ names overflow the fixed
	// 10-char bench column, so size it to the widest row label.
	wb, wp := len("bench"), len("point")
	for _, pt := range s.Points {
		if n := len(pt.benchLabel()); n > wb {
			wb = n
		}
		if n := len(pt.Point()); n > wp {
			wp = n
		}
	}
	if wp < 18 {
		wp = 18
	}
	fmt.Fprintf(&b, "%-*s %-*s", wb, "bench", wp, "point")
	for _, tgt := range s.Targets {
		fmt.Fprintf(&b, " |%22s", tgt+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-*s %-*s", wb, pt.benchLabel(), wp, pt.Point())
		for _, r := range pt.Runs {
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ED2Row is one benchmark's L-vs-P2 ED² comparison.
type ED2Row struct {
	Bench     string
	LSavePct  float64
	P2SavePct float64
}

// ED2Report reproduces the §5.1 ED² discussion: P2-p-threads behave like
// L-p-threads; both improve ED² substantially.
type ED2Report struct {
	Rows    []ED2Row
	GMeanL  float64
	GMeanP2 float64
}

// Render formats the ED² comparison.
func (e *ED2Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ED² study: L vs P2 p-threads (%%ED2 save)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "bench", "L", "P2")
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f\n", r.Bench, r.LSavePct, r.P2SavePct)
	}
	fmt.Fprintf(&b, "%-10s %10.1f %10.1f\n", "GMean", e.GMeanL, e.GMeanP2)
	return b.String()
}

// CampaignBench is one benchmark's campaign outcome: either a baseline and
// per-target runs, or the error that prevented them.
type CampaignBench struct {
	Name     string
	Error    string          `json:",omitempty"`
	Baseline *BaselineReport `json:",omitempty"`
	Runs     []RunReport     `json:",omitempty"`
}

// CampaignReport is the partial-result outcome of a bounded-parallel
// campaign: per-benchmark successes and failures side by side, so one bad
// benchmark no longer discards the rest of the batch.
type CampaignReport struct {
	Targets    []string
	Benchmarks []CampaignBench

	errs []error // per-benchmark errors, parallel to Benchmarks (nil = ok)
}

// Err joins every per-benchmark failure (nil when all benchmarks
// succeeded). After a JSON round-trip the structured errors are gone;
// rebuild them from the entries' Error strings.
func (c *CampaignReport) Err() error {
	if c.errs != nil {
		return errors.Join(c.errs...)
	}
	var errs []error
	for _, b := range c.Benchmarks {
		if b.Error != "" {
			errs = append(errs, fmt.Errorf("%s: %s", b.Name, b.Error))
		}
	}
	return errors.Join(errs...)
}

// Failed counts benchmarks that did not complete (errored or never ran).
func (c *CampaignReport) Failed() int {
	n := 0
	for _, b := range c.Benchmarks {
		if b.Error != "" || b.Baseline == nil {
			n++
		}
	}
	return n
}

// Render formats the campaign summary table, successes first.
func (c *CampaignReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign: %d benchmarks × targets %s (%d failed)\n",
		len(c.Benchmarks), strings.Join(c.Targets, ","), c.Failed())
	fmt.Fprintf(&b, "%-10s %12s %10s", "bench", "base-cycles", "L2miss")
	for _, tgt := range c.Targets {
		fmt.Fprintf(&b, " |%22s", tgt+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, e := range c.Benchmarks {
		if e.Error != "" || e.Baseline == nil {
			continue
		}
		fmt.Fprintf(&b, "%-10s %12d %10d", e.Name, e.Baseline.Cycles, e.Baseline.DemandL2Misses)
		for _, r := range e.Runs {
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
		}
		fmt.Fprintln(&b)
	}
	for _, e := range c.Benchmarks {
		if e.Error != "" {
			fmt.Fprintf(&b, "%-10s FAILED: %s\n", e.Name, e.Error)
		}
	}
	return b.String()
}
