package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// escapeProgram builds a seeded random workload mixing ALU chains, loads,
// stores and a counted loop — enough dataflow variety that lowering the
// producer-delta escape threshold routes a meaningful fraction of links
// through the trace's overflow maps.
func escapeProgram(seed int64, iters int64) *isa.Program {
	rng := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) & 0x7FFFFFFF
	}
	const words = 128
	mem := make([]int64, words)
	for i := range mem {
		mem[i] = rng() % 4096
	}
	b := isa.NewBuilder("escape")
	b.MovI(1, 0)
	b.MovI(2, iters)
	b.Label("top")
	for k := 0; k < 16; k++ {
		dst := isa.Reg(3 + rng()%8)
		s1 := isa.Reg(1 + rng()%10)
		switch rng() % 4 {
		case 0:
			b.AddI(dst, s1, rng()%32)
		case 1:
			b.Add(dst, s1, isa.Reg(1+rng()%10))
		case 2:
			b.AndI(dst, s1, (words-1)*8)
			b.Load(isa.Reg(3+rng()%8), dst, 0)
		default:
			b.AndI(dst, s1, (words-1)*8)
			b.Store(dst, 0, isa.Reg(1+rng()%10))
		}
	}
	b.AddI(1, 1, 1)
	b.CmpLT(11, 1, 2)
	b.BrNZ(11, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

// TestEscapePathResultsIdentical is the end-to-end stress case for the
// 32-bit producer-delta escape path: the same randomized program is traced
// twice — once with the normal inline delta encoding and once with the
// escape threshold forced low enough that producer links go through the
// overflow maps — and both traces must drive the full timing simulation
// (both engines) to byte-identical Result JSON. The producer columns are
// the only thing that differs between the two encodings, so any decode
// asymmetry shows up as a timing divergence.
func TestEscapePathResultsIdentical(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{7, 1234} {
		p := escapeProgram(seed, 800)
		plain := trace.MustRun(p)
		it := trace.Interpreter{DeltaLimit: 3}
		escaped, err := it.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, engine := range []cpu.Engine{cpu.EngineEvent, cpu.EngineScan} {
			cfg := DefaultConfig().CPU
			cfg.Engine = engine
			run := func(tr *trace.Trace) []byte {
				res, err := Simulate(ctx, cfg, tr, nil)
				if err != nil {
					t.Fatal(err)
				}
				raw, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return raw
			}
			if a, b := run(plain), run(escaped); !bytes.Equal(a, b) {
				t.Errorf("seed %d engine %q: escaped-delta trace diverged from inline-delta trace", seed, engine)
			}
		}
	}
}
