package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifactdisk"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// EventKind classifies an observer notification.
type EventKind string

// Observer event kinds, in lifecycle order.
const (
	EventPrepareStart  EventKind = "prepare-start"  // a cold preparation assembly began
	EventPrepareDone   EventKind = "prepare-done"   // a cold preparation assembly finished
	EventPrepareCached EventKind = "prepare-cached" // the artifact store satisfied a whole preparation
	EventStageStart    EventKind = "stage-start"    // a cold pipeline stage began (Stage names it)
	EventStageDone     EventKind = "stage-done"     // a cold pipeline stage finished
	EventStageCached   EventKind = "stage-cached"   // the artifact store satisfied a pipeline stage
	EventStageSpill    EventKind = "stage-spill"    // the disk tier satisfied a pipeline stage
	EventRunStart      EventKind = "run-start"      // one (benchmark, target) measurement began
	EventRunDone       EventKind = "run-done"       // one (benchmark, target) measurement finished
	EventBenchDone     EventKind = "bench-done"     // one campaign benchmark finished (Done/Total track progress)
	EventPointDone     EventKind = "point-done"     // one sweep grid point finished (Point labels it)
)

// Event is one progress notification delivered to a Runner's observer.
// Fields beyond Kind and Bench are populated where meaningful: Input for
// preparation and stage events, Stage for stage events, Target for run
// events, Point for sweep progress, Done/Total for campaign and sweep
// progress, Err when the step failed.
type Event struct {
	Kind   EventKind
	Bench  string
	Input  string
	Stage  string
	Target string
	Point  string
	Done   int
	Total  int
	Err    error

	// DurationNS carries the build's wall-clock nanoseconds on
	// EventStageDone and EventPrepareDone (0 otherwise) — the observation
	// stream the scheduler's cost model is built from.
	DurationNS int64

	// SimCyclesPerSec carries the run's measured simulator throughput on
	// EventRunDone (0 otherwise), so observers can stream substrate health
	// alongside progress.
	SimCyclesPerSec float64

	// Tag carries the submission tag threaded through the context (see
	// WithEventTag), so a shared observer can attribute events from
	// concurrent entry points — the daemon routes them to jobs with it.
	Tag string
}

// eventTagKey is the context key behind WithEventTag.
type eventTagKey struct{}

// WithEventTag returns a context whose Runner events carry tag, letting one
// observer demultiplex concurrent Sweeps, Campaigns and Prepares over a
// shared engine. Events emitted from inside a shared singleflight build
// carry the computing caller's tag.
func WithEventTag(ctx context.Context, tag string) context.Context {
	return context.WithValue(ctx, eventTagKey{}, tag)
}

func eventTag(ctx context.Context) string {
	tag, _ := ctx.Value(eventTagKey{}).(string)
	return tag
}

// Runner is the experiment engine behind the public Lab façade. It owns the
// staged artifact store — every pipeline stage cached under a per-stage
// content fingerprint, so figures, sweeps, studies and campaign workers
// sharing one Runner share every upstream artifact their configurations
// agree on — and a bounded worker pool for multi-benchmark fan-out.
type Runner struct {
	cfg         Config
	parallelism int
	observe     func(Event)

	// batchWidth is the sweep batching knob (see SetBatchWidth): at >= 2,
	// Sweep measures event-engine points through cpu.BatchSimulator in
	// groups of up to batchWidth sharing one trace pass. It is scheduling
	// state, deliberately outside Config so it never reaches a fingerprint.
	batchWidth int

	// sched enables cost-modeled critical-path scheduling of sweeps and
	// campaigns (the default; see SetScheduling). Like batchWidth it is
	// scheduling state, never part of a fingerprint: toggling it changes
	// build order, not results.
	sched bool

	// mappedSpill enables the zero-copy mmap trace-spill path (the
	// default; see SetMappedSpill). Like sched it is never part of a
	// fingerprint: results are byte-identical mapped or decoded, only the
	// load cost changes.
	mappedSpill bool

	// mappings holds the live artifact mappings whose columns back mapped
	// traces. In-memory artifacts live for the Runner's lifetime, so their
	// backing mappings must too; the store's deferred byte accounting
	// handles eviction underneath a live reader.
	mapMu    sync.Mutex
	mappings []*artifactdisk.Mapping

	obsMu sync.Mutex // serializes observer callbacks

	store *artifactStore
	disk  *artifactdisk.Store // optional spill tier (see AttachDiskStore)
	costs *costModel          // EWMA build costs feeding the scheduler

	stageStats []stageCounters    // per-stage request outcomes, indexed by stageIndex
	stageLat   []latencyReservoir // per-stage cold-build latencies, same indexing
}

// stageCounters tallies one stage's artifact-store request outcomes.
type stageCounters struct {
	cold   atomic.Int64 // this engine executed the stage
	hit    atomic.Int64 // served from a completed in-memory entry
	shared atomic.Int64 // waited on another caller's in-flight build
	spill  atomic.Int64 // satisfied by a disk-tier load
	mapped atomic.Int64 // of the spill loads, served via the mmap path
}

// NewRunner creates an engine over cfg. parallelism bounds concurrent
// benchmark evaluations (<= 0 means GOMAXPROCS); observe, if non-nil,
// receives progress events (serialized, from worker goroutines).
func NewRunner(cfg Config, parallelism int, observe func(Event)) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		cfg:         cfg,
		parallelism: parallelism,
		observe:     observe,
		sched:       true,
		mappedSpill: true,
		store:       newArtifactStore(),
		costs:       newCostModel(),
		stageStats:  make([]stageCounters, len(stageIndex)),
		stageLat:    make([]latencyReservoir, len(stageIndex)),
	}
}

// Config returns the engine's base configuration.
func (r *Runner) Config() Config { return r.cfg }

// DefaultBatchWidth is the batch width a sweep uses when the base
// configuration selects cpu.EngineBatched without an explicit width.
const DefaultBatchWidth = 4

// SetBatchWidth sets the sweep batch width: k >= 2 makes Sweep advance up
// to k event-engine grid points per shared trace pass (bit-identical to
// serial runs; see Runner.Sweep), k <= 1 restores the serial path. Batch
// width is a scheduling property, not a configuration input: it never
// enters an artifact fingerprint, so toggling it shares every cached
// stage with serial runs. Call it before issuing work; it is not
// synchronized with in-flight sweeps.
func (r *Runner) SetBatchWidth(k int) { r.batchWidth = k }

// SetScheduling toggles cost-modeled critical-path scheduling of sweep and
// campaign fan-out (enabled by default). Disabled, workers claim work in
// naive bench-major grid order — the baseline the scheduling benchmark
// gates against. Like batch width it is scheduling state, not
// configuration: results are byte-identical either way, only build order
// and wall-clock change. Call before issuing work; it is not synchronized
// with in-flight sweeps.
func (r *Runner) SetScheduling(enabled bool) { r.sched = enabled }

// SetMappedSpill toggles the zero-copy mmap path for trace spill loads
// (enabled by default). Disabled — or on platforms without mmap — warm
// trace loads fall back to the chunk-parallel heap decode. Results are
// byte-identical either way; only load cost and memory sharing change.
// Call before issuing work; it is not synchronized with in-flight loads.
func (r *Runner) SetMappedSpill(enabled bool) { r.mappedSpill = enabled }

// stageIndex maps each pipeline stage to its counter slot, derived from
// Stages() so the stage list is maintained in exactly one place.
var stageIndex = func() map[Stage]int {
	m := make(map[Stage]int, len(Stages()))
	for i, st := range Stages() {
		m[st] = i
	}
	return m
}()

func (r *Runner) stageCount(st Stage) *stageCounters {
	i, ok := stageIndex[st]
	if !ok {
		//lab:allow(panicpath: internal invariant; every Stage constant is in stageIndex, so a miss is a programming error in this package)
		panic(fmt.Sprintf("experiments: unknown pipeline stage %q", st))
	}
	return &r.stageStats[i]
}

// StagePrepares reports how many cold executions of one pipeline stage the
// engine has performed, across all benchmarks and configurations — the
// observable behind the per-stage reuse guarantee (a 3-point sweep along an
// axis a stage never reads executes that stage once per benchmark). A stage
// satisfied by the disk spill tier is not a cold execution; StoreStats
// breaks out every outcome. StagePrepares(StagePrepared) equals Prepares().
func (r *Runner) StagePrepares(st Stage) int64 {
	i, ok := stageIndex[st]
	if !ok {
		return 0
	}
	return r.stageStats[i].cold.Load()
}

// latencyWindow bounds each stage's latency reservoir: percentiles are over
// the most recent builds, so a daemon that has been up for days reports
// current behaviour, not its lifetime average.
const latencyWindow = 256

// latencyReservoir is a mutex-guarded ring of recent build durations, the
// sample behind the per-stage p50/p95 in StoreStats.
type latencyReservoir struct {
	mu  sync.Mutex
	buf []int64 // nanoseconds, ring once full
	pos int
}

func (l *latencyReservoir) record(ns int64) {
	l.mu.Lock()
	if len(l.buf) < latencyWindow {
		l.buf = append(l.buf, ns)
	} else {
		l.buf[l.pos] = ns
		l.pos = (l.pos + 1) % latencyWindow
	}
	l.mu.Unlock()
}

// percentiles reports the window's p50 and p95 (nearest-rank), 0/0 when no
// build has been observed.
func (l *latencyReservoir) percentiles() (p50, p95 int64) {
	l.mu.Lock()
	s := append([]int64(nil), l.buf...)
	l.mu.Unlock()
	if len(s) == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) int64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return rank(0.50), rank(0.95)
}

func (r *Runner) stageLatency(st Stage) *latencyReservoir {
	i, ok := stageIndex[st]
	if !ok {
		//lab:allow(panicpath: internal invariant; every Stage constant is in stageIndex, so a miss is a programming error in this package)
		panic(fmt.Sprintf("experiments: unknown pipeline stage %q", st))
	}
	return &r.stageLat[i]
}

// observeBuild feeds one observed cold build into the cost model and the
// stage's latency reservoir.
func (r *Runner) observeBuild(st Stage, name string, input program.InputClass, d time.Duration) {
	r.costs.record(st, name, input, d.Seconds())
	r.stageLatency(st).record(d.Nanoseconds())
}

// observeArtifact notes size facts about a freshly materialized artifact —
// currently the trace's instruction count, which keys the cost model's
// workload size classes.
func (r *Runner) observeArtifact(name string, input program.InputClass, v any) {
	if tr, ok := v.(*trace.Trace); ok {
		r.costs.observeSize(name, input, int64(tr.Len()))
	}
}

func (r *Runner) emit(ctx context.Context, ev Event) {
	if r.observe == nil {
		return
	}
	ev.Tag = eventTag(ctx)
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	r.observe(ev)
}

// Prepare returns the (benchmark, input, cfg) preparation. The assembled
// whole-config view is computed at most once per engine, and each of its
// pipeline stages is cached individually under a per-stage content
// fingerprint, so two configurations that agree on the fields a stage reads
// share that stage's artifact (a sweep point that mutates one knob rebuilds
// only the stages downstream of it). Concurrent requests for the same
// artifact share a single in-flight computation. Failed computations are
// cached (a benchmark that cannot prepare will not prepare on retry) except
// when the failure was a context cancellation, which is the waiting
// caller's problem, not the artifact's.
func (r *Runner) Prepare(ctx context.Context, name string, input program.InputClass, cfg Config) (*Prepared, error) {
	if err := validateEngine(cfg.CPU.Engine); err != nil {
		return nil, err
	}
	// The outer key needs only the whole-config fingerprint chained through
	// the workload fingerprint; the full stage plan is computed once, on a
	// cold miss, inside stagedPrepare.
	wfp, err := workloadFingerprint(name)
	if err != nil {
		return nil, err
	}
	fp, err := preparedFingerprint(cfg, wfp)
	if err != nil {
		return nil, err
	}
	key := artifactKey{name: name, input: input, stage: StagePrepared, fp: fp}
	val, outcome, err := r.store.get(ctx, key, func() (any, error) {
		r.stageCount(StagePrepared).cold.Add(1)
		r.emit(ctx, Event{Kind: EventPrepareStart, Bench: name, Input: input.String()})
		start := time.Now()
		p, perr := r.stagedPrepare(ctx, name, input, cfg)
		elapsed := time.Since(start)
		r.emit(ctx, Event{Kind: EventPrepareDone, Bench: name, Input: input.String(),
			Err: perr, DurationNS: elapsed.Nanoseconds()})
		if perr == nil {
			r.observeBuild(StagePrepared, name, input, elapsed)
		}
		return p, perr
	})
	if err != nil {
		return nil, err
	}
	switch outcome {
	case storeHit:
		r.stageCount(StagePrepared).hit.Add(1)
		r.emit(ctx, Event{Kind: EventPrepareCached, Bench: name, Input: input.String()})
	case storeShared:
		r.stageCount(StagePrepared).shared.Add(1)
	}
	return val.(*Prepared), nil
}

// validateNames rejects unknown and silently-duplicated benchmark names
// with a single error listing every problem and the valid set. Entry points
// that fan out over benchmark lists (campaigns, figures, sweeps) call it up
// front so a typo fails fast instead of surfacing as one opaque
// per-benchmark failure deep in a long run.
func validateNames(names []string) error {
	if len(names) == 0 {
		return errors.New("experiments: no benchmarks given")
	}
	valid := make(map[string]bool)
	for _, n := range program.Names() {
		valid[n] = true
	}
	seen := make(map[string]bool, len(names))
	var unknown, dups []string
	for _, n := range names {
		if !valid[n] {
			unknown = append(unknown, n)
		} else if seen[n] {
			dups = append(dups, n)
		}
		seen[n] = true
	}
	if len(unknown) == 0 && len(dups) == 0 {
		return nil
	}
	all := program.Names()
	sort.Strings(all)
	var parts []string
	if len(unknown) > 0 {
		parts = append(parts, fmt.Sprintf("unknown benchmarks %s", strings.Join(unknown, ", ")))
	}
	if len(dups) > 0 {
		parts = append(parts, fmt.Sprintf("duplicated benchmarks %s", strings.Join(dups, ", ")))
	}
	return fmt.Errorf("experiments: %s (valid: %s)", strings.Join(parts, "; "), strings.Join(all, ", "))
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// forEach runs fn(0..n-1) on the bounded pool and waits for completion. It
// stops launching new work once ctx is cancelled; already-running work is
// interrupted by its own ctx checks.
func (r *Runner) forEach(ctx context.Context, n int, fn func(i int)) {
	sem := make(chan struct{}, r.parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runBench evaluates one benchmark under every target, preparing through
// the artifact store.
func (r *Runner) runBench(ctx context.Context, name string, targets []pthsel.Target, cfg Config) (*BenchResult, error) {
	prep, err := r.Prepare(ctx, name, cfg.MeasureInput, cfg)
	if err != nil {
		return nil, err
	}
	br := &BenchResult{Name: name, Prepared: prep, Runs: map[pthsel.Target]*TargetRun{}}
	start := time.Now()
	for _, tgt := range targets {
		r.emit(ctx, Event{Kind: EventRunStart, Bench: name, Target: tgt.String()})
		run, err := RunTarget(ctx, prep, prep, tgt, cfg)
		ev := Event{Kind: EventRunDone, Bench: name, Target: tgt.String(), Err: err}
		if err == nil {
			ev.SimCyclesPerSec = run.SimCyclesPerSec()
		}
		r.emit(ctx, ev)
		if err != nil {
			return nil, err
		}
		br.Runs[tgt] = run
	}
	if len(targets) > 0 {
		r.costs.record(stageMeasure, name, cfg.MeasureInput,
			time.Since(start).Seconds()/float64(len(targets)))
	}
	return br, nil
}

// benchResults evaluates names × targets on the pool. The returned slice is
// parallel to names with nil holes for failed benchmarks; the error is the
// join of every per-benchmark failure.
func (r *Runner) benchResults(ctx context.Context, names []string, targets []pthsel.Target, cfg Config) ([]*BenchResult, error) {
	results := make([]*BenchResult, len(names))
	errs := make([]error, len(names))
	r.forEach(ctx, len(names), func(i int) {
		br, err := r.runBench(ctx, names[i], targets, cfg)
		results[i] = br
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", names[i], err)
		}
	})
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, errors.Join(errs...)
}

// Campaign evaluates names × targets on the pool and reports per-benchmark
// outcomes instead of failing the whole batch on the first error: every
// benchmark that succeeded carries its baseline and runs, every one that
// failed carries its error string. Unknown or duplicated benchmark names
// are rejected up front (see validateNames); beyond that, the returned
// error is non-nil only when the context was cancelled, and per-benchmark
// runtime failures are reported through the CampaignReport (see its Err
// method).
func (r *Runner) Campaign(ctx context.Context, names []string, targets []pthsel.Target) (*CampaignReport, error) {
	if err := validateNames(names); err != nil {
		return nil, err
	}
	entries := make([]CampaignBench, len(names))
	for i, name := range names {
		entries[i] = CampaignBench{Name: name}
	}
	errs := make([]error, len(names))
	var done atomic.Int64
	runOne := func(ctx context.Context, i int) {
		name := names[i]
		br, err := r.runBench(ctx, name, targets, r.cfg)
		if err != nil {
			entries[i].Error = err.Error()
			errs[i] = fmt.Errorf("%s: %w", name, err)
		} else {
			entries[i].Baseline = baselineReport(br.Prepared.Baseline)
			for _, tgt := range targets {
				entries[i].Runs = append(entries[i].Runs, runReport(br.Runs[tgt]))
			}
		}
		r.emit(ctx, Event{Kind: EventBenchDone, Bench: name, Err: err,
			Done: int(done.Add(1)), Total: len(names)})
	}
	if r.sched {
		// Critical-path order: expand every benchmark's preparation chain
		// into the shared DAG and hang its measurement sink off the prepared
		// node. Entries fill preassigned slots, so report order is names
		// order regardless of completion order.
		b := r.newDAGBuilder()
		for i, name := range names {
			prep, _ := b.addChain(name, r.cfg.MeasureInput, r.cfg)
			i := i
			b.addMeasure(name, r.measureEstimate(name, r.cfg.MeasureInput, len(targets)), prep,
				func(ctx context.Context) { runOne(ctx, i) })
		}
		r.runDAG(ctx, b)
		r.costs.flush()
	} else {
		r.forEach(ctx, len(names), func(i int) { runOne(ctx, i) })
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Benchmarks that never ran (cancelled before launch or mid-flight)
		// are failures too: without this, partial-report consumers would
		// see entries with neither results nor an error.
		for i := range entries {
			if entries[i].Error == "" && entries[i].Baseline == nil {
				entries[i].Error = "not run: " + ctxErr.Error()
				if errs[i] == nil {
					errs[i] = fmt.Errorf("%s: not run: %w", entries[i].Name, ctxErr)
				}
			}
		}
	}
	rep := &CampaignReport{
		Targets:    targetNames(targets),
		Benchmarks: entries,
		errs:       errs,
	}
	return rep, ctx.Err()
}

func targetNames(targets []pthsel.Target) []string {
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = t.String()
	}
	return names
}
