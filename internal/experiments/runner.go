package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/program"
	"repro/internal/pthsel"
)

// EventKind classifies an observer notification.
type EventKind string

// Observer event kinds, in lifecycle order.
const (
	EventPrepareStart  EventKind = "prepare-start"  // a cold preparation began
	EventPrepareDone   EventKind = "prepare-done"   // a cold preparation finished
	EventPrepareCached EventKind = "prepare-cached" // the artifact store satisfied a preparation
	EventRunStart      EventKind = "run-start"      // one (benchmark, target) measurement began
	EventRunDone       EventKind = "run-done"       // one (benchmark, target) measurement finished
	EventBenchDone     EventKind = "bench-done"     // one campaign benchmark finished (Done/Total track progress)
)

// Event is one progress notification delivered to a Runner's observer.
// Fields beyond Kind and Bench are populated where meaningful: Input for
// preparation events, Target for run events, Done/Total for campaign
// progress, Err when the step failed.
type Event struct {
	Kind   EventKind
	Bench  string
	Input  string
	Target string
	Done   int
	Total  int
	Err    error

	// SimCyclesPerSec carries the run's measured simulator throughput on
	// EventRunDone (0 otherwise), so observers can stream substrate health
	// alongside progress.
	SimCyclesPerSec float64
}

// prepKey identifies one artifact-store entry: a benchmark prepared on one
// input under one exact configuration.
type prepKey struct {
	name        string
	input       program.InputClass
	fingerprint string
}

// prepEntry is a single-flight store slot: the first requester computes,
// everyone else waits on done.
type prepEntry struct {
	done chan struct{}
	prep *Prepared
	err  error
}

// Runner is the experiment engine behind the public Lab façade. It owns a
// memoizing artifact store keyed by (benchmark, input, config fingerprint),
// so every figure, table, sweep and campaign sharing one Runner shares one
// preparation per benchmark, and a bounded worker pool for multi-benchmark
// fan-out.
type Runner struct {
	cfg         Config
	parallelism int
	observe     func(Event)

	obsMu sync.Mutex // serializes observer callbacks

	mu    sync.Mutex
	store map[prepKey]*prepEntry

	prepares atomic.Int64 // cold preparations actually executed
}

// NewRunner creates an engine over cfg. parallelism bounds concurrent
// benchmark evaluations (<= 0 means GOMAXPROCS); observe, if non-nil,
// receives progress events (serialized, from worker goroutines).
func NewRunner(cfg Config, parallelism int, observe func(Event)) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		cfg:         cfg,
		parallelism: parallelism,
		observe:     observe,
		store:       map[prepKey]*prepEntry{},
	}
}

// Config returns the engine's base configuration.
func (r *Runner) Config() Config { return r.cfg }

// Prepares reports how many cold preparations the engine has executed —
// the probe behind the O(benchmarks) preparation guarantee.
func (r *Runner) Prepares() int64 { return r.prepares.Load() }

func (r *Runner) emit(ev Event) {
	if r.observe == nil {
		return
	}
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	r.observe(ev)
}

// fingerprint hashes a configuration into the artifact-store key, so sweeps
// that mutate the config (Figure 5) get distinct entries while repeated
// figures over the same config share one.
func fingerprint(cfg Config) string {
	raw, err := json.Marshal(cfg)
	if err != nil {
		// Config is a tree of plain values; Marshal cannot fail on it.
		panic(fmt.Sprintf("experiments: config fingerprint: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}

// Prepare returns the (benchmark, input, cfg) preparation, computing it at
// most once per engine. Concurrent requests for the same key share a single
// in-flight computation. Failed computations are cached (a benchmark that
// cannot prepare will not prepare on retry) except when the failure was a
// context cancellation, which is the waiting caller's problem, not the
// artifact's.
func (r *Runner) Prepare(ctx context.Context, name string, input program.InputClass, cfg Config) (*Prepared, error) {
	key := prepKey{name: name, input: input, fingerprint: fingerprint(cfg)}
	for {
		r.mu.Lock()
		if e, ok := r.store[key]; ok {
			r.mu.Unlock()
			// A true store hit is an entry that was already complete when we
			// found it; waiting for a concurrent in-flight preparation shares
			// its result but is not a cache hit (the prepare-start/done events
			// of the computing caller already describe that work).
			hit := false
			select {
			case <-e.done:
				hit = true
			default:
			}
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err == nil {
				if hit {
					r.emit(Event{Kind: EventPrepareCached, Bench: name, Input: input.String()})
				}
				return e.prep, nil
			}
			if !isContextErr(e.err) {
				return nil, e.err
			}
			// The computing caller was cancelled; retire the poisoned entry
			// (unless someone already replaced it) and retry under our ctx.
			r.mu.Lock()
			if r.store[key] == e {
				delete(r.store, key)
			}
			r.mu.Unlock()
			continue
		}
		e := &prepEntry{done: make(chan struct{})}
		r.store[key] = e
		r.mu.Unlock()

		r.prepares.Add(1)
		r.emit(Event{Kind: EventPrepareStart, Bench: name, Input: input.String()})
		e.prep, e.err = Prepare(ctx, name, input, cfg)
		close(e.done)
		if isContextErr(e.err) {
			r.mu.Lock()
			if r.store[key] == e {
				delete(r.store, key)
			}
			r.mu.Unlock()
		}
		r.emit(Event{Kind: EventPrepareDone, Bench: name, Input: input.String(), Err: e.err})
		return e.prep, e.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// forEach runs fn(0..n-1) on the bounded pool and waits for completion. It
// stops launching new work once ctx is cancelled; already-running work is
// interrupted by its own ctx checks.
func (r *Runner) forEach(ctx context.Context, n int, fn func(i int)) {
	sem := make(chan struct{}, r.parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runBench evaluates one benchmark under every target, preparing through
// the artifact store.
func (r *Runner) runBench(ctx context.Context, name string, targets []pthsel.Target, cfg Config) (*BenchResult, error) {
	prep, err := r.Prepare(ctx, name, cfg.MeasureInput, cfg)
	if err != nil {
		return nil, err
	}
	br := &BenchResult{Name: name, Prepared: prep, Runs: map[pthsel.Target]*TargetRun{}}
	for _, tgt := range targets {
		r.emit(Event{Kind: EventRunStart, Bench: name, Target: tgt.String()})
		run, err := RunTarget(ctx, prep, prep, tgt, cfg)
		ev := Event{Kind: EventRunDone, Bench: name, Target: tgt.String(), Err: err}
		if err == nil {
			ev.SimCyclesPerSec = run.SimCyclesPerSec()
		}
		r.emit(ev)
		if err != nil {
			return nil, err
		}
		br.Runs[tgt] = run
	}
	return br, nil
}

// benchResults evaluates names × targets on the pool. The returned slice is
// parallel to names with nil holes for failed benchmarks; the error is the
// join of every per-benchmark failure.
func (r *Runner) benchResults(ctx context.Context, names []string, targets []pthsel.Target, cfg Config) ([]*BenchResult, error) {
	results := make([]*BenchResult, len(names))
	errs := make([]error, len(names))
	r.forEach(ctx, len(names), func(i int) {
		br, err := r.runBench(ctx, names[i], targets, cfg)
		results[i] = br
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", names[i], err)
		}
	})
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, errors.Join(errs...)
}

// Campaign evaluates names × targets on the pool and reports per-benchmark
// outcomes instead of failing the whole batch on the first error: every
// benchmark that succeeded carries its baseline and runs, every one that
// failed carries its error string. The returned error is non-nil only when
// the context was cancelled; per-benchmark failures are reported through
// the CampaignReport (see its Err method).
func (r *Runner) Campaign(ctx context.Context, names []string, targets []pthsel.Target) (*CampaignReport, error) {
	entries := make([]CampaignBench, len(names))
	for i, name := range names {
		entries[i] = CampaignBench{Name: name}
	}
	errs := make([]error, len(names))
	var done atomic.Int64
	r.forEach(ctx, len(names), func(i int) {
		name := names[i]
		br, err := r.runBench(ctx, name, targets, r.cfg)
		if err != nil {
			entries[i].Error = err.Error()
			errs[i] = fmt.Errorf("%s: %w", name, err)
		} else {
			entries[i].Baseline = baselineReport(br.Prepared.Baseline)
			for _, tgt := range targets {
				entries[i].Runs = append(entries[i].Runs, runReport(br.Runs[tgt]))
			}
		}
		r.emit(Event{Kind: EventBenchDone, Bench: name, Err: err,
			Done: int(done.Add(1)), Total: len(names)})
	})
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Benchmarks that never ran (cancelled before launch or mid-flight)
		// are failures too: without this, partial-report consumers would
		// see entries with neither results nor an error.
		for i := range entries {
			if entries[i].Error == "" && entries[i].Baseline == nil {
				entries[i].Error = "not run: " + ctxErr.Error()
				if errs[i] == nil {
					errs[i] = fmt.Errorf("%s: not run: %w", entries[i].Name, ctxErr)
				}
			}
		}
	}
	rep := &CampaignReport{
		Targets:    targetNames(targets),
		Benchmarks: entries,
		errs:       errs,
	}
	return rep, ctx.Err()
}

func targetNames(targets []pthsel.Target) []string {
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = t.String()
	}
	return names
}
