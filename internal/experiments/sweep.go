package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/program/gen"
	"repro/internal/pthsel"
)

// AxisPoint is one point on a sweep axis: a human-readable label and the
// configuration mutation that realizes the point. A nil Mutate leaves the
// base configuration untouched (useful for a "base" point).
type AxisPoint struct {
	Label  string
	Mutate func(*Config) `json:"-"`
}

// Axis is one named dimension of a sweep grid.
type Axis struct {
	Name   string
	Points []AxisPoint
}

// GridAxis converts one of the paper's Figure 5 sensitivity axes into a
// declarative sweep axis (the paper's three points, in order).
func GridAxis(a SweepAxis) Axis {
	labels, mutations := SweepPoints(a)
	ax := Axis{Name: a.String(), Points: make([]AxisPoint, len(labels))}
	for i := range labels {
		ax.Points[i] = AxisPoint{Label: labels[i], Mutate: mutations[i]}
	}
	return ax
}

// ParseSweepAxis parses a sensitivity-axis name as used by the CLIs and the
// paper's figures: the short forms "idle", "mem" and "l2", or the canonical
// axis names ("idle-energy-factor", "memory-latency", "L2-size").
func ParseSweepAxis(s string) (SweepAxis, error) {
	switch s {
	case "idle", SweepIdleFactor.String():
		return SweepIdleFactor, nil
	case "mem", SweepMemLatency.String():
		return SweepMemLatency, nil
	case "l2", SweepL2Size.String():
		return SweepL2Size, nil
	}
	return 0, fmt.Errorf("unknown sweep axis %q (want idle, mem or l2)", s)
}

// WorkloadPoint is one generated workload participating in a sweep: a
// human-readable label (defaulting to the spec's canonical name) plus the
// spec realizing it.
type WorkloadPoint struct {
	Label string
	Spec  gen.Spec
}

// GenPoint is one point on a generator-knob axis: a label plus the spec
// mutation realizing it — the workload analogue of AxisPoint.
type GenPoint struct {
	Label  string
	Mutate func(*gen.Spec)
}

// GenAxis expands a base spec through per-point mutations into the workload
// points of a Grid, so generator knobs sweep exactly like config knobs:
//
//	g.Workloads = experiments.GenAxis(gen.Spec{Family: gen.PointerChase, Seed: 1},
//	        experiments.GenPoint{Label: "d=500", Mutate: func(s *gen.Spec) { s.Depth = 500 }},
//	        experiments.GenPoint{Label: "d=2000", Mutate: func(s *gen.Spec) { s.Depth = 2000 }})
func GenAxis(base gen.Spec, pts ...GenPoint) []WorkloadPoint {
	out := make([]WorkloadPoint, len(pts))
	for i, pt := range pts {
		s := base
		if pt.Mutate != nil {
			pt.Mutate(&s)
		}
		out[i] = WorkloadPoint{Label: pt.Label, Spec: s}
	}
	return out
}

// Grid declares a multi-axis sensitivity sweep: the cartesian product of
// every axis's points, evaluated for every benchmark under every target.
// With no axes the grid has a single point at the engine's base
// configuration; with no targets it defaults to the paper's sensitivity
// targets (L, E, P).
type Grid struct {
	Axes       []Axis
	Benchmarks []string
	// Workloads extends the benchmark dimension with generated workloads:
	// each point's spec is registered (idempotently) when the sweep starts
	// and then evaluated like a named benchmark under every axis point and
	// target, sharing the staged artifact store the same way — an axis over
	// a generator knob the config axes never read (chase depth, branch mix)
	// re-traces nothing between config points.
	Workloads []WorkloadPoint
	Targets   []pthsel.Target
}

// Points returns the number of configuration points in the grid (the
// product of the axis sizes; 1 with no axes).
func (g Grid) Points() int {
	n := 1
	for _, ax := range g.Axes {
		n *= len(ax.Points)
	}
	return n
}

// gridPoint is one realized configuration point of a grid.
type gridPoint struct {
	labels []string // one label per axis, in axis order
	cfg    Config
}

// points expands the cartesian product in row-major order (the first axis
// varies slowest), mutating a copy of base at each point.
func (g Grid) points(base Config) ([]gridPoint, error) {
	for _, ax := range g.Axes {
		if len(ax.Points) == 0 {
			return nil, fmt.Errorf("experiments: sweep axis %q has no points", ax.Name)
		}
	}
	total := g.Points()
	pts := make([]gridPoint, 0, total)
	ix := make([]int, len(g.Axes))
	for idx := 0; idx < total; idx++ {
		rem := idx
		for ai := len(g.Axes) - 1; ai >= 0; ai-- {
			ix[ai] = rem % len(g.Axes[ai].Points)
			rem /= len(g.Axes[ai].Points)
		}
		cfg := base
		labels := make([]string, len(g.Axes))
		// Mutations apply in axis order, so when two axes touch the same
		// field the later axis wins — matching how the labels read.
		for ai, ax := range g.Axes {
			pt := ax.Points[ix[ai]]
			labels[ai] = pt.Label
			if pt.Mutate != nil {
				pt.Mutate(&cfg)
			}
		}
		pts = append(pts, gridPoint{labels: labels, cfg: cfg})
	}
	return pts, nil
}

// Sweep evaluates a declarative grid on the bounded worker pool: every
// (benchmark, grid point) pair is prepared through the staged artifact
// store — so points that agree on a stage's config fields share its trace,
// profile, slice trees, curves and baseline instead of rebuilding them —
// and measured under every target. Per-point progress is streamed as
// EventPointDone events. The report's points are ordered benchmark-major,
// then row-major across the axes (first axis slowest), independent of
// worker scheduling.
//
// With a batch width of k >= 2 installed (SetBatchWidth, or a base
// configuration selecting cpu.EngineBatched), measurements whose points
// share identical prepared artifacts — the same trace — are partitioned
// into batches of up to k and advanced through one shared streaming pass
// per batch (cpu.BatchSimulator). Results are bit-identical to the serial
// path; points measured this way carry Batched/BatchWidth in the report.
// K=1 and reference scan-engine points always take the serial path.
func (r *Runner) Sweep(ctx context.Context, g Grid) (*SweepReport, error) {
	jobs, targets, axes, err := r.expandGrid(g)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{
		Axes:    axes,
		Targets: targetNames(targets),
		Points:  make([]SweepPointReport, len(jobs)),
	}
	errs := make([]error, len(jobs))
	defer r.costs.flush()
	var done atomic.Int64
	switch {
	case r.effectiveBatchWidth() >= 2:
		r.sweepBatched(ctx, jobs, targets, r.effectiveBatchWidth(), rep, errs)
	case r.sched:
		// Critical-path order: the grid's full stage DAG plus one
		// measurement sink per job, pulled longest-remaining-path-first.
		// Identical store traffic, events and report indexing to the naive
		// path below — only order (and wall-clock) changes.
		b := r.newDAGBuilder()
		for i, j := range jobs {
			prep, _ := b.addChain(j.bench, j.pt.cfg.MeasureInput, j.pt.cfg)
			i := i
			b.addMeasure(j.pt.point(), r.measureEstimate(j.bench, j.pt.cfg.MeasureInput, len(targets)),
				prep, func(ctx context.Context) {
					r.runSweepJob(ctx, i, jobs, targets, rep, errs, &done)
				})
		}
		r.runDAG(ctx, b)
	default:
		r.forEach(ctx, len(jobs), func(i int) {
			r.runSweepJob(ctx, i, jobs, targets, rep, errs, &done)
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return rep, nil
}

// expandGrid resolves a grid into its job list: workloads registered,
// names validated, targets defaulted and the cartesian product expanded
// benchmark-major, row-major — the report row order every execution
// strategy must preserve.
func (r *Runner) expandGrid(g Grid) (jobs []sweepJob, targets []pthsel.Target, axes []string, err error) {
	names := append([]string(nil), g.Benchmarks...)
	// Workload labels per registered name; empty for named benchmarks.
	labels := make([]string, len(names))
	if len(g.Workloads) > 0 {
		for _, wp := range g.Workloads {
			wnames, werr := gen.Register(wp.Spec)
			if werr != nil {
				return nil, nil, nil, fmt.Errorf("experiments: workload %q: %w", wp.Label, werr)
			}
			label := wp.Label
			if label == "" {
				label = wnames[0]
			}
			names = append(names, wnames[0])
			labels = append(labels, label)
		}
	}
	if err := validateNames(names); err != nil {
		return nil, nil, nil, err
	}
	targets = g.Targets
	if len(targets) == 0 {
		targets = Figure4Targets
	}
	pts, err := g.points(r.cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	jobs = make([]sweepJob, 0, len(names)*len(pts))
	for bi, bench := range names {
		for _, pt := range pts {
			jobs = append(jobs, sweepJob{bench: bench, wl: labels[bi], pt: pt})
		}
	}
	axes = make([]string, len(g.Axes))
	for i, ax := range g.Axes {
		axes[i] = ax.Name
	}
	return jobs, targets, axes, nil
}

// runSweepJob evaluates one job and publishes its point, error and progress
// event — the shared body of the naive and scheduled serial paths.
func (r *Runner) runSweepJob(ctx context.Context, i int, jobs []sweepJob,
	targets []pthsel.Target, rep *SweepReport, errs []error, done *atomic.Int64) {
	j := jobs[i]
	point, perr := r.sweepPoint(ctx, j.bench, j.pt, targets)
	if perr != nil {
		errs[i] = fmt.Errorf("%s@%s: %w", j.bench, j.pt.point(), perr)
	} else {
		point.Workload = j.wl
		rep.Points[i] = point
	}
	r.emit(ctx, Event{Kind: EventPointDone, Bench: j.bench,
		Point: j.pt.point(), Err: perr,
		Done: int(done.Add(1)), Total: len(jobs)})
}

// sweepJob is one (benchmark, grid point) evaluation of a sweep.
type sweepJob struct {
	bench string
	wl    string // workload label, empty for named benchmarks
	pt    gridPoint
}

// point renders the job's axis labels as the Point field of progress events.
func (pt gridPoint) point() string { return strings.Join(pt.labels, ",") }

// sweepPoint prepares and measures one (benchmark, grid point) pair.
func (r *Runner) sweepPoint(ctx context.Context, bench string, pt gridPoint, targets []pthsel.Target) (SweepPointReport, error) {
	prep, err := r.Prepare(ctx, bench, pt.cfg.MeasureInput, pt.cfg)
	if err != nil {
		return SweepPointReport{}, err
	}
	start := time.Now()
	point := SweepPointReport{Bench: bench, Labels: pt.labels}
	for _, tgt := range targets {
		r.emit(ctx, Event{Kind: EventRunStart, Bench: bench, Target: tgt.String()})
		run, err := RunTarget(ctx, prep, prep, tgt, pt.cfg)
		ev := Event{Kind: EventRunDone, Bench: bench, Target: tgt.String(), Err: err}
		if err == nil {
			ev.SimCyclesPerSec = run.SimCyclesPerSec()
		}
		r.emit(ctx, ev)
		if err != nil {
			return SweepPointReport{}, err
		}
		point.Runs = append(point.Runs, runReport(run))
	}
	if len(targets) > 0 {
		r.costs.record(stageMeasure, bench, pt.cfg.MeasureInput,
			time.Since(start).Seconds()/float64(len(targets)))
	}
	return point, nil
}
