package experiments

// Critical-path scheduling of the stage DAG. Before a sweep or campaign
// fans out, every pending (benchmark × stage) chain is expanded into an
// explicit dependency DAG — stage nodes deduplicated across grid points by
// artifact key, one measurement sink per grid point — and each node's
// remaining critical-path cost is projected from the EWMA cost model. The
// bounded worker pool then pulls ready nodes longest-critical-path-first
// instead of grid order, so the chains that bound the sweep's wall clock
// (a long trace → profile → slices build for a late benchmark) start first
// instead of last.
//
// Stage nodes double as speculative pre-builds: they are exactly the
// artifacts some grid point will demand (the DAG is the union of the
// demanded chains, never a superset), and an idle worker builds them ahead
// of the first measurement that needs them. Results are byte-identical to
// naive order — the store traffic for each artifact is the same work,
// earlier — and report rows stay bench-major regardless of completion
// order, because measurement sinks write into their preassigned slots.

import (
	"container/heap"
	"context"
	"sync"

	"repro/internal/program"
)

// Scheduler node statuses, annotated on DAG exports.
const (
	schedCold    = "cold"    // projected to execute the stage
	schedCached  = "cached"  // already complete in the in-memory store
	schedSpill   = "spill"   // resident in the disk tier; a load, not a build
	schedMeasure = "measure" // a measurement sink (one grid point / benchmark)
)

// schedNode is one DAG node: a stage build for one workload, or a
// measurement sink. waiting/children carry the dependency edges; cost and
// crit the projected seconds (crit = cost + costliest chain below).
type schedNode struct {
	seq    int // insertion order: deterministic heap tie-break
	bench  string
	input  program.InputClass
	stage  Stage  // pipeline stage, or stageMeasure for sinks
	label  string // measurement sinks: the grid point / campaign label
	status string

	cost float64
	crit float64

	waiting  int // unfinished dependencies (scheduler-mutex-guarded)
	children []*schedNode
	run      func(ctx context.Context) // nil on plan-only DAGs (SweepDAG)
}

// dagBuilder accumulates a schedule DAG. Nodes are deduplicated by artifact
// key, so two grid points that agree on a stage's config fields share one
// node exactly as they share one store entry. order is topological by
// construction: a dependency always exists before its dependent is created.
type dagBuilder struct {
	r     *Runner
	nodes map[artifactKey]*schedNode
	order []*schedNode
}

func (r *Runner) newDAGBuilder() *dagBuilder {
	return &dagBuilder{r: r, nodes: map[artifactKey]*schedNode{}}
}

// addChain adds one (benchmark, input, config) preparation chain — every
// pipeline stage through StagePrepared — reusing nodes already added by
// other chains, and returns the chain's prepared node. An error means the
// chain cannot even be planned (unknown workload, unfingerprintable
// config); callers add a dependency-free sink instead, whose Prepare call
// surfaces the identical error through the normal path.
func (b *dagBuilder) addChain(name string, input program.InputClass, cfg Config) (*schedNode, error) {
	wfp, err := workloadFingerprint(name)
	if err != nil {
		return nil, err
	}
	plan, err := planFor(cfg, wfp)
	if err != nil {
		return nil, err
	}
	var last *schedNode
	for _, st := range Stages() {
		key := artifactKey{name: name, input: input, stage: st, fp: plan.fps[st]}
		if n, ok := b.nodes[key]; ok {
			last = n
			continue
		}
		n := &schedNode{seq: len(b.order), bench: name, input: input, stage: st}
		if _, _, done := b.r.store.peek(key); done {
			n.status = schedCached // complete (or a cached failure): zero remaining cost
		} else if b.r.diskHas(key) {
			n.status = schedSpill // a verified load, orders of magnitude under a build
		} else {
			n.status = schedCold
			n.cost = b.r.costs.estimate(st, name, input)
		}
		st := st
		n.run = func(ctx context.Context) { b.r.runStageNode(ctx, name, input, cfg, plan, st) }
		for _, u := range stageDeps[st] {
			if dep := b.nodes[artifactKey{name: name, input: input, stage: u, fp: plan.fps[u]}]; dep != nil {
				dep.children = append(dep.children, n)
				n.waiting++
			}
		}
		b.nodes[key] = n
		b.order = append(b.order, n)
		last = n
	}
	return last, nil
}

// addMeasure appends a measurement sink depending on dep (nil for chains
// that failed to plan: the sink runs immediately and reports the error).
func (b *dagBuilder) addMeasure(label string, cost float64, dep *schedNode, run func(ctx context.Context)) *schedNode {
	n := &schedNode{seq: len(b.order), stage: stageMeasure, label: label,
		status: schedMeasure, cost: cost, run: run}
	if dep != nil {
		n.bench, n.input = dep.bench, dep.input
		dep.children = append(dep.children, n)
		n.waiting = 1
	}
	b.order = append(b.order, n)
	return n
}

// computeCritical fills every node's projected critical-path cost: its own
// cost plus the costliest chain of dependents below it. order is
// topological, so one reverse pass suffices.
func (b *dagBuilder) computeCritical() {
	for i := len(b.order) - 1; i >= 0; i-- {
		n := b.order[i]
		n.crit = n.cost
		for _, c := range n.children {
			if n.cost+c.crit > n.crit {
				n.crit = n.cost + c.crit
			}
		}
	}
}

// runStageNode executes one scheduled stage node. A failed upstream means
// the chain is already doomed: the node declines to execute (or poison its
// own store entry), matching the naive walk, which stops at the first
// failed stage — so failure-path cold counts and events are identical in
// both orders. The stage's own errors are cached in the store; the chain's
// measurement sink surfaces them through its ordinary Prepare call.
func (r *Runner) runStageNode(ctx context.Context, name string, input program.InputClass,
	cfg Config, plan stagePlan, st Stage) {
	if ctx.Err() != nil {
		return
	}
	for _, u := range stageDeps[st] {
		key := artifactKey{name: name, input: input, stage: u, fp: plan.fps[u]}
		if _, err, done := r.store.peek(key); done && err != nil {
			return
		}
	}
	r.ensureStage(ctx, name, input, cfg, plan, st)
}

// measureEstimate projects one grid point's measurement cost.
func (r *Runner) measureEstimate(name string, input program.InputClass, targets int) float64 {
	return r.costs.estimate(stageMeasure, name, input) * float64(targets)
}

// nodeHeap is the ready queue: a max-heap on projected critical-path cost,
// insertion order breaking ties so equal-cost nodes run in grid order.
type nodeHeap []*schedNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].crit != h[j].crit {
		return h[i].crit > h[j].crit
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*schedNode)) }
func (h *nodeHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// runDAG executes the builder's DAG on a bounded pool of r.parallelism
// workers, each pulling the ready node with the longest projected critical
// path. Every node runs exactly once; short chains cannot starve because
// priority only orders the ready set — nothing is ever deferred
// indefinitely, workers always take *some* ready node. Cancellation stops
// workers from claiming further nodes; in-flight nodes abort through their
// own context checks.
func (r *Runner) runDAG(ctx context.Context, b *dagBuilder) {
	nodes := b.order
	if len(nodes) == 0 {
		return
	}
	b.computeCritical()

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     nodeHeap
		remaining = len(nodes)
		stopped   bool
	)
	for _, n := range nodes {
		if n.waiting == 0 {
			ready = append(ready, n)
		}
	}
	heap.Init(&ready)

	// Wake blocked workers promptly on cancellation, even when no node is
	// completing to signal them.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			stopped = true
			mu.Unlock()
			cond.Broadcast()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	workers := r.parallelism
	if workers > len(nodes) {
		workers = len(nodes)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			for {
				for !stopped && remaining > 0 && len(ready) == 0 {
					cond.Wait()
				}
				if stopped || remaining == 0 {
					mu.Unlock()
					return
				}
				n := heap.Pop(&ready).(*schedNode)
				mu.Unlock()
				if n.run != nil {
					n.run(ctx)
				}
				mu.Lock()
				remaining--
				for _, c := range n.children {
					if c.waiting--; c.waiting == 0 {
						heap.Push(&ready, c)
					}
				}
				if remaining == 0 || len(ready) > 0 {
					cond.Broadcast()
				}
			}
		}()
	}
	wg.Wait()
}
