// Package experiments drives the paper's evaluation: it prepares each
// benchmark (trace, profile, slice trees, criticality curves, baseline
// simulation), runs p-thread selection under each target, simulates the
// augmented executions, and derives every number the paper's figures and
// tables report. The per-experiment entry points in figures.go map 1:1 to
// the paper's Figure 2, Figure 3, Table 3, Figure 4 and Figure 5.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/critpath"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/slicer"
	"repro/internal/trace"
)

// simPool recycles simulators across runs: every timing simulation issued
// through this package (baselines, target measurements, campaign workers)
// grabs a pooled simulator, Resets it onto the new (config, trace,
// p-threads) triple and returns it afterwards, so the figure suite's
// thousands of runs reuse a handful of fully-grown simulators — ROB, state
// columns, wakeup pools, cache arrays — instead of reallocating them per
// run. Determinism is unaffected: Reset restores exactly the
// freshly-constructed state (pinned by the golden and reuse tests).
var simPool sync.Pool

// normalizeEngine maps EngineBatched to the event engine it denotes per
// instance: batching is a sweep-scheduling property (see Runner.Sweep), so a
// single simulation under a batched configuration is exactly an event-engine
// run.
func normalizeEngine(e cpu.Engine) cpu.Engine {
	if e == cpu.EngineBatched {
		return cpu.EngineEvent
	}
	return e
}

// validateEngine rejects engines outside the typed enum with one error
// listing the valid set, so entry points fail fast instead of surfacing the
// simulator's rejection deep inside a prepared run.
func validateEngine(e cpu.Engine) error {
	switch e {
	case cpu.EngineEvent, cpu.EngineScan, cpu.EngineBatched:
		return nil
	}
	return fmt.Errorf("experiments: unknown engine %q (valid engines: event, scan, batched)", e)
}

// ValidateEngine exposes the engine-enum check to the public API layer, so
// a Lab can reject an out-of-enum engine at construction with the same
// single error every other entry point produces.
func ValidateEngine(e cpu.Engine) error { return validateEngine(e) }

// Simulate runs one timing simulation through the simulator pool and
// returns an owned (cloned) Result.
func Simulate(ctx context.Context, cfg cpu.Config, tr *trace.Trace, pthreads []*cpu.PThread) (*cpu.Result, error) {
	cfg.Engine = normalizeEngine(cfg.Engine)
	s, _ := simPool.Get().(*cpu.Simulator)
	if s == nil {
		s = new(cpu.Simulator)
	}
	if err := s.Reset(cfg, tr, pthreads); err != nil {
		simPool.Put(s)
		return nil, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		simPool.Put(s)
		return nil, err
	}
	// The pooled simulator owns res's memory; clone before releasing it.
	out := res.Clone()
	simPool.Put(s)
	return out, nil
}

// Config parameterizes a full experiment run.
type Config struct {
	CPU    cpu.Config
	Slicer slicer.Config

	// Problem-load mining thresholds.
	ProblemCoverage float64 // fraction of L2 misses the problem set must cover
	MinMisses       int64   // ignore loads with fewer L2 misses

	// Scale divides benchmark iteration counts indirectly by using the
	// given input class for measurement.
	MeasureInput program.InputClass
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		CPU:             cpu.DefaultConfig(),
		Slicer:          slicer.DefaultConfig(),
		ProblemCoverage: 0.9,
		MinMisses:       100,
		MeasureInput:    program.Train,
	}
}

// Prepared bundles everything selection and measurement need for one
// benchmark under one input class.
type Prepared struct {
	Name     string
	Input    program.InputClass
	Trace    *trace.Trace
	Prof     *profile.Profile
	Trees    []*slicer.Tree
	Curves   map[int32]critpath.Curve
	Baseline *cpu.Result
	Params   pthsel.Params
}

// Prepare builds, traces, profiles and baselines one benchmark by running
// the staged pipeline end to end without a store (every stage cold). The
// context is honored throughout, including mid-simulation in the baseline
// run. Engines cache the same stages individually — see Runner.Prepare.
func Prepare(ctx context.Context, name string, input program.InputClass, cfg Config) (*Prepared, error) {
	tr, err := stageTrace(name, input)
	if err != nil {
		return nil, err
	}
	p, err := PrepareTrace(ctx, name, tr, cfg)
	if err != nil {
		return nil, err
	}
	p.Input = input
	return p, nil
}

// PrepareTrace profiles and baselines an already-traced program (used for
// custom workloads supplied through the public façade). It is the uncached
// composition of the pipeline stages, so its output is identical to the
// Runner's store-backed preparation.
func PrepareTrace(ctx context.Context, name string, tr *trace.Trace, cfg Config) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := planFor(cfg, "")
	if err != nil {
		return nil, err
	}
	prof := profile.Collect(tr, plan.profileCfg)
	problems := stageProblems(prof, plan.problemsCfg)
	trees := slicer.BuildTrees(tr, prof, problems, plan.slicerCfg)
	curves, err := stageCurves(ctx, tr, prof, problems, plan.critCfg)
	if err != nil {
		return nil, err
	}
	base, err := stageBaseline(ctx, name, plan.timingCfg, tr)
	if err != nil {
		return nil, err
	}
	base = baselineFor(base, cfg.CPU.Energy)
	params := plan.deriveCfg.Derive(float64(base.Cycles), base.Energy.Total(), base.IPC(), curves)
	return assemblePrepared(name, tr, prof, trees, curves, base, params), nil
}

func critpathConfig(cfg Config) critpath.Config {
	c := critpath.DefaultConfig(cfg.CPU.Hier)
	c.Width = cfg.CPU.DispatchWidth
	c.ROBSize = cfg.CPU.ROBSize
	c.MispredPen = cfg.CPU.FrontEndDepth + cfg.CPU.RedirectPen
	return c
}

// TargetRun is one (benchmark, target) measurement with derived metrics.
type TargetRun struct {
	Target pthsel.Target
	Sel    *pthsel.Selection
	Res    *cpu.Result

	// SimSeconds is the wall-clock time the timing simulation took; with
	// Res.Cycles it yields the run's simulator throughput (a substrate
	// health metric, deliberately kept out of Res so Results stay
	// deterministic).
	SimSeconds float64

	SpeedupPct    float64 // %IPC gain
	EnergySavePct float64
	EDSavePct     float64
	ED2SavePct    float64
	FullCovPct    float64 // fully covered misses / baseline misses
	PartCovPct    float64
	PInstIncPct   float64 // p-instructions / committed main instructions
	UsefulPct     float64
	AvgPThreadLen float64
}

// SimCyclesPerSec returns the run's simulator throughput in simulated
// cycles per wall-clock second (0 when unmeasured).
func (t *TargetRun) SimCyclesPerSec() float64 {
	if t.SimSeconds <= 0 {
		return 0
	}
	return float64(t.Res.Cycles) / t.SimSeconds
}

// RunTarget selects p-threads on sel's profile and measures them on meas
// (sel == meas for ideal profiling; they differ for the realistic-profiling
// experiment). Cancellation is honored mid-simulation.
func RunTarget(ctx context.Context, sel, meas *Prepared, target pthsel.Target, cfg Config) (*TargetRun, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	selection := pthsel.Select(sel.Trace, sel.Prof, sel.Trees, sel.Params, target)
	start := time.Now()
	res, err := Simulate(ctx, cfg.CPU, meas.Trace, selection.PThreads)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", meas.Name, target, err)
	}
	run := Derive(selection, meas.Baseline, res)
	run.SimSeconds = time.Since(start).Seconds()
	return run, nil
}

// Derive computes the paper's reported percentages for one measured run
// against its baseline.
func Derive(selection *pthsel.Selection, base, res *cpu.Result) *TargetRun {
	t := &TargetRun{Target: selection.Target, Sel: selection, Res: res}
	bc, nc := float64(base.Cycles), float64(res.Cycles)
	be, ne := base.Energy.Total(), res.Energy.Total()
	t.SpeedupPct = metrics.SpeedupPct(bc, nc)
	t.EnergySavePct = metrics.ImprovementPct(be, ne)
	t.EDSavePct = metrics.ImprovementPct(metrics.ED(be, bc), metrics.ED(ne, nc))
	t.ED2SavePct = metrics.ImprovementPct(metrics.ED2(be, bc), metrics.ED2(ne, nc))
	if base.DemandL2Misses > 0 {
		t.FullCovPct = 100 * float64(res.FullCovered) / float64(base.DemandL2Misses)
		t.PartCovPct = 100 * float64(res.PartCovered) / float64(base.DemandL2Misses)
	}
	t.PInstIncPct = 100 * res.PInstIncrease()
	t.UsefulPct = 100 * res.Usefulness()
	t.AvgPThreadLen = selection.AvgPThreadLen()
	return t
}

// BenchResult is one benchmark's full evaluation.
type BenchResult struct {
	Name     string
	Prepared *Prepared
	Runs     map[pthsel.Target]*TargetRun
}

// RunBenchmark prepares one benchmark and evaluates the given targets with
// ideal (same-run) profiling, as in the paper's primary study.
func RunBenchmark(ctx context.Context, name string, targets []pthsel.Target, cfg Config) (*BenchResult, error) {
	prep, err := Prepare(ctx, name, cfg.MeasureInput, cfg)
	if err != nil {
		return nil, err
	}
	return measureTargets(ctx, prep, targets, cfg)
}

// measureTargets runs every target on an already-prepared benchmark.
func measureTargets(ctx context.Context, prep *Prepared, targets []pthsel.Target, cfg Config) (*BenchResult, error) {
	br := &BenchResult{Name: prep.Name, Prepared: prep, Runs: map[pthsel.Target]*TargetRun{}}
	for _, tgt := range targets {
		run, err := RunTarget(ctx, prep, prep, tgt, cfg)
		if err != nil {
			return nil, err
		}
		br.Runs[tgt] = run
	}
	return br, nil
}

// RunAll evaluates the given benchmarks × targets on a bounded worker pool
// (each benchmark independently; determinism is per-benchmark). All
// per-benchmark errors are collected and joined; results for benchmarks
// that succeeded are returned alongside the joined error.
func RunAll(ctx context.Context, names []string, targets []pthsel.Target, cfg Config) ([]*BenchResult, error) {
	return NewRunner(cfg, 0, nil).benchResults(ctx, names, targets, cfg)
}
