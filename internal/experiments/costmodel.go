package experiments

// The stage cost model behind critical-path scheduling: an EWMA of observed
// wall-clock build cost per (stage, workload size class). Every cold stage
// build feeds it (see Runner.stage); the scheduler reads it to project each
// DAG node's remaining critical-path cost before a sweep or campaign fans
// out. With a disk store attached the model persists alongside the
// artifacts, so a restarted daemon schedules its first sweep with warm cost
// estimates instead of priors.
//
// Size classes bucket workloads by the log2 of their trace length: a stage's
// cost scales roughly linearly with trace size, so one observed gcc-sized
// trace build predicts other gcc-sized ones without a per-workload table.
// Class 0 aggregates every observation of a stage and is the fallback when a
// workload's size is not yet known (never traced, no persisted model).

import (
	"encoding/json"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/program"
)

// stageMeasure is the cost model's pseudo-stage for measurement work (one
// target's selection + simulation at a grid point). It is not a pipeline
// stage — it never touches the artifact store or the stage counters — but
// measurement nodes need projected costs like build nodes do.
const stageMeasure Stage = "measure"

// costAlpha is the EWMA smoothing factor: high enough to track a machine
// whose load changes between sweeps, low enough that one descheduled build
// does not wreck the estimate.
const costAlpha = 0.4

// costPriors seed the model before any observation: relative magnitudes of
// the pipeline stages (trace dominates, then baseline simulation, then the
// analysis stages; assembly and derivation are near-free). Absolute values
// only matter relative to each other — the scheduler orders by projected
// cost, it never budgets wall-clock.
var costPriors = map[Stage]float64{
	StageTrace:    1.0,
	StageProfile:  0.25,
	StageProblems: 0.01,
	StageSlices:   0.2,
	StageCurves:   0.1,
	StageBaseline: 0.5,
	StageParams:   0.01,
	StagePrepared: 0.005,
	stageMeasure:  0.5,
}

// costKey is one EWMA cell: a stage at a workload size class (0 = the
// stage's global aggregate).
type costKey struct {
	Stage Stage
	Class int
}

// costObs is one persisted EWMA cell.
type costObs struct {
	Stage Stage   `json:"stage"`
	Class int     `json:"class"`
	Sec   float64 `json:"sec"`
}

// costModelFile is the on-disk shape of a persisted cost model.
type costModelFile struct {
	EWMA  []costObs        `json:"ewma"`
	Sizes map[string]int64 `json:"sizes"`
}

// costModel is the mutex-guarded EWMA store. One per Runner, shared by every
// concurrent sweep; all methods are safe for concurrent use.
type costModel struct {
	mu    sync.Mutex
	ewma  map[costKey]float64
	sizes map[string]int64 // "name/input" -> trace instruction count
	path  string           // persistence file; empty = in-memory only
	dirty bool
}

func newCostModel() *costModel {
	return &costModel{
		ewma:  map[costKey]float64{},
		sizes: map[string]int64{},
	}
}

func sizeKey(name string, input program.InputClass) string {
	return name + "/" + input.String()
}

// classOf buckets a trace length into a log2 size class (>= 1; 0 is the
// global aggregate).
func classOf(n int64) int {
	if n <= 0 {
		return 0
	}
	return bits.Len64(uint64(n))
}

// observeSize records a workload's trace length, the input to size-class
// lookups. Called whenever a trace is built, spill-loaded or hit.
func (m *costModel) observeSize(name string, input program.InputClass, n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	if m.sizes[sizeKey(name, input)] != n {
		m.sizes[sizeKey(name, input)] = n
		m.dirty = true
	}
	m.mu.Unlock()
}

// record folds one observed cold build (or measurement) into the EWMA, both
// in the workload's size class and in the stage's global aggregate.
func (m *costModel) record(st Stage, name string, input program.InputClass, sec float64) {
	if sec <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cells := []costKey{{st, 0}}
	if class := classOf(m.sizes[sizeKey(name, input)]); class != 0 {
		cells = append(cells, costKey{st, class})
	}
	for _, k := range cells {
		if prev, ok := m.ewma[k]; ok {
			m.ewma[k] = costAlpha*sec + (1-costAlpha)*prev
		} else {
			m.ewma[k] = sec
		}
	}
	m.dirty = true
}

// estimate projects one stage build's cost for a workload: the size-class
// EWMA if that cell has observations, else the stage's global EWMA, else the
// prior. Never zero for a real stage, so critical paths of entirely
// unobserved chains still order by depth.
func (m *costModel) estimate(st Stage, name string, input program.InputClass) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if class := classOf(m.sizes[sizeKey(name, input)]); class != 0 {
		if sec, ok := m.ewma[costKey{st, class}]; ok {
			return sec
		}
	}
	if sec, ok := m.ewma[costKey{st, 0}]; ok {
		return sec
	}
	if sec, ok := costPriors[st]; ok {
		return sec
	}
	return 0.01
}

// loadFrom attaches the model to a persistence file and folds in whatever a
// previous process left there. Best-effort: an absent or corrupt file is an
// empty model, never an error (the disk tier has the same contract).
func (m *costModel) loadFrom(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.path = path
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var f costModelFile
	if err := json.Unmarshal(data, &f); err != nil {
		return
	}
	for _, obs := range f.EWMA {
		if obs.Sec > 0 {
			m.ewma[costKey{obs.Stage, obs.Class}] = obs.Sec
		}
	}
	for k, n := range f.Sizes {
		if n > 0 {
			m.sizes[k] = n
		}
	}
}

// flush persists the model if it is file-backed and has new observations.
// Atomic (tmp + rename) and best-effort, like every disk-tier write.
func (m *costModel) flush() {
	m.mu.Lock()
	if m.path == "" || !m.dirty {
		m.mu.Unlock()
		return
	}
	f := costModelFile{Sizes: make(map[string]int64, len(m.sizes))}
	// Sorted observations so the persisted bytes are identical for identical
	// models, regardless of map iteration order (the Sizes map is sorted by
	// encoding/json itself).
	obs := make([]costObs, 0, len(m.ewma))
	for k, sec := range m.ewma {
		obs = append(obs, costObs{Stage: k.Stage, Class: k.Class, Sec: sec})
	}
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].Stage != obs[j].Stage {
			return obs[i].Stage < obs[j].Stage
		}
		return obs[i].Class < obs[j].Class
	})
	f.EWMA = obs
	for k, n := range m.sizes {
		f.Sizes[k] = n
	}
	m.dirty = false
	path := m.path
	m.mu.Unlock()

	data, err := json.Marshal(f)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}
