package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/program/gen"
	"repro/internal/pthsel"
)

// genGrid returns a 2-workload × 3-idle-point grid over a generator knob:
// the workload axis sweeps chase depth, the config axis sweeps a field no
// functional stage reads.
func genGrid() Grid {
	base := gen.Spec{Family: gen.PointerChase, Seed: 11, WorkingSet: 1 << 13}
	return Grid{
		Workloads: GenAxis(base,
			GenPoint{Label: "d=300", Mutate: func(s *gen.Spec) { s.Depth = 300 }},
			GenPoint{Label: "d=600", Mutate: func(s *gen.Spec) { s.Depth = 600 }},
		),
		Axes:    []Axis{GridAxis(SweepIdleFactor)},
		Targets: []pthsel.Target{pthsel.TargetP},
	}
}

// TestGenSweepWorkloadAxis: a Grid's workload axis must evaluate generated
// workloads like named benchmarks — correct point count and ordering, rows
// labeled by the workload axis, runs populated.
func TestGenSweepWorkloadAxis(t *testing.T) {
	r := NewRunner(DefaultConfig(), 0, nil)
	rep, err := r.Sweep(context.Background(), genGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("points = %d, want 2 workloads x 3 idle points", len(rep.Points))
	}
	wantLabels := []string{"d=300", "d=300", "d=300", "d=600", "d=600", "d=600"}
	for i, pt := range rep.Points {
		if pt.Workload != wantLabels[i] {
			t.Errorf("point %d workload label %q, want %q", i, pt.Workload, wantLabels[i])
		}
		if !strings.HasPrefix(pt.Bench, "gen/pointer-chase/") {
			t.Errorf("point %d bench %q not a generated name", i, pt.Bench)
		}
		if len(pt.Runs) != 1 {
			t.Errorf("point %d has %d runs, want 1", i, len(pt.Runs))
		}
	}
	if !strings.Contains(rep.Render(), "d=600") {
		t.Error("rendered table missing workload label")
	}
}

// TestGenSweepStageReuse is the acceptance probe for generator workloads in
// the staged store: across a workload axis × config axis grid, each
// generated workload's functional stages build exactly once (the idle-factor
// axis reads none of them), and re-running the same grid on the same engine
// rebuilds nothing at all.
func TestGenSweepStageReuse(t *testing.T) {
	r := NewRunner(DefaultConfig(), 0, nil)
	ctx := context.Background()
	if _, err := r.Sweep(ctx, genGrid()); err != nil {
		t.Fatal(err)
	}
	for _, st := range []Stage{StageTrace, StageProfile, StageProblems, StageSlices, StageCurves, StageBaseline} {
		if n := r.StagePrepares(st); n != 2 {
			t.Errorf("stage %s built %d times across the grid, want once per workload (2)", st, n)
		}
	}
	if n := r.StagePrepares(StagePrepared); n != 6 {
		t.Errorf("prepared assemblies = %d, want one per grid point (6)", n)
	}
	before := map[Stage]int64{}
	for _, st := range Stages() {
		before[st] = r.StagePrepares(st)
	}
	if _, err := r.Sweep(ctx, genGrid()); err != nil {
		t.Fatal(err)
	}
	for _, st := range Stages() {
		if n := r.StagePrepares(st); n != before[st] {
			t.Errorf("re-sweeping rebuilt stage %s (%d -> %d)", st, before[st], n)
		}
	}
}

// TestGenSelectedPThreadsEnginesAgree closes the differential corpus over
// the selection framework: for generated workloads, p-threads selected by
// PTHSEL+E and installed in the simulator must produce bit-identical Results
// (deep-equal and byte-equal once marshaled) under both engines.
func TestGenSelectedPThreadsEnginesAgree(t *testing.T) {
	ctx := context.Background()
	for _, spec := range []gen.Spec{
		{Family: gen.HashProbe, Seed: 21, WorkingSet: 1 << 14, Depth: 800},
		{Family: gen.BlockedStream, Seed: 22, WorkingSet: 1 << 14, Depth: 8},
		{Family: gen.BranchyParser, Seed: 23, WorkingSet: 1 << 14, Depth: 1200, BranchMix: 60},
	} {
		names, err := gen.Register(spec)
		if err != nil {
			t.Fatal(err)
		}
		name := names[0]
		prep, err := Prepare(ctx, name, program.Train, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sel := pthsel.Select(prep.Trace, prep.Prof, prep.Trees, prep.Params, pthsel.TargetP)
		if len(sel.PThreads) == 0 {
			t.Fatalf("%s: selector found no p-threads; spec does not exercise pre-execution", name)
		}
		results := map[cpu.Engine]*cpu.Result{}
		for _, engine := range []cpu.Engine{cpu.EngineEvent, cpu.EngineScan} {
			cfg := DefaultConfig().CPU
			cfg.Engine = engine
			res, err := Simulate(ctx, cfg, prep.Trace, sel.PThreads)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, engine, err)
			}
			results[engine] = res
		}
		if !reflect.DeepEqual(results[cpu.EngineEvent], results[cpu.EngineScan]) {
			t.Errorf("%s: engines disagree with p-threads installed", name)
		}
		a, err := json.Marshal(results[cpu.EngineEvent])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(results[cpu.EngineScan])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: marshaled Results not byte-identical", name)
		}
	}
}

// TestGenFingerprintErrorSurfaces pins the fingerprint panic-path fix end to
// end: a configuration carrying an unmarshalable value (NaN) must fail a
// preparation — and a whole sweep — with an error, not a panic from inside
// the artifact store.
func TestGenFingerprintErrorSurfaces(t *testing.T) {
	ctx := context.Background()
	bad := DefaultConfig()
	bad.ProblemCoverage = math.NaN()
	r := NewRunner(bad, 0, nil)
	if _, err := r.Prepare(ctx, "gap", program.Train, bad); err == nil {
		t.Error("Prepare accepted a NaN configuration")
	}

	r2 := NewRunner(DefaultConfig(), 0, nil)
	g := Grid{
		Benchmarks: []string{"gap"},
		Axes: []Axis{{Name: "poison", Points: []AxisPoint{
			{Label: "nan", Mutate: func(c *Config) { c.ProblemCoverage = math.NaN() }},
		}}},
		Targets: []pthsel.Target{pthsel.TargetL},
	}
	if _, err := r2.Sweep(ctx, g); err == nil {
		t.Error("Sweep accepted a NaN axis mutation")
	}

	// The direct (store-free) path reports the same error.
	if _, err := Prepare(ctx, "gap", program.Train, bad); err == nil {
		t.Error("direct Prepare accepted a NaN configuration")
	}
}
