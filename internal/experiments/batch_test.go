package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/program/gen"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// TestBatchedMatchesSerial is the batched engine's differential suite:
// every paper benchmark (with its L-target p-threads installed) and every
// spec of the 20-spec generated corpus, simulated serially and through
// batches of K ∈ {2, 4, 8} identical instances, must produce byte-identical
// Result JSON in every batch slot.
func TestBatchedMatchesSerial(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	r := NewRunner(cfg, 0, nil)

	type workload struct {
		name string
		tr   *trace.Trace
		pts  []*cpu.PThread
	}
	var workloads []workload
	for _, name := range program.PaperNames() {
		prep, err := r.Prepare(ctx, name, cfg.MeasureInput, cfg)
		if err != nil {
			t.Fatalf("%s: prepare: %v", name, err)
		}
		sel := pthsel.Select(prep.Trace, prep.Prof, prep.Trees, prep.Params, pthsel.TargetL)
		workloads = append(workloads, workload{name, prep.Trace, sel.PThreads})
	}
	corpus := gen.CorpusSpecs()
	if len(corpus) < 20 {
		t.Fatalf("gen corpus has %d specs, want >= 20", len(corpus))
	}
	for _, spec := range corpus {
		bm, err := spec.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Run(bm.Build(program.Train))
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, workload{spec.Name(), tr, nil})
	}

	ks := []int{2, 4, 8}
	if testing.Short() {
		ks = []int{4}
	}
	bs := cpu.NewBatchSimulator()
	for _, wl := range workloads {
		serial, err := Simulate(ctx, cfg.CPU, wl.tr, wl.pts)
		if err != nil {
			t.Fatalf("%s: serial: %v", wl.name, err)
		}
		want, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			cfgs := make([]cpu.Config, k)
			pthreads := make([][]*cpu.PThread, k)
			for i := range cfgs {
				cfgs[i] = cfg.CPU
				pthreads[i] = wl.pts
			}
			if err := bs.Reset(cfgs, wl.tr, pthreads); err != nil {
				t.Fatalf("%s k=%d: reset: %v", wl.name, k, err)
			}
			results, errs, err := bs.RunContext(ctx)
			if err != nil {
				t.Fatalf("%s k=%d: run: %v", wl.name, k, err)
			}
			for i := 0; i < k; i++ {
				if errs[i] != nil {
					t.Fatalf("%s k=%d slot %d: %v", wl.name, k, i, errs[i])
				}
				got, err := json.Marshal(results[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s k=%d slot %d: batched Result JSON diverges from serial", wl.name, k, i)
				}
			}
		}
	}
}

// stripThroughput zeroes the wall-clock throughput column (a substrate
// health metric that varies run to run) so reports can be compared
// byte-for-byte.
func stripThroughput(rep *SweepReport) {
	for i := range rep.Points {
		for j := range rep.Points[i].Runs {
			rep.Points[i].Runs[j].SimCyclesPerSec = 0
		}
	}
}

// stripSweepBatching clears the scheduling-provenance fields the batched
// path adds, so batched and serial reports can be compared byte-for-byte
// on the result payload.
func stripSweepBatching(rep *SweepReport) {
	for i := range rep.Points {
		rep.Points[i].Batched = false
		rep.Points[i].BatchWidth = 0
	}
}

// TestSweepBatchedMatchesSerial pins the sweep-level contract: a batched
// multi-axis grid produces exactly the serial report — same point order,
// same runs, same numbers — modulo throughput and the Batched/BatchWidth
// provenance fields, and it marks every event-engine point as batched.
func TestSweepBatchedMatchesSerial(t *testing.T) {
	grid := Grid{
		Axes:       []Axis{GridAxis(SweepIdleFactor), GridAxis(SweepMemLatency)},
		Benchmarks: []string{"gap", "mcf"},
	}
	if testing.Short() {
		grid.Axes = grid.Axes[:1]
	}
	cfg := DefaultConfig()

	serialRunner := NewRunner(cfg, 4, nil)
	want, err := serialRunner.Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	batched := NewRunner(cfg, 4, nil)
	batched.SetBatchWidth(4)
	got, err := batched.Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}

	for i := range got.Points {
		if !got.Points[i].Batched {
			t.Errorf("point %d (%s@%s) not marked batched", i, got.Points[i].Bench, got.Points[i].Point())
		}
		if got.Points[i].BatchWidth != 4 {
			t.Errorf("point %d BatchWidth = %d, want 4", i, got.Points[i].BatchWidth)
		}
	}
	stripThroughput(want)
	stripThroughput(got)
	stripSweepBatching(got)
	a, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("batched sweep report diverges from serial:\nserial:  %s\nbatched: %s", a, b)
	}
}

// TestSweepBatchedStageReuse verifies batching leaves the staged store's
// guarantees untouched: the batched phase split performs exactly the same
// stage builds as the serial path.
func TestSweepBatchedStageReuse(t *testing.T) {
	grid := Grid{Axes: []Axis{GridAxis(SweepIdleFactor)}, Benchmarks: []string{"gap"}}
	count := func(width int) map[Stage]int64 {
		r := NewRunner(DefaultConfig(), 2, nil)
		r.SetBatchWidth(width)
		if _, err := r.Sweep(context.Background(), grid); err != nil {
			t.Fatal(err)
		}
		got := map[Stage]int64{}
		for _, st := range Stages() {
			got[st] = r.StagePrepares(st)
		}
		return got
	}
	serial, batched := count(0), count(4)
	for _, st := range Stages() {
		if serial[st] != batched[st] {
			t.Errorf("stage %s: batched sweep built %d, serial %d", st, batched[st], serial[st])
		}
	}
}

// TestSweepBatchedScanFallback pins the fallback rule: a scan-engine base
// configuration sweeps serially (no point marked batched) even with a
// batch width installed, and still matches the event engine's numbers.
func TestSweepBatchedScanFallback(t *testing.T) {
	grid := Grid{Benchmarks: []string{"gap"}}
	scanCfg := DefaultConfig()
	scanCfg.CPU.Engine = cpu.EngineScan
	r := NewRunner(scanCfg, 2, nil)
	r.SetBatchWidth(4)
	rep, err := r.Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Points {
		if rep.Points[i].Batched {
			t.Errorf("scan-engine point %d marked batched", i)
		}
	}

	ev := NewRunner(DefaultConfig(), 2, nil)
	ev.SetBatchWidth(4)
	evRep, err := ev.Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	stripThroughput(rep)
	stripThroughput(evRep)
	stripSweepBatching(rep)
	stripSweepBatching(evRep)
	a, _ := json.Marshal(rep.Points)
	b, _ := json.Marshal(evRep.Points)
	if !bytes.Equal(a, b) {
		t.Errorf("scan fallback sweep diverges from event engine:\nscan:  %s\nevent: %s", a, b)
	}
}

// TestSweepBatchedEngineDefaultWidth verifies a base configuration
// selecting cpu.EngineBatched batches at DefaultBatchWidth without an
// explicit SetBatchWidth, sharing every artifact with a serial event sweep.
func TestSweepBatchedEngineDefaultWidth(t *testing.T) {
	grid := Grid{Benchmarks: []string{"gap"}}
	cfg := DefaultConfig()
	cfg.CPU.Engine = cpu.EngineBatched
	r := NewRunner(cfg, 2, nil)
	rep, err := r.Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(rep.Points))
	}
	if !rep.Points[0].Batched || rep.Points[0].BatchWidth != DefaultBatchWidth {
		t.Errorf("point = {Batched: %v, BatchWidth: %d}, want {true, %d}",
			rep.Points[0].Batched, rep.Points[0].BatchWidth, DefaultBatchWidth)
	}

	want, err := NewRunner(DefaultConfig(), 2, nil).Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	stripThroughput(rep)
	stripThroughput(want)
	stripSweepBatching(rep)
	a, _ := json.Marshal(rep.Points)
	b, _ := json.Marshal(want.Points)
	if !bytes.Equal(a, b) {
		t.Errorf("EngineBatched sweep diverges from serial event sweep:\nbatched: %s\nserial:  %s", a, b)
	}
}

// TestUnknownEngineFailsFast pins the typed-engine redesign at the
// experiments layer: an out-of-enum engine is rejected with one error
// listing the valid engines, before any stage executes.
func TestUnknownEngineFailsFast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPU.Engine = "bogus"
	r := NewRunner(cfg, 1, nil)
	_, err := r.Prepare(context.Background(), "gap", cfg.MeasureInput, cfg)
	if err == nil {
		t.Fatal("Prepare accepted an unknown engine")
	}
	for _, wantSub := range []string{"bogus", "event, scan, batched"} {
		if !contains(err.Error(), wantSub) {
			t.Errorf("error %q missing %q", err, wantSub)
		}
	}
	if n := r.StagePrepares(StagePrepared); n != 0 {
		t.Errorf("invalid engine still assembled %d preparations", n)
	}
	if _, err := PrepareTrace(context.Background(), "x", nil, cfg); err == nil {
		t.Error("PrepareTrace accepted an unknown engine")
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

// TestSweepBatchedConcurrent is the batched race probe: concurrent batched
// sweeps over one shared engine — batch workers, the singleflight store and
// the batch-simulator pool all exercised together — must agree with each
// other byte-for-byte. Run with -race in CI.
func TestSweepBatchedConcurrent(t *testing.T) {
	r := NewRunner(DefaultConfig(), 8, nil)
	r.SetBatchWidth(3)
	grid := Grid{Axes: []Axis{GridAxis(SweepIdleFactor)}, Benchmarks: []string{"gap", "twolf"}}

	const callers = 4
	reports := make([]*SweepReport, callers)
	errs := make([]error, callers)
	donec := make(chan int, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			reports[c], errs[c] = r.Sweep(context.Background(), grid)
			donec <- c
		}(c)
	}
	for i := 0; i < callers; i++ {
		<-donec
	}
	var want []byte
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		stripThroughput(reports[c])
		raw, err := json.Marshal(reports[c])
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			want = raw
			continue
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("caller %d report diverges under concurrency", c)
		}
	}
	if got := fmt.Sprint(r.StagePrepares(StageTrace)); got != "2" {
		t.Errorf("concurrent batched sweeps built trace stage %s times, want 2", got)
	}
}
