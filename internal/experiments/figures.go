package experiments

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/pthsel"
)

// PrimaryTargets are the p-thread flavours of the paper's main study
// (Figure 3): original PTHSEL (O), latency (L), energy (E), ED (P).
var PrimaryTargets = []pthsel.Target{pthsel.TargetO, pthsel.TargetL, pthsel.TargetE, pthsel.TargetP}

// Figure2 reproduces the paper's Figure 2: execution-time (critical-path
// category) and energy breakdowns for unoptimized execution (N) and
// PTHSEL-driven pre-execution (O), normalized to N = 100.
func (r *Runner) Figure2(ctx context.Context, names []string) (*Figure2Report, error) {
	if err := validateNames(names); err != nil {
		return nil, err
	}
	results, err := r.benchResults(ctx, names, []pthsel.Target{pthsel.TargetO}, r.cfg)
	if err != nil {
		return nil, err
	}
	rep := &Figure2Report{}
	for _, br := range results {
		base := br.Prepared.Baseline
		opt := br.Runs[pthsel.TargetO].Res
		rep.Rows = append(rep.Rows,
			Figure2Row{Bench: br.Name, Run: "N", Time: timePct(base, base), Energy: energyPct(base, base)},
			Figure2Row{Bench: br.Name, Run: "O", Time: timePct(base, opt), Energy: energyPct(base, opt)})
	}
	return rep, nil
}

// Figure3 reproduces the paper's Figure 3: improvements and diagnostics for
// all four primary targets across all benchmarks.
func (r *Runner) Figure3(ctx context.Context, names []string) (*Figure3Report, error) {
	if err := validateNames(names); err != nil {
		return nil, err
	}
	results, err := r.benchResults(ctx, names, PrimaryTargets, r.cfg)
	if err != nil {
		return nil, err
	}
	rep := &Figure3Report{Targets: targetNames(PrimaryTargets)}
	acc := map[pthsel.Target][3][]float64{}
	for _, br := range results {
		bench := BenchRuns{Name: br.Name}
		for _, tgt := range PrimaryTargets {
			run := br.Runs[tgt]
			bench.Runs = append(bench.Runs, runReport(run))
			a := acc[tgt]
			a[0] = append(a[0], run.SpeedupPct)
			a[1] = append(a[1], run.EnergySavePct)
			a[2] = append(a[2], run.EDSavePct)
			acc[tgt] = a
		}
		rep.Benchmarks = append(rep.Benchmarks, bench)
	}
	for _, tgt := range PrimaryTargets {
		a := acc[tgt]
		rep.GMeans = append(rep.GMeans, GMeanRow{
			Target:        tgt.String(),
			SpeedupPct:    metrics.GMeanPct(a[0]),
			EnergySavePct: metrics.GMeanPct(a[1]),
			EDSavePct:     metrics.GMeanPct(a[2]),
		})
	}
	return rep, nil
}

// Table3 reproduces the paper's validation table for L-p-threads on the
// paper's four benchmarks (gcc, parser, vortex, vpr.place).
func (r *Runner) Table3(ctx context.Context, names []string) (*Table3Report, error) {
	if err := validateNames(names); err != nil {
		return nil, err
	}
	rep := &Table3Report{Rows: make([]Table3Row, 0, len(names))}
	for _, name := range names {
		prep, err := r.Prepare(ctx, name, r.cfg.MeasureInput, r.cfg)
		if err != nil {
			return nil, err
		}
		run, err := RunTarget(ctx, prep, prep, pthsel.TargetL, r.cfg)
		if err != nil {
			return nil, err
		}
		base, res := prep.Baseline, run.Res
		// Measured composite at W=0.5 (the paper's P metric).
		pBase := metrics.Composite(0.5, float64(base.Cycles), base.Energy.Total())
		pPE := metrics.Composite(0.5, float64(res.Cycles), res.Energy.Total())
		predP := pthselCompositePred(prep, run)
		rep.Rows = append(rep.Rows, Table3Row{
			Name:        name,
			LatencyPred: metrics.Ratio(float64(base.Cycles-res.Cycles), run.Sel.PredLADV),
			EnergyPred:  metrics.Ratio(base.Energy.Total()-res.Energy.Total(), run.Sel.PredEADV),
			EDPred:      metrics.Ratio(pBase-pPE, predP),
		})
	}
	return rep, nil
}

func pthselCompositePred(prep *Prepared, run *TargetRun) float64 {
	l0, e0 := prep.Params.L0, prep.Params.E0
	return metrics.Composite(0.5, l0, e0) - metrics.Composite(0.5, l0-run.Sel.PredLADV, e0-run.Sel.PredEADV)
}

// Figure4Targets are the targets of the realistic-profiling experiment.
var Figure4Targets = []pthsel.Target{pthsel.TargetL, pthsel.TargetE, pthsel.TargetP}

// Figure4 reproduces the realistic-profiling experiment (§5.3): p-threads
// selected from Ref-input profiles, measured on the Train input. Both
// preparations go through the artifact store, so the Train preparation is
// shared with every other figure.
func (r *Runner) Figure4(ctx context.Context, names []string) (*Figure4Report, error) {
	if err := validateNames(names); err != nil {
		return nil, err
	}
	rep := &Figure4Report{Targets: targetNames(Figure4Targets)}
	for _, name := range names {
		profPrep, err := r.Prepare(ctx, name, program.Ref, r.cfg)
		if err != nil {
			return nil, err
		}
		measPrep, err := r.Prepare(ctx, name, r.cfg.MeasureInput, r.cfg)
		if err != nil {
			return nil, err
		}
		bench := BenchRuns{Name: name}
		for _, tgt := range Figure4Targets {
			run, err := RunTarget(ctx, profPrep, measPrep, tgt, r.cfg)
			if err != nil {
				return nil, err
			}
			bench.Runs = append(bench.Runs, runReport(run))
		}
		rep.Benchmarks = append(rep.Benchmarks, bench)
	}
	return rep, nil
}

// SweepAxis identifies a Figure 5 sensitivity axis.
type SweepAxis int

// Figure 5's three sensitivity axes.
const (
	SweepIdleFactor SweepAxis = iota // 0%, 5%, 10%
	SweepMemLatency                  // 100, 200, 300 cycles
	SweepL2Size                      // 128KB(10), 256KB(12), 512KB(15)
)

// String names the axis.
func (a SweepAxis) String() string {
	switch a {
	case SweepIdleFactor:
		return "idle-energy-factor"
	case SweepMemLatency:
		return "memory-latency"
	default:
		return "L2-size"
	}
}

// SweepPoints returns the labels and config mutations of each point on the
// axis, matching the paper's Figure 5.
func SweepPoints(a SweepAxis) (labels []string, mutate []func(*Config)) {
	switch a {
	case SweepIdleFactor:
		for _, f := range []float64{0, 0.05, 0.10} {
			f := f
			labels = append(labels, fmt.Sprintf("%.0f%%", f*100))
			mutate = append(mutate, func(c *Config) { c.CPU.Energy.IdleFactor = f })
		}
	case SweepMemLatency:
		for _, m := range []int{100, 200, 300} {
			m := m
			labels = append(labels, fmt.Sprintf("%d", m))
			mutate = append(mutate, func(c *Config) { c.CPU.Hier.MemLatency = m })
		}
	default:
		type l2pt struct {
			size, lat int
		}
		for _, p := range []l2pt{{128 << 10, 10}, {256 << 10, 12}, {512 << 10, 15}} {
			p := p
			labels = append(labels, fmt.Sprintf("%dKB(%d)", p.size>>10, p.lat))
			mutate = append(mutate, func(c *Config) {
				c.CPU.Hier.L2.SizeBytes = p.size
				c.CPU.Hier.L2.HitLatency = p.lat
			})
		}
	}
	return labels, mutate
}

// Figure5 reproduces one sensitivity sweep for the given benchmarks: every
// axis point re-runs selection and measurement under the mutated
// configuration (PTHSEL+E re-targets to the new parameters, which is the
// point of the experiment). It is a one-axis declarative grid: each point
// is keyed per stage in the artifact store, so the points share the
// benchmark's trace, profile and slice trees and rebuild only the stages
// the axis actually touches.
func (r *Runner) Figure5(ctx context.Context, axis SweepAxis, names []string) (*Figure5Report, error) {
	sw, err := r.Sweep(ctx, Grid{Axes: []Axis{GridAxis(axis)}, Benchmarks: names, Targets: Figure4Targets})
	if err != nil {
		return nil, err
	}
	rep := &Figure5Report{Axis: axis.String(), Targets: sw.Targets}
	for _, pt := range sw.Points {
		rep.Points = append(rep.Points, Figure5Point{Bench: pt.Bench, Point: pt.Labels[0], Runs: pt.Runs})
	}
	return rep, nil
}

// ED2Study reproduces the §5.1 ED² discussion: P2-p-threads behave like
// L-p-threads; both improve ED² substantially. It is the degenerate
// declarative grid: no axes, a single base-configuration point per
// benchmark, targets L and P2.
func (r *Runner) ED2Study(ctx context.Context, names []string) (*ED2Report, error) {
	sw, err := r.Sweep(ctx, Grid{Benchmarks: names, Targets: []pthsel.Target{pthsel.TargetL, pthsel.TargetP2}})
	if err != nil {
		return nil, err
	}
	rep := &ED2Report{}
	var lAll, p2All []float64
	for _, pt := range sw.Points {
		l := pt.Runs[0].ED2SavePct
		p2 := pt.Runs[1].ED2SavePct
		lAll = append(lAll, l)
		p2All = append(p2All, p2)
		rep.Rows = append(rep.Rows, ED2Row{Bench: pt.Bench, LSavePct: l, P2SavePct: p2})
	}
	rep.GMeanL = metrics.GMeanPct(lAll)
	rep.GMeanP2 = metrics.GMeanPct(p2All)
	return rep, nil
}

// PaperBenchmarks returns the paper's benchmark list in the paper's own
// presentation order. The order is pinned explicitly (program.PaperNames):
// it used to be derived from the name-sorted registry, which coincided with
// the paper's order only while exactly the nine built-ins were registered
// and silently diverges once generated workloads register.
func PaperBenchmarks() []string { return program.PaperNames() }

// Figure5Benchmarks returns the paper's per-axis benchmark triples.
func Figure5Benchmarks(axis SweepAxis) []string {
	switch axis {
	case SweepIdleFactor:
		return []string{"gap", "vortex", "vpr.route"}
	case SweepMemLatency:
		return []string{"gcc", "twolf", "vortex"}
	default:
		return []string{"mcf", "twolf", "vortex"}
	}
}

// Table3Benchmarks returns the paper's validation benchmarks.
func Table3Benchmarks() []string { return []string{"gcc", "parser", "vortex", "vpr.place"} }
