package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/pthsel"
)

// PrimaryTargets are the p-thread flavours of the paper's main study
// (Figure 3): original PTHSEL (O), latency (L), energy (E), ED (P).
var PrimaryTargets = []pthsel.Target{pthsel.TargetO, pthsel.TargetL, pthsel.TargetE, pthsel.TargetP}

// Figure2 reproduces the paper's Figure 2: execution-time (critical-path
// category) and energy breakdowns for unoptimized execution (N) and
// PTHSEL-driven pre-execution (O), normalized to N = 100.
func Figure2(names []string, cfg Config) (string, error) {
	results, err := RunAll(names, []pthsel.Target{pthsel.TargetO}, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (left): execution-time breakdown, %% of unoptimized cycles\n")
	fmt.Fprintf(&b, "%-10s %-3s %7s %7s %7s %7s %7s %8s\n", "bench", "run", "mem", "L2", "exec", "commit", "fetch", "total")
	for _, br := range results {
		base := br.Prepared.Baseline
		printTime := func(tag string, r *cpu.Result) {
			n := float64(base.Cycles) / 100
			fmt.Fprintf(&b, "%-10s %-3s %7.1f %7.1f %7.1f %7.1f %7.1f %8.1f\n",
				br.Name, tag,
				float64(r.TimeBreakdown[cpu.CatMem])/n,
				float64(r.TimeBreakdown[cpu.CatL2])/n,
				float64(r.TimeBreakdown[cpu.CatExec])/n,
				float64(r.TimeBreakdown[cpu.CatCommit])/n,
				float64(r.TimeBreakdown[cpu.CatFetch])/n,
				float64(r.Cycles)/n)
		}
		printTime("N", base)
		printTime("O", br.Runs[pthsel.TargetO].Res)
	}
	fmt.Fprintf(&b, "\nFigure 2 (right): energy breakdown, %% of unoptimized energy\n")
	fmt.Fprintf(&b, "%-10s %-3s %6s %6s %6s %6s %6s %6s %6s %6s %6s %6s %8s\n",
		"bench", "run", "imem", "dmem", "l2", "OoO", "rob+bp", "idle", "imemP", "dmemP", "l2P", "OoOP", "total")
	for _, br := range results {
		base := br.Prepared.Baseline
		printE := func(tag string, r *cpu.Result) {
			n := base.Energy.Total() / 100
			e := r.Energy
			fmt.Fprintf(&b, "%-10s %-3s %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %8.1f\n",
				br.Name, tag,
				e.ImemMain/n, e.DmemMain/n, e.L2Main/n, e.OoOMain/n, e.ROBBpred/n, e.Idle/n,
				e.ImemPth/n, e.DmemPth/n, e.L2Pth/n, e.OoOPth/n, e.Total()/n)
		}
		printE("N", base)
		printE("O", br.Runs[pthsel.TargetO].Res)
	}
	return b.String(), nil
}

// Figure3 reproduces the paper's Figure 3: improvements, diagnostics, and
// both breakdowns for all four primary targets across all benchmarks.
func Figure3(names []string, cfg Config) (string, []*BenchResult, error) {
	results, err := RunAll(names, PrimaryTargets, cfg)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (top): %%IPC gain / %%energy save / %%ED save\n")
	fmt.Fprintf(&b, "%-10s", "bench")
	for _, tgt := range PrimaryTargets {
		fmt.Fprintf(&b, " |%22s", tgt.String()+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	gm := map[pthsel.Target][3][]float64{}
	for _, br := range results {
		fmt.Fprintf(&b, "%-10s", br.Name)
		for _, tgt := range PrimaryTargets {
			r := br.Runs[tgt]
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
			acc := gm[tgt]
			acc[0] = append(acc[0], r.SpeedupPct)
			acc[1] = append(acc[1], r.EnergySavePct)
			acc[2] = append(acc[2], r.EDSavePct)
			gm[tgt] = acc
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-10s", "GMean")
	for _, tgt := range PrimaryTargets {
		acc := gm[tgt]
		fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f",
			metrics.GMeanPct(acc[0]), metrics.GMeanPct(acc[1]), metrics.GMeanPct(acc[2]))
	}
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "\nFigure 3 (diagnostics): full+part coverage %% / %%useful spawns / %%p-inst increase / avg length\n")
	fmt.Fprintf(&b, "%-10s", "bench")
	for _, tgt := range PrimaryTargets {
		fmt.Fprintf(&b, " |%28s", tgt.String()+" (cov/useful/pinst/len)")
	}
	fmt.Fprintln(&b)
	for _, br := range results {
		fmt.Fprintf(&b, "%-10s", br.Name)
		for _, tgt := range PrimaryTargets {
			r := br.Runs[tgt]
			fmt.Fprintf(&b, " |%5.0f+%-4.0f%6.0f%8.1f%6.1f",
				r.FullCovPct, r.PartCovPct, r.UsefulPct, r.PInstIncPct, r.AvgPThreadLen)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), results, nil
}

// Table3Row is one benchmark's model-validation ratios: measured reduction
// divided by predicted reduction (1.0 = perfect; <1 = over-estimation).
type Table3Row struct {
	Name        string
	LatencyPred float64 // (Lbase − Lpe) / LADVagg
	EnergyPred  float64 // (Ebase − Epe) / EADVagg
	EDPred      float64 // (Pbase − Ppe) / PADVagg (composite at W = 0.5)
}

// Table3 reproduces the paper's validation table for L-p-threads on the
// paper's four benchmarks (gcc, parser, vortex, vpr.place).
func Table3(names []string, cfg Config) ([]Table3Row, string, error) {
	rows := make([]Table3Row, 0, len(names))
	for _, name := range names {
		prep, err := Prepare(name, cfg.MeasureInput, cfg)
		if err != nil {
			return nil, "", err
		}
		run, err := RunTarget(prep, prep, pthsel.TargetL, cfg)
		if err != nil {
			return nil, "", err
		}
		base, res := prep.Baseline, run.Res
		// Measured composite at W=0.5 (the paper's P metric).
		pBase := metrics.Composite(0.5, float64(base.Cycles), base.Energy.Total())
		pPE := metrics.Composite(0.5, float64(res.Cycles), res.Energy.Total())
		predP := pthselCompositePred(prep, run)
		rows = append(rows, Table3Row{
			Name:        name,
			LatencyPred: metrics.Ratio(float64(base.Cycles-res.Cycles), run.Sel.PredLADV),
			EnergyPred:  metrics.Ratio(base.Energy.Total()-res.Energy.Total(), run.Sel.PredEADV),
			EDPred:      metrics.Ratio(pBase-pPE, predP),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: PTHSEL+E model validation (actual/predicted; 1.0 = exact)\n")
	fmt.Fprintf(&b, "%-24s", "Validation")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", r.Name)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-24s", "Latency prediction")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.2f", r.LatencyPred)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-24s", "Energy prediction")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.2f", r.EnergyPred)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-24s", "ED prediction")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.2f", r.EDPred)
	}
	fmt.Fprintln(&b)
	return rows, b.String(), nil
}

func pthselCompositePred(prep *Prepared, run *TargetRun) float64 {
	l0, e0 := prep.Params.L0, prep.Params.E0
	return metrics.Composite(0.5, l0, e0) - metrics.Composite(0.5, l0-run.Sel.PredLADV, e0-run.Sel.PredEADV)
}

// Figure4 reproduces the realistic-profiling experiment (§5.3): p-threads
// selected from Ref-input profiles, measured on the Train input.
func Figure4(names []string, cfg Config) (string, error) {
	targets := []pthsel.Target{pthsel.TargetL, pthsel.TargetE, pthsel.TargetP}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: realistic profiling (select on ref, measure on train)\n")
	fmt.Fprintf(&b, "%-10s", "bench")
	for _, tgt := range targets {
		fmt.Fprintf(&b, " |%22s", tgt.String()+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, name := range names {
		profPrep, err := Prepare(name, program.Ref, cfg)
		if err != nil {
			return "", err
		}
		measPrep, err := Prepare(name, cfg.MeasureInput, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s", name)
		for _, tgt := range targets {
			run, err := RunTarget(profPrep, measPrep, tgt, cfg)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", run.SpeedupPct, run.EnergySavePct, run.EDSavePct)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}

// SweepAxis identifies a Figure 5 sensitivity axis.
type SweepAxis int

// Figure 5's three sensitivity axes.
const (
	SweepIdleFactor SweepAxis = iota // 0%, 5%, 10%
	SweepMemLatency                  // 100, 200, 300 cycles
	SweepL2Size                      // 128KB(10), 256KB(12), 512KB(15)
)

// String names the axis.
func (a SweepAxis) String() string {
	switch a {
	case SweepIdleFactor:
		return "idle-energy-factor"
	case SweepMemLatency:
		return "memory-latency"
	default:
		return "L2-size"
	}
}

// SweepPoints returns the labels and config mutations of each point on the
// axis, matching the paper's Figure 5.
func SweepPoints(a SweepAxis) (labels []string, mutate []func(*Config)) {
	switch a {
	case SweepIdleFactor:
		for _, f := range []float64{0, 0.05, 0.10} {
			f := f
			labels = append(labels, fmt.Sprintf("%.0f%%", f*100))
			mutate = append(mutate, func(c *Config) { c.CPU.Energy.IdleFactor = f })
		}
	case SweepMemLatency:
		for _, m := range []int{100, 200, 300} {
			m := m
			labels = append(labels, fmt.Sprintf("%d", m))
			mutate = append(mutate, func(c *Config) { c.CPU.Hier.MemLatency = m })
		}
	default:
		type l2pt struct {
			size, lat int
		}
		for _, p := range []l2pt{{128 << 10, 10}, {256 << 10, 12}, {512 << 10, 15}} {
			p := p
			labels = append(labels, fmt.Sprintf("%dKB(%d)", p.size>>10, p.lat))
			mutate = append(mutate, func(c *Config) {
				c.CPU.Hier.L2.SizeBytes = p.size
				c.CPU.Hier.L2.HitLatency = p.lat
			})
		}
	}
	return labels, mutate
}

// Figure5 reproduces one sensitivity sweep for the given benchmarks: every
// axis point re-runs profiling, selection and measurement under the mutated
// configuration (PTHSEL+E re-targets to the new parameters, which is the
// point of the experiment).
func Figure5(axis SweepAxis, names []string, cfg Config) (string, error) {
	targets := []pthsel.Target{pthsel.TargetL, pthsel.TargetE, pthsel.TargetP}
	labels, mutations := SweepPoints(axis)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: sensitivity to %s\n", axis)
	fmt.Fprintf(&b, "%-10s %-9s", "bench", "point")
	for _, tgt := range targets {
		fmt.Fprintf(&b, " |%22s", tgt.String()+" (ipc/energy/ED)")
	}
	fmt.Fprintln(&b)
	for _, name := range names {
		for pi, mutate := range mutations {
			ptCfg := cfg
			mutate(&ptCfg)
			br, err := RunBenchmark(name, targets, ptCfg)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-10s %-9s", name, labels[pi])
			for _, tgt := range targets {
				r := br.Runs[tgt]
				fmt.Fprintf(&b, " |%7.1f%7.1f%8.1f", r.SpeedupPct, r.EnergySavePct, r.EDSavePct)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String(), nil
}

// ED2Study reproduces the §5.1 ED² discussion: P2-p-threads behave like
// L-p-threads; both improve ED² substantially.
func ED2Study(names []string, cfg Config) (string, error) {
	targets := []pthsel.Target{pthsel.TargetL, pthsel.TargetP2}
	results, err := RunAll(names, targets, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ED² study: L vs P2 p-threads (%%ED2 save)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "bench", "L", "P2")
	var lAll, p2All []float64
	for _, br := range results {
		l := br.Runs[pthsel.TargetL].ED2SavePct
		p2 := br.Runs[pthsel.TargetP2].ED2SavePct
		lAll = append(lAll, l)
		p2All = append(p2All, p2)
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f\n", br.Name, l, p2)
	}
	fmt.Fprintf(&b, "%-10s %10.1f %10.1f\n", "GMean", metrics.GMeanPct(lAll), metrics.GMeanPct(p2All))
	return b.String(), nil
}

// PaperBenchmarks returns the paper's benchmark list in its order.
func PaperBenchmarks() []string {
	names := program.Names()
	sort.Strings(names)
	return names
}

// Figure5Benchmarks returns the paper's per-axis benchmark triples.
func Figure5Benchmarks(axis SweepAxis) []string {
	switch axis {
	case SweepIdleFactor:
		return []string{"gap", "vortex", "vpr.route"}
	case SweepMemLatency:
		return []string{"gcc", "twolf", "vortex"}
	default:
		return []string{"mcf", "twolf", "vortex"}
	}
}

// Table3Benchmarks returns the paper's validation benchmarks.
func Table3Benchmarks() []string { return []string{"gcc", "parser", "vortex", "vpr.place"} }
