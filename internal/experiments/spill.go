package experiments

// The disk spill tier: an optional artifactdisk.Store behind the in-memory
// singleflight store. Stage artifacts are serialized under the same content
// fingerprints that key the in-memory store, so a fresh Runner pointed at a
// populated directory satisfies every heavy stage with a disk load instead
// of a rebuild — the restart-warm path behind the lab daemon.
//
// The tier is strictly best-effort: save failures are counted and ignored,
// and any load that fails verification or decoding quarantines the file and
// falls through to a cold compute. A corrupt spill directory can cost time,
// never correctness.

import (
	"bytes"
	"encoding/json"
	"path/filepath"

	"repro/internal/artifactdisk"
	"repro/internal/cpu"
	"repro/internal/critpath"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/slicer"
	"repro/internal/trace"
)

// stageCodec (de)serializes one stage's artifact for the disk tier. decode
// receives the artifact's benchmark identity because trace decoding rebuilds
// the (unserialized) program from the registry.
type stageCodec struct {
	encode func(v any) ([]byte, error)
	decode func(name string, input program.InputClass, data []byte) (any, error)
}

func jsonCodec[T any]() stageCodec {
	return stageCodec{
		encode: func(v any) ([]byte, error) { return json.Marshal(v.(T)) },
		decode: func(_ string, _ program.InputClass, data []byte) (any, error) {
			var out T
			if err := json.Unmarshal(data, &out); err != nil {
				return nil, err
			}
			return out, nil
		},
	}
}

// stageCodecs maps each spillable stage to its codec. StagePrepared is
// deliberately absent: the assembled view is cheap to rebuild from spilled
// stages and holds cross-stage pointers that do not serialize meaningfully.
// Trace, profile and slices use the dedicated binary codecs (a warm trace
// load is a straight column read); the remaining artifacts are plain
// exported data and go through JSON.
var stageCodecs = map[Stage]stageCodec{
	StageTrace: {
		encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			if err := v.(*trace.Trace).EncodeBinary(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(name string, input program.InputClass, data []byte) (any, error) {
			bm, err := program.ByName(name)
			if err != nil {
				return nil, err
			}
			return trace.DecodeBinary(bytes.NewReader(data), bm.Build(input))
		},
	},
	StageProfile: {
		encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			if err := v.(*profile.Profile).EncodeBinary(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(_ string, _ program.InputClass, data []byte) (any, error) {
			return profile.DecodeBinary(bytes.NewReader(data))
		},
	},
	StageSlices: {
		encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			if err := slicer.EncodeTrees(&buf, v.([]*slicer.Tree)); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(_ string, _ program.InputClass, data []byte) (any, error) {
			return slicer.DecodeTrees(bytes.NewReader(data))
		},
	},
	StageProblems: jsonCodec[[]*profile.LoadStats](),
	StageCurves:   jsonCodec[map[int32]critpath.Curve](),
	StageBaseline: jsonCodec[*cpu.Result](),
	StageParams:   jsonCodec[pthsel.Params](),
}

// AttachDiskStore opens (creating if needed) an on-disk spill tier at dir
// with the given byte budget (maxBytes <= 0 means unlimited) and attaches it
// to the engine. Attach before the first Prepare; the tier is consulted
// inside cold singleflight computations, so concurrent requesters of one
// artifact perform at most one disk load just as they perform at most one
// build.
func (r *Runner) AttachDiskStore(dir string, maxBytes int64) error {
	disk, err := artifactdisk.Open(dir, maxBytes)
	if err != nil {
		return err
	}
	r.disk = disk
	// The scheduler's cost model persists alongside the artifacts, so a
	// restarted daemon projects its first sweep from observed costs instead
	// of priors. Best-effort both ways, like every disk-tier operation.
	r.costs.loadFrom(filepath.Join(dir, "costmodel.json"))
	return nil
}

// DiskStats reports the attached spill tier's counters, or nil when no disk
// store is attached.
func (r *Runner) DiskStats() *artifactdisk.Stats {
	if r.disk == nil {
		return nil
	}
	st := r.disk.Stats()
	return &st
}

func diskKey(key artifactKey) artifactdisk.Key {
	return artifactdisk.Key{
		Name:  key.name,
		Input: key.input.String(),
		Stage: string(key.stage),
		FP:    key.fp,
	}
}

// diskHas reports whether the disk tier could satisfy key without a build —
// the scheduler's planning probe. It never touches recency or counters.
func (r *Runner) diskHas(key artifactKey) bool {
	if r.disk == nil {
		return false
	}
	if _, ok := stageCodecs[key.stage]; !ok {
		return false
	}
	return r.disk.Has(diskKey(key))
}

// spillLoad tries to satisfy a stage from the disk tier. A payload that
// passes the container checksum but fails stage decoding is quarantined —
// deleted and counted — and the caller falls through to a cold compute.
func (r *Runner) spillLoad(key artifactKey) (any, bool) {
	if r.disk == nil {
		return nil, false
	}
	codec, ok := stageCodecs[key.stage]
	if !ok {
		return nil, false
	}
	dk := diskKey(key)
	data, ok := r.disk.Load(dk)
	if !ok {
		return nil, false
	}
	v, err := codec.decode(key.name, key.input, data)
	if err != nil {
		r.disk.Quarantine(dk)
		return nil, false
	}
	return v, true
}

// spillSave writes a freshly built stage artifact to the disk tier,
// best-effort: an artifact that cannot be serialized or persisted is simply
// rebuilt by the next cold process.
func (r *Runner) spillSave(key artifactKey, v any) {
	if r.disk == nil {
		return
	}
	codec, ok := stageCodecs[key.stage]
	if !ok {
		return
	}
	data, err := codec.encode(v)
	if err != nil {
		return
	}
	r.disk.Save(diskKey(key), data)
}

// StageStoreStats is one pipeline stage's view of the artifact store: how
// many requests executed the stage cold, were served from a completed
// in-memory entry, shared another caller's in-flight build, or were
// satisfied by a disk-tier load.
type StageStoreStats struct {
	Hit        int64 `json:"hit"`
	Shared     int64 `json:"shared"`
	Cold       int64 `json:"cold"`
	SpillLoads int64 `json:"spill_loads"`

	// P50BuildNS / P95BuildNS are cold-build wall-clock percentiles over
	// the stage's recent builds (a bounded window; 0 before the first cold
	// build) — the observability surface of the scheduler's cost inputs.
	P50BuildNS int64 `json:"p50_build_ns,omitempty"`
	P95BuildNS int64 `json:"p95_build_ns,omitempty"`
}

// StoreStats is the artifact store's full observability surface: per-stage
// request outcomes plus the disk tier's counters when one is attached.
type StoreStats struct {
	Stages map[Stage]StageStoreStats `json:"stages"`
	Disk   *artifactdisk.Stats       `json:"disk,omitempty"`
}

// StoreStats snapshots the engine's artifact-store counters. The per-stage
// cold counts are the same observable as StagePrepares; disk loads are
// counted separately (a restart-warm stage is neither a cold build nor an
// in-memory hit).
func (r *Runner) StoreStats() StoreStats {
	out := StoreStats{Stages: make(map[Stage]StageStoreStats, len(stageIndex))}
	for st, i := range stageIndex {
		c := &r.stageStats[i]
		p50, p95 := r.stageLat[i].percentiles()
		out.Stages[st] = StageStoreStats{
			Hit:        c.hit.Load(),
			Shared:     c.shared.Load(),
			Cold:       c.cold.Load(),
			SpillLoads: c.spill.Load(),
			P50BuildNS: p50,
			P95BuildNS: p95,
		}
	}
	out.Disk = r.DiskStats()
	return out
}
