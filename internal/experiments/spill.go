package experiments

// The disk spill tier: an optional artifactdisk.Store behind the in-memory
// singleflight store. Stage artifacts are serialized under the same content
// fingerprints that key the in-memory store, so a fresh Runner pointed at a
// populated directory satisfies every heavy stage with a disk load instead
// of a rebuild — the restart-warm path behind the lab daemon.
//
// The tier is strictly best-effort: save failures are counted and ignored,
// and any load that fails verification or decoding quarantines the file and
// falls through to a cold compute. A corrupt spill directory can cost time,
// never correctness.

import (
	"bytes"
	"encoding/json"
	"path/filepath"

	"repro/internal/artifactdisk"
	"repro/internal/cpu"
	"repro/internal/critpath"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/slicer"
	"repro/internal/trace"
)

// stageCodec (de)serializes one stage's artifact for the disk tier. decode
// receives the artifact's benchmark identity because trace decoding rebuilds
// the (unserialized) program from the registry.
type stageCodec struct {
	encode func(v any) ([]byte, error)
	decode func(name string, input program.InputClass, data []byte) (any, error)
	// aligned routes the encoded payload through the page-aligned
	// container (SaveAligned) so LoadMapped can serve it zero-copy.
	aligned bool
}

func jsonCodec[T any]() stageCodec {
	return stageCodec{
		encode: func(v any) ([]byte, error) { return json.Marshal(v.(T)) },
		decode: func(_ string, _ program.InputClass, data []byte) (any, error) {
			var out T
			if err := json.Unmarshal(data, &out); err != nil {
				return nil, err
			}
			return out, nil
		},
	}
}

// stageCodecs maps each spillable stage to its codec. StagePrepared is
// deliberately absent: the assembled view is cheap to rebuild from spilled
// stages and holds cross-stage pointers that do not serialize meaningfully.
// Trace, profile and slices use the dedicated binary codecs (a warm trace
// load is a straight column read); the remaining artifacts are plain
// exported data and go through JSON.
var stageCodecs = map[Stage]stageCodec{
	StageTrace: {
		// Traces spill in the page-aligned v2 format so the warm path can
		// mmap them; the decoder still accepts v1-era files (a populated
		// store directory keeps working across the format bump — v1 files
		// just load through the heap path until rewritten).
		encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			if err := v.(*trace.Trace).EncodeBinaryV2(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(name string, input program.InputClass, data []byte) (any, error) {
			bm, err := program.ByName(name)
			if err != nil {
				return nil, err
			}
			prog := bm.Build(input)
			if trace.IsV2(data) {
				return trace.DecodeBinaryV2(data, prog)
			}
			return trace.DecodeBinary(bytes.NewReader(data), prog)
		},
		aligned: true,
	},
	StageProfile: {
		encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			if err := v.(*profile.Profile).EncodeBinary(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(_ string, _ program.InputClass, data []byte) (any, error) {
			return profile.DecodeBinary(bytes.NewReader(data))
		},
	},
	StageSlices: {
		encode: func(v any) ([]byte, error) {
			var buf bytes.Buffer
			if err := slicer.EncodeTrees(&buf, v.([]*slicer.Tree)); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(_ string, _ program.InputClass, data []byte) (any, error) {
			return slicer.DecodeTrees(bytes.NewReader(data))
		},
	},
	StageProblems: jsonCodec[[]*profile.LoadStats](),
	StageCurves:   jsonCodec[map[int32]critpath.Curve](),
	StageBaseline: jsonCodec[*cpu.Result](),
	StageParams:   jsonCodec[pthsel.Params](),
}

// AttachDiskStore opens (creating if needed) an on-disk spill tier at dir
// with the given byte budget (maxBytes <= 0 means unlimited) and attaches it
// to the engine. Attach before the first Prepare; the tier is consulted
// inside cold singleflight computations, so concurrent requesters of one
// artifact perform at most one disk load just as they perform at most one
// build.
func (r *Runner) AttachDiskStore(dir string, maxBytes int64) error {
	disk, err := artifactdisk.Open(dir, maxBytes)
	if err != nil {
		return err
	}
	r.disk = disk
	// The scheduler's cost model persists alongside the artifacts, so a
	// restarted daemon projects its first sweep from observed costs instead
	// of priors. Best-effort both ways, like every disk-tier operation.
	r.costs.loadFrom(filepath.Join(dir, "costmodel.json"))
	return nil
}

// DiskStats reports the attached spill tier's counters, or nil when no disk
// store is attached.
func (r *Runner) DiskStats() *artifactdisk.Stats {
	if r.disk == nil {
		return nil
	}
	st := r.disk.Stats()
	return &st
}

func diskKey(key artifactKey) artifactdisk.Key {
	return artifactdisk.Key{
		Name:  key.name,
		Input: key.input.String(),
		Stage: string(key.stage),
		FP:    key.fp,
	}
}

// diskHas reports whether the disk tier could satisfy key without a build —
// the scheduler's planning probe. It never touches recency or counters.
func (r *Runner) diskHas(key artifactKey) bool {
	if r.disk == nil {
		return false
	}
	if _, ok := stageCodecs[key.stage]; !ok {
		return false
	}
	return r.disk.Has(diskKey(key))
}

// spillLoad tries to satisfy a stage from the disk tier, reporting whether
// the artifact was served and whether it came through the zero-copy mapped
// path. A payload that passes container verification but fails stage
// decoding is quarantined — deleted and counted — and the caller falls
// through to a cold compute.
func (r *Runner) spillLoad(key artifactKey) (v any, ok, mapped bool) {
	if r.disk == nil {
		return nil, false, false
	}
	codec, ok := stageCodecs[key.stage]
	if !ok {
		return nil, false, false
	}
	dk := diskKey(key)
	if key.stage == StageTrace && r.mappedSpill {
		if v, ok := r.spillLoadMapped(key, dk); ok {
			return v, true, true
		}
		// Fall through to the heap path: the artifact may be absent, held
		// in the unmappable v1 container, on a platform without mmap, or
		// freshly quarantined (in which case the load below misses and the
		// caller rebuilds).
	}
	data, ok := r.disk.Load(dk)
	if !ok {
		return nil, false, false
	}
	val, err := codec.decode(key.name, key.input, data)
	if err != nil {
		r.disk.Quarantine(dk)
		return nil, false, false
	}
	return val, true, false
}

// spillLoadMapped serves a trace from a read-only mapping of its spill
// file: container and v2 verification run once per chunk, the columns alias
// the mapping, and the mapping is retained for the Runner's lifetime (the
// in-memory artifact it backs lives that long too). Any verification
// failure quarantines the file, exactly like the heap path.
func (r *Runner) spillLoadMapped(key artifactKey, dk artifactdisk.Key) (any, bool) {
	m, ok := r.disk.LoadMapped(dk)
	if !ok {
		return nil, false
	}
	bm, err := program.ByName(key.name)
	if err != nil {
		m.Close()
		return nil, false
	}
	tr, aliased, err := trace.MapBytes(m.Payload(), bm.Build(key.input))
	if err != nil {
		m.Close()
		r.disk.Quarantine(dk)
		return nil, false
	}
	if !aliased {
		// The verifier fell back to a heap copy (unaligned mapping or
		// big-endian host): the trace is fine but does not reference the
		// mapping, so release it now.
		m.Close()
		return tr, true
	}
	r.mapMu.Lock()
	r.mappings = append(r.mappings, m)
	r.mapMu.Unlock()
	return tr, true
}

// spillSave writes a freshly built stage artifact to the disk tier,
// best-effort: an artifact that cannot be serialized or persisted is simply
// rebuilt by the next cold process.
func (r *Runner) spillSave(key artifactKey, v any) {
	if r.disk == nil {
		return
	}
	codec, ok := stageCodecs[key.stage]
	if !ok {
		return
	}
	data, err := codec.encode(v)
	if err != nil {
		return
	}
	if codec.aligned {
		r.disk.SaveAligned(diskKey(key), data)
		return
	}
	r.disk.Save(diskKey(key), data)
}

// StageStoreStats is one pipeline stage's view of the artifact store: how
// many requests executed the stage cold, were served from a completed
// in-memory entry, shared another caller's in-flight build, or were
// satisfied by a disk-tier load.
type StageStoreStats struct {
	Hit        int64 `json:"hit"`
	Shared     int64 `json:"shared"`
	Cold       int64 `json:"cold"`
	SpillLoads int64 `json:"spill_loads"`
	// SpillMapped counts the subset of SpillLoads served through the
	// zero-copy mmap path (trace stage only).
	SpillMapped int64 `json:"spill_mapped"`

	// P50BuildNS / P95BuildNS are cold-build wall-clock percentiles over
	// the stage's recent builds (a bounded window; 0 before the first cold
	// build) — the observability surface of the scheduler's cost inputs.
	P50BuildNS int64 `json:"p50_build_ns,omitempty"`
	P95BuildNS int64 `json:"p95_build_ns,omitempty"`
}

// StoreStats is the artifact store's full observability surface: per-stage
// request outcomes plus the disk tier's counters when one is attached.
type StoreStats struct {
	Stages map[Stage]StageStoreStats `json:"stages"`
	Disk   *artifactdisk.Stats       `json:"disk,omitempty"`
}

// StoreStats snapshots the engine's artifact-store counters. The per-stage
// cold counts are the same observable as StagePrepares; disk loads are
// counted separately (a restart-warm stage is neither a cold build nor an
// in-memory hit).
func (r *Runner) StoreStats() StoreStats {
	out := StoreStats{Stages: make(map[Stage]StageStoreStats, len(stageIndex))}
	for st, i := range stageIndex {
		c := &r.stageStats[i]
		p50, p95 := r.stageLat[i].percentiles()
		out.Stages[st] = StageStoreStats{
			Hit:         c.hit.Load(),
			Shared:      c.shared.Load(),
			Cold:        c.cold.Load(),
			SpillLoads:  c.spill.Load(),
			SpillMapped: c.mapped.Load(),
			P50BuildNS:  p50,
			P95BuildNS:  p95,
		}
	}
	out.Disk = r.DiskStats()
	return out
}
