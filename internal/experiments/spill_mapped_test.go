package experiments

import (
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/artifactdisk"
	"repro/internal/program"
)

// traceSpillFile returns the single trace-stage artifact file under dir.
func traceSpillFile(t *testing.T, dir string) string {
	t.Helper()
	var traces []string
	sep := string(os.PathSeparator)
	for _, p := range spillFiles(t, dir) {
		if strings.Contains(p, sep+"trace"+sep) {
			traces = append(traces, p)
		}
	}
	if len(traces) != 1 {
		t.Fatalf("found %d trace spill files, want 1", len(traces))
	}
	return traces[0]
}

// copyDir duplicates a spill directory so corruption scenarios can share one
// cold populate.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMappedSpillRestartWarm pins the zero-copy restart path: a fresh Runner
// over a populated directory serves its trace through a read-only mapping
// (spill_mapped == 1 on the trace stage, 0 everywhere else), keeps one file
// mapped in the store's accounting, and assembles a preparation equal to the
// cold one. A runner with the mapped path disabled still loads the same v2
// file, just through the heap decoder.
func TestMappedSpillRestartWarm(t *testing.T) {
	if !artifactdisk.MapSupported() {
		t.Skip("platform cannot map files")
	}
	ctx := context.Background()
	dir := t.TempDir()
	cfg := DefaultConfig()

	r1 := NewRunner(cfg, 0, nil)
	if err := r1.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	p1, err := r1.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(cfg, 0, nil)
	if err := r2.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	p2, err := r2.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := r2.StoreStats()
	for _, st := range spillableStages() {
		want := int64(0)
		if st == StageTrace {
			want = 1
		}
		if n := stats.Stages[st].SpillMapped; n != want {
			t.Errorf("stage %s spill_mapped = %d, want %d", st, n, want)
		}
		if n := stats.Stages[st].SpillLoads; n != 1 {
			t.Errorf("stage %s spill_loads = %d, want 1", st, n)
		}
		if n := r2.StagePrepares(st); n != 0 {
			t.Errorf("warm runner rebuilt stage %s %d times, want 0", st, n)
		}
	}
	if stats.Disk.MappedFiles != 1 {
		t.Errorf("disk reports %d mapped files, want 1", stats.Disk.MappedFiles)
	}
	if stats.Disk.MappedBytes <= 0 {
		t.Errorf("disk reports %d mapped bytes, want > 0", stats.Disk.MappedBytes)
	}

	if !reflect.DeepEqual(p1.Baseline, p2.Baseline) {
		t.Error("mapped-warm baseline diverged from cold baseline")
	}
	if !reflect.DeepEqual(p1.Params, p2.Params) {
		t.Error("mapped-warm params diverged from cold params")
	}
	if !reflect.DeepEqual(p1.Curves, p2.Curves) {
		t.Error("mapped-warm curves diverged from cold curves")
	}
	if p1.Trace.Len() != p2.Trace.Len() {
		t.Errorf("mapped trace length %d, cold %d", p2.Trace.Len(), p1.Trace.Len())
	}

	// Mapped path disabled: the same v2 file loads through the heap decoder.
	r3 := NewRunner(cfg, 0, nil)
	r3.SetMappedSpill(false)
	if err := r3.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Prepare(ctx, "gap", program.Train, cfg); err != nil {
		t.Fatal(err)
	}
	s3 := r3.StoreStats()
	if n := s3.Stages[StageTrace].SpillLoads; n != 1 {
		t.Errorf("heap-only runner: trace spill_loads = %d, want 1", n)
	}
	if n := s3.Stages[StageTrace].SpillMapped; n != 0 {
		t.Errorf("heap-only runner: trace spill_mapped = %d, want 0", n)
	}
	if s3.Disk.MappedFiles != 0 {
		t.Errorf("heap-only runner: %d mapped files, want 0", s3.Disk.MappedFiles)
	}
}

// TestMappedSpillCorruptionMatrix drives the mapped load path into every
// corruption class it can meet — a flipped bit inside a chunk's CRC-covered
// region, a truncated file tail, a stale v1 payload magic inside the aligned
// container, and a damaged container key — and pins the same contract as the
// heap path: quarantine, cold rebuild, re-spill, never a fatal error, and a
// baseline byte-identical to the committed golden.
//
// Payload geometry (see EXPERIMENTS.md): the LABART02 container header is
// padded to 4096, so the PXTRC002 payload starts at file offset 4096; its own
// header page puts the first chunk's CRC-covered columns at offset 8192.
func TestMappedSpillCorruptionMatrix(t *testing.T) {
	if !artifactdisk.MapSupported() {
		t.Skip("platform cannot map files")
	}
	ctx := context.Background()
	cfg := DefaultConfig()

	base := t.TempDir()
	r1 := NewRunner(cfg, 0, nil)
	if err := r1.AttachDiskStore(base, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Prepare(ctx, "gap", program.Train, cfg); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_gap_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}

	flipAt := func(off int64) func(*testing.T, string) {
		return func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(raw)) <= off {
				t.Fatalf("trace file only %d bytes, cannot flip offset %d", len(raw), off)
			}
			raw[off] ^= 1
			if err := os.WriteFile(path, raw, 0o666); err != nil {
				t.Fatal(err)
			}
		}
	}
	scenarios := []struct {
		name    string
		corrupt func(*testing.T, string)
	}{
		{"chunk-bit-flip", flipAt(4096 + 4096 + 100)},
		{"truncated-tail", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-4096); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale-v1-magic", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("PXTRC001"), 4096); err != nil {
				t.Fatal(err)
			}
		}},
		// Offset 12 is the first byte of the container's key JSON.
		{"key-mismatch", flipAt(12)},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, base, dir)
			sc.corrupt(t, traceSpillFile(t, dir))

			r2 := NewRunner(cfg, 0, nil)
			if err := r2.AttachDiskStore(dir, 0); err != nil {
				t.Fatal(err)
			}
			p2, err := r2.Prepare(ctx, "gap", program.Train, cfg)
			if err != nil {
				t.Fatalf("prepare over corrupt mapped store: %v", err)
			}
			stats := r2.StoreStats()
			if stats.Disk.Quarantined != 1 {
				t.Errorf("quarantined %d files, want 1", stats.Disk.Quarantined)
			}
			if n := r2.StagePrepares(StageTrace); n != 1 {
				t.Errorf("trace stage rebuilt %d times, want 1", n)
			}
			for _, st := range spillableStages() {
				if st != StageTrace && r2.StagePrepares(st) != 0 {
					t.Errorf("stage %s rebuilt, want served from disk", st)
				}
			}
			if n := stats.Stages[StageTrace].SpillMapped; n != 0 {
				t.Errorf("corrupt trace served mapped %d times, want 0", n)
			}
			if stats.Disk.Saves != 1 {
				t.Errorf("re-spilled %d artifacts, want 1 (the rebuilt trace)", stats.Disk.Saves)
			}

			got, err := json.MarshalIndent(p2.Baseline, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if string(got) != string(golden) {
				t.Error("baseline rebuilt after mapped corruption diverged from golden")
			}
		})
	}
}
