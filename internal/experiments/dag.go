package experiments

// DAG export: the scheduled stage DAG as a structured report plus a
// Graphviz DOT rendering, served by `report -dag` and the daemon's
// GET /v1/jobs/{id}/dag. The export is a plan — it annotates each node with
// its projected cost, remaining critical-path cost and cold/cached/spill
// status at planning time — and never executes anything.

import (
	"fmt"
	"strings"
)

// DAGNode is one node of an exported schedule DAG: a stage build for one
// workload, or a measurement sink for one grid point.
type DAGNode struct {
	Bench string `json:"bench"`
	Input string `json:"input,omitempty"`
	Stage string `json:"stage"`
	// Point carries the grid-point label on measurement sinks.
	Point string `json:"point,omitempty"`
	// Status is cold, cached, spill or measure (see the sched* constants).
	Status string `json:"status"`
	// CostSec is the node's own projected cost; CriticalSec adds the
	// costliest chain of dependents below it — the scheduling priority.
	CostSec     float64 `json:"cost_sec"`
	CriticalSec float64 `json:"critical_sec"`
}

// DAGEdge is one dependency edge, by node index (From must complete before
// To can start).
type DAGEdge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// DAGReport is the scheduled stage DAG of one sweep grid, nodes in
// insertion (topological) order.
type DAGReport struct {
	Axes  []string  `json:"axes,omitempty"`
	Nodes []DAGNode `json:"nodes"`
	Edges []DAGEdge `json:"edges"`
	// CriticalPathSec is the grid's projected makespan floor: the longest
	// root-to-sink chain under the cost model.
	CriticalPathSec float64 `json:"critical_path_sec"`
}

// dagFill maps node statuses to DOT fill colors.
var dagFill = map[string]string{
	schedCold:    "lightblue",
	schedCached:  "palegreen",
	schedSpill:   "khaki",
	schedMeasure: "lightgrey",
}

// DOT renders the DAG in Graphviz dot syntax, one box per node annotated
// with projected cost, critical-path cost and status.
func (d *DAGReport) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph stages {\n")
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=box, style=filled, fontname=\"monospace\"];\n")
	for i, n := range d.Nodes {
		head := n.Bench
		if n.Input != "" {
			head += "/" + n.Input
		}
		line2 := n.Stage
		if n.Point != "" {
			line2 += " @ " + n.Point
		}
		label := fmt.Sprintf("%s\\n%s\\n%.3fs cp %.3fs [%s]",
			head, line2, n.CostSec, n.CriticalSec, n.Status)
		fill := dagFill[n.Status]
		if fill == "" {
			fill = "white"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\", fillcolor=\"%s\"];\n", i, label, fill)
	}
	for _, e := range d.Edges {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.From, e.To)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// report converts the builder's DAG (critical costs already computed) into
// the exported form. Node indices equal seq: order is insertion order.
func (b *dagBuilder) report(axes []string) *DAGReport {
	d := &DAGReport{Axes: axes, Nodes: make([]DAGNode, len(b.order))}
	for i, n := range b.order {
		d.Nodes[i] = DAGNode{
			Bench:       n.bench,
			Stage:       string(n.stage),
			Point:       n.label,
			Status:      n.status,
			CostSec:     n.cost,
			CriticalSec: n.crit,
		}
		if n.stage != stageMeasure {
			d.Nodes[i].Input = n.input.String()
		}
		if n.crit > d.CriticalPathSec {
			d.CriticalPathSec = n.crit
		}
		for _, c := range n.children {
			d.Edges = append(d.Edges, DAGEdge{From: n.seq, To: c.seq})
		}
	}
	return d
}

// SweepDAG plans a grid without executing it: the schedule DAG Sweep would
// run, annotated with projected costs and store status at planning time.
// Workload specs in the grid are registered exactly as Sweep registers
// them; the artifact store is only peeked, never populated.
func (r *Runner) SweepDAG(g Grid) (*DAGReport, error) {
	jobs, targets, axes, err := r.expandGrid(g)
	if err != nil {
		return nil, err
	}
	b := r.newDAGBuilder()
	for _, j := range jobs {
		prep, cerr := b.addChain(j.bench, j.pt.cfg.MeasureInput, j.pt.cfg)
		if cerr != nil {
			return nil, fmt.Errorf("%s@%s: %w", j.bench, j.pt.point(), cerr)
		}
		b.addMeasure(j.pt.point(), r.measureEstimate(j.bench, j.pt.cfg.MeasureInput, len(targets)), prep, nil)
	}
	b.computeCritical()
	return b.report(axes), nil
}
