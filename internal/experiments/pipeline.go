package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cpu"
	"repro/internal/critpath"
	"repro/internal/energy"
	"repro/internal/fingerprint"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/slicer"
	"repro/internal/trace"
)

// Stage identifies one stage of the preparation pipeline — the small DAG
//
//	trace ──► profile ──► problems ──┬─► slices
//	  │                              └─► curves ──┐
//	  └────────────────► baseline ────────────────┴─► params
//
// Every stage artifact is cached under a content fingerprint derived from
// exactly the configuration fields the stage reads (chained through its
// upstream artifacts' fingerprints), so a sweep point that mutates one knob
// rebuilds only the stages that actually depend on it:
//
//	trace    — (benchmark, input) alone; no configuration
//	profile  — profile.Config (L1D/L2 geometry, stride prefetcher)
//	problems — ProblemCoverage, MinMisses
//	slices   — slicer.Config
//	curves   — critpath.Config (core shape + hierarchy latencies)
//	baseline — cpu.Config with the energy parameters zeroed (simulation
//	           timing is independent of them; energy is recomputed from the
//	           cached event counts per requesting configuration)
//	params   — pthsel.DeriveConfig (latencies + energy model + floors)
//	prepared — the assembled whole-config view (cheap; kept so repeated
//	           figures over one configuration share a single assembly)
type Stage string

// Pipeline stages, in dependency order.
const (
	StageTrace    Stage = "trace"
	StageProfile  Stage = "profile"
	StageProblems Stage = "problems"
	StageSlices   Stage = "slices"
	StageCurves   Stage = "curves"
	StageBaseline Stage = "baseline"
	StageParams   Stage = "params"
	StagePrepared Stage = "prepared"
)

// Stages lists every pipeline stage in dependency order (StagePrepared
// last: the assembled whole-config view behind StagePrepares).
func Stages() []Stage {
	return []Stage{StageTrace, StageProfile, StageProblems, StageSlices,
		StageCurves, StageBaseline, StageParams, StagePrepared}
}

// stageDeps maps each pipeline stage to its direct upstream stages — the
// edge set of the stage DAG drawn above, which the scheduler expands into
// per-workload dependency nodes. Iterating Stages() guarantees every
// stage's deps precede it.
var stageDeps = map[Stage][]Stage{
	StageTrace:    nil,
	StageProfile:  {StageTrace},
	StageProblems: {StageProfile},
	StageSlices:   {StageTrace, StageProfile, StageProblems},
	StageCurves:   {StageTrace, StageProfile, StageProblems},
	StageBaseline: {StageTrace},
	StageParams:   {StageBaseline, StageCurves},
	StagePrepared: {StageTrace, StageProfile, StageProblems, StageSlices,
		StageCurves, StageBaseline, StageParams},
}

// problemsConfig is the configuration of the problem-load mining stage.
type problemsConfig struct {
	Coverage  float64
	MinMisses int64
}

// stagePlan is one experiment Config projected onto the pipeline: each
// stage's own config struct plus its chained content fingerprint.
type stagePlan struct {
	profileCfg  profile.Config
	problemsCfg problemsConfig
	slicerCfg   slicer.Config
	critCfg     critpath.Config
	timingCfg   cpu.Config
	deriveCfg   pthsel.DeriveConfig

	fps map[Stage]string
}

// timingConfig strips the processor configuration down to the fields that
// influence simulated behaviour: the energy parameters are accounting-only
// (they are read exactly once, after the last cycle, to convert event counts
// into energy), so baselines are keyed — and simulated — without them.
// EngineBatched normalizes to the event engine it denotes per instance, so
// batched sweep points share cached baselines with their serial twins.
func timingConfig(c cpu.Config) cpu.Config {
	c.Energy = energy.Params{}
	c.Engine = normalizeEngine(c.Engine)
	return c
}

// deriveConfig projects an experiment Config onto the params-derivation
// stage's inputs.
func deriveConfig(cfg Config) pthsel.DeriveConfig {
	h := cfg.CPU.Hier
	return pthsel.DeriveConfig{
		BWSEQproc: float64(cfg.CPU.FetchWidth),
		MissLat:   float64(h.MemLatency),
		LatL1:     float64(h.L1D.HitLatency),
		LatL2:     float64(h.L1D.HitLatency + h.L2.HitLatency),
		LatMem:    float64(h.L1D.HitLatency + h.L2.HitLatency + h.MemLatency),
		Energy:    cfg.CPU.Energy,
		MinDCptcm: 16,
	}
}

// planFor computes the per-stage configs and content fingerprints of one
// experiment configuration. workloadFP is the content fingerprint of the
// workload itself — empty for the built-in corpus, whose (benchmark, input)
// pair alone identifies the trace, and the generated-spec fingerprint for
// registered generator workloads, so a respun spec under a reused name can
// never alias a cached stage. A configuration that cannot be fingerprinted
// (e.g. a sweep mutation smuggling in a NaN) is reported as an error instead
// of panicking from inside the artifact store.
func planFor(cfg Config, workloadFP string) (stagePlan, error) {
	if err := validateEngine(cfg.CPU.Engine); err != nil {
		return stagePlan{}, err
	}
	p := stagePlan{
		profileCfg:  profile.ConfigFromHier(cfg.CPU.Hier),
		problemsCfg: problemsConfig{Coverage: cfg.ProblemCoverage, MinMisses: cfg.MinMisses},
		slicerCfg:   cfg.Slicer,
		critCfg:     critpathConfig(cfg),
		timingCfg:   timingConfig(cfg.CPU),
		deriveCfg:   deriveConfig(cfg),
	}
	profileFP, err := p.profileCfg.Fingerprint()
	if err != nil {
		return stagePlan{}, fmt.Errorf("%s stage: %w", StageProfile, err)
	}
	problemsFP, err := fingerprint.JSON(p.problemsCfg)
	if err != nil {
		return stagePlan{}, fmt.Errorf("%s stage: %w", StageProblems, err)
	}
	slicerFP, err := p.slicerCfg.Fingerprint()
	if err != nil {
		return stagePlan{}, fmt.Errorf("%s stage: %w", StageSlices, err)
	}
	critFP, err := p.critCfg.Fingerprint()
	if err != nil {
		return stagePlan{}, fmt.Errorf("%s stage: %w", StageCurves, err)
	}
	timingFP, err := fingerprint.JSON(p.timingCfg)
	if err != nil {
		return stagePlan{}, fmt.Errorf("%s stage: %w", StageBaseline, err)
	}
	deriveFP, err := p.deriveCfg.Fingerprint()
	if err != nil {
		return stagePlan{}, fmt.Errorf("%s stage: %w", StageParams, err)
	}
	preparedFP, err := preparedFingerprint(cfg, workloadFP)
	if err != nil {
		return stagePlan{}, err
	}
	fps := map[Stage]string{StageTrace: workloadFP}
	fps[StageProfile] = fingerprint.Chain(profileFP, fps[StageTrace])
	fps[StageProblems] = fingerprint.Chain(problemsFP, fps[StageProfile])
	fps[StageSlices] = fingerprint.Chain(slicerFP, fps[StageProblems])
	fps[StageCurves] = fingerprint.Chain(critFP, fps[StageProblems])
	fps[StageBaseline] = fingerprint.Chain(timingFP, fps[StageTrace])
	fps[StageParams] = fingerprint.Chain(deriveFP, fps[StageBaseline], fps[StageCurves])
	fps[StagePrepared] = preparedFP
	p.fps = fps
	return p, nil
}

// preparedFingerprint is the whole-config fingerprint behind the assembled
// preparation's store key, chained through the workload fingerprint. It is
// computed separately from the full stage plan so Runner.Prepare can key its
// outer store lookup without re-deriving every stage config on a cache hit.
func preparedFingerprint(cfg Config, workloadFP string) (string, error) {
	fp, err := fingerprint.JSON(cfg)
	if err != nil {
		return "", fmt.Errorf("%s stage: %w", StagePrepared, err)
	}
	return fingerprint.Chain(fp, workloadFP), nil
}

// workloadFingerprint returns the registered benchmark's content fingerprint
// (empty for the built-in corpus) plus a not-found error for unknown names,
// so entry points fail fast before touching the store.
func workloadFingerprint(name string) (string, error) {
	bm, err := program.ByName(name)
	if err != nil {
		return "", err
	}
	return bm.Fingerprint, nil
}

// ------------------------------------------------------- stage functions --
//
// Each stage is a plain function of its upstream artifacts and its own
// config struct; the Runner wraps them in the content-addressed store, and
// the uncached paths (custom programs, the free Prepare) call them directly.

func stageTrace(name string, input program.InputClass) (*trace.Trace, error) {
	bm, err := program.ByName(name)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Run(bm.Build(input))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return tr, nil
}

func stageProblems(prof *profile.Profile, pc problemsConfig) []*profile.LoadStats {
	return prof.ProblemLoads(pc.Coverage, pc.MinMisses)
}

func stageCurves(ctx context.Context, tr *trace.Trace, prof *profile.Profile,
	problems []*profile.LoadStats, ccfg critpath.Config) (map[int32]critpath.Curve, error) {
	cp := critpath.New(tr, prof, ccfg)
	curves := make(map[int32]critpath.Curve, len(problems))
	for _, ls := range problems {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		curves[ls.PC] = cp.CostCurve(ls.PC)
	}
	return curves, nil
}

func stageBaseline(ctx context.Context, name string, timingCfg cpu.Config, tr *trace.Trace) (*cpu.Result, error) {
	base, err := Simulate(ctx, timingCfg, tr, nil)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", name, err)
	}
	return base, nil
}

// baselineFor returns one configuration's view of a cached timing baseline:
// a clone whose energy breakdown is recomputed from the recorded event
// counts under that configuration's energy parameters. Simulation timing is
// independent of the energy model, so this is bit-identical to re-running
// the baseline under the full configuration — which is what lets sweep
// points that only mutate energy knobs reuse the cached baseline L0/E0.
func baselineFor(base *cpu.Result, p energy.Params) *cpu.Result {
	out := base.Clone()
	out.Energy = energy.Compute(p, out.Events)
	return out
}

// assemblePrepared builds the whole-config view from stage artifacts. base
// must already carry the requesting configuration's energy breakdown.
func assemblePrepared(name string, tr *trace.Trace, prof *profile.Profile, trees []*slicer.Tree,
	curves map[int32]critpath.Curve, base *cpu.Result, params pthsel.Params) *Prepared {
	return &Prepared{
		Name:     name,
		Trace:    tr,
		Prof:     prof,
		Trees:    trees,
		Curves:   curves,
		Baseline: base,
		Params:   params,
	}
}

// --------------------------------------------------------- staged runner --

// stage runs one pipeline stage through the content-addressed store,
// emitting stage events and tallying the per-stage outcome counters. A cold
// miss consults the disk spill tier before computing: the disk load happens
// inside the singleflight slot, so concurrent requesters of one artifact
// perform at most one load just as they perform at most one build, and a
// freshly built artifact is spilled back before the slot completes.
func (r *Runner) stage(ctx context.Context, name string, input program.InputClass,
	st Stage, plan stagePlan, compute func() (any, error)) (any, error) {
	key := artifactKey{name: name, input: input, stage: st, fp: plan.fps[st]}
	val, outcome, err := r.store.get(ctx, key, func() (any, error) {
		if v, ok, mapped := r.spillLoad(key); ok {
			r.observeArtifact(name, input, v)
			sc := r.stageCount(st)
			sc.spill.Add(1)
			if mapped {
				sc.mapped.Add(1)
			}
			r.emit(ctx, Event{Kind: EventStageSpill, Bench: name, Input: input.String(), Stage: string(st)})
			return v, nil
		}
		r.stageCount(st).cold.Add(1)
		r.emit(ctx, Event{Kind: EventStageStart, Bench: name, Input: input.String(), Stage: string(st)})
		start := time.Now()
		v, cerr := compute()
		elapsed := time.Since(start)
		r.emit(ctx, Event{Kind: EventStageDone, Bench: name, Input: input.String(), Stage: string(st),
			Err: cerr, DurationNS: elapsed.Nanoseconds()})
		if cerr == nil {
			r.observeArtifact(name, input, v)
			r.observeBuild(st, name, input, elapsed)
			r.spillSave(key, v)
		}
		return v, cerr
	})
	if err != nil {
		return nil, err
	}
	switch outcome {
	case storeHit:
		r.stageCount(st).hit.Add(1)
		r.emit(ctx, Event{Kind: EventStageCached, Bench: name, Input: input.String(), Stage: string(st)})
	case storeShared:
		r.stageCount(st).shared.Add(1)
	}
	return val, nil
}

// stagedPrepare assembles a Prepared from per-stage artifacts, computing
// each missing stage at most once per engine (shared across every sweep
// point, figure and campaign worker whose configuration agrees on the
// fields that stage reads). The per-stage walk and the scheduler's DAG
// nodes share one implementation, ensureStage, so both orders produce
// identical store traffic for identical work.
func (r *Runner) stagedPrepare(ctx context.Context, name string, input program.InputClass, cfg Config) (*Prepared, error) {
	wfp, err := workloadFingerprint(name)
	if err != nil {
		return nil, err
	}
	plan, err := planFor(cfg, wfp)
	if err != nil {
		return nil, err
	}
	vals := make(map[Stage]any, len(stageDeps))
	for _, st := range Stages() {
		if st == StagePrepared {
			break // assembled below, not through the store (we are its compute)
		}
		v, err := r.ensureStage(ctx, name, input, cfg, plan, st)
		if err != nil {
			return nil, err
		}
		vals[st] = v
	}
	base := baselineFor(vals[StageBaseline].(*cpu.Result), cfg.CPU.Energy)
	p := assemblePrepared(name, vals[StageTrace].(*trace.Trace), vals[StageProfile].(*profile.Profile),
		vals[StageSlices].([]*slicer.Tree), vals[StageCurves].(map[int32]critpath.Curve),
		base, vals[StageParams].(pthsel.Params))
	p.Input = input
	return p, nil
}

// ensureStage requests one pipeline stage through the content-addressed
// store, computing it on a cold miss. Compute closures read their upstream
// artifacts through upstreamStage: when the caller already ordered them —
// the sequential stagedPrepare walk, or the scheduler's dependency edges —
// that read is a free peek; an out-of-order call recursively ensures them,
// so ensureStage is correct from any call site.
func (r *Runner) ensureStage(ctx context.Context, name string, input program.InputClass,
	cfg Config, plan stagePlan, st Stage) (any, error) {
	up := func(u Stage) (any, error) { return r.upstreamStage(ctx, name, input, cfg, plan, u) }
	switch st {
	case StageTrace:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			return stageTrace(name, input)
		})
	case StageProfile:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			trV, err := up(StageTrace)
			if err != nil {
				return nil, err
			}
			return profile.Collect(trV.(*trace.Trace), plan.profileCfg), nil
		})
	case StageProblems:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			profV, err := up(StageProfile)
			if err != nil {
				return nil, err
			}
			return stageProblems(profV.(*profile.Profile), plan.problemsCfg), nil
		})
	case StageSlices:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			tr, prof, problems, err := r.analysisInputs(ctx, name, input, cfg, plan)
			if err != nil {
				return nil, err
			}
			return slicer.BuildTrees(tr, prof, problems, plan.slicerCfg), nil
		})
	case StageCurves:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			tr, prof, problems, err := r.analysisInputs(ctx, name, input, cfg, plan)
			if err != nil {
				return nil, err
			}
			return stageCurves(ctx, tr, prof, problems, plan.critCfg)
		})
	case StageBaseline:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			trV, err := up(StageTrace)
			if err != nil {
				return nil, err
			}
			return stageBaseline(ctx, name, plan.timingCfg, trV.(*trace.Trace))
		})
	case StageParams:
		return r.stage(ctx, name, input, st, plan, func() (any, error) {
			baseV, err := up(StageBaseline)
			if err != nil {
				return nil, err
			}
			curvesV, err := up(StageCurves)
			if err != nil {
				return nil, err
			}
			base := baselineFor(baseV.(*cpu.Result), cfg.CPU.Energy)
			return plan.deriveCfg.Derive(float64(base.Cycles), base.Energy.Total(),
				base.IPC(), curvesV.(map[int32]critpath.Curve)), nil
		})
	case StagePrepared:
		return r.Prepare(ctx, name, input, cfg)
	}
	return nil, fmt.Errorf("experiments: unknown pipeline stage %q", st)
}

// analysisInputs gathers the (trace, profile, problems) triple the two
// analysis stages consume.
func (r *Runner) analysisInputs(ctx context.Context, name string, input program.InputClass,
	cfg Config, plan stagePlan) (*trace.Trace, *profile.Profile, []*profile.LoadStats, error) {
	trV, err := r.upstreamStage(ctx, name, input, cfg, plan, StageTrace)
	if err != nil {
		return nil, nil, nil, err
	}
	profV, err := r.upstreamStage(ctx, name, input, cfg, plan, StageProfile)
	if err != nil {
		return nil, nil, nil, err
	}
	problemsV, err := r.upstreamStage(ctx, name, input, cfg, plan, StageProblems)
	if err != nil {
		return nil, nil, nil, err
	}
	return trV.(*trace.Trace), profV.(*profile.Profile), problemsV.([]*profile.LoadStats), nil
}

// upstreamStage reads an upstream artifact from inside a compute closure:
// peek first — the value is an input being read, not a new request, so a
// completed entry costs no counter or event traffic — falling back to a
// full ensure when nothing ordered it yet (or a cancellation retired it).
func (r *Runner) upstreamStage(ctx context.Context, name string, input program.InputClass,
	cfg Config, plan stagePlan, st Stage) (any, error) {
	key := artifactKey{name: name, input: input, stage: st, fp: plan.fps[st]}
	if v, err, ok := r.store.peek(key); ok {
		return v, err
	}
	return r.ensureStage(ctx, name, input, cfg, plan, st)
}
