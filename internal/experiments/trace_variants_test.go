package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/program/gen"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// TestTraceVariantEnginesIdentical is the differential identity gate for the
// spill format bump: for every paper benchmark and every generated corpus
// workload, the fresh in-memory trace, its v1 decode, its v2 heap decode and
// its zero-copy mapped view must all drive every engine (event, scan,
// batched) to byte-identical Result JSON. Any representation leak in the
// mapped columns — aliasing, padding, the filled-length trailer — shows up
// here as a diverging simulation.
func TestTraceVariantEnginesIdentical(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	r := NewRunner(cfg, 0, nil)

	type workload struct {
		name string
		tr   *trace.Trace
		pts  []*cpu.PThread
	}
	var workloads []workload
	for _, name := range program.PaperNames() {
		prep, err := r.Prepare(ctx, name, cfg.MeasureInput, cfg)
		if err != nil {
			t.Fatalf("%s: prepare: %v", name, err)
		}
		sel := pthsel.Select(prep.Trace, prep.Prof, prep.Trees, prep.Params, pthsel.TargetL)
		workloads = append(workloads, workload{name, prep.Trace, sel.PThreads})
	}
	corpus := gen.CorpusSpecs()
	if len(corpus) < 20 {
		t.Fatalf("gen corpus has %d specs, want >= 20", len(corpus))
	}
	for _, spec := range corpus {
		bm, err := spec.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Run(bm.Build(program.Train))
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, workload{spec.Name(), tr, nil})
	}

	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			t.Parallel()

			type variant struct {
				name string
				tr   *trace.Trace
			}
			variants := []variant{{"fresh", wl.tr}}
			var v1buf, v2buf bytes.Buffer
			if err := wl.tr.EncodeBinary(&v1buf); err != nil {
				t.Fatal(err)
			}
			v1, err := trace.DecodeBinary(bytes.NewReader(v1buf.Bytes()), wl.tr.Prog)
			if err != nil {
				t.Fatalf("v1 decode: %v", err)
			}
			variants = append(variants, variant{"v1-decode", v1})
			if err := wl.tr.EncodeBinaryV2(&v2buf); err != nil {
				t.Fatal(err)
			}
			v2, err := trace.DecodeBinaryV2(v2buf.Bytes(), wl.tr.Prog)
			if err != nil {
				t.Fatalf("v2 heap decode: %v", err)
			}
			variants = append(variants, variant{"v2-decode", v2})
			mapped, _, err := trace.MapBytes(v2buf.Bytes(), wl.tr.Prog)
			if err != nil {
				t.Fatalf("v2 mapped view: %v", err)
			}
			variants = append(variants, variant{"mapped", mapped})

			// Reference: the event engine over the fresh trace. Result
			// borrows simulator memory, so marshal before the next run.
			ref, err := Simulate(ctx, cfg.CPU, wl.tr, wl.pts)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			want, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}

			bs := cpu.NewBatchSimulator()
			for _, v := range variants {
				for _, eng := range []cpu.Engine{cpu.EngineEvent, cpu.EngineScan} {
					c := cfg.CPU
					c.Engine = eng
					res, err := Simulate(ctx, c, v.tr, wl.pts)
					if err != nil {
						t.Fatalf("%s/%s: %v", v.name, eng, err)
					}
					got, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s via %q engine diverges from fresh/event", v.name, eng)
					}
				}
				// Batched engine, width 2, both slots over this variant.
				cfgs := []cpu.Config{cfg.CPU, cfg.CPU}
				pthreads := [][]*cpu.PThread{wl.pts, wl.pts}
				if err := bs.Reset(cfgs, v.tr, pthreads); err != nil {
					t.Fatalf("%s/batched: reset: %v", v.name, err)
				}
				results, errs, err := bs.RunContext(ctx)
				if err != nil {
					t.Fatalf("%s/batched: run: %v", v.name, err)
				}
				for i, res := range results {
					if errs[i] != nil {
						t.Fatalf("%s/batched slot %d: %v", v.name, i, errs[i])
					}
					got, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s via batched engine slot %d diverges from fresh/event", v.name, i)
					}
				}
			}
		})
	}
}
