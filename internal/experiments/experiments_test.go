package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/program"
	"repro/internal/pthsel"
)

func TestPrepareProducesEverything(t *testing.T) {
	cfg := DefaultConfig()
	prep, err := Prepare(context.Background(), "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Baseline.Cycles <= 0 || prep.Baseline.Committed <= 0 {
		t.Error("baseline missing")
	}
	if len(prep.Trees) == 0 {
		t.Error("no slice trees")
	}
	if len(prep.Curves) == 0 {
		t.Error("no criticality curves")
	}
	if prep.Params.BWSEQmt <= 0 || prep.Params.L0 <= 0 || prep.Params.E0 <= 0 {
		t.Errorf("params incomplete: %+v", prep.Params)
	}
	if prep.Params.MinDCptcm <= 0 {
		t.Error("candidate coverage floor unset")
	}
}

func TestPrepareUnknownBenchmark(t *testing.T) {
	if _, err := Prepare(context.Background(), "nonesuch", program.Train, DefaultConfig()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestPaperShape asserts the qualitative results the paper reports, on a
// representative benchmark subset:
//   - pre-execution speeds every target up;
//   - L-p-threads achieve the best latency reduction;
//   - E-p-threads consume the least energy of all targets;
//   - energy-blind latency targeting costs energy relative to E.
func TestPaperShape(t *testing.T) {
	cfg := DefaultConfig()
	results, err := RunAll(context.Background(), []string{"twolf", "vortex", "vpr.route"}, PrimaryTargets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range results {
		runs := br.Runs
		for tgt, r := range runs {
			if r.SpeedupPct < -1 {
				t.Errorf("%s/%s: slowdown %.1f%%", br.Name, tgt, r.SpeedupPct)
			}
		}
		l, e := runs[pthsel.TargetL], runs[pthsel.TargetE]
		if l.SpeedupPct < e.SpeedupPct-1 {
			t.Errorf("%s: L speedup %.1f below E %.1f (metric robustness)", br.Name, l.SpeedupPct, e.SpeedupPct)
		}
		if e.EnergySavePct < l.EnergySavePct-1 {
			t.Errorf("%s: E energy %.1f worse than L %.1f", br.Name, e.EnergySavePct, l.EnergySavePct)
		}
		// E-p-threads are near energy-neutral or better (within noise).
		if e.EnergySavePct < -3 {
			t.Errorf("%s: E-p-threads increased energy by %.1f%%", br.Name, -e.EnergySavePct)
		}
	}
}

func TestRunTargetRealisticProfiling(t *testing.T) {
	cfg := DefaultConfig()
	profPrep, err := Prepare(context.Background(), "gap", program.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	measPrep, err := Prepare(context.Background(), "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunTarget(context.Background(), profPrep, measPrep, pthsel.TargetL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ref-profiled p-threads must still help on Train (the paper's
	// robustness result), though typically less than ideal profiling.
	if run.SpeedupPct <= 0 {
		t.Errorf("realistic profiling speedup %.1f%%, want positive", run.SpeedupPct)
	}
}

func TestTable3RatiosFinite(t *testing.T) {
	rep, err := NewRunner(DefaultConfig(), 0, nil).Table3(context.Background(), []string{"gap", "vortex"})
	if err != nil {
		t.Fatal(err)
	}
	rendered := rep.Render()
	for _, r := range rep.Rows {
		for name, v := range map[string]float64{
			"latency": r.LatencyPred, "energy": r.EnergyPred, "ED": r.EDPred,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s %s prediction not finite: %v", r.Name, name, v)
			}
		}
		// Relative accuracy: the measured latency gain should be within a
		// factor of ~4 of the prediction (the paper reports 0.64–1.21).
		if r.LatencyPred < 0.2 || r.LatencyPred > 5 {
			t.Errorf("%s latency prediction ratio %.2f wildly off", r.Name, r.LatencyPred)
		}
	}
	if !strings.Contains(rendered, "Latency prediction") {
		t.Error("rendered table incomplete")
	}
}

func TestFigure5SweepPoints(t *testing.T) {
	for _, axis := range []SweepAxis{SweepIdleFactor, SweepMemLatency, SweepL2Size} {
		labels, mutations := SweepPoints(axis)
		if len(labels) != 3 || len(mutations) != 3 {
			t.Errorf("%s: %d points, want 3", axis, len(labels))
		}
		for _, m := range mutations {
			cfg := DefaultConfig()
			m(&cfg)
		}
		if axis.String() == "" {
			t.Error("axis name empty")
		}
	}
	// Mutations actually mutate.
	_, muts := SweepPoints(SweepMemLatency)
	cfg := DefaultConfig()
	muts[0](&cfg)
	if cfg.CPU.Hier.MemLatency != 100 {
		t.Errorf("mem latency mutation ineffective: %d", cfg.CPU.Hier.MemLatency)
	}
	_, muts = SweepPoints(SweepL2Size)
	cfg = DefaultConfig()
	muts[2](&cfg)
	if cfg.CPU.Hier.L2.SizeBytes != 512<<10 || cfg.CPU.Hier.L2.HitLatency != 15 {
		t.Error("L2 mutation ineffective")
	}
}

func TestFigure5BenchmarkTriples(t *testing.T) {
	if got := Figure5Benchmarks(SweepIdleFactor); len(got) != 3 || got[0] != "gap" {
		t.Errorf("idle triple = %v", got)
	}
	if got := Figure5Benchmarks(SweepMemLatency); got[0] != "gcc" {
		t.Errorf("mem triple = %v", got)
	}
	if got := Figure5Benchmarks(SweepL2Size); got[0] != "mcf" {
		t.Errorf("l2 triple = %v", got)
	}
	if got := Table3Benchmarks(); len(got) != 4 {
		t.Errorf("table 3 benchmarks = %v", got)
	}
	if got := PaperBenchmarks(); len(got) != 9 {
		t.Errorf("paper benchmarks = %v", got)
	}
}

func TestZeroIdleFactorEndToEnd(t *testing.T) {
	// At a 0% idle factor the E target must select nothing and leave the
	// execution untouched (the paper's §5.4 observation).
	cfg := DefaultConfig()
	cfg.CPU.Energy.IdleFactor = 0
	br, err := RunBenchmark(context.Background(), "vortex", []pthsel.Target{pthsel.TargetE}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := br.Runs[pthsel.TargetE]
	if len(run.Sel.PThreads) != 0 {
		t.Errorf("E selected %d p-threads at 0%% idle", len(run.Sel.PThreads))
	}
	if run.Res.Cycles != br.Prepared.Baseline.Cycles {
		t.Error("empty selection must reproduce the baseline exactly")
	}
}

func TestMemoryLatencyScalesGains(t *testing.T) {
	run := func(memlat int) float64 {
		cfg := DefaultConfig()
		cfg.CPU.Hier.MemLatency = memlat
		br, err := RunBenchmark(context.Background(), "gap", []pthsel.Target{pthsel.TargetL}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return br.Runs[pthsel.TargetL].SpeedupPct
	}
	lo, hi := run(100), run(300)
	if hi <= lo {
		t.Errorf("gains at 300-cycle memory (%.1f%%) not above 100-cycle (%.1f%%)", hi, lo)
	}
}

func TestDeriveMetrics(t *testing.T) {
	cfg := DefaultConfig()
	br, err := RunBenchmark(context.Background(), "twolf", []pthsel.Target{pthsel.TargetL}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := br.Runs[pthsel.TargetL]
	// Consistency between derived percentages and raw results.
	base := br.Prepared.Baseline
	wantSpeedup := 100 * (float64(base.Cycles)/float64(r.Res.Cycles) - 1)
	if math.Abs(r.SpeedupPct-wantSpeedup) > 1e-9 {
		t.Errorf("speedup %.3f vs recomputed %.3f", r.SpeedupPct, wantSpeedup)
	}
	if r.FullCovPct < 0 || r.PartCovPct < 0 || r.FullCovPct+r.PartCovPct > 150 {
		t.Errorf("coverage out of range: %.1f + %.1f", r.FullCovPct, r.PartCovPct)
	}
}
