package experiments

import (
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/program"
)

// spillableStages is every stage the disk tier persists (all but the cheap
// assembled view).
func spillableStages() []Stage {
	var out []Stage
	for _, st := range Stages() {
		if _, ok := stageCodecs[st]; ok {
			out = append(out, st)
		}
	}
	return out
}

// TestDiskStoreSurvivesRestart pins the restart-warm guarantee: a fresh
// Runner pointed at a populated spill directory rebuilds zero stages — every
// artifact is satisfied by a disk load — and assembles a preparation equal
// to the one the first Runner built cold.
func TestDiskStoreSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := DefaultConfig()

	r1 := NewRunner(cfg, 0, nil)
	if err := r1.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	p1, err := r1.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range spillableStages() {
		if n := r1.StagePrepares(st); n != 1 {
			t.Fatalf("cold runner: stage %s executed %d times, want 1", st, n)
		}
	}
	if st := r1.StoreStats(); st.Disk == nil || st.Disk.Saves != int64(len(spillableStages())) {
		t.Fatalf("cold runner disk stats: %+v", st.Disk)
	}

	// "Restart": a brand-new engine sharing only the directory.
	r2 := NewRunner(cfg, 0, nil)
	if err := r2.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	p2, err := r2.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := r2.StoreStats()
	for _, st := range spillableStages() {
		if n := r2.StagePrepares(st); n != 0 {
			t.Errorf("warm runner rebuilt stage %s %d times, want 0", st, n)
		}
		if n := stats.Stages[st].SpillLoads; n != 1 {
			t.Errorf("warm runner: stage %s spill loads %d, want 1", st, n)
		}
	}
	// The assembly itself is not spilled: it reruns, cheaply, from loads.
	if n := r2.StagePrepares(StagePrepared); n != 1 {
		t.Errorf("warm runner assembled %d preparations, want 1", n)
	}

	if !reflect.DeepEqual(p1.Baseline, p2.Baseline) {
		t.Error("restart-warm baseline diverged from cold baseline")
	}
	if !reflect.DeepEqual(p1.Params, p2.Params) {
		t.Error("restart-warm params diverged from cold params")
	}
	if !reflect.DeepEqual(p1.Prof, p2.Prof) {
		t.Error("restart-warm profile diverged from cold profile")
	}
	if !reflect.DeepEqual(p1.Curves, p2.Curves) {
		t.Error("restart-warm curves diverged from cold curves")
	}
}

// spillFiles lists the .art files under dir in sorted order.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".art") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// TestDiskStoreCorruptionRebuild pins the quarantine path end to end: a
// truncated file and a bit-flipped file are both quarantined on load — never
// fatal — their stages rebuilt cold, re-spilled, and the resulting baseline
// still matches the committed golden byte for byte.
func TestDiskStoreCorruptionRebuild(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := DefaultConfig()

	r1 := NewRunner(cfg, 0, nil)
	if err := r1.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Prepare(ctx, "gap", program.Train, cfg); err != nil {
		t.Fatal(err)
	}
	files := spillFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("found %d spill files, want at least 2", len(files))
	}
	// Truncate one artifact mid-payload and flip a payload bit in another.
	if err := os.Truncate(files[0], 40); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x10
	if err := os.WriteFile(files[1], raw, 0o666); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(cfg, 0, nil)
	if err := r2.AttachDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	p2, err := r2.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		t.Fatalf("prepare over corrupt store: %v", err)
	}
	stats := r2.StoreStats()
	if stats.Disk.Quarantined != 2 {
		t.Errorf("quarantined %d files, want 2", stats.Disk.Quarantined)
	}
	var colds int64
	for _, st := range spillableStages() {
		colds += r2.StagePrepares(st)
	}
	if colds != 2 {
		t.Errorf("rebuilt %d stages cold, want exactly the 2 corrupted", colds)
	}
	if stats.Disk.Saves != 2 {
		t.Errorf("re-spilled %d rebuilt artifacts, want 2", stats.Disk.Saves)
	}

	// The rebuilt preparation's baseline must match the committed golden
	// exactly — corruption costs a rebuild, never accuracy.
	got, err := json.MarshalIndent(p2.Baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(filepath.Join("testdata", "golden_gap_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("baseline rebuilt after corruption diverged from golden")
	}
}
