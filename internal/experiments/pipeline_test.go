package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/program"
)

// fpDiff compares two configs' stage fingerprints and returns the set of
// stages whose artifacts would be invalidated going from a to b.
func fpDiff(t *testing.T, a, b Config) map[Stage]bool {
	t.Helper()
	pa, err := planFor(a, "")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := planFor(b, "")
	if err != nil {
		t.Fatal(err)
	}
	out := map[Stage]bool{}
	for _, st := range Stages() {
		if pa.fps[st] != pb.fps[st] {
			out[st] = true
		}
	}
	return out
}

// TestStageFingerprintSensitivity pins the dependency structure of the
// pipeline: mutating a configuration field must re-fingerprint exactly the
// stages that read it (directly or through an upstream artifact) and no
// others. Every case lists the full invalidation set.
func TestStageFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
		want   map[Stage]bool
	}{
		{
			name:   "energy knob touches only params",
			mutate: func(c *Config) { c.CPU.Energy.IdleFactor = 0.10 },
			want:   map[Stage]bool{StageParams: true, StagePrepared: true},
		},
		{
			name:   "memory latency spares trace/profile/slices",
			mutate: func(c *Config) { c.CPU.Hier.MemLatency = 300 },
			want: map[Stage]bool{StageCurves: true, StageBaseline: true,
				StageParams: true, StagePrepared: true},
		},
		{
			name:   "slicing window touches only slices",
			mutate: func(c *Config) { c.Slicer.Window = 1024 },
			want:   map[Stage]bool{StageSlices: true, StagePrepared: true},
		},
		{
			name:   "problem coverage cascades from problems",
			mutate: func(c *Config) { c.ProblemCoverage = 0.8 },
			want: map[Stage]bool{StageProblems: true, StageSlices: true,
				StageCurves: true, StageParams: true, StagePrepared: true},
		},
		{
			// Params chains on the baseline and curve artifacts, so every
			// mutation that reaches either also re-derives params — that is
			// the point: params must be recomputed whenever the values they
			// are derived from can change.
			name:   "L2 geometry cascades from profile",
			mutate: func(c *Config) { c.CPU.Hier.L2.SizeBytes = 512 << 10 },
			want: map[Stage]bool{StageProfile: true, StageProblems: true,
				StageSlices: true, StageCurves: true, StageBaseline: true,
				StageParams: true, StagePrepared: true},
		},
		{
			name:   "ROB size spares the functional stages",
			mutate: func(c *Config) { c.CPU.ROBSize = 256 },
			want: map[Stage]bool{StageCurves: true, StageBaseline: true,
				StageParams: true, StagePrepared: true},
		},
		{
			name:   "engine selection spares everything but the baseline chain",
			mutate: func(c *Config) { c.CPU.Engine = "scan" },
			want: map[Stage]bool{StageBaseline: true, StageParams: true,
				StagePrepared: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			got := fpDiff(t, base, cfg)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("invalidated stages = %v, want %v", got, tc.want)
			}
		})
	}
	// And the trace stage never depends on configuration at all.
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if fpDiff(t, base, cfg)[StageTrace] {
			t.Errorf("%s invalidated the trace stage", tc.name)
		}
	}
}

// TestStagedPrepareMatchesDirect: the Runner's store-backed staged
// preparation must be indistinguishable from the free (uncached) Prepare —
// same baseline Result bit for bit, same selection params — including under
// a mutated energy configuration, where the staged path recomputes the
// energy breakdown from cached event counts instead of re-simulating.
func TestStagedPrepareMatchesDirect(t *testing.T) {
	ctx := context.Background()
	for _, mutate := range []func(*Config){
		func(*Config) {},
		func(c *Config) { c.CPU.Energy.IdleFactor = 0.10 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		direct, err := Prepare(ctx, "gap", program.Train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(cfg, 0, nil)
		staged, err := r.Prepare(ctx, "gap", program.Train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct.Baseline, staged.Baseline) {
			t.Errorf("baseline diverged between direct and staged preparation")
		}
		if !reflect.DeepEqual(direct.Params, staged.Params) {
			t.Errorf("params diverged: direct %+v vs staged %+v", direct.Params, staged.Params)
		}
		if len(direct.Trees) != len(staged.Trees) || len(direct.Curves) != len(staged.Curves) {
			t.Errorf("artifact shapes diverged")
		}
	}
	// The energy-mutated runner above shares nothing with this one; within
	// one runner, though, the two configs must share the heavy stages.
	r := NewRunner(DefaultConfig(), 0, nil)
	for _, idle := range []float64{0.05, 0.10} {
		cfg := DefaultConfig()
		cfg.CPU.Energy.IdleFactor = idle
		if _, err := r.Prepare(ctx, "gap", program.Train, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.StagePrepares(StageBaseline); n != 1 {
		t.Errorf("two energy configs ran %d baselines in one engine, want 1", n)
	}
}

// TestGridPointsMutationOrder: axis mutations apply in axis order, so when
// two axes touch the same field the later axis wins — matching how the
// point's labels read left to right.
func TestGridPointsMutationOrder(t *testing.T) {
	memAxis := func(name string, vals ...int) Axis {
		ax := Axis{Name: name}
		for _, v := range vals {
			v := v
			ax.Points = append(ax.Points, AxisPoint{
				Label:  fmt.Sprintf("%d", v),
				Mutate: func(c *Config) { c.CPU.Hier.MemLatency = v },
			})
		}
		return ax
	}
	g := Grid{Axes: []Axis{memAxis("first", 100, 200), memAxis("second", 300, 400)}}
	pts, err := g.points(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, pt := range pts {
		// The second axis's label must describe the realized config.
		want := 300
		if pt.labels[1] == "400" {
			want = 400
		}
		if pt.cfg.CPU.Hier.MemLatency != want {
			t.Errorf("point %v realized MemLatency %d, want %d (later axis must win)",
				pt.labels, pt.cfg.CPU.Hier.MemLatency, want)
		}
	}
}

// TestValidateNames covers the shared benchmark-name validator.
func TestValidateNames(t *testing.T) {
	if err := validateNames([]string{"gap", "mcf"}); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
	if err := validateNames(nil); err == nil {
		t.Error("empty list accepted")
	}
	err := validateNames([]string{"gap", "gap", "nonesuch", "alsonot"})
	if err == nil {
		t.Fatal("bad list accepted")
	}
	for _, want := range []string{"nonesuch", "alsonot", "duplicated", "gap", "vpr.route"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
