package cache

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement over fixed-size pages. A miss costs a fixed page-table-walk
// penalty, charged by the hierarchy.
type TLB struct {
	pageBits uint
	tags     []int64 // page numbers; -1 invalid
	lru      []int32
	clock    int32

	Stats Stats
}

// NewTLB returns an empty TLB with the given number of entries and page
// size in bytes (a power of two).
func NewTLB(entries, pageBytes int) *TLB {
	t := &TLB{
		pageBits: uint(log2(pageBytes)),
		tags:     make([]int64, entries),
		lru:      make([]int32, entries),
	}
	for i := range t.tags {
		t.tags[i] = -1
	}
	return t
}

// Reset returns the TLB to its post-New state without reallocating.
func (t *TLB) Reset() {
	for i := range t.tags {
		t.tags[i] = -1
		t.lru[i] = 0
	}
	t.clock = 0
	t.Stats = Stats{}
}

// Lookup probes (and on miss, installs) the page of addr. It reports whether
// the translation hit.
func (t *TLB) Lookup(addr int64) bool {
	t.Stats.Accesses++
	page := addr >> t.pageBits
	victim := 0
	for i := range t.tags {
		if t.tags[i] == page {
			t.clock++
			t.lru[i] = t.clock
			return true
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.Stats.Misses++
	t.clock++
	t.tags[victim] = page
	t.lru[victim] = t.clock
	return false
}
