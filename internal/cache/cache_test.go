package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 1024, Ways: 2, BlockBytes: 64, HitLatency: 1} }

func TestConfigSets(t *testing.T) {
	if s := small().Sets(); s != 8 {
		t.Errorf("sets = %d, want 8", s)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(small())
	if r := c.Lookup(0x100); r.Hit {
		t.Error("cold cache must miss")
	}
	c.Fill(0x100, 10, NoPrefetcher)
	r := c.Lookup(0x100)
	if !r.Hit || r.ReadyAt != 10 {
		t.Errorf("hit=%v readyAt=%d, want hit readyAt=10", r.Hit, r.ReadyAt)
	}
	// Same block, different byte.
	if r := c.Lookup(0x13f); !r.Hit {
		t.Error("same-block access must hit")
	}
	if r := c.Lookup(0x140); r.Hit {
		t.Error("next block must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small())                                 // 8 sets, 2 ways; set = (addr>>6) % 8
	a0, a1, a2 := int64(0), int64(8*64), int64(16*64) // all map to set 0
	c.Fill(a0, 0, NoPrefetcher)
	c.Fill(a1, 0, NoPrefetcher)
	c.Lookup(a0) // touch a0 so a1 is LRU
	c.Fill(a2, 0, NoPrefetcher)
	if !c.Probe(a0) {
		t.Error("recently-used line evicted")
	}
	if c.Probe(a1) {
		t.Error("LRU line not evicted")
	}
	if !c.Probe(a2) {
		t.Error("filled line absent")
	}
}

func TestPrefIDLifecycle(t *testing.T) {
	c := New(small())
	c.Fill(0x200, 5, 7)
	r := c.Lookup(0x200)
	if r.PrefID != 7 {
		t.Errorf("prefID = %d, want 7", r.PrefID)
	}
	c.ClearPrefID(0x200)
	if r := c.Lookup(0x200); r.PrefID != NoPrefetcher {
		t.Error("prefID must clear")
	}
}

func TestFillIdempotentOnPresentLine(t *testing.T) {
	c := New(small())
	c.Fill(0x300, 100, NoPrefetcher)
	c.Fill(0x300, 50, NoPrefetcher) // racing earlier fill: keep earliest ready
	r := c.Lookup(0x300)
	if r.ReadyAt != 50 {
		t.Errorf("readyAt = %d, want 50", r.ReadyAt)
	}
}

func TestStats(t *testing.T) {
	c := New(small())
	c.Lookup(0) // miss
	c.Fill(0, 0, NoPrefetcher)
	c.Lookup(0)    // hit
	c.Lookup(4096) // miss
	if c.Stats.Accesses != 3 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if r := c.Stats.MissRate(); r < 0.66 || r > 0.67 {
		t.Errorf("miss rate = %v", r)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate must be 0")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry must panic")
		}
	}()
	New(Config{SizeBytes: 100, Ways: 3, BlockBytes: 7})
}

func TestProbeDoesNotTouchStats(t *testing.T) {
	c := New(small())
	c.Probe(0x100)
	if c.Stats.Accesses != 0 {
		t.Error("Probe must not count as an access")
	}
}

// Property: after filling N distinct blocks that all map to one set of a
// W-way cache, exactly the W most recently filled survive.
func TestLRUProperty(t *testing.T) {
	check := func(n uint8) bool {
		c := New(small()) // 8 sets, 2 ways
		count := int(n%6) + 3
		for i := 0; i < count; i++ {
			c.Fill(int64(i)*8*64, 0, NoPrefetcher) // all set 0
		}
		// The last 2 fills must be present, earlier ones absent.
		for i := 0; i < count; i++ {
			want := i >= count-2
			if c.Probe(int64(i)*8*64) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Lookup(0) {
		t.Error("cold TLB must miss")
	}
	if !tlb.Lookup(100) {
		t.Error("same page must hit")
	}
	// Fill 4 more pages to evict page 0.
	for p := int64(1); p <= 4; p++ {
		tlb.Lookup(p * 4096)
	}
	if tlb.Lookup(0) {
		t.Error("evicted page must miss")
	}
	if tlb.Stats.Accesses != 7 {
		t.Errorf("accesses = %d, want 7", tlb.Stats.Accesses)
	}
}

func TestTLBLRUOrder(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Lookup(0 * 4096)
	tlb.Lookup(1 * 4096)
	tlb.Lookup(0 * 4096) // touch page 0; page 1 now LRU
	tlb.Lookup(2 * 4096) // evicts page 1
	if !tlb.Lookup(0 * 4096) {
		t.Error("MRU page evicted")
	}
	if tlb.Lookup(1 * 4096) {
		t.Error("LRU page not evicted")
	}
}

func TestMSHRAllocMergeExpire(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.Alloc(1, 100, 0) || !m.Alloc(2, 120, 0) {
		t.Fatal("allocs into empty file must succeed")
	}
	if m.Alloc(3, 130, 0) {
		t.Error("alloc into full file must fail")
	}
	if ready, ok := m.Lookup(1, 50); !ok || ready != 100 {
		t.Errorf("merge lookup = %d,%v", ready, ok)
	}
	// After entry 1 completes (t=100), capacity frees up.
	if !m.Alloc(3, 300, 101) {
		t.Error("alloc after expiry must succeed")
	}
	if m.InFlight(101) != 2 {
		t.Errorf("in flight = %d, want 2", m.InFlight(101))
	}
	if m.Allocs != 3 || m.Merges != 1 || m.FullRej != 1 {
		t.Errorf("stats: allocs=%d merges=%d rej=%d", m.Allocs, m.Merges, m.FullRej)
	}
}

func TestMSHRLookupMissing(t *testing.T) {
	m := NewMSHRFile(4)
	if _, ok := m.Lookup(9, 0); ok {
		t.Error("lookup of absent block must fail")
	}
}
