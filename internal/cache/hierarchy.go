package cache

// Level identifies the hierarchy level that served an access.
type Level uint8

// Hierarchy levels.
const (
	LvlL1 Level = iota
	LvlL2
	LvlMem
)

// String returns "L1", "L2" or "Mem".
func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	default:
		return "Mem"
	}
}

// HierConfig parameterizes the full on-chip memory hierarchy.
type HierConfig struct {
	L1I, L1D, L2 Config
	ITLBEntries  int
	DTLBEntries  int
	PageBytes    int
	TLBMissPen   int // page-walk penalty in cycles
	MemLatency   int // main-memory access latency in cycles
	BusBytes     int // memory bus width
	BusFreqDiv   int // bus clock divider relative to the core
	MSHRs        int // maximum outstanding misses

	// Conventional stride prefetcher (the address-prediction prefetching
	// the paper assumes handles non-problem loads). Zero entries disables.
	StrideEntries int
	StrideDegree  int
}

// DefaultHierConfig returns the paper's memory hierarchy.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:         Config{SizeBytes: 32 << 10, Ways: 2, BlockBytes: 64, HitLatency: 1},
		L1D:         Config{SizeBytes: 16 << 10, Ways: 2, BlockBytes: 64, HitLatency: 2},
		L2:          Config{SizeBytes: 256 << 10, Ways: 4, BlockBytes: 64, HitLatency: 12},
		ITLBEntries: 64,
		DTLBEntries: 64,
		PageBytes:   4 << 10,
		TLBMissPen:  30,
		MemLatency:  200,
		BusBytes:    16,
		BusFreqDiv:  4,
		MSHRs:       16,

		StrideEntries: 512,
		StrideDegree:  4,
	}
}

// AccessInfo describes the outcome of a data-load access.
type AccessInfo struct {
	DoneAt     int64 // cycle the value is available
	Level      Level // deepest level consulted
	L2Access   bool  // the L2 was accessed (for energy accounting)
	TLBMiss    bool
	PrefHit    int32 // p-thread ID whose prefetch served this access, else NoPrefetcher
	PrefInFlit bool  // served by merging with an in-flight prefetch (partial coverage)
}

// PrefetchInfo describes the outcome of a p-thread target-load prefetch.
type PrefetchInfo struct {
	DoneAt         int64
	AlreadyPresent bool // block already cached or in flight: useless prefetch
}

// AccessCounts groups per-structure access counters split between the main
// thread and p-threads, feeding the energy model and the paper's striped
// energy breakdowns.
type AccessCounts struct {
	L1IMain, L1IPth int64
	L1DMain, L1DPth int64
	L2Main, L2Pth   int64
}

// Hierarchy composes the caches, TLBs, MSHRs and memory bus into the memory
// system seen by the timing simulator. It is not safe for concurrent use;
// the simulator is single-threaded by design (determinism).
type Hierarchy struct {
	cfg  HierConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB
	MSHR *MSHRFile
	Pref *StridePrefetcher // nil when disabled

	busFreeAt int64

	// Counts feeds energy accounting.
	Counts AccessCounts
	// DemandL2Misses counts main-thread load misses that went to memory.
	DemandL2Misses int64
}

// NewHierarchy builds the hierarchy described by cfg.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	h := &Hierarchy{
		cfg:  cfg,
		L1I:  New(cfg.L1I),
		L1D:  New(cfg.L1D),
		L2:   New(cfg.L2),
		ITLB: NewTLB(cfg.ITLBEntries, cfg.PageBytes),
		DTLB: NewTLB(cfg.DTLBEntries, cfg.PageBytes),
		MSHR: NewMSHRFile(cfg.MSHRs),
	}
	if cfg.StrideEntries > 0 {
		h.Pref = NewStridePrefetcher(cfg.StrideEntries, cfg.StrideDegree)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// Reset returns the whole hierarchy to its post-NewHierarchy state —
// caches, TLBs, MSHRs, prefetcher, bus clock and counters — without
// reallocating any structure, so a simulator reusing it across runs stays
// allocation-free and bit-deterministic against a freshly built hierarchy.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.MSHR.Reset()
	if h.Pref != nil {
		h.Pref.Reset()
	}
	h.busFreeAt = 0
	h.Counts = AccessCounts{}
	h.DemandL2Misses = 0
}

// busOccupancy returns the core cycles one block transfer occupies the bus.
func (h *Hierarchy) busOccupancy() int64 {
	beats := (h.cfg.L2.BlockBytes + h.cfg.BusBytes - 1) / h.cfg.BusBytes
	return int64(beats * h.cfg.BusFreqDiv)
}

// memAccess schedules a main-memory access issued at start and returns its
// completion time, modelling bus queueing.
func (h *Hierarchy) memAccess(start int64) int64 {
	xferStart := start
	if h.busFreeAt > xferStart {
		xferStart = h.busFreeAt
	}
	h.busFreeAt = xferStart + h.busOccupancy()
	return xferStart + int64(h.cfg.MemLatency)
}

// FetchBlock performs an instruction fetch of the block containing addr at
// the given cycle. Instruction fetch is blocking (no MSHR involvement);
// pthread attributes the access for energy accounting.
func (h *Hierarchy) FetchBlock(addr, now int64, pthread bool) (doneAt int64) {
	if pthread {
		h.Counts.L1IPth++
	} else {
		h.Counts.L1IMain++
	}
	start := now
	if !h.ITLB.Lookup(addr) {
		start += int64(h.cfg.TLBMissPen)
	}
	r := h.L1I.Lookup(addr)
	if r.Hit {
		done := start + int64(h.cfg.L1I.HitLatency)
		if r.ReadyAt > done {
			done = r.ReadyAt
		}
		return done
	}
	// L1I miss: consult L2.
	if pthread {
		h.Counts.L2Pth++
	} else {
		h.Counts.L2Main++
	}
	l2start := start + int64(h.cfg.L1I.HitLatency)
	r2 := h.L2.Lookup(addr)
	var done int64
	if r2.Hit {
		done = l2start + int64(h.cfg.L2.HitLatency)
		if r2.ReadyAt > done {
			done = r2.ReadyAt
		}
	} else {
		done = h.memAccess(l2start + int64(h.cfg.L2.HitLatency))
		h.L2.Fill(addr, done, NoPrefetcher)
	}
	h.L1I.Fill(addr, done, NoPrefetcher)
	return done
}

// Load performs a data load at the given cycle. pthread marks p-thread
// embedded loads (they access the hierarchy normally but are accounted
// separately, and do not train the stride prefetcher); pc is the static PC
// used for prefetcher training (pass a negative value for p-thread loads).
// ok=false means the MSHR file was full and the access must be retried; no
// state was modified in that case beyond statistics.
func (h *Hierarchy) Load(addr, now int64, pthread bool, pc int64) (AccessInfo, bool) {
	if !pthread && pc >= 0 && h.Pref != nil {
		if paddr, ok := h.Pref.Train(pc, addr); ok {
			h.hwPrefetch(paddr, now)
		}
	}
	info := AccessInfo{Level: LvlL1, PrefHit: NoPrefetcher}
	start := now
	if !h.DTLB.Lookup(addr) {
		start += int64(h.cfg.TLBMissPen)
		info.TLBMiss = true
	}
	if pthread {
		h.Counts.L1DPth++
	} else {
		h.Counts.L1DMain++
	}
	r := h.L1D.Lookup(addr)
	if r.Hit {
		info.DoneAt = start + int64(h.cfg.L1D.HitLatency)
		if r.ReadyAt > info.DoneAt {
			info.DoneAt = r.ReadyAt
		}
		return info, true
	}
	// L1D miss: consult L2.
	info.Level = LvlL2
	info.L2Access = true
	if pthread {
		h.Counts.L2Pth++
	} else {
		h.Counts.L2Main++
	}
	l2start := start + int64(h.cfg.L1D.HitLatency)
	r2 := h.L2.Lookup(addr)
	if r2.Hit {
		done := l2start + int64(h.cfg.L2.HitLatency)
		inFlight := r2.ReadyAt > done
		if inFlight {
			done = r2.ReadyAt
		}
		if !pthread && r2.PrefID != NoPrefetcher {
			// A p-thread prefetch served this (otherwise-missing) load.
			info.PrefHit = r2.PrefID
			info.PrefInFlit = inFlight
			h.L2.ClearPrefID(addr)
		}
		if inFlight {
			info.Level = LvlMem // latency was memory-bound even though merged
		}
		info.DoneAt = done
		h.L1D.Fill(addr, done, NoPrefetcher)
		return info, true
	}
	// L2 miss: need an MSHR and a memory access.
	info.Level = LvlMem
	block := h.L2.Block(addr)
	if readyAt, merged := h.MSHR.Lookup(block, now); merged {
		info.DoneAt = readyAt
		h.L1D.Fill(addr, readyAt, NoPrefetcher)
		return info, true
	}
	// Reserve the MSHR before scheduling the bus: a rejected request must
	// not advance the bus clock (it will retry next cycle).
	if h.MSHR.InFlight(now) >= h.MSHR.Cap() {
		h.MSHR.FullRej++
		return info, false // retry next cycle
	}
	reqStart := l2start + int64(h.cfg.L2.HitLatency)
	done := h.memAccess(reqStart)
	h.MSHR.Alloc(block, done, now)
	if !pthread {
		h.DemandL2Misses++
	}
	h.L2.Fill(addr, done, NoPrefetcher)
	h.L1D.Fill(addr, done, NoPrefetcher)
	info.DoneAt = done
	return info, true
}

// hwPrefetch issues a conventional stride prefetch into the L2. It silently
// drops when the block is already present/in flight or no MSHR is free
// (prefetches never stall anything).
func (h *Hierarchy) hwPrefetch(addr, now int64) {
	if addr < 0 || h.L2.Probe(addr) {
		return
	}
	block := h.L2.Block(addr)
	if _, merged := h.MSHR.Lookup(block, now); merged {
		return
	}
	if h.MSHR.InFlight(now) >= h.MSHR.Cap() {
		return
	}
	h.Counts.L2Main++ // the prefetch engine occupies an L2 port
	done := h.memAccess(now + int64(h.cfg.L2.HitLatency))
	h.MSHR.Alloc(block, done, now)
	h.L2.Fill(addr, done, NoPrefetcher)
}

// PrefetchL2 performs a p-thread target-load prefetch into the L2 (DDMT
// prefetches bypass the L1). ok=false means the MSHR file was full.
func (h *Hierarchy) PrefetchL2(addr, now int64, pthID int32) (PrefetchInfo, bool) {
	h.Counts.L2Pth++
	var info PrefetchInfo
	r := h.L2.Lookup(addr)
	if r.Hit {
		info.AlreadyPresent = true
		info.DoneAt = now
		return info, true
	}
	block := h.L2.Block(addr)
	if readyAt, merged := h.MSHR.Lookup(block, now); merged {
		info.AlreadyPresent = true
		info.DoneAt = readyAt
		return info, true
	}
	if h.MSHR.InFlight(now) >= h.MSHR.Cap() {
		h.MSHR.FullRej++
		return info, false // retry next cycle without advancing the bus
	}
	done := h.memAccess(now + int64(h.cfg.L2.HitLatency))
	h.MSHR.Alloc(block, done, now)
	h.L2.Fill(addr, done, pthID)
	info.DoneAt = done
	return info, true
}

// StoreCommit performs the data-cache write of a committing store. Stores
// drain through a write buffer and never block commit; a store miss installs
// the line without timing back-pressure (write-allocate, no writeback
// traffic modelled).
func (h *Hierarchy) StoreCommit(addr, now int64) {
	h.Counts.L1DMain++
	if !h.DTLB.Lookup(addr) {
		now += int64(h.cfg.TLBMissPen)
	}
	r := h.L1D.Lookup(addr)
	if r.Hit {
		return
	}
	h.Counts.L2Main++
	r2 := h.L2.Lookup(addr)
	if r2.Hit {
		h.L1D.Fill(addr, now, NoPrefetcher)
		return
	}
	// Store misses drain through the write buffer without occupying the
	// demand-fetch bus or MSHRs (they are off the critical path and never
	// retried; modelling their bandwidth would let store streams starve
	// loads, which the write buffer exists to prevent).
	done := now + int64(h.cfg.L2.HitLatency) + int64(h.cfg.MemLatency)
	h.L2.Fill(addr, done, NoPrefetcher)
	h.L1D.Fill(addr, done, NoPrefetcher)
}

// BusFreeAt exposes the bus schedule clock for diagnostics.
func (h *Hierarchy) BusFreeAt() int64 { return h.busFreeAt }
