package cache

import "testing"

func testHier() *Hierarchy {
	cfg := DefaultHierConfig()
	return NewHierarchy(cfg)
}

func TestLoadHitLatencies(t *testing.T) {
	h := testHier()
	// Cold load: DTLB miss (30) + L1 (2) + L2 (12) + mem (200).
	info, ok := h.Load(0x1000, 0, false, -1)
	if !ok {
		t.Fatal("MSHR full on first access")
	}
	if info.Level != LvlMem || !info.L2Access || !info.TLBMiss {
		t.Errorf("cold load info = %+v", info)
	}
	want := int64(30 + 2 + 12 + 200)
	if info.DoneAt != want {
		t.Errorf("cold load done at %d, want %d", info.DoneAt, want)
	}
	// Warm load after fill completes: L1 hit.
	info2, _ := h.Load(0x1000, want+1, false, -1)
	if info2.Level != LvlL1 || info2.DoneAt != want+1+2 {
		t.Errorf("warm load = %+v", info2)
	}
}

func TestLoadMergesWithInFlightMiss(t *testing.T) {
	h := testHier()
	info1, _ := h.Load(0x2000, 0, false, -1)
	// Second access to same block while in flight: waits for the fill, does
	// not start another memory access.
	info2, _ := h.Load(0x2008, 5, false, -1)
	if info2.DoneAt != info1.DoneAt {
		t.Errorf("merged access done at %d, want %d", info2.DoneAt, info1.DoneAt)
	}
	if h.DemandL2Misses != 1 {
		t.Errorf("demand misses = %d, want 1", h.DemandL2Misses)
	}
}

func TestMSHRLimitBlocksLoad(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MSHRs = 1
	h := NewHierarchy(cfg)
	h.Load(0x10000, 0, false, -1)
	_, ok := h.Load(0x20000, 0, false, -1)
	if ok {
		t.Error("second concurrent miss must be rejected with a 1-entry MSHR file")
	}
}

func TestPrefetchServesLaterLoad(t *testing.T) {
	h := testHier()
	pi, ok := h.PrefetchL2(0x3000, 0, 7)
	if !ok || pi.AlreadyPresent {
		t.Fatalf("prefetch = %+v, %v", pi, ok)
	}
	// Load after the prefetch completes: L2 hit on a prefetched line.
	info, _ := h.Load(0x3000, pi.DoneAt+10, false, -1)
	if info.Level != LvlL2 {
		t.Errorf("level = %v, want L2", info.Level)
	}
	if info.PrefHit != 7 || info.PrefInFlit {
		t.Errorf("prefetch credit = %d partial=%v, want 7,false", info.PrefHit, info.PrefInFlit)
	}
	// Credit is granted only once.
	// (New address in same block to avoid L1 hit.)
	info2, _ := h.Load(0x3008, info.DoneAt+1, false, -1)
	_ = info2
	if info2.PrefHit != NoPrefetcher && info2.Level == LvlL2 {
		t.Error("prefetch credit granted twice")
	}
}

func TestPrefetchPartialCoverage(t *testing.T) {
	h := testHier()
	pi, _ := h.PrefetchL2(0x4000, 0, 3)
	// Load arrives while the prefetch is still in flight.
	info, _ := h.Load(0x4000, 50, false, -1)
	if !info.PrefInFlit || info.PrefHit != 3 {
		t.Errorf("partial coverage not detected: %+v", info)
	}
	if info.DoneAt != pi.DoneAt {
		t.Errorf("merged load done at %d, want %d", info.DoneAt, pi.DoneAt)
	}
	if info.Level != LvlMem {
		t.Errorf("partial coverage level = %v, want Mem", info.Level)
	}
}

func TestPrefetchAlreadyPresent(t *testing.T) {
	h := testHier()
	h.Load(0x5000, 0, false, -1)
	pi, ok := h.PrefetchL2(0x5000, 300, 1)
	if !ok || !pi.AlreadyPresent {
		t.Errorf("prefetch of cached block = %+v", pi)
	}
}

func TestPrefetchDoesNotFillL1(t *testing.T) {
	h := testHier()
	pi, _ := h.PrefetchL2(0x6000, 0, 2)
	if h.L1D.Probe(0x6000) {
		t.Error("prefetch must bypass the L1")
	}
	if !h.L2.Probe(0x6000) {
		t.Error("prefetch must fill the L2")
	}
	_ = pi
}

func TestFetchBlockPath(t *testing.T) {
	h := testHier()
	done := h.FetchBlock(0x7000, 0, false)
	// ITLB miss (30) + L1I (1) + L2 (12) + mem (200).
	if done != 30+1+12+200 {
		t.Errorf("cold fetch done at %d", done)
	}
	done2 := h.FetchBlock(0x7000, done+1, false)
	if done2 != done+1+1 {
		t.Errorf("warm fetch done at %d, want %d", done2, done+1+1)
	}
	if h.Counts.L1IMain != 2 {
		t.Errorf("L1I accesses = %d", h.Counts.L1IMain)
	}
}

func TestBusContentionSerializesTransfers(t *testing.T) {
	h := testHier()
	a, _ := h.Load(0x10000, 0, false, -1)
	b, _ := h.Load(0x20000, 0, false, -1)
	if b.DoneAt <= a.DoneAt {
		t.Error("concurrent misses must serialize on the memory bus")
	}
	occ := h.busOccupancy()
	if b.DoneAt-a.DoneAt != occ {
		t.Errorf("bus spacing = %d, want %d", b.DoneAt-a.DoneAt, occ)
	}
}

func TestStoreCommitCounts(t *testing.T) {
	h := testHier()
	h.StoreCommit(0x8000, 0)
	if h.Counts.L1DMain != 1 || h.Counts.L2Main != 1 {
		t.Errorf("store counts = %+v", h.Counts)
	}
	if !h.L1D.Probe(0x8000) {
		t.Error("store must write-allocate")
	}
	// Second store to the same line: L1 hit, no L2 access.
	h.StoreCommit(0x8008, 100)
	if h.Counts.L2Main != 1 {
		t.Error("store hit must not access L2")
	}
}

func TestPthreadAccountingSeparated(t *testing.T) {
	h := testHier()
	h.Load(0x9000, 0, true, -1)
	if h.Counts.L1DPth != 1 || h.Counts.L1DMain != 0 {
		t.Errorf("pthread load not separated: %+v", h.Counts)
	}
	if h.DemandL2Misses != 0 {
		t.Error("pthread misses must not count as demand misses")
	}
	h.FetchBlock(0xa000, 0, true)
	if h.Counts.L1IPth != 1 {
		t.Errorf("pthread fetch not separated: %+v", h.Counts)
	}
}

func TestLevelString(t *testing.T) {
	if LvlL1.String() != "L1" || LvlL2.String() != "L2" || LvlMem.String() != "Mem" {
		t.Error("level names wrong")
	}
}
