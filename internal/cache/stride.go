package cache

// StridePrefetcher is a conventional per-PC stride prefetcher (reference
// prediction table). The paper's premise is that address-prediction driven
// prefetching already eliminates the predictable misses and that p-threads
// exist for the "problem" loads that defy it — so the baseline hierarchy
// must include one, or trivially-streaming loads would masquerade as
// problem loads and inflate pre-execution's value.
//
// On every demand load the table is trained with the load's PC and address;
// after two consistent strides it becomes confident and prefetches
// degree blocks ahead into the L2.
type StridePrefetcher struct {
	entries int
	degree  int
	pc      []int64 // tag, -1 invalid
	last    []int64
	stride  []int64
	conf    []int8

	Trained int64
	Issued  int64
}

// NewStridePrefetcher returns a table with the given number of entries and
// prefetch degree.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	p := &StridePrefetcher{
		entries: entries,
		degree:  degree,
		pc:      make([]int64, entries),
		last:    make([]int64, entries),
		stride:  make([]int64, entries),
		conf:    make([]int8, entries),
	}
	for i := range p.pc {
		p.pc[i] = -1
	}
	return p
}

// Reset returns the table to its post-New state without reallocating.
func (p *StridePrefetcher) Reset() {
	for i := range p.pc {
		p.pc[i] = -1
		p.last[i] = 0
		p.stride[i] = 0
		p.conf[i] = 0
	}
	p.Trained, p.Issued = 0, 0
}

// Train updates the table for a demand load at pc touching addr and returns
// the address to prefetch (confident, non-zero stride) or ok=false.
func (p *StridePrefetcher) Train(pc, addr int64) (prefAddr int64, ok bool) {
	i := int(uint64(pc) % uint64(p.entries))
	if p.pc[i] != pc {
		p.pc[i] = pc
		p.last[i] = addr
		p.stride[i] = 0
		p.conf[i] = 0
		return 0, false
	}
	s := addr - p.last[i]
	p.last[i] = addr
	if s == p.stride[i] && s != 0 {
		if p.conf[i] < 3 {
			p.conf[i]++
		}
	} else {
		p.stride[i] = s
		p.conf[i] = 0
	}
	p.Trained++
	if p.conf[i] >= 2 && p.stride[i] != 0 {
		p.Issued++
		return addr + p.stride[i]*int64(p.degree), true
	}
	return 0, false
}
