package cache

// MSHRFile bounds the number of outstanding misses to main memory, matching
// the paper's 16-outstanding-miss limit, and implements request merging at
// block granularity.
type MSHRFile struct {
	cap     int
	blocks  []int64
	readyAt []int64

	// Stats.
	Allocs  int64
	Merges  int64
	FullRej int64
}

// NewMSHRFile returns an MSHR file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{cap: capacity}
}

// Cap returns the file's capacity.
func (m *MSHRFile) Cap() int { return m.cap }

// Reset drops every outstanding miss and clears the statistics, keeping the
// entry storage for allocation-free reuse.
func (m *MSHRFile) Reset() {
	m.blocks = m.blocks[:0]
	m.readyAt = m.readyAt[:0]
	m.Allocs, m.Merges, m.FullRej = 0, 0, 0
}

// InFlight returns the number of outstanding misses at the given time,
// expiring completed entries as a side effect.
func (m *MSHRFile) InFlight(now int64) int {
	m.expire(now)
	return len(m.blocks)
}

// Lookup returns the completion time of an in-flight miss on block, if any.
func (m *MSHRFile) Lookup(block, now int64) (readyAt int64, ok bool) {
	m.expire(now)
	for i, b := range m.blocks {
		if b == block {
			m.Merges++
			return m.readyAt[i], true
		}
	}
	return 0, false
}

// Alloc reserves an entry for block completing at readyAt. It fails when the
// file is full, in which case the requester must retry later.
func (m *MSHRFile) Alloc(block, readyAt, now int64) bool {
	m.expire(now)
	if len(m.blocks) >= m.cap {
		m.FullRej++
		return false
	}
	m.Allocs++
	m.blocks = append(m.blocks, block)
	m.readyAt = append(m.readyAt, readyAt)
	return true
}

func (m *MSHRFile) expire(now int64) {
	w := 0
	for i := range m.blocks {
		if m.readyAt[i] > now {
			m.blocks[w] = m.blocks[i]
			m.readyAt[w] = m.readyAt[i]
			w++
		}
	}
	m.blocks = m.blocks[:w]
	m.readyAt = m.readyAt[:w]
}
