// Package cache implements the on-chip memory hierarchy substrate: set-
// associative caches with LRU replacement, fully-associative TLBs, a miss
// status holding register (MSHR) file bounding outstanding misses, and a
// memory bus model. The default configuration matches the paper: 32KB/2-way/
// 1-cycle L1I, 16KB/2-way/2-cycle L1D, 256KB/4-way/12-cycle unified L2,
// 64-entry TLBs, 16 outstanding misses, a 16-byte memory bus clocked at 1/4
// core frequency, and 200-cycle main memory.
package cache

// NoPrefetcher marks a line that was demand-fetched rather than installed by
// a p-thread prefetch.
const NoPrefetcher int32 = -1

// Config parameterizes one cache level.
type Config struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
	HitLatency int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Stats counts cache events.
type Stats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement.
//
// Timing is handled by the caller: lines carry a ReadyAt timestamp so a fill
// can be installed at miss time while still charging later accesses that
// arrive before the fill completes (this also implements MSHR merging
// behaviour at the line granularity).
type Cache struct {
	cfg       Config
	sets      int
	blockBits uint
	tag       []int64 // sets*ways; -1 invalid
	lru       []int32
	readyAt   []int64
	prefID    []int32 // p-thread static ID that installed the line, or NoPrefetcher
	lruClock  int32

	Stats Stats
}

// New returns an empty cache. It panics on a degenerate geometry, which
// indicates a configuration bug.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 || cfg.Sets() <= 0 {
		//lab:allow(panicpath: constructor precondition; a degenerate geometry is a configuration bug caught at sweep setup, never at run time)
		panic("cache: invalid geometry")
	}
	n := cfg.Sets() * cfg.Ways
	c := &Cache{
		cfg:  cfg,
		sets: cfg.Sets(),
		tag:  make([]int64, n),
		lru:  make([]int32, n),

		readyAt: make([]int64, n),
		prefID:  make([]int32, n),
	}
	c.blockBits = uint(log2(cfg.BlockBytes))
	for i := range c.tag {
		c.tag[i] = -1
		c.prefID[i] = NoPrefetcher
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset returns the cache to its post-New state (all lines invalid, LRU and
// statistics cleared) without reallocating its storage, so a simulator can
// be reused across runs allocation-free.
func (c *Cache) Reset() {
	for i := range c.tag {
		c.tag[i] = -1
		c.lru[i] = 0
		c.readyAt[i] = 0
		c.prefID[i] = NoPrefetcher
	}
	c.lruClock = 0
	c.Stats = Stats{}
}

// Block returns the block address (line-aligned) of a byte address.
func (c *Cache) Block(addr int64) int64 { return addr >> c.blockBits }

// LookupResult describes the outcome of a cache probe.
type LookupResult struct {
	Hit     bool
	ReadyAt int64 // when the line's data is (or was) available; valid on hit
	PrefID  int32 // installing p-thread, or NoPrefetcher; valid on hit
}

// Lookup probes for addr at the given time, updating LRU and statistics on
// hit. A hit on a line whose fill is still in flight reports the line's
// ReadyAt in the future; the caller must wait for it (MSHR-merge semantics).
func (c *Cache) Lookup(addr int64) LookupResult {
	c.Stats.Accesses++
	set, base := c.set(addr)
	blk := c.Block(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tag[base+w] == blk {
			c.lruClock++
			c.lru[base+w] = c.lruClock
			return LookupResult{Hit: true, ReadyAt: c.readyAt[base+w], PrefID: c.prefID[base+w]}
		}
	}
	c.Stats.Misses++
	_ = set
	return LookupResult{}
}

// Probe checks for presence without updating LRU or statistics.
func (c *Cache) Probe(addr int64) bool {
	_, base := c.set(addr)
	blk := c.Block(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tag[base+w] == blk {
			return true
		}
	}
	return false
}

// Fill installs the block containing addr, evicting the LRU way. ReadyAt
// records when the fill data arrives; prefID records the installing
// p-thread (NoPrefetcher for demand fills).
func (c *Cache) Fill(addr, readyAt int64, prefID int32) {
	_, base := c.set(addr)
	blk := c.Block(addr)
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tag[base+w] == blk {
			// Already present (racing fills); refresh metadata only.
			if readyAt < c.readyAt[base+w] {
				c.readyAt[base+w] = readyAt
			}
			return
		}
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	c.lruClock++
	c.tag[base+victim] = blk
	c.lru[base+victim] = c.lruClock
	c.readyAt[base+victim] = readyAt
	c.prefID[base+victim] = prefID
}

// ClearPrefID clears the prefetch marking of addr's line if present, so a
// prefetched line is counted as useful at most once.
func (c *Cache) ClearPrefID(addr int64) {
	_, base := c.set(addr)
	blk := c.Block(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tag[base+w] == blk {
			c.prefID[base+w] = NoPrefetcher
			return
		}
	}
}

func (c *Cache) set(addr int64) (set, base int) {
	set = int(uint64(addr>>c.blockBits) % uint64(c.sets))
	return set, set * c.cfg.Ways
}

func log2(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	if 1<<uint(b) != n {
		//lab:allow(panicpath: reachable only via New, whose geometry check already enforces power-of-two sets)
		panic("cache: size not a power of two")
	}
	return b
}
