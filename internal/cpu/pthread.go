package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// PThread is a static pre-execution thread in the DDMT model: a control-less,
// unchained instruction sequence (the body) spawned whenever the main thread
// dispatches the trigger instruction. Bodies contain only ALU operations and
// loads; the loads listed in Targets are problem-load copies that prefetch
// into the L2 instead of delivering a value to the context.
type PThread struct {
	ID        int32      // dense identifier assigned by the selector
	TriggerPC int32      // static PC whose dispatch spawns the body
	Body      []isa.Inst // executed in order; fixed sequence (control-less)
	Targets   []int      // body indices of prefetch target loads
	TargetPC  int32      // static PC of the primary problem load (diagnostics)
}

// Validate checks the DDMT structural restrictions.
func (p *PThread) Validate() error {
	if len(p.Body) == 0 {
		return fmt.Errorf("p-thread %d: empty body", p.ID)
	}
	for i, in := range p.Body {
		if in.IsStore() || in.IsControl() {
			return fmt.Errorf("p-thread %d: body[%d] = %s violates control-less-ness", p.ID, i, in)
		}
		if !in.IsALU() && !in.IsLoad() && in.Op != isa.Nop {
			return fmt.Errorf("p-thread %d: body[%d] = %s not executable in lightweight mode", p.ID, i, in)
		}
		if err := in.ValidateRegs(); err != nil {
			return fmt.Errorf("p-thread %d: body[%d]: %w", p.ID, i, err)
		}
	}
	if len(p.Targets) == 0 {
		return fmt.Errorf("p-thread %d: no target loads", p.ID)
	}
	// The target list is tiny; a quadratic duplicate check keeps Validate
	// allocation-free so per-run revalidation costs nothing in steady state.
	for i, t := range p.Targets {
		if t < 0 || t >= len(p.Body) {
			return fmt.Errorf("p-thread %d: target index %d out of body range", p.ID, t)
		}
		if !p.Body[t].IsLoad() {
			return fmt.Errorf("p-thread %d: target body[%d] = %s is not a load", p.ID, t, p.Body[t])
		}
		for _, u := range p.Targets[:i] {
			if u == t {
				return fmt.Errorf("p-thread %d: duplicate target %d", p.ID, t)
			}
		}
	}
	return nil
}

// MaxBodyLen returns the longest body among the given p-threads (0 for
// none); the simulator sizes every context's preallocated pools to it.
func MaxBodyLen(pthreads []*PThread) int {
	max := 0
	for _, pt := range pthreads {
		if len(pt.Body) > max {
			max = len(pt.Body)
		}
	}
	return max
}

// LiveIns returns the architectural registers the body reads before writing,
// i.e. the values copied from the main thread at spawn.
func (p *PThread) LiveIns() []isa.Reg {
	written := make(map[isa.Reg]bool)
	seen := make(map[isa.Reg]bool)
	var live []isa.Reg
	for _, in := range p.Body {
		s1, s2, r1, r2 := in.Sources()
		if r1 && s1 != isa.Zero && !written[s1] && !seen[s1] {
			seen[s1] = true
			live = append(live, s1)
		}
		if r2 && s2 != isa.Zero && !written[s2] && !seen[s2] {
			seen[s2] = true
			live = append(live, s2)
		}
		if in.HasDst() {
			written[in.Dst] = true
		}
	}
	return live
}

// Size returns the body length (SIZE(p) in the selection equations).
func (p *PThread) Size() int { return len(p.Body) }

// Loads returns the number of loads in the body (LOAD(p)).
func (p *PThread) Loads() int {
	n := 0
	for _, in := range p.Body {
		if in.IsLoad() {
			n++
		}
	}
	return n
}

// ALUs returns the number of ALU operations in the body (ALU(p)).
func (p *PThread) ALUs() int {
	n := 0
	for _, in := range p.Body {
		if in.IsALU() {
			n++
		}
	}
	return n
}
