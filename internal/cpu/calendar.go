package cpu

import "math"

// Calendar-queue payload marking a p-thread body completion. Main-thread
// completions carry the dynamic instruction index (>= 0) so the wakeup walk
// can find the waiting consumers; p-thread completions only need to exist as
// points in time (the in-order per-context scan picks up the work).
const pctxMarker int32 = -1

const (
	calBits  = 10
	calSlots = 1 << calBits // wheel horizon in cycles
	calMask  = calSlots - 1
)

type calEvent struct {
	at int64
	d  int32
}

// calendar is a calendar/bucket queue of future completion events. Events
// within the wheel horizon land in the bucket at&calMask; the simulator
// visits every cycle that holds an event (cycle skipping never jumps past
// the earliest pending event), so each bucket holds at most one distinct
// time when popped. Events beyond the horizon wait in a small time-sorted
// overflow list and migrate into the wheel as the clock approaches.
type calendar struct {
	wheel   [calSlots][]calEvent
	far     []calEvent // sorted by at, ascending
	pending int
}

// reset empties the queue, keeping every bucket's storage for reuse.
func (c *calendar) reset() {
	for i := range c.wheel {
		c.wheel[i] = c.wheel[i][:0]
	}
	c.far = c.far[:0]
	c.pending = 0
}

// push schedules an event; at must be in the future.
func (c *calendar) push(at int64, now int64, d int32) {
	c.pending++
	if at-now < calSlots {
		s := at & calMask
		c.wheel[s] = append(c.wheel[s], calEvent{at: at, d: d})
		return
	}
	i := len(c.far)
	c.far = append(c.far, calEvent{})
	for i > 0 && c.far[i-1].at > at {
		c.far[i] = c.far[i-1]
		i--
	}
	c.far[i] = calEvent{at: at, d: d}
}

// pop collects every event due at now into dst and returns it. Events due
// later stay queued.
func (c *calendar) pop(now int64, dst []int32) []int32 {
	for len(c.far) > 0 && c.far[0].at-now < calSlots {
		ev := c.far[0]
		c.far = c.far[:copy(c.far, c.far[1:])]
		s := ev.at & calMask
		c.wheel[s] = append(c.wheel[s], ev)
	}
	s := now & calMask
	bucket := c.wheel[s]
	if len(bucket) == 0 {
		return dst
	}
	keep := bucket[:0]
	for _, ev := range bucket {
		if ev.at <= now {
			dst = append(dst, ev.d)
			c.pending--
		} else {
			keep = append(keep, ev)
		}
	}
	c.wheel[s] = keep
	return dst
}

// nextAt returns the earliest pending event time strictly after now, or
// math.MaxInt64 when the calendar is empty.
func (c *calendar) nextAt(now int64) int64 {
	if c.pending == 0 {
		return math.MaxInt64
	}
	best := int64(math.MaxInt64)
	if len(c.far) > 0 {
		best = c.far[0].at
	}
	for off := int64(1); off < calSlots; off++ {
		t := now + off
		if t >= best {
			break
		}
		for _, ev := range c.wheel[t&calMask] {
			if ev.at == t {
				return t
			}
		}
	}
	return best
}
