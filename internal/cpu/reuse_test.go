package cpu

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"repro/internal/trace"
)

// TestResetReuseMatchesFreshSimulator pins the zero-allocation reuse
// contract: one simulator Reset across a matrix of (config, workload,
// engine) triples — including shrinking/growing traces, engine switches and
// config changes that resize every pool — must produce Results deeply equal
// to freshly constructed simulators, in every order.
func TestResetReuseMatchesFreshSimulator(t *testing.T) {
	workloads := engineWorkloads(t)
	configs := engineConfigs()
	// Deterministic iteration order for reproducible failures (map range
	// order is randomized, so sort the keys).
	cfgNames := make([]string, 0, len(configs))
	for name := range configs {
		cfgNames = append(cfgNames, name)
	}
	sort.Strings(cfgNames)
	wlNames := make([]string, 0, len(workloads))
	for name := range workloads {
		wlNames = append(wlNames, name)
	}
	sort.Strings(wlNames)
	type job struct {
		cfgName, wlName string
		engine          Engine
	}
	var jobs []job
	for _, cfgName := range cfgNames {
		for _, wlName := range wlNames {
			for _, engine := range []Engine{EngineEvent, EngineScan} {
				jobs = append(jobs, job{cfgName, wlName, engine})
			}
		}
	}

	reused := &Simulator{}
	for _, j := range jobs {
		cfg := configs[j.cfgName]
		cfg.Engine = j.engine
		wl := workloads[j.wlName]

		fresh, err := Run(cfg, wl.tr, wl.pts)
		if err != nil {
			t.Fatalf("%s/%s/%q fresh: %v", j.cfgName, j.wlName, j.engine, err)
		}
		if err := reused.Reset(cfg, wl.tr, wl.pts); err != nil {
			t.Fatalf("%s/%s/%q reset: %v", j.cfgName, j.wlName, j.engine, err)
		}
		got, err := reused.Run()
		if err != nil {
			t.Fatalf("%s/%s/%q reused: %v", j.cfgName, j.wlName, j.engine, err)
		}
		if !reflect.DeepEqual(got, fresh) {
			t.Errorf("%s/%s/%q: reused simulator diverged from fresh construction",
				j.cfgName, j.wlName, j.engine)
		}
	}
}

// TestResetSteadyStateAllocationFree pins the tentpole's 0 allocs/op claim
// at unit level: after one warm-up run, Reset + Run on the same workload
// must not allocate.
func TestResetSteadyStateAllocationFree(t *testing.T) {
	p, inducPC, loadPC := strideWalk(200, 8)
	tr := trace.MustRun(p)
	pts := []*PThread{stridePThread(inducPC, loadPC, 12)}
	cfg := noPrefConfig()
	s, err := NewSimulator(cfg, tr, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err) // warm-up grows every pool
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := s.Reset(cfg, tr, pts); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset+Run allocated %.1f times per run, want 0", allocs)
	}
}

// TestResultCloneOutlivesReset verifies the borrow contract: a Result
// cloned before the owning simulator's next Reset is unaffected by it.
func TestResultCloneOutlivesReset(t *testing.T) {
	p, inducPC, loadPC := strideWalk(120, 6)
	tr := trace.MustRun(p)
	pts := []*PThread{stridePThread(inducPC, loadPC, 8)}
	cfg := noPrefConfig()
	s, err := NewSimulator(cfg, tr, pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	clone := res.Clone()
	before, err := json.Marshal(clone)
	if err != nil {
		t.Fatal(err)
	}
	// Reset and re-run a different workload to scribble over the borrowed
	// Result's memory.
	other := trace.MustRun(aluChain(300))
	if err := s.Reset(cfg, other, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(clone)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("cloned Result changed after the owning simulator was reused")
	}
}
