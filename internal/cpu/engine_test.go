package cpu

import (
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// engineConfigs returns configurations chosen to stress the paths where the
// event-driven scheduler could diverge from the reference scan: tiny windows
// (budget truncation of the RS-free walk), few MSHRs (rejected loads that
// must replay cycle-by-cycle), starved ports, and minimal contexts.
func engineConfigs() map[string]Config {
	tiny := noPrefConfig()
	tiny.ROBSize = 16
	tiny.RSSize = 8
	tiny.PhysRegs = 24
	tiny.IssueWidth = 2
	tiny.DispatchWidth = 2
	tiny.CommitWidth = 2
	tiny.FetchWidth = 2
	tiny.FetchQCap = 6

	mshr := noPrefConfig()
	mshr.Hier.MSHRs = 1
	mshr.LoadPorts = 1

	ctxs := noPrefConfig()
	ctxs.Contexts = 2

	return map[string]Config{
		"default":       DefaultConfig(),
		"nopref":        noPrefConfig(),
		"tiny-window":   tiny,
		"mshr-pressure": mshr,
		"two-contexts":  ctxs,
	}
}

// engineWorkloads returns trace/p-thread pairs covering serial chains,
// wide ILP, memory-bound striding with useful, useless and aborting
// p-threads, and mispredict-heavy control flow.
func engineWorkloads(t *testing.T) map[string]struct {
	tr  *trace.Trace
	pts []*PThread
} {
	t.Helper()
	stride, inducPC, loadPC := strideWalk(300, 12)
	wild, wInduc, wLoad := strideWalk(60, 4)
	out := map[string]struct {
		tr  *trace.Trace
		pts []*PThread
	}{
		"chain":        {tr: trace.MustRun(aluChain(400))},
		"parallel":     {tr: trace.MustRun(aluParallel(400))},
		"stride-base":  {tr: trace.MustRun(stride)},
		"stride-pth":   {tr: trace.MustRun(stride), pts: []*PThread{stridePThread(inducPC, loadPC, 16)}},
		"stride-abort": {tr: trace.MustRun(wild), pts: []*PThread{stridePThread(wInduc, wLoad, 100000)}},
	}
	// Mispredict-heavy: data-dependent branches.
	b := isa.NewBuilder("chaos")
	b.MovI(1, 0)
	b.MovI(2, 1500)
	b.Label("top")
	b.AddI(1, 1, 1)
	b.MulI(3, 1, 2654435761)
	b.ShrI(3, 3, 13)
	b.AndI(4, 3, 1)
	b.BrZ(4, "skip")
	b.AddI(5, 5, 1)
	b.Label("skip")
	b.CmpLT(4, 1, 2)
	b.BrNZ(4, "top")
	b.Halt()
	out["chaos"] = struct {
		tr  *trace.Trace
		pts []*PThread
	}{tr: trace.MustRun(b.MustBuild())}
	return out
}

// TestEnginesAgreeStress cross-checks the two engines over the stress
// matrix: every (config, workload) pair must produce deeply equal Results.
func TestEnginesAgreeStress(t *testing.T) {
	workloads := engineWorkloads(t)
	for cfgName, cfg := range engineConfigs() {
		for wlName, wl := range workloads {
			evCfg := cfg
			evCfg.Engine = EngineEvent
			scCfg := cfg
			scCfg.Engine = EngineScan
			ev, err1 := Run(evCfg, wl.tr, wl.pts)
			sc, err2 := Run(scCfg, wl.tr, wl.pts)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s/%s: event err=%v scan err=%v", cfgName, wlName, err1, err2)
			}
			if !reflect.DeepEqual(ev, sc) {
				t.Errorf("%s/%s: engines disagree\nevent: %+v\nscan:  %+v", cfgName, wlName, ev, sc)
			}
		}
	}
}

// TestUnknownEngineRejected pins the Engine knob's validation.
func TestUnknownEngineRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = "bogus"
	if _, err := Run(cfg, trace.MustRun(aluChain(4)), nil); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
