package cpu

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// The spawn oracle is the batch-side owner of the main thread's
// dispatch-time architectural state. In a serial run every Simulator
// maintains its own speculative register file, last-writer table and
// program-order memory image at dispatch, solely to feed p-thread spawns
// (pctx.init); all three evolve in dispatch order, which is program order,
// so they are a pure function of the trace prefix — identical across every
// instance in a batch regardless of per-config timing. The oracle replays
// that state once per sub-window for the whole batch and precomputes one
// read-only spawn record per trigger site per distinct p-thread set;
// batched instances alias the records (pctx.initShared) and skip their own
// architectural bookkeeping entirely.
//
// All storage is grow-only; steady-state reuse performs no allocation.

// spawnRec is one precomputed spawn attempt: the functional pre-execution
// of a p-thread body at a trigger's dispatch point. Read-only once
// appended; every member instance of the owning group consumes the same
// record (a dropped spawn still consumes it, since the drop decision is
// per-instance context pressure).
type spawnRec struct {
	d       int64 // trigger dynamic index (for debugging; order carries it)
	ti      int32 // installed p-thread index within the group's set
	abortAt int
	vals    []int64
	addrs   []int64
	dep1    []depRef
	dep2    []depRef
}

// oracleGroup holds the shared spawn records for one distinct p-thread
// set. The representative member's trigger tables define which entries
// spawn and in what per-PC chain order — identical for every member, since
// installPThreads is deterministic in the shared set's install order.
type oracleGroup struct {
	rep     *Simulator
	members []*Simulator

	// Static per-installed-p-thread prefetch-target masks, shared by every
	// spawn of that p-thread (the mask depends only on the body).
	masks     [][]bool
	maskArena []bool

	// Spawn records in program order, plus the arenas their slices carve.
	// Arena regrowth abandons the old backing array to records still
	// unconsumed — they stay valid (read-only) until reclaim drops them.
	recs     []spawnRec
	valArena []int64
	depArena []depRef
}

// install points the group at a new representative and rebuilds the static
// masks. Record storage keeps its capacity.
func (g *oracleGroup) install(rep *Simulator) {
	g.rep = rep
	g.members = g.members[:0]
	g.recs = g.recs[:0]
	g.valArena = g.valArena[:0]
	g.depArena = g.depArena[:0]
	total := 0
	for _, pt := range rep.pthreads {
		total += len(pt.Body)
	}
	g.maskArena = grow(g.maskArena, total)
	for i := range g.maskArena {
		g.maskArena[i] = false
	}
	g.masks = g.masks[:0]
	off := 0
	for _, pt := range rep.pthreads {
		n := len(pt.Body)
		m := g.maskArena[off : off+n : off+n]
		for _, t := range pt.Targets {
			m[t] = true
		}
		g.masks = append(g.masks, m)
		off += n
	}
}

// addRec precomputes the spawn record for p-thread ti triggering at
// dynamic index d, against the oracle's current (pre-d) architectural
// state.
func (g *oracleGroup) addRec(o *spawnOracle, d int64, ti int32) {
	pt := g.rep.pthreads[ti]
	n := len(pt.Body)
	vb := len(g.valArena)
	g.valArena = growKeep(g.valArena, vb+2*n)
	db := len(g.depArena)
	g.depArena = growKeep(g.depArena, db+2*n)
	vals := g.valArena[vb : vb+n : vb+n]
	addrs := g.valArena[vb+n : vb+2*n : vb+2*n]
	dep1 := g.depArena[db : db+n : db+n]
	dep2 := g.depArena[db+n : db+2*n : db+2*n]
	abortAt := execBody(pt.Body, &o.specRegs, o.lastWriter[:], o.mem,
		vals, addrs, dep1, dep2)
	g.recs = append(g.recs, spawnRec{
		d: d, ti: ti, abortAt: abortAt,
		vals: vals, addrs: addrs, dep1: dep1, dep2: dep2,
	})
}

// dropMember removes a failed instance so its stalled cursor never blocks
// reclaim.
func (g *oracleGroup) dropMember(s *Simulator) {
	for i, m := range g.members {
		if m == s {
			g.members[i] = g.members[len(g.members)-1]
			g.members = g.members[:len(g.members)-1]
			return
		}
	}
}

// spawnOracle replays the batch's shared architectural state over the
// trace, one linear pass regardless of batch width or how many distinct
// p-thread sets ride it.
type spawnOracle struct {
	prog *isa.Program
	vw   *trace.DecodedView

	specRegs   [isa.NumRegs]int64
	lastWriter [isa.NumRegs]int64
	mem        []int64
	pos        int // entries [0, pos) replayed

	groups []*oracleGroup // grow-only pool; groups[:n] active
	n      int
}

// reset rewinds the oracle for one batch run and partitions sims into
// groups by p-thread set, wiring each instance's shared-group pointer.
func (o *spawnOracle) reset(tr *trace.Trace, vw *trace.DecodedView, sims []*Simulator) {
	o.prog = tr.Prog
	o.vw = vw
	o.specRegs = [isa.NumRegs]int64{}
	for r := range o.lastWriter {
		o.lastWriter[r] = -1
	}
	o.mem = grow(o.mem, len(tr.Prog.InitMem))
	copy(o.mem, tr.Prog.InitMem)
	o.pos = 0
	o.n = 0
	for _, s := range sims {
		g := o.groupFor(s)
		g.members = append(g.members, s)
		s.shared = g
		s.spawnCursor = 0
	}
}

// groupFor finds the active group whose set matches s's, or installs a new
// one with s as representative.
func (o *spawnOracle) groupFor(s *Simulator) *oracleGroup {
	for _, g := range o.groups[:o.n] {
		if samePThreadSet(g.rep.pthreads, s.pthreads) {
			return g
		}
	}
	if o.n == len(o.groups) {
		o.groups = append(o.groups, &oracleGroup{})
	}
	g := o.groups[o.n]
	o.n++
	g.install(s)
	return g
}

// replay advances the shared architectural state through entries [pos, hi)
// — the same updates dispatchStage would perform, in the same program
// order, with spawn records computed before the trigger's own register
// update exactly as dispatch spawns before renaming the trigger. The view
// must be decoded through hi.
func (o *spawnOracle) replay(hi int) {
	vw := o.vw
	insts := o.prog.Insts
	for i := o.pos; i < hi; i++ {
		pc := vw.PC[i]
		for gi := 0; gi < o.n; gi++ {
			g := o.groups[gi]
			for ti := g.rep.trigHead[pc]; ti >= 0; ti = g.rep.trigNext[ti] {
				g.addRec(o, int64(i), ti)
			}
		}
		fl := vw.Flags[i]
		if fl&isa.FlagHasDst != 0 {
			dst := insts[pc].Dst
			o.specRegs[dst] = vw.Val[i]
			o.lastWriter[dst] = int64(i)
		}
		if fl&isa.FlagStore != 0 {
			o.mem[vw.Addr[i]>>3] = vw.Val[i]
		}
	}
	o.pos = hi
}

// reclaim resets a group's record storage once every member has consumed
// all of it — normally after each sub-window, since all members advance
// through the same stop. A member lagging by in-flight fetch-queue backlog
// just defers the reclaim one window.
func (o *spawnOracle) reclaim() {
	for _, g := range o.groups[:o.n] {
		n := len(g.recs)
		if n == 0 {
			continue
		}
		min := n
		for _, m := range g.members {
			if m.spawnCursor < min {
				min = m.spawnCursor
			}
		}
		if min < n {
			continue
		}
		g.recs = g.recs[:0]
		g.valArena = g.valArena[:0]
		g.depArena = g.depArena[:0]
		for _, m := range g.members {
			m.spawnCursor = 0
		}
	}
}

// samePThreadSet reports whether two installs share the identical p-thread
// set: same length, same pointers, same order. Pointer identity is the
// sharing contract — the sweep layer hands the same selection artifact to
// every point batched together.
func samePThreadSet(a, b []*PThread) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// growKeep returns a slice of length n preserving current contents,
// reusing capacity when possible.
func growKeep[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n, 2*n)
	copy(ns, s)
	return ns
}
