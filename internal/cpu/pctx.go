package cpu

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Dependence-reference kinds for p-instruction source operands.
const (
	depNone uint8 = iota // value ready at spawn (live-in already computed, R0, immediate)
	depMain              // value produced by an in-flight main-thread instruction
	depBody              // value produced by an earlier body instruction
)

type depRef struct {
	kind uint8
	idx  int64 // main-thread dynamic index or body index
}

// pctx is a hardware p-thread context. At spawn the body is executed
// functionally against the main thread's dispatch-time register state and
// memory image — the values a real DDMT context would compute through its
// checkpointed map table — while issue timing replays the same dataflow
// against producer completion times.
//
// Every slice is preallocated once (see grow) to the largest installed body,
// so spawning a p-thread instance performs no allocation.
type pctx struct {
	active  bool
	pt      *PThread
	spawnID int32
	statIdx int32 // index into the simulator's pthStats

	// Precomputed at spawn: the active slices the issue pass reads. For a
	// serial spawn they alias the context-owned bufs below; for a batched
	// spawn they alias a shared, read-only spawn record computed once per
	// trigger site by the batch's spawn oracle.
	vals       []int64
	addrs      []int64
	dep1       []depRef
	dep2       []depRef
	targetMask []bool // per body index: is a prefetch target load
	abortAt    int    // body index of a wild (out-of-range) address; len(Body) if none

	// Context-owned storage backing serial spawns (grow-only).
	valsBuf   []int64
	addrsBuf  []int64
	dep1Buf   []depRef
	dep2Buf   []depRef
	targetBuf []bool

	// Progress.
	fetched      int
	dispatched   int
	issued       int
	freed        int
	nextBlockAt  int64
	blockReadyAt int64
	completeAt   []int64
}

// limit returns the effective body length: an aborted body squashes at the
// faulting instruction.
func (c *pctx) limit() int { return c.abortAt }

func (c *pctx) isTarget(j int) bool { return c.targetMask[j] }

// grow preallocates the context's working arrays for bodies up to n
// instructions. Called once per context at simulator construction; init then
// reslices without allocating.
func (c *pctx) grow(n int) {
	if cap(c.valsBuf) >= n {
		return
	}
	c.valsBuf = make([]int64, n)
	c.addrsBuf = make([]int64, n)
	c.dep1Buf = make([]depRef, n)
	c.dep2Buf = make([]depRef, n)
	c.completeAt = make([]int64, n)
	c.targetBuf = make([]bool, n)
}

// beginInstance resets the per-instance progress and timing state shared by
// both spawn paths. grow must have been called for n first.
func (c *pctx) beginInstance(pt *PThread, spawnID, statIdx int32, now int64, n int) {
	c.active = true
	c.pt = pt
	c.spawnID = spawnID
	c.statIdx = statIdx
	c.fetched = 0
	c.dispatched = 0
	c.issued = 0
	c.freed = 0
	c.nextBlockAt = now
	c.blockReadyAt = now
	c.abortAt = n
	c.completeAt = c.completeAt[:n]
	for i := range c.completeAt {
		c.completeAt[i] = 0
	}
}

// init prepares the context for a new instance of pt, executing the body
// functionally to obtain values, addresses and dependence references.
func (c *pctx) init(pt *PThread, spawnID, statIdx int32, s *Simulator) {
	n := len(pt.Body)
	c.grow(n) // no-op in steady state: NewSimulator sized the pools
	c.beginInstance(pt, spawnID, statIdx, s.now, n)
	c.vals = c.valsBuf[:n]
	c.addrs = c.addrsBuf[:n]
	c.dep1 = c.dep1Buf[:n]
	c.dep2 = c.dep2Buf[:n]
	c.targetMask = c.targetBuf[:n]
	for i := range c.targetMask {
		c.targetMask[i] = false
	}
	for _, t := range pt.Targets {
		c.targetMask[t] = true
	}
	c.abortAt = execBody(pt.Body, &s.specRegs, s.lastWriter[:], s.mem,
		c.vals, c.addrs, c.dep1, c.dep2)
	if c.abortAt < n {
		s.pthStats[statIdx].Aborted++
	}
}

// initShared prepares the context for a batched instance of pt whose
// functional pre-execution was already performed by the batch's shared
// spawn oracle. The dataflow slices alias the read-only record (identical
// for every instance sharing the trace and p-thread set, since the
// dispatch-time architectural state is a pure function of the program-order
// prefix); only timing state — progress counters and completion times — is
// per-context.
func (c *pctx) initShared(pt *PThread, spawnID, statIdx int32, now int64, rec *spawnRec, mask []bool) {
	n := len(pt.Body)
	c.grow(n)
	c.beginInstance(pt, spawnID, statIdx, now, n)
	c.vals = rec.vals
	c.addrs = rec.addrs
	c.dep1 = rec.dep1
	c.dep2 = rec.dep2
	c.targetMask = mask
	c.abortAt = rec.abortAt
}

// execBody functionally pre-executes body against a dispatch-time
// architectural snapshot (register values, per-register last in-flight
// writer, and the program-order memory image), filling vals, addrs and the
// dependence references. It returns the abort index: the body position of a
// wild address or undefined ALU result, or len(body) if the whole body
// executed. Slots at and beyond the abort index are left unspecified, as
// the context squashes there. The snapshot is read-only; depends only on
// the main thread's program-order prefix, never on simulated timing.
func execBody(body []isa.Inst, specRegs *[isa.NumRegs]int64, lastWriter, mem []int64,
	vals, addrs []int64, dep1, dep2 []depRef) int {
	n := len(body)
	var regs [64]int64
	copy(regs[:], specRegs[:])
	var bodyWriter [64]int64 // body index of last writer, -1 = main thread
	for r := range bodyWriter {
		bodyWriter[r] = -1
	}
	memWords := int64(len(mem))
	for j := 0; j < n; j++ {
		in := body[j]
		dep1[j] = depFor(in.ReadsSrc1(), in.Src1, bodyWriter[:], lastWriter)
		dep2[j] = depFor(in.ReadsSrc2(), in.Src2, bodyWriter[:], lastWriter)
		switch {
		case in.IsALU():
			v, err := in.Eval(regs[in.Src1], regs[in.Src2])
			if err != nil {
				// Unreachable after PThread.Validate (bodies are ALU/Load/Nop
				// only), but a body that somehow defies ALU semantics squashes
				// like a wild address instead of crashing the simulation.
				return j
			}
			vals[j] = v
			if in.HasDst() {
				regs[in.Dst] = v
				bodyWriter[in.Dst] = int64(j)
			}
		case in.IsLoad():
			addr := regs[in.Src1] + in.Imm
			if addr&7 != 0 || addr < 0 || addr>>3 >= memWords {
				// Wild address: the context squashes here, as a real
				// implementation would suppress the fault and kill the
				// p-thread.
				return j
			}
			addrs[j] = addr
			v := mem[addr>>3]
			vals[j] = v
			if in.HasDst() {
				regs[in.Dst] = v
				bodyWriter[in.Dst] = int64(j)
			}
		}
	}
	return n
}

func depFor(reads bool, r isa.Reg, bodyWriter, lastWriter []int64) depRef {
	if !reads || r == isa.Zero {
		return depRef{kind: depNone}
	}
	if bw := bodyWriter[r]; bw >= 0 {
		return depRef{kind: depBody, idx: bw}
	}
	if lw := lastWriter[r]; lw != trace.NoProducer {
		// Only an in-flight, not-yet-complete producer creates a wait; a
		// committed or completed one is folded into depNone lazily by the
		// readiness check (which treats completed producers as ready).
		return depRef{kind: depMain, idx: lw}
	}
	return depRef{kind: depNone}
}
