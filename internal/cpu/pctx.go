package cpu

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Dependence-reference kinds for p-instruction source operands.
const (
	depNone uint8 = iota // value ready at spawn (live-in already computed, R0, immediate)
	depMain              // value produced by an in-flight main-thread instruction
	depBody              // value produced by an earlier body instruction
)

type depRef struct {
	kind uint8
	idx  int64 // main-thread dynamic index or body index
}

// pctx is a hardware p-thread context. At spawn the body is executed
// functionally against the main thread's dispatch-time register state and
// memory image — the values a real DDMT context would compute through its
// checkpointed map table — while issue timing replays the same dataflow
// against producer completion times.
//
// Every slice is preallocated once (see grow) to the largest installed body,
// so spawning a p-thread instance performs no allocation.
type pctx struct {
	active  bool
	pt      *PThread
	spawnID int32
	statIdx int32 // index into the simulator's pthStats

	// Precomputed at spawn.
	vals    []int64
	addrs   []int64
	dep1    []depRef
	dep2    []depRef
	abortAt int // body index of a wild (out-of-range) address; len(Body) if none

	// Progress.
	fetched      int
	dispatched   int
	issued       int
	freed        int
	nextBlockAt  int64
	blockReadyAt int64
	completeAt   []int64

	targetMask []bool // per body index: is a prefetch target load
}

// limit returns the effective body length: an aborted body squashes at the
// faulting instruction.
func (c *pctx) limit() int { return c.abortAt }

func (c *pctx) isTarget(j int) bool { return c.targetMask[j] }

// grow preallocates the context's working arrays for bodies up to n
// instructions. Called once per context at simulator construction; init then
// reslices without allocating.
func (c *pctx) grow(n int) {
	if cap(c.vals) >= n {
		return
	}
	c.vals = make([]int64, n)
	c.addrs = make([]int64, n)
	c.dep1 = make([]depRef, n)
	c.dep2 = make([]depRef, n)
	c.completeAt = make([]int64, n)
	c.targetMask = make([]bool, n)
}

// init prepares the context for a new instance of pt, executing the body
// functionally to obtain values, addresses and dependence references.
func (c *pctx) init(pt *PThread, spawnID, statIdx int32, s *Simulator) {
	body := pt.Body
	n := len(body)
	c.active = true
	c.pt = pt
	c.spawnID = spawnID
	c.statIdx = statIdx
	c.fetched = 0
	c.dispatched = 0
	c.issued = 0
	c.freed = 0
	c.nextBlockAt = s.now
	c.blockReadyAt = s.now
	c.abortAt = n
	c.grow(n) // no-op in steady state: NewSimulator sized the pools
	c.vals = c.vals[:n]
	c.addrs = c.addrs[:n]
	c.dep1 = c.dep1[:n]
	c.dep2 = c.dep2[:n]
	c.completeAt = c.completeAt[:n]
	for i := range c.completeAt {
		c.completeAt[i] = 0
	}
	c.targetMask = c.targetMask[:n]
	for i := range c.targetMask {
		c.targetMask[i] = false
	}
	for _, t := range pt.Targets {
		c.targetMask[t] = true
	}

	// Functional pre-execution with dependence tracking.
	var regs [64]int64
	copy(regs[:], s.specRegs[:])
	var bodyWriter [64]int64 // body index of last writer, -1 = main thread
	for r := range bodyWriter {
		bodyWriter[r] = -1
	}
	memWords := int64(len(s.mem))
	for j := 0; j < n; j++ {
		in := body[j]
		c.dep1[j] = c.depFor(in.ReadsSrc1(), in.Src1, bodyWriter[:], s)
		c.dep2[j] = c.depFor(in.ReadsSrc2(), in.Src2, bodyWriter[:], s)
		switch {
		case in.IsALU():
			v, err := in.Eval(regs[in.Src1], regs[in.Src2])
			if err != nil {
				// Unreachable after PThread.Validate (bodies are ALU/Load/Nop
				// only), but a body that somehow defies ALU semantics squashes
				// like a wild address instead of crashing the simulation.
				c.abortAt = j
				s.pthStats[statIdx].Aborted++
				return
			}
			c.vals[j] = v
			if in.HasDst() {
				regs[in.Dst] = v
				bodyWriter[in.Dst] = int64(j)
			}
		case in.IsLoad():
			addr := regs[in.Src1] + in.Imm
			if addr&7 != 0 || addr < 0 || addr>>3 >= memWords {
				// Wild address: the context squashes here, as a real
				// implementation would suppress the fault and kill the
				// p-thread.
				c.abortAt = j
				s.pthStats[statIdx].Aborted++
				return
			}
			c.addrs[j] = addr
			v := s.mem[addr>>3]
			c.vals[j] = v
			if in.HasDst() {
				regs[in.Dst] = v
				bodyWriter[in.Dst] = int64(j)
			}
		}
	}
}

func (c *pctx) depFor(reads bool, r isa.Reg, bodyWriter []int64, s *Simulator) depRef {
	if !reads || r == isa.Zero {
		return depRef{kind: depNone}
	}
	if bw := bodyWriter[r]; bw >= 0 {
		return depRef{kind: depBody, idx: bw}
	}
	if lw := s.lastWriter[r]; lw != trace.NoProducer {
		// Only an in-flight, not-yet-complete producer creates a wait; a
		// committed or completed one is folded into depNone lazily by the
		// readiness check (which treats completed producers as ready).
		return depRef{kind: depMain, idx: lw}
	}
	return depRef{kind: depNone}
}
