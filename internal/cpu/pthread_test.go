package cpu

import (
	"testing"

	"repro/internal/isa"
)

func validPThread() *PThread {
	return &PThread{
		ID:        1,
		TriggerPC: 10,
		Body: []isa.Inst{
			{Op: isa.AddI, Dst: 1, Src1: 1, Imm: 8},
			{Op: isa.ShlI, Dst: 2, Src1: 1, Imm: 3},
			{Op: isa.Add, Dst: 2, Src1: 2, Src2: 3},
			{Op: isa.Load, Dst: 4, Src1: 2},
		},
		Targets:  []int{3},
		TargetPC: 20,
	}
}

func TestPThreadValidateOK(t *testing.T) {
	if err := validPThread().Validate(); err != nil {
		t.Errorf("valid p-thread rejected: %v", err)
	}
}

func TestPThreadValidateRejections(t *testing.T) {
	cases := map[string]func(*PThread){
		"empty body":      func(p *PThread) { p.Body = nil },
		"store in body":   func(p *PThread) { p.Body[1] = isa.Inst{Op: isa.Store, Src1: 1, Src2: 2} },
		"branch in body":  func(p *PThread) { p.Body[1] = isa.Inst{Op: isa.BrNZ, Src1: 1} },
		"jump in body":    func(p *PThread) { p.Body[1] = isa.Inst{Op: isa.Jmp} },
		"halt in body":    func(p *PThread) { p.Body[1] = isa.Inst{Op: isa.Halt} },
		"no targets":      func(p *PThread) { p.Targets = nil },
		"target range":    func(p *PThread) { p.Targets = []int{9} },
		"target not load": func(p *PThread) { p.Targets = []int{0} },
		"dup target":      func(p *PThread) { p.Targets = []int{3, 3} },
	}
	for name, mutate := range cases {
		p := validPThread()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPThreadLiveIns(t *testing.T) {
	p := validPThread()
	// Body reads r1 (live-in), writes r1/r2/r4, reads r3 (live-in).
	live := p.LiveIns()
	want := map[isa.Reg]bool{1: true, 3: true}
	if len(live) != len(want) {
		t.Fatalf("live-ins = %v, want r1,r3", live)
	}
	for _, r := range live {
		if !want[r] {
			t.Errorf("unexpected live-in r%d", r)
		}
	}
}

func TestPThreadLiveInsIgnoresZero(t *testing.T) {
	p := &PThread{
		ID: 1, TriggerPC: 0,
		Body: []isa.Inst{
			{Op: isa.AddI, Dst: 1, Src1: isa.Zero, Imm: 8},
			{Op: isa.Load, Dst: 2, Src1: 1},
		},
		Targets: []int{1},
	}
	if live := p.LiveIns(); len(live) != 0 {
		t.Errorf("live-ins = %v, want none (R0 is not a live-in)", live)
	}
}

func TestPThreadCounters(t *testing.T) {
	p := validPThread()
	if p.Size() != 4 {
		t.Errorf("Size = %d, want 4", p.Size())
	}
	if p.Loads() != 1 {
		t.Errorf("Loads = %d, want 1", p.Loads())
	}
	if p.ALUs() != 3 {
		t.Errorf("ALUs = %d, want 3", p.ALUs())
	}
}
