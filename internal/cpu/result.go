package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/energy"
)

// StallCategory classifies a cycle in the CPI-stack execution-time breakdown
// (the five categories of Figure 2's left graph).
type StallCategory uint8

// Breakdown categories, bottom of the bar stack first as in the paper.
const (
	CatMem    StallCategory = iota // ROB head waiting on main memory
	CatL2                          // ROB head waiting on the L2
	CatExec                        // ROB head executing / waiting for operands
	CatCommit                      // head complete; commit bandwidth bound
	CatFetch                       // ROB empty: front-end supply (i-cache,
	// mispredict refill, fetch contention)
	NumCategories
)

// String names the category.
func (c StallCategory) String() string {
	switch c {
	case CatMem:
		return "mem"
	case CatL2:
		return "L2"
	case CatExec:
		return "exec"
	case CatCommit:
		return "commit"
	default:
		return "fetch"
	}
}

// PThreadStats aggregates per-static-p-thread runtime behaviour; it is the
// measured counterpart of the selector's predictions, enabling the paper's
// validation experiments.
type PThreadStats struct {
	ID            int32
	Spawns        int64 // dynamic instances started (DCtrig realized)
	Dropped       int64 // trigger dispatches with no free context
	UsefulSpawns  int64 // instances whose prefetch served a main-thread load
	FullCovered   int64 // main-thread loads that hit a completed prefetch
	PartCovered   int64 // main-thread loads merged with an in-flight prefetch
	InstsExecuted int64 // p-instructions issued
	Aborted       int64 // instances squashed on a wild address
}

// Result reports one simulation run.
//
// Results are byte-stable: the same configuration and trace produce a
// Result whose JSON encoding is identical across runs, processes and
// engines (PerPThread is emitted in ascending ID order for this reason).
// Wall-clock measurements deliberately live outside Result — see
// experiments.TargetRun.SimSeconds — so this contract survives.
type Result struct {
	Cycles    int64
	Committed int64 // main-thread instructions committed

	// P-thread aggregates.
	Spawns        int64
	DroppedSpawns int64
	UsefulSpawns  int64
	FullCovered   int64
	PartCovered   int64
	PInstsFetched int64
	PInstsExec    int64
	PerPThread    []PThreadStats

	// Memory system.
	DemandL2Misses int64
	CacheCounts    cache.AccessCounts

	// Execution-time breakdown: cycles attributed to each category.
	TimeBreakdown [NumCategories]int64

	// Energy.
	Events energy.Events
	Energy energy.Breakdown

	// Branch prediction.
	Bpred bpred.Stats
}

// Clone returns a deep copy of the Result. Results returned by a reusable
// Simulator borrow simulator-owned memory and are invalidated by the next
// Reset; callers that keep a Result across reuse (worker pools, caches)
// must Clone it first.
func (r *Result) Clone() *Result {
	out := *r
	out.PerPThread = append([]PThreadStats(nil), r.PerPThread...)
	return &out
}

// IPC returns committed main-thread instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// PInstIncrease returns executed p-instructions as a fraction of committed
// main-thread instructions (the paper's "% p-inst increase" diagnostic).
func (r *Result) PInstIncrease() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.PInstsExec) / float64(r.Committed)
}

// Usefulness returns the fraction of spawned p-thread instances whose
// prefetch served a main-thread load (the paper's "% useful spawns").
func (r *Result) Usefulness() float64 {
	if r.Spawns == 0 {
		return 0
	}
	return float64(r.UsefulSpawns) / float64(r.Spawns)
}

// EnergyTotal returns total energy in model units.
func (r *Result) EnergyTotal() float64 { return r.Energy.Total() }

// ED returns the energy-delay product (energy × cycles).
func (r *Result) ED() float64 { return r.Energy.Total() * float64(r.Cycles) }

// ED2 returns the energy-delay-squared product.
func (r *Result) ED2() float64 {
	return r.Energy.Total() * float64(r.Cycles) * float64(r.Cycles)
}
