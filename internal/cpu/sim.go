package cpu

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Per-dynamic-instruction state flags.
const (
	fDispatched uint8 = 1 << iota
	fIssued
	fRSFreed
	fMispred
	fFwd // load served by store forwarding
)

// Served-level encoding stored alongside flags (2 bits).
const (
	lvlNone uint8 = iota
	lvlL1
	lvlL2
	lvlMem
)

type fetchEnt struct {
	dyn     int32
	availAt int64
}

// Simulator runs one program execution (a dynamic trace) through the timing
// model, optionally with a set of selected p-threads installed in the
// trigger table. Create one per run; it is single-use.
//
// Two engines share the pipeline stages: the default event-driven engine
// (wakeup lists, a ready queue and a calendar queue of completion events,
// with bulk skipping of quiescent cycles) and the reference scan engine
// that rescans the window every cycle. They produce bit-identical Results;
// see Config.Engine.
type Simulator struct {
	cfg  Config
	tr   *trace.Trace
	prog *isa.Program
	hier *cache.Hierarchy
	bp   *bpred.Predictor

	now int64
	n   int

	// Main-thread front end.
	fetchIdx        int
	fetchResumeAt   int64
	stalledOnBranch int32 // dyn index of unresolved mispredicted branch, -1 none
	fetchQ          []fetchEnt
	fqHead, fqLen   int

	// Back end.
	rob             []int32
	robHead, robLen int
	state           []uint8
	level           []uint8
	completeAt      []int64
	rsUsed          int
	physUsed        int

	// Dispatch-time architectural state (correct path).
	specRegs   [isa.NumRegs]int64
	lastWriter [isa.NumRegs]int64
	mem        []int64
	inflightSt map[int64]int // addr -> count of dispatched, uncommitted stores

	// Pre-execution.
	triggers    map[int32][]*PThread
	ctxs        []pctx
	liveCtxs    int // count of active contexts (fast-path gate for the pctx scans)
	rrCtx       int // round-robin fetch arbitration pointer
	spawnUseful []bool
	spawnStatic []int32
	perPThread  map[int32]*PThreadStats

	// Event engine state; nil under the reference scan engine.
	ev *evState

	// Statistics.
	res          Result
	memMainAcc   int64 // d-cache/LSQ accesses by the main thread
	memPthAcc    int64
	aluMain      int64
	aluPth       int64
	instsMain    int64
	instsPth     int64
	branchesMain int64
}

// NewSimulator prepares a run of tr on the configured processor with the
// given p-threads installed (nil for an unoptimized baseline run).
func NewSimulator(cfg Config, tr *trace.Trace, pthreads []*PThread) (*Simulator, error) {
	if cfg.Engine != EngineEvent && cfg.Engine != EngineScan {
		return nil, fmt.Errorf("cpu: unknown engine %q (want %q or %q)", cfg.Engine, EngineEvent, EngineScan)
	}
	n := tr.Len()
	s := &Simulator{
		cfg:             cfg,
		tr:              tr,
		prog:            tr.Prog,
		hier:            cache.NewHierarchy(cfg.Hier),
		bp:              bpred.New(cfg.Bpred),
		n:               n,
		stalledOnBranch: -1,
		fetchQ:          make([]fetchEnt, cfg.FetchQCap),
		rob:             make([]int32, cfg.ROBSize),
		state:           make([]uint8, n),
		level:           make([]uint8, n),
		completeAt:      make([]int64, n),
		mem:             make([]int64, len(tr.Prog.InitMem)),
		inflightSt:      make(map[int64]int),
		triggers:        make(map[int32][]*PThread),
		ctxs:            make([]pctx, cfg.Contexts-1),
		spawnUseful:     make([]bool, 0, 1024),
		spawnStatic:     make([]int32, 0, 1024),
		perPThread:      make(map[int32]*PThreadStats),
	}
	copy(s.mem, tr.Prog.InitMem)
	for r := range s.lastWriter {
		s.lastWriter[r] = -1
	}
	for _, pt := range pthreads {
		if err := pt.Validate(); err != nil {
			return nil, err
		}
		s.triggers[pt.TriggerPC] = append(s.triggers[pt.TriggerPC], pt)
		s.perPThread[pt.ID] = &PThreadStats{ID: pt.ID}
	}
	// Preallocate every p-thread context's working arrays to the largest
	// installed body once, so spawn never allocates.
	maxBody := MaxBodyLen(pthreads)
	for c := range s.ctxs {
		s.ctxs[c].grow(maxBody)
	}
	if cfg.Engine == EngineEvent {
		s.ev = newEvState(n, cfg.ROBSize)
	}
	return s, nil
}

// Run simulates to completion and returns the result.
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask throttles context polling to every 4096 simulated cycles:
// cheap enough to be invisible in profiles, frequent enough that a cancelled
// long run returns within microseconds of wall-clock time.
const ctxCheckMask = 1<<12 - 1

// RunContext simulates to completion, aborting with ctx.Err() if ctx is
// cancelled mid-simulation.
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	if s.ev == nil {
		return s.runScan(ctx)
	}
	return s.runEvent(ctx)
}

// noCommitLimit aborts a run with no forward progress (deadlock guard).
const noCommitLimit = 1_000_000

func (s *Simulator) done() bool {
	return s.fetchIdx >= s.n && s.fqLen == 0 && s.robLen == 0
}

func (s *Simulator) maxCycles() int64 {
	if s.cfg.MaxCycles > 0 {
		return s.cfg.MaxCycles
	}
	return defaultMaxCycles
}

func (s *Simulator) inst(d int32) isa.Inst { return s.prog.Insts[s.tr.Entries[d].PC] }

// ---------------------------------------------------------------- commit --

func (s *Simulator) commitStage() int {
	committed := 0
	for s.robLen > 0 && committed < s.cfg.CommitWidth {
		d := s.rob[s.robHead]
		if s.state[d]&fIssued == 0 || s.completeAt[d] > s.now {
			break
		}
		in := s.inst(d)
		e := &s.tr.Entries[d]
		if s.state[d]&fRSFreed == 0 {
			s.rsUsed--
			s.state[d] |= fRSFreed
		}
		if in.IsStore() {
			s.hier.StoreCommit(e.Addr, s.now)
			s.memMainAcc++
			if c := s.inflightSt[e.Addr]; c <= 1 {
				delete(s.inflightSt, e.Addr)
			} else {
				s.inflightSt[e.Addr] = c - 1
			}
		}
		if in.HasDst() {
			s.physUsed--
		}
		s.robHead = (s.robHead + 1) % s.cfg.ROBSize
		s.robLen--
		s.res.Committed++
		committed++
	}
	return committed
}

// attributeCycle classifies this cycle for the CPI-stack breakdown and
// returns the category (the event engine attributes whole quiescent spans
// to the same category in one step).
func (s *Simulator) attributeCycle(committed int) StallCategory {
	var cat StallCategory
	switch {
	case committed > 0:
		cat = CatCommit
	case s.robLen == 0:
		cat = CatFetch
	default:
		d := s.rob[s.robHead]
		if s.state[d]&fIssued != 0 {
			switch s.level[d] {
			case lvlMem:
				cat = CatMem
			case lvlL2:
				cat = CatL2
			default:
				cat = CatExec
			}
		} else {
			cat = CatExec
		}
	}
	s.res.TimeBreakdown[cat]++
	return cat
}

// ----------------------------------------------------------------- issue --

func (s *Simulator) ready(prod int64) bool {
	if prod == trace.NoProducer {
		return true
	}
	return s.state[prod]&fIssued != 0 && s.completeAt[prod] <= s.now
}

// issueMain issues one ready main-thread instruction, charging the load or
// store port budgets. It returns false (without consuming anything) when the
// required port budget is exhausted or the MSHR file rejected the access;
// the caller keeps the instruction in the ready set and retries next cycle.
// mshrFull reports the rejection case.
func (s *Simulator) issueMain(d int32, loadBudget, storeBudget *int) (issued, mshrFull bool) {
	e := &s.tr.Entries[d]
	in := s.inst(d)
	switch {
	case in.IsLoad():
		if *loadBudget == 0 {
			return false, false
		}
		if s.inflightSt[e.Addr] > 0 {
			// Store-to-load forwarding through the LSQ.
			s.completeAt[d] = s.now + int64(s.cfg.Hier.L1D.HitLatency)
			s.level[d] = lvlL1
			s.state[d] |= fFwd
			s.memMainAcc++
		} else {
			info, ok := s.hier.Load(e.Addr, s.now, false, int64(e.PC))
			if !ok {
				return false, true // MSHR full; retry next cycle
			}
			s.memMainAcc++
			s.completeAt[d] = info.DoneAt
			switch info.Level {
			case cache.LvlMem:
				s.level[d] = lvlMem
			case cache.LvlL2:
				s.level[d] = lvlL2
			default:
				s.level[d] = lvlL1
			}
			if info.PrefHit != cache.NoPrefetcher {
				s.creditPrefetch(info.PrefHit, info.PrefInFlit)
			}
		}
		*loadBudget--
	case in.IsStore():
		if *storeBudget == 0 {
			return false, false
		}
		s.completeAt[d] = s.now + 1 // address generation
		*storeBudget--
	default:
		lat := int64(in.ExecLatency())
		s.completeAt[d] = s.now + lat
		if in.IsALU() {
			s.aluMain++
		}
	}
	s.state[d] |= fIssued
	return true, false
}

// issuePctx runs the in-order p-thread issue pass with the bandwidth left
// over from the main thread, returning whether anything issued or freed and
// whether an MSHR rejection forces a cycle-by-cycle retry.
func (s *Simulator) issuePctx(issueBudget, loadBudget *int) (active, mshrFull bool) {
	if s.liveCtxs == 0 {
		return false, false
	}
	for c := range s.ctxs {
		ctx := &s.ctxs[c]
		if !ctx.active {
			continue
		}
		if s.freePctxRS(ctx) {
			active = true
		}
	ctxIssue:
		for *issueBudget > 0 && ctx.issued < ctx.dispatched && ctx.issued < ctx.limit() {
			j := ctx.issued
			if !s.pdepReady(ctx, ctx.dep1[j]) || !s.pdepReady(ctx, ctx.dep2[j]) {
				break
			}
			in := ctx.pt.Body[j]
			if in.IsLoad() {
				if *loadBudget == 0 {
					break ctxIssue
				}
				if ctx.isTarget(j) {
					if _, ok := s.hier.PrefetchL2(ctx.addrs[j], s.now, ctx.spawnID); !ok {
						mshrFull = true
						break ctxIssue // MSHR full; retry next cycle
					}
					// The p-thread is finished with a target load once the
					// prefetch is launched.
					ctx.completeAt[j] = s.now + 1
				} else {
					info, ok := s.hier.Load(ctx.addrs[j], s.now, true, -1)
					if !ok {
						mshrFull = true
						break ctxIssue
					}
					ctx.completeAt[j] = info.DoneAt
				}
				s.memPthAcc++
				*loadBudget--
			} else {
				ctx.completeAt[j] = s.now + int64(in.ExecLatency())
				if in.IsALU() {
					s.aluPth++
				}
			}
			if s.ev != nil {
				s.ev.cal.push(ctx.completeAt[j], s.now, pctxMarker)
			}
			ctx.issued++
			*issueBudget--
			active = true
			s.res.PInstsExec++
			s.perPThread[ctx.pt.ID].InstsExecuted++
		}
		s.maybeRelease(ctx)
	}
	return active, mshrFull
}

func (s *Simulator) pdepReady(ctx *pctx, d depRef) bool {
	switch d.kind {
	case depNone:
		return true
	case depMain:
		return s.state[d.idx]&fIssued != 0 && s.completeAt[d.idx] <= s.now
	default: // depBody
		return ctx.completeAt[d.idx] > 0 && ctx.completeAt[d.idx] <= s.now
	}
}

func (s *Simulator) freePctxRS(ctx *pctx) bool {
	freed := false
	for j := ctx.freed; j < ctx.issued; j++ {
		if ctx.completeAt[j] > s.now {
			break
		}
		s.rsUsed--
		if ctx.pt.Body[j].HasDst() {
			s.physUsed--
		}
		ctx.freed++
		freed = true
	}
	return freed
}

func (s *Simulator) maybeRelease(ctx *pctx) {
	// All issuable body instructions (everything before an abort point) have
	// issued, completed and returned their resources: the context retires.
	// Instructions past the abort point never allocated resources (dispatch
	// skips them), so nothing further needs freeing.
	if ctx.issued == ctx.limit() && ctx.freed == ctx.issued {
		ctx.active = false
		s.liveCtxs--
	}
}

func (s *Simulator) creditPrefetch(spawnID int32, partial bool) {
	stat := s.perPThread[s.spawnStatic[spawnID]]
	if partial {
		s.res.PartCovered++
		stat.PartCovered++
	} else {
		s.res.FullCovered++
		stat.FullCovered++
	}
	if !s.spawnUseful[spawnID] {
		s.spawnUseful[spawnID] = true
		s.res.UsefulSpawns++
		stat.UsefulSpawns++
	}
}

// -------------------------------------------------------------- dispatch --

func (s *Simulator) dispatchStage() bool {
	active := false
	budget := s.cfg.DispatchWidth
	for budget > 0 && s.fqLen > 0 {
		fe := s.fetchQ[s.fqHead]
		if fe.availAt > s.now {
			break
		}
		d := fe.dyn
		in := s.inst(d)
		if s.robLen >= s.cfg.ROBSize || s.rsUsed >= s.cfg.RSSize {
			break
		}
		if in.HasDst() && s.physUsed >= s.cfg.PhysRegs {
			break
		}
		// Spawn p-threads before the trigger's own register update: the
		// body re-executes the trigger computation from pre-trigger state.
		e := &s.tr.Entries[d]
		if pts, hit := s.triggers[e.PC]; hit {
			for _, pt := range pts {
				s.spawn(pt)
			}
		}
		s.fqHead = (s.fqHead + 1) % s.cfg.FetchQCap
		s.fqLen--
		s.rob[(s.robHead+s.robLen)%s.cfg.ROBSize] = d
		s.robLen++
		s.state[d] |= fDispatched
		s.rsUsed++
		if in.HasDst() {
			s.physUsed++
			s.specRegs[in.Dst] = e.Val
			s.lastWriter[in.Dst] = int64(d)
		}
		if in.IsStore() {
			s.mem[e.Addr>>3] = e.Val
			s.inflightSt[e.Addr]++
		}
		s.instsMain++
		if in.IsBranch() {
			s.branchesMain++
		}
		if s.ev != nil {
			// Subscribe to incomplete producers; an instruction with none
			// enters the ready queue directly (it has the largest dynamic
			// index in flight, so appending keeps the queue sorted).
			w1 := s.watch(e.Prod1, d)
			w2 := s.watch(e.Prod2, d)
			if !w1 && !w2 {
				s.ev.readyQ = append(s.ev.readyQ, d)
			}
		}
		budget--
		active = true
	}

	// P-thread dispatch with leftover rename bandwidth.
	if s.liveCtxs == 0 {
		return active
	}
	for c := range s.ctxs {
		ctx := &s.ctxs[c]
		if !ctx.active || budget == 0 {
			continue
		}
		for budget > 0 && ctx.dispatched < ctx.fetched && ctx.blockReadyAt <= s.now {
			j := ctx.dispatched
			if j >= ctx.limit() {
				// Aborted tail: consume without occupying resources.
				ctx.dispatched++
				active = true
				continue
			}
			if s.rsUsed >= s.cfg.RSSize {
				break
			}
			in := ctx.pt.Body[j]
			if in.HasDst() && s.physUsed >= s.cfg.PhysRegs {
				break
			}
			s.rsUsed++
			if in.HasDst() {
				s.physUsed++
			}
			ctx.dispatched++
			s.instsPth++
			budget--
			active = true
		}
	}
	return active
}

// spawn starts a p-thread instance on a free context, if any.
func (s *Simulator) spawn(pt *PThread) {
	stat := s.perPThread[pt.ID]
	var ctx *pctx
	for c := range s.ctxs {
		if !s.ctxs[c].active {
			ctx = &s.ctxs[c]
			break
		}
	}
	if ctx == nil {
		s.res.DroppedSpawns++
		stat.Dropped++
		return
	}
	spawnID := int32(len(s.spawnUseful))
	s.spawnUseful = append(s.spawnUseful, false)
	s.spawnStatic = append(s.spawnStatic, pt.ID)
	ctx.init(pt, spawnID, s)
	s.liveCtxs++
	s.res.Spawns++
	stat.Spawns++
}

// ----------------------------------------------------------------- fetch --

func (s *Simulator) fetchStage() bool {
	// Single i-cache port: an eligible p-thread block fetch displaces the
	// main thread this cycle (DDMT gives latency-critical p-threads fetch
	// priority; this contention is the overhead LOH models).
	if s.pthFetch() {
		return true
	}
	if s.fetchIdx >= s.n {
		return false
	}
	// A mispredicted branch blocks fetch until it resolves.
	resolved := false
	if s.stalledOnBranch >= 0 {
		d := s.stalledOnBranch
		if s.state[d]&fIssued != 0 && s.completeAt[d] <= s.now {
			s.fetchResumeAt = s.completeAt[d] + int64(s.cfg.RedirectPen)
			s.stalledOnBranch = -1
			resolved = true
		} else {
			return false
		}
	}
	if s.now < s.fetchResumeAt || s.fqLen >= s.cfg.FetchQCap {
		return resolved
	}
	// I-cache access for the block containing the next PC. Instruction
	// addresses live in their own space at 8 bytes per instruction.
	iaddr := int64(s.tr.Entries[s.fetchIdx].PC) * 8
	done := s.hier.FetchBlock(iaddr, s.now, false)
	if done > s.now+int64(s.cfg.Hier.L1I.HitLatency) {
		s.fetchResumeAt = done // i-cache miss: stall until fill
		return true
	}
	width := s.cfg.FetchWidth
	if space := s.cfg.FetchQCap - s.fqLen; space < width {
		width = space
	}
	for w := 0; w < width && s.fetchIdx < s.n; w++ {
		d := int32(s.fetchIdx)
		e := &s.tr.Entries[d]
		in := s.prog.Insts[e.PC]
		s.fetchQ[(s.fqHead+s.fqLen)%s.cfg.FetchQCap] = fetchEnt{dyn: d, availAt: s.now + int64(s.cfg.FrontEndDepth)}
		s.fqLen++
		s.fetchIdx++
		if in.IsBranch() {
			pred, btbHit := s.bp.PredictAndUpdate(int64(e.PC), e.Taken, int64(in.Target))
			if pred != e.Taken {
				s.state[d] |= fMispred
				s.stalledOnBranch = d
				break
			}
			if e.Taken {
				if !btbHit {
					s.fetchResumeAt = s.now + 2 // BTB miss bubble
				}
				break // redirect: stop fetching this cycle
			}
		} else if in.IsJump() {
			if !s.bp.PredictJump(int64(e.PC), int64(in.Target)) {
				s.fetchResumeAt = s.now + 2
			}
			break
		}
	}
	return true
}

// pthFetch performs at most one p-thread block fetch, returning whether the
// i-cache port was consumed.
func (s *Simulator) pthFetch() bool {
	nctx := len(s.ctxs)
	if nctx == 0 || s.liveCtxs == 0 {
		return false
	}
	for off := 0; off < nctx; off++ {
		c := (s.rrCtx + off) % nctx
		ctx := &s.ctxs[c]
		if !ctx.active || ctx.fetched >= len(ctx.pt.Body) || ctx.nextBlockAt > s.now {
			continue
		}
		k := len(ctx.pt.Body) - ctx.fetched
		if k > s.cfg.FetchWidth {
			k = s.cfg.FetchWidth
		}
		iaddr := int64(ctx.pt.TriggerPC)*8 + int64(ctx.fetched)*8
		done := s.hier.FetchBlock(iaddr, s.now, true)
		ctx.fetched += k
		ctx.blockReadyAt = done + int64(s.cfg.PthFrontEnd)
		// Pacing: one instruction per cycle overall.
		ctx.nextBlockAt = s.now + int64(k)
		s.res.PInstsFetched += int64(k)
		s.rrCtx = (c + 1) % nctx
		return true
	}
	return false
}

// -------------------------------------------------------------- finalize --

func (s *Simulator) finalize() {
	s.res.Cycles = s.now
	s.res.DemandL2Misses = s.hier.DemandL2Misses
	s.res.CacheCounts = s.hier.Counts
	s.res.Bpred = s.bp.Stats
	s.res.Events = energy.Events{
		Cycles:          s.now,
		FetchBlocksMain: s.hier.Counts.L1IMain,
		FetchBlocksPth:  s.hier.Counts.L1IPth,
		InstsMain:       s.instsMain,
		InstsPth:        s.instsPth,
		ALUMain:         s.aluMain,
		ALUPth:          s.aluPth,
		MemMain:         s.memMainAcc,
		MemPth:          s.memPthAcc,
		L2Main:          s.hier.Counts.L2Main,
		L2Pth:           s.hier.Counts.L2Pth,
		BranchesMain:    s.branchesMain,
	}
	s.res.Energy = energy.Compute(s.cfg.Energy, s.res.Events)
	for _, st := range s.perPThread {
		s.res.PerPThread = append(s.res.PerPThread, *st)
	}
	// Map iteration order is random; Result must be byte-stable (the JSON
	// reports and the determinism guarantee depend on it).
	sort.Slice(s.res.PerPThread, func(i, j int) bool {
		return s.res.PerPThread[i].ID < s.res.PerPThread[j].ID
	})
}

// Run is a convenience that builds and runs a simulator in one call.
func Run(cfg Config, tr *trace.Trace, pthreads []*PThread) (*Result, error) {
	return RunContext(context.Background(), cfg, tr, pthreads)
}

// RunContext is Run with cancellation: the simulation aborts with ctx.Err()
// as soon as ctx is done, even deep inside a long run.
func RunContext(ctx context.Context, cfg Config, tr *trace.Trace, pthreads []*PThread) (*Result, error) {
	s, err := NewSimulator(cfg, tr, pthreads)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}
