package cpu

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Per-dynamic-instruction state flags.
const (
	fDispatched uint8 = 1 << iota
	fIssued
	fRSFreed
	fMispred
	fFwd // load served by store forwarding
)

// Served-level encoding stored alongside flags (2 bits).
const (
	lvlNone uint8 = iota
	lvlL1
	lvlL2
	lvlMem
)

type fetchEnt struct {
	dyn     int32
	availAt int64
}

// Simulator runs one program execution (a dynamic trace) through the timing
// model, optionally with a set of selected p-threads installed in the
// trigger table.
//
// A Simulator is reusable: Reset reinitializes it for a new (config, trace,
// p-thread) triple while retaining every internal pool — ROB, per-entry
// state columns, wakeup-node pool, calendar buckets, cache arrays, p-thread
// contexts — so steady-state reuse performs no allocation. A Result
// returned by Run/RunContext borrows simulator-owned memory and is valid
// only until the next Reset; callers that outlive the reuse cycle must
// Clone it.
//
// Two engines share the pipeline stages: the default event-driven engine
// (wakeup lists, a ready queue and a calendar queue of completion events,
// with bulk skipping of quiescent cycles) and the reference scan engine
// that rescans the window every cycle. They produce bit-identical Results;
// see Config.Engine.
type Simulator struct {
	cfg  Config
	tr   *trace.Trace
	prog *isa.Program
	// vw, when non-nil, is a shared flat decoded mirror of tr installed by
	// a BatchSimulator: the hot stages read trace columns and per-entry
	// static predicates through it instead of the chunked accessors. The
	// batch guarantees every entry a stage can touch is decoded before the
	// instance runs. Serial runs leave it nil (Reset clears it).
	vw   *trace.DecodedView
	hier *cache.Hierarchy
	bp   *bpred.Predictor
	// bpCfg remembers the raw requested predictor configuration so Reset can
	// tell whether the existing predictor (possibly built from a defaulted
	// config) still matches.
	bpCfg bpred.Config

	now int64
	n   int

	// lastCommit is the cycle of the most recent main-thread commit; the
	// no-progress deadlock guard measures from it. It lives on the
	// Simulator (not as a run-loop local) so a batched run can pause an
	// instance at a chunk boundary and resume it later bit-identically.
	lastCommit int64

	// Main-thread front end.
	fetchIdx        int
	fetchResumeAt   int64
	stalledOnBranch int32 // dyn index of unresolved mispredicted branch, -1 none
	fetchQ          []fetchEnt
	fqHead, fqLen   int

	// Back end.
	rob             []int32
	robHead, robLen int
	state           []uint8
	level           []uint8
	completeAt      []int64
	rsUsed          int
	physUsed        int

	// Dispatch-time architectural state (correct path). When the simulator
	// runs as a batch instance, shared points at its oracle group: the
	// batch's spawn oracle then owns specRegs/lastWriter/mem maintenance
	// (one program-order replay for all instances) and spawns consume
	// precomputed records via spawnCursor instead of re-executing bodies.
	specRegs    [isa.NumRegs]int64
	lastWriter  [isa.NumRegs]int64
	mem         []int64
	inflightSt  []int32 // per memory word: dispatched, uncommitted stores
	shared      *oracleGroup
	spawnCursor int

	// Pre-execution. Triggers are a per-PC intrusive list over the installed
	// p-threads (trigHead[pc] -> first index, trigNext chains in install
	// order); statOf deduplicates stats for p-threads sharing an ID.
	pthreads    []*PThread
	trigHead    []int32
	trigNext    []int32
	statOf      []int32
	pthStats    []PThreadStats
	ctxs        []pctx
	liveCtxs    int // count of active contexts (fast-path gate for the pctx scans)
	rrCtx       int // round-robin fetch arbitration pointer
	spawnUseful []bool
	spawnStatic []int32 // spawnID -> stat index

	// Per-PC static summaries, rebuilt on Reset (the program is tens of
	// instructions): predicate bytes and functional-unit latencies, so hot
	// stages test flag bits instead of re-running isa.Inst's Op switches.
	pcFlags []uint8
	pcLats  []uint8

	// Event engine state; ev is nil under the reference scan engine, evMem
	// keeps the allocated structures alive across engine switches.
	ev    *evState
	evMem *evState

	// Statistics.
	res          Result
	perPBuf      []PThreadStats // reused backing for res.PerPThread
	memMainAcc   int64          // d-cache/LSQ accesses by the main thread
	memPthAcc    int64
	aluMain      int64
	aluPth       int64
	instsMain    int64
	instsPth     int64
	branchesMain int64
}

// NewSimulator prepares a run of tr on the configured processor with the
// given p-threads installed (nil for an unoptimized baseline run).
func NewSimulator(cfg Config, tr *trace.Trace, pthreads []*PThread) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(cfg, tr, pthreads); err != nil {
		return nil, err
	}
	return s, nil
}

// grow returns a slice of length n, reusing s's storage when possible.
// Contents are unspecified; callers that need a known initial state fill it.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Reset reinitializes the simulator for a run of tr under cfg with the
// given p-threads installed, reusing every internal pool sized on previous
// runs. After one warm-up run per (program size, configuration) shape,
// Reset and the subsequent run allocate nothing. Any Result previously
// returned by this simulator is invalidated (see Simulator doc).
func (s *Simulator) Reset(cfg Config, tr *trace.Trace, pthreads []*PThread) error {
	if cfg.Engine != EngineEvent && cfg.Engine != EngineScan {
		// EngineBatched is a scheduling property of a BatchSimulator (or a
		// sweep), not of a single instance; it is rejected here too.
		return fmt.Errorf("cpu: unknown engine %q for a single simulator (valid engines: event, scan)", cfg.Engine)
	}
	for _, pt := range pthreads {
		if err := pt.Validate(); err != nil {
			return err
		}
		// Validate can't see the program; check here that the trigger exists
		// (the trigger table is indexed by PC).
		if pt.TriggerPC < 0 || int(pt.TriggerPC) >= len(tr.Prog.Insts) {
			return fmt.Errorf("cpu: p-thread %d trigger PC %d out of program range (%d instructions)",
				pt.ID, pt.TriggerPC, len(tr.Prog.Insts))
		}
	}
	n := tr.Len()
	s.cfg = cfg
	s.tr = tr
	s.prog = tr.Prog
	s.vw = nil // serial by default; BatchSimulator re-installs its view
	s.n = n
	s.pcFlags = grow(s.pcFlags, len(s.prog.Insts))
	s.pcLats = grow(s.pcLats, len(s.prog.Insts))
	for i, in := range s.prog.Insts {
		s.pcFlags[i] = in.Flags()
		s.pcLats[i] = uint8(in.ExecLatency())
	}

	if s.hier == nil || s.hier.Config() != cfg.Hier {
		s.hier = cache.NewHierarchy(cfg.Hier)
	} else {
		s.hier.Reset()
	}
	if s.bp == nil || s.bpCfg != cfg.Bpred {
		s.bp = bpred.New(cfg.Bpred)
		s.bpCfg = cfg.Bpred
	} else {
		s.bp.Reset()
	}

	s.now = 0
	s.lastCommit = 0
	s.fetchIdx = 0
	s.fetchResumeAt = 0
	s.stalledOnBranch = -1
	if cap(s.fetchQ) >= cfg.FetchQCap {
		s.fetchQ = s.fetchQ[:cfg.FetchQCap]
	} else {
		s.fetchQ = make([]fetchEnt, cfg.FetchQCap)
	}
	s.fqHead, s.fqLen = 0, 0

	s.rob = grow(s.rob, cfg.ROBSize)
	s.robHead, s.robLen = 0, 0
	// One canonical clear loop per slice so each compiles to a memclr.
	s.state = grow(s.state, n)
	for i := range s.state {
		s.state[i] = 0
	}
	s.level = grow(s.level, n)
	for i := range s.level {
		s.level[i] = 0
	}
	s.completeAt = grow(s.completeAt, n)
	for i := range s.completeAt {
		s.completeAt[i] = 0
	}
	s.rsUsed, s.physUsed = 0, 0

	s.specRegs = [isa.NumRegs]int64{}
	for r := range s.lastWriter {
		s.lastWriter[r] = -1
	}
	s.shared = nil // serial by default; BatchSimulator re-installs its group
	s.spawnCursor = 0
	memWords := len(tr.Prog.InitMem)
	s.mem = grow(s.mem, memWords)
	copy(s.mem, tr.Prog.InitMem)
	s.inflightSt = grow(s.inflightSt, memWords)
	for i := range s.inflightSt {
		s.inflightSt[i] = 0
	}

	s.installPThreads(pthreads)

	nctx := cfg.Contexts - 1
	if cap(s.ctxs) >= nctx {
		s.ctxs = s.ctxs[:nctx]
	} else {
		s.ctxs = make([]pctx, nctx)
	}
	// Preallocate every p-thread context's working arrays to the largest
	// installed body once, so spawn never allocates.
	maxBody := MaxBodyLen(pthreads)
	for c := range s.ctxs {
		s.ctxs[c].active = false
		s.ctxs[c].grow(maxBody)
	}
	s.liveCtxs = 0
	s.rrCtx = 0
	s.spawnUseful = s.spawnUseful[:0]
	s.spawnStatic = s.spawnStatic[:0]
	if s.spawnUseful == nil {
		s.spawnUseful = make([]bool, 0, 1024)
		s.spawnStatic = make([]int32, 0, 1024)
	}

	if cfg.Engine == EngineEvent {
		if s.evMem == nil {
			s.evMem = &evState{}
		}
		s.evMem.reset(n, cfg.ROBSize)
		s.ev = s.evMem
	} else {
		s.ev = nil
	}

	s.res = Result{}
	s.memMainAcc, s.memPthAcc = 0, 0
	s.aluMain, s.aluPth = 0, 0
	s.instsMain, s.instsPth = 0, 0
	s.branchesMain = 0
	return nil
}

// installPThreads rebuilds the trigger table and per-p-thread stat slots.
// Per-PC dispatch order is the argument order (trigNext chains preserve
// it), and p-threads sharing an ID share one stat slot, both matching the
// previous map-based behaviour bit for bit.
func (s *Simulator) installPThreads(pthreads []*PThread) {
	s.pthreads = pthreads
	nInsts := len(s.prog.Insts)
	s.trigHead = grow(s.trigHead, nInsts)
	for i := range s.trigHead {
		s.trigHead[i] = -1
	}
	s.trigNext = grow(s.trigNext, len(pthreads))
	s.statOf = grow(s.statOf, len(pthreads))
	s.pthStats = s.pthStats[:0]
	for k, pt := range pthreads {
		s.trigNext[k] = -1
		// Append to the trigger PC's chain tail to preserve install order.
		if head := s.trigHead[pt.TriggerPC]; head < 0 {
			s.trigHead[pt.TriggerPC] = int32(k)
		} else {
			tail := head
			for s.trigNext[tail] >= 0 {
				tail = s.trigNext[tail]
			}
			s.trigNext[tail] = int32(k)
		}
		si := int32(-1)
		for j := range s.pthStats {
			if s.pthStats[j].ID == pt.ID {
				si = int32(j)
				break
			}
		}
		if si < 0 {
			si = int32(len(s.pthStats))
			s.pthStats = append(s.pthStats, PThreadStats{ID: pt.ID})
		}
		s.statOf[k] = si
	}
}

// Run simulates to completion and returns the result.
//
//lab:hotpath
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask throttles context polling to every 4096 simulated cycles:
// cheap enough to be invisible in profiles, frequent enough that a cancelled
// long run returns within microseconds of wall-clock time.
const ctxCheckMask = 1<<12 - 1

// RunContext simulates to completion, aborting with ctx.Err() if ctx is
// cancelled mid-simulation. The returned Result borrows simulator-owned
// memory; it is valid until the simulator's next Reset (Clone it to keep
// it longer).
//
//lab:hotpath
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	if s.ev == nil {
		return s.runScan(ctx)
	}
	return s.runEvent(ctx)
}

// noCommitLimit aborts a run with no forward progress (deadlock guard).
const noCommitLimit = 1_000_000

//lab:hotpath
func (s *Simulator) done() bool {
	return s.fetchIdx >= s.n && s.fqLen == 0 && s.robLen == 0
}

func (s *Simulator) maxCycles() int64 {
	if s.cfg.MaxCycles > 0 {
		return s.cfg.MaxCycles
	}
	return defaultMaxCycles
}

//lab:hotpath
func (s *Simulator) inst(d int32) isa.Inst { return s.prog.Insts[s.trPC(int(d))] }

// Trace-column accessors for the pipeline stages: reads go through the
// batch-shared decoded view when one is installed (flat columns, producer
// indices and predicate bytes already materialized) and fall back to the
// trace's chunked accessors for serial runs. Both paths return identical
// values, so engine results do not depend on how an instance is driven.

//lab:hotpath
func (s *Simulator) trPC(i int) int32 {
	if v := s.vw; v != nil {
		return v.PC[i]
	}
	return s.tr.PC(i)
}

//lab:hotpath
func (s *Simulator) trAddr(i int) int64 {
	if v := s.vw; v != nil {
		return v.Addr[i]
	}
	return s.tr.Addr(i)
}

//lab:hotpath
func (s *Simulator) trVal(i int) int64 {
	if v := s.vw; v != nil {
		return v.Val[i]
	}
	return s.tr.Val(i)
}

//lab:hotpath
func (s *Simulator) trProd1(i int) int64 {
	if v := s.vw; v != nil {
		return v.Prod1[i]
	}
	return s.tr.Prod1(i)
}

//lab:hotpath
func (s *Simulator) trProd2(i int) int64 {
	if v := s.vw; v != nil {
		return v.Prod2[i]
	}
	return s.tr.Prod2(i)
}

//lab:hotpath
func (s *Simulator) trTaken(i int) bool {
	if v := s.vw; v != nil {
		return v.Taken[i]
	}
	return s.tr.Taken(i)
}

// trFlags returns the entry's static-predicate byte (isa.Inst.Flags); pc
// must be the entry's static index, already loaded by the caller.
//
//lab:hotpath
func (s *Simulator) trFlags(i int, pc int32) uint8 {
	if v := s.vw; v != nil {
		return v.Flags[i]
	}
	return s.pcFlags[pc]
}

// trFlagsAt is trFlags for callers that have not already loaded the
// entry's PC.
//
//lab:hotpath
func (s *Simulator) trFlagsAt(i int) uint8 {
	if v := s.vw; v != nil {
		return v.Flags[i]
	}
	return s.pcFlags[s.tr.PC(i)]
}

// trLat returns the entry's functional-unit latency (isa.Inst.ExecLatency).
//
//lab:hotpath
func (s *Simulator) trLat(i int, pc int32) uint8 {
	if v := s.vw; v != nil {
		return v.Lat[i]
	}
	return s.pcLats[pc]
}

// ---------------------------------------------------------------- commit --

//lab:hotpath
func (s *Simulator) commitStage() int {
	committed := 0
	for s.robLen > 0 && committed < s.cfg.CommitWidth {
		d := s.rob[s.robHead]
		if s.state[d]&fIssued == 0 || s.completeAt[d] > s.now {
			break
		}
		fl := s.trFlagsAt(int(d))
		if s.state[d]&fRSFreed == 0 {
			s.rsUsed--
			s.state[d] |= fRSFreed
		}
		if fl&isa.FlagStore != 0 {
			addr := s.trAddr(int(d))
			s.hier.StoreCommit(addr, s.now)
			s.memMainAcc++
			s.inflightSt[addr>>3]--
		}
		if fl&isa.FlagHasDst != 0 {
			s.physUsed--
		}
		s.robHead = (s.robHead + 1) % s.cfg.ROBSize
		s.robLen--
		s.res.Committed++
		committed++
	}
	return committed
}

// attributeCycle classifies this cycle for the CPI-stack breakdown and
// returns the category (the event engine attributes whole quiescent spans
// to the same category in one step).
//
//lab:hotpath
func (s *Simulator) attributeCycle(committed int) StallCategory {
	var cat StallCategory
	switch {
	case committed > 0:
		cat = CatCommit
	case s.robLen == 0:
		cat = CatFetch
	default:
		d := s.rob[s.robHead]
		if s.state[d]&fIssued != 0 {
			switch s.level[d] {
			case lvlMem:
				cat = CatMem
			case lvlL2:
				cat = CatL2
			default:
				cat = CatExec
			}
		} else {
			cat = CatExec
		}
	}
	s.res.TimeBreakdown[cat]++
	return cat
}

// ----------------------------------------------------------------- issue --

//lab:hotpath
func (s *Simulator) ready(prod int64) bool {
	if prod == trace.NoProducer {
		return true
	}
	return s.state[prod]&fIssued != 0 && s.completeAt[prod] <= s.now
}

// issueMain issues one ready main-thread instruction, charging the load or
// store port budgets. It returns false (without consuming anything) when the
// required port budget is exhausted or the MSHR file rejected the access;
// the caller keeps the instruction in the ready set and retries next cycle.
// mshrFull reports the rejection case.
//
//lab:hotpath
func (s *Simulator) issueMain(d int32, loadBudget, storeBudget *int) (issued, mshrFull bool) {
	pc := s.trPC(int(d))
	fl := s.trFlags(int(d), pc)
	switch {
	case fl&isa.FlagLoad != 0:
		if *loadBudget == 0 {
			return false, false
		}
		addr := s.trAddr(int(d))
		if s.inflightSt[addr>>3] > 0 {
			// Store-to-load forwarding through the LSQ.
			s.completeAt[d] = s.now + int64(s.cfg.Hier.L1D.HitLatency)
			s.level[d] = lvlL1
			s.state[d] |= fFwd
			s.memMainAcc++
		} else {
			info, ok := s.hier.Load(addr, s.now, false, int64(pc))
			if !ok {
				return false, true // MSHR full; retry next cycle
			}
			s.memMainAcc++
			s.completeAt[d] = info.DoneAt
			switch info.Level {
			case cache.LvlMem:
				s.level[d] = lvlMem
			case cache.LvlL2:
				s.level[d] = lvlL2
			default:
				s.level[d] = lvlL1
			}
			if info.PrefHit != cache.NoPrefetcher {
				s.creditPrefetch(info.PrefHit, info.PrefInFlit)
			}
		}
		*loadBudget--
	case fl&isa.FlagStore != 0:
		if *storeBudget == 0 {
			return false, false
		}
		s.completeAt[d] = s.now + 1 // address generation
		*storeBudget--
	default:
		lat := int64(s.trLat(int(d), pc))
		s.completeAt[d] = s.now + lat
		if fl&isa.FlagALU != 0 {
			s.aluMain++
		}
	}
	s.state[d] |= fIssued
	return true, false
}

// issuePctx runs the in-order p-thread issue pass with the bandwidth left
// over from the main thread, returning whether anything issued or freed and
// whether an MSHR rejection forces a cycle-by-cycle retry.
//
//lab:hotpath
func (s *Simulator) issuePctx(issueBudget, loadBudget *int) (active, mshrFull bool) {
	if s.liveCtxs == 0 {
		return false, false
	}
	for c := range s.ctxs {
		ctx := &s.ctxs[c]
		if !ctx.active {
			continue
		}
		if s.freePctxRS(ctx) {
			active = true
		}
	ctxIssue:
		for *issueBudget > 0 && ctx.issued < ctx.dispatched && ctx.issued < ctx.limit() {
			j := ctx.issued
			if !s.pdepReady(ctx, ctx.dep1[j]) || !s.pdepReady(ctx, ctx.dep2[j]) {
				break
			}
			in := ctx.pt.Body[j]
			if in.IsLoad() {
				if *loadBudget == 0 {
					break ctxIssue
				}
				if ctx.isTarget(j) {
					if _, ok := s.hier.PrefetchL2(ctx.addrs[j], s.now, ctx.spawnID); !ok {
						mshrFull = true
						break ctxIssue // MSHR full; retry next cycle
					}
					// The p-thread is finished with a target load once the
					// prefetch is launched.
					ctx.completeAt[j] = s.now + 1
				} else {
					info, ok := s.hier.Load(ctx.addrs[j], s.now, true, -1)
					if !ok {
						mshrFull = true
						break ctxIssue
					}
					ctx.completeAt[j] = info.DoneAt
				}
				s.memPthAcc++
				*loadBudget--
			} else {
				ctx.completeAt[j] = s.now + int64(in.ExecLatency())
				if in.IsALU() {
					s.aluPth++
				}
			}
			if s.ev != nil {
				s.ev.cal.push(ctx.completeAt[j], s.now, pctxMarker)
			}
			ctx.issued++
			*issueBudget--
			active = true
			s.res.PInstsExec++
			s.pthStats[ctx.statIdx].InstsExecuted++
		}
		s.maybeRelease(ctx)
	}
	return active, mshrFull
}

//lab:hotpath
func (s *Simulator) pdepReady(ctx *pctx, d depRef) bool {
	switch d.kind {
	case depNone:
		return true
	case depMain:
		return s.state[d.idx]&fIssued != 0 && s.completeAt[d.idx] <= s.now
	default: // depBody
		return ctx.completeAt[d.idx] > 0 && ctx.completeAt[d.idx] <= s.now
	}
}

//lab:hotpath
func (s *Simulator) freePctxRS(ctx *pctx) bool {
	freed := false
	for j := ctx.freed; j < ctx.issued; j++ {
		if ctx.completeAt[j] > s.now {
			break
		}
		s.rsUsed--
		if ctx.pt.Body[j].HasDst() {
			s.physUsed--
		}
		ctx.freed++
		freed = true
	}
	return freed
}

//lab:hotpath
func (s *Simulator) maybeRelease(ctx *pctx) {
	// All issuable body instructions (everything before an abort point) have
	// issued, completed and returned their resources: the context retires.
	// Instructions past the abort point never allocated resources (dispatch
	// skips them), so nothing further needs freeing.
	if ctx.issued == ctx.limit() && ctx.freed == ctx.issued {
		ctx.active = false
		s.liveCtxs--
	}
}

//lab:hotpath
func (s *Simulator) creditPrefetch(spawnID int32, partial bool) {
	stat := &s.pthStats[s.spawnStatic[spawnID]]
	if partial {
		s.res.PartCovered++
		stat.PartCovered++
	} else {
		s.res.FullCovered++
		stat.FullCovered++
	}
	if !s.spawnUseful[spawnID] {
		s.spawnUseful[spawnID] = true
		s.res.UsefulSpawns++
		stat.UsefulSpawns++
	}
}

// -------------------------------------------------------------- dispatch --

//lab:hotpath
func (s *Simulator) dispatchStage() bool {
	active := false
	budget := s.cfg.DispatchWidth
	for budget > 0 && s.fqLen > 0 {
		fe := s.fetchQ[s.fqHead]
		if fe.availAt > s.now {
			break
		}
		d := fe.dyn
		pc := s.trPC(int(d))
		fl := s.trFlags(int(d), pc)
		if s.robLen >= s.cfg.ROBSize || s.rsUsed >= s.cfg.RSSize {
			break
		}
		if fl&isa.FlagHasDst != 0 && s.physUsed >= s.cfg.PhysRegs {
			break
		}
		// Spawn p-threads before the trigger's own register update: the
		// body re-executes the trigger computation from pre-trigger state.
		for ti := s.trigHead[pc]; ti >= 0; ti = s.trigNext[ti] {
			s.spawn(ti)
		}
		s.fqHead = (s.fqHead + 1) % s.cfg.FetchQCap
		s.fqLen--
		s.rob[(s.robHead+s.robLen)%s.cfg.ROBSize] = d
		s.robLen++
		s.state[d] |= fDispatched
		s.rsUsed++
		if fl&isa.FlagHasDst != 0 {
			s.physUsed++
			if s.shared == nil {
				dst := s.prog.Insts[pc].Dst
				s.specRegs[dst] = s.trVal(int(d))
				s.lastWriter[dst] = int64(d)
			}
		}
		if fl&isa.FlagStore != 0 {
			addr := s.trAddr(int(d))
			if s.shared == nil {
				s.mem[addr>>3] = s.trVal(int(d))
			}
			s.inflightSt[addr>>3]++
		}
		s.instsMain++
		if fl&isa.FlagBranch != 0 {
			s.branchesMain++
		}
		if s.ev != nil {
			// Subscribe to incomplete producers; an instruction with none
			// enters the ready queue directly (it has the largest dynamic
			// index in flight, so appending keeps the queue sorted).
			w1 := s.watch(s.trProd1(int(d)), d)
			w2 := s.watch(s.trProd2(int(d)), d)
			if !w1 && !w2 {
				s.ev.readyQ = append(s.ev.readyQ, d)
			}
		}
		budget--
		active = true
	}

	// P-thread dispatch with leftover rename bandwidth.
	if s.liveCtxs == 0 {
		return active
	}
	for c := range s.ctxs {
		ctx := &s.ctxs[c]
		if !ctx.active || budget == 0 {
			continue
		}
		for budget > 0 && ctx.dispatched < ctx.fetched && ctx.blockReadyAt <= s.now {
			j := ctx.dispatched
			if j >= ctx.limit() {
				// Aborted tail: consume without occupying resources.
				ctx.dispatched++
				active = true
				continue
			}
			if s.rsUsed >= s.cfg.RSSize {
				break
			}
			in := ctx.pt.Body[j]
			if in.HasDst() && s.physUsed >= s.cfg.PhysRegs {
				break
			}
			s.rsUsed++
			if in.HasDst() {
				s.physUsed++
			}
			ctx.dispatched++
			s.instsPth++
			budget--
			active = true
		}
	}
	return active
}

// spawn starts an instance of installed p-thread ti on a free context, if
// any.
//
//lab:hotpath
func (s *Simulator) spawn(ti int32) {
	pt := s.pthreads[ti]
	si := s.statOf[ti]
	stat := &s.pthStats[si]
	// A batch instance consumes the next shared spawn record whether or not
	// the spawn lands: the oracle emits one record per trigger site, and a
	// drop is per-instance context pressure, not a property of the record.
	var rec *spawnRec
	if g := s.shared; g != nil {
		rec = &g.recs[s.spawnCursor]
		s.spawnCursor++
	}
	var ctx *pctx
	for c := range s.ctxs {
		if !s.ctxs[c].active {
			ctx = &s.ctxs[c]
			break
		}
	}
	if ctx == nil {
		s.res.DroppedSpawns++
		stat.Dropped++
		return
	}
	spawnID := int32(len(s.spawnUseful))
	s.spawnUseful = append(s.spawnUseful, false)
	s.spawnStatic = append(s.spawnStatic, si)
	if rec != nil {
		ctx.initShared(pt, spawnID, si, s.now, rec, s.shared.masks[ti])
		if rec.abortAt < len(pt.Body) {
			stat.Aborted++
		}
	} else {
		ctx.init(pt, spawnID, si, s)
	}
	s.liveCtxs++
	s.res.Spawns++
	stat.Spawns++
}

// ----------------------------------------------------------------- fetch --

//lab:hotpath
func (s *Simulator) fetchStage() bool {
	// Single i-cache port: an eligible p-thread block fetch displaces the
	// main thread this cycle (DDMT gives latency-critical p-threads fetch
	// priority; this contention is the overhead LOH models).
	if s.pthFetch() {
		return true
	}
	if s.fetchIdx >= s.n {
		return false
	}
	// A mispredicted branch blocks fetch until it resolves.
	resolved := false
	if s.stalledOnBranch >= 0 {
		d := s.stalledOnBranch
		if s.state[d]&fIssued != 0 && s.completeAt[d] <= s.now {
			s.fetchResumeAt = s.completeAt[d] + int64(s.cfg.RedirectPen)
			s.stalledOnBranch = -1
			resolved = true
		} else {
			return false
		}
	}
	if s.now < s.fetchResumeAt || s.fqLen >= s.cfg.FetchQCap {
		return resolved
	}
	// I-cache access for the block containing the next PC. Instruction
	// addresses live in their own space at 8 bytes per instruction.
	iaddr := int64(s.trPC(s.fetchIdx)) * 8
	done := s.hier.FetchBlock(iaddr, s.now, false)
	if done > s.now+int64(s.cfg.Hier.L1I.HitLatency) {
		s.fetchResumeAt = done // i-cache miss: stall until fill
		return true
	}
	width := s.cfg.FetchWidth
	if space := s.cfg.FetchQCap - s.fqLen; space < width {
		width = space
	}
	for w := 0; w < width && s.fetchIdx < s.n; w++ {
		d := int32(s.fetchIdx)
		pc := s.trPC(s.fetchIdx)
		fl := s.trFlags(s.fetchIdx, pc)
		s.fetchQ[(s.fqHead+s.fqLen)%s.cfg.FetchQCap] = fetchEnt{dyn: d, availAt: s.now + int64(s.cfg.FrontEndDepth)}
		s.fqLen++
		s.fetchIdx++
		if fl&isa.FlagBranch != 0 {
			taken := s.trTaken(int(d))
			pred, btbHit := s.bp.PredictAndUpdate(int64(pc), taken, int64(s.prog.Insts[pc].Target))
			if pred != taken {
				s.state[d] |= fMispred
				s.stalledOnBranch = d
				break
			}
			if taken {
				if !btbHit {
					s.fetchResumeAt = s.now + 2 // BTB miss bubble
				}
				break // redirect: stop fetching this cycle
			}
		} else if fl&isa.FlagJump != 0 {
			if !s.bp.PredictJump(int64(pc), int64(s.prog.Insts[pc].Target)) {
				s.fetchResumeAt = s.now + 2
			}
			break
		}
	}
	return true
}

// pthFetch performs at most one p-thread block fetch, returning whether the
// i-cache port was consumed.
//
//lab:hotpath
func (s *Simulator) pthFetch() bool {
	nctx := len(s.ctxs)
	if nctx == 0 || s.liveCtxs == 0 {
		return false
	}
	for off := 0; off < nctx; off++ {
		c := (s.rrCtx + off) % nctx
		ctx := &s.ctxs[c]
		if !ctx.active || ctx.fetched >= len(ctx.pt.Body) || ctx.nextBlockAt > s.now {
			continue
		}
		k := len(ctx.pt.Body) - ctx.fetched
		if k > s.cfg.FetchWidth {
			k = s.cfg.FetchWidth
		}
		iaddr := int64(ctx.pt.TriggerPC)*8 + int64(ctx.fetched)*8
		done := s.hier.FetchBlock(iaddr, s.now, true)
		ctx.fetched += k
		ctx.blockReadyAt = done + int64(s.cfg.PthFrontEnd)
		// Pacing: one instruction per cycle overall.
		ctx.nextBlockAt = s.now + int64(k)
		s.res.PInstsFetched += int64(k)
		s.rrCtx = (c + 1) % nctx
		return true
	}
	return false
}

// -------------------------------------------------------------- finalize --

func (s *Simulator) finalize() {
	s.res.Cycles = s.now
	s.res.DemandL2Misses = s.hier.DemandL2Misses
	s.res.CacheCounts = s.hier.Counts
	s.res.Bpred = s.bp.Stats
	s.res.Events = energy.Events{
		Cycles:          s.now,
		FetchBlocksMain: s.hier.Counts.L1IMain,
		FetchBlocksPth:  s.hier.Counts.L1IPth,
		InstsMain:       s.instsMain,
		InstsPth:        s.instsPth,
		ALUMain:         s.aluMain,
		ALUPth:          s.aluPth,
		MemMain:         s.memMainAcc,
		MemPth:          s.memPthAcc,
		L2Main:          s.hier.Counts.L2Main,
		L2Pth:           s.hier.Counts.L2Pth,
		BranchesMain:    s.branchesMain,
	}
	s.res.Energy = energy.Compute(s.cfg.Energy, s.res.Events)
	// Result must be byte-stable (the JSON reports and the determinism
	// guarantee depend on it): emit PerPThread in ascending ID order via an
	// allocation-free insertion sort (the set is tiny). With no p-threads
	// installed the field stays nil, exactly like a freshly built simulator.
	if len(s.pthStats) > 0 {
		out := append(s.perPBuf[:0], s.pthStats...)
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		s.perPBuf = out
		s.res.PerPThread = out
	}
}

// Run is a convenience that builds and runs a simulator in one call.
func Run(cfg Config, tr *trace.Trace, pthreads []*PThread) (*Result, error) {
	return RunContext(context.Background(), cfg, tr, pthreads)
}

// RunContext is Run with cancellation: the simulation aborts with ctx.Err()
// as soon as ctx is done, even deep inside a long run.
func RunContext(ctx context.Context, cfg Config, tr *trace.Trace, pthreads []*PThread) (*Result, error) {
	s, err := NewSimulator(cfg, tr, pthreads)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}
