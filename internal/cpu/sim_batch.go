package cpu

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// BatchSimulator advances K independent config instances over one streaming
// pass of a shared trace: a struct-of-simulators that walks the trace's
// column chunks once per run via a trace.SharedCursor and, within each
// chunk, advances every live instance through batchWindow-sized
// sub-windows before touching the next. The instances share nothing but
// the read-only trace —
// each keeps its own calendar, ROB, caches, and branch-predictor state —
// so per-instance Results are bit-identical to serial Simulator runs; the
// win is purely cache locality: K instances stream each chunk's columns
// while they are hot instead of each re-streaming the whole trace.
//
// Like Simulator, a BatchSimulator is reusable: Reset retains every
// per-instance pool (the instances themselves are a grow-only pool), so
// steady-state reuse performs no allocation. The Result and error slices
// returned by Run/RunContext borrow batch-owned memory and are valid only
// until the next Reset; Clone Results that must outlive the reuse cycle.
//
// Only the event engine can batch: it is resumable at chunk boundaries
// (see Simulator.runEventUntil). Configs selecting EngineBatched are
// normalized to the event engine per instance; EngineScan is rejected —
// callers fall back to serial runs for the reference engine.
type BatchSimulator struct {
	sims     []*Simulator // grow-only instance pool; sims[:k] active
	k        int
	tr       *trace.Trace
	vw       *trace.DecodedView // shared flat decode of tr's columns
	oracle   *spawnOracle       // shared dispatch-time architectural replay
	maxFetch int                // widest instance FetchWidth (replay overshoot bound)
	errs     []error
	results  []*Result
}

// batchWindow is the synchronization grain, in trace entries: within each
// column chunk, every live instance is advanced batchWindow fetches before
// any instance touches the next sub-window. Finer than the 32Ki-entry
// chunk so one sub-window's columns plus K instances' hot state fit in L2;
// purely a locality knob — Results are identical at any grain.
const batchWindow = 1 << 15

// NewBatchSimulator returns an empty batch; Reset installs a run.
func NewBatchSimulator() *BatchSimulator { return &BatchSimulator{} }

// Reset reinitializes the batch for one run of tr under cfgs[i] with
// pthreads[i] installed in instance i's trigger table. pthreads may be nil
// (every instance runs an unoptimized baseline) or one slice per config.
// Instance pools from previous runs are retained, so steady-state reuse
// allocates nothing.
func (b *BatchSimulator) Reset(cfgs []Config, tr *trace.Trace, pthreads [][]*PThread) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("cpu: batch needs at least one config")
	}
	if pthreads != nil && len(pthreads) != len(cfgs) {
		return fmt.Errorf("cpu: batch has %d configs but %d p-thread sets", len(cfgs), len(pthreads))
	}
	for len(b.sims) < len(cfgs) {
		b.sims = append(b.sims, &Simulator{})
	}
	b.k = len(cfgs)
	b.tr = tr
	b.errs = grow(b.errs, len(cfgs))
	b.results = grow(b.results, len(cfgs))
	for i, cfg := range cfgs {
		b.errs[i] = nil
		b.results[i] = nil
		switch cfg.Engine {
		case EngineEvent, EngineBatched:
			cfg.Engine = EngineEvent
		default:
			return fmt.Errorf("cpu: engine %q cannot batch (valid engines in a batch: event, batched); run it serially", cfg.Engine)
		}
		var pts []*PThread
		if pthreads != nil {
			pts = pthreads[i]
		}
		if err := b.sims[i].Reset(cfg, tr, pts); err != nil {
			return fmt.Errorf("cpu: batch config %d: %w", i, err)
		}
	}
	// One decoded view of the trace columns is shared by every instance:
	// decoding (absolute producers, unpacked branch bits, per-entry
	// predicate bytes) happens once per chunk per batch instead of being
	// re-derived per access per instance. Resetting to a trace the view
	// has already decoded keeps it verbatim.
	if b.vw == nil {
		b.vw = trace.NewDecodedView()
	}
	b.vw.Reset(tr)
	b.maxFetch = 0
	for i := 0; i < b.k; i++ {
		b.sims[i].vw = b.vw
		if w := b.sims[i].cfg.FetchWidth; w > b.maxFetch {
			b.maxFetch = w
		}
	}
	// The spawn oracle replays the dispatch-time architectural state once
	// for the whole batch and precomputes spawn records per distinct
	// p-thread set; instances alias the records and skip their own
	// register/memory bookkeeping at dispatch. A width-1 batch keeps the
	// serial spawn path: replaying for a single consumer would walk the
	// trace twice for no shared work.
	if b.k > 1 {
		if b.oracle == nil {
			b.oracle = &spawnOracle{}
		}
		b.oracle.reset(tr, b.vw, b.sims[:b.k])
	}
	return nil
}

// Run simulates the batch to completion. See RunContext.
func (b *BatchSimulator) Run() ([]*Result, []error, error) {
	return b.RunContext(context.Background())
}

// RunContext simulates every instance to completion in one chunk-ordered
// pass over the shared trace. It returns one Result and one error slot per
// config: results[i] is non-nil exactly when errs[i] is nil, and a failed
// instance (deadlock guard, cycle cap) never disturbs the others. The
// batch-level error is non-nil only for whole-batch aborts (context
// cancellation), in which case the slices are nil. Returned slices and
// Results borrow batch-owned memory, valid until the next Reset.
//
//lab:hotpath
func (b *BatchSimulator) RunContext(ctx context.Context) ([]*Result, []error, error) {
	if b.k == 0 {
		return nil, nil, fmt.Errorf("cpu: batch not reset")
	}
	sc := b.tr.SharedCursor()
	for sc.Next() {
		lo, hi := sc.Window()
		// Decode through the next chunk, not just this one: a fetch cycle
		// beginning inside the window may overshoot the boundary by up to
		// FetchWidth-1 entries before the pause check at the loop top sees
		// the stop index.
		b.vw.EnsureDecoded(hi + 1)
		for at := lo; at < hi; at += batchWindow {
			stop := at + batchWindow
			if stop >= hi {
				stop = hi
			}
			if stop >= b.tr.Len() {
				stop = -1 // final window: drain in-flight work to completion
			}
			// Replay the shared architectural state past the window stop by
			// the widest fetch overshoot: dispatch never passes fetch, so
			// every spawn record an instance can consume this window exists
			// before any instance runs.
			if b.k > 1 {
				replayTo := b.tr.Len()
				if stop >= 0 && stop+b.maxFetch < replayTo {
					replayTo = stop + b.maxFetch
				}
				b.oracle.replay(replayTo)
			}
			for i := 0; i < b.k; i++ {
				if b.errs[i] != nil {
					continue
				}
				if err := b.sims[i].runEventUntil(ctx, stop); err != nil {
					if ctx.Err() != nil {
						return nil, nil, err
					}
					b.errs[i] = err
					if g := b.sims[i].shared; g != nil {
						g.dropMember(b.sims[i])
					}
				}
			}
			if b.k > 1 {
				b.oracle.reclaim()
			}
		}
	}
	for i := 0; i < b.k; i++ {
		if b.errs[i] != nil {
			continue
		}
		s := b.sims[i]
		if !s.done() {
			// Empty trace (no chunk windows): nothing to stream, but the
			// run must still complete and finalize.
			if err := s.runEventUntil(ctx, -1); err != nil {
				if ctx.Err() != nil {
					return nil, nil, err
				}
				b.errs[i] = err
				continue
			}
		}
		s.finalize()
		b.results[i] = &s.res
	}
	return b.results, b.errs, nil
}
