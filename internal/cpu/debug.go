package cpu

import "fmt"

// debugState renders a one-line summary of the machine state for deadlock
// diagnostics.
func (s *Simulator) debugState() string {
	head := "empty"
	if s.robLen > 0 {
		d := s.rob[s.robHead]
		head = fmt.Sprintf("dyn=%d pc=%d op=%s st=%b done=%d",
			d, s.tr.PC(int(d)), s.inst(d).Op, s.state[d], s.completeAt[d])
	}
	ctxs := ""
	for i := range s.ctxs {
		c := &s.ctxs[i]
		if !c.active {
			continue
		}
		dep := ""
		if c.issued < c.dispatched && c.issued < c.limit() {
			j := c.issued
			d1, d2 := c.dep1[j], c.dep2[j]
			dep = fmt.Sprintf(" next=%s dep1{k=%d i=%d rdy=%v} dep2{k=%d i=%d rdy=%v}",
				c.pt.Body[j].Op, d1.kind, d1.idx, s.pdepReady(c, d1),
				d2.kind, d2.idx, s.pdepReady(c, d2))
		}
		ctxs += fmt.Sprintf(" ctx%d[pt=%d f=%d d=%d i=%d fr=%d lim=%d%s]",
			i, c.pt.ID, c.fetched, c.dispatched, c.issued, c.freed, c.limit(), dep)
	}
	return fmt.Sprintf("rob=%d rs=%d phys=%d fq=%d fetchIdx=%d/%d resume=%d stallBr=%d head{%s} mshr=%d%s",
		s.robLen, s.rsUsed, s.physUsed, s.fqLen, s.fetchIdx, s.n,
		s.fetchResumeAt, s.stalledOnBranch, head, s.hier.MSHR.InFlight(s.now), ctxs) + fmt.Sprintf(" busFreeAt=%d now=%d", s.hier.BusFreeAt(), s.now)
}
