package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// aluChain builds a loop whose body is 8 adds all on one register (a serial
// dependence chain), iterated n times.
func aluChain(n int) *isa.Program {
	b := isa.NewBuilder("chain")
	b.MovI(1, 0)
	b.MovI(10, int64(n))
	b.Label("top")
	for i := 0; i < 8; i++ {
		b.AddI(1, 1, 1)
	}
	b.AddI(11, 11, 1)
	b.CmpLT(12, 11, 10)
	b.BrNZ(12, "top")
	b.Halt()
	return b.MustBuild()
}

// aluParallel builds a loop whose body is 8 adds on 8 independent registers,
// iterated n times.
func aluParallel(n int) *isa.Program {
	b := isa.NewBuilder("par")
	b.MovI(10, int64(n))
	b.Label("top")
	for r := isa.Reg(1); r <= 8; r++ {
		b.AddI(r, r, 1)
	}
	b.AddI(11, 11, 1)
	b.CmpLT(12, 11, 10)
	b.BrNZ(12, "top")
	b.Halt()
	return b.MustBuild()
}

func runProg(t *testing.T, p *isa.Program, pthreads []*PThread) *Result {
	t.Helper()
	tr := trace.MustRun(p)
	res, err := Run(noPrefConfig(), tr, pthreads)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// noPrefConfig disables the conventional stride prefetcher: these tests
// exercise the p-thread machinery on strided workloads that a stride
// prefetcher would otherwise cover.
func noPrefConfig() Config {
	cfg := DefaultConfig()
	cfg.Hier.StrideEntries = 0
	return cfg
}

func TestBaselineCommitsEverything(t *testing.T) {
	p := aluChain(100)
	tr := trace.MustRun(p)
	res, err := Run(DefaultConfig(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != int64(tr.Len()) {
		t.Errorf("committed %d of %d", res.Committed, tr.Len())
	}
	if res.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
	if res.Events.InstsMain != res.Committed {
		t.Errorf("dispatched %d != committed %d", res.Events.InstsMain, res.Committed)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// 1000 iterations × 8 chained adds: the r1 chain bounds execution at
	// ≥ 8000 cycles no matter the width.
	res := runProg(t, aluChain(1000), nil)
	if res.Cycles < 8000 {
		t.Errorf("dependence chain finished in %d cycles", res.Cycles)
	}
}

func TestParallelOpsExploitWidth(t *testing.T) {
	chain := runProg(t, aluChain(1000), nil)
	par := runProg(t, aluParallel(1000), nil)
	if par.Cycles >= chain.Cycles {
		t.Errorf("independent ops (%d cycles) not faster than chain (%d)", par.Cycles, chain.Cycles)
	}
	if par.IPC() < 2 {
		t.Errorf("parallel IPC = %.2f, want ILP > 2", par.IPC())
	}
}

// strideWalk builds a loop reading a huge array with one 64-byte-stride load
// per iteration plus filler work, so the window can only expose limited MLP.
// Returns the program and the static PCs of the induction and the load.
func strideWalk(iters int, filler int) (*isa.Program, int, int) {
	const (
		rI    = isa.Reg(1)
		rN    = isa.Reg(2)
		rAddr = isa.Reg(3)
		rV    = isa.Reg(4)
		rC    = isa.Reg(5)
		rAcc  = isa.Reg(6)
		rF    = isa.Reg(7)
	)
	words := iters*8 + 8
	mem := make([]int64, words)
	for i := range mem {
		mem[i] = int64(i)
	}
	b := isa.NewBuilder("stride")
	b.MovI(rI, 0)
	b.MovI(rN, int64(iters))
	b.Label("top")
	inducPC := b.AddI(rI, rI, 1)
	b.ShlI(rAddr, rI, 6) // i * 64 bytes: new cache block each iteration
	loadPC := b.Load(rV, rAddr, 0)
	b.Add(rAcc, rAcc, rV)
	for f := 0; f < filler; f++ {
		b.AddI(rF, rF, 1) // dependent filler chain occupies the window
	}
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild(), inducPC, loadPC
}

// stridePThread builds a hand-constructed p-thread for strideWalk: trigger on
// the induction, skip `ahead` iterations, prefetch the future load address.
func stridePThread(inducPC, loadPC, ahead int) *PThread {
	return &PThread{
		ID:        0,
		TriggerPC: int32(inducPC),
		Body: []isa.Inst{
			{Op: isa.AddI, Dst: 1, Src1: 1, Imm: int64(ahead)}, // unrolled induction
			{Op: isa.ShlI, Dst: 3, Src1: 1, Imm: 6},
			{Op: isa.Load, Dst: 4, Src1: 3},
		},
		Targets:  []int{2},
		TargetPC: int32(loadPC),
	}
}

func TestMissesDominateBaseline(t *testing.T) {
	p, _, _ := strideWalk(400, 24)
	res := runProg(t, p, nil)
	if res.DemandL2Misses < 350 {
		t.Errorf("demand L2 misses = %d, want ~400", res.DemandL2Misses)
	}
	memCycles := res.TimeBreakdown[CatMem]
	if float64(memCycles) < 0.2*float64(res.Cycles) {
		t.Errorf("mem stall cycles = %d of %d, want memory-bound", memCycles, res.Cycles)
	}
}

func TestPreExecutionCoversMissesAndSpeedsUp(t *testing.T) {
	p, inducPC, loadPC := strideWalk(400, 24)
	tr := trace.MustRun(p)
	base, err := Run(noPrefConfig(), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(noPrefConfig(), tr, []*PThread{stridePThread(inducPC, loadPC, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Spawns == 0 {
		t.Fatal("no p-threads spawned")
	}
	covered := pre.FullCovered + pre.PartCovered
	if covered < base.DemandL2Misses/2 {
		t.Errorf("covered %d of %d baseline misses", covered, base.DemandL2Misses)
	}
	if pre.Cycles >= base.Cycles {
		t.Errorf("pre-execution did not speed up: %d vs %d cycles", pre.Cycles, base.Cycles)
	}
	if pre.PInstsExec == 0 {
		t.Error("no p-instructions executed")
	}
	if pre.Usefulness() <= 0 {
		t.Error("usefulness must be positive")
	}
	// Energy: pre-execution consumed p-thread energy.
	if pre.Energy.PthTotal() <= 0 {
		t.Error("p-thread energy must be positive")
	}
	if base.Energy.PthTotal() != 0 {
		t.Error("baseline must have zero p-thread energy")
	}
}

func TestTimeBreakdownSumsToCycles(t *testing.T) {
	p, _, _ := strideWalk(100, 10)
	res := runProg(t, p, nil)
	var sum int64
	for _, c := range res.TimeBreakdown {
		sum += c
	}
	if sum != res.Cycles {
		t.Errorf("breakdown sums to %d, want %d", sum, res.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	p, inducPC, loadPC := strideWalk(150, 12)
	tr := trace.MustRun(p)
	pt := []*PThread{stridePThread(inducPC, loadPC, 8)}
	r1, err1 := Run(noPrefConfig(), tr, pt)
	r2, err2 := Run(noPrefConfig(), tr, pt)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Cycles != r2.Cycles || r1.EnergyTotal() != r2.EnergyTotal() ||
		r1.Spawns != r2.Spawns || r1.FullCovered != r2.FullCovered {
		t.Error("simulation is not deterministic")
	}
}

func TestDroppedSpawnsWhenContextsExhausted(t *testing.T) {
	p, inducPC, loadPC := strideWalk(300, 2)
	tr := trace.MustRun(p)
	cfg := noPrefConfig()
	cfg.Contexts = 2 // one p-thread context only
	res, err := Run(cfg, tr, []*PThread{stridePThread(inducPC, loadPC, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedSpawns == 0 {
		t.Error("a single context must drop some spawns on a hot trigger")
	}
}

func TestAbortedPThreadOnWildAddress(t *testing.T) {
	p, inducPC, loadPC := strideWalk(50, 4)
	tr := trace.MustRun(p)
	// Unrolling 10000 ahead computes addresses far past the array.
	res, err := Run(noPrefConfig(), tr, []*PThread{stridePThread(inducPC, loadPC, 100000)})
	if err != nil {
		t.Fatal(err)
	}
	var aborted int64
	for _, st := range res.PerPThread {
		aborted += st.Aborted
	}
	if aborted == 0 {
		t.Error("wild addresses must abort p-thread instances")
	}
	if res.FullCovered != 0 {
		t.Error("aborted p-threads must not cover misses")
	}
}

func TestUselessPThreadWastesEnergyWithoutCoverage(t *testing.T) {
	p, inducPC, _ := strideWalk(200, 8)
	tr := trace.MustRun(p)
	// A p-thread computing addresses in a never-accessed region: always
	// useless, still consumes energy.
	useless := &PThread{
		ID:        0,
		TriggerPC: int32(inducPC),
		Body: []isa.Inst{
			{Op: isa.AddI, Dst: 10, Src1: 1, Imm: 1},
			{Op: isa.ShlI, Dst: 11, Src1: 10, Imm: 3},
			{Op: isa.Load, Dst: 12, Src1: 11},
		},
		Targets: []int{2},
	}
	res, err := Run(noPrefConfig(), tr, []*PThread{useless})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawns == 0 {
		t.Fatal("no spawns")
	}
	if res.Usefulness() > 0.5 {
		t.Errorf("usefulness = %.2f for an off-target p-thread", res.Usefulness())
	}
	if res.Energy.PthTotal() <= 0 {
		t.Error("useless p-threads must still consume energy")
	}
}

func TestPerPThreadStatsConsistency(t *testing.T) {
	p, inducPC, loadPC := strideWalk(200, 8)
	tr := trace.MustRun(p)
	res, err := Run(noPrefConfig(), tr, []*PThread{stridePThread(inducPC, loadPC, 12)})
	if err != nil {
		t.Fatal(err)
	}
	var spawns, useful, insts int64
	for _, st := range res.PerPThread {
		spawns += st.Spawns
		useful += st.UsefulSpawns
		insts += st.InstsExecuted
	}
	if spawns != res.Spawns || useful != res.UsefulSpawns || insts != res.PInstsExec {
		t.Error("per-p-thread stats do not sum to aggregates")
	}
	if res.UsefulSpawns > res.Spawns {
		t.Error("useful spawns cannot exceed spawns")
	}
}

func TestBranchMispredictsCostCycles(t *testing.T) {
	// Data-dependent unpredictable branches (hash of loop counter) vs the
	// same loop with an always-taken branch path.
	build := func(chaotic bool) *isa.Program {
		b := isa.NewBuilder("br")
		const (
			rI, rN, rH, rC, rAcc = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
		)
		b.MovI(rI, 0)
		b.MovI(rN, 2000)
		b.Label("top")
		b.AddI(rI, rI, 1)
		if chaotic {
			b.MulI(rH, rI, 2654435761)
			b.ShrI(rH, rH, 13)
			b.AndI(rC, rH, 1)
		} else {
			b.MovI(rC, 1)
		}
		b.BrZ(rC, "skip")
		b.AddI(rAcc, rAcc, 1)
		b.Label("skip")
		b.CmpLT(rC, rI, rN)
		b.BrNZ(rC, "top")
		b.Halt()
		return b.MustBuild()
	}
	chaotic := runProg(t, build(true), nil)
	steady := runProg(t, build(false), nil)
	if chaotic.Bpred.Mispredicts <= steady.Bpred.Mispredicts {
		t.Errorf("chaotic branches mispredicted %d <= steady %d",
			chaotic.Bpred.Mispredicts, steady.Bpred.Mispredicts)
	}
	// Compare per-instruction cost since instruction counts differ.
	cpiC := float64(chaotic.Cycles) / float64(chaotic.Committed)
	cpiS := float64(steady.Cycles) / float64(steady.Committed)
	if cpiC <= cpiS {
		t.Errorf("mispredicts did not cost cycles: CPI %.3f vs %.3f", cpiC, cpiS)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{Cycles: 100, Committed: 150, Spawns: 10, UsefulSpawns: 5, PInstsExec: 30}
	if r.IPC() != 1.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.Usefulness() != 0.5 {
		t.Errorf("usefulness = %v", r.Usefulness())
	}
	if r.PInstIncrease() != 0.2 {
		t.Errorf("p-inst increase = %v", r.PInstIncrease())
	}
	empty := &Result{}
	if empty.IPC() != 0 || empty.Usefulness() != 0 || empty.PInstIncrease() != 0 {
		t.Error("empty result metrics must be zero")
	}
}

func TestStallCategoryNames(t *testing.T) {
	want := map[StallCategory]string{
		CatMem: "mem", CatL2: "L2", CatExec: "exec", CatCommit: "commit", CatFetch: "fetch",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("category %d = %q, want %q", c, c.String(), name)
		}
	}
}

func TestInvalidPThreadRejectedBySimulator(t *testing.T) {
	p := aluChain(10)
	tr := trace.MustRun(p)
	bad := &PThread{ID: 0, TriggerPC: 0, Body: []isa.Inst{{Op: isa.Store, Src1: 1, Src2: 2}}, Targets: []int{0}}
	if _, err := Run(DefaultConfig(), tr, []*PThread{bad}); err == nil {
		t.Error("simulator accepted an invalid p-thread")
	}
}
