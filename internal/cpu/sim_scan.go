package cpu

import (
	"context"
	"fmt"
)

// runScan is the reference engine: the pre-refactor per-cycle loop that
// rescans the whole reservation-station window every cycle. It is retained
// as the bit-exact behavioural specification of the event-driven engine
// (TestEnginesAgree) and as the comparison point for BenchmarkSimHotLoop.
func (s *Simulator) runScan(ctx context.Context) (*Result, error) {
	maxCycles := s.maxCycles()
	lastCommit := int64(0)
	for !s.done() {
		if s.now&ctxCheckMask == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		if s.now >= maxCycles {
			return nil, fmt.Errorf("cpu: exceeded %d cycles (deadlock?)", maxCycles)
		}
		if s.now-lastCommit > noCommitLimit {
			return nil, fmt.Errorf("cpu: no commit in 1M cycles at cycle %d (deadlock): %s", s.now, s.debugState())
		}
		committed := s.commitStage()
		if committed > 0 {
			lastCommit = s.now
		}
		s.attributeCycle(committed)
		s.issueStageScan()
		s.dispatchStage()
		s.fetchStage()
		s.now++
	}
	s.finalize()
	return &s.res, nil
}

// issueStageScan walks the ROB oldest-first every cycle, freeing completed
// reservation stations and issuing whatever is ready, then gives p-threads
// the leftover bandwidth.
func (s *Simulator) issueStageScan() {
	issueBudget := s.cfg.IssueWidth
	loadBudget := s.cfg.LoadPorts
	storeBudget := s.cfg.StorePorts

	for i := 0; i < s.robLen && issueBudget > 0; i++ {
		d := s.rob[(s.robHead+i)%s.cfg.ROBSize]
		st := s.state[d]
		if st&fIssued != 0 {
			if st&fRSFreed == 0 && s.completeAt[d] <= s.now {
				s.rsUsed--
				s.state[d] |= fRSFreed
			}
			continue
		}
		if !s.ready(s.tr.Prod1(int(d))) || !s.ready(s.tr.Prod2(int(d))) {
			continue
		}
		if issued, _ := s.issueMain(d, &loadBudget, &storeBudget); issued {
			issueBudget--
		}
	}
	s.issuePctx(&issueBudget, &loadBudget)
}
