// Package cpu implements the cycle-level timing simulator: a dynamically
// scheduled, multithreaded, 6-wide superscalar processor with a 15-stage
// pipeline, 128-entry ROB, 80 reservation stations, 384 physical registers
// and 8 thread contexts, matching the paper's default configuration. It also
// implements the DDMT pre-execution machinery: trigger-table spawning,
// lightweight p-thread contexts (reservation stations and physical registers
// but no ROB/LSQ occupancy, no retirement), paced p-thread fetch that
// contends with the main thread for the single i-cache port, and
// prefetch-into-L2 target loads.
//
// The simulator is trace-driven for the main thread (the functional
// interpreter supplies the correct-path dynamic instruction stream with
// exact dependence and address information) but p-threads execute for real:
// at spawn they copy live-in register values from the main thread's
// dispatch-time state and run their bodies functionally, so a p-thread whose
// assumed path diverges from the main thread's actual path computes and
// prefetches a useless address — the failure mode the selection framework
// reasons about.
package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/energy"
)

// Config parameterizes the processor.
type Config struct {
	FetchWidth    int // instructions fetched per cycle (6)
	DispatchWidth int // instructions renamed/dispatched per cycle (6)
	IssueWidth    int // instructions issued per cycle, all threads (6)
	CommitWidth   int // instructions committed per cycle (6)
	ROBSize       int // re-order buffer entries (128)
	RSSize        int // reservation stations, shared by all threads (80)
	PhysRegs      int // physical registers (384)
	ArchRegs      int // architectural registers backed by PhysRegs (64)
	FrontEndDepth int // fetch-to-dispatch latency in cycles (8 of 15 stages)
	RedirectPen   int // extra cycles to restart fetch after a branch resolves (2)
	LoadPorts     int // loads issued per cycle (2)
	StorePorts    int // stores issued per cycle (1)
	Contexts      int // hardware thread contexts, including the main thread (8)
	FetchQCap     int // fetch-buffer capacity in instructions (24)

	// PthFrontEnd is the fetch-to-dispatch latency for p-thread blocks;
	// p-instructions inject directly at rename (lightweight mode).
	PthFrontEnd int

	Hier   cache.HierConfig
	Bpred  bpred.Config
	Energy energy.Params

	// MaxCycles aborts a run that exceeds it (deadlock guard). Zero means
	// a generous default.
	MaxCycles int64

	// Engine selects the simulation engine. The default (EngineEvent) is the
	// event-driven wakeup scheduler: completing producers wake their waiting
	// consumers, a ready queue feeds issue directly, and a calendar queue of
	// future completion events lets quiescent cycles be skipped in bulk.
	// EngineScan is the reference implementation that rescans the whole
	// reservation-station window every cycle; it exists to pin the event
	// engine bit-for-bit (see TestEnginesAgree) and as the benchmark
	// comparison point for BenchmarkSimHotLoop. Both engines produce
	// identical Results on every workload.
	Engine Engine
}

// Engine names a simulation engine. The zero value is EngineEvent, so the
// default Config keeps selecting the event-driven scheduler. It is a typed
// string (not an int enum) so existing JSON fingerprints and configs that
// spelled the engine as a string keep their byte representation.
type Engine string

// Simulation engines.
const (
	// EngineEvent is the event-driven wakeup scheduler (the default).
	EngineEvent Engine = ""
	// EngineScan is the reference per-cycle window rescan.
	EngineScan Engine = "scan"
	// EngineBatched is the event engine driven through a BatchSimulator:
	// K config instances advance over one shared streaming pass of the
	// trace's column chunks. A single Simulator rejects it (batching is a
	// scheduling property, not a per-instance one); the experiments layer
	// normalizes it to EngineEvent per instance and enables batch
	// scheduling in sweeps.
	EngineBatched Engine = "batched"
)

// ParseEngine resolves an engine name from user input (flags, wire
// requests). It accepts the canonical constant values plus the spelled-out
// alias "event" for the default engine. Unknown names return one error
// listing every valid engine instead of silently defaulting.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "event":
		return EngineEvent, nil
	case "scan":
		return EngineScan, nil
	case "batched":
		return EngineBatched, nil
	}
	return "", fmt.Errorf("cpu: unknown engine %q (valid engines: event, scan, batched)", s)
}

// DefaultConfig returns the paper's processor configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    6,
		DispatchWidth: 6,
		IssueWidth:    6,
		CommitWidth:   6,
		ROBSize:       128,
		RSSize:        80,
		PhysRegs:      384,
		ArchRegs:      64,
		FrontEndDepth: 8,
		RedirectPen:   2,
		LoadPorts:     2,
		StorePorts:    1,
		Contexts:      8,
		FetchQCap:     24,
		PthFrontEnd:   2,
		Hier:          cache.DefaultHierConfig(),
		Bpred:         bpred.DefaultConfig(),
		Energy:        energy.DefaultParams(),
	}
}

const defaultMaxCycles = 2_000_000_000
