package cpu

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// wakeNode is one entry in a producer's wakeup list: a consumer waiting for
// the producer's completion. Nodes live in a preallocated pool and are
// chained through index+1 links (0 terminates), so registering and waking
// consumers never allocates in steady state.
type wakeNode struct {
	consumer int32
	next     int32 // index+1 into the pool, 0 = end of list
}

// evState is the event-driven engine's working state. The scheduler replaces
// the per-cycle window rescan with three structures:
//
//   - wakeup lists: every in-flight producer keeps the consumers waiting on
//     it; its completion event walks the list and drops each consumer's
//     pending-operand count,
//   - a ready queue: consumers with no pending operands, kept in ROB
//     (dynamic-index) order so issue priority matches the reference scan,
//   - a calendar queue: every issued instruction schedules its completion,
//     so the engine knows the next cycle anything can happen and skips
//     quiescent spans in one step.
type evState struct {
	cal    calendar
	popBuf []int32

	wakeHead []int32 // per dyn index: producer's wake-list head (index+1, 0 = empty)
	waitCnt  []uint8 // per dyn index: incomplete producers the consumer waits on
	nodes    []wakeNode
	freeNode int32 // free-list head (index+1, 0 = empty)

	readyQ    []int32 // dispatched, operands complete, not yet issued; ascending dyn
	unfreedQ  []int32 // issued, reservation station not yet freed; ascending dyn
	unfreedNx []int32 // scratch for the next cycle's unfreedQ
	freeable  int     // unfreedQ entries whose completion event has fired

	nextPoll int64 // next context-cancellation poll cycle
}

// reset prepares the engine state for a run over n dynamic instructions,
// reusing (and zeroing) the per-entry columns and keeping every queue's and
// the node pool's storage, so steady-state simulator reuse never allocates.
func (ev *evState) reset(n, robSize int) {
	if ev.popBuf == nil {
		ev.popBuf = make([]int32, 0, 64)
		ev.nodes = make([]wakeNode, 0, 2*robSize)
		ev.readyQ = make([]int32, 0, robSize)
		ev.unfreedQ = make([]int32, 0, robSize)
		ev.unfreedNx = make([]int32, 0, robSize)
	}
	ev.cal.reset()
	ev.popBuf = ev.popBuf[:0]
	ev.wakeHead = grow(ev.wakeHead, n)
	for i := range ev.wakeHead {
		ev.wakeHead[i] = 0
	}
	ev.waitCnt = grow(ev.waitCnt, n)
	for i := range ev.waitCnt {
		ev.waitCnt[i] = 0
	}
	ev.nodes = ev.nodes[:0]
	ev.freeNode = 0
	ev.readyQ = ev.readyQ[:0]
	ev.unfreedQ = ev.unfreedQ[:0]
	ev.unfreedNx = ev.unfreedNx[:0]
	ev.freeable = 0
	ev.nextPoll = 0
}

// runEvent is the event-driven engine loop. Cycle-for-cycle it performs the
// same stage sequence as runScan; additionally, when a cycle turns out to be
// completely inert it consults the calendar and every time-based wakeup
// condition for the earliest cycle anything can happen and jumps there,
// attributing the skipped span to the same CPI-stack category in bulk.
func (s *Simulator) runEvent(ctx context.Context) (*Result, error) {
	if err := s.runEventUntil(ctx, -1); err != nil {
		return nil, err
	}
	s.finalize()
	return &s.res, nil
}

// runEventUntil advances the event engine until the run completes or, when
// stopFetch >= 0, until the main-thread fetch index reaches stopFetch. The
// pause check sits between cycles (at the top of the loop), and all loop
// state — current cycle, deadlock watermark, cancellation poll — lives on
// the Simulator, so a paused run resumed by a later call executes exactly
// the cycles an uninterrupted run would: segmentation is invisible to the
// Result. BatchSimulator uses this to advance K instances chunk-window by
// chunk-window over one streaming pass of the trace columns. The caller
// owns finalize; a completed run (s.done()) must be finalized exactly once.
//
//lab:hotpath
func (s *Simulator) runEventUntil(ctx context.Context, stopFetch int) error {
	maxCycles := s.maxCycles()
	lastCommit := s.lastCommit
	ev := s.ev
	for !s.done() {
		if stopFetch >= 0 && s.fetchIdx >= stopFetch {
			break
		}
		if s.now >= ev.nextPoll {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			ev.nextPoll = s.now + ctxCheckMask + 1
		}
		if s.now >= maxCycles {
			return fmt.Errorf("cpu: exceeded %d cycles (deadlock?)", maxCycles)
		}
		if s.now-lastCommit > noCommitLimit {
			return fmt.Errorf("cpu: no commit in 1M cycles at cycle %d (deadlock): %s", s.now, s.debugState())
		}
		s.processEvents()
		committed := s.commitStage()
		if committed > 0 {
			lastCommit = s.now
		}
		cat := s.attributeCycle(committed)
		issued := s.issueStageEvent()
		dispatched := s.dispatchStage()
		fetched := s.fetchStage()
		if committed == 0 && !issued && !dispatched && !fetched {
			// Inert cycle: nothing can happen until the next completion
			// event or time-based wakeup. Jump there, attributing the
			// skipped cycles to the same stall category (the machine state
			// the attribution reads is frozen across the span).
			next := s.nextWakeAt()
			if lim := lastCommit + noCommitLimit + 1; next > lim {
				next = lim
			}
			if next > maxCycles {
				next = maxCycles
			}
			if next > s.now+1 {
				s.res.TimeBreakdown[cat] += next - s.now - 1
				s.now = next
				continue
			}
		}
		s.now++
	}
	s.lastCommit = lastCommit
	return nil
}

// processEvents delivers every completion due this cycle: main-thread
// completions mark their reservation station freeable and walk their wakeup
// lists, moving now-ready consumers into the ready queue; p-thread markers
// only assert that the per-context scan has work. A cycle where the events
// produce no pipeline activity is still skippable: every consequence of a
// completion (station free, commit, wakeup issue) registers as activity in
// the stage that performs it.
//
//lab:hotpath
func (s *Simulator) processEvents() {
	ev := s.ev
	ev.popBuf = ev.cal.pop(s.now, ev.popBuf[:0])
	if len(ev.popBuf) == 0 {
		return
	}
	for _, d := range ev.popBuf {
		if d < 0 {
			continue // p-thread body completion: issuePctx picks it up
		}
		ev.freeable++
		n := ev.wakeHead[d]
		ev.wakeHead[d] = 0
		for n != 0 {
			node := &ev.nodes[n-1]
			c, nx := node.consumer, node.next
			node.next = ev.freeNode
			ev.freeNode = n
			if ev.waitCnt[c]--; ev.waitCnt[c] == 0 {
				s.insertReady(c)
			}
			n = nx
		}
	}
}

// watch subscribes consumer d to producer prod's completion. It returns
// false without subscribing when the operand is already available (no
// producer, or the producer has issued and completed).
//
//lab:hotpath
func (s *Simulator) watch(prod int64, d int32) bool {
	if prod == trace.NoProducer {
		return false
	}
	if s.state[prod]&fIssued != 0 && s.completeAt[prod] <= s.now {
		return false
	}
	ev := s.ev
	var idx int32
	if ev.freeNode != 0 {
		idx = ev.freeNode
		ev.freeNode = ev.nodes[idx-1].next
	} else {
		ev.nodes = append(ev.nodes, wakeNode{})
		idx = int32(len(ev.nodes))
	}
	ev.nodes[idx-1] = wakeNode{consumer: d, next: ev.wakeHead[prod]}
	ev.wakeHead[prod] = idx
	ev.waitCnt[d]++
	return true
}

// insertSorted places d into a queue kept in ascending dynamic order (issue
// priority = ROB order, matching the reference scan).
//
//lab:hotpath
func insertSorted(q []int32, d int32) []int32 {
	lo, hi := 0, len(q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, 0)
	copy(q[lo+1:], q[lo:])
	q[lo] = d
	return q
}

//lab:hotpath
func (s *Simulator) insertReady(d int32) { s.ev.readyQ = insertSorted(s.ev.readyQ, d) }

//lab:hotpath
func (s *Simulator) insertUnfreed(d int32) { s.ev.unfreedQ = insertSorted(s.ev.unfreedQ, d) }

// issueStageEvent performs one cycle of issue under the event engine: a
// merged in-order walk of the unfreed (issued, station not yet returned) and
// ready queues, equivalent to the reference scan's oldest-first ROB walk but
// touching only instructions that can actually make progress. Returns
// whether anything issued, freed, or hit an MSHR rejection (a rejection
// forces cycle-by-cycle retry, because every retry re-probes the stateful
// hierarchy exactly as the reference engine does).
//
//lab:hotpath
func (s *Simulator) issueStageEvent() bool {
	ev := s.ev
	active := false
	issueBudget := s.cfg.IssueWidth
	loadBudget := s.cfg.LoadPorts
	storeBudget := s.cfg.StorePorts

	mshrFull := false
	switch {
	case ev.freeable == 0 && len(ev.readyQ) == 0:
		// Nothing to free, nothing to issue: the whole main-thread walk is
		// a no-op (the reference scan would visit only incomplete or
		// waiting entries, touching none of them).
	case ev.freeable == 0:
		// No station can free this cycle, so the unfreed queue keeps its
		// order untouched; walk only the ready queue, oldest first.
		rq := ev.readyQ
		ri, rw := 0, 0
		for issueBudget > 0 && ri < len(rq) {
			d := rq[ri]
			issued, full := s.issueMain(d, &loadBudget, &storeBudget)
			if !issued {
				// Port-starved or MSHR-rejected: retried next cycle.
				mshrFull = mshrFull || full
				rq[rw] = d
				rw++
				ri++
				continue
			}
			issueBudget--
			active = true
			ev.cal.push(s.completeAt[d], s.now, d)
			s.insertUnfreed(d)
			ri++
		}
		rw += copy(rq[rw:], rq[ri:])
		ev.readyQ = rq[:rw]
	default:
		// Stations can free: merge the unfreed and ready walks in ROB
		// (dynamic-index) order, exactly like the reference scan's single
		// oldest-first pass over the window.
		uq, rq := ev.unfreedQ, ev.readyQ
		nx := ev.unfreedNx[:0]
		ui, ri, rw := 0, 0, 0
		for issueBudget > 0 && (ui < len(uq) || ri < len(rq)) {
			if ui < len(uq) && (ri >= len(rq) || uq[ui] < rq[ri]) {
				d := uq[ui]
				ui++
				st := s.state[d]
				if st&fRSFreed != 0 {
					ev.freeable-- // station already freed at commit; drop
					continue
				}
				if s.completeAt[d] <= s.now {
					s.rsUsed--
					s.state[d] |= fRSFreed
					ev.freeable--
					active = true
					continue
				}
				nx = append(nx, d) // still executing; keep
				continue
			}
			d := rq[ri]
			issued, full := s.issueMain(d, &loadBudget, &storeBudget)
			if !issued {
				// Port-starved or MSHR-rejected: retried next cycle.
				mshrFull = mshrFull || full
				rq[rw] = d
				rw++
				ri++
				continue
			}
			issueBudget--
			active = true
			ev.cal.push(s.completeAt[d], s.now, d)
			nx = append(nx, d)
			ri++
		}
		// Issue bandwidth exhausted: everything older keeps its place.
		nx = append(nx, uq[ui:]...)
		rw += copy(rq[rw:], rq[ri:])
		ev.readyQ = rq[:rw]
		ev.unfreedQ, ev.unfreedNx = nx, uq[:0]
	}

	pctxActive, pctxFull := s.issuePctx(&issueBudget, &loadBudget)
	_ = storeBudget
	return active || pctxActive || mshrFull || pctxFull
}

// nextWakeAt returns the earliest future cycle at which any pipeline agent
// can act: the next completion event, the fetch queue head becoming
// dispatchable, fetch resuming after a redirect or i-cache miss, or a
// p-thread block becoming fetchable/dispatchable. Resource-blocked agents
// (ROB/RS/registers full, MSHR-rejected loads) are unblocked only by one of
// these events, so the minimum is exact.
//
//lab:hotpath
func (s *Simulator) nextWakeAt() int64 {
	next := s.ev.cal.nextAt(s.now)
	if s.fqLen > 0 {
		if t := s.fetchQ[s.fqHead].availAt; t > s.now && t < next {
			next = t
		}
	}
	if s.fetchIdx < s.n && s.stalledOnBranch < 0 && s.fetchResumeAt > s.now && s.fetchResumeAt < next {
		next = s.fetchResumeAt
	}
	if s.liveCtxs == 0 {
		return next
	}
	for c := range s.ctxs {
		ctx := &s.ctxs[c]
		if !ctx.active {
			continue
		}
		if ctx.fetched < len(ctx.pt.Body) && ctx.nextBlockAt > s.now && ctx.nextBlockAt < next {
			next = ctx.nextBlockAt
		}
		if ctx.dispatched < ctx.fetched && ctx.blockReadyAt > s.now && ctx.blockReadyAt < next {
			next = ctx.blockReadyAt
		}
	}
	return next
}
