package cpu

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestBatchMatchesSerialUnit runs a heterogeneous batch — every
// engine-stress config at once — over each differential workload and
// requires every instance's Result to be deeply equal and byte-identical
// (marshaled) to a serial event-engine run of the same config.
func TestBatchMatchesSerialUnit(t *testing.T) {
	configs := engineConfigs()
	var cfgNames []string
	for name := range configs {
		cfgNames = append(cfgNames, name)
	}
	sort.Strings(cfgNames)

	bs := NewBatchSimulator()
	for wlName, wl := range engineWorkloads(t) {
		cfgs := make([]Config, len(cfgNames))
		pts := make([][]*PThread, len(cfgNames))
		for i, name := range cfgNames {
			cfgs[i] = configs[name]
			cfgs[i].Engine = EngineEvent
			pts[i] = wl.pts
		}
		if err := bs.Reset(cfgs, wl.tr, pts); err != nil {
			t.Fatalf("%s: batch reset: %v", wlName, err)
		}
		results, errs, err := bs.Run()
		if err != nil {
			t.Fatalf("%s: batch run: %v", wlName, err)
		}
		for i, name := range cfgNames {
			if errs[i] != nil {
				t.Fatalf("%s/%s: batched instance failed: %v", wlName, name, errs[i])
			}
			serial, err := Run(cfgs[i], wl.tr, wl.pts)
			if err != nil {
				t.Fatalf("%s/%s: serial run: %v", wlName, name, err)
			}
			if !reflect.DeepEqual(results[i], serial) {
				t.Errorf("%s/%s: batched Result diverges from serial", wlName, name)
			}
			a, err := json.Marshal(results[i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(serial)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: marshaled Results not byte-identical", wlName, name)
			}
		}
	}
}

// TestBatchSteadyStateAllocationFree extends the 0-alloc pin to the batched
// hot loop: after one warm-up, Reset + Run of a K=4 batch must not allocate.
func TestBatchSteadyStateAllocationFree(t *testing.T) {
	p, inducPC, loadPC := strideWalk(200, 8)
	tr := trace.MustRun(p)
	pts := []*PThread{stridePThread(inducPC, loadPC, 12)}
	cfg := noPrefConfig()
	cfgs := []Config{cfg, cfg, cfg, cfg}
	pthreads := [][]*PThread{pts, pts, pts, pts}

	bs := NewBatchSimulator()
	if err := bs.Reset(cfgs, tr, pthreads); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bs.Run(); err != nil {
		t.Fatal(err) // warm-up grows every per-instance pool
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := bs.Reset(cfgs, tr, pthreads); err != nil {
			t.Fatal(err)
		}
		results, errs, err := bs.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range errs {
			if errs[i] != nil || results[i] == nil {
				t.Fatal("batched instance failed in steady state")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batched Reset+Run allocated %.1f times per run, want 0", allocs)
	}
}

// TestBatchRejectsScanEngine pins the fallback rule: the reference scan
// engine cannot batch, and the error says so listing the batchable engines.
func TestBatchRejectsScanEngine(t *testing.T) {
	p, _, _ := strideWalk(50, 4)
	tr := trace.MustRun(p)
	cfg := noPrefConfig()
	cfg.Engine = EngineScan
	err := NewBatchSimulator().Reset([]Config{cfg}, tr, nil)
	if err == nil {
		t.Fatal("scan-engine batch Reset succeeded, want error")
	}
	if !strings.Contains(err.Error(), "event, batched") {
		t.Errorf("error %q does not list the batchable engines", err)
	}
}

// TestBatchNormalizesBatchedEngine verifies EngineBatched configs are
// accepted per instance (normalized to the event engine) and still match a
// serial event run.
func TestBatchNormalizesBatchedEngine(t *testing.T) {
	p, inducPC, loadPC := strideWalk(120, 6)
	tr := trace.MustRun(p)
	pts := []*PThread{stridePThread(inducPC, loadPC, 8)}
	cfg := noPrefConfig()
	cfg.Engine = EngineBatched
	bs := NewBatchSimulator()
	if err := bs.Reset([]Config{cfg, cfg}, tr, [][]*PThread{pts, pts}); err != nil {
		t.Fatal(err)
	}
	results, errs, err := bs.Run()
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := cfg
	serialCfg.Engine = EngineEvent
	serial, err := Run(serialCfg, tr, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("instance %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], serial) {
			t.Errorf("instance %d diverges from serial event run", i)
		}
	}
}

// TestBatchIsolatesInstanceFailure pins per-instance error isolation: a
// config that trips the cycle cap must not disturb its batchmates.
func TestBatchIsolatesInstanceFailure(t *testing.T) {
	p, inducPC, loadPC := strideWalk(300, 12)
	tr := trace.MustRun(p)
	pts := []*PThread{stridePThread(inducPC, loadPC, 12)}
	good := noPrefConfig()
	bad := good
	bad.MaxCycles = 10 // far below the run length: deterministic abort
	bs := NewBatchSimulator()
	if err := bs.Reset([]Config{good, bad, good}, tr, [][]*PThread{pts, pts, pts}); err != nil {
		t.Fatal(err)
	}
	results, errs, err := bs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if errs[1] == nil {
		t.Fatal("capped instance succeeded, want cycle-cap error")
	}
	if results[1] != nil {
		t.Error("failed instance has a Result")
	}
	serial, err := Run(good, tr, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("instance %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], serial) {
			t.Errorf("instance %d diverges from serial after batchmate failure", i)
		}
	}
}
