package trace

import (
	"bytes"
	"hash/crc32"
	"strings"
	"testing"
)

// encodeV2 encodes tr and returns the payload bytes. Heap slices of this
// size are at least 8-byte aligned, so MapBytes on the result exercises the
// true alias path.
func encodeV2(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSerialV2RoundTripHeap(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	data := encodeV2(t, tr)
	if !IsV2(data) {
		t.Fatal("encoded payload does not carry the v2 magic")
	}
	got, err := DecodeBinaryV2(data, prog)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)

	// Deterministic bytes: re-encoding the decoded trace yields identical
	// output.
	data2 := encodeV2(t, got)
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding a v2-decoded trace changed the bytes")
	}
}

func TestSerialV2RoundTripMapped(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	data := encodeV2(t, tr)
	got, aliased, err := MapBytes(data, prog)
	if err != nil {
		t.Fatal(err)
	}
	if hostLittleEndian && !aliased {
		t.Fatal("MapBytes did not alias an aligned buffer on a little-endian host")
	}
	tracesEqual(t, tr, got)

	// A mapped trace must round-trip through both encoders: its columns
	// alias read-only bytes but are otherwise ordinary slices.
	var v1a, v1b bytes.Buffer
	if err := tr.EncodeBinary(&v1a); err != nil {
		t.Fatal(err)
	}
	if err := got.EncodeBinary(&v1b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1a.Bytes(), v1b.Bytes()) {
		t.Error("v1 encoding of a mapped trace differs from the original")
	}
}

func TestSerialV2MisalignedFallsBackToHeap(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	data := encodeV2(t, tr)
	// Shift the payload off 8-byte alignment: aliasing is impossible but
	// that is a capability miss, not corruption — the decode must succeed.
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	got, aliased, err := MapBytes(shifted[1:], prog)
	if err != nil {
		t.Fatal(err)
	}
	if aliased {
		t.Fatal("MapBytes claims to alias a misaligned buffer")
	}
	tracesEqual(t, tr, got)
}

func TestSerialV2EscapePath(t *testing.T) {
	prog := serialProgram(t)
	it := Interpreter{DeltaLimit: 2}
	tr, err := it.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.over1) == 0 && len(tr.over2) == 0 {
		t.Fatal("escape-path trace produced no overflow entries")
	}
	data := encodeV2(t, tr)
	heap, err := DecodeBinaryV2(data, prog)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, heap)
	mapped, _, err := MapBytes(data, prog)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, mapped)
}

func TestSerialV2Corruption(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	pristine := encodeV2(t, tr)

	cases := []struct {
		name    string
		mutate  func(data []byte) []byte
		wantErr string
	}{
		{"header magic flip", func(d []byte) []byte { d[0] ^= 0xff; return d }, "bad magic"},
		{"stale v1 magic", func(d []byte) []byte { copy(d, serialMagic); return d }, "bad magic"},
		{"header field flip", func(d []byte) []byte { d[9] ^= 1; return d }, "header crc"},
		{"chunk bit flip", func(d []byte) []byte { d[v2Page+17] ^= 1; return d }, "crc mismatch"},
		{"padding bit flip", func(d []byte) []byte {
			// Last byte of the pc segment's padding, inside the CRC'd region.
			d[v2Page+4*tr.Len()+int(v2PadLen(int64(4*tr.Len())))-1] ^= 1
			return d
		}, "crc mismatch"},
		{"footer filled flip", func(d []byte) []byte {
			// The footer's filled/minPC/maxPC words are covered by the chunk
			// CRC, so a flip there reads as chunk corruption.
			off := int(v2ChunkRegion(int64(tr.Len())))
			d[off+4] ^= 1
			return d
		}, "crc mismatch"},
		{"footer pc range forged", func(d []byte) []byte {
			// Rewrite maxPC past the program and recompute the chunk CRC, so
			// only the O(1) range check can catch it.
			region := int(v2ChunkRegion(int64(tr.Len()))) - v2Page
			footer := d[v2Page+region:]
			serialOrder.PutUint32(footer[12:], 1<<20)
			crc := crc32.Checksum(d[v2Page:v2Page+region], crcCastagnoli)
			crc = crc32.Update(crc, crcCastagnoli, footer[4:16])
			serialOrder.PutUint32(footer, crc)
			return d
		}, "outside program"},
		{"truncated tail", func(d []byte) []byte { return d[:len(d)-3] }, "layout wants"},
		{"truncated header", func(d []byte) []byte { return d[:100] }, "shorter than header"},
		{"trailer flip", func(d []byte) []byte { d[len(d)-1] ^= 1; return d }, "trailer crc"},
		{"empty", func(d []byte) []byte { return nil }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), pristine...))
			if _, err := DecodeBinaryV2(data, prog); err == nil {
				t.Fatal("heap decode accepted corrupted payload")
			} else if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("heap decode error %q does not mention %q", err, tc.wantErr)
			}
			if _, _, err := MapBytes(data, prog); err == nil {
				t.Fatal("MapBytes accepted corrupted payload")
			}
		})
	}
}

func TestSerialV2WrongProgram(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	data := encodeV2(t, tr)
	other := sumLoop(8, []int64{1, 2, 3, 4})
	if _, err := DecodeBinaryV2(data, other); err == nil {
		t.Fatal("heap decode accepted a payload encoded for a different program")
	}
	if _, _, err := MapBytes(data, other); err == nil {
		t.Fatal("MapBytes accepted a payload encoded for a different program")
	}
}
