package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// fuzzProgram is a small fixed workload the fuzz targets decode against —
// enough dynamic instructions to span branch-bitset words and exercise
// loads, stores and branches.
func fuzzProgram() *isa.Program {
	b := isa.NewBuilder("fuzz")
	const words = 16
	mem := make([]int64, words)
	for i := range mem {
		mem[i] = int64(i*5 + 2)
	}
	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rAdr = isa.Reg(3)
		rV   = isa.Reg(4)
		rC   = isa.Reg(5)
	)
	b.MovI(rI, 0)
	b.MovI(rN, words)
	b.Label("top")
	b.ShlI(rAdr, rI, 3)
	b.Load(rV, rAdr, 0)
	b.Add(rV, rV, rV)
	b.Store(rAdr, 0, rV)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

// walkTrace touches every accessor over the whole trace so a decode that
// wrongly accepted malformed input faults here, inside the fuzz target,
// instead of deep in a consumer.
func walkTrace(t *testing.T, tr *Trace) {
	t.Helper()
	var sink int64
	for cu := tr.Cursor(); cu.Next(); {
		sink += int64(cu.PC()) + cu.Prod1() + cu.Prod2() + cu.Addr() + cu.Val()
		if cu.Taken() {
			sink++
		}
	}
	_ = sink
	_ = tr.StaticCounts()
}

// fuzzSeeds returns a pristine encoding plus systematic mutations —
// truncations, bit flips, implausible header fields — as fuzz corpus seeds.
func fuzzSeeds(pristine []byte) [][]byte {
	seeds := [][]byte{pristine, nil, []byte("PXTRC0")}
	for _, cut := range []int{1, 7, 8, 12, 63, 64, len(pristine) / 2, len(pristine) - 1} {
		if cut < len(pristine) {
			seeds = append(seeds, pristine[:cut])
		}
	}
	for _, bit := range []int{0, 70, len(pristine) * 4} {
		mut := append([]byte(nil), pristine...)
		mut[bit/8] ^= 1 << (bit % 8)
		seeds = append(seeds, mut)
	}
	// Implausible entry count in the header.
	huge := append([]byte(nil), pristine...)
	for i := 0; i < 8 && 20+i < len(huge); i++ {
		huge[20+i] = 0xff
	}
	seeds = append(seeds, huge)
	return seeds
}

// FuzzTraceDecodeBinary hammers the v1 decoder: any input must either decode
// to a usable trace or return an error — never panic, never over-read, never
// over-allocate from attacker-controlled counts.
func FuzzTraceDecodeBinary(f *testing.F) {
	prog := fuzzProgram()
	tr := MustRun(prog)
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		f.Fatal(err)
	}
	for _, seed := range fuzzSeeds(buf.Bytes()) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBinary(bytes.NewReader(data), prog)
		if err != nil {
			return
		}
		walkTrace(t, got)
	})
}

// FuzzTraceDecodeV2 hammers the v2 verifier through both the heap decoder
// and the mapped-alias loader, which share one verification path.
func FuzzTraceDecodeV2(f *testing.F) {
	prog := fuzzProgram()
	tr := MustRun(prog)
	var buf bytes.Buffer
	if err := tr.EncodeBinaryV2(&buf); err != nil {
		f.Fatal(err)
	}
	for _, seed := range fuzzSeeds(buf.Bytes()) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := DecodeBinaryV2(data, prog); err == nil {
			walkTrace(t, got)
		}
		if got, _, err := MapBytes(data, prog); err == nil {
			walkTrace(t, got)
		}
	})
}
