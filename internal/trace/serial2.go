package trace

// Version-2 spill format (PXTRC002): the mmap-ready layout of the chunked
// structure-of-arrays trace. Where PXTRC001 is a plain stream a loader must
// copy into freshly allocated chunks, v2 lays every column segment on a
// 4 KiB page boundary so a loader can map the file read-only and alias the
// chunk columns (pc/prod1/prod2/addr/val/taken) directly onto the mapping —
// zero decode, zero copy, page-cache-resident and shared across processes.
//
// Payload layout (offsets relative to the payload start, which the aligned
// artifact container places on a page boundary of the file):
//
//	header page  64-byte fixed header, zero-padded to 4096:
//	             magic "PXTRC002" | n u64 | deltaLimit u32 | chunkBits u32 |
//	             trailerOff u64 | trailerLen u64 | trailerCRC u32 |
//	             numChunks u32 | reserved[12] | headerCRC u32 (CRC32-C of
//	             the first 60 bytes)
//	per chunk    six column segments, each zero-padded to a page multiple:
//	             pc 4·filled | prod1 4·filled | prod2 4·filled |
//	             addr 8·filled | val 8·filled | taken 8·⌈filled/64⌉
//	             then one footer page: chunkCRC u32 | filled u32 |
//	             minPC i32 | maxPC i32 | zeros — chunkCRC is CRC32-C over
//	             the padded data region followed by footer bytes 4..16, so
//	             the recorded entry count and PC range are integrity-bound
//	             to the column data they describe
//	trailer      nameLen u32 + name | nInsts u32 | nMem u32 |
//	             64 × finalReg i64 | over1 cnt u32 + sorted (k,v) i64 pairs |
//	             over2 likewise — covered whole by the header's trailerCRC
//
// All integers are little-endian, like v1. Every offset is derivable from n
// alone, so the verifier recomputes the layout and rejects any header whose
// claimed geometry disagrees before touching chunk data. Verification is
// once per chunk (CRC + PC range scan) and chunk-parallel, not per entry
// and serial as in v1.

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/isa"
)

// serialMagicV2 identifies the page-aligned mappable column format.
const serialMagicV2 = "PXTRC002"

const (
	v2Page       = 4096
	v2HeaderSize = 64
)

var crcCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian gates the zero-copy alias path: the on-disk words are
// little-endian, so aliasing them as native integers is only correct on a
// little-endian host. Big-endian hosts take the conversion fallback.
var hostLittleEndian = func() bool {
	var x uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// v2PadLen returns the zero padding that rounds n up to a page multiple.
func v2PadLen(n int64) int64 { return (v2Page - n%v2Page) % v2Page }

// v2SegSizes returns the padded sizes of a chunk's six column segments.
func v2SegSizes(filled int64) [6]int64 {
	words := (filled + 63) / 64
	p4 := 4*filled + v2PadLen(4*filled)
	p8 := 8*filled + v2PadLen(8*filled)
	pt := 8*words + v2PadLen(8*words)
	return [6]int64{p4, p4, p4, p8, p8, pt}
}

// v2ChunkRegion returns the byte size of one chunk's on-disk region: the six
// padded column segments plus the footer page.
func v2ChunkRegion(filled int64) int64 {
	sizes := v2SegSizes(filled)
	total := int64(v2Page)
	for _, s := range sizes {
		total += s
	}
	return total
}

// v2Filled returns the entry count of chunk ci in an n-entry trace.
func v2Filled(n int64, ci int) int64 {
	filled := n - int64(ci)<<chunkBits
	if filled > chunkLen {
		filled = chunkLen
	}
	return filled
}

// v2TrailerOff returns the payload offset of the trailer: header page plus
// every chunk region. Closed-form (all chunks but the last are full) so a
// hostile header is checked without looping over its claimed chunk count.
func v2TrailerOff(n int64) int64 {
	numChunks := (n + chunkLen - 1) >> chunkBits
	if numChunks == 0 {
		return v2Page
	}
	return v2Page + (numChunks-1)*v2ChunkRegion(chunkLen) + v2ChunkRegion(v2Filled(n, int(numChunks-1)))
}

// IsV2 reports whether data begins with the v2 spill magic.
func IsV2(data []byte) bool {
	return len(data) >= len(serialMagicV2) && string(data[:len(serialMagicV2)]) == serialMagicV2
}

// v2Trailer serializes the program shape, final registers and overflow maps
// (sorted for deterministic bytes, like v1).
func (t *Trace) v2Trailer() []byte {
	var b bytes.Buffer
	var scratch [8]byte
	putU32 := func(v uint32) {
		serialOrder.PutUint32(scratch[:4], v)
		b.Write(scratch[:4])
	}
	putI64 := func(v int64) {
		serialOrder.PutUint64(scratch[:8], uint64(v))
		b.Write(scratch[:8])
	}
	putU32(uint32(len(t.Prog.Name)))
	b.WriteString(t.Prog.Name)
	putU32(uint32(len(t.Prog.Insts)))
	putU32(uint32(len(t.Prog.InitMem)))
	for _, r := range t.FinalRegs {
		putI64(r)
	}
	for _, over := range []map[int64]int64{t.over1, t.over2} {
		keys := make([]int64, 0, len(over))
		for k := range over {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		putU32(uint32(len(keys)))
		for _, k := range keys {
			putI64(k)
			putI64(over[k])
		}
	}
	return b.Bytes()
}

// EncodeBinaryV2 writes the trace in the page-aligned mappable format. For
// the columns to land on page boundaries of the underlying file, the writer
// must start at a page-aligned file offset (the aligned artifact container
// guarantees this).
func (t *Trace) EncodeBinaryV2(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	trailer := t.v2Trailer()
	n := int64(t.n)
	trailerOff := v2TrailerOff(n)

	hdr := make([]byte, v2Page)
	copy(hdr, serialMagicV2)
	serialOrder.PutUint64(hdr[8:], uint64(n))
	serialOrder.PutUint32(hdr[16:], t.deltaLimit)
	serialOrder.PutUint32(hdr[20:], chunkBits)
	serialOrder.PutUint64(hdr[24:], uint64(trailerOff))
	serialOrder.PutUint64(hdr[32:], uint64(len(trailer)))
	serialOrder.PutUint32(hdr[40:], crc32.Checksum(trailer, crcCastagnoli))
	serialOrder.PutUint32(hdr[44:], uint32(len(t.chunks)))
	serialOrder.PutUint32(hdr[60:], crc32.Checksum(hdr[:60], crcCastagnoli))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}

	buf := make([]byte, chunkLen*8)
	zeros := make([]byte, v2Page)
	for ci := range t.chunks {
		c := &t.chunks[ci]
		filled := int(v2Filled(n, ci))
		crc := uint32(0)
		writeSeg := func(seg []byte) error {
			crc = crc32.Update(crc, crcCastagnoli, seg)
			if _, err := bw.Write(seg); err != nil {
				return err
			}
			if pad := v2PadLen(int64(len(seg))); pad > 0 {
				crc = crc32.Update(crc, crcCastagnoli, zeros[:pad])
				if _, err := bw.Write(zeros[:pad]); err != nil {
					return err
				}
			}
			return nil
		}
		minPC, maxPC := int32(0), int32(-1)
		for i, v := range c.pc[:filled] {
			serialOrder.PutUint32(buf[i*4:], uint32(v))
			if i == 0 || v < minPC {
				minPC = v
			}
			if i == 0 || v > maxPC {
				maxPC = v
			}
		}
		if err := writeSeg(buf[:filled*4]); err != nil {
			return err
		}
		for i, v := range c.prod1[:filled] {
			serialOrder.PutUint32(buf[i*4:], v)
		}
		if err := writeSeg(buf[:filled*4]); err != nil {
			return err
		}
		for i, v := range c.prod2[:filled] {
			serialOrder.PutUint32(buf[i*4:], v)
		}
		if err := writeSeg(buf[:filled*4]); err != nil {
			return err
		}
		for i, v := range c.addr[:filled] {
			serialOrder.PutUint64(buf[i*8:], uint64(v))
		}
		if err := writeSeg(buf[:filled*8]); err != nil {
			return err
		}
		for i, v := range c.val[:filled] {
			serialOrder.PutUint64(buf[i*8:], uint64(v))
		}
		if err := writeSeg(buf[:filled*8]); err != nil {
			return err
		}
		words := (filled + 63) / 64
		for i, v := range c.taken[:words] {
			serialOrder.PutUint64(buf[i*8:], v)
		}
		if err := writeSeg(buf[:words*8]); err != nil {
			return err
		}
		var fb [v2Page]byte
		footer := fb[:]
		serialOrder.PutUint32(footer[4:], uint32(filled))
		serialOrder.PutUint32(footer[8:], uint32(minPC))
		serialOrder.PutUint32(footer[12:], uint32(maxPC))
		crc = crc32.Update(crc, crcCastagnoli, footer[4:16])
		serialOrder.PutUint32(footer[0:], crc)
		if _, err := bw.Write(footer); err != nil {
			return err
		}
	}
	if _, err := bw.Write(trailer); err != nil {
		return err
	}
	return bw.Flush()
}

// v2Layout is the verified geometry of a v2 payload.
type v2Layout struct {
	n          int64
	numChunks  int
	deltaLimit uint32
	trailerOff int64
	trailerLen int64
	trailerCRC uint32
}

// parseV2Header verifies the fixed header against its CRC and recomputes the
// canonical layout from n, rejecting any geometry disagreement before a
// single chunk byte is trusted.
func parseV2Header(data []byte) (v2Layout, error) {
	var lay v2Layout
	if len(data) < v2Page {
		return lay, fmt.Errorf("trace: v2 payload shorter than header page (%d bytes)", len(data))
	}
	if !IsV2(data) {
		return lay, fmt.Errorf("trace: bad magic %q", data[:8])
	}
	if got, want := crc32.Checksum(data[:60], crcCastagnoli), serialOrder.Uint32(data[60:]); got != want {
		return lay, fmt.Errorf("trace: v2 header crc mismatch (%08x != %08x)", got, want)
	}
	lay.n = int64(serialOrder.Uint64(data[8:]))
	const maxEntries = int64(1) << 40 // far beyond any interpreter bound
	if lay.n < 0 || lay.n > maxEntries {
		return lay, fmt.Errorf("trace: implausible entry count %d", lay.n)
	}
	lay.deltaLimit = serialOrder.Uint32(data[16:])
	if cb := serialOrder.Uint32(data[20:]); cb != chunkBits {
		return lay, fmt.Errorf("trace: v2 chunk geometry 2^%d, want 2^%d", cb, chunkBits)
	}
	lay.trailerOff = int64(serialOrder.Uint64(data[24:]))
	lay.trailerLen = int64(serialOrder.Uint64(data[32:]))
	lay.trailerCRC = serialOrder.Uint32(data[40:])
	numChunks := (lay.n + chunkLen - 1) >> chunkBits
	if got := serialOrder.Uint32(data[44:]); int64(got) != numChunks {
		return lay, fmt.Errorf("trace: v2 header claims %d chunks for %d entries, want %d", got, lay.n, numChunks)
	}
	lay.numChunks = int(numChunks)
	if want := v2TrailerOff(lay.n); lay.trailerOff != want {
		return lay, fmt.Errorf("trace: v2 trailer offset %d disagrees with layout (%d)", lay.trailerOff, want)
	}
	if lay.trailerLen < 0 || lay.trailerOff+lay.trailerLen != int64(len(data)) {
		return lay, fmt.Errorf("trace: v2 payload is %d bytes, layout wants %d", len(data), lay.trailerOff+lay.trailerLen)
	}
	return lay, nil
}

// parseV2Trailer verifies the trailer CRC, matches the program shape and
// restores final registers and overflow maps into t.
func parseV2Trailer(data []byte, lay v2Layout, prog *isa.Program, t *Trace) error {
	tb := data[lay.trailerOff : lay.trailerOff+lay.trailerLen]
	if got := crc32.Checksum(tb, crcCastagnoli); got != lay.trailerCRC {
		return fmt.Errorf("trace: v2 trailer crc mismatch (%08x != %08x)", got, lay.trailerCRC)
	}
	off := 0
	need := func(k int) error {
		if len(tb)-off < k {
			return fmt.Errorf("trace: v2 trailer truncated at byte %d", off)
		}
		return nil
	}
	readU32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := serialOrder.Uint32(tb[off:])
		off += 4
		return v, nil
	}
	readI64 := func() (int64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := int64(serialOrder.Uint64(tb[off:]))
		off += 8
		return v, nil
	}
	nameLen, err := readU32()
	if err != nil {
		return err
	}
	if nameLen > 1<<16 {
		return fmt.Errorf("trace: implausible program name length %d", nameLen)
	}
	if err := need(int(nameLen)); err != nil {
		return err
	}
	name := string(tb[off : off+int(nameLen)])
	off += int(nameLen)
	nInsts, err := readU32()
	if err != nil {
		return err
	}
	nMem, err := readU32()
	if err != nil {
		return err
	}
	if name != prog.Name || int(nInsts) != len(prog.Insts) || int(nMem) != len(prog.InitMem) {
		return fmt.Errorf("trace: encoded for program %q (%d insts, %d mem words), got %q (%d, %d)",
			name, nInsts, nMem, prog.Name, len(prog.Insts), len(prog.InitMem))
	}
	for i := range t.FinalRegs {
		if t.FinalRegs[i], err = readI64(); err != nil {
			return err
		}
	}
	for _, over := range []*map[int64]int64{&t.over1, &t.over2} {
		cnt, err := readU32()
		if err != nil {
			return err
		}
		// Each pair is 16 bytes; the count must fit the remaining trailer
		// before any allocation is sized from it.
		if int64(cnt)*16 > int64(len(tb)-off) {
			return fmt.Errorf("trace: overflow count %d exceeds trailer", cnt)
		}
		if cnt > 0 {
			m := make(map[int64]int64, minInt64(int64(cnt), 1<<16))
			for i := uint32(0); i < cnt; i++ {
				k, _ := readI64()
				v, _ := readI64()
				m[k] = v
			}
			*over = m
		}
	}
	if off != len(tb) {
		return fmt.Errorf("trace: %d trailing bytes after v2 trailer", len(tb)-off)
	}
	return nil
}

// DecodeBinaryV2 decodes a v2 payload into heap-owned chunks. Chunk
// verification and column copies run chunk-parallel, so even without mmap
// the v2 path beats the serial v1 decode. Errors mean corruption
// (quarantine and rebuild), never a fatal condition.
func DecodeBinaryV2(data []byte, prog *isa.Program) (*Trace, error) {
	t, _, err := decodeV2(data, prog, false)
	return t, err
}

// MapBytes builds a Trace whose chunk columns alias data in place — the
// zero-copy load path for an mmap'd spill file. The caller must keep data
// valid (mapped) for the lifetime of the returned Trace, and must never
// write through it. The returned flag reports whether the columns truly
// alias data; when aliasing is impossible (base not 8-byte aligned, or a
// big-endian host) MapBytes silently falls back to the heap decode — that
// is a capability miss, not corruption, so no error.
func MapBytes(data []byte, prog *isa.Program) (*Trace, bool, error) {
	return decodeV2(data, prog, true)
}

// decodeV2 is the shared verifier/loader behind DecodeBinaryV2 and
// MapBytes: parse+check header and trailer, then verify each chunk's CRC
// and PC range once per chunk in parallel, aliasing or copying its columns.
func decodeV2(data []byte, prog *isa.Program, wantAlias bool) (*Trace, bool, error) {
	lay, err := parseV2Header(data)
	if err != nil {
		return nil, false, err
	}
	t := &Trace{Prog: prog, n: int(lay.n), deltaLimit: lay.deltaLimit}
	if err := parseV2Trailer(data, lay, prog, t); err != nil {
		return nil, false, err
	}
	alias := wantAlias && hostLittleEndian &&
		uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 == 0
	if lay.numChunks == 0 {
		return t, false, nil
	}
	t.chunks = make([]chunk, lay.numChunks)

	fullRegion := v2ChunkRegion(chunkLen)
	workers := runtime.GOMAXPROCS(0)
	if workers > lay.numChunks {
		workers = lay.numChunks
	}
	if workers == 1 {
		// Nothing to fan out to: verify inline, no goroutine round-trip.
		for ci := 0; ci < lay.numChunks; ci++ {
			if err := decodeV2Chunk(data, lay, prog, t, ci, v2Page+int64(ci)*fullRegion, alias); err != nil {
				return nil, false, err
			}
		}
		return t, alias, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, lay.numChunks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1) - 1)
				if ci >= lay.numChunks || failed.Load() {
					return
				}
				if err := decodeV2Chunk(data, lay, prog, t, ci, v2Page+int64(ci)*fullRegion, alias); err != nil {
					errs[ci] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, false, err
		}
	}
	return t, alias, nil
}

// decodeV2Chunk verifies one chunk region (CRC over the padded data, footer
// agreement, PC range) and installs its columns — aliased or copied.
func decodeV2Chunk(data []byte, lay v2Layout, prog *isa.Program, t *Trace, ci int, off int64, alias bool) error {
	filled := v2Filled(lay.n, ci)
	sizes := v2SegSizes(filled)
	dataSize := int64(0)
	for _, s := range sizes {
		dataSize += s
	}
	region := data[off : off+dataSize]
	footer := data[off+dataSize : off+dataSize+v2Page]
	got := crc32.Checksum(region, crcCastagnoli)
	got = crc32.Update(got, crcCastagnoli, footer[4:16])
	if want := serialOrder.Uint32(footer); got != want {
		return fmt.Errorf("trace: chunk %d crc mismatch (%08x != %08x)", ci, got, want)
	}
	if got := serialOrder.Uint32(footer[4:]); int64(got) != filled {
		return fmt.Errorf("trace: chunk %d footer claims %d entries, want %d", ci, got, filled)
	}
	// PCs must index the supplied program; a wild PC would otherwise crash a
	// consumer much later. The footer's recorded range is integrity-bound to
	// the pc column by the chunk CRC (our encoder is the only writer), so the
	// bounds check is O(1) — no second pass over the column.
	minPC := int32(serialOrder.Uint32(footer[8:]))
	maxPC := int32(serialOrder.Uint32(footer[12:]))
	if filled > 0 && (minPC < 0 || minPC > maxPC || int(maxPC) >= len(prog.Insts)) {
		return fmt.Errorf("trace: chunk %d holds pcs %d..%d outside program (%d insts)",
			ci, minPC, maxPC, len(prog.Insts))
	}
	f := int(filled)
	words := (f + 63) / 64
	var segs [6][]byte
	p := int64(0)
	for i, s := range sizes {
		segs[i] = region[p : p+s]
		p += s
	}
	var c chunk
	if alias {
		c.pc = unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(segs[0]))), f)
		c.prod1 = unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(segs[1]))), f)
		c.prod2 = unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(segs[2]))), f)
		c.addr = unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(segs[3]))), f)
		c.val = unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(segs[4]))), f)
		c.taken = unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(segs[5]))), words)
	} else {
		c = newChunk()
		for i := 0; i < f; i++ {
			c.pc[i] = int32(serialOrder.Uint32(segs[0][i*4:]))
		}
		for i := 0; i < f; i++ {
			c.prod1[i] = serialOrder.Uint32(segs[1][i*4:])
		}
		for i := 0; i < f; i++ {
			c.prod2[i] = serialOrder.Uint32(segs[2][i*4:])
		}
		for i := 0; i < f; i++ {
			c.addr[i] = int64(serialOrder.Uint64(segs[3][i*8:]))
		}
		for i := 0; i < f; i++ {
			c.val[i] = int64(serialOrder.Uint64(segs[4][i*8:]))
		}
		for i := 0; i < words; i++ {
			c.taken[i] = serialOrder.Uint64(segs[5][i*8:])
		}
	}
	t.chunks[ci] = c
	return nil
}
