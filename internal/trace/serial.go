package trace

// Binary (de)serialization of the chunked structure-of-arrays trace, the
// format the on-disk artifact spill tier stores traces in. The columns are
// written in their native layout — each chunk's pc/prod1/prod2/addr/val
// columns and the branch bitset as contiguous little-endian words — so a
// warm load is a straight sequence of column reads into freshly allocated
// chunks, with no per-entry decoding.
//
// The program itself is deliberately NOT serialized: the caller supplies it
// on decode (the disk store rebuilds it from the benchmark registry, which
// the store key's content fingerprint already covers). The header carries
// the program's shape (name, instruction count, memory size) so a stale or
// mismatched file is detected as corruption instead of producing a trace
// whose PCs silently index a different program.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// serialMagic identifies the trace column format; bump the trailing digits
// on any layout change so old spill files quarantine instead of misloading.
const serialMagic = "PXTRC001"

var serialOrder = binary.LittleEndian

// EncodeBinary writes the trace in the spill-tier column format.
func (t *Trace) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(serialMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		serialOrder.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeI64 := func(v int64) error {
		serialOrder.PutUint64(scratch[:8], uint64(v))
		_, err := bw.Write(scratch[:8])
		return err
	}
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Header: program shape, entry count, delta limit, final registers.
	if err := writeStr(t.Prog.Name); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.Prog.Insts))); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.Prog.InitMem))); err != nil {
		return err
	}
	if err := writeI64(int64(t.n)); err != nil {
		return err
	}
	if err := writeU32(t.deltaLimit); err != nil {
		return err
	}
	for _, r := range t.FinalRegs {
		if err := writeI64(r); err != nil {
			return err
		}
	}
	// Overflow maps, sorted by consumer index for deterministic bytes.
	for _, over := range []map[int64]int64{t.over1, t.over2} {
		keys := make([]int64, 0, len(over))
		for k := range over {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if err := writeU32(uint32(len(keys))); err != nil {
			return err
		}
		for _, k := range keys {
			if err := writeI64(k); err != nil {
				return err
			}
			if err := writeI64(over[k]); err != nil {
				return err
			}
		}
	}
	// Chunk columns, filled prefix only.
	buf := make([]byte, chunkLen*8)
	for ci := range t.chunks {
		c := &t.chunks[ci]
		filled := t.n - ci<<chunkBits
		if filled > chunkLen {
			filled = chunkLen
		}
		if err := writeI32Col(bw, buf, c.pc[:filled]); err != nil {
			return err
		}
		if err := writeU32Col(bw, buf, c.prod1[:filled]); err != nil {
			return err
		}
		if err := writeU32Col(bw, buf, c.prod2[:filled]); err != nil {
			return err
		}
		if err := writeI64Col(bw, buf, c.addr[:filled]); err != nil {
			return err
		}
		if err := writeI64Col(bw, buf, c.val[:filled]); err != nil {
			return err
		}
		if err := writeU64Col(bw, buf, c.taken[:(filled+63)/64]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeI32Col(w io.Writer, buf []byte, col []int32) error {
	for i, v := range col {
		serialOrder.PutUint32(buf[i*4:], uint32(v))
	}
	_, err := w.Write(buf[:len(col)*4])
	return err
}

func writeU32Col(w io.Writer, buf []byte, col []uint32) error {
	for i, v := range col {
		serialOrder.PutUint32(buf[i*4:], v)
	}
	_, err := w.Write(buf[:len(col)*4])
	return err
}

func writeI64Col(w io.Writer, buf []byte, col []int64) error {
	for i, v := range col {
		serialOrder.PutUint64(buf[i*8:], uint64(v))
	}
	_, err := w.Write(buf[:len(col)*8])
	return err
}

func writeU64Col(w io.Writer, buf []byte, col []uint64) error {
	for i, v := range col {
		serialOrder.PutUint64(buf[i*8:], v)
	}
	_, err := w.Write(buf[:len(col)*8])
	return err
}

// DecodeBinary reads a trace in the spill-tier column format, attaching the
// given program. Any structural mismatch — wrong magic, a program shape
// that differs from the one the trace was encoded against, short data — is
// an error; callers treat decode errors as corruption (quarantine and
// rebuild), never as fatal.
func DecodeBinary(r io.Reader, prog *isa.Program) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if string(scratch[:8]) != serialMagic {
		return nil, fmt.Errorf("trace: bad magic %q", scratch[:8])
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return serialOrder.Uint32(scratch[:4]), nil
	}
	readI64 := func() (int64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return int64(serialOrder.Uint64(scratch[:8])), nil
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible program name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	nInsts, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	nMem, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if string(name) != prog.Name || int(nInsts) != len(prog.Insts) || int(nMem) != len(prog.InitMem) {
		return nil, fmt.Errorf("trace: encoded for program %q (%d insts, %d mem words), got %q (%d, %d)",
			name, nInsts, nMem, prog.Name, len(prog.Insts), len(prog.InitMem))
	}
	n64, err := readI64()
	if err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	const maxEntries = int64(1) << 40 // far beyond any interpreter bound
	if n64 < 0 || n64 > maxEntries {
		return nil, fmt.Errorf("trace: implausible entry count %d", n64)
	}
	t := &Trace{Prog: prog, n: int(n64)}
	if t.deltaLimit, err = readU32(); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	for i := range t.FinalRegs {
		if t.FinalRegs[i], err = readI64(); err != nil {
			return nil, fmt.Errorf("trace: decode registers: %w", err)
		}
	}
	for _, over := range []*map[int64]int64{&t.over1, &t.over2} {
		cnt, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("trace: decode overflow map: %w", err)
		}
		if cnt > uint32(minInt64(n64, 1<<31)) {
			return nil, fmt.Errorf("trace: implausible overflow count %d for %d entries", cnt, n64)
		}
		if cnt > 0 {
			// Cap the size hint: cnt is attacker-controlled until the pairs
			// actually parse, and a hint is only an optimization.
			m := make(map[int64]int64, minInt64(int64(cnt), 1<<16))
			for i := uint32(0); i < cnt; i++ {
				k, err := readI64()
				if err != nil {
					return nil, fmt.Errorf("trace: decode overflow map: %w", err)
				}
				v, err := readI64()
				if err != nil {
					return nil, fmt.Errorf("trace: decode overflow map: %w", err)
				}
				m[k] = v
			}
			*over = m
		}
	}
	numChunks := (t.n + chunkLen - 1) >> chunkBits
	// Chunks are appended as their columns actually parse, not allocated up
	// front: the header's entry count is attacker-controlled, and an eager
	// make([]chunk, numChunks) would commit gigabytes before the first
	// short-read error on a tiny hostile payload.
	t.chunks = make([]chunk, 0, minInt64(int64(numChunks), 64))
	buf := make([]byte, chunkLen*8)
	for ci := 0; ci < numChunks; ci++ {
		filled := t.n - ci<<chunkBits
		if filled > chunkLen {
			filled = chunkLen
		}
		c := newChunk()
		if err := readI32Col(br, buf, c.pc[:filled]); err != nil {
			return nil, fmt.Errorf("trace: chunk %d pc column: %w", ci, err)
		}
		if err := readU32Col(br, buf, c.prod1[:filled]); err != nil {
			return nil, fmt.Errorf("trace: chunk %d prod1 column: %w", ci, err)
		}
		if err := readU32Col(br, buf, c.prod2[:filled]); err != nil {
			return nil, fmt.Errorf("trace: chunk %d prod2 column: %w", ci, err)
		}
		if err := readI64Col(br, buf, c.addr[:filled]); err != nil {
			return nil, fmt.Errorf("trace: chunk %d addr column: %w", ci, err)
		}
		if err := readI64Col(br, buf, c.val[:filled]); err != nil {
			return nil, fmt.Errorf("trace: chunk %d val column: %w", ci, err)
		}
		if err := readU64Col(br, buf, c.taken[:(filled+63)/64]); err != nil {
			return nil, fmt.Errorf("trace: chunk %d taken column: %w", ci, err)
		}
		// PCs must index the supplied program; a wild PC here would
		// otherwise crash a consumer much later.
		for _, pc := range c.pc[:filled] {
			if pc < 0 || int(pc) >= len(prog.Insts) {
				return nil, fmt.Errorf("trace: chunk %d holds pc %d outside program (%d insts)", ci, pc, len(prog.Insts))
			}
		}
		t.chunks = append(t.chunks, c)
	}
	// The payload must end exactly at the last column.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing bytes after last chunk")
	}
	return t, nil
}

func readI32Col(r io.Reader, buf []byte, col []int32) error {
	if _, err := io.ReadFull(r, buf[:len(col)*4]); err != nil {
		return err
	}
	for i := range col {
		col[i] = int32(serialOrder.Uint32(buf[i*4:]))
	}
	return nil
}

func readU32Col(r io.Reader, buf []byte, col []uint32) error {
	if _, err := io.ReadFull(r, buf[:len(col)*4]); err != nil {
		return err
	}
	for i := range col {
		col[i] = serialOrder.Uint32(buf[i*4:])
	}
	return nil
}

func readI64Col(r io.Reader, buf []byte, col []int64) error {
	if _, err := io.ReadFull(r, buf[:len(col)*8]); err != nil {
		return err
	}
	for i := range col {
		col[i] = int64(serialOrder.Uint64(buf[i*8:]))
	}
	return nil
}

func readU64Col(r io.Reader, buf []byte, col []uint64) error {
	if _, err := io.ReadFull(r, buf[:len(col)*8]); err != nil {
		return err
	}
	for i := range col {
		col[i] = serialOrder.Uint64(buf[i*8:])
	}
	return nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
