// Package trace provides the functional interpreter for the micro-ISA and
// the dynamic-trace representation consumed by the timing simulator, the
// profiler, the critical-path analyzer and the slicer.
//
// A dynamic trace records, per retired instruction: the static PC, the
// dynamic indices of the producers of its source registers (enabling exact
// backward slicing and exact dataflow timing), the effective address of
// memory operations, branch direction, and the value written (enabling the
// timing simulator to seed p-thread contexts with real register values).
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// NoProducer marks a source operand whose value predates the trace (it was a
// program live-in, a constant, or R0).
const NoProducer int64 = -1

// Entry is one dynamic (retired, correct-path) instruction.
type Entry struct {
	PC    int32 // static instruction index
	Prod1 int64 // dynamic index of Src1's producer, or NoProducer
	Prod2 int64 // dynamic index of Src2's producer, or NoProducer
	Addr  int64 // effective byte address (Load/Store), else 0
	Val   int64 // value written to Dst (ALU/Load) or stored (Store)
	Taken bool  // branch outcome (conditional branches only)
}

// Trace is a complete dynamic execution of a program.
type Trace struct {
	Prog    *isa.Program
	Entries []Entry
	// FinalRegs is the architectural register file at halt.
	FinalRegs [isa.NumRegs]int64
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Entries) }

// Inst returns the static instruction of dynamic entry i.
func (t *Trace) Inst(i int) isa.Inst { return t.Prog.Insts[t.Entries[i].PC] }

// StaticCounts returns per-PC dynamic execution counts.
func (t *Trace) StaticCounts() []int64 {
	counts := make([]int64, len(t.Prog.Insts))
	for i := range t.Entries {
		counts[t.Entries[i].PC]++
	}
	return counts
}

// Interpreter runs a Program functionally, producing a Trace.
type Interpreter struct {
	// MaxInsts bounds execution; an execution exceeding it is reported as an
	// error (runaway-loop guard). Zero means the default of 50M.
	MaxInsts int64
}

// defaultMaxInsts guards against non-terminating workloads.
const defaultMaxInsts = 50_000_000

// Run executes p to completion and returns its trace.
//
// Register semantics: all registers start at zero; R0 reads as zero and
// ignores writes. Memory semantics: the data segment is a copy of p.InitMem;
// accesses must be 8-byte aligned and in-bounds.
func (it *Interpreter) Run(p *isa.Program) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	max := it.MaxInsts
	if max <= 0 {
		max = defaultMaxInsts
	}
	mem := make([]int64, len(p.InitMem))
	copy(mem, p.InitMem)

	var regs [isa.NumRegs]int64
	var lastWriter [isa.NumRegs]int64
	for r := range lastWriter {
		lastWriter[r] = NoProducer
	}

	tr := &Trace{Prog: p}
	pc := p.Entry
	for n := int64(0); ; n++ {
		if n >= max {
			return nil, fmt.Errorf("trace: program %q exceeded %d instructions", p.Name, max)
		}
		in := p.Insts[pc]
		e := Entry{PC: int32(pc)}
		if in.ReadsSrc1() && in.Src1 != isa.Zero {
			e.Prod1 = lastWriter[in.Src1]
		} else {
			e.Prod1 = NoProducer
		}
		if in.ReadsSrc2() && in.Src2 != isa.Zero {
			e.Prod2 = lastWriter[in.Src2]
		} else {
			e.Prod2 = NoProducer
		}

		next := pc + 1
		switch {
		case in.IsALU():
			v := in.Eval(regs[in.Src1], regs[in.Src2])
			e.Val = v
			if in.Dst != isa.Zero {
				regs[in.Dst] = v
				lastWriter[in.Dst] = int64(len(tr.Entries))
			}
		case in.Op == isa.Load:
			addr := regs[in.Src1] + in.Imm
			if err := checkAddr(p, addr, len(mem)); err != nil {
				return nil, fmt.Errorf("pc %d (%s): %w", pc, in, err)
			}
			v := mem[addr>>3]
			e.Addr, e.Val = addr, v
			if in.Dst != isa.Zero {
				regs[in.Dst] = v
				lastWriter[in.Dst] = int64(len(tr.Entries))
			}
		case in.Op == isa.Store:
			addr := regs[in.Src1] + in.Imm
			if err := checkAddr(p, addr, len(mem)); err != nil {
				return nil, fmt.Errorf("pc %d (%s): %w", pc, in, err)
			}
			mem[addr>>3] = regs[in.Src2]
			e.Addr, e.Val = addr, regs[in.Src2]
		case in.Op == isa.BrZ:
			e.Taken = regs[in.Src1] == 0
			if e.Taken {
				next = in.Target
			}
		case in.Op == isa.BrNZ:
			e.Taken = regs[in.Src1] != 0
			if e.Taken {
				next = in.Target
			}
		case in.Op == isa.Jmp:
			e.Taken = true
			next = in.Target
		case in.Op == isa.Halt:
			tr.Entries = append(tr.Entries, e)
			tr.FinalRegs = regs
			return tr, nil
		case in.Op == isa.Nop:
			// nothing
		default:
			return nil, fmt.Errorf("trace: pc %d: unexecutable opcode %s", pc, in.Op)
		}
		tr.Entries = append(tr.Entries, e)
		pc = next
	}
}

func checkAddr(p *isa.Program, addr int64, memWords int) error {
	if addr&7 != 0 {
		return fmt.Errorf("unaligned address %#x", addr)
	}
	if addr < 0 || addr>>3 >= int64(memWords) {
		return fmt.Errorf("address %#x out of bounds (%d words)", addr, memWords)
	}
	return nil
}

// Run is a convenience wrapper using a default Interpreter.
func Run(p *isa.Program) (*Trace, error) {
	var it Interpreter
	return it.Run(p)
}

// MustRun is Run that panics on error, for tests and examples with known-good
// programs.
func MustRun(p *isa.Program) *Trace {
	t, err := Run(p)
	if err != nil {
		panic(err)
	}
	return t
}
