// Package trace provides the functional interpreter for the micro-ISA and
// the dynamic-trace representation consumed by the timing simulator, the
// profiler, the critical-path analyzer and the slicer.
//
// A dynamic trace records, per retired instruction: the static PC, the
// dynamic indices of the producers of its source registers (enabling exact
// backward slicing and exact dataflow timing), the effective address of
// memory operations, branch direction, and the value written (enabling the
// timing simulator to seed p-thread contexts with real register values).
//
// # Memory layout
//
// The trace is a chunked structure of arrays: entries live in fixed-size
// chunks (chunkLen dynamic instructions each), and within a chunk every
// field is its own dense column — a []int32 of PCs, two []uint32 producer
// columns, []int64 address and value columns, and a []uint64 branch-outcome
// bitset. Compared to the previous 48-byte padded array-of-structs record
// this cuts the footprint to ~28.1 bytes per instruction and, more
// importantly, lets each pipeline stage of a consumer stream only the
// columns it needs (fetch touches PCs and branch bits; wakeup touches
// producers; the LSQ touches addresses), so the hot loops walk dense,
// cache-friendly memory.
//
// Producer links are stored as 32-bit backward deltas (producers always
// precede consumers): 0 encodes "no producer", and deltas that do not fit
// (a link spanning ≥ 2^32-1 dynamic instructions) take an escape path
// through a side map keyed by consumer index. Chunking keeps peak memory at
// ~1x during construction — appending a chunk never re-copies the columns
// already built, unlike a doubling []Entry append.
//
// Consumers read entries through the index-cursor API: random access via
// the PC/Prod1/Prod2/Addr/Val/Taken accessors, sequential scans via Cursor,
// which pins the current chunk's columns and amortizes the chunk lookup.
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// NoProducer marks a source operand whose value predates the trace (it was a
// program live-in, a constant, or R0).
const NoProducer int64 = -1

// Chunk geometry. 1<<15 entries keeps a chunk's working set near 1MB while
// bounding the slack of the final, partially-filled chunk.
const (
	chunkBits = 15
	chunkLen  = 1 << chunkBits
	chunkMask = chunkLen - 1
)

// Producer-delta encoding: 0 = no producer, escDelta = long-range link
// resolved through the overflow map, anything else is the backward distance
// from the consumer to its producer.
const (
	noProdDelta = uint32(0)
	escDelta    = ^uint32(0)
)

// chunk holds chunkLen entries as parallel columns.
type chunk struct {
	pc    []int32  // static instruction index
	prod1 []uint32 // Src1 producer delta (see encoding above)
	prod2 []uint32 // Src2 producer delta
	addr  []int64  // effective byte address (Load/Store), else 0
	val   []int64  // value written to Dst (ALU/Load) or stored (Store)
	taken []uint64 // branch-outcome bitset (conditional branches and jumps)
}

func newChunk() chunk {
	return chunk{
		pc:    make([]int32, chunkLen),
		prod1: make([]uint32, chunkLen),
		prod2: make([]uint32, chunkLen),
		addr:  make([]int64, chunkLen),
		val:   make([]int64, chunkLen),
		taken: make([]uint64, chunkLen/64),
	}
}

// Trace is a complete dynamic execution of a program in the chunked
// structure-of-arrays layout described in the package comment.
type Trace struct {
	Prog *isa.Program
	// FinalRegs is the architectural register file at halt.
	FinalRegs [isa.NumRegs]int64

	n      int
	chunks []chunk
	// Overflow maps for producer links whose backward delta exceeds the
	// 32-bit encoding, keyed by consumer dynamic index. Nil until the first
	// escape (never on default-bounded traces).
	over1, over2 map[int64]int64
	// deltaLimit is the smallest delta that escapes; escDelta normally,
	// lowered only by Interpreter.DeltaLimit to exercise the escape path.
	deltaLimit uint32
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return t.n }

// PC returns the static instruction index of dynamic entry i.
//
//lab:hotpath
func (t *Trace) PC(i int) int32 {
	return t.chunks[i>>chunkBits].pc[i&chunkMask]
}

// Prod1 returns the dynamic index of the producer of entry i's Src1, or
// NoProducer.
//
//lab:hotpath
func (t *Trace) Prod1(i int) int64 {
	d := t.chunks[i>>chunkBits].prod1[i&chunkMask]
	if d == noProdDelta {
		return NoProducer
	}
	if d == escDelta {
		return t.over1[int64(i)]
	}
	return int64(i) - int64(d)
}

// Prod2 returns the dynamic index of the producer of entry i's Src2, or
// NoProducer.
//
//lab:hotpath
func (t *Trace) Prod2(i int) int64 {
	d := t.chunks[i>>chunkBits].prod2[i&chunkMask]
	if d == noProdDelta {
		return NoProducer
	}
	if d == escDelta {
		return t.over2[int64(i)]
	}
	return int64(i) - int64(d)
}

// Addr returns the effective byte address of entry i (loads and stores; 0
// otherwise).
//
//lab:hotpath
func (t *Trace) Addr(i int) int64 {
	return t.chunks[i>>chunkBits].addr[i&chunkMask]
}

// Val returns the value written (ALU/Load) or stored (Store) by entry i.
//
//lab:hotpath
func (t *Trace) Val(i int) int64 {
	return t.chunks[i>>chunkBits].val[i&chunkMask]
}

// Taken returns the branch outcome of entry i (conditional branches and
// jumps; false otherwise).
//
//lab:hotpath
func (t *Trace) Taken(i int) bool {
	off := i & chunkMask
	return t.chunks[i>>chunkBits].taken[off>>6]&(1<<uint(off&63)) != 0
}

// Inst returns the static instruction of dynamic entry i.
//
//lab:hotpath
func (t *Trace) Inst(i int) isa.Inst { return t.Prog.Insts[t.PC(i)] }

// StaticCounts returns per-PC dynamic execution counts.
func (t *Trace) StaticCounts() []int64 {
	counts := make([]int64, len(t.Prog.Insts))
	for ci := range t.chunks {
		pcs := t.chunks[ci].pc
		hi := t.n - ci<<chunkBits
		if hi > chunkLen {
			hi = chunkLen
		}
		for _, pc := range pcs[:hi] {
			counts[pc]++
		}
	}
	return counts
}

// Cursor is a sequential reader over a trace. It pins the current chunk's
// columns so a full forward scan pays the chunk lookup once per chunkLen
// entries:
//
//	for cu := tr.Cursor(); cu.Next(); {
//	        i := cu.Index()
//	        use(cu.PC(), cu.Prod1(), cu.Taken())
//	}
type Cursor struct {
	t   *Trace
	c   *chunk
	i   int // global index of the current entry
	off int // index within the pinned chunk
}

// Cursor returns a cursor positioned before the first entry.
func (t *Trace) Cursor() Cursor {
	return Cursor{t: t, i: -1, off: chunkMask}
}

// Next advances to the next entry, reporting whether one exists.
//
//lab:hotpath
func (cu *Cursor) Next() bool {
	cu.i++
	if cu.i >= cu.t.n {
		return false
	}
	cu.off++
	if cu.off == chunkLen || cu.c == nil {
		cu.c = &cu.t.chunks[cu.i>>chunkBits]
		cu.off = cu.i & chunkMask
	}
	return true
}

// Index returns the dynamic index of the current entry.
//
//lab:hotpath
func (cu *Cursor) Index() int { return cu.i }

// PC returns the current entry's static instruction index.
//
//lab:hotpath
func (cu *Cursor) PC() int32 { return cu.c.pc[cu.off] }

// Inst returns the current entry's static instruction.
//
//lab:hotpath
func (cu *Cursor) Inst() isa.Inst { return cu.t.Prog.Insts[cu.c.pc[cu.off]] }

// Prod1 returns the current entry's Src1 producer index, or NoProducer.
//
//lab:hotpath
func (cu *Cursor) Prod1() int64 {
	d := cu.c.prod1[cu.off]
	if d == noProdDelta {
		return NoProducer
	}
	if d == escDelta {
		return cu.t.over1[int64(cu.i)]
	}
	return int64(cu.i) - int64(d)
}

// Prod2 returns the current entry's Src2 producer index, or NoProducer.
//
//lab:hotpath
func (cu *Cursor) Prod2() int64 {
	d := cu.c.prod2[cu.off]
	if d == noProdDelta {
		return NoProducer
	}
	if d == escDelta {
		return cu.t.over2[int64(cu.i)]
	}
	return int64(cu.i) - int64(d)
}

// Addr returns the current entry's effective address.
//
//lab:hotpath
func (cu *Cursor) Addr() int64 { return cu.c.addr[cu.off] }

// Val returns the current entry's written/stored value.
//
//lab:hotpath
func (cu *Cursor) Val() int64 { return cu.c.val[cu.off] }

// Taken returns the current entry's branch outcome.
//
//lab:hotpath
func (cu *Cursor) Taken() bool {
	return cu.c.taken[cu.off>>6]&(1<<uint(cu.off&63)) != 0
}

// SharedCursor steps over the trace one column chunk at a time, exposing
// each chunk's dynamic-index window [Lo, Hi). It is the sharing point for
// batched simulation: K readers advanced in lockstep to each boundary all
// stream the same chunk's columns while they are hot in cache, instead of
// each re-streaming the whole trace. A SharedCursor is a value (no
// allocation); obtain a fresh one per pass with Trace.SharedCursor.
type SharedCursor struct {
	t  *Trace
	ci int
}

// SharedCursor returns a chunk-window cursor positioned before the first
// chunk.
func (t *Trace) SharedCursor() SharedCursor {
	return SharedCursor{t: t, ci: -1}
}

// Next advances to the next chunk window, reporting whether one exists. An
// empty trace has no windows.
//
//lab:hotpath
func (sc *SharedCursor) Next() bool {
	sc.ci++
	return sc.ci < len(sc.t.chunks)
}

// Window returns the current chunk's dynamic-index span [lo, hi). The final
// chunk's window is truncated to the trace length.
//
//lab:hotpath
func (sc *SharedCursor) Window() (lo, hi int) {
	lo = sc.ci << chunkBits
	hi = lo + chunkLen
	if hi > sc.t.n {
		hi = sc.t.n
	}
	return lo, hi
}

// NumChunks returns the number of column chunks backing the trace (the
// number of windows a SharedCursor yields).
func (t *Trace) NumChunks() int { return len(t.chunks) }

// append records one entry. p1/p2 are producer dynamic indices (or
// NoProducer); the builder encodes them as 32-bit backward deltas, escaping
// to the overflow maps past deltaLimit.
func (t *Trace) append(pc int32, p1, p2, addr, val int64, taken bool) {
	off := t.n & chunkMask
	if off == 0 {
		t.chunks = append(t.chunks, newChunk())
	}
	c := &t.chunks[len(t.chunks)-1]
	c.pc[off] = pc
	c.prod1[off] = t.encodeProd(p1, &t.over1)
	c.prod2[off] = t.encodeProd(p2, &t.over2)
	c.addr[off] = addr
	c.val[off] = val
	if taken {
		c.taken[off>>6] |= 1 << uint(off&63)
	}
	t.n++
}

func (t *Trace) encodeProd(p int64, over *map[int64]int64) uint32 {
	if p == NoProducer {
		return noProdDelta
	}
	d := int64(t.n) - p
	if uint64(d) >= uint64(t.deltaLimit) {
		if *over == nil {
			*over = make(map[int64]int64)
		}
		(*over)[int64(t.n)] = p
		return escDelta
	}
	return uint32(d)
}

// Interpreter runs a Program functionally, producing a Trace.
type Interpreter struct {
	// MaxInsts bounds execution; an execution exceeding it is reported as an
	// error (runaway-loop guard). Zero means the default of 50M.
	MaxInsts int64

	// DeltaLimit lowers the producer-delta escape threshold so tests can
	// exercise the long-range-link path on short traces (a delta of
	// DeltaLimit or more escapes). Zero means the real threshold, 2^32-1 —
	// unreachable below 4G-instruction traces.
	DeltaLimit uint32
}

// defaultMaxInsts guards against non-terminating workloads.
const defaultMaxInsts = 50_000_000

// Run executes p to completion and returns its trace.
//
// Register semantics: all registers start at zero; R0 reads as zero and
// ignores writes. Memory semantics: the data segment is a copy of p.InitMem;
// accesses must be 8-byte aligned and in-bounds.
func (it *Interpreter) Run(p *isa.Program) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	max := it.MaxInsts
	if max <= 0 {
		max = defaultMaxInsts
	}
	mem := make([]int64, len(p.InitMem))
	copy(mem, p.InitMem)

	var regs [isa.NumRegs]int64
	var lastWriter [isa.NumRegs]int64
	for r := range lastWriter {
		lastWriter[r] = NoProducer
	}

	tr := &Trace{Prog: p, deltaLimit: escDelta}
	if it.DeltaLimit != 0 {
		tr.deltaLimit = it.DeltaLimit
	}
	pc := p.Entry
	for n := int64(0); ; n++ {
		if n >= max {
			return nil, fmt.Errorf("trace: program %q exceeded %d instructions", p.Name, max)
		}
		in := p.Insts[pc]
		p1, p2 := NoProducer, NoProducer
		if in.ReadsSrc1() && in.Src1 != isa.Zero {
			p1 = lastWriter[in.Src1]
		}
		if in.ReadsSrc2() && in.Src2 != isa.Zero {
			p2 = lastWriter[in.Src2]
		}

		var eAddr, eVal int64
		taken := false
		next := pc + 1
		switch {
		case in.IsALU():
			v, err := in.Eval(regs[in.Src1], regs[in.Src2])
			if err != nil {
				return nil, fmt.Errorf("trace: pc %d (%s): %w", pc, in, err)
			}
			eVal = v
			if in.Dst != isa.Zero {
				regs[in.Dst] = v
				lastWriter[in.Dst] = int64(tr.n)
			}
		case in.Op == isa.Load:
			addr := regs[in.Src1] + in.Imm
			if err := checkAddr(p, addr, len(mem)); err != nil {
				return nil, fmt.Errorf("pc %d (%s): %w", pc, in, err)
			}
			v := mem[addr>>3]
			eAddr, eVal = addr, v
			if in.Dst != isa.Zero {
				regs[in.Dst] = v
				lastWriter[in.Dst] = int64(tr.n)
			}
		case in.Op == isa.Store:
			addr := regs[in.Src1] + in.Imm
			if err := checkAddr(p, addr, len(mem)); err != nil {
				return nil, fmt.Errorf("pc %d (%s): %w", pc, in, err)
			}
			mem[addr>>3] = regs[in.Src2]
			eAddr, eVal = addr, regs[in.Src2]
		case in.Op == isa.BrZ:
			taken = regs[in.Src1] == 0
			if taken {
				next = in.Target
			}
		case in.Op == isa.BrNZ:
			taken = regs[in.Src1] != 0
			if taken {
				next = in.Target
			}
		case in.Op == isa.Jmp:
			taken = true
			next = in.Target
		case in.Op == isa.Halt:
			tr.append(int32(pc), p1, p2, 0, 0, false)
			tr.FinalRegs = regs
			return tr, nil
		case in.Op == isa.Nop:
			// nothing
		default:
			return nil, fmt.Errorf("trace: pc %d: unexecutable opcode %s", pc, in.Op)
		}
		tr.append(int32(pc), p1, p2, eAddr, eVal, taken)
		pc = next
	}
}

func checkAddr(p *isa.Program, addr int64, memWords int) error {
	if addr&7 != 0 {
		return fmt.Errorf("unaligned address %#x", addr)
	}
	if addr < 0 || addr>>3 >= int64(memWords) {
		return fmt.Errorf("address %#x out of bounds (%d words)", addr, memWords)
	}
	return nil
}

// Run is a convenience wrapper using a default Interpreter.
func Run(p *isa.Program) (*Trace, error) {
	var it Interpreter
	return it.Run(p)
}

// MustRun is Run that panics on error, for tests and examples with known-good
// programs.
func MustRun(p *isa.Program) *Trace {
	t, err := Run(p)
	if err != nil {
		panic(err)
	}
	return t
}
