package trace

// DecodedView is a flat, fully decoded mirror of a Trace's columns for
// batched simulation. Where the Trace stores chunked columns with
// producer-delta encoding and bit-packed branch outcomes — compact, but
// paying a chunk lookup plus a delta decode on every access — the view
// holds one plain slice per column, indexed directly by dynamic index:
// absolute producer indices (NoProducer for none), unpacked branch
// outcomes, and a per-entry static-predicate byte (isa.Inst.Flags) plus
// execution latency so hot loops never re-derive them from the Op switches.
//
// The point of the view is amortization: decoding is one linear pass per
// chunk, and a BatchSimulator decodes each chunk once for all K instances
// it advances — work a serial run would pay per run is paid once per batch.
// Reset against the same Trace keeps previously decoded chunks, so a batch
// re-run over a trace it has already streamed decodes nothing at all.
//
// All storage is grow-only: steady-state reuse across traces of
// non-increasing length performs no allocation.
type DecodedView struct {
	t        *Trace
	frontier int // chunks [0, frontier) are decoded

	PC    []int32
	Prod1 []int64 // absolute producer dynamic index, or NoProducer
	Prod2 []int64
	Addr  []int64
	Val   []int64
	Taken []bool
	Flags []uint8 // isa.Inst.Flags() of the entry's static instruction
	Lat   []uint8 // isa.Inst.ExecLatency() of the entry's static instruction

	// Per-PC predicate summaries, rebuilt on Reset (grow-only scratch).
	pcFlags []uint8
	pcLats  []uint8
}

// NewDecodedView returns an empty view; Reset installs a trace.
func NewDecodedView() *DecodedView { return &DecodedView{} }

// Reset points the view at t. Resetting to the trace already installed
// keeps every decoded chunk; any other trace invalidates the view and
// regrows the columns (grow-only) for t's length.
func (v *DecodedView) Reset(t *Trace) {
	if v.t == t {
		return
	}
	v.t = t
	v.frontier = 0
	n := t.Len()
	v.PC = growCol(v.PC, n)
	v.Prod1 = growCol(v.Prod1, n)
	v.Prod2 = growCol(v.Prod2, n)
	v.Addr = growCol(v.Addr, n)
	v.Val = growCol(v.Val, n)
	v.Taken = growCol(v.Taken, n)
	v.Flags = growCol(v.Flags, n)
	v.Lat = growCol(v.Lat, n)
	// The static program is tiny (tens of instructions); summarize each PC
	// once here and fan the bytes out per entry during chunk decode.
	insts := t.Prog.Insts
	v.pcFlags = growCol(v.pcFlags, len(insts))
	v.pcLats = growCol(v.pcLats, len(insts))
	for i, in := range insts {
		v.pcFlags[i] = in.Flags()
		v.pcLats[i] = uint8(in.ExecLatency())
	}
}

// EnsureDecoded decodes forward until every entry in [0, hi) is available.
// Decoding is chunk-granular and monotonic; already-decoded chunks are
// never revisited.
func (v *DecodedView) EnsureDecoded(hi int) {
	for v.frontier < len(v.t.chunks) && v.frontier<<chunkBits < hi {
		v.decodeChunk(v.frontier)
		v.frontier++
	}
}

// decodeChunk materializes chunk ci into the flat columns.
func (v *DecodedView) decodeChunk(ci int) {
	t := v.t
	c := &t.chunks[ci]
	lo := ci << chunkBits
	n := t.n - lo
	if n > chunkLen {
		n = chunkLen
	}
	copy(v.PC[lo:lo+n], c.pc[:n])
	copy(v.Addr[lo:lo+n], c.addr[:n])
	copy(v.Val[lo:lo+n], c.val[:n])
	for i := 0; i < n; i++ {
		d := int64(lo + i)
		p1 := c.prod1[i]
		switch p1 {
		case noProdDelta:
			v.Prod1[lo+i] = NoProducer
		case escDelta:
			v.Prod1[lo+i] = t.over1[d]
		default:
			v.Prod1[lo+i] = d - int64(p1)
		}
		p2 := c.prod2[i]
		switch p2 {
		case noProdDelta:
			v.Prod2[lo+i] = NoProducer
		case escDelta:
			v.Prod2[lo+i] = t.over2[d]
		default:
			v.Prod2[lo+i] = d - int64(p2)
		}
	}
	for i := 0; i < n; i++ {
		v.Taken[lo+i] = c.taken[i>>6]&(1<<uint(i&63)) != 0
	}
	for i := 0; i < n; i++ {
		pc := v.PC[lo+i]
		v.Flags[lo+i] = v.pcFlags[pc]
		v.Lat[lo+i] = v.pcLats[pc]
	}
}

// growCol grows a column to at least n entries, reusing capacity.
func growCol[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
