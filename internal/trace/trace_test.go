package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// sumLoop builds: for i in 0..n-1 { acc += mem[i*8] }; halt.
func sumLoop(n int64, mem []int64) *isa.Program {
	b := isa.NewBuilder("sumloop")
	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rAcc = isa.Reg(3)
		rAdr = isa.Reg(4)
		rV   = isa.Reg(5)
		rC   = isa.Reg(6)
	)
	b.MovI(rI, 0)
	b.MovI(rN, n)
	b.MovI(rAcc, 0)
	b.Label("top")
	b.ShlI(rAdr, rI, 3)
	b.Load(rV, rAdr, 0)
	b.Add(rAcc, rAcc, rV)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

func TestInterpreterSumLoop(t *testing.T) {
	mem := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := sumLoop(8, mem)
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.FinalRegs[3]; got != 31 {
		t.Errorf("acc = %d, want 31", got)
	}
	// 3 init + 8 iterations * 6 + halt
	if want := 3 + 8*6 + 1; tr.Len() != want {
		t.Errorf("trace length = %d, want %d", tr.Len(), want)
	}
}

func TestInterpreterBranchOutcomes(t *testing.T) {
	p := sumLoop(3, []int64{1, 2, 3})
	tr := MustRun(p)
	var taken, notTaken int
	for i := range tr.Entries {
		if tr.Inst(i).IsBranch() {
			if tr.Entries[i].Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 2 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 2,1", taken, notTaken)
	}
}

func TestInterpreterProducers(t *testing.T) {
	b := isa.NewBuilder("prod")
	b.MovI(1, 5)    // dyn 0
	b.MovI(2, 7)    // dyn 1
	b.Add(3, 1, 2)  // dyn 2: prods 0, 1
	b.AddI(3, 3, 1) // dyn 3: prod 2
	b.Halt()
	tr := MustRun(b.MustBuild())
	e := tr.Entries[2]
	if e.Prod1 != 0 || e.Prod2 != 1 {
		t.Errorf("add producers = %d,%d, want 0,1", e.Prod1, e.Prod2)
	}
	if tr.Entries[3].Prod1 != 2 {
		t.Errorf("addi producer = %d, want 2", tr.Entries[3].Prod1)
	}
	if tr.Entries[0].Prod1 != NoProducer {
		t.Error("movi must have no producer")
	}
}

func TestInterpreterZeroRegister(t *testing.T) {
	b := isa.NewBuilder("zero")
	b.MovI(0, 99) // write to R0 discarded
	b.AddI(1, 0, 3)
	b.Halt()
	tr := MustRun(b.MustBuild())
	if tr.FinalRegs[0] != 0 {
		t.Error("R0 must stay zero")
	}
	if tr.FinalRegs[1] != 3 {
		t.Errorf("r1 = %d, want 3", tr.FinalRegs[1])
	}
	if tr.Entries[1].Prod1 != NoProducer {
		t.Error("reads of R0 must have no producer")
	}
}

func TestInterpreterStoreLoad(t *testing.T) {
	b := isa.NewBuilder("stld")
	b.MovI(1, 16)   // address
	b.MovI(2, 1234) // data
	b.Store(1, 0, 2)
	b.Load(3, 1, 0)
	b.Halt()
	b.SetMem(make([]int64, 8))
	tr := MustRun(b.MustBuild())
	if tr.FinalRegs[3] != 1234 {
		t.Errorf("loaded %d, want 1234", tr.FinalRegs[3])
	}
	if tr.Entries[2].Addr != 16 || tr.Entries[3].Addr != 16 {
		t.Error("store/load addresses not recorded")
	}
	if tr.Entries[2].Val != 1234 {
		t.Error("store value not recorded")
	}
}

func TestInterpreterMemoryInitIsolation(t *testing.T) {
	init := []int64{7}
	b := isa.NewBuilder("iso")
	b.MovI(1, 42)
	b.Store(0, 0, 1)
	b.Halt()
	b.SetMem(init)
	MustRun(b.MustBuild())
	if init[0] != 7 {
		t.Error("interpreter mutated the program's InitMem image")
	}
}

func TestInterpreterErrors(t *testing.T) {
	t.Run("unaligned", func(t *testing.T) {
		b := isa.NewBuilder("una")
		b.MovI(1, 4)
		b.Load(2, 1, 0)
		b.Halt()
		b.SetMem(make([]int64, 4))
		if _, err := Run(b.MustBuild()); err == nil {
			t.Error("unaligned access accepted")
		}
	})
	t.Run("out-of-bounds", func(t *testing.T) {
		b := isa.NewBuilder("oob")
		b.MovI(1, 1<<20)
		b.Load(2, 1, 0)
		b.Halt()
		b.SetMem(make([]int64, 4))
		if _, err := Run(b.MustBuild()); err == nil {
			t.Error("out-of-bounds access accepted")
		}
	})
	t.Run("negative", func(t *testing.T) {
		b := isa.NewBuilder("neg")
		b.MovI(1, -8)
		b.Load(2, 1, 0)
		b.Halt()
		b.SetMem(make([]int64, 4))
		if _, err := Run(b.MustBuild()); err == nil {
			t.Error("negative address accepted")
		}
	})
	t.Run("runaway", func(t *testing.T) {
		b := isa.NewBuilder("run")
		b.Label("top")
		b.Jmp("top")
		it := Interpreter{MaxInsts: 100}
		if _, err := it.Run(b.MustBuild()); err == nil {
			t.Error("runaway loop accepted")
		}
	})
}

func TestStaticCounts(t *testing.T) {
	p := sumLoop(4, []int64{1, 1, 1, 1})
	tr := MustRun(p)
	counts := tr.StaticCounts()
	// The loop body (PCs 3..8) executes 4 times each.
	for pc := 3; pc <= 8; pc++ {
		if counts[pc] != 4 {
			t.Errorf("pc %d count = %d, want 4", pc, counts[pc])
		}
	}
	if counts[0] != 1 {
		t.Errorf("entry count = %d, want 1", counts[0])
	}
}

// Property: for every entry with a producer, the producer is an earlier
// dynamic instruction that writes the register the entry reads.
func TestProducerConsistencyProperty(t *testing.T) {
	check := func(seed uint32, n uint8) bool {
		size := int64(n%16) + 1
		mem := make([]int64, size)
		s := int64(seed)
		for i := range mem {
			s = s*6364136223846793005 + 1442695040888963407
			mem[i] = (s >> 33) % 100
		}
		tr := MustRun(sumLoop(size, mem))
		for i := range tr.Entries {
			in := tr.Inst(i)
			e := tr.Entries[i]
			if e.Prod1 != NoProducer {
				if e.Prod1 >= int64(i) {
					return false
				}
				p := tr.Inst(int(e.Prod1))
				if p.Dst != in.Src1 || !p.HasDst() {
					return false
				}
			}
			if e.Prod2 != NoProducer {
				if e.Prod2 >= int64(i) {
					return false
				}
				p := tr.Inst(int(e.Prod2))
				if p.Dst != in.Src2 || !p.HasDst() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: interpreter results are deterministic.
func TestDeterminismProperty(t *testing.T) {
	mem := []int64{5, 4, 3, 2, 1}
	p := sumLoop(5, mem)
	t1 := MustRun(p)
	t2 := MustRun(p)
	if t1.Len() != t2.Len() || t1.FinalRegs != t2.FinalRegs {
		t.Error("two runs of the same program differ")
	}
	for i := range t1.Entries {
		if t1.Entries[i] != t2.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}
