package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// sumLoop builds: for i in 0..n-1 { acc += mem[i*8] }; halt.
func sumLoop(n int64, mem []int64) *isa.Program {
	b := isa.NewBuilder("sumloop")
	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rAcc = isa.Reg(3)
		rAdr = isa.Reg(4)
		rV   = isa.Reg(5)
		rC   = isa.Reg(6)
	)
	b.MovI(rI, 0)
	b.MovI(rN, n)
	b.MovI(rAcc, 0)
	b.Label("top")
	b.ShlI(rAdr, rI, 3)
	b.Load(rV, rAdr, 0)
	b.Add(rAcc, rAcc, rV)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

func TestInterpreterSumLoop(t *testing.T) {
	mem := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := sumLoop(8, mem)
	tr, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.FinalRegs[3]; got != 31 {
		t.Errorf("acc = %d, want 31", got)
	}
	// 3 init + 8 iterations * 6 + halt
	if want := 3 + 8*6 + 1; tr.Len() != want {
		t.Errorf("trace length = %d, want %d", tr.Len(), want)
	}
}

func TestInterpreterBranchOutcomes(t *testing.T) {
	p := sumLoop(3, []int64{1, 2, 3})
	tr := MustRun(p)
	var taken, notTaken int
	for i := 0; i < tr.Len(); i++ {
		if tr.Inst(i).IsBranch() {
			if tr.Taken(i) {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 2 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 2,1", taken, notTaken)
	}
}

func TestInterpreterProducers(t *testing.T) {
	b := isa.NewBuilder("prod")
	b.MovI(1, 5)    // dyn 0
	b.MovI(2, 7)    // dyn 1
	b.Add(3, 1, 2)  // dyn 2: prods 0, 1
	b.AddI(3, 3, 1) // dyn 3: prod 2
	b.Halt()
	tr := MustRun(b.MustBuild())
	if p1, p2 := tr.Prod1(2), tr.Prod2(2); p1 != 0 || p2 != 1 {
		t.Errorf("add producers = %d,%d, want 0,1", p1, p2)
	}
	if tr.Prod1(3) != 2 {
		t.Errorf("addi producer = %d, want 2", tr.Prod1(3))
	}
	if tr.Prod1(0) != NoProducer {
		t.Error("movi must have no producer")
	}
}

func TestInterpreterZeroRegister(t *testing.T) {
	b := isa.NewBuilder("zero")
	b.MovI(0, 99) // write to R0 discarded
	b.AddI(1, 0, 3)
	b.Halt()
	tr := MustRun(b.MustBuild())
	if tr.FinalRegs[0] != 0 {
		t.Error("R0 must stay zero")
	}
	if tr.FinalRegs[1] != 3 {
		t.Errorf("r1 = %d, want 3", tr.FinalRegs[1])
	}
	if tr.Prod1(1) != NoProducer {
		t.Error("reads of R0 must have no producer")
	}
}

func TestInterpreterStoreLoad(t *testing.T) {
	b := isa.NewBuilder("stld")
	b.MovI(1, 16)   // address
	b.MovI(2, 1234) // data
	b.Store(1, 0, 2)
	b.Load(3, 1, 0)
	b.Halt()
	b.SetMem(make([]int64, 8))
	tr := MustRun(b.MustBuild())
	if tr.FinalRegs[3] != 1234 {
		t.Errorf("loaded %d, want 1234", tr.FinalRegs[3])
	}
	if tr.Addr(2) != 16 || tr.Addr(3) != 16 {
		t.Error("store/load addresses not recorded")
	}
	if tr.Val(2) != 1234 {
		t.Error("store value not recorded")
	}
}

func TestInterpreterMemoryInitIsolation(t *testing.T) {
	init := []int64{7}
	b := isa.NewBuilder("iso")
	b.MovI(1, 42)
	b.Store(0, 0, 1)
	b.Halt()
	b.SetMem(init)
	MustRun(b.MustBuild())
	if init[0] != 7 {
		t.Error("interpreter mutated the program's InitMem image")
	}
}

func TestInterpreterErrors(t *testing.T) {
	t.Run("unaligned", func(t *testing.T) {
		b := isa.NewBuilder("una")
		b.MovI(1, 4)
		b.Load(2, 1, 0)
		b.Halt()
		b.SetMem(make([]int64, 4))
		if _, err := Run(b.MustBuild()); err == nil {
			t.Error("unaligned access accepted")
		}
	})
	t.Run("out-of-bounds", func(t *testing.T) {
		b := isa.NewBuilder("oob")
		b.MovI(1, 1<<20)
		b.Load(2, 1, 0)
		b.Halt()
		b.SetMem(make([]int64, 4))
		if _, err := Run(b.MustBuild()); err == nil {
			t.Error("out-of-bounds access accepted")
		}
	})
	t.Run("negative", func(t *testing.T) {
		b := isa.NewBuilder("neg")
		b.MovI(1, -8)
		b.Load(2, 1, 0)
		b.Halt()
		b.SetMem(make([]int64, 4))
		if _, err := Run(b.MustBuild()); err == nil {
			t.Error("negative address accepted")
		}
	})
	t.Run("runaway", func(t *testing.T) {
		b := isa.NewBuilder("run")
		b.Label("top")
		b.Jmp("top")
		it := Interpreter{MaxInsts: 100}
		if _, err := it.Run(b.MustBuild()); err == nil {
			t.Error("runaway loop accepted")
		}
	})
}

func TestStaticCounts(t *testing.T) {
	p := sumLoop(4, []int64{1, 1, 1, 1})
	tr := MustRun(p)
	counts := tr.StaticCounts()
	// The loop body (PCs 3..8) executes 4 times each.
	for pc := 3; pc <= 8; pc++ {
		if counts[pc] != 4 {
			t.Errorf("pc %d count = %d, want 4", pc, counts[pc])
		}
	}
	if counts[0] != 1 {
		t.Errorf("entry count = %d, want 1", counts[0])
	}
}

// Property: for every entry with a producer, the producer is an earlier
// dynamic instruction that writes the register the entry reads.
func TestProducerConsistencyProperty(t *testing.T) {
	check := func(seed uint32, n uint8) bool {
		size := int64(n%16) + 1
		mem := make([]int64, size)
		s := int64(seed)
		for i := range mem {
			s = s*6364136223846793005 + 1442695040888963407
			mem[i] = (s >> 33) % 100
		}
		tr := MustRun(sumLoop(size, mem))
		for i := 0; i < tr.Len(); i++ {
			in := tr.Inst(i)
			if p1 := tr.Prod1(i); p1 != NoProducer {
				if p1 >= int64(i) {
					return false
				}
				p := tr.Inst(int(p1))
				if p.Dst != in.Src1 || !p.HasDst() {
					return false
				}
			}
			if p2 := tr.Prod2(i); p2 != NoProducer {
				if p2 >= int64(i) {
					return false
				}
				p := tr.Inst(int(p2))
				if p.Dst != in.Src2 || !p.HasDst() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// refEntry is the pre-SoA 48-byte array-of-structs record, retained here as
// the behavioural reference for the differential tests below.
type refEntry struct {
	PC    int32
	Prod1 int64
	Prod2 int64
	Addr  int64
	Val   int64
	Taken bool
}

// referenceRun is a direct port of the pre-SoA interpreter: it executes p
// into a flat []refEntry, independently of the chunked column builder.
func referenceRun(t *testing.T, p *isa.Program) ([]refEntry, [isa.NumRegs]int64) {
	t.Helper()
	mem := make([]int64, len(p.InitMem))
	copy(mem, p.InitMem)
	var regs [isa.NumRegs]int64
	var lastWriter [isa.NumRegs]int64
	for r := range lastWriter {
		lastWriter[r] = NoProducer
	}
	var entries []refEntry
	pc := p.Entry
	for n := 0; ; n++ {
		if n >= 1_000_000 {
			t.Fatal("referenceRun: runaway program")
		}
		in := p.Insts[pc]
		e := refEntry{PC: int32(pc), Prod1: NoProducer, Prod2: NoProducer}
		if in.ReadsSrc1() && in.Src1 != isa.Zero {
			e.Prod1 = lastWriter[in.Src1]
		}
		if in.ReadsSrc2() && in.Src2 != isa.Zero {
			e.Prod2 = lastWriter[in.Src2]
		}
		next := pc + 1
		switch {
		case in.IsALU():
			v, err := in.Eval(regs[in.Src1], regs[in.Src2])
			if err != nil {
				t.Fatalf("referenceRun: pc %d: %v", pc, err)
			}
			e.Val = v
			if in.Dst != isa.Zero {
				regs[in.Dst] = v
				lastWriter[in.Dst] = int64(len(entries))
			}
		case in.Op == isa.Load:
			addr := regs[in.Src1] + in.Imm
			v := mem[addr>>3]
			e.Addr, e.Val = addr, v
			if in.Dst != isa.Zero {
				regs[in.Dst] = v
				lastWriter[in.Dst] = int64(len(entries))
			}
		case in.Op == isa.Store:
			addr := regs[in.Src1] + in.Imm
			mem[addr>>3] = regs[in.Src2]
			e.Addr, e.Val = addr, regs[in.Src2]
		case in.Op == isa.BrZ:
			e.Taken = regs[in.Src1] == 0
			if e.Taken {
				next = in.Target
			}
		case in.Op == isa.BrNZ:
			e.Taken = regs[in.Src1] != 0
			if e.Taken {
				next = in.Target
			}
		case in.Op == isa.Jmp:
			e.Taken = true
			next = in.Target
		case in.Op == isa.Halt:
			return append(entries, e), regs
		}
		entries = append(entries, e)
		pc = next
	}
}

// diffTrace compares every column of tr — through both the random accessors
// and the cursor — against the reference entries.
func diffTrace(t *testing.T, tr *Trace, want []refEntry) {
	t.Helper()
	if tr.Len() != len(want) {
		t.Fatalf("trace length = %d, want %d", tr.Len(), len(want))
	}
	cu := tr.Cursor()
	for i, e := range want {
		if !cu.Next() {
			t.Fatalf("cursor exhausted at %d of %d", i, len(want))
		}
		if cu.Index() != i {
			t.Fatalf("cursor index = %d, want %d", cu.Index(), i)
		}
		got := refEntry{PC: tr.PC(i), Prod1: tr.Prod1(i), Prod2: tr.Prod2(i),
			Addr: tr.Addr(i), Val: tr.Val(i), Taken: tr.Taken(i)}
		if got != e {
			t.Fatalf("entry %d (accessors) = %+v, want %+v", i, got, e)
		}
		got = refEntry{PC: cu.PC(), Prod1: cu.Prod1(), Prod2: cu.Prod2(),
			Addr: cu.Addr(), Val: cu.Val(), Taken: cu.Taken()}
		if got != e {
			t.Fatalf("entry %d (cursor) = %+v, want %+v", i, got, e)
		}
	}
	if cu.Next() {
		t.Fatal("cursor ran past the end")
	}
}

// randomProgram builds a seeded random straight-ish-line workload mixing
// ALU chains, loads, stores and a counted loop, for the differential and
// escape-path stress tests.
func randomProgram(seed int64, iters int64) *isa.Program {
	rng := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) & 0x7FFFFFFF
	}
	const words = 64
	mem := make([]int64, words)
	for i := range mem {
		mem[i] = rng() % 1000
	}
	b := isa.NewBuilder("rand")
	b.MovI(1, 0)
	b.MovI(2, iters)
	b.Label("top")
	for k := 0; k < 12; k++ {
		dst := isa.Reg(3 + rng()%8)
		s1 := isa.Reg(1 + rng()%10)
		switch rng() % 4 {
		case 0:
			b.AddI(dst, s1, rng()%16)
		case 1:
			b.Add(dst, s1, isa.Reg(1+rng()%10))
		case 2:
			b.AndI(dst, s1, (words-1)*8)
			b.AndI(dst, dst, ^int64(7))
			b.Load(isa.Reg(3+rng()%8), dst, 0)
		default:
			b.AndI(dst, s1, (words-1)*8)
			b.AndI(dst, dst, ^int64(7))
			b.Store(dst, 0, isa.Reg(1+rng()%10))
		}
	}
	b.AddI(1, 1, 1)
	b.CmpLT(11, 1, 2)
	b.BrNZ(11, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

// TestSoAMatchesAoSReference is the trace-level differential: the chunked
// structure-of-arrays builder must reproduce, entry for entry, exactly what
// the retired array-of-structs interpreter recorded — across chunk
// boundaries (sumLoop sized past chunkLen) and on randomized programs.
func TestSoAMatchesAoSReference(t *testing.T) {
	mem := make([]int64, 8192)
	for i := range mem {
		mem[i] = int64(i * 3)
	}
	progs := []*isa.Program{
		sumLoop(8192, mem), // 3 + 8192*6 + 1 entries: spans multiple chunks
		randomProgram(1, 500),
		randomProgram(42, 2000),
	}
	for _, p := range progs {
		want, wantRegs := referenceRun(t, p)
		tr := MustRun(p)
		if tr.FinalRegs != wantRegs {
			t.Errorf("%s: final registers diverge from AoS reference", p.Name)
		}
		diffTrace(t, tr, want)
	}
}

// TestProducerDeltaEscapePath forces the 32-bit producer-delta escape on
// randomized programs by lowering the escape threshold, and requires the
// escaped trace to decode identically to the unescaped one and to the AoS
// reference. DeltaLimit=1 escapes every link; small limits mix inline and
// escaped links on the same trace.
func TestProducerDeltaEscapePath(t *testing.T) {
	for _, limit := range []uint32{1, 2, 7, 64} {
		for _, seed := range []int64{3, 99, 123456} {
			p := randomProgram(seed, 300)
			want, _ := referenceRun(t, p)
			it := Interpreter{DeltaLimit: limit}
			tr, err := it.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			escapes := 0
			if tr.over1 != nil {
				escapes += len(tr.over1)
			}
			if tr.over2 != nil {
				escapes += len(tr.over2)
			}
			if escapes == 0 {
				t.Fatalf("seed %d limit %d: escape path not exercised", seed, limit)
			}
			diffTrace(t, tr, want)
		}
	}
}

// Property: interpreter results are deterministic.
func TestDeterminismProperty(t *testing.T) {
	mem := []int64{5, 4, 3, 2, 1}
	p := sumLoop(5, mem)
	t1 := MustRun(p)
	t2 := MustRun(p)
	if t1.Len() != t2.Len() || t1.FinalRegs != t2.FinalRegs {
		t.Error("two runs of the same program differ")
	}
	for i := 0; i < t1.Len(); i++ {
		a := refEntry{t1.PC(i), t1.Prod1(i), t1.Prod2(i), t1.Addr(i), t1.Val(i), t1.Taken(i)}
		b := refEntry{t2.PC(i), t2.Prod1(i), t2.Prod2(i), t2.Addr(i), t2.Val(i), t2.Taken(i)}
		if a != b {
			t.Fatalf("entry %d differs", i)
		}
	}
}

// TestSharedCursorWindows pins the chunk-window contract batched simulation
// relies on: windows are contiguous, ascending, cover exactly [0, Len), and
// every window but the last spans one full chunk.
func TestSharedCursorWindows(t *testing.T) {
	for _, n := range []int64{0, 10, chunkLen/6 + 5, 2*chunkLen/6 + 7} {
		mem := make([]int64, 8*(n+1))
		tr := MustRun(sumLoop(n, mem))
		sc := tr.SharedCursor()
		next, windows := 0, 0
		for sc.Next() {
			lo, hi := sc.Window()
			if lo != next {
				t.Fatalf("n=%d: window %d starts at %d, want %d", n, windows, lo, next)
			}
			if hi <= lo || hi > tr.Len() {
				t.Fatalf("n=%d: window %d = [%d, %d) out of range (len %d)", n, windows, lo, hi, tr.Len())
			}
			if hi != tr.Len() && hi-lo != chunkLen {
				t.Fatalf("n=%d: interior window %d has length %d, want %d", n, windows, hi-lo, chunkLen)
			}
			next = hi
			windows++
		}
		if next != tr.Len() {
			t.Fatalf("n=%d: windows cover [0, %d), want [0, %d)", n, next, tr.Len())
		}
		if windows != tr.NumChunks() {
			t.Fatalf("n=%d: %d windows, NumChunks %d", n, windows, tr.NumChunks())
		}
	}
}
