package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// serialProgram builds a small workload with loads, stores and branches,
// looping long enough that the trace exercises several branch-bitset words.
func serialProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("serial")
	const words = 64
	mem := make([]int64, words)
	for i := range mem {
		mem[i] = int64(i*3 + 1)
	}
	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rAdr = isa.Reg(3)
		rV   = isa.Reg(4)
		rC   = isa.Reg(5)
	)
	b.MovI(rI, 0)
	b.MovI(rN, words)
	b.Label("top")
	b.ShlI(rAdr, rI, 3)
	b.Load(rV, rAdr, 0)
	b.Add(rV, rV, rV)
	b.Store(rAdr, 0, rV)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

func tracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("len %d != %d", a.Len(), b.Len())
	}
	if a.FinalRegs != b.FinalRegs {
		t.Fatalf("final registers diverge")
	}
	for i := 0; i < a.Len(); i++ {
		if a.PC(i) != b.PC(i) || a.Prod1(i) != b.Prod1(i) || a.Prod2(i) != b.Prod2(i) ||
			a.Addr(i) != b.Addr(i) || a.Val(i) != b.Val(i) || a.Taken(i) != b.Taken(i) {
			t.Fatalf("entry %d diverges: (%d %d %d %d %d %v) vs (%d %d %d %d %d %v)", i,
				a.PC(i), a.Prod1(i), a.Prod2(i), a.Addr(i), a.Val(i), a.Taken(i),
				b.PC(i), b.Prod1(i), b.Prod2(i), b.Addr(i), b.Val(i), b.Taken(i))
		}
	}
}

func TestSerialRoundTrip(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()), prog)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)

	// Deterministic bytes: re-encoding either trace yields identical output.
	var buf2 bytes.Buffer
	if err := got.EncodeBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding a decoded trace changed the bytes")
	}
}

// TestSerialRoundTripEscapedDeltas exercises the overflow-map path: with a
// tiny DeltaLimit, long-range producer links go through over1/over2 and must
// survive the round trip.
func TestSerialRoundTripEscapedDeltas(t *testing.T) {
	prog := serialProgram(t)
	it := Interpreter{DeltaLimit: 4}
	tr, err := it.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.over1) == 0 && len(tr.over2) == 0 {
		t.Fatal("test workload produced no escaped deltas; lower DeltaLimit")
	}
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()), prog)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}

func TestSerialDecodeRejectsCorruption(t *testing.T) {
	prog := serialProgram(t)
	tr := MustRun(prog)
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTTRACE"), raw[8:]...),
		"truncated": raw[:len(raw)/2],
		"trailing":  append(append([]byte(nil), raw...), 0xFF),
	}
	for name, data := range cases {
		if _, err := DecodeBinary(bytes.NewReader(data), prog); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}

	// A different program shape must be rejected even with intact bytes.
	other := isa.NewBuilder("other")
	other.Halt()
	op := other.MustBuild()
	if _, err := DecodeBinary(bytes.NewReader(raw), op); err == nil {
		t.Error("decode against a different program succeeded, want error")
	}
}
