// Package profile mines the raw statistics PTHSEL consumes from a dynamic
// trace: per-static-load cache behaviour (via a functional simulation of the
// data-side memory hierarchy), per-PC execution counts, and the set of
// "problem" loads — the small number of static loads that generate the bulk
// of L2 misses and defy the L1/L2 (the paper's targets).
package profile

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/fingerprint"
	"repro/internal/trace"
)

// Config captures exactly the configuration Collect reads: the data-side
// cache geometries and the stride prefetcher. It deliberately excludes every
// other hierarchy field (memory latency, bus, TLBs, MSHRs, L1I) — profiling
// is functional, so those cannot change its output, and the staged pipeline
// keys profile artifacts on this struct alone.
type Config struct {
	L1D, L2       cache.Config
	StrideEntries int
	StrideDegree  int
}

// ConfigFromHier projects a full hierarchy configuration onto the fields
// profiling depends on.
func ConfigFromHier(h cache.HierConfig) Config {
	return Config{
		L1D:           h.L1D,
		L2:            h.L2,
		StrideEntries: h.StrideEntries,
		StrideDegree:  h.StrideDegree,
	}
}

// Fingerprint returns the content fingerprint of the profiling stage config.
func (c Config) Fingerprint() (string, error) { return fingerprint.JSON(c) }

// Service-level codes recorded per dynamic instruction.
const (
	LvlNone uint8 = iota // not a load
	LvlL1
	LvlL2
	LvlMem
)

// LoadStats describes one static load's memory behaviour in the profile.
type LoadStats struct {
	PC        int32
	Execs     int64 // dynamic executions
	L1Misses  int64
	L2Misses  int64
	MissDynIx []int64 // dynamic indices of the L2-missing instances
}

// L1MissRate returns the load's L1 miss rate (MISSRATEL1 in eq. E7).
func (s *LoadStats) L1MissRate() float64 {
	if s.Execs == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Execs)
}

// Profile is the mined per-program statistics.
type Profile struct {
	ExecCounts []int64 // per static PC
	Loads      map[int32]*LoadStats
	TotalInsts int64
	TotalL2    int64   // total demand L2 misses (data side)
	Levels     []uint8 // per dynamic instruction: load service level (Lvl*)
}

// Collect runs a functional (timing-free) simulation of the data cache
// hierarchy over the trace, attributing misses to static loads. Stores are
// simulated for their cache side effects but not recorded.
func Collect(tr *trace.Trace, cfg Config) *Profile {
	l1 := cache.New(cfg.L1D)
	l2 := cache.New(cfg.L2)
	var pref *cache.StridePrefetcher
	if cfg.StrideEntries > 0 {
		pref = cache.NewStridePrefetcher(cfg.StrideEntries, cfg.StrideDegree)
	}
	p := &Profile{
		ExecCounts: make([]int64, len(tr.Prog.Insts)),
		Loads:      make(map[int32]*LoadStats),
		TotalInsts: int64(tr.Len()),
		Levels:     make([]uint8, tr.Len()),
	}
	// Sequential scan: the cursor streams only the PC and address columns of
	// the chunked SoA trace.
	for cu := tr.Cursor(); cu.Next(); {
		pc := cu.PC()
		p.ExecCounts[pc]++
		in := tr.Prog.Insts[pc]
		switch {
		case in.IsLoad():
			addr := cu.Addr()
			ls := p.Loads[pc]
			if ls == nil {
				ls = &LoadStats{PC: pc}
				p.Loads[pc] = ls
			}
			ls.Execs++
			if pref != nil {
				if paddr, ok := pref.Train(int64(pc), addr); ok && paddr >= 0 && !l2.Probe(paddr) {
					l2.Fill(paddr, 0, cache.NoPrefetcher)
				}
			}
			i := cu.Index()
			p.Levels[i] = LvlL1
			if r := l1.Lookup(addr); !r.Hit {
				ls.L1Misses++
				p.Levels[i] = LvlL2
				if r2 := l2.Lookup(addr); !r2.Hit {
					ls.L2Misses++
					p.TotalL2++
					p.Levels[i] = LvlMem
					ls.MissDynIx = append(ls.MissDynIx, int64(i))
					l2.Fill(addr, 0, cache.NoPrefetcher)
				}
				l1.Fill(addr, 0, cache.NoPrefetcher)
			}
		case in.IsStore():
			addr := cu.Addr()
			if r := l1.Lookup(addr); !r.Hit {
				if r2 := l2.Lookup(addr); !r2.Hit {
					l2.Fill(addr, 0, cache.NoPrefetcher)
				}
				l1.Fill(addr, 0, cache.NoPrefetcher)
			}
		}
	}
	return p
}

// ProblemLoads returns the static loads that together account for at least
// coverage (e.g. 0.9) of all L2 misses, largest first, skipping loads with
// fewer than minMisses misses.
func (p *Profile) ProblemLoads(coverage float64, minMisses int64) []*LoadStats {
	all := make([]*LoadStats, 0, len(p.Loads))
	for _, ls := range p.Loads {
		if ls.L2Misses >= minMisses {
			all = append(all, ls)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].L2Misses != all[j].L2Misses {
			return all[i].L2Misses > all[j].L2Misses
		}
		return all[i].PC < all[j].PC
	})
	var out []*LoadStats
	var acc int64
	for _, ls := range all {
		if float64(acc) >= coverage*float64(p.TotalL2) {
			break
		}
		out = append(out, ls)
		acc += ls.L2Misses
	}
	return out
}
