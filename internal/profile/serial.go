package profile

// Binary (de)serialization of mined profiles for the on-disk artifact spill
// tier. The per-dynamic-instruction Levels column — the profile's bulk — is
// written as one raw byte run; loads are sorted by PC so the encoding is
// deterministic for identical profiles.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

const serialMagic = "PXPRF001"

var serialOrder = binary.LittleEndian

// EncodeBinary writes the profile in the spill-tier format.
func (p *Profile) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(serialMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		serialOrder.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeI64 := func(v int64) error {
		serialOrder.PutUint64(scratch[:8], uint64(v))
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := writeI64(p.TotalInsts); err != nil {
		return err
	}
	if err := writeI64(p.TotalL2); err != nil {
		return err
	}
	if err := writeU32(uint32(len(p.ExecCounts))); err != nil {
		return err
	}
	for _, c := range p.ExecCounts {
		if err := writeI64(c); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(len(p.Levels))); err != nil {
		return err
	}
	if _, err := bw.Write(p.Levels); err != nil {
		return err
	}
	pcs := make([]int32, 0, len(p.Loads))
	for pc := range p.Loads {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	if err := writeU32(uint32(len(pcs))); err != nil {
		return err
	}
	for _, pc := range pcs {
		ls := p.Loads[pc]
		if err := writeU32(uint32(ls.PC)); err != nil {
			return err
		}
		for _, v := range []int64{ls.Execs, ls.L1Misses, ls.L2Misses} {
			if err := writeI64(v); err != nil {
				return err
			}
		}
		if err := writeU32(uint32(len(ls.MissDynIx))); err != nil {
			return err
		}
		for _, ix := range ls.MissDynIx {
			if err := writeI64(ix); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeBinary reads a profile in the spill-tier format. Decode errors mean
// corruption (or a stale format); callers quarantine and rebuild.
func DecodeBinary(r io.Reader) (*Profile, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, fmt.Errorf("profile: decode header: %w", err)
	}
	if string(scratch[:8]) != serialMagic {
		return nil, fmt.Errorf("profile: bad magic %q", scratch[:8])
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return serialOrder.Uint32(scratch[:4]), nil
	}
	readI64 := func() (int64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return int64(serialOrder.Uint64(scratch[:8])), nil
	}
	p := &Profile{Loads: make(map[int32]*LoadStats)}
	var err error
	if p.TotalInsts, err = readI64(); err != nil {
		return nil, fmt.Errorf("profile: decode totals: %w", err)
	}
	if p.TotalL2, err = readI64(); err != nil {
		return nil, fmt.Errorf("profile: decode totals: %w", err)
	}
	nExec, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("profile: decode exec counts: %w", err)
	}
	if nExec > 1<<28 {
		return nil, fmt.Errorf("profile: implausible exec-count length %d", nExec)
	}
	p.ExecCounts = make([]int64, nExec)
	for i := range p.ExecCounts {
		if p.ExecCounts[i], err = readI64(); err != nil {
			return nil, fmt.Errorf("profile: decode exec counts: %w", err)
		}
	}
	nLevels, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("profile: decode levels: %w", err)
	}
	if int64(nLevels) != p.TotalInsts {
		return nil, fmt.Errorf("profile: levels length %d != total instructions %d", nLevels, p.TotalInsts)
	}
	p.Levels = make([]uint8, nLevels)
	if _, err := io.ReadFull(br, p.Levels); err != nil {
		return nil, fmt.Errorf("profile: decode levels: %w", err)
	}
	nLoads, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("profile: decode loads: %w", err)
	}
	if nLoads > nExec {
		return nil, fmt.Errorf("profile: %d loads for %d static instructions", nLoads, nExec)
	}
	for i := uint32(0); i < nLoads; i++ {
		pc, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("profile: decode loads: %w", err)
		}
		ls := &LoadStats{PC: int32(pc)}
		for _, dst := range []*int64{&ls.Execs, &ls.L1Misses, &ls.L2Misses} {
			if *dst, err = readI64(); err != nil {
				return nil, fmt.Errorf("profile: decode load %d: %w", pc, err)
			}
		}
		nIx, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("profile: decode load %d: %w", pc, err)
		}
		if int64(nIx) > p.TotalInsts {
			return nil, fmt.Errorf("profile: load %d has %d miss indices for %d instructions", pc, nIx, p.TotalInsts)
		}
		if nIx > 0 {
			ls.MissDynIx = make([]int64, nIx)
			for j := range ls.MissDynIx {
				if ls.MissDynIx[j], err = readI64(); err != nil {
					return nil, fmt.Errorf("profile: decode load %d: %w", pc, err)
				}
			}
		}
		p.Loads[ls.PC] = ls
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("profile: trailing bytes after last load")
	}
	return p, nil
}
