package profile

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// strideLoop walks a large array with a cache-hostile stride so the profile
// has real L1/L2 misses and a non-empty problem-load set.
func strideLoop(t *testing.T) *trace.Trace {
	t.Helper()
	b := isa.NewBuilder("serial-profile")
	const words = 1 << 14
	mem := make([]int64, words)
	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rAdr = isa.Reg(3)
		rV   = isa.Reg(4)
		rC   = isa.Reg(5)
	)
	b.MovI(rI, 0)
	b.MovI(rN, words/8)
	b.Label("top")
	b.ShlI(rAdr, rI, 6) // stride 64 bytes: a new line every access
	b.Load(rV, rAdr, 0)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return trace.MustRun(b.MustBuild())
}

func smallHier() Config {
	return Config{
		L1D: cache.Config{SizeBytes: 1 << 10, Ways: 2, BlockBytes: 64, HitLatency: 2},
		L2:  cache.Config{SizeBytes: 8 << 10, Ways: 4, BlockBytes: 64, HitLatency: 12},
	}
}

func TestProfileSerialRoundTrip(t *testing.T) {
	tr := strideLoop(t)
	p := Collect(tr, smallHier())
	if p.TotalL2 == 0 || len(p.Loads) == 0 {
		t.Fatal("workload produced no L2 misses; profile round trip untested")
	}
	var buf bytes.Buffer
	if err := p.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Error("profile round trip diverged")
	}
	var buf2 bytes.Buffer
	if err := got.EncodeBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding a decoded profile changed the bytes")
	}
}

func TestProfileSerialRejectsCorruption(t *testing.T) {
	tr := strideLoop(t)
	p := Collect(tr, smallHier())
	var buf bytes.Buffer
	if err := p.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTPROFL"), raw[8:]...),
		"truncated": raw[:len(raw)-7],
		"trailing":  append(append([]byte(nil), raw...), 1),
	} {
		if _, err := DecodeBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
