package profile

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// noPref returns a profiling config with the stride prefetcher disabled so
// the synthetic stride loops below actually miss.
func noPref() Config {
	h := cache.DefaultHierConfig()
	h.StrideEntries = 0
	return ConfigFromHier(h)
}

// mixedLoop builds a loop with one always-missing load (64B stride over a
// huge region) and one always-hitting load (a single hot word).
func mixedLoop(iters int) (*isa.Program, int, int) {
	b := isa.NewBuilder("mixed")
	const (
		rI, rN, rA, rV, rH, rC = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6)
	)
	b.MovI(rI, 0)
	b.MovI(rN, int64(iters))
	b.Label("top")
	b.ShlI(rA, rI, 6)
	missPC := b.Load(rV, rA, 8)
	hitPC := b.Load(rH, isa.Zero, 0) // always word 0
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(make([]int64, iters*8+8))
	return b.MustBuild(), missPC, hitPC
}

func TestCollectSeparatesLoads(t *testing.T) {
	p, missPC, hitPC := mixedLoop(300)
	tr := trace.MustRun(p)
	prof := Collect(tr, noPref())

	miss := prof.Loads[int32(missPC)]
	hit := prof.Loads[int32(hitPC)]
	if miss == nil || hit == nil {
		t.Fatal("loads missing from profile")
	}
	if miss.Execs != 300 || hit.Execs != 300 {
		t.Errorf("exec counts = %d, %d", miss.Execs, hit.Execs)
	}
	if miss.L2Misses < 290 {
		t.Errorf("stride load misses = %d, want ~300", miss.L2Misses)
	}
	if hit.L2Misses > 1 {
		t.Errorf("hot load misses = %d, want ≤1", hit.L2Misses)
	}
	if miss.L1MissRate() < 0.95 {
		t.Errorf("stride L1 miss rate = %v", miss.L1MissRate())
	}
	if hit.L1MissRate() > 0.01 {
		t.Errorf("hot L1 miss rate = %v", hit.L1MissRate())
	}
}

func TestCollectLevels(t *testing.T) {
	p, missPC, _ := mixedLoop(100)
	tr := trace.MustRun(p)
	prof := Collect(tr, noPref())
	if len(prof.Levels) != tr.Len() {
		t.Fatal("levels not per dynamic instruction")
	}
	var memLevels int
	for i := 0; i < tr.Len(); i++ {
		if !tr.Inst(i).IsLoad() && prof.Levels[i] != LvlNone {
			t.Fatal("non-load has a service level")
		}
		if tr.PC(i) == int32(missPC) && prof.Levels[i] == LvlMem {
			memLevels++
		}
	}
	if memLevels < 90 {
		t.Errorf("only %d memory-level records for the stride load", memLevels)
	}
}

func TestMissDynIxPointAtMisses(t *testing.T) {
	p, missPC, _ := mixedLoop(50)
	tr := trace.MustRun(p)
	prof := Collect(tr, noPref())
	ls := prof.Loads[int32(missPC)]
	if int64(len(ls.MissDynIx)) != ls.L2Misses {
		t.Fatalf("%d indices for %d misses", len(ls.MissDynIx), ls.L2Misses)
	}
	for _, ix := range ls.MissDynIx {
		if tr.PC(int(ix)) != int32(missPC) {
			t.Fatal("miss index points at the wrong instruction")
		}
	}
}

func TestProblemLoadsCoverageAndThreshold(t *testing.T) {
	p, missPC, _ := mixedLoop(300)
	tr := trace.MustRun(p)
	prof := Collect(tr, noPref())
	problems := prof.ProblemLoads(0.9, 10)
	if len(problems) != 1 || problems[0].PC != int32(missPC) {
		t.Fatalf("problem loads = %+v", problems)
	}
	// A high floor excludes everything.
	if got := prof.ProblemLoads(0.9, 1_000_000); len(got) != 0 {
		t.Errorf("threshold ignored: %v", got)
	}
}

func TestStridePrefetcherSuppressesStreamingMisses(t *testing.T) {
	p, missPC, _ := mixedLoop(300)
	tr := trace.MustRun(p)
	with := Collect(tr, ConfigFromHier(cache.DefaultHierConfig()))
	without := Collect(tr, noPref())
	lw := with.Loads[int32(missPC)]
	lo := without.Loads[int32(missPC)]
	if lw.L2Misses*4 > lo.L2Misses {
		t.Errorf("prefetcher left %d of %d streaming misses", lw.L2Misses, lo.L2Misses)
	}
}

func TestProblemLoadsDeterministicOrder(t *testing.T) {
	p, _, _ := mixedLoop(200)
	tr := trace.MustRun(p)
	a := Collect(tr, noPref()).ProblemLoads(0.99, 1)
	b := Collect(tr, noPref()).ProblemLoads(0.99, 1)
	if len(a) != len(b) {
		t.Fatal("non-deterministic problem set")
	}
	for i := range a {
		if a[i].PC != b[i].PC {
			t.Fatal("non-deterministic ordering")
		}
	}
}
