package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "gcc",
		Build:       buildGCC,
		Description: "IR-walk-like: short-stride data-dependent walk over 32-byte records with per-record branching; moderate miss rate and a modest memory component, like gcc's 25% memory share in the paper",
	})
}

// buildGCC walks an IR-node arena: each 32-byte record holds a type tag, a
// byte delta to the next record, and a value. The next address comes from
// the current record (a semi-chase), but deltas are short so the walk has
// real locality — misses matter but do not dominate, matching gcc's profile.
func buildGCC(c InputClass) *isa.Program {
	seed := uint64(0x676363)
	arenaWords := 1 << 16 // 512KB arena
	steps := 9000
	extraWork := 6
	if c == Ref {
		// Only data and immediates change across input classes: the static
		// code must be identical so p-threads selected from one input's
		// profile install on the other (same binary, different input).
		seed = 0x67635265
		steps = 8000
	}
	arenaBytes := arenaWords * 8

	mem := make([]int64, arenaWords)
	r := NewLCG(seed)
	// Records are 4 words (32 bytes): [type, delta, value, pad].
	for rec := 0; rec < arenaWords/4; rec++ {
		w := rec * 4
		mem[w] = int64(r.Intn(16))              // type
		mem[w+1] = int64((1 + r.Intn(16)) * 32) // delta: 32..512 bytes
		mem[w+2] = int64(r.Intn(1000))          // value
	}

	const (
		rP    = isa.Reg(1)
		rOff  = isa.Reg(2)
		rT    = isa.Reg(3)
		rD    = isa.Reg(4)
		rV    = isa.Reg(5)
		rC    = isa.Reg(6)
		rAcc  = isa.Reg(7)
		rAcc2 = isa.Reg(8)
		rI    = isa.Reg(9)
		rN    = isa.Reg(10)
		rC2   = isa.Reg(11)
		rW    = isa.Reg(12)
	)

	b := isa.NewBuilder("gcc." + c.String())
	b.MovI(rOff, 0)
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.Label("top")
	b.Mov(rP, rOff)      // arena starts at byte 0: address = offset
	b.Load(rT, rP, 0)    // type: problem load (head of record)
	b.Load(rD, rP, 8)    // delta (same block as type)
	b.Load(rV, rP, 16)   // value (same block)
	b.CmpLTI(rC, rT, 13) // types 0..15: ~81% taken, mostly predictable
	b.BrZ(rC, "rare")
	b.Add(rAcc, rAcc, rV)
	b.Jmp("join")
	b.Label("rare")
	b.Sub(rAcc2, rAcc2, rV)
	b.Label("join")
	for k := 0; k < extraWork; k++ {
		b.AddI(rW, rW, 3) // per-node processing work
	}
	b.Add(rOff, rOff, rD)
	b.AndI(rOff, rOff, int64(arenaBytes-1))
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
