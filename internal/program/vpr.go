package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "vpr.place",
		Build:       buildVPRPlace,
		Description: "placement-like: LCG-selected random cell pair plus adjacent fields from a >L2 grid, with a larger per-iteration cost computation than twolf",
	})
	register(Benchmark{
		Name:        "vpr.route",
		Build:       buildVPRRoute,
		Description: "routing-wavefront-like: a queue stream fans out to four neighbor loads per expansion, all sharing one slice prefix — the natural composite/merged p-thread case",
	})
}

// buildVPRPlace mimics the placer's swap evaluation: two random cells and a
// neighbouring field of each, with a ~15-instruction cost computation and an
// unpredictable accept branch.
func buildVPRPlace(c InputClass) *isa.Program {
	seed := int64(0x7670722e70)
	cellWords := 1 << 18 // 2MB
	steps := 8000
	if c == Ref {
		seed = 0x76707250
		cellWords = 1 << 17
		steps = 7000
	}
	// Mask to an even word so the +8 byte neighbour stays in the same
	// record pair and in bounds.
	cmask := int64(cellWords - 2)

	mem := make([]int64, cellWords)
	r := NewLCG(uint64(seed))
	for w := range mem {
		mem[w] = int64(r.Intn(2048))
	}

	const (
		rS    = isa.Reg(1)
		rI1   = isa.Reg(2)
		rA1   = isa.Reg(3)
		rV1   = isa.Reg(4)
		rV1n  = isa.Reg(5)
		rI2   = isa.Reg(6)
		rA2   = isa.Reg(7)
		rV2   = isa.Reg(8)
		rV2n  = isa.Reg(9)
		rD1   = isa.Reg(10)
		rD2   = isa.Reg(11)
		rCost = isa.Reg(12)
		rC    = isa.Reg(13)
		rAcc  = isa.Reg(14)
		rRej  = isa.Reg(15)
		rI    = isa.Reg(16)
		rN    = isa.Reg(17)
		rC2   = isa.Reg(18)
		rW    = isa.Reg(19)
		rHot  = isa.Reg(20)
		rT1   = isa.Reg(21)
		rMask = isa.Reg(22)
	)
	hotMask := int64(4094) // 32KB hot subregion, even-preserving
	coldExtra := cmask &^ hotMask

	b := isa.NewBuilder("vpr.place." + c.String())
	b.MovI(rS, seed)
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.MovI(rHot, hotMask)
	b.Label("top")
	// Branch-free hot/cold mask: every 8th candidate pair is cold.
	b.AndI(rT1, rI, 7)
	b.CmpEQI(rT1, rT1, 0)
	b.MulI(rT1, rT1, coldExtra)
	b.Or(rMask, rHot, rT1)
	b.MulI(rS, rS, lcgMulA)
	b.AddI(rS, rS, lcgAddC)
	b.ShrI(rI1, rS, 33)
	b.And(rI1, rI1, rMask)
	b.ShlI(rA1, rI1, 3)
	b.Load(rV1, rA1, 0)  // cell 1: problem load
	b.Load(rV1n, rA1, 8) // cell 1 neighbour field (same block)
	b.MulI(rS, rS, lcgMulA)
	b.AddI(rS, rS, lcgAddC)
	b.ShrI(rI2, rS, 33)
	b.And(rI2, rI2, rMask)
	b.ShlI(rA2, rI2, 3)
	b.Load(rV2, rA2, 0)  // cell 2: problem load
	b.Load(rV2n, rA2, 8) // cell 2 neighbour field
	b.Sub(rD1, rV1, rV2)
	b.Sub(rD2, rV1n, rV2n)
	b.Add(rCost, rD1, rD2)
	b.MulI(rCost, rCost, 3)
	b.Add(rAcc, rAcc, rCost)
	b.CmpLTI(rC, rCost, -2800) // biased accept branch (~18%)
	b.BrZ(rC, "join")
	b.AddI(rRej, rRej, 1)
	b.Label("join")
	for k := 0; k < 5; k++ {
		b.AddI(rW, rW, 1) // annealing bookkeeping
	}
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

// buildVPRRoute mimics wavefront expansion: queue[i] supplies the byte
// offset of an interior grid cell; the loop reads its four neighbours (east,
// west, south, north) and keeps a running minimum with data-dependent
// branches. All four problem loads share the queue load in their slices.
func buildVPRRoute(c InputClass) *isa.Program {
	seed := uint64(0x7670722e72)
	gridW := 512 // words per row
	gridH := 512 // 2MB grid
	queueEntries := 1 << 15
	steps := 7000
	if c == Ref {
		seed = 0x76707252
		gridH = 256
		steps = 6000
	}

	gridWords := gridW * gridH
	queueBase := gridWords
	mem := make([]int64, gridWords+queueEntries)
	r := NewLCG(seed)
	for w := 0; w < gridWords; w++ {
		mem[w] = int64(r.Intn(1 << 14)) // routing cost
	}
	for q := 0; q < queueEntries; q++ {
		// The wavefront lingers in a hot band of rows (net locality); a
		// quarter of expansions jump to cold rows and miss.
		row := 1 + r.Intn(gridH-2)
		if q%8 != 0 {
			row = 1 + r.Intn(44)
		}
		col := 1 + r.Intn(gridW-2)
		mem[queueBase+q] = int64((row*gridW + col) * 8) // interior cell byte offset
	}

	rowBytes := int64(gridW * 8)
	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rQB  = isa.Reg(3)
		rT   = isa.Reg(4)
		rCur = isa.Reg(5)
		rN1  = isa.Reg(6)
		rN2  = isa.Reg(7)
		rN3  = isa.Reg(8)
		rN4  = isa.Reg(9)
		rMin = isa.Reg(10)
		rC   = isa.Reg(11)
		rAcc = isa.Reg(12)
		rC2  = isa.Reg(13)
		rIdx = isa.Reg(14)
	)

	b := isa.NewBuilder("vpr.route." + c.String())
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.MovI(rQB, int64(queueBase*8))
	b.Label("top")
	b.AndI(rIdx, rI, int64(queueEntries-1))
	b.ShlI(rT, rIdx, 3)
	b.Add(rT, rT, rQB)
	b.Load(rCur, rT, 0)          // queue pop (sequential)
	b.Load(rN1, rCur, 8)         // east: problem load
	b.Load(rN2, rCur, -8)        // west (same block as east most of the time)
	b.Load(rN3, rCur, rowBytes)  // south: problem load (different row)
	b.Load(rN4, rCur, -rowBytes) // north: problem load (different row)
	b.Mov(rMin, rN1)
	b.CmpLT(rC, rN2, rMin)
	b.BrZ(rC, "skip2")
	b.Mov(rMin, rN2)
	b.Label("skip2")
	b.CmpLT(rC, rN3, rMin)
	b.BrZ(rC, "skip3")
	b.Mov(rMin, rN3)
	b.Label("skip3")
	b.CmpLT(rC, rN4, rMin)
	b.BrZ(rC, "skip4")
	b.Mov(rMin, rN4)
	b.Label("skip4")
	b.Add(rAcc, rAcc, rMin)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
