package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "vortex",
		Build:       buildVortex,
		Description: "object-database-like: three-level indirection (id stream → object index → object fields) with a type-dependent branch; deep slices spanning three loads",
	})
}

// buildVortex mimics an OO-database traversal: a sequential id stream
// indexes an object index whose entries point at 64-byte object records in
// a >L2 heap; a quarter of the objects take a second field access on a
// data-dependent path.
func buildVortex(c InputClass) *isa.Program {
	seed := uint64(0x766f7274)
	idEntries := 1 << 16 // 512KB id stream
	nObjs := 1 << 15     // index entries
	heapRecs := 1 << 15  // 64-byte records: 2MB heap
	steps := 9000
	if c == Ref {
		seed = 0x766f5265
		heapRecs = 1 << 14
		steps = 8000
	}

	idBase := 0
	idxBase := idEntries
	heapBase := idxBase + nObjs
	mem := make([]int64, idEntries+nObjs+heapRecs*8)
	r := NewLCG(seed)
	hotObjs := nObjs / 32
	for i := 0; i < idEntries; i++ {
		// Most references hit a hot object subset (database locality); the
		// cold quarter generates the problem-load misses.
		if i%8 == 0 {
			mem[idBase+i] = int64(r.Intn(nObjs))
		} else {
			mem[idBase+i] = int64(r.Intn(hotObjs))
		}
	}
	objOf := r.Perm(nObjs) // scatter objects across the heap
	for o := 0; o < nObjs; o++ {
		rec := objOf[o] % heapRecs
		mem[idxBase+o] = int64((heapBase + rec*8) * 8) // object byte address
	}
	for rec := 0; rec < heapRecs; rec++ {
		w := heapBase + rec*8
		mem[w] = int64(r.Intn(256))   // field0: type/value
		mem[w+1] = int64(r.Intn(100)) // field1
	}

	const (
		rI    = isa.Reg(1)
		rN    = isa.Reg(2)
		rIB   = isa.Reg(3)
		rXB   = isa.Reg(4)
		rT    = isa.Reg(5)
		rOid  = isa.Reg(6)
		rT2   = isa.Reg(7)
		rObj  = isa.Reg(8)
		rV    = isa.Reg(9)
		rC    = isa.Reg(10)
		rV2   = isa.Reg(11)
		rAcc  = isa.Reg(12)
		rAcc2 = isa.Reg(13)
		rC2   = isa.Reg(14)
		rIdx  = isa.Reg(15)
	)

	b := isa.NewBuilder("vortex." + c.String())
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.MovI(rIB, int64(idBase*8))
	b.MovI(rXB, int64(idxBase*8))
	b.Label("top")
	b.AndI(rIdx, rI, int64(idEntries-1))
	b.ShlI(rT, rIdx, 3)
	b.Add(rT, rT, rIB)
	b.Load(rOid, rT, 0) // id stream (sequential)
	b.ShlI(rT2, rOid, 3)
	b.Add(rT2, rT2, rXB)
	b.Load(rObj, rT2, 0) // object index: problem load (random)
	b.Load(rV, rObj, 0)  // object field0: problem load (random, >L2)
	b.AndI(rC, rV, 3)
	b.BrNZ(rC, "common")
	b.Load(rV2, rObj, 8) // rare path: second field (same block)
	b.Add(rAcc2, rAcc2, rV2)
	b.Jmp("join")
	b.Label("common")
	b.Add(rAcc, rAcc, rV)
	b.Label("join")
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
