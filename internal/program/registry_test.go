package program

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/isa"
)

// testBenchmark returns a registerable minimal benchmark. The build ignores
// the input class, trivially preserving the Train/Ref structure identity the
// corpus-wide tests assert over All().
func testBenchmark(name, fp string) Benchmark {
	return Benchmark{
		Name: name,
		Build: func(InputClass) *isa.Program {
			b := isa.NewBuilder(name)
			b.MovI(1, 42)
			b.Halt()
			return b.MustBuild()
		},
		Description: "registry test stub",
		Fingerprint: fp,
	}
}

// TestRegisterDuplicate pins the panic-path fix: a name collision is an
// error, not a panic — except for the idempotent case of re-registering a
// definition with the identical non-empty fingerprint.
func TestRegisterDuplicate(t *testing.T) {
	if err := Register(testBenchmark("registry-test/dup", "fp-a")); err != nil {
		t.Fatal(err)
	}
	if err := Register(testBenchmark("registry-test/dup", "fp-a")); err != nil {
		t.Errorf("identical re-registration: %v, want no-op", err)
	}
	if err := Register(testBenchmark("registry-test/dup", "fp-b")); err == nil {
		t.Error("conflicting fingerprint accepted")
	}
	if err := Register(testBenchmark("registry-test/dup", "")); err == nil {
		t.Error("fingerprint-less duplicate accepted")
	}
	// Built-ins have no fingerprint: re-registering one must always error.
	if err := Register(testBenchmark("mcf", "")); err == nil {
		t.Error("built-in name takeover accepted")
	}
	if err := Register(Benchmark{Name: "registry-test/nobuild"}); err == nil {
		t.Error("benchmark without Build accepted")
	}
	if err := Register(testBenchmark("", "x")); err == nil {
		t.Error("empty name accepted")
	}
}

// TestRegisterConcurrent hammers Register against ByName, All and Names from
// parallel goroutines — the campaign-worker interleaving that was a data
// race while the registry was a bare map. Meaningful under -race.
func TestRegisterConcurrent(t *testing.T) {
	const writers, readers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("registry-test/conc-%d-%d", w, i)
				if err := Register(testBenchmark(name, "fp")); err != nil {
					t.Errorf("register %s: %v", name, err)
					return
				}
				// Idempotent re-registration from a racing worker.
				if err := Register(testBenchmark(name, "fp")); err != nil {
					t.Errorf("re-register %s: %v", name, err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_ = Names()
				_ = All()
				if _, err := ByName("mcf"); err != nil {
					t.Errorf("ByName(mcf) during registration: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if _, err := ByName(fmt.Sprintf("registry-test/conc-%d-%d", w, rounds-1)); err != nil {
			t.Error(err)
		}
	}
}

// TestAllNameSorted pins All()'s documented order: sorted by name, with
// dynamically registered benchmarks interleaved — NOT the paper's order,
// which PaperNames carries explicitly.
func TestAllNameSorted(t *testing.T) {
	if err := Register(testBenchmark("aaa-registry-test/first", "fp")); err != nil {
		t.Fatal(err)
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if names[0] != "aaa-registry-test/first" {
		t.Errorf("dynamic registration missing from the front of %v", names)
	}
	// The paper order is pinned independently of the registry's contents.
	want := []string{"bzip2", "gap", "gcc", "mcf", "parser", "twolf", "vortex", "vpr.place", "vpr.route"}
	got := PaperNames()
	if len(got) != len(want) {
		t.Fatalf("PaperNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PaperNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, n := range got {
		if _, err := ByName(n); err != nil {
			t.Errorf("paper benchmark %s unregistered: %v", n, err)
		}
	}
}
