package gen

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// Register allocation shared by every family builder. Chained operands
// (rP0.., rV0.., rDir0.., rF0..) occupy consecutive registers, one per
// problem-load chain or filler chain.
const (
	rP0   = isa.Reg(1)  // per-chain pointer/index (up to maxProblem)
	rV0   = isa.Reg(5)  // per-chain loaded value (up to maxProblem)
	rC    = isa.Reg(9)  // data-branch condition
	rC2   = isa.Reg(10) // loop condition
	rI    = isa.Reg(11) // iteration counter
	rS    = isa.Reg(12) // iteration bound
	rAcc  = isa.Reg(13) // main accumulator
	rAcc2 = isa.Reg(14) // extra-path accumulator
	rT    = isa.Reg(15) // address scratch
	rK    = isa.Reg(16) // streamed key/token
	rH    = isa.Reg(17) // hashed/gathered address scratch
	rG    = isa.Reg(18) // global gather counter / token payload
	rLvl  = isa.Reg(19) // tree level counter
	rD    = isa.Reg(20) // tree depth bound
	rX    = isa.Reg(21) // class-work scratch
	rCls  = isa.Reg(22) // token class
	rDir0 = isa.Reg(23) // per-chain tree direction (up to maxProblem)
	rF0   = isa.Reg(28) // filler chains (up to maxILP: 28-35)
	rKey0 = isa.Reg(40) // per-chain tree search key (up to maxProblem)
)

// hashMuls are the per-chain multiplicative hash constants; distinct chains
// gather through distinct hash functions so their problem loads are
// independent static PCs with independent address streams.
var hashMuls = [maxProblem]int64{2654435761, 40503, 2246822519, 3266489917}

// filler emits n independent single-cycle chains, the ILP dilution knob.
func filler(b *isa.Builder, n int) {
	for i := 0; i < n; i++ {
		b.AddI(rF0+isa.Reg(i), rF0+isa.Reg(i), 1)
	}
}

// buildPointerChase emits ProblemLoads independent pointer chases over
// disjoint regions of 64-byte node records: each chain's next address loads
// from the current node, so the misses are serial and non-shortenable — the
// behaviour class whose cost the criticality model must recognize as
// unhelpable.
func (s Spec) buildPointerChase(b *isa.Builder, v inputVar) {
	const recWords = 8 // one 64B line per node
	chains := s.ProblemLoads
	nodes := s.WorkingSet / (chains * recWords)
	regionWords := nodes * recWords

	mem := make([]int64, chains*regionWords)
	r := program.NewLCG(v.seed)
	for k := 0; k < chains; k++ {
		base := k * regionWords
		next := r.CyclePerm(nodes)
		for i := 0; i < nodes; i++ {
			mem[base+i*recWords] = int64((base + next[i]*recWords) * 8)
			mem[base+i*recWords+1] = int64(r.Intn(100))
		}
	}

	for k := 0; k < chains; k++ {
		b.MovI(rP0+isa.Reg(k), int64(k*regionWords*8))
	}
	b.MovI(rI, 0)
	b.MovI(rS, int64(v.steps))
	b.Label("chase")
	for k := 0; k < chains; k++ {
		b.Load(rV0+isa.Reg(k), rP0+isa.Reg(k), 8) // node cost
		b.Load(rP0+isa.Reg(k), rP0+isa.Reg(k), 0) // chase: problem load
		b.Add(rAcc, rAcc, rV0+isa.Reg(k))
	}
	b.CmpLTI(rC, rV0, int64(v.bias)) // cost uniform [0,100): extra path w.p. bias
	b.BrZ(rC, "skip")
	b.AddI(rAcc2, rAcc2, 1)
	b.Label("skip")
	filler(b, s.effILP())
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rS)
	b.BrNZ(rC2, "chase")
	b.Add(rAcc, rAcc, rAcc2)
	b.Halt()
	b.SetMem(mem)
}

// buildHashProbe emits a parser-like dictionary probe: keys stream
// sequentially from a hot region and hash into a table sized by the working
// set; the probe addresses are computable from the streamed key, so slices
// hoist well. A biased fraction of probes needs a second bucket.
func (s Spec) buildHashProbe(b *isa.Builder, v inputVar) {
	const keyWords = 1 << 12 // 32KB key stream, L2-resident
	tableWords := s.WorkingSet
	tabBase := keyWords
	// One pad word so the +8 rehash probe of the last bucket stays in bounds.
	mem := make([]int64, keyWords+tableWords+1)
	r := program.NewLCG(v.seed)
	for i := 0; i < keyWords; i++ {
		mem[i] = int64(1 + r.Intn(1<<30))
	}
	for w := 0; w <= tableWords; w++ {
		mem[tabBase+w] = int64(r.Intn(100))
	}

	b.MovI(rI, 0)
	b.MovI(rS, int64(v.steps))
	b.Label("probe")
	b.AndI(rT, rI, keyWords-1)
	b.ShlI(rT, rT, 3)
	b.Load(rK, rT, 0) // key: sequential stream
	for p := 0; p < s.ProblemLoads; p++ {
		b.MulI(rH, rK, hashMuls[p])
		b.ShrI(rH, rH, 16)
		b.AndI(rH, rH, int64(tableWords-1))
		b.ShlI(rH, rH, 3)
		b.Load(rV0+isa.Reg(p), rH, int64(tabBase*8)) // bucket: problem load
		b.Add(rAcc, rAcc, rV0+isa.Reg(p))
	}
	b.CmpLTI(rC, rV0, int64(v.bias)) // values uniform [0,100): rehash w.p. bias
	b.BrZ(rC, "join")
	b.Load(rX, rH, int64(tabBase*8+8)) // second bucket
	b.Add(rAcc2, rAcc2, rX)
	b.Label("join")
	filler(b, s.effILP())
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rS)
	b.BrNZ(rC2, "probe")
	b.Add(rAcc, rAcc, rAcc2)
	b.Halt()
	b.SetMem(mem)
}

// treeDepth returns the descent depth that keeps every heap index inside a
// ws-word array (indices reach 2^(d+1)-1 after d levels from index 1).
func treeDepth(ws int) int {
	d := 0
	for (1 << (d + 2)) <= ws {
		d++
	}
	return d
}

// buildTreeWalk emits ProblemLoads interleaved key searches through one
// implicit binary tree: each walk streams a fresh search key and descends by
// comparing it against the node value, so every level's load feeds the next
// level's index (a short dependent chain), the direction branch is
// data-dependent, and distinct keys scatter the walks across the whole tree
// instead of re-treading one cached path. Key distribution skews the
// comparison toward the bias fraction.
func (s Spec) buildTreeWalk(b *isa.Builder, v inputVar) {
	const keyRecs = 1 << 10 // per-walk key records, maxProblem words each
	chains := s.ProblemLoads
	depth := treeDepth(s.WorkingSet)
	treeBase := keyRecs * maxProblem
	mem := make([]int64, treeBase+s.WorkingSet)
	r := program.NewLCG(v.seed)
	// P(key < node) with nodes uniform [0,100) is set by the key range:
	// keys uniform [0, 2*(100-bias)) make the taken fraction track bias.
	keyRange := 2 * (100 - v.bias)
	if keyRange < 1 {
		keyRange = 1
	}
	for i := 0; i < keyRecs*maxProblem; i++ {
		mem[i] = int64(r.Intn(keyRange))
	}
	for w := 0; w < s.WorkingSet; w++ {
		mem[treeBase+w] = int64(r.Intn(100))
	}

	b.MovI(rI, 0)
	b.MovI(rS, int64(v.steps))
	b.Label("walk")
	b.AndI(rT, rI, keyRecs-1)
	b.ShlI(rT, rT, 5) // *maxProblem words *8 bytes
	for k := 0; k < chains; k++ {
		b.Load(rKey0+isa.Reg(k), rT, int64(k*8)) // search key: hot stream
		b.MovI(rP0+isa.Reg(k), 1)
	}
	b.MovI(rLvl, 0)
	b.MovI(rD, int64(depth))
	b.Label("level")
	for k := 0; k < chains; k++ {
		b.ShlI(rT, rP0+isa.Reg(k), 3)
		b.Load(rV0+isa.Reg(k), rT, int64(treeBase*8)) // node: problem load, feeds next index
		b.CmpLT(rDir0+isa.Reg(k), rKey0+isa.Reg(k), rV0+isa.Reg(k))
		b.ShlI(rP0+isa.Reg(k), rP0+isa.Reg(k), 1)
		b.Add(rP0+isa.Reg(k), rP0+isa.Reg(k), rDir0+isa.Reg(k))
	}
	b.BrZ(rDir0, "left") // key-vs-node comparison: taken w.p. ~bias
	b.AddI(rAcc2, rAcc2, 1)
	b.Label("left")
	filler(b, s.effILP())
	b.AddI(rLvl, rLvl, 1)
	b.CmpLT(rC2, rLvl, rD)
	b.BrNZ(rC2, "level")
	for k := 0; k < chains; k++ {
		b.Add(rAcc, rAcc, rV0+isa.Reg(k))
	}
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rS)
	b.BrNZ(rC2, "walk")
	b.Add(rAcc, rAcc, rAcc2)
	b.Halt()
	b.SetMem(mem)
}

// buildBlockedStream emits a gap/bzip2-like blocked scan: a sequential
// stream (covered by the stride prefetcher) interleaved with gathers whose
// addresses are pure arithmetic on a counter — the cheapest possible slices,
// since a p-thread needs no loads to compute the next problem address.
func (s Spec) buildBlockedStream(b *isa.Builder, v inputVar) {
	const blockWords = 256
	mask := int64(s.WorkingSet - 1)
	mem := make([]int64, s.WorkingSet)
	r := program.NewLCG(v.seed)
	for i := range mem {
		mem[i] = int64(r.Intn(200) - 100)
	}

	b.MovI(rI, 0) // block counter
	b.MovI(rS, int64(v.steps))
	b.MovI(rG, 0) // global element counter
	b.Label("block")
	b.MovI(rK, 0) // intra-block counter
	b.Label("scan")
	b.AndI(rT, rG, mask)
	b.ShlI(rT, rT, 3)
	b.Load(rX, rT, 0) // sequential stream: prefetchable
	b.Add(rAcc, rAcc, rX)
	for p := 0; p < s.ProblemLoads; p++ {
		b.MulI(rH, rG, hashMuls[p])
		b.AndI(rH, rH, mask)
		b.ShlI(rH, rH, 3)
		b.Load(rV0+isa.Reg(p), rH, 0) // arithmetic gather: problem load
		b.Add(rAcc, rAcc, rV0+isa.Reg(p))
	}
	b.CmpLTI(rC, rX, int64(2*v.bias-100)) // values uniform [-100,100): w.p. bias
	b.BrZ(rC, "skip")
	b.Sub(rAcc2, rAcc2, rX)
	b.Label("skip")
	filler(b, s.effILP())
	b.AddI(rG, rG, 1)
	b.AddI(rK, rK, 1)
	b.CmpLTI(rC2, rK, blockWords)
	b.BrNZ(rC2, "scan")
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rS)
	b.BrNZ(rC2, "block")
	b.Add(rAcc, rAcc, rAcc2)
	b.Halt()
	b.SetMem(mem)
}

// buildBranchyParser emits a gcc-like token dispatcher: a class-tagged token
// stream drives a compare-and-branch dispatch chain (the branch mix is the
// fraction of tokens leaving the fast path, consistent with the knob's
// extra-path meaning in every other family), with a hot-table class, an
// arithmetic class, and a rare cold-gather class supplying the problem
// loads.
func (s Spec) buildBranchyParser(b *isa.Builder, v inputVar) {
	const tokWords = 1 << 13 // 64KB token stream
	const hotWords = 1 << 9  // 4KB hot table
	coldWords := s.WorkingSet
	hotBase := tokWords
	coldBase := tokWords + hotWords
	mem := make([]int64, tokWords+hotWords+coldWords)
	r := program.NewLCG(v.seed)
	// Class distribution: the bias fraction takes the extra-work classes —
	// split between the multiply and hot-table classes, with a quarter
	// landing on class 3, the cold gather — and the rest stays on class 0,
	// the pure-arithmetic fast path.
	fast := 100 - v.bias
	p3 := v.bias / 4
	p1 := (v.bias - p3) / 2
	for i := 0; i < tokWords; i++ {
		roll := r.Intn(100)
		var cls int64
		switch {
		case roll < fast:
			cls = 0
		case roll < fast+p1:
			cls = 1
		case roll < 100-p3:
			cls = 2
		default:
			cls = 3
		}
		mem[i] = cls | int64(r.Intn(coldWords))<<8
	}
	for w := 0; w < hotWords; w++ {
		mem[hotBase+w] = int64(r.Intn(50))
	}
	for w := 0; w < coldWords; w++ {
		mem[coldBase+w] = int64(r.Intn(100))
	}

	b.MovI(rI, 0)
	b.MovI(rS, int64(v.steps))
	b.Label("token")
	b.AndI(rT, rI, tokWords-1)
	b.ShlI(rT, rT, 3)
	b.Load(rK, rT, 0) // token: sequential stream
	b.AndI(rCls, rK, 255)
	b.ShrI(rG, rK, 8)
	b.CmpEQI(rC, rCls, 0)
	b.BrNZ(rC, "c0")
	b.CmpEQI(rC, rCls, 1)
	b.BrNZ(rC, "c1")
	b.CmpEQI(rC, rCls, 2)
	b.BrNZ(rC, "c2")
	for p := 0; p < s.ProblemLoads; p++ {
		// Chain 0 gathers at the token's random payload directly; further
		// chains re-scatter it through distinct hash constants.
		if p == 0 {
			b.AndI(rH, rG, int64(coldWords-1))
		} else {
			b.MulI(rH, rG, hashMuls[p])
			b.AndI(rH, rH, int64(coldWords-1))
		}
		b.ShlI(rH, rH, 3)
		b.Load(rV0+isa.Reg(p), rH, int64(coldBase*8)) // cold gather: problem load
		b.Add(rAcc, rAcc, rV0+isa.Reg(p))
	}
	b.Jmp("join")
	b.Label("c0")
	b.AddI(rAcc, rAcc, 1)
	b.Jmp("join")
	b.Label("c1")
	b.MulI(rX, rG, 7)
	b.Add(rAcc, rAcc, rX)
	b.Jmp("join")
	b.Label("c2")
	b.AndI(rH, rG, hotWords-1)
	b.ShlI(rH, rH, 3)
	b.Load(rX, rH, int64(hotBase*8)) // hot table: cache-resident
	b.Add(rAcc, rAcc, rX)
	b.Label("join")
	filler(b, s.effILP())
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rS)
	b.BrNZ(rC2, "token")
	b.Halt()
	b.SetMem(mem)
}
