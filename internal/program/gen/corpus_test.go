package gen

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/trace"
)

// corpusSpecs returns the shared differential corpus (see CorpusSpecs).
func corpusSpecs() []Spec { return CorpusSpecs() }

// corpusConfig selects an engine on the default configuration. The corpus
// here runs without p-threads (pure main-thread scheduling); engine
// agreement with selector-chosen p-threads installed is covered by
// TestGenSelectedPThreadsEnginesAgree in the experiments package.
func corpusConfig(engine cpu.Engine) cpu.Config {
	cfg := cpu.DefaultConfig()
	cfg.Engine = engine
	return cfg
}

// TestGenCorpusEnginesAgree is the differential corpus harness: every seeded
// spec's Train trace must produce deeply equal (bit-identical once
// marshaled) Results under the event-driven and reference scan engines.
func TestGenCorpusEnginesAgree(t *testing.T) {
	specs := corpusSpecs()
	if len(specs) < 20 {
		t.Fatalf("corpus has %d specs, want >= 20", len(specs))
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			bm, err := s.Benchmark()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := trace.Run(bm.Build(program.Train))
			if err != nil {
				t.Fatal(err)
			}
			ev, err1 := cpu.Run(corpusConfig(cpu.EngineEvent), tr, nil)
			sc, err2 := cpu.Run(corpusConfig(cpu.EngineScan), tr, nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("event err=%v scan err=%v", err1, err2)
			}
			if !reflect.DeepEqual(ev, sc) {
				t.Errorf("engines disagree\nevent: %+v\nscan:  %+v", ev, sc)
			}
		})
	}
}

// TestGenCorpusDeltaLimitEscape drives the producer-delta overflow-escape
// path with generated long-range-producer workloads: the loop-invariant base
// registers of every family are written once and consumed for the rest of
// the trace, so lowering Interpreter.DeltaLimit forces those links through
// the overflow maps. The escaped trace must decode identically entry for
// entry, and both engines must produce Results identical to the inline-delta
// trace's.
func TestGenCorpusDeltaLimitEscape(t *testing.T) {
	for _, s := range []Spec{
		{Family: PointerChase, Seed: 41, WorkingSet: 1 << 13, Depth: 400},
		{Family: HashProbe, Seed: 42, WorkingSet: 1 << 13, Depth: 300, ProblemLoads: 2},
		{Family: BranchyParser, Seed: 43, WorkingSet: 1 << 13, Depth: 500},
	} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			bm, err := s.Benchmark()
			if err != nil {
				t.Fatal(err)
			}
			p := bm.Build(program.Train)
			inline, err := trace.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			esc := trace.Interpreter{DeltaLimit: 512}
			escaped, err := esc.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if inline.Len() != escaped.Len() {
				t.Fatalf("trace lengths diverge: %d vs %d", inline.Len(), escaped.Len())
			}
			escapes := 0
			for i := 0; i < inline.Len(); i++ {
				p1, p2 := inline.Prod1(i), inline.Prod2(i)
				if p1 != escaped.Prod1(i) || p2 != escaped.Prod2(i) {
					t.Fatalf("entry %d: producers diverge (%d,%d) vs (%d,%d)",
						i, p1, p2, escaped.Prod1(i), escaped.Prod2(i))
				}
				if p1 >= 0 && int64(i)-p1 >= 512 {
					escapes++
				}
				if p2 >= 0 && int64(i)-p2 >= 512 {
					escapes++
				}
			}
			if escapes == 0 {
				t.Fatal("spec produced no long-range producer links; the escape path was not exercised")
			}
			for _, engine := range []cpu.Engine{cpu.EngineEvent, cpu.EngineScan} {
				a, err1 := cpu.Run(corpusConfig(engine), inline, nil)
				b, err2 := cpu.Run(corpusConfig(engine), escaped, nil)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: inline err=%v escaped err=%v", engine, err1, err2)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s: escaped trace changed the Result", engine)
				}
			}
		})
	}
}

// TestGenCorpusDeterministicResults: a generated workload's Result must be
// reproducible run to run (the property the artifact store and the golden
// corpus depend on).
func TestGenCorpusDeterministicResults(t *testing.T) {
	for _, f := range Families() {
		s := Spec{Family: f, Seed: 7, WorkingSet: 1 << 13, Depth: 200}
		bm, err := s.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.MustRun(bm.Build(program.Train))
		a, err := cpu.Run(corpusConfig(cpu.EngineEvent), tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cpu.Run(corpusConfig(cpu.EngineEvent), tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs of one generated workload diverge", f)
		}
	}
}

// TestGenNamesUniqueAcrossSeeds guards the canonical-name scheme against
// accidental collisions across a dense seed range (names key the global
// registry).
func TestGenNamesUniqueAcrossSeeds(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Families() {
		for seed := uint64(0); seed < 50; seed++ {
			n := Spec{Family: f, Seed: seed}.Name()
			if seen[n] {
				t.Fatalf("name collision: %s", n)
			}
			seen[n] = true
		}
	}
}
