// Package gen is a seeded, parameterized synthetic-workload generator: it
// turns a declarative Spec — a memory-behaviour family plus a handful of
// knobs — into a program.Benchmark indistinguishable from the hand-written
// SPEC2000 stand-ins. The nine built-ins cover nine points of the
// memory-behaviour space the paper evaluates; the generator opens the rest
// of it, so the selection framework, the staged pipeline and both simulation
// engines can be exercised on arbitrarily many workloads instead of a fixed
// corpus.
//
// # Determinism
//
// A Spec is a pure value: the same (Family, Seed, knobs) always produces the
// same two programs (Train and Ref inputs), instruction for instruction and
// data word for data word, across runs, processes and Go releases (the data
// comes from program.LCG, not math/rand). The Ref input derives a different
// data seed, iteration count and branch thresholds from the same Spec —
// data and immediates only, never code structure, preserving the
// SPEC-binary property the realistic-profiling experiment depends on
// (static PCs map 1:1 across inputs).
//
// # Spec grammar
//
// The CLI form accepted by Parse (and cmd/sweep's -gen flag) is
//
//	family:seed[:knob=value,knob=value,...]
//
// e.g. "pointer-chase:7", "hash-probe:42:ws=131072,loads=2,branch=30".
// Knob keys: ws (working-set words, rounded up to a power of two), depth
// (iteration/chain-depth knob), loads (distinct static problem loads, 1-4),
// branch (data-dependent branch taken mix, percent), ilp (independent filler
// chains, 0-8). Omitted knobs take family defaults.
package gen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fingerprint"
	"repro/internal/isa"
	"repro/internal/program"
)

// Family identifies a memory-behaviour class the generator can emit.
type Family string

// The five workload families, named for the memory behaviour they exhibit.
const (
	// PointerChase: serial dependent loads over linked node records — the
	// misses are address-chained and largely non-shortenable (mcf-like).
	PointerChase Family = "pointer-chase"
	// HashProbe: keys stream sequentially, probe addresses hash into a >L2
	// table — computable addresses, classic pre-execution territory
	// (parser-like).
	HashProbe Family = "hash-probe"
	// TreeWalk: data-dependent descent through an implicit binary tree —
	// a short dependent chain per level with an unpredictable direction
	// branch (twolf-like in its branch mix, mcf-like in its chains).
	TreeWalk Family = "tree-walk"
	// BlockedStream: blocked sequential streaming plus arithmetic-index
	// gathers into a >L2 region — the cheapest possible slices (gap/bzip2-
	// like).
	BlockedStream Family = "blocked-stream"
	// BranchyParser: token-dispatch control flow over a class-tagged stream
	// with a rare cold gather — mispredict-heavy with sparse problem loads
	// (gcc-like).
	BranchyParser Family = "branchy-parser"
)

// Families lists every family in a fixed order.
func Families() []Family {
	return []Family{PointerChase, HashProbe, TreeWalk, BlockedStream, BranchyParser}
}

// Spec declares one generated workload. The zero value of every knob means
// "family default"; Seed alone distinguishes workloads within a family.
type Spec struct {
	Family Family
	Seed   uint64

	// WorkingSet is the cold region's size in 8-byte words, rounded up to a
	// power of two. Sized above the L2 (32Ki words at the default 256KB) it
	// produces problem loads; below, a cache-resident workload.
	WorkingSet int
	// Depth is the family's iteration/chain-depth knob: chase steps
	// (PointerChase), probes (HashProbe), walks (TreeWalk), blocks
	// (BlockedStream), tokens (BranchyParser).
	Depth int
	// ProblemLoads is the number of distinct static problem loads (1-4).
	ProblemLoads int
	// BranchMix is the approximate percentage of iterations that take the
	// data-dependent extra-work path (0-100) — the knob behind each family's
	// unpredictable branch. Zero means "family default"; an explicitly
	// never-taken mix is expressed as -1 (Parse maps branch=0 to it).
	BranchMix int
	// ILP is the number of independent single-cycle filler chains per
	// iteration (0-8), diluting the dependent work with exploitable
	// parallelism. Zero means "family default"; an explicitly filler-free
	// workload is expressed as -1 (Parse maps ilp=0 to it).
	ILP int
}

// familyDefaults returns the per-family default knobs.
func familyDefaults(f Family) Spec {
	switch f {
	case PointerChase:
		return Spec{WorkingSet: 1 << 16, Depth: 4000, ProblemLoads: 1, BranchMix: 25, ILP: 2}
	case HashProbe:
		return Spec{WorkingSet: 1 << 16, Depth: 6000, ProblemLoads: 1, BranchMix: 25, ILP: 1}
	case TreeWalk:
		// The descent touches [1, 2^treeDepth) words, a quarter of the
		// working set, so the default sits at 2MB to put the deep levels
		// past the 256KB L2.
		return Spec{WorkingSet: 1 << 18, Depth: 500, ProblemLoads: 1, BranchMix: 50, ILP: 1}
	case BlockedStream:
		return Spec{WorkingSet: 1 << 16, Depth: 24, ProblemLoads: 1, BranchMix: 20, ILP: 2}
	case BranchyParser:
		return Spec{WorkingSet: 1 << 16, Depth: 8000, ProblemLoads: 1, BranchMix: 40, ILP: 1}
	default:
		return Spec{}
	}
}

// nextPow2 rounds n up to a power of two, capped just past maxWorkingSet:
// anything larger (including values that would overflow the doubling) comes
// back out of range and is rejected by Validate rather than looping forever.
func nextPow2(n int) int {
	p := 1
	for p < n && p <= maxWorkingSet {
		p <<= 1
	}
	return p
}

// Normalize fills zero knobs with family defaults and canonicalizes the
// working set to a power of two. Two specs that normalize equal are the same
// workload: Name, Fingerprint and the emitted programs all agree.
func (s Spec) Normalize() Spec {
	d := familyDefaults(s.Family)
	if s.WorkingSet == 0 {
		s.WorkingSet = d.WorkingSet
	} else {
		s.WorkingSet = nextPow2(s.WorkingSet)
	}
	if s.Depth == 0 {
		s.Depth = d.Depth
	}
	if s.ProblemLoads == 0 {
		s.ProblemLoads = d.ProblemLoads
	}
	// BranchMix and ILP have a meaningful zero, so "unset" (0) takes the
	// family default while -1 expresses an explicit zero. The sentinel IS
	// the canonical normalized form — mapping it to 0 here would make
	// Normalize non-idempotent (the second pass would read the 0 as "unset"
	// and substitute the default, silently aliasing two different workloads
	// under one name and fingerprint). effBranchMix/effILP resolve it where
	// the effective value is needed.
	if s.BranchMix == 0 {
		s.BranchMix = d.BranchMix
	}
	if s.ILP == 0 {
		s.ILP = d.ILP
	}
	return s
}

// effBranchMix resolves the -1 explicit-zero sentinel to the effective
// branch mix percentage.
func (s Spec) effBranchMix() int {
	if s.BranchMix < 0 {
		return 0
	}
	return s.BranchMix
}

// effILP resolves the -1 explicit-zero sentinel to the effective filler
// chain count.
func (s Spec) effILP() int {
	if s.ILP < 0 {
		return 0
	}
	return s.ILP
}

// Spec knob bounds: the working set spans cache-resident (1K words = 8KB)
// to 16MB; the depth knob is bounded so a generated trace stays well under
// the interpreter's runaway guard.
const (
	minWorkingSet = 1 << 10
	maxWorkingSet = 1 << 21
	maxDepth      = 1 << 20
	maxProblem    = 4
	maxILP        = 8
)

// Validate checks a normalized spec's knobs. Call on Normalize()'s result;
// Benchmark does both.
func (s Spec) Validate() error {
	known := false
	for _, f := range Families() {
		if s.Family == f {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("gen: unknown family %q (have %v)", s.Family, Families())
	}
	if s.WorkingSet < minWorkingSet || s.WorkingSet > maxWorkingSet {
		return fmt.Errorf("gen: %s: working set %d words out of range [%d, %d]",
			s.Family, s.WorkingSet, minWorkingSet, maxWorkingSet)
	}
	if s.Depth < 1 || s.Depth > maxDepth {
		return fmt.Errorf("gen: %s: depth %d out of range [1, %d]", s.Family, s.Depth, maxDepth)
	}
	if s.ProblemLoads < 1 || s.ProblemLoads > maxProblem {
		return fmt.Errorf("gen: %s: problem loads %d out of range [1, %d]", s.Family, s.ProblemLoads, maxProblem)
	}
	if s.BranchMix != -1 && (s.BranchMix < 0 || s.BranchMix > 100) {
		return fmt.Errorf("gen: %s: branch mix %d%% out of range [0, 100]", s.Family, s.BranchMix)
	}
	if s.ILP != -1 && (s.ILP < 0 || s.ILP > maxILP) {
		return fmt.Errorf("gen: %s: ilp %d out of range [0, %d]", s.Family, s.ILP, maxILP)
	}
	return nil
}

// Name returns the canonical benchmark name of the (normalized) spec. It
// encodes every knob, so equal names imply equal workloads and two distinct
// specs can never collide in the registry.
func (s Spec) Name() string {
	n := s.Normalize()
	// Effective values display the -1 sentinel as the 0 it means; the name
	// stays injective because a normalized literal 0 cannot occur (0 always
	// normalizes to the family default).
	return fmt.Sprintf("gen/%s/s%d-w%d-d%d-p%d-b%d-i%d",
		n.Family, n.Seed, n.WorkingSet, n.Depth, n.ProblemLoads, n.effBranchMix(), n.effILP())
}

// Fingerprint returns the content fingerprint of the normalized spec. It is
// chained into the staged artifact store's per-stage keys, so a generated
// workload's cached trace, profile, slices and baseline are addressed by the
// workload's content exactly like a configuration stage is by its knobs.
func (s Spec) Fingerprint() (string, error) {
	return fingerprint.JSON(s.Normalize())
}

// Benchmark materializes the spec as a registerable benchmark. The spec is
// validated and both input classes are trial-built (and Program.Validate'd)
// up front, so the returned Build closure cannot fail later — mirroring the
// built-in workloads' contract.
func (s Spec) Benchmark() (program.Benchmark, error) {
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		return program.Benchmark{}, err
	}
	fp, err := n.Fingerprint()
	if err != nil {
		return program.Benchmark{}, err
	}
	for _, c := range []program.InputClass{program.Train, program.Ref} {
		if _, err := n.build(c); err != nil {
			return program.Benchmark{}, fmt.Errorf("gen: %s/%s: %w", n.Name(), c, err)
		}
	}
	return program.Benchmark{
		Name: n.Name(),
		Build: func(c program.InputClass) *isa.Program {
			p, err := n.build(c)
			if err != nil {
				// Unreachable: both inputs trial-built above and builds are
				// deterministic.
				//lab:allow(panicpath: unreachable; both input classes are trial-built before the closure is published and builds are deterministic)
				panic(err)
			}
			return p
		},
		Description: fmt.Sprintf("generated %s workload (seed %d, %d-word set, depth %d, %d problem loads, %d%% branch mix, ilp %d)",
			n.Family, n.Seed, n.WorkingSet, n.Depth, n.ProblemLoads, n.effBranchMix(), n.effILP()),
		Fingerprint: fp,
	}, nil
}

// Register materializes and registers the given specs, returning their
// canonical benchmark names in argument order. Re-registering a spec that is
// already registered is a cheap no-op: the name and fingerprint (but not the
// programs or data images) are computed and matched against the registry
// before any materialization, so sweeps can Register their workload points
// on every invocation without re-paying workload construction.
func Register(specs ...Spec) ([]string, error) {
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		n := s.Normalize()
		if err := n.Validate(); err != nil {
			return nil, err
		}
		fp, err := n.Fingerprint()
		if err != nil {
			return nil, err
		}
		name := n.Name()
		if existing, err := program.ByName(name); err == nil && existing.Fingerprint == fp {
			names = append(names, name)
			continue
		}
		bm, err := n.Benchmark()
		if err != nil {
			return nil, err
		}
		// A racing identical registration between the lookup and here is
		// absorbed by the registry's fingerprint-idempotent Register.
		if err := program.Register(bm); err != nil {
			return nil, err
		}
		names = append(names, bm.Name)
	}
	return names, nil
}

// Parse parses the CLI spec grammar: family:seed[:knob=value,...] (see the
// package comment).
func Parse(text string) (Spec, error) {
	parts := strings.SplitN(text, ":", 3)
	if len(parts) < 2 {
		return Spec{}, fmt.Errorf("gen: spec %q: want family:seed[:knob=value,...]", text)
	}
	var s Spec
	s.Family = Family(strings.TrimSpace(parts[0]))
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return Spec{}, fmt.Errorf("gen: spec %q: bad seed: %v", text, err)
	}
	s.Seed = seed
	if len(parts) == 3 && strings.TrimSpace(parts[2]) != "" {
		for _, kv := range strings.Split(parts[2], ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Spec{}, fmt.Errorf("gen: spec %q: knob %q is not key=value", text, kv)
			}
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return Spec{}, fmt.Errorf("gen: spec %q: knob %q: %v", text, kv, err)
			}
			switch strings.TrimSpace(key) {
			case "ws":
				s.WorkingSet = v
			case "depth":
				s.Depth = v
			case "loads":
				s.ProblemLoads = v
			case "branch":
				// An explicit 0 on the CLI means a never-taken mix, not
				// "family default" — map it to the -1 sentinel.
				if v == 0 {
					v = -1
				}
				s.BranchMix = v
			case "ilp":
				if v == 0 {
					v = -1 // explicit zero, as for branch
				}
				s.ILP = v
			default:
				keys := []string{"ws", "depth", "loads", "branch", "ilp"}
				sort.Strings(keys)
				return Spec{}, fmt.Errorf("gen: spec %q: unknown knob %q (have %s)", text, key, strings.Join(keys, ", "))
			}
		}
	}
	if err := s.Normalize().Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// inputVar is the per-input variation of a spec: a distinct data seed and
// input-scaled iteration count and branch threshold. Ref differs from Train
// in data and immediates only — code structure is a function of the knobs
// alone, preserving the 1:1 static-PC mapping across inputs.
type inputVar struct {
	seed  uint64
	steps int
	bias  int
}

func (s Spec) inputVar(c program.InputClass) inputVar {
	v := inputVar{
		// splitmix-style spread so nearby seeds yield unrelated streams.
		seed:  (s.Seed + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9,
		steps: s.Depth,
		bias:  s.effBranchMix(),
	}
	if c == program.Ref {
		v.seed = (v.seed ^ 0x94D049BB133111EB) * 0xD6E8FEB86659FD93
		v.steps = s.Depth - s.Depth/8
		if v.steps < 1 {
			v.steps = 1
		}
		// An explicit zero mix stays never-taken on both inputs; everything
		// else shifts a little, as real inputs shift branch behaviour.
		if s.BranchMix >= 0 {
			v.bias += 7
			if v.bias > 100 {
				v.bias -= 14
			}
		}
	}
	return v
}

// build emits the program for one input class.
func (s Spec) build(c program.InputClass) (*isa.Program, error) {
	v := s.inputVar(c)
	b := isa.NewBuilder(s.Name() + "." + c.String())
	switch s.Family {
	case PointerChase:
		s.buildPointerChase(b, v)
	case HashProbe:
		s.buildHashProbe(b, v)
	case TreeWalk:
		s.buildTreeWalk(b, v)
	case BlockedStream:
		s.buildBlockedStream(b, v)
	case BranchyParser:
		s.buildBranchyParser(b, v)
	default:
		return nil, fmt.Errorf("gen: unknown family %q", s.Family)
	}
	return b.Build()
}
