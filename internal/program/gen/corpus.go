package gen

// CorpusSpecs returns the seeded differential corpus: every family under a
// matrix of knob settings, ≥20 specs in total, kept small enough that a
// simulation engine covers the whole corpus in seconds. It is the shared
// pinning set for engine differentials — event vs. the reference scan
// (TestGenCorpusEnginesAgree) and batched vs. serial
// (TestBatchedMatchesSerial) — so every engine variant is held to the same
// corpus.
func CorpusSpecs() []Spec {
	var specs []Spec
	for fi, f := range Families() {
		seed := uint64(100 + fi)
		specs = append(specs,
			Spec{Family: f, Seed: seed, WorkingSet: 1 << 13, Depth: 300},
			Spec{Family: f, Seed: seed + 1, WorkingSet: 1 << 15, Depth: 200, ProblemLoads: 2, BranchMix: 60},
			Spec{Family: f, Seed: seed + 2, WorkingSet: 1 << 14, Depth: 250, ProblemLoads: 4, BranchMix: 10, ILP: 6},
			Spec{Family: f, Seed: seed + 3, WorkingSet: 1 << 12, Depth: 400, BranchMix: 85, ILP: 1},
		)
	}
	return specs
}
