package gen

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/program"
	"repro/internal/trace"
)

// TestGenDeterministicBuilds: the same spec must emit bit-identical programs
// on every call — code, data image and entry point — for both input classes.
func TestGenDeterministicBuilds(t *testing.T) {
	for _, f := range Families() {
		s := Spec{Family: f, Seed: 99, ProblemLoads: 2, ILP: 3}
		a, err := s.Benchmark()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		b, err := s.Benchmark()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, c := range []program.InputClass{program.Train, program.Ref} {
			if !reflect.DeepEqual(a.Build(c), b.Build(c)) {
				t.Errorf("%s/%s: two builds of one spec differ", f, c)
			}
		}
	}
}

// TestGenSeedsDiverge: distinct seeds must produce distinct data images
// (the whole point of a seeded corpus).
func TestGenSeedsDiverge(t *testing.T) {
	for _, f := range Families() {
		a, err := Spec{Family: f, Seed: 1}.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		b, err := Spec{Family: f, Seed: 2}.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		pa, pb := a.Build(program.Train), b.Build(program.Train)
		if reflect.DeepEqual(pa.InitMem, pb.InitMem) {
			t.Errorf("%s: seeds 1 and 2 produced identical data images", f)
		}
	}
}

// TestGenTrainRefStructureIdentical: generated workloads must satisfy the
// SPEC-binary property the realistic-profiling experiment depends on — Train
// and Ref differ only in data and immediates, never in code structure.
func TestGenTrainRefStructureIdentical(t *testing.T) {
	for _, f := range Families() {
		bm, err := Spec{Family: f, Seed: 5, ProblemLoads: 3, ILP: 2}.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		tr, rf := bm.Build(program.Train), bm.Build(program.Ref)
		if len(tr.Insts) != len(rf.Insts) {
			t.Errorf("%s: %d train insts vs %d ref insts", f, len(tr.Insts), len(rf.Insts))
			continue
		}
		for pc := range tr.Insts {
			a, b := tr.Insts[pc], rf.Insts[pc]
			if a.Op != b.Op || a.Dst != b.Dst || a.Src1 != b.Src1 || a.Src2 != b.Src2 || a.Target != b.Target {
				t.Errorf("%s: pc %d structure differs: %s vs %s", f, pc, a, b)
				break
			}
		}
		if reflect.DeepEqual(tr.InitMem, rf.InitMem) {
			t.Errorf("%s: train and ref share one data image", f)
		}
	}
}

// TestGenKnobsShapeWorkload: every knob must observably change the emitted
// workload (code shape or executed behaviour), and the name must encode it.
func TestGenKnobsShapeWorkload(t *testing.T) {
	base := Spec{Family: HashProbe, Seed: 3}
	mutations := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"ws", func(s *Spec) { s.WorkingSet = 1 << 14 }},
		{"depth", func(s *Spec) { s.Depth = 1000 }},
		{"loads", func(s *Spec) { s.ProblemLoads = 3 }},
		{"branch", func(s *Spec) { s.BranchMix = 70 }},
		{"ilp", func(s *Spec) { s.ILP = 6 }},
	}
	baseBM, err := base.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	baseTr := trace.MustRun(baseBM.Build(program.Train))
	for _, m := range mutations {
		s := base
		m.mutate(&s)
		if s.Name() == base.Name() {
			t.Errorf("%s knob not encoded in name %q", m.name, s.Name())
		}
		bm, err := s.Benchmark()
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		tr := trace.MustRun(bm.Build(program.Train))
		if tr.Len() == baseTr.Len() && reflect.DeepEqual(bm.Build(program.Train).InitMem, baseBM.Build(program.Train).InitMem) {
			t.Errorf("%s knob changed neither trace length nor data image", m.name)
		}
	}
}

// TestGenFingerprintNormalizes: explicit defaults and zero knobs are the
// same workload — same name, same fingerprint — while any knob change
// re-fingerprints.
func TestGenFingerprintNormalizes(t *testing.T) {
	implicit := Spec{Family: PointerChase, Seed: 8}
	explicit := implicit.Normalize()
	fa, err := implicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := explicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb || implicit.Name() != explicit.Name() {
		t.Errorf("normalized spec diverged: %s/%s vs %s/%s", implicit.Name(), fa, explicit.Name(), fb)
	}
	changed := implicit
	changed.Depth = 123
	fc, err := changed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Error("depth change did not re-fingerprint")
	}
}

// TestGenRegisterIdempotent: registering one spec twice is a no-op; the
// second registration must neither error nor duplicate.
func TestGenRegisterIdempotent(t *testing.T) {
	s := Spec{Family: BlockedStream, Seed: 777}
	names1, err := Register(s)
	if err != nil {
		t.Fatal(err)
	}
	names2, err := Register(s)
	if err != nil {
		t.Fatalf("re-registering an identical spec: %v", err)
	}
	if !reflect.DeepEqual(names1, names2) {
		t.Fatalf("re-registration renamed: %v vs %v", names1, names2)
	}
	if _, err := program.ByName(names1[0]); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range program.Names() {
		if name == names1[0] {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("registry lists the spec %d times", n)
	}
}

// TestGenValidate covers the knob bounds and unknown families.
func TestGenValidate(t *testing.T) {
	bad := []Spec{
		{Family: "nonesuch", Seed: 1},
		{Family: PointerChase, Seed: 1, WorkingSet: 1 << 25},
		{Family: PointerChase, Seed: 1, Depth: -1},
		{Family: PointerChase, Seed: 1, ProblemLoads: 9},
		{Family: PointerChase, Seed: 1, BranchMix: 150},
		{Family: PointerChase, Seed: 1, ILP: 99},
	}
	for _, s := range bad {
		if _, err := s.Benchmark(); err == nil {
			t.Errorf("Benchmark accepted invalid spec %+v", s)
		}
	}
}

// TestGenParse covers the CLI spec grammar.
func TestGenParse(t *testing.T) {
	s, err := Parse("hash-probe:42:ws=131072,loads=2,branch=30")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Family: HashProbe, Seed: 42, WorkingSet: 131072, ProblemLoads: 2, BranchMix: 30}
	if s != want {
		t.Errorf("Parse = %+v, want %+v", s, want)
	}
	if s2, err := Parse("pointer-chase:7"); err != nil || s2.Family != PointerChase || s2.Seed != 7 {
		t.Errorf("Parse minimal form: %+v, %v", s2, err)
	}
	for _, bad := range []string{"", "pointer-chase", "pointer-chase:x", "bogus:1",
		"pointer-chase:1:ws", "pointer-chase:1:nope=3", "pointer-chase:1:ws=abc",
		"pointer-chase:1:loads=9"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
	// Parse errors name the valid knobs.
	_, err = Parse("pointer-chase:1:nope=3")
	if err == nil || !strings.Contains(err.Error(), "ws") {
		t.Errorf("unknown-knob error %v does not list knob keys", err)
	}
}

// TestGenExplicitZeroKnobs: branch=0 and ilp=0 are meaningful settings, not
// "family default" — Parse maps them to the -1 sentinel, which is the
// canonical normalized form (Normalize must be idempotent: a resolved 0
// would read as "unset" on the next pass and silently substitute the family
// default). The name, fingerprint and built workload all reflect the zeros,
// including through the Register path.
func TestGenExplicitZeroKnobs(t *testing.T) {
	s, err := Parse("pointer-chase:9:branch=0,ilp=0")
	if err != nil {
		t.Fatal(err)
	}
	if s.BranchMix != -1 || s.ILP != -1 {
		t.Fatalf("Parse mapped zeros to %+v", s)
	}
	n := s.Normalize()
	if n != n.Normalize() {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", n, n.Normalize())
	}
	if n.effBranchMix() != 0 || n.effILP() != 0 {
		t.Fatalf("effective knobs of %+v not zero", n)
	}
	if !strings.Contains(s.Name(), "-b0-") || !strings.Contains(s.Name(), "-i0") {
		t.Errorf("name %q does not encode explicit zeros", s.Name())
	}
	dfltSpec := Spec{Family: PointerChase, Seed: 9}
	if s.Name() == dfltSpec.Name() {
		t.Fatal("explicit-zero spec aliases the default spec's name")
	}
	sf, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	df, err := dfltSpec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if sf == df {
		t.Fatal("explicit-zero spec aliases the default spec's fingerprint")
	}
	// Registration must carry the explicit zeros, not rewrite them to the
	// family default mid-flight.
	names, err := Register(s)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != s.Name() || !strings.Contains(names[0], "-b0-") {
		t.Fatalf("Register named the explicit-zero spec %q", names[0])
	}
	zero, err := program.ByName(names[0])
	if err != nil {
		t.Fatal(err)
	}
	dflt, err := dfltSpec.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	zt := trace.MustRun(zero.Build(program.Train))
	dt := trace.MustRun(dflt.Build(program.Train))
	if zt.Len() >= dt.Len() {
		t.Errorf("ilp=0 trace (%d insts) not shorter than default ilp (%d insts)", zt.Len(), dt.Len())
	}
	// With a never-taken mix, the extra path must never execute: the
	// extra-path counter instruction (AddI rAcc2) shows zero dynamic
	// executions.
	counts := zt.StaticCounts()
	prog := zero.Build(program.Train)
	for pc, in := range prog.Insts {
		if in.Op == 0 {
			continue
		}
		if in.String() == "addi r14, r14, 1" && counts[pc] != 0 {
			t.Errorf("branch=0 workload executed the extra path %d times", counts[pc])
		}
	}
}

// TestGenParseHugeWorkingSet: a working set past the power-of-two doubling
// range must fail fast with a range error, not hang in normalization.
func TestGenParseHugeWorkingSet(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Parse("pointer-chase:1:ws=4611686018427387905")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("oversized working set accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Parse hung on an oversized working set")
	}
}

// TestGenTreeWalkILPIndependent: the ILP filler chains must be independent
// of the descent — the sequence of tree-node addresses a walk visits is
// identical whatever the ILP knob (a register collision between filler and
// search-key registers would perturb every direction decision).
func TestGenTreeWalkILPIndependent(t *testing.T) {
	treeAddrs := func(ilp int) []int64 {
		s := Spec{Family: TreeWalk, Seed: 13, WorkingSet: 1 << 12, Depth: 50, ProblemLoads: 4, ILP: ilp}
		bm, err := s.Benchmark()
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.MustRun(bm.Build(program.Train))
		treeBase := int64(1<<10) * maxProblem * 8
		var addrs []int64
		for cu := tr.Cursor(); cu.Next(); {
			if cu.Inst().IsLoad() && cu.Addr() >= treeBase {
				addrs = append(addrs, cu.Addr())
			}
		}
		return addrs
	}
	want := treeAddrs(-1) // explicit zero filler
	for _, ilp := range []int{2, 5, 8} {
		if got := treeAddrs(ilp); !reflect.DeepEqual(got, want) {
			t.Fatalf("ilp=%d changed the descent address stream (%d vs %d tree loads)", ilp, len(got), len(want))
		}
	}
}

// TestGenProgramsValidate: every family × a knob matrix must emit programs
// that pass isa validation and run to completion on both inputs.
func TestGenProgramsValidate(t *testing.T) {
	for _, f := range Families() {
		for _, s := range []Spec{
			{Family: f, Seed: 1},
			{Family: f, Seed: 2, WorkingSet: 1 << 12, Depth: 200, ProblemLoads: 4, BranchMix: 90, ILP: 8},
			{Family: f, Seed: 3, WorkingSet: 1 << 18, Depth: 100, ProblemLoads: 2, BranchMix: 5},
		} {
			bm, err := s.Benchmark()
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			for _, c := range []program.InputClass{program.Train, program.Ref} {
				p := bm.Build(c)
				if err := p.Validate(); err != nil {
					t.Fatalf("%s/%s: %v", bm.Name, c, err)
				}
				if _, err := trace.Run(p); err != nil {
					t.Fatalf("%s/%s: %v", bm.Name, c, err)
				}
			}
		}
	}
}
