package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "mcf",
		Build:       buildMCF,
		Description: "network-simplex-like: serial pointer chase over node list (unhelpable misses) plus strided arc-array scan with data-dependent branches (helpable via induction unrolling)",
	})
}

// buildMCF mimics mcf's two memory behaviours. The pointer chase's next
// address depends on the previous load, so pre-execution cannot run ahead of
// it — the flat PTHSEL cost model selects p-threads for it anyway and loses;
// the criticality-based model recognizes the misses as non-shortenable. The
// arc scan is a strided walk over a >L2 region behind a dependence-chain of
// filler work that limits the window's natural MLP — classic pre-execution
// territory.
func buildMCF(c InputClass) *isa.Program {
	seed := uint64(0x6d6366) // "mcf"
	nNodes := 32768          // 64B records: 2MB chase footprint
	chaseSteps := 2600
	scanSteps := 9000
	arcWords := 1 << 16 // 512KB arc values (power of two)
	idxWords := 1 << 14 // 128KB arc-index stream (sequential, HW-prefetchable)
	thresh := int64(15) // ~15% taken: biased cost branch
	if c == Ref {
		seed = 0x6d636652
		nNodes = 28672
		chaseSteps = 2200
		scanSteps = 8000
		thresh = 10
	}

	const nodeRec = 8 // words per node record (64B: one block per chase step)
	nodesWords := nNodes * nodeRec
	arcsBase := nodesWords         // word index of arc values
	idxBase := arcsBase + arcWords // word index of the arc-index stream
	mem := make([]int64, nodesWords+arcWords+idxWords)
	r := NewLCG(seed)
	next := r.CyclePerm(nNodes)
	for i := 0; i < nNodes; i++ {
		mem[i*nodeRec] = int64(next[i] * nodeRec * 8) // next node byte address
		mem[i*nodeRec+1] = int64(r.Intn(100))         // cost
	}
	for w := 0; w < arcWords; w++ {
		mem[arcsBase+w] = int64(r.Intn(200) - 100)
	}
	// The arc-index stream gathers arcs in permuted order: every 8th entry
	// points anywhere in the 512KB arc region (a problem access), the rest
	// stay within a hot 32KB prefix.
	for w := 0; w < idxWords; w++ {
		if w%8 == 0 {
			mem[idxBase+w] = int64(r.Intn(arcWords))
		} else {
			mem[idxBase+w] = int64(r.Intn(4096))
		}
	}

	const (
		rNode = isa.Reg(1)
		rAcc  = isa.Reg(2)
		rAcc2 = isa.Reg(3)
		rC    = isa.Reg(4)
		rCost = isa.Reg(5)
		rI    = isa.Reg(6)
		rS    = isa.Reg(7)
		rJ    = isa.Reg(8)
		rOff  = isa.Reg(9)
		rAB   = isa.Reg(10)
		rAddr = isa.Reg(11)
		rV    = isa.Reg(12)
		rF    = isa.Reg(13)
		rC2   = isa.Reg(14)
	)

	b := isa.NewBuilder("mcf." + c.String())

	// Phase 1: pointer chase. receipts-style accumulation with a data-
	// dependent branch on the node cost.
	b.MovI(rNode, 0)
	b.MovI(rI, 0)
	b.MovI(rS, int64(chaseSteps))
	b.Label("chase")
	b.Load(rCost, rNode, 8) // node cost: problem load (serial chain)
	b.Add(rAcc, rAcc, rCost)
	b.CmpLTI(rC, rCost, thresh)
	b.BrZ(rC, "chase_skip")
	b.AddI(rAcc2, rAcc2, 1)
	b.Label("chase_skip")
	b.Load(rNode, rNode, 0) // chase: problem load, address feeds itself
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rS)
	b.BrNZ(rC2, "chase")

	// Phase 2: arc gather. A sequential index stream (covered by the
	// conventional stride prefetcher) gathers arcs in permuted order; the
	// gather addresses defy address prediction and are the helpable problem
	// loads, behind filler work that limits the window's natural MLP.
	b.MovI(rJ, 0)
	b.MovI(rAB, int64(arcsBase*8))
	b.MovI(rOff, int64(idxBase*8))
	b.MovI(rS, int64(scanSteps))
	b.Label("scan")
	b.AndI(rAddr, rJ, int64(idxWords-1))
	b.ShlI(rAddr, rAddr, 3)
	b.Add(rAddr, rAddr, rOff)
	b.Load(rV, rAddr, 0) // arc index: sequential stream
	b.ShlI(rV, rV, 3)
	b.Add(rV, rV, rAB)
	b.Load(rV, rV, 0) // arc cost: problem load (gather, defies prediction)
	b.Add(rAcc, rAcc, rV)
	b.CmpLTI(rC, rV, -60) // ~20% taken: negative-arc branch
	b.BrZ(rC, "scan_join")
	b.Sub(rAcc2, rAcc2, rV)
	b.Label("scan_join")
	for k := 0; k < 10; k++ {
		b.AddI(rF, rF, 1) // serial filler: limits natural miss overlap
	}
	b.AddI(rJ, rJ, 1)
	b.CmpLT(rC2, rJ, rS)
	b.BrNZ(rC2, "scan")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
