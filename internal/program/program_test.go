package program

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/profile"
	"repro/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	// The nine built-ins must all be registered; the registry may hold more
	// (dynamically registered workloads), so this is a containment check.
	for _, name := range PaperNames() {
		if _, err := ByName(name); err != nil {
			t.Errorf("built-in %q missing: %v", name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestInputClassString(t *testing.T) {
	if Train.String() != "train" || Ref.String() != "ref" {
		t.Error("input class names wrong")
	}
}

// TestAllBenchmarksRun executes every benchmark under both input classes and
// checks the properties the reproduction depends on: the program terminates,
// is big enough to be interesting, has a working set that misses in the L2,
// and its misses are concentrated in a handful of static problem loads.
func TestAllBenchmarksRun(t *testing.T) {
	for _, bm := range All() {
		for _, class := range []InputClass{Train, Ref} {
			bm, class := bm, class
			t.Run(bm.Name+"/"+class.String(), func(t *testing.T) {
				t.Parallel()
				p := bm.Build(class)
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				tr, err := trace.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if tr.Len() < 50_000 {
					t.Errorf("only %d dynamic instructions", tr.Len())
				}
				if tr.Len() > 2_000_000 {
					t.Errorf("%d dynamic instructions: too large for the experiment budget", tr.Len())
				}
				prof := profile.Collect(tr, profile.ConfigFromHier(cache.DefaultHierConfig()))
				if prof.TotalL2 < 1000 {
					t.Errorf("only %d L2 misses: not an L2-bound workload", prof.TotalL2)
				}
				problems := prof.ProblemLoads(0.9, 50)
				if len(problems) == 0 {
					t.Fatal("no problem loads found")
				}
				if len(problems) > 12 {
					t.Errorf("%d problem loads: misses not concentrated", len(problems))
				}
			})
		}
	}
}

// TestDeterministicBuilds checks that building twice yields identical images
// (selection and measurement must agree on the program).
func TestDeterministicBuilds(t *testing.T) {
	for _, bm := range All() {
		a := bm.Build(Train)
		b := bm.Build(Train)
		if len(a.Insts) != len(b.Insts) || len(a.InitMem) != len(b.InitMem) {
			t.Fatalf("%s: non-deterministic build", bm.Name)
		}
		for i := range a.InitMem {
			if a.InitMem[i] != b.InitMem[i] {
				t.Fatalf("%s: memory image differs at word %d", bm.Name, i)
			}
		}
	}
}

// TestTrainRefDiffer checks the two input classes are actually different
// programs (the realistic-profiling experiment requires it).
func TestTrainRefDiffer(t *testing.T) {
	for _, bm := range All() {
		tr := bm.Build(Train)
		rf := bm.Build(Ref)
		same := len(tr.InitMem) == len(rf.InitMem)
		if same {
			for i := range tr.InitMem {
				if tr.InitMem[i] != rf.InitMem[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: train and ref inputs are identical", bm.Name)
		}
	}
}

func TestLCGHelpers(t *testing.T) {
	r := NewLCG(42)
	seen := map[int]bool{}
	p := r.Perm(100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("perm is not a permutation")
		}
		seen[v] = true
	}
	cyc := r.CyclePerm(50)
	// Following next pointers must visit all 50 nodes before returning.
	at, steps := 0, 0
	for {
		at = cyc[at]
		steps++
		if at == 0 {
			break
		}
		if steps > 50 {
			t.Fatal("cyclePerm closed early or diverged")
		}
	}
	if steps != 50 {
		t.Errorf("cycle length %d, want 50", steps)
	}
	for i := 0; i < 100; i++ {
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("intn out of range: %d", n)
		}
	}
}
