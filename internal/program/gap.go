package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "gap",
		Build:       buildGAP,
		Description: "group-theory-table-like: small cached dispatch table selects a slab; a multiplicative index pattern probes randomly within 4MB of slabs; fully arithmetic addresses make extremely efficient p-threads",
	})
}

// buildGAP mimics gap's large multiplication/permutation tables: the slab
// base comes from a tiny always-cached table, and the element index is pure
// register arithmetic on the loop counter — the cheapest possible slice.
func buildGAP(c InputClass) *isa.Program {
	seed := uint64(0x676170)
	nSlabs := 64
	slabWords := 1 << 13 // 64KB per slab: 4MB total
	steps := 12000
	idxMul := int64(40503)
	if c == Ref {
		seed = 0x67617052
		slabWords = 1 << 12
		steps = 11000
		idxMul = 48271
	}

	tabBase := 0
	slabBase := nSlabs
	mem := make([]int64, nSlabs+nSlabs*slabWords)
	r := NewLCG(seed)
	// Three quarters of the dispatch entries point at three "hot" slabs
	// (L2-resident working set); the rest scatter across all slabs. Problem
	// loads are the cold accesses — a realistic miss density of one L2 miss
	// per few hundred instructions rather than one per iteration.
	for s := 0; s < nSlabs; s++ {
		slab := s % 3
		if s%8 == 0 {
			slab = r.Intn(nSlabs)
		}
		mem[tabBase+s] = int64((slabBase + slab*slabWords) * 8) // slab byte address
	}
	for w := nSlabs; w < len(mem); w++ {
		mem[w] = int64(r.Intn(1 << 16))
	}

	const (
		rI    = isa.Reg(1)
		rN    = isa.Reg(2)
		rT    = isa.Reg(3)
		rSlab = isa.Reg(4)
		rX    = isa.Reg(5)
		rA    = isa.Reg(6)
		rV    = isa.Reg(7)
		rC    = isa.Reg(8)
		rAcc  = isa.Reg(9)
		rOdd  = isa.Reg(10)
		rC2   = isa.Reg(11)
		rW2   = isa.Reg(13)
		rW    = isa.Reg(12)
	)

	b := isa.NewBuilder("gap." + c.String())
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.Label("top")
	b.AndI(rT, rI, int64(nSlabs-1))
	b.ShlI(rT, rT, 3)
	b.Load(rSlab, rT, 0) // dispatch table: always L1-resident
	b.MulI(rX, rI, idxMul)
	b.AndI(rX, rX, int64(slabWords-1))
	b.ShlI(rX, rX, 3)
	b.Add(rA, rSlab, rX)
	b.Load(rV, rA, 0)      // slab element: problem load (random in 4MB)
	b.CmpLTI(rC, rV, 6000) // ~9% of the value range: a biased, predictable-ish branch
	b.BrZ(rC, "common")
	b.AddI(rOdd, rOdd, 1)
	b.Jmp("join")
	b.Label("common")
	b.Add(rAcc, rAcc, rV)
	b.Label("join")
	for k := 0; k < 4; k++ {
		b.AddI(rW, rW, 1)   // bookkeeping (one chain)
		b.AddI(rW2, rW2, 2) // second independent chain keeps ILP available
	}
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
