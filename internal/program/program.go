// Package program provides the nine synthetic benchmark workloads standing
// in for the SPEC2000 integer benchmarks the paper evaluates (bzip2, gap,
// gcc, mcf, parser, twolf, vortex, vpr.place, vpr.route — the subset that
// suffers from L2 misses).
//
// Each workload is written in the micro-ISA and engineered to reproduce the
// memory-behaviour class of its namesake: a small number of static "problem"
// loads generating most L2 misses, with backward slices that the selection
// framework can isolate and hoist. Data structures (permutations, linked
// lists, hash tables, grids) are prepared in Go as the program's initialized
// data segment, standing in for a loader; all hot-loop computation happens
// in ISA code so real slices exist and p-threads execute real work.
//
// Workloads are parameterized by an InputClass: Train is the default
// measurement input; Ref is a different input (different seed, size and
// branch mix) used for the paper's realistic-profiling experiment (§5.3).
package program

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
)

// InputClass selects a workload input set.
type InputClass int

// Input classes. Train is the input the paper measures on; Ref is the
// alternate input used for realistic profiling.
const (
	Train InputClass = iota
	Ref
)

// String returns "train" or "ref".
func (c InputClass) String() string {
	if c == Ref {
		return "ref"
	}
	return "train"
}

// Benchmark is a named synthetic workload generator.
type Benchmark struct {
	Name string
	// Build constructs the program for the given input class. Builds are
	// deterministic: the same class always yields the same program.
	Build func(InputClass) *isa.Program
	// Description summarizes which SPEC2000 behaviour the workload mimics.
	Description string
	// Fingerprint is an optional content fingerprint of the workload's
	// definition. The built-in corpus leaves it empty (the name alone
	// identifies a fixed program); dynamically registered workloads — the
	// seeded generator — set it so artifact caches key on the workload's
	// content, not just its name, and so re-registering the identical
	// definition is an idempotent no-op.
	Fingerprint string
}

// registry holds every registered benchmark. Registration is public and
// dynamic (generated workloads arrive mid-run, possibly from parallel
// campaign workers), so every access goes through regMu.
var (
	regMu    sync.RWMutex
	registry = map[string]Benchmark{}
)

// register adds one built-in benchmark at init time, panicking on the
// programming error of two init funcs claiming one name.
func register(b Benchmark) {
	if err := Register(b); err != nil {
		//lab:allow(panicpath: init-time registration; a duplicate benchmark name is a programming error that must fail the build of the binary, not a run)
		panic(err)
	}
}

// Register adds a benchmark to the registry. It is safe for concurrent use
// with ByName, All and Names (a campaign can register generated workloads
// while workers resolve others). A name collision returns an error rather
// than panicking, with one exception: re-registering a benchmark whose
// non-empty Fingerprint matches the already-registered one is a no-op —
// that is what makes seeded-generator registration idempotent across labs
// and sweep runs.
func Register(b Benchmark) error {
	if b.Name == "" {
		return fmt.Errorf("program: benchmark with empty name")
	}
	if b.Build == nil {
		return fmt.Errorf("program: benchmark %q has no Build function", b.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if existing, dup := registry[b.Name]; dup {
		if b.Fingerprint != "" && existing.Fingerprint == b.Fingerprint {
			return nil
		}
		return fmt.Errorf("program: duplicate benchmark %q", b.Name)
	}
	registry[b.Name] = b
	return nil
}

// All returns every registered benchmark sorted by name. (Note: name order,
// not the paper's presentation order — the two coincided only while the
// registry held exactly the nine built-ins; PaperNames is the authoritative
// paper order.)
func All() []Benchmark {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Benchmark, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the registered benchmark names sorted by name.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// paperOrder is the paper's benchmark presentation order (Table 2), pinned
// explicitly: it must not drift as generated workloads register.
var paperOrder = []string{
	"bzip2", "gap", "gcc", "mcf", "parser", "twolf", "vortex",
	"vpr.place", "vpr.route",
}

// PaperNames returns the paper's nine benchmarks in the paper's order,
// independent of whatever else has been registered.
func PaperNames() []string {
	out := make([]string, len(paperOrder))
	copy(out, paperOrder)
	return out
}

// ByName looks up one benchmark.
func ByName(name string) (Benchmark, error) {
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Benchmark{}, fmt.Errorf("program: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// LCG is a deterministic 64-bit linear congruential generator used by the
// workload initializers, built-in and generated alike (a tiny stand-in for
// the inputs' entropy; the module avoids math/rand so the generated images
// are stable across Go releases).
type LCG struct{ s uint64 }

// NewLCG seeds a generator; equal seeds yield identical streams forever.
func NewLCG(seed uint64) *LCG { return &LCG{s: seed*2862933555777941757 + 3037000493} }

// Next returns the next raw value of the stream.
func (l *LCG) Next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

// Intn returns a value in [0, n).
func (l *LCG) Intn(n int) int { return int(l.Next() % uint64(n)) }

// Perm returns a random permutation of [0, n).
func (l *LCG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := l.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// CyclePerm returns a permutation of [0,n) forming a single cycle, used for
// pointer-chase lists that must not close early.
func (l *LCG) CyclePerm(n int) []int {
	order := l.Perm(n)
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[order[i]] = order[(i+1)%n]
	}
	return next
}
