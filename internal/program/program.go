// Package program provides the nine synthetic benchmark workloads standing
// in for the SPEC2000 integer benchmarks the paper evaluates (bzip2, gap,
// gcc, mcf, parser, twolf, vortex, vpr.place, vpr.route — the subset that
// suffers from L2 misses).
//
// Each workload is written in the micro-ISA and engineered to reproduce the
// memory-behaviour class of its namesake: a small number of static "problem"
// loads generating most L2 misses, with backward slices that the selection
// framework can isolate and hoist. Data structures (permutations, linked
// lists, hash tables, grids) are prepared in Go as the program's initialized
// data segment, standing in for a loader; all hot-loop computation happens
// in ISA code so real slices exist and p-threads execute real work.
//
// Workloads are parameterized by an InputClass: Train is the default
// measurement input; Ref is a different input (different seed, size and
// branch mix) used for the paper's realistic-profiling experiment (§5.3).
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// InputClass selects a workload input set.
type InputClass int

// Input classes. Train is the input the paper measures on; Ref is the
// alternate input used for realistic profiling.
const (
	Train InputClass = iota
	Ref
)

// String returns "train" or "ref".
func (c InputClass) String() string {
	if c == Ref {
		return "ref"
	}
	return "train"
}

// Benchmark is a named synthetic workload generator.
type Benchmark struct {
	Name string
	// Build constructs the program for the given input class. Builds are
	// deterministic: the same class always yields the same program.
	Build func(InputClass) *isa.Program
	// Description summarizes which SPEC2000 behaviour the workload mimics.
	Description string
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("program: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// All returns every benchmark in the paper's order.
func All() []Benchmark {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Benchmark, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the benchmark names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ByName looks up one benchmark.
func ByName(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("program: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// lcg is a deterministic 64-bit linear congruential generator used by the
// workload initializers (a tiny stand-in for the inputs' entropy; the module
// avoids math/rand so the generated images are stable across Go releases).
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// perm returns a random permutation of [0, n).
func (l *lcg) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := l.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// cyclePerm returns a permutation of [0,n) forming a single cycle, used for
// pointer-chase lists that must not close early.
func (l *lcg) cyclePerm(n int) []int {
	order := l.perm(n)
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[order[i]] = order[(i+1)%n]
	}
	return next
}
