package program

import "testing"

// TestStaticCodeIdenticalAcrossInputs checks the SPEC-binary property the
// realistic-profiling experiment depends on: Train and Ref differ only in
// data and immediates, never in code structure, so static PCs map 1:1.
func TestStaticCodeIdenticalAcrossInputs(t *testing.T) {
	for _, bm := range All() {
		tr := bm.Build(Train)
		rf := bm.Build(Ref)
		if len(tr.Insts) != len(rf.Insts) {
			t.Errorf("%s: %d train insts vs %d ref insts", bm.Name, len(tr.Insts), len(rf.Insts))
			continue
		}
		for pc := range tr.Insts {
			a, b := tr.Insts[pc], rf.Insts[pc]
			if a.Op != b.Op || a.Dst != b.Dst || a.Src1 != b.Src1 || a.Src2 != b.Src2 || a.Target != b.Target {
				t.Errorf("%s: pc %d structure differs: %s vs %s", bm.Name, pc, a, b)
				break
			}
		}
	}
}
