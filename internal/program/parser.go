package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "parser",
		Build:       buildParser,
		Description: "dictionary-probe-like: stream of word keys hashed into a >L2 bucket table with a one-deep rehash chain; the probe address is computable from the streamed key, so slices hoist well",
	})
}

const parserHashMul = 2654435761

// buildParser mimics the link-grammar dictionary lookup: keys stream from a
// text region (sequential) and probe a hash table (random, >L2). Roughly a
// quarter of the probes need a second bucket, creating an unpredictable
// branch between trigger and target.
func buildParser(c InputClass) *isa.Program {
	seed := uint64(0x706172)
	bucketEntries := 1 << 18 // 2MB table
	textEntries := 1 << 15   // 256KB key stream
	steps := 11000
	secondProbeFrac := 4 // one in four keys needs the rehash probe
	if c == Ref {
		seed = 0x70617252
		bucketEntries = 1 << 17
		steps = 10000
		secondProbeFrac = 3
	}
	bmask := bucketEntries - 1

	textBase := 0
	bucketBase := textEntries
	mem := make([]int64, textEntries+bucketEntries)
	r := NewLCG(seed)
	hash := func(k int64) int { return int((uint64(k*parserHashMul) >> 16)) & bmask }
	// Three quarters of the text stream are "frequent words" drawn from a
	// small dictionary whose buckets live in a hot 32KB prefix of the table
	// (they hit the L2); the cold quarter probes the whole table and
	// produces the problem-load misses.
	hotBuckets := 4 << 10
	var hotKeys []int64
	for i := 0; i < textEntries; i++ {
		wantHot := i%8 != 0
		if wantHot && len(hotKeys) >= 512 {
			mem[textBase+i] = hotKeys[r.Intn(len(hotKeys))]
			continue
		}
		// Find a fresh key in the wanted region, placeable at its home
		// bucket or home+1 (no wrap: regenerate when the home bucket is the
		// last entry).
		for {
			k := int64(1 + r.Intn(1<<30))
			h := hash(k)
			if h >= bmask {
				continue
			}
			if wantHot != (h < hotBuckets) {
				continue
			}
			home := bucketBase + h
			switch {
			case mem[home] == 0 || mem[home] == k:
				mem[home] = k
			case r.Intn(secondProbeFrac) == 0 && (mem[home+1] == 0 || mem[home+1] == k):
				mem[home+1] = k
			default:
				continue
			}
			mem[textBase+i] = k
			if wantHot {
				hotKeys = append(hotKeys, k)
			}
			break
		}
	}

	const (
		rI    = isa.Reg(1)
		rN    = isa.Reg(2)
		rTB   = isa.Reg(3)
		rBB   = isa.Reg(4)
		rT    = isa.Reg(5)
		rW    = isa.Reg(6)
		rH    = isa.Reg(7)
		rHA   = isa.Reg(8)
		rE    = isa.Reg(9)
		rC    = isa.Reg(10)
		rE2   = isa.Reg(11)
		rHits = isa.Reg(12)
		rSec  = isa.Reg(13)
		rMiss = isa.Reg(14)
		rC2   = isa.Reg(15)
		rIdx  = isa.Reg(16)
	)

	b := isa.NewBuilder("parser." + c.String())
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.MovI(rTB, int64(textBase*8))
	b.MovI(rBB, int64(bucketBase*8))
	b.Label("top")
	// Key index cycles through the text region.
	b.AndI(rIdx, rI, int64(textEntries-1))
	b.ShlI(rT, rIdx, 3)
	b.Add(rT, rT, rTB)
	b.Load(rW, rT, 0) // streamed key
	b.MulI(rH, rW, parserHashMul)
	b.ShrI(rH, rH, 16)
	b.AndI(rH, rH, int64(bmask))
	b.ShlI(rHA, rH, 3)
	b.Add(rHA, rHA, rBB)
	b.Load(rE, rHA, 0) // home bucket: problem load
	b.CmpEQ(rC, rE, rW)
	b.BrNZ(rC, "hit")
	b.Load(rE2, rHA, 8) // rehash bucket (same block half the time)
	b.CmpEQ(rC, rE2, rW)
	b.BrNZ(rC, "hit2")
	b.AddI(rMiss, rMiss, 1)
	b.Jmp("join")
	b.Label("hit2")
	b.AddI(rSec, rSec, 1)
	b.Jmp("join")
	b.Label("hit")
	b.AddI(rHits, rHits, 1)
	b.Label("join")
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
