package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "twolf",
		Build:       buildTwolf,
		Description: "placement-swap-like: register-resident LCG selects random cell pairs from a >L2 cell array; probe addresses are pure arithmetic, giving compact, highly hoistable slices",
	})
}

// LCG constants shared by the twolf/vpr generators and their ISA loops
// (int64 wrap-around multiplication matches isa.Mul semantics).
const (
	lcgMulA = 6364136223846793005
	lcgAddC = 1442695040888963407
)

// buildTwolf mimics the annealing inner loop: pick two pseudo-random cells,
// compare, conditionally accumulate a swap gain. Because the next indices
// come from a register-only LCG, p-threads can run arbitrarily far ahead at
// the cost of two ALU instructions per unrolled step — the energy-efficient
// induction idiom the paper highlights.
func buildTwolf(c InputClass) *isa.Program {
	seed := int64(0x74776f6c66) // "twolf"
	cellWords := 1 << 18        // 2MB cell array
	steps := 9000
	if c == Ref {
		seed = 0x74776f52
		cellWords = 1 << 17
		steps = 8000
	}
	cmask := int64(cellWords - 1)

	mem := make([]int64, cellWords)
	r := NewLCG(uint64(seed))
	for w := range mem {
		mem[w] = int64(r.Intn(4096))
	}

	const (
		rS    = isa.Reg(1)
		rI1   = isa.Reg(2)
		rA1   = isa.Reg(3)
		rV1   = isa.Reg(4)
		rI2   = isa.Reg(5)
		rA2   = isa.Reg(6)
		rV2   = isa.Reg(7)
		rC    = isa.Reg(8)
		rD    = isa.Reg(9)
		rGain = isa.Reg(10)
		rSwap = isa.Reg(11)
		rI    = isa.Reg(12)
		rN    = isa.Reg(13)
		rC2   = isa.Reg(14)
		rW    = isa.Reg(15)
		rHot  = isa.Reg(16)
		rT1   = isa.Reg(17)
		rMask = isa.Reg(18)
	)
	hotMask := int64(4095) // 32KB hot subregion
	coldExtra := cmask &^ hotMask

	b := isa.NewBuilder("twolf." + c.String())
	b.MovI(rS, seed)
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.MovI(rHot, hotMask)
	b.Label("top")
	// Every 8th swap candidate comes from the cold (full) cell array; the
	// rest stay in a hot 32KB subregion. The selection is branch-free mask
	// arithmetic, so the problem load's slice stays purely computable.
	b.AndI(rT1, rI, 7)
	b.CmpEQI(rT1, rT1, 0)
	b.MulI(rT1, rT1, coldExtra)
	b.Or(rMask, rHot, rT1)
	b.MulI(rS, rS, lcgMulA)
	b.AddI(rS, rS, lcgAddC)
	b.ShrI(rI1, rS, 33)
	b.And(rI1, rI1, rMask)
	b.ShlI(rA1, rI1, 3)
	b.Load(rV1, rA1, 0) // cell 1: problem load (random, >L2)
	b.MulI(rS, rS, lcgMulA)
	b.AddI(rS, rS, lcgAddC)
	b.ShrI(rI2, rS, 33)
	b.And(rI2, rI2, rMask)
	b.ShlI(rA2, rI2, 3)
	b.Load(rV2, rA2, 0) // cell 2: problem load
	b.Sub(rD, rV2, rV1)
	b.Add(rGain, rGain, rD)
	b.CmpLTI(rC, rD, -1400) // ~11% accept rate: annealing acceptance is biased
	b.BrZ(rC, "noswap")
	b.AddI(rSwap, rSwap, 1)
	b.Label("noswap")
	for k := 0; k < 4; k++ {
		b.AddI(rW, rW, 1) // bookkeeping work
	}
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
