package program

import "repro/internal/isa"

func init() {
	register(Benchmark{
		Name:        "bzip2",
		Build:       buildBzip2,
		Description: "block-sort-like: sequential walk of a >L2 pointer permutation indexing random positions of a data block; two-level slices with very high miss coverage potential but long bodies",
	})
}

// buildBzip2 mimics the BWT sorting phase: ptr[i] (sequential, streaming
// misses) indexes block[ptr[i]] (data-dependent, random misses). Slices for
// the block load must embed the ptr load, making p-threads long — the
// source of bzip2's large instruction overhead in the paper.
//
// The Ref input uses a block that fits closer to the L2, making the workload
// less memory-critical than Train — the mismatch the paper's realistic-
// profiling experiment (§5.3) trips over.
func buildBzip2(c InputClass) *isa.Program {
	seed := uint64(0x627a6970)
	ptrEntries := 1 << 18 // 2MB of pointers
	blockWords := 1 << 17 // 1MB data block
	steps := 15000
	if c == Ref {
		seed = 0x627a52
		ptrEntries = 1 << 17
		blockWords = 1 << 15 // 256KB: mostly L2-resident (less memory-critical)
		steps = 13000
	}

	ptrBase := 0
	blockBase := ptrEntries // words
	mem := make([]int64, ptrEntries+blockWords)
	r := NewLCG(seed)
	perm := r.Perm(ptrEntries)
	hotWords := 4 << 10 // 32KB hot prefix of the block
	if hotWords > blockWords {
		hotWords = blockWords
	}
	for i := 0; i < ptrEntries; i++ {
		// Three quarters of the pointers land in the hot prefix (sorting
		// locality); the rest scatter across the whole block and are the
		// misses p-threads target.
		if i%8 == 0 {
			mem[ptrBase+i] = int64(perm[i] % blockWords)
		} else {
			mem[ptrBase+i] = int64(perm[i] % hotWords)
		}
	}
	for w := 0; w < blockWords; w++ {
		mem[blockBase+w] = int64(r.Intn(256))
	}

	const (
		rI   = isa.Reg(1)
		rN   = isa.Reg(2)
		rPB  = isa.Reg(3)
		rBB  = isa.Reg(4)
		rT   = isa.Reg(5)
		rJ   = isa.Reg(6)
		rT2  = isa.Reg(7)
		rV   = isa.Reg(8)
		rC   = isa.Reg(9)
		rAcc = isa.Reg(10)
		rRun = isa.Reg(11)
		rF   = isa.Reg(12)
		rC2  = isa.Reg(13)
	)

	b := isa.NewBuilder("bzip2." + c.String())
	b.MovI(rI, 0)
	b.MovI(rN, int64(steps))
	b.MovI(rPB, int64(ptrBase*8))
	b.MovI(rBB, int64(blockBase*8))
	b.Label("top")
	b.ShlI(rT, rI, 3)
	b.Add(rT, rT, rPB)
	b.Load(rJ, rT, 0) // ptr[i]: streaming problem load
	b.ShlI(rT2, rJ, 3)
	b.Add(rT2, rT2, rBB)
	b.Load(rV, rT2, 0) // block[ptr[i]]: random problem load
	b.Add(rAcc, rAcc, rV)
	b.AndI(rC, rJ, 7) // biased bucket branch on the (usually cached) pointer
	b.BrNZ(rC, "common")
	b.AddI(rRun, rRun, 1)
	b.Jmp("join")
	b.Label("common")
	b.AddI(rAcc, rAcc, 1)
	b.Label("join")
	for k := 0; k < 4; k++ {
		b.AddI(rF, rF, 1)
		b.AddI(rRun, rRun, 1)
	}
	b.AddI(rI, rI, 1)
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}
