// Package labapi defines the wire types of the lab daemon's HTTP+JSON API,
// shared by the server (internal/labd, cmd/labd) and its clients
// (cmd/sweep -addr). Everything on the wire is plain JSON; job event
// streams are NDJSON — one StreamLine per line.
package labapi

import (
	"encoding/json"

	"repro/internal/experiments"
)

// SweepRequest submits a declarative sweep grid: the body of POST /v1/sweep.
// Axes name sensitivity axes ("idle", "mem", "l2" or their canonical
// names); Benchmarks name registered workloads; Workloads carry generator
// specs in the CLI grammar family:seed[:knob=value,...], registered on
// submission; Targets name selection targets (O, L, E, P, P2; empty means
// the paper's L, E, P). Clients resolve their own benchmark defaults — the
// daemon sweeps exactly what the request names.
type SweepRequest struct {
	Axes       []string `json:"axes,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Workloads  []string `json:"workloads,omitempty"`
	Targets    []string `json:"targets,omitempty"`
}

// SubmitResponse acknowledges a submission with the new job's ID.
type SubmitResponse struct {
	ID string `json:"id"`
}

// JobState is a job's lifecycle state.
type JobState string

// Job states. Running jobs transition to exactly one terminal state.
const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s != JobRunning }

// Job describes one submitted sweep: GET /v1/jobs returns a list of these,
// GET /v1/jobs/{id} one. Done/Total track grid-point progress.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
}

// Stream line kinds beyond the engine's own event kinds.
const (
	// KindLagging marks a gap in a client's event stream: the client fell
	// behind its bounded queue and Dropped events were discarded rather
	// than blocking the engine.
	KindLagging = "lagging"
	// KindJobDone and KindJobFailed terminate every event stream, after
	// the artifact line (if any).
	KindJobDone   = "job-done"
	KindJobFailed = "job-failed"
)

// StreamLine is one line of a job's NDJSON event stream
// (GET /v1/jobs/{id}/events). Progress lines carry Kind (an
// experiments.EventKind, or one of the Kind* constants above) and whichever
// event fields apply. The job's result artifact is streamed as a line with
// Artifact and Report set and no Kind — byte-compatible with the envelope
// `sweep -json` prints and `report -render -` consumes.
type StreamLine struct {
	Kind            string  `json:"kind,omitempty"`
	Bench           string  `json:"bench,omitempty"`
	Input           string  `json:"input,omitempty"`
	Stage           string  `json:"stage,omitempty"`
	Target          string  `json:"target,omitempty"`
	Point           string  `json:"point,omitempty"`
	Done            int     `json:"done,omitempty"`
	Total           int     `json:"total,omitempty"`
	Err             string  `json:"err,omitempty"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`

	// DurationNS carries a completed stage build's (or preparation's)
	// wall-clock nanoseconds on stage-done and prepare-done lines.
	DurationNS int64 `json:"duration_ns,omitempty"`

	// Dropped counts the events discarded before this line (KindLagging).
	Dropped int64 `json:"dropped,omitempty"`

	// Artifact + Report form the job's result envelope.
	Artifact string          `json:"artifact,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
}

// Stats is the daemon's observability surface: GET /v1/stats. Store is the
// engine's artifact-store view — per-stage request outcomes plus the disk
// spill tier's counters — the probe behind the daemon's build-once and
// restart-warm guarantees.
type Stats struct {
	Jobs  []Job                  `json:"jobs"`
	Store experiments.StoreStats `json:"store"`
}
