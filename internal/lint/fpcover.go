// The fingerprint-coverage analyzer. The content-addressed artifact store is
// only sound if every configuration field a stage reads is folded into that
// stage's fingerprint: a field that never reaches Fingerprint() means two
// different configurations share one cache key, and every client of a shared
// labd store silently receives stale artifacts. fpcover turns that hazard
// into a build break: for each struct type with a Fingerprint() (string,
// error) method, every field must be covered by the method — either because
// the whole receiver flows into the hash (the fingerprint.JSON(c) idiom) or
// because the field is referenced explicitly — or carry a //lab:nofp waiver.
//
// When the whole receiver is marshaled, encoding/json still skips unexported
// fields and fields tagged json:"-"; those are exactly the silently-dropped
// cases the analyzer reports.

package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

func analyzeFPCover(pkgs []*Package, _ Policy) []Finding {
	var out []Finding
	for _, p := range pkgs {
		// Index this package's method decls by (receiver type, name).
		methods := map[[2]string]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil && fd.Body != nil {
					methods[[2]string{recvTypeName(fd), fd.Name.Name}] = fd
				}
			}
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					fp := methods[[2]string{ts.Name.Name, "Fingerprint"}]
					if fp == nil || !isFingerprintSig(p, fp) {
						continue
					}
					checkFPCoverage(p, ts.Name.Name, st, fp, &out)
				}
			}
		}
	}
	return out
}

// isFingerprintSig matches func (T) Fingerprint() (string, error).
func isFingerprintSig(p *Package, fd *ast.FuncDecl) bool {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 2 {
		return false
	}
	r0, r1 := sig.Results().At(0).Type(), sig.Results().At(1).Type()
	b, ok := r0.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String && r1.String() == "error"
}

func checkFPCoverage(p *Package, typeName string, st *ast.StructType, fp *ast.FuncDecl, out *[]Finding) {
	wholeValue, selected := receiverFlow(p, fp)
	for _, field := range st.Fields.List {
		tag := fieldJSONTag(field)
		names := field.Names
		if len(names) == 0 { // embedded field
			names = []*ast.Ident{{Name: embeddedName(field.Type), NamePos: field.Pos()}}
		}
		for _, name := range names {
			if name.Name == "_" {
				continue
			}
			if hasDirective(field.Doc, "nofp") || hasDirective(field.Comment, "nofp") {
				continue
			}
			covered := selected[name.Name]
			if wholeValue && ast.IsExported(name.Name) && tag != "-" {
				covered = true
			}
			if covered {
				continue
			}
			why := "is not referenced by Fingerprint()"
			if wholeValue && !ast.IsExported(name.Name) {
				why = "is unexported, so the whole-value JSON fingerprint skips it"
			} else if wholeValue && tag == "-" {
				why = `is tagged json:"-", so the whole-value JSON fingerprint skips it`
			}
			p.report(out, "fpcover", name.Pos(),
				"field %s.%s %s; distinct configs would share a cache key — fold it in or waive it with //lab:nofp",
				typeName, name.Name, why)
		}
	}
}

// receiverFlow analyzes how Fingerprint's receiver is used: wholeValue is
// true when the receiver escapes as a complete value (passed to a call,
// returned, stored, or a method is invoked on it — the fingerprint.JSON(c)
// and JSON(c.Normalize()) idioms); selected collects field names accessed
// individually.
func receiverFlow(p *Package, fp *ast.FuncDecl) (wholeValue bool, selected map[string]bool) {
	selected = map[string]bool{}
	var recvObj types.Object
	if len(fp.Recv.List) > 0 && len(fp.Recv.List[0].Names) > 0 {
		recvObj = p.Info.Defs[fp.Recv.List[0].Names[0]]
	}
	if recvObj == nil {
		return false, selected
	}
	parents := parentMap(fp.Body)
	ast.Inspect(fp.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != recvObj {
			return true
		}
		if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == id {
			if s, ok := p.Info.Selections[sel]; ok {
				switch s.Kind() {
				case types.FieldVal:
					selected[sel.Sel.Name] = true
					return true
				case types.MethodVal, types.MethodExpr:
					// A method sees the whole receiver.
					wholeValue = true
					return true
				}
			}
		}
		// Bare use: argument, return value, assignment source, composite.
		wholeValue = true
		return true
	})
	return wholeValue, selected
}

// fieldJSONTag returns the json tag name component of a struct field ("-"
// when the field is excluded from marshaling).
func fieldJSONTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	tag := reflect.StructTag(raw).Get("json")
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

func embeddedName(t ast.Expr) string {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
