// Fixture for the maprange analyzer. Each `want` comment is an expected
// finding on that line; everything else must stay silent.
package maprange

import "sort"

var sink []string

// EncodeStats is a determinism root by name prefix.
func EncodeStats(m map[string]int) {
	emit(m)
}

// emit is reachable from EncodeStats via a direct call; appending the
// iteration key to package state without a later sort is order-sensitive.
func emit(m map[string]int) {
	for k := range m { // want `map iteration with order-sensitive body in emit \(reachable from determinism root EncodeStats\)`
		sink = append(sink, k)
	}
}

type R struct{}

// Render is a determinism root by method name; collect-then-sort is the
// sanctioned idiom and must not be flagged.
func (R) Render(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeTotal accumulates commutatively over integers; order-insensitive.
func EncodeTotal(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// EncodeIndex inserts into another map; distinct keys commute.
func EncodeIndex(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// EncodePrune deletes while ranging; the delete builtin commutes.
func EncodePrune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// EncodeWaived carries an explicit waiver.
func EncodeWaived(m map[string]int) {
	//lab:allow(maprange: fixture waiver exercised by the test)
	for k := range m {
		sink = append(sink, k)
	}
}

// idle has the same order-sensitive body as emit but is reachable from no
// root, so it must not be flagged.
func idle(m map[string]int) {
	for k := range m {
		sink = append(sink, k)
	}
}

var _ = idle

type sinkIface interface{ Flush(map[string]int) }

type badSink struct{}

// Flush is reached from DOT through the interface; the conservative
// expansion must find it.
func (badSink) Flush(m map[string]int) {
	for k := range m { // want `map iteration with order-sensitive body in Flush \(reachable from determinism root DOT\)`
		sink = append(sink, k)
	}
}

type D struct{ s sinkIface }

// DOT is a determinism root by method name.
func (d D) DOT(m map[string]int) { d.s.Flush(m) }
