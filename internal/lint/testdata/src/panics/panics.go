// Fixture for the panicpath analyzer: no panic in internal packages outside
// Must* helpers or an explicit waiver.
package panics

func Decode(b []byte) byte {
	if len(b) == 0 {
		panic("empty") // want `panic in Decode \(package fix/panics\)`
	}
	return b[0]
}

// MustDecode is the documented fail-fast convention.
func MustDecode(b []byte) byte {
	if len(b) == 0 {
		panic("empty")
	}
	return b[0]
}

func DecodeAllowed(b []byte) byte {
	if len(b) == 0 {
		//lab:allow(panicpath: fixture waiver exercised by the test)
		panic("empty")
	}
	return b[0]
}
