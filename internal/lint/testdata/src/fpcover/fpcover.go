// Fixture for the fpcover analyzer: every field of a struct with a
// Fingerprint() (string, error) method must reach the fingerprint or carry
// //lab:nofp.
package fpcover

import "fmt"

func jsonOf(v any) (string, error) { return fmt.Sprintf("%+v", v), nil }

// Whole flows into its fingerprint as a complete value (the
// fingerprint.JSON(c) idiom); JSON marshaling still skips unexported and
// json:"-" fields.
type Whole struct {
	Size  int
	Ways  int
	note  string `json:"note"` // want `field Whole\.note is unexported, so the whole-value JSON fingerprint skips it`
	Debug bool   `json:"-"`    // want `field Whole\.Debug is tagged json:"-", so the whole-value JSON fingerprint skips it`
	seed  int    //lab:nofp (derived from Size at build time; fixture waiver)
}

func (w Whole) Fingerprint() (string, error) { return jsonOf(w) }

// Partial fingerprints fields explicitly and misses C.
type Partial struct {
	A int
	B string
	C bool // want `field Partial\.C is not referenced by Fingerprint\(\)`
}

func (p Partial) Fingerprint() (string, error) {
	return fmt.Sprintf("%d/%s", p.A, p.B), nil
}

// NotConfig's Fingerprint has the wrong signature, so it is not a stage
// config and must stay silent.
type NotConfig struct {
	hidden int
}

func (NotConfig) Fingerprint() string { return "" }

var _ = Whole{}.note
var _ = Whole{}.seed
var _ = NotConfig{}.hidden
