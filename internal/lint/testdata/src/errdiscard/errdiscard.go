// Fixture for the errdiscard analyzer: Close/Sync/Rename errors on
// persistence paths must be checked or explicitly discarded.
package errdiscard

import "os"

type file struct{}

func (file) Close() error { return nil }
func (file) Sync() error  { return nil }

type quiet struct{}

// Close without an error result is not a persistence call.
func (quiet) Close() {}

func flush(f file) error {
	f.Sync()            // want `Sync error discarded on persistence path`
	defer f.Close()     // want `Close error discarded by defer on persistence path`
	os.Rename("a", "b") // want `Rename error discarded on persistence path`
	return nil
}

func flushChecked(f file) error {
	if err := f.Sync(); err != nil {
		return err
	}
	_ = f.Close() // explicit discard is acknowledged
	var q quiet
	q.Close()
	//lab:allow(errdiscard: fixture waiver exercised by the test)
	f.Close()
	return os.Rename("a", "b")
}

var _ = flush
var _ = flushChecked
