// Fixture for the hotalloc analyzer: every alloc-inducing construct inside a
// //lab:hotpath function, plus the tolerated shapes (append, failure-exit
// formatting, capture-free closures, untagged functions).
package hotpath

import "fmt"

type ring struct {
	buf []int
	n   int
}

func (r *ring) reset() {}

//lab:hotpath
func (r *ring) push(v int) error {
	if r.n >= 1<<20 {
		return fmt.Errorf("ring full at %d", r.n) // formatting a failure exit is cold
	}
	r.buf = append(r.buf, v) // append into caller-owned storage is fine
	r.n++
	m := map[int]int{r.n: v} // want `map literal in hot path push allocates`
	_ = m
	s := []int{v} // want `slice literal in hot path push allocates`
	_ = s
	p := &ring{} // want `&composite literal in hot path push escapes to the heap`
	_ = p
	q := make([]int, 4) // want `make in hot path push allocates`
	_ = q
	fmt.Println(v)               // want `fmt\.Println boxes its arguments in hot path push`
	f := func() int { return v } // want `closure capturing variables in hot path push allocates`
	_ = f
	g := func() int { return 42 } // a capture-free closure is a static value
	_ = g
	go r.reset()    // want `goroutine launch in hot path push`
	defer r.reset() // want `defer in hot path push allocates per call`
	return nil
}

//lab:hotpath
func join(label string) string {
	s := "x" + label // want `string concatenation in hot path join allocates`
	return s
}

//lab:hotpath
func str(b []byte) string {
	s := string(b) // want `conversion to string in hot path str allocates`
	return s
}

//lab:hotpath
func pushWaived() []int {
	//lab:allow(hotalloc: fixture waiver exercised by the test)
	return make([]int, 1)
}

// coldSetup is untagged; allocation is fine here.
func coldSetup(n int) []int {
	return make([]int, n)
}
