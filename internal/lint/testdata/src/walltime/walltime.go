// Fixture for the walltime analyzer: no wall-clock reads or math/rand in a
// simulation package.
package walltime

import (
	"math/rand" // want `import of math/rand in simulation package fix/walltime`
	"time"
)

var counter int64

func Step() int64 {
	counter += time.Now().Unix() // want `time\.Now in simulation package fix/walltime`
	return counter
}

func Seeded() int {
	return rand.Intn(8)
}

// Elapsed only uses time's types, never the clock; must stay silent.
func Elapsed(start, end time.Duration) time.Duration {
	return end - start
}

func Allowed() time.Time {
	//lab:allow(walltime: fixture waiver exercised by the test)
	return time.Now()
}
