// The panic/error hygiene analyzers. PR 5 converted the interpreter's and
// fingerprinter's panic paths into errors because a panic deep inside the
// artifact store kills a whole sweep — and, under labd, a daemon serving many
// clients. panicpath keeps the tree that way: no new panic in internal
// packages outside the documented Must* convention or an explicit waiver.
// errdiscard guards the persistence layer's durability story: an ignored
// Close/Sync/Rename error on an artifact write path can publish a file whose
// contents never reached disk.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzePanic flags panic calls in non-test internal packages. Functions
// whose names start with Must are the documented exception (fail-fast
// helpers for known-good inputs at init/development time); everything else
// needs a //lab:allow(panicpath: reason) waiver.
func analyzePanic(pkgs []*Package, pol Policy) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !pol.isPanicPackage(p.Path) {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if strings.HasPrefix(fd.Name.Name, "Must") {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok || id.Name != "panic" {
						return true
					}
					if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
						return true
					}
					p.report(&out, "panicpath", call.Pos(),
						"panic in %s (package %s); return an error, rename the helper Must*, or add //lab:allow(panicpath: reason)",
						fd.Name.Name, p.Path)
					return true
				})
			}
		}
	}
	return out
}

// analyzeErrDiscard flags discarded Close/Sync/Rename errors in persistence
// packages: bare statement calls and deferred calls whose error result
// vanishes. An explicit `_ =` assignment or an //lab:allow(errdiscard:
// reason) comment documents a deliberate discard.
func analyzeErrDiscard(pkgs []*Package, pol Policy) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !pol.isPersistPackage(p.Path) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				var how string
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
					how = "discarded"
				case *ast.DeferStmt:
					call = st.Call
					how = "discarded by defer"
				case *ast.GoStmt:
					call = st.Call
					how = "discarded by go"
				default:
					return true
				}
				if call == nil || !isPersistCall(p, call) {
					return true
				}
				sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				p.report(&out, "errdiscard", call.Pos(),
					"%s error %s on persistence path; check it, assign to _ with a comment, or add //lab:allow(errdiscard: reason)",
					sel.Sel.Name, how)
				return true
			})
		}
	}
	return out
}

// isPersistCall matches calls to methods named Close or Sync that return an
// error, and to os.Rename.
func isPersistCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if p.isPkgCall(call, "os", "Rename") {
		return true
	}
	if sel.Sel.Name != "Close" && sel.Sel.Name != "Sync" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return sig.Results().At(0).Type().String() == "error"
}
