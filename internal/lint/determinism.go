// The determinism analyzers. The repo's headline guarantee is byte-identical
// Results and reports across engines, trace variants and daemon restarts;
// the two classic ways Go code silently breaks that are iterating a map in
// an output path and reading wall-clock time (or math/rand) inside the
// simulation kernel. maprange checks the first over every function reachable
// from a rendering/fingerprinting/event-emission root; walltime bans the
// second from the simulation packages outright.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// ---------------------------------------------------------------- maprange --

type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	id   string
	root string // name of the first root this decl was reached from
}

// analyzeMapRange flags map iterations whose bodies are order-sensitive in
// any function reachable from a determinism root. Reachability is a static
// over-approximation: direct calls and concrete method calls are followed
// exactly; a call through an interface method conservatively reaches every
// module method of that name; function values referenced anywhere in a body
// count as called.
func analyzeMapRange(pkgs []*Package, pol Policy) []Finding {
	index := map[string]*declInfo{}
	byName := map[string][]*declInfo{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				di := &declInfo{pkg: p, decl: fd, id: funcID(fn)}
				index[di.id] = di
				byName[fd.Name.Name] = append(byName[fd.Name.Name], di)
			}
		}
	}

	// BFS from the roots over the reference graph.
	var queue []*declInfo
	seen := map[string]bool{}
	enqueue := func(d *declInfo, root string) {
		if d == nil || seen[d.id] {
			return
		}
		seen[d.id] = true
		d.root = root
		queue = append(queue, d)
	}
	// Deterministic root order for stable "reachable from" attribution.
	ids := make([]string, 0, len(index))
	for id := range index {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := index[id]
		if pol.isRenderPackage(d.pkg.Path) || pol.isRootName(d.decl.Name.Name) {
			enqueue(d, d.decl.Name.Name)
		}
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := d.pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				for _, cand := range byName[fn.Name()] {
					enqueue(cand, d.root)
				}
				return true
			}
			enqueue(index[funcID(fn)], d.root)
			return true
		})
	}

	var out []Finding
	for _, id := range ids {
		d := index[id]
		if !seen[d.id] {
			continue
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := d.pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveLoop(d.pkg, d.decl, rs) {
				return true
			}
			d.pkg.report(&out, "maprange", rs.Pos(),
				"map iteration with order-sensitive body in %s (reachable from determinism root %s); iterate sorted keys or add //lab:allow(maprange: reason)",
				d.decl.Name.Name, d.root)
			return true
		})
	}
	return out
}

// orderInsensitiveLoop reports whether a map-range body only performs
// iteration-order-independent work: inserts into maps, commutative integer
// accumulation, writes to loop-local state, and appends to slices that the
// function sorts after the loop. Anything else — emitting output, appending
// without a later sort, assigning last-writer-wins state — is order-
// sensitive.
func orderInsensitiveLoop(p *Package, decl *ast.FuncDecl, rs *ast.RangeStmt) bool {
	locals := map[types.Object]bool{}
	ast.Inspect(rs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	return stmtsOrderInsensitive(p, decl, rs, rs.Body.List, locals)
}

func stmtsOrderInsensitive(p *Package, decl *ast.FuncDecl, rs *ast.RangeStmt, stmts []ast.Stmt, locals map[types.Object]bool) bool {
	for _, s := range stmts {
		if !stmtOrderInsensitive(p, decl, rs, s, locals) {
			return false
		}
	}
	return true
}

func stmtOrderInsensitive(p *Package, decl *ast.FuncDecl, rs *ast.RangeStmt, s ast.Stmt, locals map[types.Object]bool) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return assignOrderInsensitive(p, decl, rs, st, locals)
	case *ast.IncDecStmt:
		return isIntegerExpr(p, st.X)
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE || st.Tok == token.BREAK
	case *ast.BlockStmt:
		return stmtsOrderInsensitive(p, decl, rs, st.List, locals)
	case *ast.IfStmt:
		if st.Init != nil && !stmtOrderInsensitive(p, decl, rs, st.Init, locals) {
			return false
		}
		if !stmtsOrderInsensitive(p, decl, rs, st.Body.List, locals) {
			return false
		}
		return st.Else == nil || stmtOrderInsensitive(p, decl, rs, st.Else, locals)
	case *ast.ForStmt:
		if st.Init != nil && !stmtOrderInsensitive(p, decl, rs, st.Init, locals) {
			return false
		}
		if st.Post != nil && !stmtOrderInsensitive(p, decl, rs, st.Post, locals) {
			return false
		}
		return stmtsOrderInsensitive(p, decl, rs, st.Body.List, locals)
	case *ast.RangeStmt:
		return stmtsOrderInsensitive(p, decl, rs, st.Body.List, locals)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if !stmtsOrderInsensitive(p, decl, rs, cc.Body, locals) {
					return false
				}
			}
		}
		return true
	case *ast.ExprStmt:
		// Only the delete builtin is a known-commutative statement call.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, ok := p.Info.Uses[id].(*types.Builtin); ok && id.Name == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		// "Found one, return a fixed answer" is deterministic; returning
		// the iteration's key/value or loop-local state is not.
		for _, e := range st.Results {
			sensitive := false
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && locals[p.Info.Uses[id]] {
					sensitive = true
				}
				return !sensitive
			})
			if sensitive {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func assignOrderInsensitive(p *Package, decl *ast.FuncDecl, rs *ast.RangeStmt, st *ast.AssignStmt, locals map[types.Object]bool) bool {
	if st.Tok == token.DEFINE {
		return true // new locals; captured in the locals set
	}
	if st.Tok != token.ASSIGN {
		// Compound assignment: commutative on integers (+=, -=, |=, &=, ^=,
		// *=), order-dependent on floats and strings.
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
			for _, lhs := range st.Lhs {
				if !isIntegerExpr(p, lhs) {
					return false
				}
			}
			return true
		}
		return false
	}
	for i, lhs := range st.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if locals[p.Info.Uses[l]] || l.Name == "_" {
				continue
			}
			// s = append(s, ...) on an outer slice is fine iff the function
			// sorts s after the loop.
			if len(st.Rhs) == len(st.Lhs) {
				if obj := p.Info.Uses[l]; obj != nil && isSelfAppend(p, st.Rhs[i], obj) && sortedAfter(p, decl, rs, obj) {
					continue
				}
			}
			return false
		case *ast.IndexExpr:
			// Map insert: commutative for distinct keys.
			if t := p.Info.TypeOf(l.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					continue
				}
			}
			return false
		case *ast.SelectorExpr:
			// Writing a field of a loop-local value.
			if base, ok := ast.Unparen(l.X).(*ast.Ident); ok && locals[p.Info.Uses[base]] {
				continue
			}
			return false
		default:
			return false
		}
	}
	return true
}

// isSelfAppend reports whether e is append(obj, ...).
func isSelfAppend(p *Package, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && p.Info.Uses[arg] == obj
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range statement, anywhere in the function body.
func sortedAfter(p *Package, decl *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		xid, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[xid].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// Unwrap one conversion layer: sort.Sort(byCost(s)).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = ast.Unparen(conv.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isIntegerExpr(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// ---------------------------------------------------------------- walltime --

// analyzeWalltime bans wall-clock reads and math/rand from the simulation
// packages: simulator output must be a pure function of (config, trace).
func analyzeWalltime(pkgs []*Package, pol Policy) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !pol.isWalltimePackage(p.Path) {
			continue
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					p.report(&out, "walltime", imp.Pos(),
						"import of %s in simulation package %s; results must be pure functions of (config, trace) — seed explicit PRNG state instead, or add //lab:allow(walltime: reason)",
						path, p.Path)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, name := range []string{"Now", "Since", "Until"} {
					if p.isPkgCall(call, "time", name) {
						p.report(&out, "walltime", call.Pos(),
							"time.%s in simulation package %s; wall-clock reads break run-to-run determinism — add //lab:allow(walltime: reason) if this cannot feed results",
							name, p.Path)
					}
				}
				return true
			})
		}
	}
	return out
}
