package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture tests use the analysistest convention: a `// want `+"`regex`"
// comment marks a line where exactly one finding matching the regex must be
// reported; every reported finding must be claimed by a want. Fixtures live
// under testdata/src (invisible to the go tool) and are type-checked by the
// same loader labvet uses, against real export data.

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// fixtureLoader builds one shared Loader for all tests: listing ./... (for
// TestLabvetTreeClean) plus the stdlib packages the fixtures import.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(".", []string{"./..."},
			"fmt", "os", "sort", "time", "math/rand")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

type wantMark struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans a fixture file for want comments.
func collectWants(t *testing.T, path string) []*wantMark {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantMark
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, &wantMark{file: path, line: i + 1, re: re})
		}
	}
	return wants
}

// runFixture loads testdata/src/<name> as package fix/<name>, runs the full
// analyzer suite under pol, and diffs the findings against the want marks.
func runFixture(t *testing.T, name string, pol Policy) {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", name)
	p, err := l.LoadDir(dir, "fix/"+name)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantMark
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			wants = append(wants, collectWants(t, filepath.Join(dir, e.Name()))...)
		}
	}
	findings := Run([]*Package{p}, pol)
	for _, f := range findings {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMapRangeFixture(t *testing.T) {
	runFixture(t, "maprange", Policy{
		RootMethodNames:  []string{"Render", "DOT"},
		RootNamePrefixes: []string{"Encode"},
	})
}

func TestWalltimeFixture(t *testing.T) {
	runFixture(t, "walltime", Policy{WalltimePackages: []string{"fix/walltime"}})
}

func TestHotpathFixture(t *testing.T) {
	runFixture(t, "hotpath", Policy{})
}

func TestFPCoverFixture(t *testing.T) {
	runFixture(t, "fpcover", Policy{})
}

func TestPanicFixture(t *testing.T) {
	runFixture(t, "panics", Policy{PanicPackagePrefixes: []string{"fix/panics"}})
}

func TestErrDiscardFixture(t *testing.T) {
	runFixture(t, "errdiscard", Policy{PersistPackages: []string{"fix/errdiscard"}})
}

// TestLabvetTreeClean is the self-check: the repo's own tree must satisfy
// every invariant labvet enforces (`go run ./cmd/labvet ./...` exits 0).
func TestLabvetTreeClean(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, DefaultPolicy()) {
		t.Errorf("%s", f)
	}
}
