package lint

import "strings"

// Policy locates the repo's invariants in package space: which packages are
// rendering surfaces, which are simulation kernels, which hold persistence
// paths. labvet runs DefaultPolicy; tests aim the analyzers at fixture
// packages with a custom one.
type Policy struct {
	// RenderPackages produce Result/report JSON, fingerprints, or event
	// streams: every function declared in one is a determinism root, and
	// any map iteration reachable from a root must be order-insensitive.
	RenderPackages []string

	// RootMethodNames and RootNamePrefixes mark determinism roots by name
	// anywhere in the module (methods the encoding layer calls implicitly,
	// like MarshalJSON, and the byte-stable encoders).
	RootMethodNames  []string
	RootNamePrefixes []string

	// WalltimePackages are the simulation kernels: results must be pure
	// functions of (config, trace), so time.Now and math/rand are banned.
	WalltimePackages []string

	// PanicPackagePrefixes scope the panic-hygiene analyzer; functions
	// named Must* are the documented exception.
	PanicPackagePrefixes []string

	// PersistPackages hold durable artifact state: Close/Sync/Rename
	// errors there must not be silently discarded.
	PersistPackages []string
}

// DefaultPolicy is the repo's invariant map.
func DefaultPolicy() Policy {
	return Policy{
		RenderPackages: []string{
			"repro",
			"repro/internal/labd",
			"repro/internal/labapi",
			"repro/cmd/labd",
			"repro/cmd/report",
			"repro/cmd/sweep",
		},
		RootMethodNames:  []string{"Render", "Fingerprint", "MarshalJSON", "DOT"},
		RootNamePrefixes: []string{"Encode"},
		WalltimePackages: []string{
			"repro/internal/cpu",
			"repro/internal/trace",
			"repro/internal/isa",
			"repro/internal/bpred",
			"repro/internal/cache",
		},
		PanicPackagePrefixes: []string{"repro/internal/"},
		PersistPackages:      []string{"repro/internal/artifactdisk"},
	}
}

func (p Policy) isRenderPackage(path string) bool   { return contains(p.RenderPackages, path) }
func (p Policy) isWalltimePackage(path string) bool { return contains(p.WalltimePackages, path) }
func (p Policy) isPersistPackage(path string) bool  { return contains(p.PersistPackages, path) }

func (p Policy) isPanicPackage(path string) bool {
	for _, pre := range p.PanicPackagePrefixes {
		if strings.HasPrefix(path, pre) {
			return true
		}
	}
	return false
}

// isRootName reports whether a function name marks a determinism root on
// its own (independent of package).
func (p Policy) isRootName(name string) bool {
	if contains(p.RootMethodNames, name) {
		return true
	}
	for _, pre := range p.RootNamePrefixes {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
