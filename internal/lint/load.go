// Loader: a dependency-free replacement for golang.org/x/tools/go/packages,
// built on `go list -export` plus the stdlib gc importer. `go list -export`
// compiles (or reuses from the build cache) export data for every dependency;
// the packages under analysis are then parsed and type-checked from source
// with their imports satisfied from that export data. This keeps labvet a
// pure-stdlib tool: the module gains no dependency for its own linter.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Loader resolves and type-checks packages of one module. It is also the
// fixture loader for labvet's own tests: LoadDir type-checks a directory the
// go tool ignores (testdata) against the same export data.
type Loader struct {
	Root string // module root directory

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
	targets []listPackage // pattern-matched module packages, listing order
}

// NewLoader lists patterns (plus extra packages whose export data tests may
// need) from the module containing dir and prepares an importer over the
// resulting export data. Patterns are resolved relative to the module root,
// so "./..." always means the whole module regardless of dir.
func NewLoader(dir string, patterns []string, extra ...string) (*Loader, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, append(patterns, extra...)...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{Root: root, fset: token.NewFileSet(), exports: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.DepOnly {
			l.targets = append(l.targets, p)
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// Fset returns the loader's shared file set (one per loader, so positions
// from module packages and fixture packages never collide).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks every pattern-matched module package. Test
// files are excluded: the invariants bind non-test code, and _test.go files
// would need their own package variants.
func (l *Loader) Load() ([]*Package, error) {
	pkgs := make([]*Package, 0, len(l.targets))
	for _, t := range l.targets {
		files := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, g)
		}
		p, err := l.check(t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the non-test .go files of one directory
// outside the go tool's view (a testdata fixture package), under the given
// synthetic import path.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.check(asPath, files)
}

func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// moduleRoot walks `go env GOMOD` to the directory that owns dir.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}
