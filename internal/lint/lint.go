// Package lint is labvet's analysis engine: a suite of repo-specific static
// analyzers over go/ast + go/types that turn the reproduction's conventions
// into build breaks. The four invariants checked are the ones the runtime
// test suite can only probe after the fact:
//
//   - determinism: no unsorted map iteration in any function reachable from
//     a rendering/fingerprinting/event-emission root, and no wall-clock or
//     math/rand use inside the simulation packages (maprange, walltime);
//   - hot-path allocation: functions tagged //lab:hotpath must not contain
//     alloc-inducing constructs, complementing the 0 allocs/op benchmarks
//     (hotalloc);
//   - fingerprint coverage: every field of a stage Config struct must be
//     folded into that type's Fingerprint method, or carry an explicit
//     //lab:nofp waiver — a missed field is a silent stale-cache hit in the
//     shared artifact store (fpcover);
//   - panic/error hygiene: no panic in internal packages outside Must*
//     helpers, and no discarded Close/Sync/Rename errors on artifact
//     persistence paths (panicpath, errdiscard).
//
// Waivers are per-site comments of the form //lab:allow(analyzer: reason),
// placed on the offending line or the line above; the reason is mandatory
// so every exception documents itself. See EXPERIMENTS.md "Static
// invariants".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer hit, reported in standard vet position format.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// allows maps "file:line" to the set of analyzer names waived on that
	// line by //lab:allow(name: reason) comments.
	allows map[string]map[string]bool
}

// Run executes every analyzer over pkgs under the given policy and returns
// the findings sorted by position. pkgs should be the full `./...` set for
// the cross-package reachability analysis to see every root.
func Run(pkgs []*Package, pol Policy) []Finding {
	var out []Finding
	out = append(out, analyzeMapRange(pkgs, pol)...)
	out = append(out, analyzeWalltime(pkgs, pol)...)
	out = append(out, analyzeHotpath(pkgs, pol)...)
	out = append(out, analyzeFPCover(pkgs, pol)...)
	out = append(out, analyzePanic(pkgs, pol)...)
	out = append(out, analyzeErrDiscard(pkgs, pol)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ------------------------------------------------------------- directives --

// allowRE matches one waiver inside a //lab:allow(...) comment. Multiple
// directives may share a line; the reason after the colon is mandatory.
var allowRE = regexp.MustCompile(`lab:allow\(([a-z]+):[^)]+\)`)

// isDirectiveComment reports whether a comment is a lab directive proper —
// the text starts with //lab: (no space, like //go:), so prose that merely
// mentions a directive does not activate it.
func isDirectiveComment(c *ast.Comment, name string) bool {
	return strings.HasPrefix(c.Text, "//lab:"+name)
}

// buildAllows indexes every //lab:allow directive by file:line. A directive
// waives findings reported on its own line and on the line directly below
// (so a comment line can annotate the statement it precedes).
func (p *Package) buildAllows() {
	p.allows = map[string]map[string]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isDirectiveComment(c, "allow(") {
					continue
				}
				for _, m := range allowRE.FindAllStringSubmatch(c.Text, -1) {
					pos := p.Fset.Position(c.Pos())
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if p.allows[key] == nil {
							p.allows[key] = map[string]bool{}
						}
						p.allows[key][m[1]] = true
					}
				}
			}
		}
	}
}

// allowed reports whether findings of the named analyzer are waived at pos.
func (p *Package) allowed(analyzer string, pos token.Pos) bool {
	if p.allows == nil {
		p.buildAllows()
	}
	at := p.Fset.Position(pos)
	return p.allows[fmt.Sprintf("%s:%d", at.Filename, at.Line)][analyzer]
}

// hasDirective reports whether a comment group carries the bare //lab:<name>
// marker (e.g. //lab:hotpath on a function's doc comment, //lab:nofp on a
// struct field).
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if isDirectiveComment(c, name) {
			return true
		}
	}
	return false
}

func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	at := p.Fset.Position(pos)
	return Finding{
		File:     at.Filename,
		Line:     at.Line,
		Col:      at.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// report appends a finding unless a lab:allow waiver covers its position.
func (p *Package) report(out *[]Finding, analyzer string, pos token.Pos, format string, args ...any) {
	if p.allowed(analyzer, pos) {
		return
	}
	*out = append(*out, p.finding(analyzer, pos, format, args...))
}

// --------------------------------------------------------- shared helpers --

// funcID names a function or method unambiguously across independently
// type-checked packages (the same method seen from source and from export
// data is a different *types.Func object, but has the same ID).
func funcID(fn *types.Func) string {
	if fn.Pkg() == nil { // builtins like error.Error
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
		return fn.Pkg().Path() + ".(recv)." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// recvTypeName returns the bare type name of a method receiver ("Config"
// for func (c *Config) ...), or "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes, when
// that is statically known (direct calls and concrete method calls).
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgCall reports whether call invokes pkgPath.name (e.g. "time", "Now").
func (p *Package) isPkgCall(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
