// The hot-path allocation analyzer. The benchmark gate proves the steady
// state allocates nothing (allocs/op == 0), but only for the code paths the
// benchmark happens to execute; hotalloc complements it by statically
// rejecting alloc-inducing constructs anywhere in a function tagged
// //lab:hotpath, including branches the benchmark never takes. The tags live
// on the simulator's per-cycle machinery and the trace cursor accessors.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// coldPkgs are the formatting packages whose calls box arguments into
// interfaces; in a hot function they are only tolerated inside a return
// statement (a failure exit, by construction not the steady state).
var coldPkgs = map[string]bool{"fmt": true, "errors": true, "log": true}

// analyzeHotpath checks every //lab:hotpath-tagged function for constructs
// that allocate: map/slice literals, address-taken composite literals,
// make/new, variable-capturing closures, string concatenation and
// conversion, fmt-style boxing outside error returns, defer, and go.
func analyzeHotpath(pkgs []*Package, _ Policy) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
					continue
				}
				checkHotFunc(p, fd, &out)
			}
		}
	}
	return out
}

func checkHotFunc(p *Package, fd *ast.FuncDecl, out *[]Finding) {
	name := fd.Name.Name
	parents := parentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					p.report(out, "hotalloc", x.Pos(), "map literal in hot path %s allocates", name)
				case *types.Slice:
					p.report(out, "hotalloc", x.Pos(), "slice literal in hot path %s allocates", name)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					p.report(out, "hotalloc", x.Pos(), "&composite literal in hot path %s escapes to the heap", name)
				}
			}
		case *ast.FuncLit:
			if capturesOuter(p, fd, x) {
				p.report(out, "hotalloc", x.Pos(), "closure capturing variables in hot path %s allocates", name)
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(p, x) && !isConstExpr(p, x) {
				p.report(out, "hotalloc", x.Pos(), "string concatenation in hot path %s allocates", name)
			}
		case *ast.DeferStmt:
			p.report(out, "hotalloc", x.Pos(), "defer in hot path %s allocates per call", name)
		case *ast.GoStmt:
			p.report(out, "hotalloc", x.Pos(), "goroutine launch in hot path %s", name)
		case *ast.CallExpr:
			checkHotCall(p, fd, x, parents, out)
		}
		return true
	})
}

func checkHotCall(p *Package, fd *ast.FuncDecl, call *ast.CallExpr, parents map[ast.Node]ast.Node, out *[]Finding) {
	name := fd.Name.Name
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "make":
				p.report(out, "hotalloc", call.Pos(), "make in hot path %s allocates", name)
			case "new":
				p.report(out, "hotalloc", call.Pos(), "new in hot path %s allocates", name)
			}
		}
		if stringConversion(p, fun, call) {
			p.report(out, "hotalloc", call.Pos(), "conversion to string in hot path %s allocates", name)
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && coldPkgs[pn.Imported().Path()] {
				if !inReturn(call, parents) {
					p.report(out, "hotalloc", call.Pos(),
						"%s.%s boxes its arguments in hot path %s; only failure-exit returns may format",
						pn.Imported().Name(), fun.Sel.Name, name)
				}
			}
		}
	}
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// inReturn reports whether n's innermost enclosing statement is a return —
// a failure exit, cold by construction in a hot function.
func inReturn(n ast.Node, parents map[ast.Node]ast.Node) bool {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		if _, isStmt := cur.(ast.Stmt); !isStmt {
			continue
		}
		_, isRet := cur.(*ast.ReturnStmt)
		return isRet
	}
	return false
}

// capturesOuter reports whether lit references a variable declared in fd
// outside lit itself (a capture forces the closure onto the heap).
func capturesOuter(p *Package, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}

func isStringExpr(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// stringConversion reports whether call converts a non-string operand to a
// string type (string([]byte), string(rune) — both allocate).
func stringConversion(p *Package, fun *ast.Ident, call *ast.CallExpr) bool {
	tn, ok := p.Info.Uses[fun].(*types.TypeName)
	if !ok || len(call.Args) != 1 {
		return false
	}
	b, ok := tn.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	return !isStringExpr(p, call.Args[0]) && !isConstExpr(p, call.Args[0])
}
