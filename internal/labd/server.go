// Package labd implements the persistent lab daemon: one long-lived Lab
// engine — in-memory singleflight artifact store backed by the on-disk
// spill tier — behind an HTTP+JSON API (see internal/labapi for the wire
// types):
//
//	POST   /v1/sweep            submit a sweep grid; returns {"id": ...}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        one job
//	GET    /v1/jobs/{id}/events NDJSON event stream (replay + live)
//	GET    /v1/jobs/{id}/dag    the job's planned stage DAG (Graphviz DOT)
//	DELETE /v1/jobs/{id}        cancel a running job
//	GET    /v1/stats            jobs + artifact-store counters
//
// Because every job runs through one engine, concurrent submissions that
// overlap share in-flight builds (one trace, one baseline per unique
// fingerprint, whatever the client count), and the disk tier makes the
// sharing survive daemon restarts.
//
// Event streams fan out through per-client bounded queues: a client that
// cannot keep up has events dropped and is told so with a {"kind":
// "lagging", "dropped": N} line rather than ever back-pressuring the
// engine.
package labd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	preexec "repro"
	"repro/internal/labapi"
)

// Config parameterizes a daemon server.
type Config struct {
	// Dir is the disk store's root directory (required).
	Dir string
	// MaxStoreBytes is the disk store's byte budget (<= 0: unlimited).
	MaxStoreBytes int64
	// Parallelism bounds the engine's worker pool (<= 0: GOMAXPROCS).
	Parallelism int
	// Engine names the simulation engine for every job ("", "event",
	// "scan" or "batched"); unknown names are rejected by New with one
	// error listing the valid engines. Engine choice is the daemon
	// operator's, not the submitting client's, so every job shares the
	// engine's cached artifacts.
	Engine string
	// BatchWidth is the sweep batch width k: with k >= 2 (or the batched
	// engine's default width), same-trace measurements of a job ride
	// shared streaming passes in batches of up to k. Scheduling only —
	// results and artifact fingerprints are identical to serial runs.
	BatchWidth int
	// DisableMappedSpill turns off the zero-copy mmap path for warm trace
	// loads (cmd/labd's -mmap=false). The zero value keeps the default:
	// mapped spill on, falling back to heap decode where mmap is
	// unavailable. Results are identical either way.
	DisableMappedSpill bool
	// QueueLen is each event subscriber's bounded queue length
	// (<= 0: 1024). Tests shrink it to exercise the lagging path.
	QueueLen int
	// ReplayLen bounds each job's event replay buffer — the lines a late
	// subscriber receives before going live (<= 0: 8192). Older lines are
	// dropped and reported via a lagging line at stream start.
	ReplayLen int
}

// Server is the daemon: a shared Lab engine plus the job registry. Create
// with New, serve with (net/http).Server{Handler: srv}.
type Server struct {
	lab      *preexec.Lab
	mux      *http.ServeMux
	queueLen int
	replay   int

	// base is the parent of every job context; cancelling it (Close)
	// cancels all running jobs.
	base   context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
}

// job is one submitted sweep and its event history.
type job struct {
	id     string
	cancel context.CancelFunc
	// dag is the job's planned stage DAG in Graphviz DOT form, captured at
	// submission against the engine's stores as they stood then (empty when
	// planning failed; the run itself surfaces the error). Immutable after
	// handleSweep publishes the job.
	dag string

	mu       sync.Mutex
	state    labapi.JobState
	errMsg   string
	done     int
	total    int
	lines    []json.RawMessage // encoded StreamLines, replay for late subscribers
	lost     int64             // replay lines dropped to the buffer bound
	subs     map[*subscriber]struct{}
	finished bool // terminal: lines is complete, subs are closed
}

// subscriber is one client's bounded event queue. The publisher never
// blocks on it: when the queue is full the event is counted in dropped and
// discarded, and the streaming handler surfaces the count as a lagging
// line.
type subscriber struct {
	ch      chan json.RawMessage
	dropped atomic.Int64
}

// New creates a daemon server, opening (or creating) the disk store at
// cfg.Dir. The error is the disk store's: a daemon that cannot persist
// artifacts refuses to start rather than silently running uncached.
func New(cfg Config) (*Server, error) {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.ReplayLen <= 0 {
		cfg.ReplayLen = 8192
	}
	engine, err := preexec.ParseEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		mux:      http.NewServeMux(),
		queueLen: cfg.QueueLen,
		replay:   cfg.ReplayLen,
		base:     base,
		cancel:   cancel,
		jobs:     map[string]*job{},
	}
	labCfg := preexec.DefaultConfig()
	labCfg.CPU.Engine = engine
	s.lab = preexec.New(
		preexec.WithConfig(labCfg),
		preexec.WithParallelism(cfg.Parallelism),
		preexec.WithBatchWidth(cfg.BatchWidth),
		preexec.WithObserver(s.observe),
		preexec.WithDiskStore(cfg.Dir, cfg.MaxStoreBytes),
		preexec.WithMappedSpill(!cfg.DisableMappedSpill),
	)
	if err := s.lab.DiskStoreErr(); err != nil {
		cancel()
		return nil, err
	}
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/dag", s.handleDAG)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running job. In-flight streams terminate with their
// jobs; the HTTP server's own shutdown is the caller's.
func (s *Server) Close() { s.cancel() }

// ---------------------------------------------------------------- events --

// observe is the Lab's observer: it routes every engine event to the job
// named by its context tag. Events without a tag (none, once every entry
// point threads WithEventTag) are dropped.
func (s *Server) observe(ev preexec.Event) {
	if ev.Tag == "" {
		return
	}
	s.mu.Lock()
	j := s.jobs[ev.Tag]
	s.mu.Unlock()
	if j == nil {
		return
	}
	line := labapi.StreamLine{
		Kind:            string(ev.Kind),
		Bench:           ev.Bench,
		Input:           ev.Input,
		Stage:           ev.Stage,
		Target:          ev.Target,
		Point:           ev.Point,
		Done:            ev.Done,
		Total:           ev.Total,
		SimCyclesPerSec: ev.SimCyclesPerSec,
		DurationNS:      ev.DurationNS,
	}
	if ev.Err != nil {
		line.Err = ev.Err.Error()
	}
	if ev.Kind == preexec.EventPointDone {
		j.mu.Lock()
		j.done, j.total = ev.Done, ev.Total
		j.mu.Unlock()
	}
	j.publish(s.replay, line)
}

// publish appends one line to the job's replay buffer and fans it out to
// every subscriber, never blocking: a full queue counts a drop instead.
func (j *job) publish(replayLen int, line labapi.StreamLine) {
	raw, err := json.Marshal(line)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.lines = append(j.lines, raw)
	if len(j.lines) > replayLen {
		drop := len(j.lines) - replayLen
		j.lines = append([]json.RawMessage(nil), j.lines[drop:]...)
		j.lost += int64(drop)
	}
	//lab:allow(maprange: per-subscriber fan-out of one already-ordered line; every subscriber receives the same stream and cross-subscriber delivery order is unobservable)
	for sub := range j.subs {
		select {
		case sub.ch <- raw:
		default:
			sub.dropped.Add(1)
		}
	}
}

// finish publishes the job's terminal lines, marks it finished and closes
// every subscriber queue (after the final lines are enqueued, so a live
// client sees artifact then job-done then EOF).
func (j *job) finish(replayLen int, state labapi.JobState, errMsg string, final ...labapi.StreamLine) {
	for _, line := range final {
		j.publish(replayLen, line)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
	j.finished = true
	//lab:allow(maprange: closing distinct subscriber queues commutes; no subscriber observes the order)
	for sub := range j.subs {
		close(sub.ch)
	}
	j.subs = nil
}

// subscribe atomically snapshots the replay buffer and registers a live
// queue, so the subscriber sees every line exactly once: the snapshot
// covers all lines published before registration, the queue all lines
// after. For finished jobs the returned subscriber is nil — the replay is
// the whole stream.
func (j *job) subscribe(queueLen int) (replay []json.RawMessage, lost int64, sub *subscriber) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay, lost = j.lines, j.lost
	if j.finished {
		return replay, lost, nil
	}
	sub = &subscriber{ch: make(chan json.RawMessage, queueLen)}
	j.subs[sub] = struct{}{}
	return replay, lost, sub
}

func (j *job) unsubscribe(sub *subscriber) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.finished {
		delete(j.subs, sub)
	}
}

func (j *job) snapshot() labapi.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return labapi.Job{ID: j.id, State: j.state, Error: j.errMsg, Done: j.done, Total: j.total}
}

// ------------------------------------------------------------- handlers --

// buildGrid turns a wire request into an engine grid, resolving axis,
// workload-spec and target names exactly as cmd/sweep does locally.
func buildGrid(req labapi.SweepRequest) (preexec.Grid, error) {
	var g preexec.Grid
	for _, name := range req.Axes {
		axis, err := preexec.ParseSweepAxis(strings.TrimSpace(name))
		if err != nil {
			return g, err
		}
		g.Axes = append(g.Axes, preexec.GridAxis(axis))
	}
	g.Benchmarks = req.Benchmarks
	for _, spec := range req.Workloads {
		parsed, err := preexec.ParseWorkloadSpec(spec)
		if err != nil {
			return g, err
		}
		g.Workloads = append(g.Workloads, preexec.WorkloadPoint{Label: spec, Spec: parsed})
	}
	for _, t := range req.Targets {
		tgt, err := preexec.ParseTarget(strings.TrimSpace(t))
		if err != nil {
			return g, err
		}
		g.Targets = append(g.Targets, tgt)
	}
	return g, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req labapi.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	grid, err := buildGrid(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(grid.Benchmarks) == 0 && len(grid.Workloads) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("request names no benchmarks or workloads"))
		return
	}

	ctx, cancel := context.WithCancel(s.base)
	j := &job{state: labapi.JobRunning, cancel: cancel, subs: map[*subscriber]struct{}{}}
	// Plan the job's schedule DAG before it runs, so clients can inspect
	// what the scheduler saw — which stages were projected cold, cached or
	// disk-resident — for the store state this job was submitted against.
	// Best-effort: a grid that cannot be planned still runs (and fails)
	// through the normal path.
	if dag, err := s.lab.SweepDAG(grid); err == nil {
		j.dag = dag.DOT()
	}
	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("j%d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()

	go s.runSweep(ctx, j, grid)
	writeJSON(w, http.StatusAccepted, labapi.SubmitResponse{ID: j.id})
}

// runSweep executes one job on the shared engine and terminates its stream:
// artifact line then job-done on success, job-failed (or cancelled) with
// the error otherwise.
func (s *Server) runSweep(ctx context.Context, j *job, grid preexec.Grid) {
	defer j.cancel()
	rep, err := s.lab.Sweep(preexec.WithEventTag(ctx, j.id), grid)
	if err != nil {
		state := labapi.JobFailed
		if errors.Is(err, context.Canceled) {
			state = labapi.JobCancelled
		}
		j.finish(s.replay, state, err.Error(), labapi.StreamLine{Kind: labapi.KindJobFailed, Err: err.Error()})
		return
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		j.finish(s.replay, labapi.JobFailed, err.Error(), labapi.StreamLine{Kind: labapi.KindJobFailed, Err: err.Error()})
		return
	}
	j.finish(s.replay, labapi.JobDone, "",
		labapi.StreamLine{Artifact: "sweep", Report: raw},
		labapi.StreamLine{Kind: labapi.KindJobDone})
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j
}

// snapshotJobs collects every job sorted by ID (j1, j2, ...: numeric suffix
// order), so listings and stats render identically regardless of the jobs
// map's iteration order.
func (s *Server) snapshotJobs() []*job {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool {
		return len(jobs[a].id) < len(jobs[b].id) ||
			(len(jobs[a].id) == len(jobs[b].id) && jobs[a].id < jobs[b].id)
	})
	return jobs
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.snapshotJobs()
	out := make([]labapi.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.jobByID(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

// handleDAG serves the job's planned stage DAG as Graphviz DOT text — the
// plan captured at submission, not a live view of execution.
func (s *Server) handleDAG(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	if j.dag == "" {
		httpError(w, http.StatusNotFound, fmt.Errorf("job %q has no planned DAG", j.id))
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, j.dag)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.cancel()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	jobs := s.snapshotJobs()
	stats := labapi.Stats{Jobs: make([]labapi.Job, len(jobs)), Store: s.lab.StoreStats()}
	for i, j := range jobs {
		stats.Jobs[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleEvents streams a job's events as NDJSON: the replay buffer first
// (prefixed by a lagging line when the buffer overflowed before this
// client arrived), then live events until the job finishes or the client
// disconnects. Every line is flushed immediately — clients render progress
// in real time.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	replay, lost, sub := j.subscribe(s.queueLen)
	if sub != nil {
		defer j.unsubscribe(sub)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeLine := func(raw json.RawMessage) bool {
		if _, err := w.Write(append(raw, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	marshalLine := func(line labapi.StreamLine) json.RawMessage {
		raw, _ := json.Marshal(line)
		return raw
	}

	if lost > 0 {
		if !writeLine(marshalLine(labapi.StreamLine{Kind: labapi.KindLagging, Dropped: lost})) {
			return
		}
	}
	for _, raw := range replay {
		if !writeLine(raw) {
			return
		}
	}
	if sub == nil {
		return // finished job: the replay was the whole stream
	}
	for {
		// Surface queue overflow as soon as it is observed, so the gap is
		// marked in-stream where it happened.
		if n := sub.dropped.Swap(0); n > 0 {
			if !writeLine(marshalLine(labapi.StreamLine{Kind: labapi.KindLagging, Dropped: n})) {
				return
			}
		}
		select {
		case raw, ok := <-sub.ch:
			if !ok {
				// Queue closed with drops pending means the tail of the
				// stream (possibly the artifact line) was lost; mark the
				// gap so the client knows to re-fetch the finished job.
				if n := sub.dropped.Swap(0); n > 0 {
					writeLine(marshalLine(labapi.StreamLine{Kind: labapi.KindLagging, Dropped: n}))
				}
				return
			}
			if !writeLine(raw) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// ---------------------------------------------------------------- helpers --

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
