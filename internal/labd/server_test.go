package labd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	preexec "repro"
	"repro/internal/labapi"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { srv.Close(); ts.Close() })
	return srv, ts
}

func submitSweep(t *testing.T, base string, req labapi.SweepRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var sub labapi.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}

// streamEvents consumes a job's NDJSON stream to EOF and returns every line.
func streamEvents(t *testing.T, base, id string) []labapi.StreamLine {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var lines []labapi.StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24) // artifact lines carry whole reports
	for sc.Scan() {
		var line labapi.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// sweepArtifact extracts the artifact line's report from a finished stream.
func sweepArtifact(t *testing.T, lines []labapi.StreamLine) *preexec.SweepReport {
	t.Helper()
	for _, line := range lines {
		if line.Artifact == "" {
			continue
		}
		if line.Artifact != "sweep" {
			t.Fatalf("artifact %q, want sweep", line.Artifact)
		}
		var rep preexec.SweepReport
		if err := json.Unmarshal(line.Report, &rep); err != nil {
			t.Fatal(err)
		}
		return &rep
	}
	t.Fatal("stream carried no artifact line")
	return nil
}

func getStats(t *testing.T, base string) labapi.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats labapi.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

var smokeRequest = labapi.SweepRequest{
	Axes:       []string{"idle"},
	Benchmarks: []string{"gap"},
	Targets:    []string{"L"},
}

// TestConcurrentClientsShareBuilds is the daemon's build-once guarantee end
// to end: two clients submit the same sweep concurrently, both receive the
// full report, and the store counters prove every heavy stage was built
// exactly once across both jobs.
func TestConcurrentClientsShareBuilds(t *testing.T) {
	_, ts := newTestServer(t, Config{Dir: t.TempDir()})

	var wg sync.WaitGroup
	reports := make([]*preexec.SweepReport, 2)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := submitSweep(t, ts.URL, smokeRequest)
			lines := streamEvents(t, ts.URL, id)
			reports[i] = sweepArtifact(t, lines)
			last := lines[len(lines)-1]
			if last.Kind != labapi.KindJobDone {
				t.Errorf("client %d: stream ended with %q, want job-done", i, last.Kind)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, rep := range reports {
		if len(rep.Points) != 3 { // idle axis has the paper's three points
			t.Errorf("client %d: %d sweep points, want 3", i, len(rep.Points))
		}
	}

	stats := getStats(t, ts.URL)
	for _, st := range []preexec.Stage{preexec.StageTrace, preexec.StageProfile, preexec.StageSlices} {
		if n := stats.Store.Stages[st].Cold; n != 1 {
			t.Errorf("stage %s built %d times across both clients, want 1", st, n)
		}
	}
	if len(stats.Jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(stats.Jobs))
	}
	for _, j := range stats.Jobs {
		if j.State != labapi.JobDone {
			t.Errorf("job %s state %s, want done", j.ID, j.State)
		}
		if j.Done != j.Total || j.Total != 3 {
			t.Errorf("job %s progress %d/%d, want 3/3", j.ID, j.Done, j.Total)
		}
	}
}

// TestRestartWarm is the restart guarantee end to end: a fresh daemon over
// the same store directory re-runs the sweep with zero heavy-stage builds —
// every stage is a disk load.
func TestRestartWarm(t *testing.T) {
	dir := t.TempDir()

	srv1, ts1 := newTestServer(t, Config{Dir: dir})
	id := submitSweep(t, ts1.URL, smokeRequest)
	first := sweepArtifact(t, streamEvents(t, ts1.URL, id))
	srv1.Close()
	ts1.Close()

	_, ts2 := newTestServer(t, Config{Dir: dir})
	id = submitSweep(t, ts2.URL, smokeRequest)
	lines := streamEvents(t, ts2.URL, id)
	second := sweepArtifact(t, lines)

	stats := getStats(t, ts2.URL)
	heavy := []preexec.Stage{preexec.StageTrace, preexec.StageProfile,
		preexec.StageSlices, preexec.StageBaseline}
	for _, st := range heavy {
		s := stats.Store.Stages[st]
		if s.Cold != 0 {
			t.Errorf("restarted daemon rebuilt stage %s %d times, want 0", st, s.Cold)
		}
		if s.SpillLoads != 1 {
			t.Errorf("restarted daemon: stage %s spill loads %d, want 1", st, s.SpillLoads)
		}
	}
	for _, line := range lines {
		if line.Kind == string(preexec.EventStageSpill) && line.Stage == string(preexec.StageTrace) {
			return // the stream itself reported the warm load
		}
	}
	_ = first
	_ = second
	t.Error("event stream carried no stage-spill line for the trace")
}

// TestRestartWarmReportsAgree pins that a restart-warm sweep reproduces the
// cold sweep's numbers exactly (artifacts round-tripped the disk tier).
// Simulator wall-clock throughput is the one legitimately nondeterministic
// metric; it is normalized out before comparing.
func TestRestartWarmReportsAgree(t *testing.T) {
	dir := t.TempDir()

	srv1, ts1 := newTestServer(t, Config{Dir: dir})
	id := submitSweep(t, ts1.URL, smokeRequest)
	first := sweepArtifact(t, streamEvents(t, ts1.URL, id))
	srv1.Close()
	ts1.Close()

	_, ts2 := newTestServer(t, Config{Dir: dir})
	id = submitSweep(t, ts2.URL, smokeRequest)
	second := sweepArtifact(t, streamEvents(t, ts2.URL, id))

	for _, rep := range []*preexec.SweepReport{first, second} {
		for pi := range rep.Points {
			for ri := range rep.Points[pi].Runs {
				rep.Points[pi].Runs[ri].SimCyclesPerSec = 0
			}
		}
	}
	raw1, _ := json.Marshal(first)
	raw2, _ := json.Marshal(second)
	if !bytes.Equal(raw1, raw2) {
		t.Error("restart-warm report diverged from cold report")
	}
}

// TestCancelJob submits a grid far too large to finish and cancels it: the
// job must reach the cancelled state and its stream must terminate.
func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), Parallelism: 1})
	id := submitSweep(t, ts.URL, labapi.SweepRequest{
		Axes:       []string{"idle", "mem", "l2"},
		Benchmarks: []string{"gap", "mcf", "twolf", "vortex"},
	})
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	// The stream ends once the engine unwinds; the job lands in cancelled.
	lines := streamEvents(t, ts.URL, id)
	if len(lines) == 0 {
		t.Fatal("cancelled stream carried no lines")
	}
	if last := lines[len(lines)-1]; last.Kind != labapi.KindJobFailed {
		t.Errorf("cancelled stream ended with %q, want job-failed", last.Kind)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var job labapi.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State == labapi.JobCancelled {
			return
		}
		if job.State.Terminal() {
			t.Fatalf("job state %s, want cancelled", job.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never left state %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUnknownJob pins the 404 path.
func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Dir: t.TempDir()})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestBadRequests pins submission validation: unparsable bodies, unknown
// axes/targets and empty benchmark sets are 400s, not jobs.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Dir: t.TempDir()})
	for name, body := range map[string]string{
		"not json":       "{",
		"unknown axis":   `{"axes":["sideways"],"benchmarks":["gap"]}`,
		"unknown target": `{"benchmarks":["gap"],"targets":["Q"]}`,
		"bad workload":   `{"workloads":["no-such-family:1"]}`,
		"empty":          `{}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSubscriberDropAndMark exercises the bounded-queue fan-out directly: a
// queue of 2 receiving 10 lines drops 8 and counts them, while the replay
// buffer keeps everything (up to its own bound) for late subscribers.
func TestSubscriberDropAndMark(t *testing.T) {
	j := &job{state: labapi.JobRunning, subs: map[*subscriber]struct{}{}}
	_, _, sub := j.subscribe(2)
	for i := 0; i < 10; i++ {
		j.publish(100, labapi.StreamLine{Kind: "stage-start", Done: i})
	}
	if n := sub.dropped.Load(); n != 8 {
		t.Errorf("dropped %d, want 8", n)
	}
	replay, lost, _ := j.subscribe(2)
	if len(replay) != 10 || lost != 0 {
		t.Errorf("replay %d lines lost %d, want 10 and 0", len(replay), lost)
	}
}

// TestReplayBufferBound exercises the replay cap: a late subscriber to a
// job whose history outgrew the buffer gets a leading lagging line with the
// overflow count, then the surviving tail.
func TestReplayBufferBound(t *testing.T) {
	srv, ts := newTestServer(t, Config{Dir: t.TempDir(), ReplayLen: 4})
	j := &job{id: "jx", state: labapi.JobRunning, subs: map[*subscriber]struct{}{}}
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.mu.Unlock()
	for i := 0; i < 10; i++ {
		j.publish(srv.replay, labapi.StreamLine{Kind: "stage-start", Done: i})
	}
	j.finish(srv.replay, labapi.JobDone, "", labapi.StreamLine{Kind: labapi.KindJobDone})

	lines := streamEvents(t, ts.URL, j.id)
	if len(lines) != 5 { // lagging + 4 surviving lines
		t.Fatalf("%d lines, want 5: %+v", len(lines), lines)
	}
	if lines[0].Kind != labapi.KindLagging || lines[0].Dropped != 7 {
		t.Errorf("leading line %+v, want lagging with 7 dropped", lines[0])
	}
	if lines[len(lines)-1].Kind != labapi.KindJobDone {
		t.Errorf("stream ended with %q, want job-done", lines[len(lines)-1].Kind)
	}
}

// TestBatchedDaemonMatchesSerial pins the daemon's -batch/-engine wiring: a
// batched daemon rejects unknown engines at construction with one error
// listing the valid set, and a batched daemon's sweep artifact is
// byte-identical to a serial daemon's modulo throughput and the
// Batched/BatchWidth provenance fields.
func TestBatchedDaemonMatchesSerial(t *testing.T) {
	if _, err := New(Config{Dir: t.TempDir(), Engine: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown engine")
	} else if !strings.Contains(err.Error(), "valid engines: event, scan, batched") {
		t.Errorf("error %q does not list the valid engines", err)
	}

	run := func(cfg Config) *preexec.SweepReport {
		_, ts := newTestServer(t, cfg)
		id := submitSweep(t, ts.URL, smokeRequest)
		return sweepArtifact(t, streamEvents(t, ts.URL, id))
	}
	serial := run(Config{Dir: t.TempDir()})
	batched := run(Config{Dir: t.TempDir(), BatchWidth: 4})

	for i := range batched.Points {
		if !batched.Points[i].Batched || batched.Points[i].BatchWidth != 4 {
			t.Errorf("point %d = {Batched: %v, BatchWidth: %d}, want {true, 4}",
				i, batched.Points[i].Batched, batched.Points[i].BatchWidth)
		}
	}
	strip := func(rep *preexec.SweepReport) {
		for i := range rep.Points {
			rep.Points[i].Batched = false
			rep.Points[i].BatchWidth = 0
			for j := range rep.Points[i].Runs {
				rep.Points[i].Runs[j].SimCyclesPerSec = 0
			}
		}
	}
	strip(serial)
	strip(batched)
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(batched)
	if !bytes.Equal(a, b) {
		t.Errorf("batched daemon report diverges from serial:\nserial:  %s\nbatched: %s", a, b)
	}
}
