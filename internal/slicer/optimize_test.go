package slicer

import (
	"testing"

	"repro/internal/isa"
)

func addi(dst, src isa.Reg, imm int64) isa.Inst {
	return isa.Inst{Op: isa.AddI, Dst: dst, Src1: src, Imm: imm}
}

func TestOptimizeCollapsesInductionRun(t *testing.T) {
	body := []isa.Inst{
		addi(1, 1, 1),
		addi(1, 1, 1),
		addi(1, 1, 1),
		{Op: isa.ShlI, Dst: 2, Src1: 1, Imm: 3},
		{Op: isa.Load, Dst: 3, Src1: 2},
	}
	out := OptimizeBody(body)
	if len(out) != 3 {
		t.Fatalf("optimized length = %d, want 3: %v", len(out), out)
	}
	if out[0].Op != isa.AddI || out[0].Imm != 3 {
		t.Errorf("collapsed induction = %v, want addi r1, r1, 3", out[0])
	}
}

func TestOptimizeLeavesInterruptedRuns(t *testing.T) {
	body := []isa.Inst{
		addi(1, 1, 1),
		{Op: isa.ShlI, Dst: 2, Src1: 1, Imm: 3}, // consumes intermediate i
		addi(1, 1, 1),
		{Op: isa.Load, Dst: 3, Src1: 2},
	}
	out := OptimizeBody(body)
	if len(out) != 4 {
		t.Errorf("interrupted run must not collapse: %v", out)
	}
}

func TestOptimizeMixedRegistersAndOps(t *testing.T) {
	body := []isa.Inst{
		addi(1, 1, 2),
		addi(2, 2, 1), // different register: separate run
		addi(1, 1, 2),
		{Op: isa.SubI, Dst: 1, Src1: 1, Imm: 1}, // different op: separate
	}
	out := OptimizeBody(body)
	if len(out) != 4 {
		t.Errorf("distinct runs collapsed incorrectly: %v", out)
	}
}

func TestOptimizeSubI(t *testing.T) {
	body := []isa.Inst{
		{Op: isa.SubI, Dst: 1, Src1: 1, Imm: 2},
		{Op: isa.SubI, Dst: 1, Src1: 1, Imm: 2},
	}
	out := OptimizeBody(body)
	if len(out) != 1 || out[0].Imm != 4 {
		t.Errorf("subi run not collapsed: %v", out)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	body := []isa.Inst{addi(1, 1, 1), addi(1, 1, 1)}
	OptimizeBody(body)
	if body[0].Imm != 1 {
		t.Error("input body mutated")
	}
}

func TestOptimizeNonInductionAddI(t *testing.T) {
	// addi with distinct dst/src is not an induction.
	body := []isa.Inst{
		{Op: isa.AddI, Dst: 2, Src1: 1, Imm: 1},
		{Op: isa.AddI, Dst: 2, Src1: 1, Imm: 1},
	}
	if out := OptimizeBody(body); len(out) != 2 {
		t.Errorf("non-induction addi collapsed: %v", out)
	}
}

func TestMergeBodiesSharedPrefix(t *testing.T) {
	a := []isa.Inst{
		addi(1, 1, 2),
		{Op: isa.ShlI, Dst: 2, Src1: 1, Imm: 3},
		{Op: isa.Load, Dst: 3, Src1: 2, Imm: 0},
	}
	b := []isa.Inst{
		addi(1, 1, 2),
		{Op: isa.ShlI, Dst: 2, Src1: 1, Imm: 3},
		{Op: isa.Load, Dst: 4, Src1: 2, Imm: 8},
	}
	m, ok := MergeBodies(a, b)
	if !ok {
		t.Fatal("safe merge rejected")
	}
	if len(m) != 4 {
		t.Fatalf("merged length = %d, want 4: %v", len(m), m)
	}
	if m[3].Imm != 8 {
		t.Error("second target load lost")
	}
}

func TestMergeBodiesRejectsClobber(t *testing.T) {
	a := []isa.Inst{
		addi(1, 1, 2),
		{Op: isa.AddI, Dst: 5, Src1: 1, Imm: 0}, // divergent part writes r5
		{Op: isa.Load, Dst: 3, Src1: 5},
	}
	b := []isa.Inst{
		addi(1, 1, 2),
		{Op: isa.Load, Dst: 4, Src1: 5}, // suffix reads r5 expecting pre-a value
	}
	if _, ok := MergeBodies(a, b); ok {
		t.Error("unsafe merge accepted")
	}
}

func TestMergeBodiesSuffixRewriteAllowed(t *testing.T) {
	a := []isa.Inst{
		addi(1, 1, 2),
		{Op: isa.AddI, Dst: 5, Src1: 1, Imm: 0},
		{Op: isa.Load, Dst: 3, Src1: 5},
	}
	b := []isa.Inst{
		addi(1, 1, 2),
		{Op: isa.AddI, Dst: 5, Src1: 1, Imm: 8}, // suffix rewrites r5 first
		{Op: isa.Load, Dst: 4, Src1: 5},
	}
	if _, ok := MergeBodies(a, b); !ok {
		t.Error("merge with suffix-rewritten register rejected")
	}
}

func TestMergeIdenticalBodies(t *testing.T) {
	a := []isa.Inst{addi(1, 1, 1), {Op: isa.Load, Dst: 2, Src1: 1}}
	m, ok := MergeBodies(a, a)
	if !ok || len(m) != len(a) {
		t.Errorf("identical merge = %v, %v", m, ok)
	}
}
