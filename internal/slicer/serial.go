package slicer

// Binary (de)serialization of slice trees for the on-disk artifact spill
// tier. Each tree's nodes are flattened in depth-first preorder with parent
// indices, which both preserves the original child order (selection walks
// children in insertion order) and makes the encoding deterministic.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/profile"
)

const serialMagic = "PXSLC001"

var serialOrder = binary.LittleEndian

// EncodeTrees writes the slice trees in the spill-tier format.
func EncodeTrees(w io.Writer, trees []*Tree) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(serialMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		serialOrder.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeI64 := func(v int64) error {
		serialOrder.PutUint64(scratch[:8], uint64(v))
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := writeU32(uint32(len(trees))); err != nil {
		return err
	}
	for _, t := range trees {
		if err := writeU32(uint32(t.TargetPC)); err != nil {
			return err
		}
		ls := t.Load
		if ls == nil {
			ls = &profile.LoadStats{}
		}
		if err := writeU32(uint32(ls.PC)); err != nil {
			return err
		}
		for _, v := range []int64{ls.Execs, ls.L1Misses, ls.L2Misses} {
			if err := writeI64(v); err != nil {
				return err
			}
		}
		if err := writeU32(uint32(len(ls.MissDynIx))); err != nil {
			return err
		}
		for _, ix := range ls.MissDynIx {
			if err := writeI64(ix); err != nil {
				return err
			}
		}
		if err := writeI64(t.Sampled); err != nil {
			return err
		}
		if err := writeI64(int64(math.Float64bits(t.Scale))); err != nil {
			return err
		}
		// Flatten: preorder walk assigning indices; each node records its
		// parent's index (root's parent is ^uint32(0)).
		var flat []*Node
		index := map[*Node]uint32{}
		var walk func(n *Node)
		walk = func(n *Node) {
			index[n] = uint32(len(flat))
			flat = append(flat, n)
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(t.Root)
		if err := writeU32(uint32(len(flat))); err != nil {
			return err
		}
		for _, n := range flat {
			parent := ^uint32(0)
			if n.Parent != nil {
				parent = index[n.Parent]
			}
			if err := writeU32(parent); err != nil {
				return err
			}
			if err := writeU32(uint32(n.PC)); err != nil {
				return err
			}
			if err := writeU32(uint32(n.Depth)); err != nil {
				return err
			}
			for _, v := range []int64{n.DCtrig, n.DCptcm, n.DistSum} {
				if err := writeI64(v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// DecodeTrees reads slice trees in the spill-tier format. Decode errors
// mean corruption (or a stale format); callers quarantine and rebuild.
func DecodeTrees(r io.Reader) ([]*Tree, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, fmt.Errorf("slicer: decode header: %w", err)
	}
	if string(scratch[:8]) != serialMagic {
		return nil, fmt.Errorf("slicer: bad magic %q", scratch[:8])
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return serialOrder.Uint32(scratch[:4]), nil
	}
	readI64 := func() (int64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return int64(serialOrder.Uint64(scratch[:8])), nil
	}
	nTrees, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("slicer: decode tree count: %w", err)
	}
	if nTrees > 1<<20 {
		return nil, fmt.Errorf("slicer: implausible tree count %d", nTrees)
	}
	trees := make([]*Tree, 0, nTrees)
	for ti := uint32(0); ti < nTrees; ti++ {
		targetPC, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("slicer: decode tree %d: %w", ti, err)
		}
		ls := &profile.LoadStats{}
		pc, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("slicer: decode tree %d load: %w", ti, err)
		}
		ls.PC = int32(pc)
		for _, dst := range []*int64{&ls.Execs, &ls.L1Misses, &ls.L2Misses} {
			if *dst, err = readI64(); err != nil {
				return nil, fmt.Errorf("slicer: decode tree %d load: %w", ti, err)
			}
		}
		nIx, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("slicer: decode tree %d load: %w", ti, err)
		}
		if nIx > 1<<28 {
			return nil, fmt.Errorf("slicer: implausible miss-index count %d", nIx)
		}
		if nIx > 0 {
			ls.MissDynIx = make([]int64, nIx)
			for j := range ls.MissDynIx {
				if ls.MissDynIx[j], err = readI64(); err != nil {
					return nil, fmt.Errorf("slicer: decode tree %d load: %w", ti, err)
				}
			}
		}
		t := &Tree{TargetPC: int32(targetPC), Load: ls}
		if t.Sampled, err = readI64(); err != nil {
			return nil, fmt.Errorf("slicer: decode tree %d: %w", ti, err)
		}
		bits, err := readI64()
		if err != nil {
			return nil, fmt.Errorf("slicer: decode tree %d: %w", ti, err)
		}
		t.Scale = math.Float64frombits(uint64(bits))
		nNodes, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("slicer: decode tree %d nodes: %w", ti, err)
		}
		if nNodes == 0 || nNodes > 1<<24 {
			return nil, fmt.Errorf("slicer: implausible node count %d in tree %d", nNodes, ti)
		}
		flat := make([]*Node, nNodes)
		for ni := uint32(0); ni < nNodes; ni++ {
			parent, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("slicer: decode tree %d node %d: %w", ti, ni, err)
			}
			n := &Node{}
			pc, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("slicer: decode tree %d node %d: %w", ti, ni, err)
			}
			n.PC = int32(pc)
			depth, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("slicer: decode tree %d node %d: %w", ti, ni, err)
			}
			n.Depth = int(depth)
			for _, dst := range []*int64{&n.DCtrig, &n.DCptcm, &n.DistSum} {
				if *dst, err = readI64(); err != nil {
					return nil, fmt.Errorf("slicer: decode tree %d node %d: %w", ti, ni, err)
				}
			}
			flat[ni] = n
			switch {
			case parent == ^uint32(0):
				if ni != 0 {
					return nil, fmt.Errorf("slicer: tree %d has a second root at node %d", ti, ni)
				}
				t.Root = n
			case parent >= ni:
				// Preorder guarantees parents precede children; a forward
				// reference is corruption (and would otherwise nil-deref).
				return nil, fmt.Errorf("slicer: tree %d node %d references parent %d out of order", ti, ni, parent)
			default:
				n.Parent = flat[parent]
				n.Parent.Children = append(n.Parent.Children, n)
			}
		}
		if t.Root == nil {
			return nil, fmt.Errorf("slicer: tree %d has no root", ti)
		}
		trees = append(trees, t)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("slicer: trailing bytes after last tree")
	}
	return trees, nil
}
