package slicer

import (
	"bytes"
	"reflect"
	"testing"
)

// stripLinks nulls the Parent back-pointers so reflect.DeepEqual can compare
// two trees without chasing the (cyclic) parent links; child order — the
// part selection depends on — is still compared in full.
func stripLinks(trees []*Tree) {
	for _, t := range trees {
		var walk func(n *Node)
		walk = func(n *Node) {
			n.Parent = nil
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(t.Root)
	}
}

func TestTreesSerialRoundTrip(t *testing.T) {
	trees, _, _ := buildTestTrees(t, paperLoop(3000), DefaultConfig())
	var buf bytes.Buffer
	if err := EncodeTrees(&buf, trees); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrees(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trees) {
		t.Fatalf("tree count %d, want %d", len(got), len(trees))
	}
	// Parent links must be consistent before we strip them for comparison.
	for ti, tree := range got {
		tree.Walk(func(n *Node) {
			if n.Parent == nil {
				t.Fatalf("tree %d: non-root node with nil parent", ti)
			}
			found := false
			for _, c := range n.Parent.Children {
				if c == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("tree %d: node missing from its parent's children", ti)
			}
		})
	}
	var buf2 bytes.Buffer
	if err := EncodeTrees(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding decoded trees changed the bytes")
	}
	stripLinks(trees)
	stripLinks(got)
	if !reflect.DeepEqual(trees, got) {
		t.Error("tree round trip diverged")
	}
}

func TestTreesSerialRejectsCorruption(t *testing.T) {
	trees, _, _ := buildTestTrees(t, paperLoop(3000), DefaultConfig())
	var buf bytes.Buffer
	if err := EncodeTrees(&buf, trees); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTTREES"), raw[8:]...),
		"truncated": raw[:len(raw)-5],
		"trailing":  append(append([]byte(nil), raw...), 7),
	} {
		if _, err := DecodeTrees(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
