package slicer

import "repro/internal/isa"

// OptimizeBody collapses arithmetic induction chains (the paper's Figure 1d
// optimization): a run of identical add-immediate instructions on the same
// register whose intermediate values no other body instruction consumes is
// replaced by a single instruction with the summed immediate (i++; i++ →
// i+=2). This is the "extremely energy efficient idiom for arithmetic
// inductions" that makes deep induction unrolling cheap.
//
// The returned body is a fresh slice; the input is not modified.
func OptimizeBody(body []isa.Inst) []isa.Inst {
	out := make([]isa.Inst, 0, len(body))
	for i := 0; i < len(body); {
		in := body[i]
		if !isInduction(in) {
			out = append(out, in)
			i++
			continue
		}
		// Extend the run while the next instruction is the same induction
		// and nothing between consumes the intermediate value.
		j := i + 1
		sum := in.Imm
		for j < len(body) {
			next := body[j]
			if !isInduction(next) || next.Op != in.Op || next.Dst != in.Dst || next.Src1 != in.Src1 {
				break
			}
			// Any instruction between the run elements would have ended the
			// run already (we only extend over adjacent elements), but the
			// intermediate value must also not be consumed later before the
			// next write: since the next run element overwrites Dst
			// immediately, adjacency guarantees safety.
			sum += next.Imm
			j++
		}
		collapsed := in
		collapsed.Imm = sum
		out = append(out, collapsed)
		i = j
	}
	return out
}

// isInduction reports whether the instruction is a self-referential
// add/sub-immediate (i = i ± c), the shape of loop induction updates.
func isInduction(in isa.Inst) bool {
	return (in.Op == isa.AddI || in.Op == isa.SubI) && in.Dst == in.Src1 && in.Dst != isa.Zero
}

// MergeBodies merges two p-thread bodies that share a trigger (the paper's
// Figure 1e post-pass): the longest common prefix is shared and the second
// body's remainder is appended. The merge is performed only when it is
// dataflow-safe — every register the appended suffix reads must have the
// same producer it had in the original body (the shared prefix or the
// suffix itself), not an instruction of the first body's divergent part.
// ok=false means the bodies cannot be merged safely.
func MergeBodies(a, b []isa.Inst) (merged []isa.Inst, ok bool) {
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	// Registers written by a's divergent part.
	dirty := map[isa.Reg]bool{}
	for _, in := range a[p:] {
		if in.HasDst() {
			dirty[in.Dst] = true
		}
	}
	// b's suffix must not read a register clobbered by a's divergent part
	// unless the suffix itself rewrites it first.
	rewritten := map[isa.Reg]bool{}
	for _, in := range b[p:] {
		s1, s2, r1, r2 := in.Sources()
		if r1 && dirty[s1] && !rewritten[s1] {
			return nil, false
		}
		if r2 && dirty[s2] && !rewritten[s2] {
			return nil, false
		}
		if in.HasDst() {
			rewritten[in.Dst] = true
		}
	}
	merged = make([]isa.Inst, 0, len(a)+len(b)-p)
	merged = append(merged, a...)
	merged = append(merged, b[p:]...)
	return merged, true
}
