package slicer

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/trace"
)

// paperLoop reproduces the shape of the paper's Figure 1 example: a loop
// with an induction, a control decision selecting between two index
// computations, and a problem load indexed by the result.
//
//	for i in 0..n-1:
//	  if flag[i]: rxid = xact[i].rxid else rxid = xact[i].g_rxid
//	  receipts += rx[rxid].price
func paperLoop(n int) *isa.Program {
	const (
		rI    = isa.Reg(1)
		rN    = isa.Reg(2)
		rT    = isa.Reg(3)
		rFlag = isa.Reg(4)
		rRxid = isa.Reg(5)
		rA    = isa.Reg(6)
		rV    = isa.Reg(7)
		rAcc  = isa.Reg(8)
		rC    = isa.Reg(9)
	)
	// Layout: flags [0,n), xact.rxid [n,2n), xact.g_rxid [2n,3n), rx [3n,3n+4096).
	rxBase := 3 * n
	mem := make([]int64, rxBase+4096)
	lc := newTestLCG(7)
	for i := 0; i < n; i++ {
		mem[i] = int64(lc() % 2)
		mem[n+i] = int64(lc() % 4096)
		mem[2*n+i] = int64(lc() % 4096)
	}
	for i := 0; i < 4096; i++ {
		mem[rxBase+i] = int64(lc() % 100)
	}
	b := isa.NewBuilder("paperloop")
	b.MovI(rI, 0)
	b.MovI(rN, int64(n))
	b.Label("top")
	b.ShlI(rT, rI, 3)
	b.Load(rFlag, rT, 0)
	b.BrZ(rFlag, "gpath")
	b.Load(rRxid, rT, int64(n*8)) // xact[i].rxid
	b.Jmp("join")
	b.Label("gpath")
	b.Load(rRxid, rT, int64(2*n*8)) // xact[i].g_rxid
	b.Label("join")
	b.ShlI(rA, rRxid, 3)
	b.Load(rV, rA, int64(rxBase*8)) // rx[rxid].price: the problem load
	b.Add(rAcc, rAcc, rV)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(mem)
	return b.MustBuild()
}

func newTestLCG(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 16
	}
}

func buildTestTrees(t *testing.T, p *isa.Program, cfg Config) ([]*Tree, *trace.Trace, *profile.Profile) {
	t.Helper()
	tr, err := trace.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny hierarchy so even the small test arrays miss.
	hier := cache.DefaultHierConfig()
	hier.L1D = cache.Config{SizeBytes: 1 << 10, Ways: 2, BlockBytes: 64, HitLatency: 2}
	hier.L2 = cache.Config{SizeBytes: 4 << 10, Ways: 4, BlockBytes: 64, HitLatency: 12}
	prof := profile.Collect(tr, profile.ConfigFromHier(hier))
	problems := prof.ProblemLoads(0.95, 10)
	if len(problems) == 0 {
		t.Fatal("no problem loads in test workload")
	}
	return BuildTrees(tr, prof, problems, cfg), tr, prof
}

func TestTreeStructureOnPaperExample(t *testing.T) {
	trees, _, _ := buildTestTrees(t, paperLoop(3000), DefaultConfig())
	if len(trees) == 0 {
		t.Fatal("no trees")
	}
	// Find a control fork: some node whose children diverge by static PC —
	// the rx load's slice forks where rxid comes from either xact[i].rxid
	// or xact[i].g_rxid, mirroring the paper's Figure 1b.
	var fork *Node
	for _, cand := range trees {
		cand.Walk(func(n *Node) {
			if fork == nil && len(n.Children) >= 2 {
				fork = n
			}
		})
		if fork == nil && len(cand.Root.Children) >= 2 {
			fork = cand.Root
		}
	}
	if fork == nil {
		t.Fatal("no control fork (rxid vs g_rxid paths) found in any tree")
	}
	if fork.Children[0].PC == fork.Children[1].PC {
		t.Error("fork children share a PC")
	}
	// Children partition the fork's covered misses.
	var childSum int64
	for _, c := range fork.Children {
		childSum += c.DCptcm
	}
	if childSum > fork.DCptcm {
		t.Errorf("children cover %d > fork %d", childSum, fork.DCptcm)
	}
	if childSum < fork.DCptcm*9/10 {
		t.Errorf("children cover only %d of %d misses", childSum, fork.DCptcm)
	}
}

func TestDCInvariants(t *testing.T) {
	trees, _, _ := buildTestTrees(t, paperLoop(2000), DefaultConfig())
	for _, tree := range trees {
		tree.Walk(func(n *Node) {
			if n.DCptcm > n.Parent.DCptcm {
				t.Errorf("child DCptcm %d exceeds parent %d", n.DCptcm, n.Parent.DCptcm)
			}
			if n.DCptcm <= 0 {
				t.Error("node with zero coverage present in tree")
			}
			if n.DCtrig < n.DCptcm {
				t.Errorf("DCtrig %d below DCptcm %d: trigger executes at least once per covered miss", n.DCtrig, n.DCptcm)
			}
			if n.Depth != n.Parent.Depth+1 {
				t.Error("depth inconsistency")
			}
		})
	}
}

func TestBodyExecutionOrder(t *testing.T) {
	trees, tr, _ := buildTestTrees(t, paperLoop(2000), DefaultConfig())
	tree := trees[0]
	var deepest *Node
	tree.Walk(func(n *Node) {
		if deepest == nil || n.Depth > deepest.Depth {
			deepest = n
		}
	})
	if deepest == nil {
		t.Fatal("empty tree")
	}
	body := deepest.Body(tr.Prog)
	if len(body) != deepest.Depth {
		t.Errorf("body length %d != depth %d", len(body), deepest.Depth)
	}
	// The last body instruction must be the problem load.
	last := body[len(body)-1]
	if !last.IsLoad() {
		t.Errorf("body must end at the problem load, ends with %s", last)
	}
	// No control instructions in any body (control-less p-threads).
	for _, in := range body {
		if in.IsControl() || in.IsStore() {
			t.Errorf("body contains %s", in)
		}
	}
}

func TestWindowBoundsSliceDepth(t *testing.T) {
	narrow := DefaultConfig()
	narrow.Window = 16
	trees, _, _ := buildTestTrees(t, paperLoop(2000), narrow)
	for _, tree := range trees {
		tree.Walk(func(n *Node) {
			if n.MeanDist() > 16 {
				t.Errorf("node dist %.1f exceeds window 16", n.MeanDist())
			}
		})
	}
}

func TestMaxLenBoundsBody(t *testing.T) {
	short := DefaultConfig()
	short.MaxLen = 5
	trees, _, _ := buildTestTrees(t, paperLoop(2000), short)
	for _, tree := range trees {
		tree.Walk(func(n *Node) {
			if n.Depth > 5 {
				t.Errorf("node depth %d exceeds MaxLen 5", n.Depth)
			}
		})
	}
}

func TestSamplingScales(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSamples = 50
	trees, _, _ := buildTestTrees(t, paperLoop(3000), cfg)
	for _, tree := range trees {
		if tree.Sampled > 51 {
			t.Errorf("sampled %d with cap 50", tree.Sampled)
		}
		if tree.Scale < 1 {
			t.Errorf("scale %f below 1", tree.Scale)
		}
	}
}

func TestInductionUnrollingAppearsInDeepSlices(t *testing.T) {
	trees, tr, _ := buildTestTrees(t, paperLoop(3000), DefaultConfig())
	// Deep candidates must contain multiple instances of the induction
	// (addi rI, rI, 1) — the unrolling the paper describes.
	found := false
	for _, tree := range trees {
		tree.Walk(func(n *Node) {
			if n.Depth < 6 {
				return
			}
			body := n.Body(tr.Prog)
			count := 0
			for _, in := range body {
				if isInduction(in) {
					count++
				}
			}
			if count >= 2 {
				found = true
			}
		})
	}
	if !found {
		t.Error("no deep candidate contains an unrolled induction")
	}
}

func TestMaxHeap(t *testing.T) {
	var h maxHeap
	for _, v := range []int64{3, 9, 1, 7, 5, 9} {
		h.push(v)
	}
	want := []int64{9, 9, 7, 5, 3, 1}
	for _, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
	if h.len() != 0 {
		t.Error("heap not drained")
	}
}
