// Package slicer extracts linear p-thread candidates from dynamic traces by
// backward data-dependence slicing and organizes them into slice trees, the
// structure PTHSEL's search operates on (the paper's Figure 1b).
//
// For every L2-missing dynamic instance of a problem load, the slicer walks
// the register dependence graph backwards (bounded by a slicing window and a
// maximum body length) and inserts the resulting instruction path into the
// load's tree: the root is the problem load, each node is a candidate
// trigger, and the body of a candidate is the path from the node to the
// root in execution order. Nodes carry the two counts the selection
// equations need — DCtrig (dynamic executions of the trigger) and DCptcm
// (misses whose slices pass through the node) — plus the mean trigger-to-
// target dynamic distance used to estimate latency tolerance.
package slicer

import (
	"repro/internal/fingerprint"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Config bounds slice extraction. The defaults match the paper's selection
// settings: a 2048-instruction slicing window and 64 instructions per
// linear p-thread.
type Config struct {
	Window     int // dynamic slicing window (instructions before the miss)
	MaxLen     int // maximum body length of a linear p-thread
	MaxSamples int // cap on sliced miss instances per problem load
}

// DefaultConfig returns the paper's slicing parameters.
func DefaultConfig() Config {
	return Config{Window: 2048, MaxLen: 64, MaxSamples: 4000}
}

// Fingerprint returns the content fingerprint of the slicing stage config —
// the complete set of knobs BuildTrees reads beyond its input artifacts.
func (c Config) Fingerprint() (string, error) { return fingerprint.JSON(c) }

// Node is one slice-tree node: a candidate (trigger, body) pair.
type Node struct {
	PC       int32 // trigger static PC
	Depth    int   // body length (instructions from this node to the root)
	DCtrig   int64 // dynamic executions of the trigger instruction
	DCptcm   int64 // misses whose slices pass through this node
	DistSum  int64 // accumulated trigger→target dynamic distances
	Parent   *Node
	Children []*Node
}

// MeanDist returns the average dynamic instruction distance from trigger to
// target over the slices through this node.
func (n *Node) MeanDist() float64 {
	if n.DCptcm == 0 {
		return 0
	}
	return float64(n.DistSum) / float64(n.DCptcm)
}

// Body returns the candidate's instructions in execution order (earliest
// first, the problem load last).
func (n *Node) Body(prog *isa.Program) []isa.Inst {
	var pcs []int32
	for cur := n; cur != nil; cur = cur.Parent {
		pcs = append(pcs, cur.PC)
	}
	body := make([]isa.Inst, len(pcs))
	for i, pc := range pcs {
		body[i] = prog.Insts[pc]
	}
	return body
}

// Tree is the slice tree of one problem load.
type Tree struct {
	TargetPC int32
	Load     *profile.LoadStats
	// Root is the degenerate candidate consisting of the problem load
	// itself (never selected; its children are the real candidates).
	Root *Node
	// Sampled is the number of miss instances actually sliced (DCptcm
	// counts are scaled back up when sampling truncates).
	Sampled int64
	// Scale converts sampled counts to full-run counts.
	Scale float64
}

// Walk visits every node of the tree except the root in depth-first order.
func (t *Tree) Walk(f func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			f(c)
			rec(c)
		}
	}
	rec(t.Root)
}

// NumNodes returns the candidate count (root excluded).
func (t *Tree) NumNodes() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// BuildTrees slices every problem load's misses and returns one tree per
// load, in the given order.
func BuildTrees(tr *trace.Trace, prof *profile.Profile, problems []*profile.LoadStats, cfg Config) []*Tree {
	execCounts := prof.ExecCounts
	trees := make([]*Tree, 0, len(problems))
	for _, ls := range problems {
		t := &Tree{
			TargetPC: ls.PC,
			Load:     ls,
			Root: &Node{
				PC:     ls.PC,
				Depth:  1,
				DCtrig: execCounts[ls.PC],
			},
		}
		misses := ls.MissDynIx
		stride := 1
		if cfg.MaxSamples > 0 && len(misses) > cfg.MaxSamples {
			stride = (len(misses) + cfg.MaxSamples - 1) / cfg.MaxSamples
		}
		for k := 0; k < len(misses); k += stride {
			m := misses[k]
			path := backwardSlice(tr, m, cfg)
			insertPath(tr, t.Root, path, m, execCounts)
			t.Sampled++
		}
		if t.Sampled > 0 {
			t.Scale = float64(len(misses)) / float64(t.Sampled)
		} else {
			t.Scale = 1
		}
		trees = append(trees, t)
	}
	return trees
}

// backwardSlice returns the dynamic indices of the miss's backward register
// slice (the miss itself excluded), in descending dynamic order. The pops
// are strictly descending because producers always precede consumers, so
// every prefix of the result is dependence-closed: excluded producers all
// execute before the earliest included instruction and are therefore valid
// live-ins at spawn time.
func backwardSlice(tr *trace.Trace, m int64, cfg Config) []int64 {
	lo := m - int64(cfg.Window)
	var heap maxHeap
	push := func(j int64) {
		if j != trace.NoProducer && j >= lo {
			heap.push(j)
		}
	}
	push(tr.Prod1(int(m)))
	push(tr.Prod2(int(m)))
	var out []int64
	var last int64 = -1
	for heap.len() > 0 && len(out) < cfg.MaxLen-1 {
		j := heap.pop()
		if j == last {
			continue // duplicate reachability (common subexpression)
		}
		last = j
		out = append(out, j)
		push(tr.Prod1(int(j)))
		push(tr.Prod2(int(j)))
	}
	return out
}

// insertPath inserts the slice into the tree: the path visits slice
// instructions from latest to earliest below the root.
func insertPath(tr *trace.Trace, root *Node, slice []int64, m int64, execCounts []int64) {
	root.DCptcm++
	cur := root
	for _, j := range slice {
		cur = childFor(cur, tr.PC(int(j)), execCounts)
		cur.DCptcm++
		cur.DistSum += m - j
	}
}

// childFor finds or creates the child of cur for the static instruction pc.
func childFor(cur *Node, pc int32, execCounts []int64) *Node {
	for _, c := range cur.Children {
		if c.PC == pc {
			return c
		}
	}
	n := &Node{
		PC:     pc,
		Depth:  cur.Depth + 1,
		DCtrig: execCounts[pc],
		Parent: cur,
	}
	cur.Children = append(cur.Children, n)
	return n
}

// maxHeap is a small binary max-heap of int64.
type maxHeap struct{ a []int64 }

func (h *maxHeap) len() int { return len(h.a) }

func (h *maxHeap) push(v int64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] >= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *maxHeap) pop() int64 {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.a) && h.a[l] > h.a[big] {
			big = l
		}
		if r < len(h.a) && h.a[r] > h.a[big] {
			big = r
		}
		if big == i {
			break
		}
		h.a[i], h.a[big] = h.a[big], h.a[i]
		i = big
	}
	return top
}
