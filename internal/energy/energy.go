// Package energy implements the Wattch-style energy accounting substrate.
//
// Energy is expressed in abstract units where 100 units is the processor's
// maximum per-cycle energy (every port of every structure accessed in one
// cycle — the paper notes this is an unrealistic cycle, which is why typical
// per-cycle consumption is far below 100). The paper's per-structure
// breakdown of that maximum is: branch predictor/BTB 4.4%, i-cache/ITLB
// 18.1%, window/ROB/result-bus 13.6%, register file 14.2%, ALUs 5.5%,
// d-cache/DTLB/LSQ 8.6%, L2 13.6%, clock 22%.
//
// Accounting is event-based: each microarchitectural event (an i-cache block
// fetch, an instruction passing through rename/window/register file/result
// bus, an ALU operation, a data-cache access, an L2 access) is charged a
// per-access constant. The per-access constants the selection model needs
// (Table 2, eq. E8) are exactly the ones used here, so the model and the
// "measured" energy share units: Ef/a=9, Exall/a=4.9, Exalu/a=0.8,
// Exload/a=3.8, EL2/a=13.6, Eidle/c=5 (percent of max per-cycle energy).
//
// Clock energy is charged per dispatched main-thread instruction (the clock
// distribution toggles with pipeline occupancy under conditional clock
// gating), so a fully-stalled cycle consumes exactly the idle residual
// Eidle/c — which is what makes the model's EREDagg = LADVagg * Eidle/c
// (Table 2, eq. E2) consistent with measurement: the cycles pre-execution
// removes are stall cycles, and removing one reclaims Eidle/c.
package energy

// Params supplies the per-event and per-cycle energy constants in units of
// percent-of-maximum-per-cycle energy.
type Params struct {
	MaxPerCycle float64 // normalization constant (100)

	// Per-access event constants (Table 2, eq. E8).
	FetchBlock float64 // Ef/a: one i-cache/ITLB block access
	ExecAll    float64 // Exall/a: rename+window+regfile+result bus, per instruction
	ExecALU    float64 // Exalu/a: per ALU operation
	ExecLoad   float64 // Exload/a: agen+d-cache/DTLB/LSQ, per load or store
	L2Access   float64 // EL2/a: per L2 access

	// Per-event constants for structures p-threads do not occupy
	// (re-order buffer, branch predictor) and the clock tree.
	BpredAccess  float64 // branch predictor + BTB, per main-thread branch
	ROBAccess    float64 // ROB allocate+commit, per main-thread instruction
	ClockPerInst float64 // clock tree, per dispatched main-thread instruction

	// Per-cycle idle residual (leakage, imperfect gating, gating control);
	// the fraction of MaxPerCycle always drawn, reclaimable only by deep
	// sleep. The paper's idle energy factor; default 0.05.
	IdleFactor float64
}

// DefaultParams returns the paper's configuration (5% idle energy factor).
func DefaultParams() Params {
	return Params{
		MaxPerCycle:  100,
		FetchBlock:   9,
		ExecAll:      4.9,
		ExecALU:      0.8,
		ExecLoad:     3.8,
		L2Access:     13.6,
		BpredAccess:  1.1,
		ROBAccess:    0.9,
		ClockPerInst: 3.7,
		IdleFactor:   0.05,
	}
}

// IdlePerCycle returns Eidle/c in energy units.
func (p Params) IdlePerCycle() float64 { return p.IdleFactor * p.MaxPerCycle }

// Events aggregates the microarchitectural event counts of one simulation,
// split between the main thread and p-threads where the paper's striped
// energy breakdowns require it.
type Events struct {
	Cycles int64

	FetchBlocksMain, FetchBlocksPth int64 // i-cache block accesses
	InstsMain, InstsPth             int64 // instructions dispatched
	ALUMain, ALUPth                 int64 // ALU operations executed
	MemMain, MemPth                 int64 // d-cache/DTLB/LSQ accesses
	L2Main, L2Pth                   int64 // L2 accesses
	BranchesMain                    int64 // branches fetched (bpred accesses)
}

// Breakdown is the energy decomposition used by Figures 2 and 3: the
// i-cache/ITLB (imem), d-cache/DTLB/LSQ (dmem), L2, decode+out-of-order
// structures (dec+OoO, including the clock), each split between main thread
// and p-threads, plus ROB+branch predictor (main thread only, p-instructions
// never touch them) and the per-cycle idle residual.
type Breakdown struct {
	ImemMain, ImemPth float64
	DmemMain, DmemPth float64
	L2Main, L2Pth     float64
	OoOMain, OoOPth   float64
	ROBBpred          float64
	Idle              float64
}

// Total returns the summed energy of all components.
func (b Breakdown) Total() float64 {
	return b.ImemMain + b.ImemPth + b.DmemMain + b.DmemPth +
		b.L2Main + b.L2Pth + b.OoOMain + b.OoOPth + b.ROBBpred + b.Idle
}

// PthTotal returns the energy attributable to p-thread activity.
func (b Breakdown) PthTotal() float64 {
	return b.ImemPth + b.DmemPth + b.L2Pth + b.OoOPth
}

// Compute converts event counts into an energy breakdown under the given
// parameters.
func Compute(p Params, e Events) Breakdown {
	var b Breakdown
	b.ImemMain = float64(e.FetchBlocksMain) * p.FetchBlock
	b.ImemPth = float64(e.FetchBlocksPth) * p.FetchBlock
	b.DmemMain = float64(e.MemMain) * p.ExecLoad
	b.DmemPth = float64(e.MemPth) * p.ExecLoad
	b.L2Main = float64(e.L2Main) * p.L2Access
	b.L2Pth = float64(e.L2Pth) * p.L2Access
	b.OoOMain = float64(e.InstsMain)*(p.ExecAll+p.ClockPerInst) + float64(e.ALUMain)*p.ExecALU
	b.OoOPth = float64(e.InstsPth)*p.ExecAll + float64(e.ALUPth)*p.ExecALU
	b.ROBBpred = float64(e.InstsMain)*p.ROBAccess + float64(e.BranchesMain)*p.BpredAccess
	b.Idle = float64(e.Cycles) * p.IdlePerCycle()
	return b
}
