package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsMatchPaperConstants(t *testing.T) {
	p := DefaultParams()
	// Table 2, eq. E8: 9%, 4.9%, 0.8%, 3.8%, 13.6%, 5% of max per-cycle.
	if p.FetchBlock != 9 || p.ExecAll != 4.9 || p.ExecALU != 0.8 ||
		p.ExecLoad != 3.8 || p.L2Access != 13.6 {
		t.Errorf("per-access constants diverge from the paper: %+v", p)
	}
	if p.IdlePerCycle() != 5 {
		t.Errorf("Eidle/c = %v, want 5", p.IdlePerCycle())
	}
}

func TestComputeZeroEvents(t *testing.T) {
	b := Compute(DefaultParams(), Events{})
	if b.Total() != 0 {
		t.Errorf("empty events must cost nothing, got %v", b.Total())
	}
}

func TestComputeIdleOnly(t *testing.T) {
	b := Compute(DefaultParams(), Events{Cycles: 100})
	if b.Idle != 500 {
		t.Errorf("idle = %v, want 500", b.Idle)
	}
	if b.Total() != 500 {
		t.Errorf("total = %v, want 500", b.Total())
	}
}

func TestComputeComponents(t *testing.T) {
	p := DefaultParams()
	e := Events{
		Cycles:          10,
		FetchBlocksMain: 2, FetchBlocksPth: 1,
		InstsMain: 4, InstsPth: 3,
		ALUMain: 2, ALUPth: 1,
		MemMain: 5, MemPth: 2,
		L2Main: 1, L2Pth: 1,
		BranchesMain: 2,
	}
	b := Compute(p, e)
	if b.ImemMain != 18 || b.ImemPth != 9 {
		t.Errorf("imem = %v/%v", b.ImemMain, b.ImemPth)
	}
	if b.DmemMain != 19 || math.Abs(b.DmemPth-7.6) > 1e-9 {
		t.Errorf("dmem = %v/%v", b.DmemMain, b.DmemPth)
	}
	if b.L2Main != 13.6 || b.L2Pth != 13.6 {
		t.Errorf("l2 = %v/%v", b.L2Main, b.L2Pth)
	}
	wantOoOMain := 4*(4.9+3.7) + 2*0.8
	if math.Abs(b.OoOMain-wantOoOMain) > 1e-9 {
		t.Errorf("OoO main = %v, want %v", b.OoOMain, wantOoOMain)
	}
	wantOoOPth := 3*4.9 + 1*0.8
	if math.Abs(b.OoOPth-wantOoOPth) > 1e-9 {
		t.Errorf("OoO pth = %v, want %v", b.OoOPth, wantOoOPth)
	}
	wantROB := 4*0.9 + 2*1.1
	if math.Abs(b.ROBBpred-wantROB) > 1e-9 {
		t.Errorf("rob+bpred = %v, want %v", b.ROBBpred, wantROB)
	}
	if b.Idle != 50 {
		t.Errorf("idle = %v, want 50", b.Idle)
	}
}

func TestPthTotal(t *testing.T) {
	b := Breakdown{ImemPth: 1, DmemPth: 2, L2Pth: 3, OoOPth: 4, ImemMain: 100}
	if b.PthTotal() != 10 {
		t.Errorf("PthTotal = %v, want 10", b.PthTotal())
	}
}

// Property: energy is additive — computing two event sets separately and
// summing equals computing their sum.
func TestComputeAdditivity(t *testing.T) {
	p := DefaultParams()
	check := func(c1, c2 uint16, i1, i2 uint16, l1, l2 uint16) bool {
		e1 := Events{Cycles: int64(c1), InstsMain: int64(i1), L2Main: int64(l1)}
		e2 := Events{Cycles: int64(c2), InstsMain: int64(i2), L2Main: int64(l2)}
		sum := Events{
			Cycles:    e1.Cycles + e2.Cycles,
			InstsMain: e1.InstsMain + e2.InstsMain,
			L2Main:    e1.L2Main + e2.L2Main,
		}
		got := Compute(p, e1).Total() + Compute(p, e2).Total()
		want := Compute(p, sum).Total()
		return math.Abs(got-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy is monotone in every event count.
func TestComputeMonotonicity(t *testing.T) {
	p := DefaultParams()
	base := Events{Cycles: 100, InstsMain: 50, MemMain: 10}
	baseTotal := Compute(p, base).Total()
	variants := []Events{
		{Cycles: 101, InstsMain: 50, MemMain: 10},
		{Cycles: 100, InstsMain: 51, MemMain: 10},
		{Cycles: 100, InstsMain: 50, MemMain: 11},
		{Cycles: 100, InstsMain: 50, MemMain: 10, InstsPth: 1},
		{Cycles: 100, InstsMain: 50, MemMain: 10, L2Pth: 1},
	}
	for i, v := range variants {
		if Compute(p, v).Total() <= baseTotal {
			t.Errorf("variant %d not monotone", i)
		}
	}
}

// Property: idle factor scales only the idle component.
func TestIdleFactorScaling(t *testing.T) {
	e := Events{Cycles: 1000, InstsMain: 500, MemMain: 100, L2Main: 10}
	p0 := DefaultParams()
	p0.IdleFactor = 0
	p10 := DefaultParams()
	p10.IdleFactor = 0.10
	b0, b10 := Compute(p0, e), Compute(p10, e)
	if b0.Idle != 0 {
		t.Errorf("idle at factor 0 = %v", b0.Idle)
	}
	if b10.Idle != 10000 {
		t.Errorf("idle at factor 0.10 = %v, want 10000", b10.Idle)
	}
	if b10.Total()-b0.Total() != b10.Idle {
		t.Error("idle factor must affect only the idle component")
	}
}
