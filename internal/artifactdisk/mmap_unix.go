//go:build unix && !linux

package artifactdisk

import (
	"errors"
	"os"
	"syscall"
)

// mmapSupported gates LoadMapped; callers on other platforms fall back to
// the heap Load path.
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared: the pages
// alias the page cache, so N processes mapping one artifact hold one copy.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, errors.New("artifactdisk: cannot map empty file")
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
