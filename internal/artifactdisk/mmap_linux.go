//go:build linux

package artifactdisk

import (
	"errors"
	"os"
	"syscall"
)

// mmapSupported gates LoadMapped; callers on other platforms fall back to
// the heap Load path.
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared: the pages
// alias the page cache, so N processes mapping one artifact hold one copy.
// MAP_POPULATE wires the page tables up front — the chunk verifier streams
// the whole mapping immediately, and one populated mmap is far cheaper than
// a minor fault per touched 4K page.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size <= 0 {
		return nil, errors.New("artifactdisk: cannot map empty file")
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ,
		syscall.MAP_SHARED|syscall.MAP_POPULATE)
}

func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
