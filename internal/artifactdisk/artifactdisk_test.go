package artifactdisk

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(i byte) Key {
	return Key{Name: "bench", Input: "train", Stage: "trace", FP: strings.Repeat(string(rune('a'+i)), 8)}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(0)
	payload := bytes.Repeat([]byte("artifact"), 100)
	if _, ok := s.Load(k); ok {
		t.Fatal("load before save succeeded")
	}
	if err := s.Save(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(k)
	if !ok {
		t.Fatal("load after save missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload diverged")
	}
	st := s.Stats()
	if st.Files != 1 || st.Saves != 1 || st.Loads != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Fatalf("bytes %d should include header", st.Bytes)
	}
	// Saving the same key again is a no-op.
	if err := s.Save(k, payload); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Files != 1 {
		t.Fatalf("duplicate save changed file count: %+v", st)
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := s.Save(k, []byte("survives restart")); err != nil {
		t.Fatal(err)
	}
	// Leftover temp file from a "crashed" writer must be cleaned on reopen.
	tmp := filepath.Join(dir, "trace", "leftover.tmp")
	if err := os.WriteFile(tmp, []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Load(k)
	if !ok || string(got) != "survives restart" {
		t.Fatalf("reopen load = %q, %v", got, ok)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover .tmp not removed on reopen")
	}
	if st := s2.Stats(); st.Files != 1 {
		t.Fatalf("reopen stats %+v", st)
	}
}

// artifactPath finds the single .art file under dir (the tests store one
// artifact when they need to corrupt it on disk).
func artifactPath(t *testing.T, dir string) string {
	t.Helper()
	var paths []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".art") {
			paths = append(paths, path)
		}
		return nil
	})
	if len(paths) != 1 {
		t.Fatalf("found %d artifact files, want 1", len(paths))
	}
	return paths[0]
}

func TestCorruptionQuarantined(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bit flip":  func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"bad magic": func(b []byte) []byte { copy(b, "NOTMAGIC"); return b },
		"trailing":  func(b []byte) []byte { return append(b, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			k := testKey(2)
			if err := s.Save(k, []byte("precious bits")); err != nil {
				t.Fatal(err)
			}
			path := artifactPath(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o666); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Load(k); ok {
				t.Fatal("corrupt load succeeded")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt file not deleted")
			}
			st := s.Stats()
			if st.Quarantined != 1 || st.Files != 0 {
				t.Fatalf("stats after quarantine: %+v", st)
			}
			// The slot is free again: save and load must work.
			if err := s.Save(k, []byte("precious bits")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Load(k); !ok || string(got) != "precious bits" {
				t.Fatalf("rebuild load = %q, %v", got, ok)
			}
		})
	}
}

func TestKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(3)
	if err := s.Save(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Misdirect: move the well-formed file onto another key's path.
	other := Key{Name: "bench", Input: "train", Stage: "trace", FP: "different"}
	src := artifactPath(t, dir)
	if err := os.Rename(src, s.pathFor(other)); err != nil {
		t.Fatal(err)
	}
	// Index still maps the old path; reopen so the misdirected file is indexed.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Load(other); ok {
		t.Fatal("load of misdirected artifact succeeded")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Budget fits roughly three of the five artifacts saved below.
	payload := bytes.Repeat([]byte("p"), 1024)
	one := artifactFileSize(testKey(0), payload, false)
	s, err := Open(dir, 3*one+one/2)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 5; i++ {
		if err := s.Save(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evicted != 2 || st.Files != 3 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// Oldest two are gone, newest three resident.
	for i := byte(0); i < 5; i++ {
		_, ok := s.Load(testKey(i))
		if want := i >= 2; ok != want {
			t.Errorf("key %d resident = %v, want %v", i, ok, want)
		}
	}
	// A load refreshes recency: touch key 2, save two more, and key 2 must
	// outlive keys 3 and 4.
	if _, ok := s.Load(testKey(2)); !ok {
		t.Fatal("key 2 missing")
	}
	for i := byte(5); i < 7; i++ {
		if err := s.Save(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Load(testKey(2)); !ok {
		t.Error("recently-loaded key 2 was evicted")
	}
	if _, ok := s.Load(testKey(3)); ok {
		t.Error("stale key 3 survived eviction")
	}
}

func TestOversizeArtifactStaysResident(t *testing.T) {
	s, err := Open(t.TempDir(), 64) // budget smaller than any artifact
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(4)
	payload := bytes.Repeat([]byte("big"), 100)
	if err := s.Save(k, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); !ok {
		t.Fatal("oversize artifact evicted immediately after save; rebuild loop")
	}
}

func TestQuarantineAbsentKeyIsNoop(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Quarantine(testKey(5))
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("quarantine of absent key counted: %+v", st)
	}
}
