// Package artifactdisk is the on-disk, content-addressed spill tier behind
// the in-memory singleflight artifact store: stage artifacts serialized
// under their content fingerprints, one file per artifact.
//
// Guarantees:
//
//   - Writes are atomic and durable-before-visible: payloads go to a
//     temporary file that is fsynced and then renamed into place, so a
//     reader (or a crash) never observes a half-written artifact under its
//     final name.
//   - Loads are verified: every file carries its full key and a payload
//     checksum; a truncated, bit-flipped or stale-format file is
//     quarantined — deleted and counted, never fatal — and the caller
//     rebuilds the artifact.
//   - The store is byte-budgeted: when the artifact bytes exceed the
//     budget, least-recently-used artifacts are evicted. Recency survives
//     restarts approximately via file mtimes (loads touch their file).
//
// The store is safe for concurrent use by one process. Multiple processes
// may share a directory: atomic renames keep files well-formed, and a file
// evicted or quarantined under a concurrent reader simply loads as a miss.
package artifactdisk

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one stored artifact: a pipeline stage's output for one
// (benchmark, input) under the stage's chained content fingerprint.
type Key struct {
	Name  string `json:"name"`
	Input string `json:"input"`
	Stage string `json:"stage"`
	FP    string `json:"fp"`
}

// Stats reports the store's cumulative counters and current footprint.
type Stats struct {
	Files int64 `json:"files"`
	Bytes int64 `json:"bytes"`

	Saves       int64 `json:"saves"`
	SaveErrors  int64 `json:"save_errors"`
	Loads       int64 `json:"loads"`
	Misses      int64 `json:"misses"`
	Quarantined int64 `json:"quarantined"`
	Evicted     int64 `json:"evicted"`
}

// fileMagic identifies the artifact container format; bump on layout change
// so stale files quarantine instead of misloading.
const fileMagic = "LABART01"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// entry is one resident artifact in the LRU index.
type entry struct {
	path string
	size int64
	elem *list.Element // position in lru (front = most recent)
}

// Store is the on-disk spill tier rooted at one directory.
type Store struct {
	dir      string
	maxBytes int64 // <= 0: unlimited

	mu      sync.Mutex
	entries map[string]*entry // keyed by file path
	lru     *list.List        // of path strings
	bytes   int64
	files   int64

	saves, saveErrors, loads, misses, quarantined, evicted atomic.Int64
}

// Open opens (creating if needed) a store rooted at dir with the given byte
// budget (maxBytes <= 0 means unlimited). Existing artifacts are indexed by
// file mtime so eviction order approximates LRU across restarts; leftover
// temporary files from a crashed writer are removed.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifactdisk: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("artifactdisk: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  map[string]*entry{},
		lru:      list.New(),
	}
	type found struct {
		path  string
		size  int64
		mtime time.Time
	}
	var all []found
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, ".tmp") {
			os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(path, ".art") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent eviction
		}
		all = append(all, found{path: path, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("artifactdisk: scan %s: %w", dir, err)
	}
	// Oldest first so the LRU front ends up the most recently used.
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	for _, f := range all {
		e := &entry{path: f.path, size: f.size}
		e.elem = s.lru.PushFront(f.path)
		s.entries[f.path] = e
		s.bytes += f.size
		s.files++
	}
	s.mu.Lock()
	s.evictLocked(nil)
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// pathFor derives the artifact file path: one subdirectory per stage, file
// named by the key's collision-resistant hash. The stage subdirectory is
// cosmetic (the hash covers the full key); unsafe stage strings fall back
// to a generic bucket.
func (s *Store) pathFor(k Key) string {
	h := sha256.New()
	for _, part := range []string{k.Name, k.Input, k.Stage, k.FP} {
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(part)))
		h.Write(lenBuf[:])
		io.WriteString(h, part)
	}
	sub := k.Stage
	if sub == "" || strings.ContainsAny(sub, "/\\.") {
		sub = "other"
	}
	return filepath.Join(s.dir, sub, hex.EncodeToString(h.Sum(nil)[:16])+".art")
}

// Load returns the payload stored under k, or ok=false when the artifact is
// absent, was evicted, or failed verification (in which case the bad file
// has been quarantined and the caller should rebuild).
func (s *Store) Load(k Key) ([]byte, bool) {
	path := s.pathFor(k)
	s.mu.Lock()
	e := s.entries[path]
	if e != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if e == nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := readArtifact(path, k)
	if err != nil {
		if os.IsNotExist(err) {
			// Evicted (or removed by another process) between index lookup
			// and read: a plain miss, not corruption.
			s.forget(path)
			s.misses.Add(1)
			return nil, false
		}
		s.quarantinePath(path)
		return nil, false
	}
	// Touch so restart-time LRU reconstruction sees the access.
	now := time.Now()
	os.Chtimes(path, now, now)
	s.loads.Add(1)
	return payload, true
}

// Has reports whether an artifact is resident under k, without touching its
// recency or counting a load or miss. It is a scheduling probe — the
// critical-path planner uses it to cost a stage as a disk load rather than
// a rebuild — so it must not perturb the LRU order the way Load does.
func (s *Store) Has(k Key) bool {
	path := s.pathFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[path] != nil
}

// Quarantine removes the artifact stored under k (if any) and counts it as
// quarantined. Callers use it when a payload that passed the container
// checksum still fails semantic decoding.
func (s *Store) Quarantine(k Key) {
	s.quarantinePath(s.pathFor(k))
}

func (s *Store) quarantinePath(path string) {
	os.Remove(path)
	if s.forget(path) {
		s.quarantined.Add(1)
	}
}

// forget drops path from the index, reporting whether it was present.
func (s *Store) forget(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[path]
	if e == nil {
		return false
	}
	delete(s.entries, path)
	s.lru.Remove(e.elem)
	s.bytes -= e.size
	s.files--
	return true
}

// Save stores payload under k: written to a temporary file, fsynced, then
// renamed into place so the artifact is never visible half-written. Saving
// an already-present key refreshes its recency and is otherwise a no-op
// (the store is content-addressed — equal keys hold equal payloads).
func (s *Store) Save(k Key, payload []byte) error {
	path := s.pathFor(k)
	s.mu.Lock()
	if e := s.entries[path]; e != nil {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if err := s.writeArtifact(path, k, payload); err != nil {
		s.saveErrors.Add(1)
		return err
	}
	s.mu.Lock()
	if e := s.entries[path]; e == nil {
		e = &entry{path: path, size: artifactFileSize(k, payload)}
		e.elem = s.lru.PushFront(path)
		s.entries[path] = e
		s.bytes += e.size
		s.files++
		s.evictLocked(e)
	}
	s.mu.Unlock()
	s.saves.Add(1)
	return nil
}

// evictLocked removes least-recently-used artifacts until the store fits
// its byte budget. The just-saved entry keep (if non-nil) is never evicted:
// a single artifact larger than the whole budget stays resident rather than
// thrashing rebuild-evict-rebuild.
func (s *Store) evictLocked(keep *entry) {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 0 {
		back := s.lru.Back()
		path := back.Value.(string)
		e := s.entries[path]
		if keep != nil && e == keep {
			return
		}
		delete(s.entries, path)
		s.lru.Remove(back)
		s.bytes -= e.size
		s.files--
		os.Remove(path)
		s.evicted.Add(1)
	}
}

// Stats returns a snapshot of the store's counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	files, bytes := s.files, s.bytes
	s.mu.Unlock()
	return Stats{
		Files:       files,
		Bytes:       bytes,
		Saves:       s.saves.Load(),
		SaveErrors:  s.saveErrors.Load(),
		Loads:       s.loads.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
		Evicted:     s.evicted.Load(),
	}
}

// ------------------------------------------------------- file container --
//
// Layout: magic(8) | keyLen(u32) | key JSON | payloadLen(u64) |
// crc32c(payload)(u32) | payload. The embedded key guards against hash
// collisions and misdirected files; the checksum guards payload integrity.

func headerSize(keyJSON []byte) int64 {
	return int64(8 + 4 + len(keyJSON) + 8 + 4)
}

func artifactFileSize(k Key, payload []byte) int64 {
	kj, _ := json.Marshal(k)
	return headerSize(kj) + int64(len(payload))
}

func (s *Store) writeArtifact(path string, k Key, payload []byte) error {
	kj, err := json.Marshal(k)
	if err != nil {
		return fmt.Errorf("artifactdisk: marshal key: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("artifactdisk: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("artifactdisk: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [12]byte
	if _, err := tmp.WriteString(fileMagic); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(kj)))
	if _, err := tmp.Write(hdr[:4]); err != nil {
		return err
	}
	if _, err := tmp.Write(kj); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	if _, err := tmp.Write(hdr[:12]); err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	// fsync before publish: after the rename below, the file must never be
	// observable with partial contents, even across a crash.
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func readArtifact(path string, want Key) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	if string(magic[:]) != fileMagic {
		return nil, fmt.Errorf("artifactdisk: bad magic %q", magic[:])
	}
	var u32 [4]byte
	if _, err := io.ReadFull(f, u32[:]); err != nil {
		return nil, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	keyLen := binary.LittleEndian.Uint32(u32[:])
	if keyLen > 1<<20 {
		return nil, fmt.Errorf("artifactdisk: implausible key length %d", keyLen)
	}
	kj := make([]byte, keyLen)
	if _, err := io.ReadFull(f, kj); err != nil {
		return nil, fmt.Errorf("artifactdisk: short key: %w", err)
	}
	var got Key
	if err := json.Unmarshal(kj, &got); err != nil {
		return nil, fmt.Errorf("artifactdisk: corrupt key: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("artifactdisk: key mismatch: file holds %+v", got)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(f, u64[:]); err != nil {
		return nil, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	payloadLen := binary.LittleEndian.Uint64(u64[:])
	if payloadLen > 1<<40 {
		return nil, fmt.Errorf("artifactdisk: implausible payload length %d", payloadLen)
	}
	if _, err := io.ReadFull(f, u32[:]); err != nil {
		return nil, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	wantCRC := binary.LittleEndian.Uint32(u32[:])
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("artifactdisk: short payload: %w", err)
	}
	if extra, err := f.Read(make([]byte, 1)); err != io.EOF || extra != 0 {
		return nil, errors.New("artifactdisk: trailing bytes after payload")
	}
	if crc := crc32.Checksum(payload, crcTable); crc != wantCRC {
		return nil, fmt.Errorf("artifactdisk: checksum mismatch (%08x != %08x)", crc, wantCRC)
	}
	return payload, nil
}
