// Package artifactdisk is the on-disk, content-addressed spill tier behind
// the in-memory singleflight artifact store: stage artifacts serialized
// under their content fingerprints, one file per artifact.
//
// Guarantees:
//
//   - Writes are atomic and durable-before-visible: payloads go to a
//     temporary file that is fsynced and then renamed into place, so a
//     reader (or a crash) never observes a half-written artifact under its
//     final name.
//   - Loads are verified: every file carries its full key and a payload
//     checksum; a truncated, bit-flipped or stale-format file is
//     quarantined — deleted and counted, never fatal — and the caller
//     rebuilds the artifact.
//   - The store is byte-budgeted: when the artifact bytes exceed the
//     budget, least-recently-used artifacts are evicted. Recency survives
//     restarts approximately via file mtimes (loads touch their file).
//
// The store is safe for concurrent use by one process. Multiple processes
// may share a directory: atomic renames keep files well-formed, and a file
// evicted or quarantined under a concurrent reader simply loads as a miss.
package artifactdisk

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one stored artifact: a pipeline stage's output for one
// (benchmark, input) under the stage's chained content fingerprint.
type Key struct {
	Name  string `json:"name"`
	Input string `json:"input"`
	Stage string `json:"stage"`
	FP    string `json:"fp"`
}

// Stats reports the store's cumulative counters and current footprint.
type Stats struct {
	Files int64 `json:"files"`
	Bytes int64 `json:"bytes"`
	// MappedFiles/MappedBytes cover files with at least one live mapping
	// (LoadMapped readers that have not closed yet), including files already
	// evicted or quarantined whose byte accounting is deferred until the
	// last reader unmaps.
	MappedFiles int64 `json:"mapped_files"`
	MappedBytes int64 `json:"mapped_bytes"`

	Saves       int64 `json:"saves"`
	SaveErrors  int64 `json:"save_errors"`
	Loads       int64 `json:"loads"`
	Misses      int64 `json:"misses"`
	Quarantined int64 `json:"quarantined"`
	Evicted     int64 `json:"evicted"`
}

// Container format magics. LABART01 is the original packed container;
// LABART02 pads the header to a 4 KiB boundary so the payload is
// page-aligned in the file — mappable — and marks the payload
// self-verifying (no whole-payload checksum; the payload format carries its
// own). Bump on layout change so stale files quarantine instead of
// misloading.
const (
	fileMagic        = "LABART01"
	fileMagicAligned = "LABART02"
)

// touchInterval throttles the recency mtime touch on Load: restart-time LRU
// reconstruction only needs mtimes to minute-level fidelity, not an
// os.Chtimes syscall per hit.
const touchInterval = time.Minute

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// entry is one resident artifact in the LRU index.
type entry struct {
	path      string
	size      int64
	lastTouch time.Time     // last recency mtime write (throttled)
	elem      *list.Element // position in lru (front = most recent)
}

// Store is the on-disk spill tier rooted at one directory.
type Store struct {
	dir      string
	maxBytes int64 // <= 0: unlimited

	mu      sync.Mutex
	entries map[string]*entry // keyed by file path
	lru     *list.List        // of path strings
	bytes   int64
	files   int64
	// Live-mapping bookkeeping: refs counts open Mappings per path, size
	// remembers the mapped file's accounted size, and pending holds bytes
	// of evicted/quarantined files whose release is deferred until the last
	// reader unmaps (the pages stay resident until then).
	mappedRefs   map[string]int
	mappedSize   map[string]int64
	pendingBytes map[string]int64

	saves, saveErrors, loads, misses, quarantined, evicted atomic.Int64
}

// Open opens (creating if needed) a store rooted at dir with the given byte
// budget (maxBytes <= 0 means unlimited). Existing artifacts are indexed by
// file mtime so eviction order approximates LRU across restarts; leftover
// temporary files from a crashed writer are removed.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifactdisk: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("artifactdisk: %w", err)
	}
	s := &Store{
		dir:          dir,
		maxBytes:     maxBytes,
		entries:      map[string]*entry{},
		lru:          list.New(),
		mappedRefs:   map[string]int{},
		mappedSize:   map[string]int64{},
		pendingBytes: map[string]int64{},
	}
	type found struct {
		path  string
		size  int64
		mtime time.Time
	}
	var all []found
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, ".tmp") {
			os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(path, ".art") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent eviction
		}
		all = append(all, found{path: path, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("artifactdisk: scan %s: %w", dir, err)
	}
	// Oldest first so the LRU front ends up the most recently used. Path is
	// the tie-break: filesystems with 1 s mtime granularity make equal
	// mtimes common, and without a total order the eviction sequence would
	// differ from restart to restart.
	sort.Slice(all, func(i, j int) bool {
		if !all[i].mtime.Equal(all[j].mtime) {
			return all[i].mtime.Before(all[j].mtime)
		}
		return all[i].path < all[j].path
	})
	for _, f := range all {
		e := &entry{path: f.path, size: f.size, lastTouch: f.mtime}
		e.elem = s.lru.PushFront(f.path)
		s.entries[f.path] = e
		s.bytes += f.size
		s.files++
	}
	s.mu.Lock()
	s.evictLocked(nil)
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// pathFor derives the artifact file path: one subdirectory per stage, file
// named by the key's collision-resistant hash. The stage subdirectory is
// cosmetic (the hash covers the full key); unsafe stage strings fall back
// to a generic bucket.
func (s *Store) pathFor(k Key) string {
	h := sha256.New()
	for _, part := range []string{k.Name, k.Input, k.Stage, k.FP} {
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(part)))
		h.Write(lenBuf[:])
		io.WriteString(h, part)
	}
	sub := k.Stage
	if sub == "" || strings.ContainsAny(sub, "/\\.") {
		sub = "other"
	}
	return filepath.Join(s.dir, sub, hex.EncodeToString(h.Sum(nil)[:16])+".art")
}

// Load returns the payload stored under k, or ok=false when the artifact is
// absent, was evicted, or failed verification (in which case the bad file
// has been quarantined and the caller should rebuild).
func (s *Store) Load(k Key) ([]byte, bool) {
	path := s.pathFor(k)
	e, touch, now := s.hit(path)
	if e == nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := readArtifact(path, k)
	if err != nil {
		if os.IsNotExist(err) {
			// Evicted (or removed by another process) between index lookup
			// and read: a plain miss, not corruption.
			s.forget(path)
			s.misses.Add(1)
			return nil, false
		}
		s.quarantinePath(path)
		return nil, false
	}
	if touch {
		os.Chtimes(path, now, now)
	}
	s.loads.Add(1)
	return payload, true
}

// hit records a read hit on path: bumps LRU recency and decides whether the
// on-disk mtime touch is due (at most once per touchInterval per file, so
// restart-time LRU reconstruction sees accesses without a syscall per hit).
func (s *Store) hit(path string) (e *entry, touch bool, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e = s.entries[path]
	if e == nil {
		return nil, false, now
	}
	s.lru.MoveToFront(e.elem)
	now = time.Now()
	if now.Sub(e.lastTouch) >= touchInterval {
		e.lastTouch = now
		touch = true
	}
	return e, touch, now
}

// LoadMapped returns a read-only memory mapping of the artifact stored
// under k, or ok=false when the artifact is absent, held in the unmappable
// v1 container, or the platform cannot map files — callers fall back to
// Load. A file that fails container verification is quarantined, as in
// Load. The caller must Close the mapping when the payload is no longer
// referenced; the store keeps byte accounting for a mapped file alive until
// its last reader closes, even across eviction or quarantine.
func (s *Store) LoadMapped(k Key) (*Mapping, bool) {
	if !mmapSupported {
		return nil, false
	}
	path := s.pathFor(k)
	e, touch, now := s.hit(path)
	if e == nil {
		return nil, false
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.forget(path)
		}
		return nil, false
	}
	//lab:allow(errdiscard: read-only descriptor; a close error cannot lose data already read)
	defer f.Close()
	hdr, err := readHeader(f, k)
	if err != nil {
		s.quarantinePath(path)
		return nil, false
	}
	if !hdr.aligned {
		return nil, false // v1 container: valid but unmappable
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, false
	}
	if fi.Size() != hdr.payloadOff+hdr.payloadLen {
		s.quarantinePath(path)
		return nil, false
	}
	data, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, false // capability miss, not corruption
	}
	if touch {
		os.Chtimes(path, now, now)
	}
	s.mu.Lock()
	s.mappedRefs[path]++
	s.mappedSize[path] = e.size
	s.mu.Unlock()
	s.loads.Add(1)
	return &Mapping{
		s:       s,
		path:    path,
		data:    data,
		payload: data[hdr.payloadOff : hdr.payloadOff+hdr.payloadLen],
	}, true
}

// Mapping is one reader's live memory mapping of an artifact file. The
// payload stays valid until Close; the underlying file may meanwhile be
// evicted or quarantined (on Unix the pages survive the unlink), in which
// case the store defers releasing the file's byte accounting until the last
// mapping closes.
type Mapping struct {
	s       *Store
	path    string
	data    []byte
	payload []byte
	once    sync.Once
}

// Payload returns the mapped artifact payload. The bytes are read-only and
// alias the page cache; writing through them faults.
func (m *Mapping) Payload() []byte { return m.payload }

// Close unmaps the file and releases the reader's reference. After the last
// reference on an evicted or quarantined file closes, its bytes leave the
// store's accounting.
func (m *Mapping) Close() error {
	var err error
	m.once.Do(func() {
		err = munmapFile(m.data)
		s := m.s
		s.mu.Lock()
		s.mappedRefs[m.path]--
		if s.mappedRefs[m.path] <= 0 {
			delete(s.mappedRefs, m.path)
			delete(s.mappedSize, m.path)
			if p, ok := s.pendingBytes[m.path]; ok {
				s.bytes -= p
				delete(s.pendingBytes, m.path)
			}
		}
		s.mu.Unlock()
		m.data, m.payload = nil, nil
	})
	return err
}

// MapSupported reports whether the platform supports LoadMapped.
func MapSupported() bool { return mmapSupported }

// Has reports whether an artifact is resident under k, without touching its
// recency or counting a load or miss. It is a scheduling probe — the
// critical-path planner uses it to cost a stage as a disk load rather than
// a rebuild — so it must not perturb the LRU order the way Load does.
func (s *Store) Has(k Key) bool {
	path := s.pathFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[path] != nil
}

// Quarantine removes the artifact stored under k (if any) and counts it as
// quarantined. Callers use it when a payload that passed the container
// checksum still fails semantic decoding.
func (s *Store) Quarantine(k Key) {
	s.quarantinePath(s.pathFor(k))
}

func (s *Store) quarantinePath(path string) {
	os.Remove(path)
	if s.forget(path) {
		s.quarantined.Add(1)
	}
}

// forget drops path from the index, reporting whether it was present.
func (s *Store) forget(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[path]
	if e == nil {
		return false
	}
	delete(s.entries, path)
	s.lru.Remove(e.elem)
	s.files--
	s.releaseLocked(path, e.size)
	return true
}

// releaseLocked returns size bytes to the budget — immediately when no live
// mapping holds the file, otherwise deferred until the last Mapping closes
// (the mapped pages genuinely stay resident until then).
func (s *Store) releaseLocked(path string, size int64) {
	if s.mappedRefs[path] > 0 {
		s.pendingBytes[path] += size
		return
	}
	s.bytes -= size
}

// Save stores payload under k: written to a temporary file, fsynced, then
// renamed into place so the artifact is never visible half-written. Saving
// an already-present key refreshes its recency and is otherwise a no-op
// (the store is content-addressed — equal keys hold equal payloads).
func (s *Store) Save(k Key, payload []byte) error {
	return s.save(k, payload, false)
}

// SaveAligned stores payload in the page-aligned LABART02 container: the
// payload starts on a 4 KiB boundary of the file, so LoadMapped can hand it
// out page-aligned in memory. The container carries no whole-payload
// checksum — aligned payloads are self-verifying formats (the v2 trace
// layout checks per-chunk CRCs), which keeps both the mapped open and the
// heap fallback from re-hashing the full file.
func (s *Store) SaveAligned(k Key, payload []byte) error {
	return s.save(k, payload, true)
}

func (s *Store) save(k Key, payload []byte, aligned bool) error {
	path := s.pathFor(k)
	s.mu.Lock()
	if e := s.entries[path]; e != nil {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if err := s.writeArtifact(path, k, payload, aligned); err != nil {
		s.saveErrors.Add(1)
		return err
	}
	s.mu.Lock()
	if e := s.entries[path]; e == nil {
		e = &entry{path: path, size: artifactFileSize(k, payload, aligned), lastTouch: time.Now()}
		e.elem = s.lru.PushFront(path)
		s.entries[path] = e
		s.bytes += e.size
		s.files++
		s.evictLocked(e)
	}
	s.mu.Unlock()
	s.saves.Add(1)
	return nil
}

// evictLocked removes least-recently-used artifacts until the store fits
// its byte budget. The just-saved entry keep (if non-nil) is never evicted:
// a single artifact larger than the whole budget stays resident rather than
// thrashing rebuild-evict-rebuild.
func (s *Store) evictLocked(keep *entry) {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 0 {
		back := s.lru.Back()
		path := back.Value.(string)
		e := s.entries[path]
		if keep != nil && e == keep {
			return
		}
		delete(s.entries, path)
		s.lru.Remove(back)
		s.files--
		os.Remove(path)
		s.releaseLocked(path, e.size)
		s.evicted.Add(1)
	}
}

// Stats returns a snapshot of the store's counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	files, bytes := s.files, s.bytes
	mappedFiles := int64(len(s.mappedRefs))
	var mappedBytes int64
	for _, sz := range s.mappedSize {
		mappedBytes += sz
	}
	s.mu.Unlock()
	return Stats{
		Files:       files,
		Bytes:       bytes,
		MappedFiles: mappedFiles,
		MappedBytes: mappedBytes,
		Saves:       s.saves.Load(),
		SaveErrors:  s.saveErrors.Load(),
		Loads:       s.loads.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
		Evicted:     s.evicted.Load(),
	}
}

// ------------------------------------------------------- file container --
//
// Layout: magic(8) | keyLen(u32) | key JSON | payloadLen(u64) |
// crc32c(payload)(u32) | payload. The embedded key guards against hash
// collisions and misdirected files; the checksum guards payload integrity.
//
// The aligned LABART02 variant has identical fields, writes 0 in the
// checksum slot (the payload format is self-verifying), and zero-pads the
// header to the next 4 KiB boundary so the payload is page-aligned in the
// file and mappable page-aligned in memory.

const alignPage = 4096

func headerSize(keyJSON []byte, aligned bool) int64 {
	n := int64(8 + 4 + len(keyJSON) + 8 + 4)
	if aligned {
		n += (alignPage - n%alignPage) % alignPage
	}
	return n
}

func artifactFileSize(k Key, payload []byte, aligned bool) int64 {
	kj, _ := json.Marshal(k)
	return headerSize(kj, aligned) + int64(len(payload))
}

func (s *Store) writeArtifact(path string, k Key, payload []byte, aligned bool) error {
	kj, err := json.Marshal(k)
	if err != nil {
		return fmt.Errorf("artifactdisk: marshal key: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("artifactdisk: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("artifactdisk: %w", err)
	}
	defer func() {
		if tmp != nil {
			//lab:allow(errdiscard: error-path cleanup of a temp file that is about to be removed)
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [12]byte
	magic := fileMagic
	if aligned {
		magic = fileMagicAligned
	}
	if _, err := tmp.WriteString(magic); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(kj)))
	if _, err := tmp.Write(hdr[:4]); err != nil {
		return err
	}
	if _, err := tmp.Write(kj); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(payload)))
	if !aligned {
		binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	}
	if _, err := tmp.Write(hdr[:12]); err != nil {
		return err
	}
	if aligned {
		written := int64(8 + 4 + len(kj) + 12)
		if pad := headerSize(kj, true) - written; pad > 0 {
			if _, err := tmp.Write(make([]byte, pad)); err != nil {
				return err
			}
		}
	}
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	// fsync before publish: after the rename below, the file must never be
	// observable with partial contents, even across a crash.
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Directory sync so the rename itself is durable. A failed sync means the
	// rename may not survive a crash, so it surfaces like any write error; the
	// artifact file itself is already complete and synced.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		syncErr := d.Sync()
		if closeErr := d.Close(); syncErr == nil {
			syncErr = closeErr
		}
		if syncErr != nil {
			return fmt.Errorf("artifactdisk: sync dir: %w", syncErr)
		}
	}
	return nil
}

// artifactHeader is the verified container header of an artifact file.
type artifactHeader struct {
	aligned    bool  // LABART02: payload page-aligned, self-verifying
	payloadOff int64 // file offset of the payload
	payloadLen int64
	crc        uint32 // whole-payload CRC32-C; meaningful only when !aligned
}

// readHeader parses and verifies the container header of either format,
// leaving f positioned at the payload.
func readHeader(f *os.File, want Key) (artifactHeader, error) {
	var h artifactHeader
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return h, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	switch string(magic[:]) {
	case fileMagic:
	case fileMagicAligned:
		h.aligned = true
	default:
		return h, fmt.Errorf("artifactdisk: bad magic %q", magic[:])
	}
	var u32 [4]byte
	if _, err := io.ReadFull(f, u32[:]); err != nil {
		return h, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	keyLen := binary.LittleEndian.Uint32(u32[:])
	if keyLen > 1<<20 {
		return h, fmt.Errorf("artifactdisk: implausible key length %d", keyLen)
	}
	kj := make([]byte, keyLen)
	if _, err := io.ReadFull(f, kj); err != nil {
		return h, fmt.Errorf("artifactdisk: short key: %w", err)
	}
	var got Key
	if err := json.Unmarshal(kj, &got); err != nil {
		return h, fmt.Errorf("artifactdisk: corrupt key: %w", err)
	}
	if got != want {
		return h, fmt.Errorf("artifactdisk: key mismatch: file holds %+v", got)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(f, u64[:]); err != nil {
		return h, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	payloadLen := binary.LittleEndian.Uint64(u64[:])
	if payloadLen > 1<<40 {
		return h, fmt.Errorf("artifactdisk: implausible payload length %d", payloadLen)
	}
	h.payloadLen = int64(payloadLen)
	if _, err := io.ReadFull(f, u32[:]); err != nil {
		return h, fmt.Errorf("artifactdisk: short header: %w", err)
	}
	h.crc = binary.LittleEndian.Uint32(u32[:])
	h.payloadOff = headerSize(kj, h.aligned)
	if h.aligned {
		if _, err := f.Seek(h.payloadOff, io.SeekStart); err != nil {
			return h, fmt.Errorf("artifactdisk: seek payload: %w", err)
		}
	}
	return h, nil
}

func readArtifact(path string, want Key) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lab:allow(errdiscard: read-only descriptor; a close error cannot lose data already read)
	defer f.Close()
	h, err := readHeader(f, want)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, h.payloadLen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("artifactdisk: short payload: %w", err)
	}
	var one [1]byte
	if extra, err := f.Read(one[:]); err != io.EOF || extra != 0 {
		return nil, errors.New("artifactdisk: trailing bytes after payload")
	}
	// Aligned payloads are self-verifying (per-chunk CRCs inside the
	// payload format); re-hashing the whole file here would double the cost
	// of the heap fallback for no added integrity.
	if !h.aligned {
		if crc := crc32.Checksum(payload, crcTable); crc != h.crc {
			return nil, fmt.Errorf("artifactdisk: checksum mismatch (%08x != %08x)", crc, h.crc)
		}
	}
	return payload, nil
}
