//go:build !unix

package artifactdisk

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("artifactdisk: memory mapping unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
