package artifactdisk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
	"unsafe"
)

// checkPageAligned verifies the mapped payload starts on a page boundary in
// memory — the property zero-copy column aliasing relies on.
func checkPageAligned(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("empty payload")
	}
	if addr := uintptr(unsafe.Pointer(unsafe.SliceData(b))); addr%4096 != 0 {
		return fmt.Errorf("payload base %#x not page-aligned", addr)
	}
	return nil
}

func openTestStore(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveAlignedLoadMappedRoundTrip(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	s := openTestStore(t, t.TempDir(), 0)
	k := testKey(0)
	payload := bytes.Repeat([]byte("mappable"), 1000)
	if _, ok := s.LoadMapped(k); ok {
		t.Fatal("mapped load before save succeeded")
	}
	if err := s.SaveAligned(k, payload); err != nil {
		t.Fatal(err)
	}
	m, ok := s.LoadMapped(k)
	if !ok {
		t.Fatal("mapped load after aligned save missed")
	}
	if !bytes.Equal(m.Payload(), payload) {
		t.Fatal("mapped payload diverged")
	}
	// The payload must be page-aligned in memory — the contract MapBytes
	// aliasing depends on.
	if err := checkPageAligned(m.Payload()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MappedFiles != 1 || st.MappedBytes == 0 {
		t.Fatalf("mapped stats %+v", st)
	}
	// The heap path reads the same payload from the aligned container.
	heap, ok := s.Load(k)
	if !ok {
		t.Fatal("heap load of aligned container missed")
	}
	if !bytes.Equal(heap, payload) {
		t.Fatal("heap payload of aligned container diverged")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if st := s.Stats(); st.MappedFiles != 0 || st.MappedBytes != 0 {
		t.Fatalf("stats after close %+v", st)
	}
}

func TestLoadMappedV1ContainerFallsBack(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	s := openTestStore(t, t.TempDir(), 0)
	k := testKey(0)
	if err := s.Save(k, []byte("legacy packed container")); err != nil {
		t.Fatal(err)
	}
	// A v1 container is valid but unmappable: LoadMapped declines without
	// quarantining, and the heap path still serves it.
	if _, ok := s.LoadMapped(k); ok {
		t.Fatal("LoadMapped served a v1 container")
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("v1 fallback quarantined: %+v", st)
	}
	if _, ok := s.Load(k); !ok {
		t.Fatal("heap load of v1 container missed")
	}
}

func TestLoadMappedCorruptContainerQuarantines(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	s := openTestStore(t, t.TempDir(), 0)
	k := testKey(0)
	if err := s.SaveAligned(k, bytes.Repeat([]byte("x"), 5000)); err != nil {
		t.Fatal(err)
	}
	path := s.pathFor(k)

	// Flip a magic byte: container verification fails, file quarantines.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadMapped(k); ok {
		t.Fatal("LoadMapped served a corrupt container")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Files != 0 {
		t.Fatalf("stats after corrupt mapped load %+v", st)
	}

	// Truncated tail: size disagrees with the header, quarantine again.
	if err := s.SaveAligned(k, bytes.Repeat([]byte("y"), 5000)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 4100); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadMapped(k); ok {
		t.Fatal("LoadMapped served a truncated container")
	}
	if st := s.Stats(); st.Quarantined != 2 {
		t.Fatalf("stats after truncated mapped load %+v", st)
	}
}

func TestEvictionDefersBytesUntilUnmap(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	s := openTestStore(t, t.TempDir(), 0)
	k := testKey(0)
	payload := bytes.Repeat([]byte("pinned"), 2000)
	if err := s.SaveAligned(k, payload); err != nil {
		t.Fatal(err)
	}
	m, ok := s.LoadMapped(k)
	if !ok {
		t.Fatal("mapped load missed")
	}
	before := s.Stats()

	// Quarantine while mapped: the file and index entry go, but the bytes
	// stay accounted (the pages are still resident for the reader).
	s.Quarantine(k)
	st := s.Stats()
	if st.Files != 0 || st.Quarantined != 1 {
		t.Fatalf("stats after quarantine of mapped file %+v", st)
	}
	if st.Bytes != before.Bytes {
		t.Fatalf("bytes released early: %d -> %d", before.Bytes, st.Bytes)
	}
	if st.MappedFiles != 1 {
		t.Fatalf("mapped file count dropped early: %+v", st)
	}
	// The reader's view survives the unlink.
	if !bytes.Equal(m.Payload(), payload) {
		t.Fatal("mapped payload diverged after quarantine")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes != 0 || st.MappedFiles != 0 || st.MappedBytes != 0 {
		t.Fatalf("stats after last unmap %+v", st)
	}
}

func TestEvictionOfMappedFileDefersBytes(t *testing.T) {
	if !MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	dir := t.TempDir()
	s := openTestStore(t, dir, 0)
	kOld := testKey(0)
	payload := bytes.Repeat([]byte("z"), 9000)
	if err := s.SaveAligned(kOld, payload); err != nil {
		t.Fatal(err)
	}
	m, ok := s.LoadMapped(kOld)
	if !ok {
		t.Fatal("mapped load missed")
	}
	oldSize := s.Stats().Bytes

	// Shrink the budget below the resident size by saving into a store
	// whose budget the mapped file already exceeds: reopen with a small
	// budget is not possible while holding s, so emulate by direct evict —
	// save a second artifact through a budgeted store view.
	s.maxBytes = oldSize / 2
	kNew := testKey(1)
	if err := s.SaveAligned(kNew, payload); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evicted == 0 {
		t.Fatalf("expected eviction under budget pressure: %+v", st)
	}
	// The mapped file's bytes are still accounted even though evicted.
	if st.Bytes < oldSize {
		t.Fatalf("evicted mapped bytes released early: %+v (old size %d)", st, oldSize)
	}
	if !bytes.Equal(m.Payload(), payload) {
		t.Fatal("mapped payload diverged after eviction")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes >= oldSize+oldSize/2 {
		t.Fatalf("bytes not released after unmap: %+v", st)
	}
}

// TestOpenLRUTieBreakDeterministic is the regression test for the restart
// LRU rebuild: files sharing one mtime (1 s filesystem granularity) must
// still evict in a deterministic order — by path — across restarts.
func TestOpenLRUTieBreakDeterministic(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 0)
	var keys []Key
	var paths []string
	for i := byte(0); i < 4; i++ {
		k := testKey(i)
		if err := s.Save(k, bytes.Repeat([]byte{i + 1}, 100)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		paths = append(paths, s.pathFor(k))
	}
	// Force one shared mtime, as a coarse-granularity filesystem would.
	stamp := time.Now().Add(-time.Hour).Truncate(time.Second)
	for _, p := range paths {
		if err := os.Chtimes(p, stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	one := artifactFileSize(keys[0], bytes.Repeat([]byte{1}, 100), false)

	survivors := func() map[string]bool {
		t.Helper()
		// Budget for two artifacts: reopening must evict the same two
		// every time.
		s2 := openTestStore(t, dir, 2*one)
		got := map[string]bool{}
		for i, k := range keys {
			if s2.Has(k) {
				got[filepath.Base(paths[i])] = true
			}
		}
		if len(got) != 2 {
			t.Fatalf("survivors %v, want 2", got)
		}
		return got
	}

	first := survivors()
	// Restore the evicted files and the shared mtime, then reopen again:
	// the same set must survive.
	for i, k := range keys {
		if err := s.writeArtifact(paths[i], k, bytes.Repeat([]byte{byte(i) + 1}, 100), false); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range paths {
		if err := os.Chtimes(p, stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	second := survivors()
	for p := range first {
		if !second[p] {
			t.Fatalf("eviction order not deterministic: first %v, second %v", first, second)
		}
	}
	// With a path tie-break and oldest-first eviction, the two
	// lexicographically largest paths survive.
	var sorted []string
	for i := range paths {
		sorted = append(sorted, filepath.Base(paths[i]))
	}
	for p := range first {
		larger := 0
		for _, q := range sorted {
			if q > p {
				larger++
			}
		}
		if larger > 1 {
			t.Fatalf("survivor %q is not among the two largest paths %v", p, sorted)
		}
	}
}

// TestLoadTouchThrottle verifies the recency mtime write happens at most
// once per touchInterval per file: a Load right after another must not
// refresh the file's mtime again.
func TestLoadTouchThrottle(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 0)
	k := testKey(0)
	if err := s.Save(k, []byte("touch me once")); err != nil {
		t.Fatal(err)
	}
	path := s.pathFor(k)
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	// Reopen: lastTouch seeds from the stale mtime, so the first load is
	// due a touch.
	s2 := openTestStore(t, dir, 0)
	if _, ok := s2.Load(k); !ok {
		t.Fatal("load missed")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.ModTime().Before(old.Add(time.Hour)) {
		t.Fatal("first load after reopen did not touch the file")
	}

	// Now roll the mtime back again without telling the store: a second
	// load inside the throttle window must NOT touch.
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Load(k); !ok {
		t.Fatal("second load missed")
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.ModTime().After(old.Add(time.Minute)) {
		t.Fatalf("second load touched the file inside the throttle window: mtime %v", fi.ModTime())
	}
}
