// Package metrics provides the derived measures the paper reports: relative
// improvements, energy-delay products, and geometric means across
// benchmarks.
package metrics

import "math"

// ImprovementPct returns the percent reduction of value relative to base:
// positive means "improved" (smaller), as in the paper's "%savings" plots.
func ImprovementPct(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - value) / base
}

// SpeedupPct returns the percent IPC/performance gain going from base cycles
// to value cycles (positive = faster), the paper's "%IPC gains".
func SpeedupPct(baseCycles, newCycles float64) float64 {
	if newCycles == 0 {
		return 0
	}
	return 100 * (baseCycles/newCycles - 1)
}

// ED returns the energy-delay product.
func ED(energy, delay float64) float64 { return energy * delay }

// ED2 returns the energy-delay² product.
func ED2(energy, delay float64) float64 { return energy * delay * delay }

// Composite returns the geometric composite L^w · E^(1−w) used by the
// composite advantage (equation C1).
func Composite(w, latency, energy float64) float64 {
	if latency <= 0 || energy <= 0 {
		return 0
	}
	return math.Pow(latency, w) * math.Pow(energy, 1-w)
}

// GMeanPct returns the geometric-mean percent improvement of a set of
// percent improvements (the paper's GMean rows). Percentages are composed
// multiplicatively: gmean over ratios (1 + p/100), converted back.
func GMeanPct(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	logSum := 0.0
	for _, p := range pcts {
		r := 1 + p/100
		if r <= 0 {
			r = 1e-6 // a ≥100% regression; clamp to keep the mean defined
		}
		logSum += math.Log(r)
	}
	return 100 * (math.Exp(logSum/float64(len(pcts))) - 1)
}

// Ratio returns a/b, or 0 when b is 0 (validation-table safety).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
