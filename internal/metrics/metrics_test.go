package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(100, 90); got != 10 {
		t.Errorf("ImprovementPct = %v, want 10", got)
	}
	if got := ImprovementPct(100, 110); got != -10 {
		t.Errorf("regression = %v, want -10", got)
	}
	if ImprovementPct(0, 5) != 0 {
		t.Error("zero base must yield 0")
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(120, 100); math.Abs(got-20) > 1e-9 {
		t.Errorf("speedup = %v, want 20", got)
	}
	if got := SpeedupPct(100, 125); math.Abs(got+20) > 1e-9 {
		t.Errorf("slowdown = %v, want -20", got)
	}
	if SpeedupPct(100, 0) != 0 {
		t.Error("zero cycles must yield 0")
	}
}

func TestEDProducts(t *testing.T) {
	if ED(3, 4) != 12 {
		t.Error("ED wrong")
	}
	if ED2(3, 4) != 48 {
		t.Error("ED2 wrong")
	}
}

func TestComposite(t *testing.T) {
	if got := Composite(1, 7, 9); got != 7 {
		t.Errorf("W=1 composite = %v, want 7", got)
	}
	if got := Composite(0, 7, 9); got != 9 {
		t.Errorf("W=0 composite = %v, want 9", got)
	}
	if got := Composite(0.5, 4, 9); math.Abs(got-6) > 1e-9 {
		t.Errorf("W=0.5 composite = %v, want 6", got)
	}
	if Composite(0.5, 0, 9) != 0 {
		t.Error("degenerate composite must be 0")
	}
}

func TestGMeanPct(t *testing.T) {
	if got := GMeanPct([]float64{10, 10, 10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("uniform gmean = %v, want 10", got)
	}
	// +100% and -50% compose to zero net.
	if got := GMeanPct([]float64{100, -50}); math.Abs(got) > 1e-9 {
		t.Errorf("gmean = %v, want 0", got)
	}
	if GMeanPct(nil) != 0 {
		t.Error("empty gmean must be 0")
	}
	// A catastrophic -100% stays defined.
	if got := GMeanPct([]float64{-100}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Error("gmean must stay finite")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if Ratio(6, 0) != 0 {
		t.Error("zero denominator must yield 0")
	}
}

// Property: gmean of identical percentages is that percentage.
func TestGMeanIdentityProperty(t *testing.T) {
	check := func(p uint8, n uint8) bool {
		pct := float64(p%80) + 1
		count := int(n%10) + 1
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = pct
		}
		return math.Abs(GMeanPct(xs)-pct) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: speedup and improvement agree in sign.
func TestSignAgreementProperty(t *testing.T) {
	check := func(b, v uint16) bool {
		base, val := float64(b)+1, float64(v)+1
		s := SpeedupPct(base, val)
		i := ImprovementPct(base, val)
		return (s >= 0) == (i >= 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
