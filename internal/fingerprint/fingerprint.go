// Package fingerprint derives short content fingerprints from plain
// configuration values. The staged preparation pipeline keys every artifact
// on the fingerprint of exactly the configuration fields the producing stage
// reads (plus its upstream artifacts' fingerprints), so mutating a knob a
// stage never looks at cannot invalidate its cache entries.
package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// JSON fingerprints a tree of plain values (a stage-config struct) by
// hashing its canonical JSON encoding. An unmarshalable value — a NaN float
// smuggled in by a sweep mutation, a function-typed field on a generated
// workload spec — yields an error rather than a panic: a silent fallback
// would alias distinct configurations, and a panic from deep inside the
// artifact store would kill a whole sweep.
func JSON(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("fingerprint: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8]), nil
}

// Chain combines a stage's own config fingerprint with the fingerprints of
// its upstream artifacts, making the result content-addressed through the
// whole dependency chain: a change anywhere upstream re-fingerprints every
// stage built on top of it, and nothing else.
func Chain(own string, upstream ...string) string {
	h := sha256.New()
	h.Write([]byte(own))
	for _, up := range upstream {
		h.Write([]byte{0}) // unambiguous separator
		h.Write([]byte(up))
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
