package fingerprint

import (
	"math"
	"strings"
	"testing"
)

func TestJSONStable(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	a, err := JSON(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSON(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal values fingerprint differently: %s vs %s", a, b)
	}
	c, err := JSON(cfg{2, "x"})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct values alias")
	}
}

// TestJSONErrorInsteadOfPanic pins the panic-path fix: unmarshalable values
// — NaN floats from a bad sweep mutation, function- or channel-typed fields
// — report an error instead of killing the caller from inside the artifact
// store.
func TestJSONErrorInsteadOfPanic(t *testing.T) {
	cases := []any{
		math.NaN(),
		math.Inf(1),
		struct{ F func() }{},
		make(chan int),
		struct{ V float64 }{math.NaN()},
	}
	for _, v := range cases {
		fp, err := JSON(v)
		if err == nil {
			t.Errorf("JSON(%T) = %q, want error", v, fp)
		} else if !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("error %v not attributed to fingerprinting", err)
		}
	}
}

func TestChainSeparatesUpstream(t *testing.T) {
	if Chain("a", "b", "c") == Chain("a", "bc") || Chain("a", "b") == Chain("ab") {
		t.Error("chain boundaries ambiguous")
	}
	if Chain("a", "b") != Chain("a", "b") {
		t.Error("chain not deterministic")
	}
	if Chain("a") == Chain("b") {
		t.Error("distinct own fingerprints alias")
	}
}
