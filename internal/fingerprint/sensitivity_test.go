package fingerprint_test

// Fingerprint sensitivity: every field of every stage Config struct must
// move the fingerprint when it changes, or two distinct configurations
// would share one content-addressed cache key and the artifact store would
// serve stale results. The test enumerates the fields by reflection —
// adding a field to any config automatically extends the test — and
// complements labvet's static fpcover analyzer, which proves each field
// reaches Fingerprint(); this proves the encoding actually distinguishes it.

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/critpath"
	"repro/internal/energy"
	"repro/internal/profile"
	"repro/internal/program/gen"
	"repro/internal/pthsel"
	"repro/internal/slicer"
)

type fingerprinter interface {
	Fingerprint() (string, error)
}

// leaf is one mutable scalar field, addressed by its index chain through
// nested structs.
type leaf struct {
	path  string
	index []int
}

func leaves(t *testing.T, typ reflect.Type, prefix string, idx []int) []leaf {
	t.Helper()
	var out []leaf
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		ix := append(append([]int{}, idx...), i)
		if !f.IsExported() {
			t.Fatalf("%s%s: unexported config field; the whole-value JSON fingerprint would skip it", prefix, f.Name)
		}
		if f.Type.Kind() == reflect.Struct {
			out = append(out, leaves(t, f.Type, prefix+f.Name+".", ix)...)
			continue
		}
		out = append(out, leaf{path: prefix + f.Name, index: ix})
	}
	return out
}

// mutate perturbs one scalar field in place. Deltas are chosen to survive
// normalization (gen.Spec rounds WorkingSet to a power of two and maps zero
// values to family defaults, so baselines below use nonzero, non-default
// values and mutations only move away from them).
func mutate(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		t.Fatalf("%s: unsupported config field kind %s; extend the sensitivity test", path, v.Kind())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cases := []struct {
		name string
		cfg  fingerprinter
	}{
		{"slicer.Config", slicer.DefaultConfig()},
		{"profile.Config", profile.Config{
			L1D:           cache.Config{SizeBytes: 16 << 10, Ways: 2, BlockBytes: 64, HitLatency: 2},
			L2:            cache.Config{SizeBytes: 256 << 10, Ways: 4, BlockBytes: 64, HitLatency: 12},
			StrideEntries: 16,
			StrideDegree:  2,
		}},
		{"critpath.Config", critpath.Config{
			Width: 6, ROBSize: 128, MispredPen: 10,
			LatL1: 2, LatL2: 14, LatMem: 214, BusOcc: 16,
		}},
		{"pthsel.DeriveConfig", pthsel.DeriveConfig{
			BWSEQproc: 6, MissLat: 214,
			LatL1: 2, LatL2: 14, LatMem: 214,
			Energy:    energy.DefaultParams(),
			MinDCptcm: 32,
		}},
		{"gen.Spec", gen.Spec{
			Family: gen.PointerChase, Seed: 3, WorkingSet: 1 << 14,
			Depth: 100, ProblemLoads: 2, BranchMix: 30, ILP: 3,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := tc.cfg.Fingerprint()
			if err != nil {
				t.Fatalf("baseline fingerprint: %v", err)
			}
			again, err := tc.cfg.Fingerprint()
			if err != nil || again != base {
				t.Fatalf("fingerprint not stable: %q vs %q (err %v)", base, again, err)
			}
			typ := reflect.TypeOf(tc.cfg)
			for _, lf := range leaves(t, typ, "", nil) {
				cp := reflect.New(typ).Elem()
				cp.Set(reflect.ValueOf(tc.cfg))
				mutate(t, lf.path, cp.FieldByIndex(lf.index))
				got, err := cp.Interface().(fingerprinter).Fingerprint()
				if err != nil {
					t.Errorf("%s mutated: fingerprint error: %v", lf.path, err)
					continue
				}
				if got == base {
					t.Errorf("mutating %s did not change the fingerprint %q; the field is not (or not distinguishably) encoded", lf.path, base)
				}
			}
		})
	}
}
