package critpath

import (
	"testing"
	"testing/quick"
)

// Property: GainAt is monotone non-decreasing in tolerated latency for any
// monotone curve, and bounded by the last sample.
func TestGainAtMonotoneProperty(t *testing.T) {
	check := func(g0, g1, g2, g3 uint16, t1, t2 uint16) bool {
		// Build a monotone curve from arbitrary deltas.
		c := Curve{MissLat: 200}
		c.Gain[0] = float64(g0 % 100)
		c.Gain[1] = c.Gain[0] + float64(g1%100)
		c.Gain[2] = c.Gain[1] + float64(g2%100)
		c.Gain[3] = c.Gain[2] + float64(g3%100)
		a, b := float64(t1%500), float64(t2%500)
		if a > b {
			a, b = b, a
		}
		ga, gb := c.GainAt(a), c.GainAt(b)
		return ga <= gb+1e-9 && gb <= c.Gain[3]+1e-9 && ga >= -1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: the flat curve dominates itself proportionally — GainAt scales
// linearly with tolerated latency up to saturation.
func TestFlatCurveLinearityProperty(t *testing.T) {
	check := func(lat uint16, tol uint16) bool {
		missLat := float64(lat%400) + 10
		c := FlatCurve(missLat)
		x := float64(tol % 1000)
		want := x
		if want > missLat {
			want = missLat
		}
		got := c.GainAt(x)
		return got > want-1e-6 && got < want+1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
