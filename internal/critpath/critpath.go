// Package critpath implements the Fields-style critical-path model the
// paper's first PTHSEL extension is built on (§4.1): a dependence-graph
// model of execution over the dynamic trace with edges for in-order
// dispatch bandwidth, branch mispredictions, the finite ROB, dataflow, and
// in-order commit bandwidth.
//
// The analyzer provides three services:
//
//  1. an estimated unoptimized execution time (the L0 the composite model
//     needs),
//  2. a five-category breakdown of that time (the paper's Figure 2 stack),
//  3. per-problem-load cost curves: the latency-reduction to execution-time-
//     reduction function sampled at 25/50/75/100% tolerated latency, computed
//     as the average of a pessimistic pass (only this load's misses
//     shortened) and an optimistic pass (all other loads' L2 misses resolved)
//     to approximate interaction costs — the paper's §4.1 worked example.
package critpath

import (
	"repro/internal/cache"
	"repro/internal/fingerprint"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Config parameterizes the model. Latencies are end-to-end load-use times
// per hierarchy level.
type Config struct {
	Width      int // dispatch/commit bandwidth per cycle
	ROBSize    int
	MispredPen int // cycles from branch execute to useful re-dispatch
	LatL1      int // load-to-use, L1 hit
	LatL2      int // load-to-use, L2 hit
	LatMem     int // load-to-use, memory
	BusOcc     int // memory-bus occupancy per block transfer (bandwidth edges)
}

// DefaultConfig derives the model from the simulator's default processor
// and hierarchy configuration.
func DefaultConfig(h cache.HierConfig) Config {
	return Config{
		Width:      6,
		ROBSize:    128,
		MispredPen: 10,
		LatL1:      h.L1D.HitLatency,
		LatL2:      h.L1D.HitLatency + h.L2.HitLatency,
		LatMem:     h.L1D.HitLatency + h.L2.HitLatency + h.MemLatency,
		BusOcc:     (h.L2.BlockBytes / h.BusBytes) * h.BusFreqDiv,
	}
}

// Fingerprint returns the content fingerprint of the criticality stage
// config — the complete set of knobs the analyzer reads beyond its input
// artifacts, so curve caches are invalidated by exactly these fields.
func (c Config) Fingerprint() (string, error) { return fingerprint.JSON(c) }

// Curve is the latency-reduction → execution-time-reduction function for one
// static problem load, sampled at 25%, 50%, 75% and 100% of the full miss
// latency and linearly interpolated between samples (the paper computes only
// these four points for tractability).
type Curve struct {
	MissLat float64    // full per-miss latency being tolerated (cycles)
	Gain    [4]float64 // per-miss execution-time gain at 25/50/75/100%
}

// GainAt returns the per-miss execution-time reduction for tolerating the
// given number of cycles of the load's latency, interpolating the sampled
// curve. Tolerated latencies beyond the full miss latency saturate.
func (c Curve) GainAt(tolerated float64) float64 {
	if tolerated <= 0 || c.MissLat <= 0 {
		return 0
	}
	f := tolerated / c.MissLat
	if f >= 1 {
		return c.Gain[3]
	}
	// Piecewise-linear through (0,0), (.25,G0), (.5,G1), (.75,G2), (1,G3).
	seg := int(f / 0.25)
	lo := 0.0
	if seg > 0 {
		lo = c.Gain[seg-1]
	}
	hi := c.Gain[seg]
	frac := (f - 0.25*float64(seg)) / 0.25
	return lo + (hi-lo)*frac
}

// FlatCurve returns the original PTHSEL cost model: one cycle of tolerated
// latency is one cycle of execution-time reduction (the identity, saturating
// at the full miss latency).
func FlatCurve(missLat float64) Curve {
	return Curve{MissLat: missLat, Gain: [4]float64{0.25 * missLat, 0.5 * missLat, 0.75 * missLat, missLat}}
}

// Analyzer owns the model state for one trace.
type Analyzer struct {
	cfg     Config
	tr      *trace.Trace
	prof    *profile.Profile
	levels  []uint8 // per dynamic instruction: load service level
	mispred []bool  // per dynamic instruction: branch mispredicted in model

	baseline  int64
	breakdown [5]int64 // indexed by cpu.StallCategory order: mem,L2,exec,commit,fetch
}

// New builds an analyzer. The profile must have been collected from the same
// trace (it supplies per-load service levels); mispredictions are modelled
// with a simple 2-bit/gshare hybrid like the simulator's.
func New(tr *trace.Trace, prof *profile.Profile, cfg Config) *Analyzer {
	a := &Analyzer{cfg: cfg, tr: tr, prof: prof}
	a.levels = prof.Levels
	a.mispred = modelMispredicts(tr)
	a.baseline, a.breakdown = a.pass(passConfig{attribute: true, reducePC: -1})
	return a
}

// Baseline returns the model-estimated unoptimized execution time.
func (a *Analyzer) Baseline() int64 { return a.baseline }

// Breakdown returns estimated cycles per category: mem, L2, exec, commit,
// fetch — the paper's Figure 2 stack order.
func (a *Analyzer) Breakdown() [5]int64 { return a.breakdown }

// passConfig controls one longest-path computation.
type passConfig struct {
	attribute bool
	// reducePC, when ≥ 0, scales the miss latency of that static load's L2
	// misses by (1-reduceFrac).
	reducePC   int32
	reduceFrac float64
	// resolveOthers treats every other load's L2/memory misses as L2 hits
	// (the optimistic interaction-cost estimate).
	resolveOthers bool
}

// latency returns the modelled load-to-use latency of instruction i and
// whether the access is still a demand memory access (bus-bound at use
// time). Covered/resolved misses are served from the L2 at use time — their
// prefetch consumed bus bandwidth earlier — so they are not demand-bound.
func (a *Analyzer) latency(i int, in isa.Inst, pc passConfig) (lat float64, demandMem bool) {
	if !in.IsLoad() {
		if in.IsALU() {
			return float64(in.ExecLatency()), false
		}
		return 1, false
	}
	lvl := a.levels[i]
	base := float64(a.cfg.LatL1)
	switch lvl {
	case profile.LvlL2:
		base = float64(a.cfg.LatL2)
	case profile.LvlMem:
		base = float64(a.cfg.LatMem)
	}
	isTargetMiss := pc.reducePC >= 0 && a.tr.PC(i) == pc.reducePC && lvl == profile.LvlMem
	if isTargetMiss {
		miss := base - float64(a.cfg.LatL1)
		// A partially-covered miss still completes through memory.
		return float64(a.cfg.LatL1) + miss*(1-pc.reduceFrac), pc.reduceFrac < 1
	}
	if pc.resolveOthers && lvl == profile.LvlMem {
		return float64(a.cfg.LatL2), false // resolved: found in the L2
	}
	return base, lvl == profile.LvlMem
}

// pass runs the longest-path DP and returns total time and, if requested,
// the per-category attribution of the critical path.
func (a *Analyzer) pass(pc passConfig) (int64, [5]int64) {
	n := a.tr.Len()
	if n == 0 {
		return 0, [5]int64{}
	}
	cfg := a.cfg
	// Node times.
	D := make([]float64, n)
	E := make([]float64, n)
	C := make([]float64, n)
	// Last-arriving edge codes for attribution.
	const (
		fromDOrder = iota // D[i-1] / bandwidth
		fromMispred
		fromROB
		fromDSelf // E determined by own dispatch
		fromProd1
		fromProd2
		fromE // C determined by own execute
		fromCOrder
	)
	var eFrom, cFrom []uint8
	var dFrom []uint8
	if pc.attribute {
		dFrom = make([]uint8, n)
		eFrom = make([]uint8, n)
		cFrom = make([]uint8, n)
	}

	lastMispred := -1
	busFree := 0.0
	busOcc := float64(a.cfg.BusOcc)
	// The longest-path DP is a pure forward scan; the cursor streams the PC
	// and producer columns chunk by chunk.
	for cu := a.tr.Cursor(); cu.Next(); {
		i := cu.Index()
		in := a.tr.Prog.Insts[cu.PC()]

		// Dispatch.
		d := 0.0
		from := uint8(fromDOrder)
		if i > 0 && D[i-1] > d {
			d = D[i-1]
		}
		if i >= cfg.Width {
			if v := D[i-cfg.Width] + 1; v > d {
				d = v
			}
		}
		if lastMispred >= 0 {
			if v := E[lastMispred] + float64(cfg.MispredPen); v > d {
				d = v
				from = fromMispred
			}
		}
		if i >= cfg.ROBSize {
			if v := C[i-cfg.ROBSize]; v > d {
				d = v
				from = fromROB
			}
		}
		D[i] = d
		if pc.attribute {
			dFrom[i] = from
		}

		// Execute.
		lat, demandMem := a.latency(i, in, pc)
		base := d
		efrom := uint8(fromDSelf)
		if p1 := cu.Prod1(); p1 != trace.NoProducer {
			if v := E[p1]; v > base {
				base = v
				efrom = fromProd1
			}
		}
		if p2 := cu.Prod2(); p2 != trace.NoProducer {
			if v := E[p2]; v > base {
				base = v
				efrom = fromProd2
			}
		}
		E[i] = base + lat
		// Memory-bus bandwidth: every original L2 miss occupies a bus slot
		// (covered misses via their earlier prefetch), and a demand miss
		// cannot complete before its slot plus the memory latency.
		if a.levels[i] == profile.LvlMem && busOcc > 0 {
			slot := busFree
			if base > slot {
				slot = base
			}
			busFree = slot + busOcc
			if demandMem {
				if v := slot + lat; v > E[i] {
					E[i] = v
				}
			}
		}
		if pc.attribute {
			eFrom[i] = efrom
		}

		// Commit.
		c := E[i] + 1
		cfrom := uint8(fromE)
		if i > 0 && C[i-1] > c {
			c = C[i-1]
			cfrom = fromCOrder
		}
		if i >= cfg.Width {
			if v := C[i-cfg.Width] + 1; v > c {
				c = v
				cfrom = fromCOrder
			}
		}
		C[i] = c
		if pc.attribute {
			cFrom[i] = cfrom
		}

		if in.IsBranch() && a.mispred[i] {
			lastMispred = i
		}
	}
	total := int64(C[n-1] + 0.5)
	var bd [5]int64
	if pc.attribute {
		bd = a.attribute(D, E, C, dFrom, eFrom, cFrom, pc)
	}
	return total, bd
}

// attribute walks the critical path backward from the last commit,
// assigning each edge's time to a category: 0=mem, 1=L2, 2=exec, 3=commit,
// 4=fetch (matching the simulator's StallCategory order).
func (a *Analyzer) attribute(D, E, C []float64, dFrom, eFrom, cFrom []uint8, pc passConfig) [5]int64 {
	var bd [5]float64
	const (
		fromDOrder = iota
		fromMispred
		fromROB
		fromDSelf
		fromProd1
		fromProd2
		fromE
		fromCOrder
	)
	type node struct {
		kind uint8 // 0=D,1=E,2=C
		i    int
	}
	cur := node{2, a.tr.Len() - 1}
	curT := C[cur.i]
	for {
		var next node
		var nextT float64
		var cat int
		switch cur.kind {
		case 2: // commit node
			if cFrom[cur.i] == fromCOrder {
				if cur.i == 0 {
					bd[3] += curT
					goto done
				}
				next = node{2, cur.i - 1}
				nextT = C[cur.i-1]
				cat = 3 // commit
			} else {
				next = node{1, cur.i}
				nextT = E[cur.i]
				cat = 3 // the E->C edge is commit overhead (1 cycle)
			}
		case 1: // execute node
			in := a.tr.Prog.Insts[a.tr.PC(cur.i)]
			switch {
			case in.IsLoad() && a.levels[cur.i] == profile.LvlMem:
				cat = 0
			case in.IsLoad() && a.levels[cur.i] == profile.LvlL2:
				cat = 1
			default:
				cat = 2
			}
			switch eFrom[cur.i] {
			case fromProd1:
				next = node{1, int(a.tr.Prod1(cur.i))}
				nextT = E[next.i]
			case fromProd2:
				next = node{1, int(a.tr.Prod2(cur.i))}
				nextT = E[next.i]
			default:
				next = node{0, cur.i}
				nextT = D[cur.i]
			}
		default: // dispatch node
			// Fetch bandwidth, mispredict refill, and the finite window all
			// fold into the fetch bar, as in the paper.
			cat = 4
			if cur.i == 0 {
				bd[4] += curT
				goto done
			}
			switch dFrom[cur.i] {
			case fromROB:
				next = node{2, cur.i - a.cfg.ROBSize}
				nextT = C[next.i]
			default:
				next = node{0, cur.i - 1}
				nextT = D[next.i]
			}
		}
		bd[cat] += curT - nextT
		cur, curT = next, nextT
		if cur.kind == 0 && cur.i == 0 {
			bd[4] += curT
			break
		}
		if curT <= 0 {
			break
		}
	}
done:
	var out [5]int64
	for i := range bd {
		out[i] = int64(bd[i] + 0.5)
	}
	return out
}

// CostCurve computes the per-miss cost curve for the given static problem
// load: the average of the pessimistic estimate (only this load shortened)
// and the optimistic one (all other misses resolved), per §4.1.
func (a *Analyzer) CostCurve(pc int32) Curve {
	ls := a.prof.Loads[pc]
	missLat := float64(a.cfg.LatMem - a.cfg.LatL1)
	curve := Curve{MissLat: missLat}
	if ls == nil || ls.L2Misses == 0 {
		return curve
	}
	nMiss := float64(ls.L2Misses)

	pessBase := a.baseline
	// Optimistic baseline: all *other* loads' misses resolved, this load's
	// misses untouched (reducePC exempts the target from resolution and a
	// zero fraction leaves its latency intact).
	optBase, _ := a.pass(passConfig{reducePC: pc, reduceFrac: 0, resolveOthers: true})

	fracs := [4]float64{0.25, 0.5, 0.75, 1.0}
	for k, f := range fracs {
		pess, _ := a.pass(passConfig{reducePC: pc, reduceFrac: f})
		opt, _ := a.pass(passConfig{reducePC: pc, reduceFrac: f, resolveOthers: true})
		pessGain := float64(pessBase-pess) / nMiss
		optGain := float64(optBase-opt) / nMiss
		if pessGain < 0 {
			pessGain = 0
		}
		if optGain < 0 {
			optGain = 0
		}
		curve.Gain[k] = (pessGain + optGain) / 2
	}
	// Enforce monotonicity (numerical noise can produce tiny inversions).
	for k := 1; k < 4; k++ {
		if curve.Gain[k] < curve.Gain[k-1] {
			curve.Gain[k] = curve.Gain[k-1]
		}
	}
	return curve
}

// modelMispredicts replays a hybrid predictor over the trace (same structure
// as the simulator's) and marks mispredicted conditional branches.
func modelMispredicts(tr *trace.Trace) []bool {
	const entries = 8192
	const hbits = 12
	bim := make([]uint8, entries)
	gsh := make([]uint8, entries)
	cho := make([]uint8, entries)
	for i := range bim {
		bim[i], gsh[i], cho[i] = 1, 1, 1
	}
	var hist uint64
	out := make([]bool, tr.Len())
	for cu := tr.Cursor(); cu.Next(); {
		pc := cu.PC()
		in := tr.Prog.Insts[pc]
		if !in.IsBranch() {
			continue
		}
		taken := cu.Taken()
		bi := int(uint64(pc) % entries)
		gi := int((uint64(pc) ^ (hist & ((1 << hbits) - 1))) % entries)
		bPred := bim[bi] >= 2
		gPred := gsh[gi] >= 2
		pred := bPred
		if cho[bi] >= 2 {
			pred = gPred
		}
		out[cu.Index()] = pred != taken
		if bPred != gPred {
			if gPred == taken {
				satInc(&cho[bi])
			} else {
				satDec(&cho[bi])
			}
		}
		if taken {
			satInc(&bim[bi])
			satInc(&gsh[gi])
			hist = hist<<1 | 1
		} else {
			satDec(&bim[bi])
			satDec(&gsh[gi])
			hist = hist << 1
		}
	}
	return out
}

func satInc(c *uint8) {
	if *c < 3 {
		*c++
	}
}

func satDec(c *uint8) {
	if *c > 0 {
		*c--
	}
}
