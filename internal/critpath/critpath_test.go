package critpath

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/trace"
)

func analyzerFor(t *testing.T, p *isa.Program) (*Analyzer, *trace.Trace, *profile.Profile) {
	t.Helper()
	tr, err := trace.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// The stride prefetcher would cover these synthetic stride loops; the
	// tests exercise the criticality model on raw misses.
	hier := cache.DefaultHierConfig()
	hier.StrideEntries = 0
	prof := profile.Collect(tr, profile.ConfigFromHier(hier))
	return New(tr, prof, DefaultConfig(hier)), tr, prof
}

// missLoop builds a loop with one 64B-stride load per iteration (every
// iteration misses to memory once caches are cold).
func missLoop(iters int) *isa.Program {
	b := isa.NewBuilder("missloop")
	const (
		rI, rN, rA, rV, rC = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	)
	b.MovI(rI, 0)
	b.MovI(rN, int64(iters))
	b.Label("top")
	b.ShlI(rA, rI, 6)
	b.Load(rV, rA, 0)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(make([]int64, iters*8+8))
	return b.MustBuild()
}

func TestBaselinePositiveAndBounded(t *testing.T) {
	a, tr, _ := analyzerFor(t, missLoop(200))
	base := a.Baseline()
	if base <= 0 {
		t.Fatal("baseline must be positive")
	}
	// Sanity bounds: at least n/width cycles, at most n * memory latency.
	n := int64(tr.Len())
	if base < n/6 {
		t.Errorf("baseline %d below bandwidth bound %d", base, n/6)
	}
	if base > n*220 {
		t.Errorf("baseline %d absurdly high", base)
	}
}

func TestBreakdownSumsToBaseline(t *testing.T) {
	a, _, _ := analyzerFor(t, missLoop(200))
	var sum int64
	for _, v := range a.Breakdown() {
		sum += v
	}
	base := a.Baseline()
	// Attribution walks the single critical path; rounding can shift a few
	// cycles.
	diff := sum - base
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.02*float64(base)+10 {
		t.Errorf("breakdown sums to %d, baseline %d", sum, base)
	}
}

func TestMemDominatedBreakdown(t *testing.T) {
	a, _, _ := analyzerFor(t, missLoop(300))
	bd := a.Breakdown()
	if float64(bd[0]) < 0.3*float64(a.Baseline()) {
		t.Errorf("mem share %d of %d: stride-miss loop must be memory-bound", bd[0], a.Baseline())
	}
}

func TestCostCurveMonotone(t *testing.T) {
	p := missLoop(300)
	a, tr, prof := analyzerFor(t, p)
	problems := prof.ProblemLoads(0.9, 10)
	if len(problems) == 0 {
		t.Fatal("no problem loads")
	}
	curve := a.CostCurve(problems[0].PC)
	if curve.MissLat <= 0 {
		t.Fatal("no miss latency")
	}
	prev := 0.0
	for k, g := range curve.Gain {
		if g < prev {
			t.Errorf("curve not monotone at %d: %v", k, curve.Gain)
		}
		prev = g
	}
	if curve.Gain[3] <= 0 {
		t.Error("full tolerance of the only problem load must yield gain")
	}
	// The flat model must dominate the criticality-aware curve: tolerating
	// the full latency cannot gain more than the latency itself per miss.
	if curve.Gain[3] > curve.MissLat*1.05 {
		t.Errorf("gain %v exceeds tolerated latency %v", curve.Gain[3], curve.MissLat)
	}
	_ = tr
}

// Two interleaved, independent miss streams: each load alone has low
// criticality (the other stream keeps the machine busy), so the pessimistic
// estimate is small — the averaged curve must fall clearly below the flat
// model (the paper's interaction-cost scenario).
func TestContemporaneousMissesReduceCriticality(t *testing.T) {
	b := isa.NewBuilder("dual")
	const (
		rI, rN, rA1, rA2, rV1, rV2, rC = isa.Reg(1), isa.Reg(2), isa.Reg(3),
			isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7)
	)
	iters := 250
	b.MovI(rI, 0)
	b.MovI(rN, int64(iters))
	b.MovI(rA2, int64(iters*64+64)) // second region offset
	b.Label("top")
	b.ShlI(rA1, rI, 6)
	pcLoad1 := b.Load(rV1, rA1, 0)
	b.Add(rA2, rA2, isa.Zero) // keep rA2
	b.Load(rV2, rA2, 0)
	b.AddI(rA2, rA2, 64)
	b.AddI(rI, rI, 1)
	b.CmpLT(rC, rI, rN)
	b.BrNZ(rC, "top")
	b.Halt()
	b.SetMem(make([]int64, iters*16+64))
	p := b.MustBuild()

	a, _, _ := analyzerFor(t, p)
	curve := a.CostCurve(int32(pcLoad1))
	flat := FlatCurve(curve.MissLat)
	if curve.Gain[3] >= flat.Gain[3]*0.9 {
		t.Errorf("interaction-aware gain %v not clearly below flat %v", curve.Gain[3], flat.Gain[3])
	}
	if curve.Gain[3] <= 0 {
		t.Error("averaged estimate must stay positive (optimistic half)")
	}
}

func TestGainAtInterpolation(t *testing.T) {
	c := Curve{MissLat: 200, Gain: [4]float64{10, 30, 60, 100}}
	cases := []struct{ tol, want float64 }{
		{0, 0},
		{-5, 0},
		{50, 10},   // 25%
		{100, 30},  // 50%
		{150, 60},  // 75%
		{200, 100}, // 100%
		{400, 100}, // saturates
		{25, 5},    // halfway to first sample
		{125, 45},  // halfway between 50% and 75%
	}
	for _, tc := range cases {
		if got := c.GainAt(tc.tol); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("GainAt(%v) = %v, want %v", tc.tol, got, tc.want)
		}
	}
}

// TestGainAtEdgeCases pins the degenerate inputs the selection pipeline can
// hand the cost model: the zero-value (empty) curve of a load that never
// missed, non-positive miss latencies, and tolerated latencies at or beyond
// the last sampled knee, which must saturate at Gain[3] — including for
// extreme and infinite tolerances.
func TestGainAtEdgeCases(t *testing.T) {
	var empty Curve
	for _, tol := range []float64{-1, 0, 1, 200, 1e12, math.Inf(1)} {
		if got := empty.GainAt(tol); got != 0 {
			t.Errorf("empty curve GainAt(%v) = %v, want 0", tol, got)
		}
	}
	neg := Curve{MissLat: -200, Gain: [4]float64{10, 30, 60, 100}}
	if got := neg.GainAt(50); got != 0 {
		t.Errorf("negative-latency curve GainAt(50) = %v, want 0", got)
	}

	c := Curve{MissLat: 200, Gain: [4]float64{10, 30, 60, 100}}
	for _, tol := range []float64{200, 200.0001, 1e9, math.MaxFloat64, math.Inf(1)} {
		if got := c.GainAt(tol); got != 100 {
			t.Errorf("GainAt(%v) = %v, want saturation at Gain[3]=100", tol, got)
		}
	}
	// Approaching the last knee from below stays on the final segment:
	// bounded by the 75% and 100% samples, never above saturation.
	if got := c.GainAt(199.999); got < 60 || got > 100 {
		t.Errorf("GainAt(199.999) = %v, want within (60, 100]", got)
	}
	// A zero-latency flat curve is inert, not NaN.
	if got := FlatCurve(0).GainAt(50); got != 0 || math.IsNaN(got) {
		t.Errorf("FlatCurve(0).GainAt(50) = %v, want 0", got)
	}
}

func TestFlatCurveIsIdentity(t *testing.T) {
	c := FlatCurve(200)
	for _, tol := range []float64{0, 37, 100, 150, 200, 300} {
		want := tol
		if want > 200 {
			want = 200
		}
		if got := c.GainAt(tol); got < want-1e-6 || got > want+1e-6 {
			t.Errorf("flat GainAt(%v) = %v, want %v", tol, got, want)
		}
	}
}

func TestZeroCurveForNonProblemLoad(t *testing.T) {
	a, _, _ := analyzerFor(t, missLoop(100))
	curve := a.CostCurve(9999) // no such load
	if curve.Gain[3] != 0 {
		t.Error("unknown load must have a zero curve")
	}
}

func TestModelTracksSimulatorOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in short mode")
	}
	// The model need not match simulated cycles, but must be within 2x on a
	// real workload (relative accuracy is what selection needs).
	bm, err := program.ByName("gap")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.MustRun(bm.Build(program.Train))
	prof := profile.Collect(tr, profile.ConfigFromHier(cache.DefaultHierConfig()))
	a := New(tr, prof, DefaultConfig(cache.DefaultHierConfig()))
	est := a.Baseline()
	if est <= 0 {
		t.Fatal("no estimate")
	}
	if est < int64(tr.Len())/6 {
		t.Errorf("estimate %d below dispatch bound", est)
	}
}

func TestMispredictModelFlagsChaoticBranches(t *testing.T) {
	b := isa.NewBuilder("chaos")
	const rI, rN, rH, rC, rC2 = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
	b.MovI(rI, 0)
	b.MovI(rN, 2000)
	b.Label("top")
	b.AddI(rI, rI, 1)
	b.MulI(rH, rI, 2654435761)
	b.ShrI(rH, rH, 13)
	b.AndI(rC, rH, 1)
	b.BrZ(rC, "skip")
	b.Nop()
	b.Label("skip")
	b.CmpLT(rC2, rI, rN)
	b.BrNZ(rC2, "top")
	b.Halt()
	tr := trace.MustRun(b.MustBuild())
	mis := modelMispredicts(tr)
	var count int
	for _, m := range mis {
		if m {
			count++
		}
	}
	// ~2000 chaotic branches; the multiplicative-hash direction bit retains
	// structure a gshare can partially learn, so expect a substantial (not
	// total) mispredict count, and the predictable loop-back branch mostly
	// right.
	if count < 150 {
		t.Errorf("only %d mispredicts modelled on a chaotic branch", count)
	}
	if count > 2500 {
		t.Errorf("%d mispredicts: predictable branches also failing", count)
	}
}
