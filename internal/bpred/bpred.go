// Package bpred implements the branch prediction substrate used by the
// timing simulator: an 8K-entry hybrid predictor (bimodal + gshare with a
// chooser) and a 2K-entry branch target buffer, matching the paper's
// configuration.
package bpred

// Config parameterizes the hybrid predictor.
type Config struct {
	Entries     int // entries in each of bimodal, gshare and chooser tables
	HistoryBits int // global history bits for gshare
	BTBEntries  int // branch target buffer entries
	BTBWays     int // BTB associativity
}

// DefaultConfig is the paper's configuration: 8K-entry hybrid predictor and
// a 2K-entry BTB.
func DefaultConfig() Config {
	return Config{Entries: 8192, HistoryBits: 12, BTBEntries: 2048, BTBWays: 4}
}

// Predictor is a hybrid (bimodal/gshare) direction predictor with a BTB.
// All tables use 2-bit saturating counters.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // counts toward gshare when high
	history uint64
	btb     *btb

	// Stats accumulate across the predictor's lifetime.
	Stats Stats
}

// Stats counts prediction events.
type Stats struct {
	Lookups     int64
	Mispredicts int64
	BTBMisses   int64
}

// New returns a predictor with the given configuration. Tables are
// initialized to weakly-not-taken (01) and the chooser to weakly-bimodal.
func New(cfg Config) *Predictor {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.Entries),
		gshare:  make([]uint8, cfg.Entries),
		chooser: make([]uint8, cfg.Entries),
		btb:     newBTB(cfg.BTBEntries, cfg.BTBWays),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
		p.gshare[i] = 1
		p.chooser[i] = 1
	}
	return p
}

// Reset returns the predictor to its post-New state — weakly-not-taken
// tables, empty history and BTB, zero statistics — without reallocating.
func (p *Predictor) Reset() {
	for i := range p.bimodal {
		p.bimodal[i] = 1
		p.gshare[i] = 1
		p.chooser[i] = 1
	}
	p.history = 0
	p.Stats = Stats{}
	p.btb.reset()
}

func (p *Predictor) index(pc int64) int {
	return int(uint64(pc) % uint64(p.cfg.Entries))
}

func (p *Predictor) gindex(pc int64) int {
	h := p.history & ((1 << uint(p.cfg.HistoryBits)) - 1)
	return int((uint64(pc) ^ h) % uint64(p.cfg.Entries))
}

// PredictAndUpdate performs a combined predict-then-train step for a
// conditional branch at pc with actual direction taken and actual target.
// It returns the predicted direction and whether the BTB produced the
// correct target (a taken-predicted branch with a BTB miss still costs a
// fetch bubble even if the direction was right).
func (p *Predictor) PredictAndUpdate(pc int64, taken bool, target int64) (predTaken, btbHit bool) {
	p.Stats.Lookups++
	bi, gi, ci := p.index(pc), p.gindex(pc), p.index(pc)
	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	useG := p.chooser[ci] >= 2
	predTaken = bPred
	if useG {
		predTaken = gPred
	}

	// Train chooser toward whichever component was right (when they differ).
	if bPred != gPred {
		if gPred == taken {
			satInc(&p.chooser[ci])
		} else {
			satDec(&p.chooser[ci])
		}
	}
	train(&p.bimodal[bi], taken)
	train(&p.gshare[gi], taken)
	p.history = (p.history << 1) | b2u(taken)

	btbHit = true
	if taken {
		btbHit = p.btb.lookupUpdate(pc, target)
		if !btbHit {
			p.Stats.BTBMisses++
		}
	}
	if predTaken != taken {
		p.Stats.Mispredicts++
	}
	return predTaken, btbHit
}

// PredictJump handles an unconditional direct jump: direction is always
// taken; only the BTB matters for fetch continuity.
func (p *Predictor) PredictJump(pc int64, target int64) (btbHit bool) {
	btbHit = p.btb.lookupUpdate(pc, target)
	if !btbHit {
		p.Stats.BTBMisses++
	}
	return btbHit
}

// MispredictRate returns the fraction of conditional lookups mispredicted.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

func train(ctr *uint8, taken bool) {
	if taken {
		satInc(ctr)
	} else {
		satDec(ctr)
	}
}

func satInc(c *uint8) {
	if *c < 3 {
		*c++
	}
}

func satDec(c *uint8) {
	if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// btb is a set-associative branch target buffer with LRU replacement.
type btb struct {
	sets int
	ways int
	tag  []int64 // sets*ways, -1 invalid
	tgt  []int64
	lru  []int8
}

func newBTB(entries, ways int) *btb {
	if ways <= 0 {
		ways = 1
	}
	sets := entries / ways
	if sets <= 0 {
		sets = 1
	}
	b := &btb{
		sets: sets,
		ways: ways,
		tag:  make([]int64, sets*ways),
		tgt:  make([]int64, sets*ways),
		lru:  make([]int8, sets*ways),
	}
	for i := range b.tag {
		b.tag[i] = -1
	}
	return b
}

// reset empties the BTB without reallocating.
func (b *btb) reset() {
	for i := range b.tag {
		b.tag[i] = -1
		b.tgt[i] = 0
		b.lru[i] = 0
	}
}

// lookupUpdate probes for pc and installs/updates the mapping. It returns
// whether the probe hit with the correct target.
func (b *btb) lookupUpdate(pc, target int64) bool {
	set := int(uint64(pc) % uint64(b.sets))
	base := set * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tag[base+w] == pc {
			hit := b.tgt[base+w] == target
			b.tgt[base+w] = target
			b.touch(base, w)
			return hit
		}
	}
	// Miss: replace LRU way.
	victim := 0
	for w := 1; w < b.ways; w++ {
		if b.lru[base+w] < b.lru[base+victim] {
			victim = w
		}
	}
	b.tag[base+victim] = pc
	b.tgt[base+victim] = target
	b.touch(base, victim)
	return false
}

func (b *btb) touch(base, way int) {
	for w := 0; w < b.ways; w++ {
		if b.lru[base+w] > 0 {
			b.lru[base+w]--
		}
	}
	b.lru[base+way] = int8(b.ways)
}
