package bpred

import "testing"

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := int64(100), int64(50)
	var wrong int
	for i := 0; i < 100; i++ {
		pred, _ := p.PredictAndUpdate(pc, true, tgt)
		if i > 4 && !pred {
			wrong++
		}
	}
	if wrong != 0 {
		t.Errorf("always-taken branch mispredicted %d times after warmup", wrong)
	}
}

func TestAlternatingLearnedByGshare(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := int64(200), int64(10)
	var wrongLate int
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		pred, _ := p.PredictAndUpdate(pc, taken, tgt)
		if i >= 200 && pred != taken {
			wrongLate++
		}
	}
	// gshare keys on history, so a strict alternation is fully predictable.
	if wrongLate > 5 {
		t.Errorf("alternating branch mispredicted %d/200 times after warmup", wrongLate)
	}
}

func TestMispredictStats(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.PredictAndUpdate(int64(i*64), i%3 == 0, 5)
	}
	if p.Stats.Lookups != 10 {
		t.Errorf("lookups = %d, want 10", p.Stats.Lookups)
	}
	if p.Stats.Mispredicts == 0 {
		t.Error("cold predictor must mispredict at least once on a mixed pattern")
	}
	if r := p.Stats.MispredictRate(); r <= 0 || r > 1 {
		t.Errorf("mispredict rate = %v out of range", r)
	}
	if (Stats{}).MispredictRate() != 0 {
		t.Error("empty stats must have zero rate")
	}
}

func TestBTBMissThenHit(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := int64(300), int64(77)
	_, hit := p.PredictAndUpdate(pc, true, tgt)
	if hit {
		t.Error("first taken branch must miss the BTB")
	}
	_, hit = p.PredictAndUpdate(pc, true, tgt)
	if !hit {
		t.Error("second taken branch must hit the BTB")
	}
}

func TestBTBTargetChange(t *testing.T) {
	p := New(DefaultConfig())
	pc := int64(400)
	p.PredictAndUpdate(pc, true, 1)
	_, hit := p.PredictAndUpdate(pc, true, 2)
	if hit {
		t.Error("changed target must count as a BTB miss")
	}
	_, hit = p.PredictAndUpdate(pc, true, 2)
	if !hit {
		t.Error("target must be updated after a mismatch")
	}
}

func TestBTBNotConsultedWhenNotTaken(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		_, hit := p.PredictAndUpdate(500, false, 9)
		if !hit {
			t.Error("not-taken branches must not report BTB misses")
		}
	}
	if p.Stats.BTBMisses != 0 {
		t.Errorf("BTB misses = %d, want 0", p.Stats.BTBMisses)
	}
}

func TestPredictJump(t *testing.T) {
	p := New(DefaultConfig())
	if p.PredictJump(600, 11) {
		t.Error("cold jump must miss BTB")
	}
	if !p.PredictJump(600, 11) {
		t.Error("warm jump must hit BTB")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	// 8-entry, 2-way BTB: 4 sets. Five PCs mapping to the same set must
	// evict each other.
	p := New(Config{Entries: 64, HistoryBits: 4, BTBEntries: 8, BTBWays: 2})
	pcs := []int64{0, 4, 8} // all map to set 0 of 4 sets
	for _, pc := range pcs {
		p.PredictJump(pc, pc+1)
	}
	// pc 0 was LRU and must have been evicted by pc 8.
	if p.PredictJump(0, 1) {
		t.Error("LRU entry must have been evicted")
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.Entries != 8192 {
		t.Errorf("zero config must default; entries = %d", p.cfg.Entries)
	}
}

func TestDifferentBranchesIsolatedInBimodal(t *testing.T) {
	p := New(Config{Entries: 1024, HistoryBits: 10, BTBEntries: 256, BTBWays: 4})
	// Branch A always taken, branch B never taken, different indices.
	for i := 0; i < 64; i++ {
		p.PredictAndUpdate(1, true, 5)
		p.PredictAndUpdate(2, false, 5)
	}
	predA, _ := p.PredictAndUpdate(1, true, 5)
	predB, _ := p.PredictAndUpdate(2, false, 5)
	if !predA || predB {
		t.Errorf("biased branches mispredicted: A=%v B=%v", predA, predB)
	}
}
