// labvet checks the repo's four static invariants over the given package
// patterns (default ./...): determinism (no order-sensitive map iteration in
// render/fingerprint/event paths, no wall clock or math/rand in simulation
// packages), hot-path allocation freedom (//lab:hotpath), fingerprint
// coverage of stage Config fields, and panic/error hygiene on persistence
// paths. Findings print in vet format; -json emits them machine-readably.
// Exit status: 0 clean, 1 findings, 2 operational failure.
//
// See EXPERIMENTS.md "Static invariants" for the rules, the //lab:hotpath
// and //lab:nofp annotations, and the //lab:allow waiver syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: labvet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	loader, err := lint.NewLoader(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.DefaultPolicy())
	if findings == nil {
		findings = []lint.Finding{} // a clean tree is [], not null
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "labvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
