package main

import (
	"strings"
	"testing"

	preexec "repro"
)

// TestParseCLIValidatesLocally pins the client-side contract: a bad -axis,
// -gen, -targets or -engine is rejected during flag parsing — with -addr
// set, before anything would be submitted to a daemon.
func TestParseCLIValidatesLocally(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"bad axis", []string{"-addr", "http://x", "-axis", "bogus"}, "unknown sweep axis"},
		{"bad gen family", []string{"-addr", "http://x", "-gen", "no-such-family:1"}, "family"},
		{"bad gen knob", []string{"-addr", "http://x", "-gen", "pointer-chase:1:zzz=3"}, "zzz"},
		{"bad target", []string{"-addr", "http://x", "-targets", "Q"}, "unknown target"},
		{"bad engine", []string{"-addr", "http://x", "-engine", "bogus"}, "valid engines: event, scan, batched"},
		{"bad engine local", []string{"-engine", "bogus"}, "valid engines: event, scan, batched"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseCLI(tc.args); err == nil {
				t.Fatalf("parseCLI(%q) accepted bad flags", tc.args)
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseCLIRemoteArgs verifies the remote submission carries exactly the
// validated flag values, and that engines and batch widths parse into the
// typed API values the local path feeds the Lab.
func TestParseCLIRemoteArgs(t *testing.T) {
	c, err := parseCLI([]string{"-addr", "http://x", "-axis", "idle, mem",
		"-gen", "pointer-chase:7", "-targets", "L, P2", "-engine", "batched", "-batch", "6"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(c.axisNames, "|"); got != "idle|mem" {
		t.Errorf("axisNames = %q", got)
	}
	if got := strings.Join(c.genSpecs, "|"); got != "pointer-chase:7" {
		t.Errorf("genSpecs = %q", got)
	}
	if got := strings.Join(c.targetNames, "|"); got != "L|P2" {
		t.Errorf("targetNames = %q", got)
	}
	if c.engine != preexec.EngineBatched || c.batch != 6 {
		t.Errorf("engine = %q batch = %d, want batched/6", c.engine, c.batch)
	}
	if len(c.names) != 0 {
		t.Errorf("-gen alone should sweep no built-ins, got %v", c.names)
	}

	c, err = parseCLI([]string{"-axis", "l2"})
	if err != nil {
		t.Fatal(err)
	}
	if c.engine != preexec.EngineEvent || c.batch != 0 {
		t.Errorf("defaults: engine = %q batch = %d, want event/0", c.engine, c.batch)
	}
	if len(c.names) == 0 {
		t.Error("default benchmark triple missing")
	}
}
