// Command sweep runs one of the paper's Figure 5 sensitivity sweeps over
// any benchmark set.
//
// Usage:
//
//	sweep -axis idle                    # paper's idle-factor triple
//	sweep -axis mem -bench mcf,twolf    # custom benchmark set
//	sweep -axis l2 -all                 # all nine benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	axisName := flag.String("axis", "idle", "sweep axis: idle, mem, l2")
	bench := flag.String("bench", "", "comma-separated benchmarks (default: the paper's triple for the axis)")
	all := flag.Bool("all", false, "sweep every benchmark")
	flag.Parse()

	var axis experiments.SweepAxis
	switch *axisName {
	case "idle":
		axis = experiments.SweepIdleFactor
	case "mem":
		axis = experiments.SweepMemLatency
	case "l2":
		axis = experiments.SweepL2Size
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown axis %q (want idle, mem or l2)\n", *axisName)
		os.Exit(1)
	}

	names := experiments.Figure5Benchmarks(axis)
	if *all {
		names = experiments.PaperBenchmarks()
	} else if *bench != "" {
		names = strings.Split(*bench, ",")
	}

	out, err := experiments.Figure5(axis, names, experiments.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}
