// Command sweep runs one of the paper's Figure 5 sensitivity sweeps over
// any benchmark set.
//
// Usage:
//
//	sweep -axis idle                    # paper's idle-factor triple
//	sweep -axis mem -bench mcf,twolf    # custom benchmark set
//	sweep -axis l2 -all                 # all nine benchmarks
//	sweep -axis mem -json               # machine-readable output
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	preexec "repro"
)

func main() {
	axisName := flag.String("axis", "idle", "sweep axis: idle, mem, l2")
	bench := flag.String("bench", "", "comma-separated benchmarks (default: the paper's triple for the axis)")
	all := flag.Bool("all", false, "sweep every benchmark")
	parallelism := flag.Int("j", 0, "worker-pool bound (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit the JSON report instead of the rendered table")
	flag.Parse()

	var axis preexec.SweepAxis
	switch *axisName {
	case "idle":
		axis = preexec.SweepIdleFactor
	case "mem":
		axis = preexec.SweepMemLatency
	case "l2":
		axis = preexec.SweepL2Size
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown axis %q (want idle, mem or l2)\n", *axisName)
		os.Exit(1)
	}

	names := preexec.Figure5Benchmarks(axis)
	if *all {
		names = preexec.PaperBenchmarks()
	} else if *bench != "" {
		names = strings.Split(*bench, ",")
	}
	valid := make(map[string]bool)
	for _, n := range preexec.Benchmarks() {
		valid[n] = true
	}
	for _, n := range names {
		if !valid[n] {
			fmt.Fprintf(os.Stderr, "sweep: unknown benchmark %q (valid: %s)\n",
				n, strings.Join(preexec.Benchmarks(), ", "))
			os.Exit(1)
		}
	}

	lab := preexec.New(
		preexec.WithParallelism(*parallelism),
		preexec.WithObserver(func(ev preexec.Event) {
			if ev.Kind == preexec.EventPrepareStart {
				fmt.Fprintf(os.Stderr, "sweep: preparing %s/%s\n", ev.Bench, ev.Input)
			}
		}),
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := lab.Figure5(ctx, axis, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *asJSON {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
		return
	}
	fmt.Println(rep.Render())
}
