// Command sweep runs sensitivity sweeps over any benchmark set: one of the
// paper's Figure 5 axes, or a declarative multi-axis cartesian grid.
//
// Usage:
//
//	sweep -axis idle                        # paper's idle-factor triple
//	sweep -axis mem -bench mcf,twolf        # custom benchmark set
//	sweep -axis idle,mem -bench vortex      # 3×3 cartesian grid
//	sweep -axis l2 -all                     # all nine benchmarks
//	sweep -axis mem -targets L,P2           # custom target set
//	sweep -axis mem -batch 4                # batch same-trace measurements
//	sweep -axis mem -engine scan            # reference scan engine
//	sweep -axis mem -json                   # machine-readable artifact
//	                                        # (render with: report -render -)
//
// With -batch k (or -engine batched), measurements whose grid points share
// one prepared trace ride a single streaming pass in batches of up to k —
// bit-identical results, fewer passes over the trace columns.
//
// Local sweeps order their work through the cost-modeled critical-path
// scheduler by default; -sched=false falls back to naive bench-major grid
// order (identical results and report, different build order). To inspect
// the planned schedule without running it, see `report -dag`.
//
// Generated workloads join the sweep through the repeatable -gen flag,
// taking the generator spec grammar family:seed[:knob=value,...]. With -gen
// alone the grid sweeps only the generated workloads; adding -bench or -all
// mixes built-ins in:
//
//	sweep -axis idle -gen pointer-chase:7 -gen hash-probe:2:loads=2
//	sweep -axis mem -all -gen tree-walk:9:ws=524288
//
// Benchmark names are validated by the Lab engine itself: unknown or
// duplicated names fail fast with the valid set listed.
//
// With -addr the same sweep runs on a lab daemon (cmd/labd) instead of
// in-process: the grid is submitted over HTTP, per-point progress streams
// back live and prints identically to a local run, and the daemon's
// persistent artifact store makes repeated and concurrent submissions share
// every preparation stage — across clients and across daemon restarts.
// Every locally checkable flag (-axis, -targets, -gen, -engine) is
// validated client-side before anything is submitted; -engine and -batch
// configure local runs only (a daemon's own -engine/-batch govern its
// jobs):
//
//	sweep -addr http://localhost:8080 -axis idle -bench gap
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	preexec "repro"
)

// cli is the parsed, validated flag set of one sweep invocation.
type cli struct {
	axes        []preexec.Axis
	axisNames   []string
	names       []string
	workloads   []preexec.WorkloadPoint
	genSpecs    []string
	targets     []preexec.Target
	targetNames []string
	engine      preexec.Engine
	batch       int
	parallelism int
	sched       bool
	asJSON      bool
	addr        string
}

// parseCLI parses and validates the full flag set. Everything locally
// checkable — -axis, -targets, every -gen spec and -engine — is validated
// here, before main chooses between the local and remote paths, so a bad
// flag is rejected client-side instead of being submitted to a daemon.
func parseCLI(args []string) (*cli, error) {
	c := &cli{}
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	axisNames := fs.String("axis", "idle", "comma-separated sweep axes: idle, mem, l2 (multiple = cartesian grid)")
	bench := fs.String("bench", "", "comma-separated benchmarks (default: the paper's triple for the first axis)")
	all := fs.Bool("all", false, "sweep every benchmark")
	targetNames := fs.String("targets", "", "comma-separated selection targets (default: L,E,P)")
	engineName := fs.String("engine", "", "simulation engine: event, scan or batched (local sweeps; a daemon uses its own -engine)")
	fs.IntVar(&c.batch, "batch", 0, "batch width k: run up to k same-trace measurements per streaming pass (local sweeps; 0/1 = serial)")
	fs.IntVar(&c.parallelism, "j", 0, "worker-pool bound (0 = GOMAXPROCS)")
	fs.BoolVar(&c.sched, "sched", true, "cost-modeled critical-path scheduling of the grid's stage DAG (local sweeps; false = naive grid order, identical results)")
	fs.BoolVar(&c.asJSON, "json", false, "emit the JSON artifact instead of the rendered table")
	fs.StringVar(&c.addr, "addr", "", "submit to a lab daemon at this base URL instead of sweeping locally")
	fs.Func("gen", "generated workload spec family:seed[:knob=value,...] (repeatable)", func(text string) error {
		spec, err := preexec.ParseWorkloadSpec(text)
		if err != nil {
			return err
		}
		c.workloads = append(c.workloads, preexec.WorkloadPoint{Label: text, Spec: spec})
		c.genSpecs = append(c.genSpecs, text)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	var first preexec.SweepAxis
	for i, name := range strings.Split(*axisNames, ",") {
		name = strings.TrimSpace(name)
		axis, err := preexec.ParseSweepAxis(name)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = axis
		}
		c.axes = append(c.axes, preexec.GridAxis(axis))
		c.axisNames = append(c.axisNames, name)
	}

	c.names = preexec.Figure5Benchmarks(first)
	if *all {
		c.names = preexec.PaperBenchmarks()
	} else if *bench != "" {
		c.names = strings.Split(*bench, ",")
	} else if len(c.workloads) > 0 {
		c.names = nil // -gen alone sweeps only the generated workloads
	}

	if *targetNames != "" {
		for _, t := range strings.Split(*targetNames, ",") {
			t = strings.TrimSpace(t)
			tgt, err := preexec.ParseTarget(t)
			if err != nil {
				return nil, err
			}
			c.targets = append(c.targets, tgt)
			c.targetNames = append(c.targetNames, t)
		}
	}

	var err error
	if c.engine, err = preexec.ParseEngine(*engineName); err != nil {
		return nil, err
	}
	return c, nil
}

func main() {
	c, err := parseCLI(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if c.addr != "" {
		if err := runRemote(ctx, c.addr, c.axisNames, c.names, c.genSpecs, c.targetNames, c.asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}

	cfg := preexec.DefaultConfig()
	cfg.CPU.Engine = c.engine
	lab := preexec.New(
		preexec.WithConfig(cfg),
		preexec.WithParallelism(c.parallelism),
		preexec.WithBatchWidth(c.batch),
		preexec.WithScheduling(c.sched),
		preexec.WithObserver(func(ev preexec.Event) {
			switch ev.Kind {
			case preexec.EventStageStart:
				fmt.Fprintf(os.Stderr, "sweep: building %s/%s %s\n", ev.Bench, ev.Input, ev.Stage)
			case preexec.EventPointDone:
				fmt.Fprintf(os.Stderr, "sweep: point %d/%d %s@%s\n", ev.Done, ev.Total, ev.Bench, ev.Point)
			}
		}),
	)

	rep, err := lab.Sweep(ctx, preexec.Grid{Axes: c.axes, Benchmarks: c.names, Workloads: c.workloads, Targets: c.targets})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if c.asJSON {
		raw, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		out, err := json.Marshal(struct {
			Artifact string          `json:"artifact"`
			Report   json.RawMessage `json:"report"`
		}{"sweep", raw})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println(rep.Render())
}
