// Command sweep runs sensitivity sweeps over any benchmark set: one of the
// paper's Figure 5 axes, or a declarative multi-axis cartesian grid.
//
// Usage:
//
//	sweep -axis idle                        # paper's idle-factor triple
//	sweep -axis mem -bench mcf,twolf        # custom benchmark set
//	sweep -axis idle,mem -bench vortex      # 3×3 cartesian grid
//	sweep -axis l2 -all                     # all nine benchmarks
//	sweep -axis mem -targets L,P2           # custom target set
//	sweep -axis mem -json                   # machine-readable artifact
//	                                        # (render with: report -render -)
//
// Generated workloads join the sweep through the repeatable -gen flag,
// taking the generator spec grammar family:seed[:knob=value,...]. With -gen
// alone the grid sweeps only the generated workloads; adding -bench or -all
// mixes built-ins in:
//
//	sweep -axis idle -gen pointer-chase:7 -gen hash-probe:2:loads=2
//	sweep -axis mem -all -gen tree-walk:9:ws=524288
//
// Benchmark names are validated by the Lab engine itself: unknown or
// duplicated names fail fast with the valid set listed.
//
// With -addr the same sweep runs on a lab daemon (cmd/labd) instead of
// in-process: the grid is submitted over HTTP, per-point progress streams
// back live and prints identically to a local run, and the daemon's
// persistent artifact store makes repeated and concurrent submissions share
// every preparation stage — across clients and across daemon restarts:
//
//	sweep -addr http://localhost:8080 -axis idle -bench gap
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	preexec "repro"
)

func main() {
	axisNames := flag.String("axis", "idle", "comma-separated sweep axes: idle, mem, l2 (multiple = cartesian grid)")
	bench := flag.String("bench", "", "comma-separated benchmarks (default: the paper's triple for the first axis)")
	all := flag.Bool("all", false, "sweep every benchmark")
	targetNames := flag.String("targets", "", "comma-separated selection targets (default: L,E,P)")
	parallelism := flag.Int("j", 0, "worker-pool bound (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit the JSON artifact instead of the rendered table")
	addr := flag.String("addr", "", "submit to a lab daemon at this base URL instead of sweeping locally")
	var workloads []preexec.WorkloadPoint
	var genSpecs []string
	flag.Func("gen", "generated workload spec family:seed[:knob=value,...] (repeatable)", func(text string) error {
		spec, err := preexec.ParseWorkloadSpec(text)
		if err != nil {
			return err
		}
		workloads = append(workloads, preexec.WorkloadPoint{Label: text, Spec: spec})
		genSpecs = append(genSpecs, text)
		return nil
	})
	flag.Parse()

	var axes []preexec.Axis
	var first preexec.SweepAxis
	for i, name := range strings.Split(*axisNames, ",") {
		axis, err := preexec.ParseSweepAxis(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if i == 0 {
			first = axis
		}
		axes = append(axes, preexec.GridAxis(axis))
	}

	names := preexec.Figure5Benchmarks(first)
	if *all {
		names = preexec.PaperBenchmarks()
	} else if *bench != "" {
		names = strings.Split(*bench, ",")
	} else if len(workloads) > 0 {
		names = nil // -gen alone sweeps only the generated workloads
	}

	var targets []preexec.Target
	if *targetNames != "" {
		for _, t := range strings.Split(*targetNames, ",") {
			tgt, err := preexec.ParseTarget(strings.TrimSpace(t))
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			targets = append(targets, tgt)
		}
	}

	if *addr != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		var axes, targetList []string
		for _, a := range strings.Split(*axisNames, ",") {
			axes = append(axes, strings.TrimSpace(a))
		}
		if *targetNames != "" {
			for _, t := range strings.Split(*targetNames, ",") {
				targetList = append(targetList, strings.TrimSpace(t))
			}
		}
		if err := runRemote(ctx, *addr, axes, names, genSpecs, targetList, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}

	lab := preexec.New(
		preexec.WithParallelism(*parallelism),
		preexec.WithObserver(func(ev preexec.Event) {
			switch ev.Kind {
			case preexec.EventStageStart:
				fmt.Fprintf(os.Stderr, "sweep: building %s/%s %s\n", ev.Bench, ev.Input, ev.Stage)
			case preexec.EventPointDone:
				fmt.Fprintf(os.Stderr, "sweep: point %d/%d %s@%s\n", ev.Done, ev.Total, ev.Bench, ev.Point)
			}
		}),
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := lab.Sweep(ctx, preexec.Grid{Axes: axes, Benchmarks: names, Workloads: workloads, Targets: targets})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *asJSON {
		raw, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		out, err := json.Marshal(struct {
			Artifact string          `json:"artifact"`
			Report   json.RawMessage `json:"report"`
		}{"sweep", raw})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println(rep.Render())
}
