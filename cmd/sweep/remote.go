package main

// Daemon client mode (-addr): submit the sweep to a running cmd/labd,
// stream its NDJSON events, mirror the local progress output, and render
// (or re-emit) the artifact exactly as a local run would.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	preexec "repro"
	"repro/internal/labapi"
)

func runRemote(ctx context.Context, addr string, axes, benchmarks, genSpecs, targets []string, asJSON bool) error {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req := labapi.SweepRequest{Axes: axes, Benchmarks: benchmarks, Workloads: genSpecs, Targets: targets}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	submit, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return err
	}
	submit.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(submit)
	if err != nil {
		return err
	}
	var sub labapi.SubmitResponse
	submitErr := decodeOrError(resp, http.StatusAccepted, &sub)
	if submitErr != nil {
		return submitErr
	}
	fmt.Fprintf(os.Stderr, "sweep: submitted job %s to %s\n", sub.ID, base)

	// An interrupt cancels the job daemon-side before this process exits,
	// so ^C doesn't leave the daemon grinding through an abandoned grid.
	go func() {
		<-ctx.Done()
		cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if del, err := http.NewRequestWithContext(cancelCtx, http.MethodDelete,
			fmt.Sprintf("%s/v1/jobs/%s", base, sub.ID), nil); err == nil {
			if resp, err := http.DefaultClient.Do(del); err == nil {
				resp.Body.Close()
			}
		}
	}()

	stream, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events", base, sub.ID), nil)
	if err != nil {
		return err
	}
	events, err := http.DefaultClient.Do(stream)
	if err != nil {
		return err
	}
	defer events.Body.Close()
	if events.StatusCode != http.StatusOK {
		return fmt.Errorf("event stream: %s", responseError(events))
	}

	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20) // the artifact line carries the whole report
	rendered := false
	for sc.Scan() {
		raw := sc.Bytes()
		var line labapi.StreamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("event stream: %w", err)
		}
		switch {
		case line.Artifact != "":
			if asJSON {
				fmt.Println(string(raw))
				rendered = true
				continue
			}
			var rep preexec.SweepReport
			if err := json.Unmarshal(line.Report, &rep); err != nil {
				return fmt.Errorf("decode %s artifact: %w", line.Artifact, err)
			}
			fmt.Println(rep.Render())
			rendered = true
		case line.Kind == labapi.KindJobFailed:
			return fmt.Errorf("job %s failed: %s", sub.ID, line.Err)
		case line.Kind == labapi.KindJobDone:
			// artifact already handled; stream is about to end
		case line.Kind == labapi.KindLagging:
			fmt.Fprintf(os.Stderr, "sweep: stream lagged, %d events dropped\n", line.Dropped)
		case line.Kind == string(preexec.EventStageStart):
			fmt.Fprintf(os.Stderr, "sweep: building %s/%s %s\n", line.Bench, line.Input, line.Stage)
		case line.Kind == string(preexec.EventStageSpill):
			fmt.Fprintf(os.Stderr, "sweep: loaded %s/%s %s from disk store\n", line.Bench, line.Input, line.Stage)
		case line.Kind == string(preexec.EventPointDone):
			fmt.Fprintf(os.Stderr, "sweep: point %d/%d %s@%s\n", line.Done, line.Total, line.Bench, line.Point)
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted; job %s cancelled", sub.ID)
		}
		return fmt.Errorf("event stream: %w", err)
	}
	if !rendered {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted; job %s cancelled", sub.ID)
		}
		return fmt.Errorf("job %s stream ended without an artifact (re-fetch with: curl %s/v1/jobs/%s/events)",
			sub.ID, base, sub.ID)
	}
	return nil
}

// decodeOrError decodes a JSON response body into out when the status
// matches, and turns anything else into an error carrying the server's
// message.
func decodeOrError(resp *http.Response, want int, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s", responseError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError extracts the daemon's {"error": ...} message, falling back
// to the HTTP status.
func responseError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Sprintf("%s (%s)", e.Error, resp.Status)
	}
	return resp.Status
}
