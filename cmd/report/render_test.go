package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeStream(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.ndjson")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

const sweepArtifactLine = `{"artifact":"sweep","report":{"Axes":["idle-energy-factor"],"Targets":["L"],"Points":[]}}`

func TestRenderStreamSkipsEventLines(t *testing.T) {
	path := writeStream(t,
		`{"kind":"stage-start","bench":"gap","stage":"trace"}`,
		`{"kind":"some-future-event-kind","whatever":1}`,
		`{"kind":"point-done","bench":"gap","done":3,"total":3}`,
		sweepArtifactLine,
		`{"kind":"job-done"}`,
	)
	if err := renderStream(path); err != nil {
		t.Fatalf("renderStream: %v", err)
	}
}

func TestRenderStreamPureArtifacts(t *testing.T) {
	if err := renderStream(writeStream(t, sweepArtifactLine)); err != nil {
		t.Fatalf("renderStream: %v", err)
	}
}

func TestRenderStreamErrors(t *testing.T) {
	cases := map[string][]string{
		"events only, no artifact": {
			`{"kind":"stage-start"}`,
			`{"kind":"job-done"}`,
		},
		"neither kind nor artifact": {`{"bench":"gap"}`},
		"unknown artifact":          {`{"artifact":"nonesuch","report":{}}`},
		"malformed json":            {`{"artifact":`},
	}
	for name, lines := range cases {
		if err := renderStream(writeStream(t, lines...)); err == nil {
			t.Errorf("%s: renderStream succeeded, want error", name)
		}
	}
}
