// Command report regenerates the paper's evaluation artifacts: Figure 2,
// Figure 3, Table 3, Figure 4, Figure 5 (all three axes) and the ED² study.
//
// Every artifact is computed once as a structured report, serialized to
// JSON, and — in the default text mode — decoded back from that JSON before
// rendering, so the printed tables provably contain nothing the JSON
// doesn't. One Lab engine serves all figures: each benchmark is prepared
// exactly once no matter how many artifacts are requested.
//
// Usage:
//
//	report                 # everything, rendered (several minutes)
//	report -fig 3          # one figure
//	report -table 3        # the validation table
//	report -json           # machine-readable JSON stream, one object per artifact
//	report -v              # engine progress on stderr
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	preexec "repro"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (2, 3, 4 or 5); 0 = all")
	table := flag.Int("table", 0, "regenerate one table (3); 0 = all")
	asJSON := flag.Bool("json", false, "emit JSON artifacts instead of rendered tables")
	verbose := flag.Bool("v", false, "log engine progress events to stderr")
	flag.Parse()

	opts := []preexec.Option{}
	if *verbose {
		opts = append(opts, preexec.WithObserver(func(ev preexec.Event) {
			fmt.Fprintf(os.Stderr, "report: %-15s %-10s %-6s %s\n", ev.Kind, ev.Bench, ev.Input, ev.Target)
		}))
	}
	lab := preexec.New(opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	names := preexec.PaperBenchmarks()
	all := *fig == 0 && *table == 0

	if all || *fig == 2 {
		rep, err := lab.Figure2(ctx, names)
		emit("figure2", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Figure2Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *fig == 3 {
		rep, err := lab.Figure3(ctx, names)
		emit("figure3", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Figure3Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *table == 3 {
		rep, err := lab.Table3(ctx, preexec.Table3Benchmarks())
		emit("table3", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Table3Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *fig == 4 {
		rep, err := lab.Figure4(ctx, names)
		emit("figure4", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Figure4Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *fig == 5 {
		for _, axis := range []preexec.SweepAxis{
			preexec.SweepIdleFactor, preexec.SweepMemLatency, preexec.SweepL2Size,
		} {
			rep, err := lab.Figure5(ctx, axis, preexec.Figure5Benchmarks(axis))
			emit("figure5/"+axis.String(), rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
				var r preexec.Figure5Report
				return &r, json.Unmarshal(raw, &r)
			})
		}
	}
	if all {
		rep, err := lab.ED2Study(ctx, names)
		emit("ed2", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.ED2Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
}

// emit serializes one artifact to JSON. In JSON mode the artifact streams
// out as {"artifact": name, "report": ...}; in text mode the JSON is
// decoded back into a fresh report and rendered from the decoded copy.
func emit(name string, rep preexec.Report, err error, asJSON bool, decode func([]byte) (preexec.Report, error)) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report: marshal:", err)
		os.Exit(1)
	}
	if asJSON {
		out, err := json.Marshal(struct {
			Artifact string          `json:"artifact"`
			Report   json.RawMessage `json:"report"`
		}{name, raw})
		if err != nil {
			fmt.Fprintln(os.Stderr, "report: marshal:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	decoded, err := decode(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report: decode:", err)
		os.Exit(1)
	}
	fmt.Println(decoded.Render())
}
