// Command report regenerates the paper's evaluation artifacts: Figure 2,
// Figure 3, Table 3, Figure 4, Figure 5 (all three axes) and the ED² study.
//
// Every artifact is computed once as a structured report, serialized to
// JSON, and — in the default text mode — decoded back from that JSON before
// rendering, so the printed tables provably contain nothing the JSON
// doesn't. One Lab engine serves all figures: each benchmark is prepared
// exactly once no matter how many artifacts are requested.
//
// Usage:
//
//	report                 # everything, rendered (several minutes)
//	report -fig 3          # one figure
//	report -table 3        # the validation table
//	report -json           # machine-readable JSON stream, one object per artifact
//	report -render f.json  # render a saved artifact stream ("-" = stdin)
//	report -dag idle,mem   # Graphviz DOT of the sweep grid's stage schedule
//	report -v              # engine progress on stderr
//
// The -dag mode plans instead of runs: it expands the named sensitivity
// axes over the paper benchmarks into the stage dependency DAG the
// critical-path scheduler would execute, annotated with projected costs and
// cold/cached/spill status, and prints it as Graphviz DOT
// (pipe to `dot -Tsvg` to visualize).
//
// The -render mode closes the round trip: any artifact stream this command
// (or cmd/sweep -json) emitted renders back to the exact tables a live run
// would print, without recomputing anything:
//
//	sweep -axis idle,mem -json | report -render -
//
// Daemon event streams work too: lines carrying a "kind" (progress events,
// including kinds this build doesn't know) are skipped, and the embedded
// artifact line renders as usual:
//
//	curl -sN localhost:8080/v1/jobs/j1/events | report -render -
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	preexec "repro"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (2, 3, 4 or 5); 0 = all")
	table := flag.Int("table", 0, "regenerate one table (3); 0 = all")
	asJSON := flag.Bool("json", false, "emit JSON artifacts instead of rendered tables")
	renderPath := flag.String("render", "", "render a saved JSON artifact stream instead of recomputing (\"-\" = stdin)")
	dagAxes := flag.String("dag", "", "print the stage-schedule DAG for a sweep over these axes (comma-separated, e.g. \"idle,mem\") as Graphviz DOT, without running it")
	verbose := flag.Bool("v", false, "log engine progress events to stderr")
	flag.Parse()

	if *renderPath != "" {
		if err := renderStream(*renderPath); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		return
	}
	if *dagAxes != "" {
		if err := printDAG(*dagAxes); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		return
	}

	opts := []preexec.Option{}
	if *verbose {
		opts = append(opts, preexec.WithObserver(func(ev preexec.Event) {
			fmt.Fprintf(os.Stderr, "report: %-15s %-10s %-6s %s\n", ev.Kind, ev.Bench, ev.Input, ev.Target)
		}))
	}
	lab := preexec.New(opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	names := preexec.PaperBenchmarks()
	all := *fig == 0 && *table == 0

	if all || *fig == 2 {
		rep, err := lab.Figure2(ctx, names)
		emit("figure2", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Figure2Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *fig == 3 {
		rep, err := lab.Figure3(ctx, names)
		emit("figure3", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Figure3Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *table == 3 {
		rep, err := lab.Table3(ctx, preexec.Table3Benchmarks())
		emit("table3", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Table3Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *fig == 4 {
		rep, err := lab.Figure4(ctx, names)
		emit("figure4", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.Figure4Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
	if all || *fig == 5 {
		for _, axis := range []preexec.SweepAxis{
			preexec.SweepIdleFactor, preexec.SweepMemLatency, preexec.SweepL2Size,
		} {
			rep, err := lab.Figure5(ctx, axis, preexec.Figure5Benchmarks(axis))
			emit("figure5/"+axis.String(), rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
				var r preexec.Figure5Report
				return &r, json.Unmarshal(raw, &r)
			})
		}
	}
	if all {
		rep, err := lab.ED2Study(ctx, names)
		emit("ed2", rep, err, *asJSON, func(raw []byte) (preexec.Report, error) {
			var r preexec.ED2Report
			return &r, json.Unmarshal(raw, &r)
		})
	}
}

// printDAG plans a sweep grid over the named sensitivity axes for the paper
// benchmarks and prints the critical-path scheduler's stage DAG as DOT.
func printDAG(axes string) error {
	g := preexec.Grid{Benchmarks: preexec.PaperBenchmarks()}
	for _, name := range strings.Split(axes, ",") {
		axis, err := preexec.ParseSweepAxis(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		g.Axes = append(g.Axes, preexec.GridAxis(axis))
	}
	dag, err := preexec.New().SweepDAG(g)
	if err != nil {
		return err
	}
	fmt.Print(dag.DOT())
	return nil
}

// decoderFor maps an artifact name from the stream to its report type.
func decoderFor(name string) func([]byte) (preexec.Report, error) {
	decode := func(r preexec.Report) func([]byte) (preexec.Report, error) {
		return func(raw []byte) (preexec.Report, error) { return r, json.Unmarshal(raw, r) }
	}
	switch {
	case name == "figure2":
		return decode(&preexec.Figure2Report{})
	case name == "figure3":
		return decode(&preexec.Figure3Report{})
	case name == "table3":
		return decode(&preexec.Table3Report{})
	case name == "figure4":
		return decode(&preexec.Figure4Report{})
	case strings.HasPrefix(name, "figure5"):
		return decode(&preexec.Figure5Report{})
	case name == "ed2":
		return decode(&preexec.ED2Report{})
	case name == "sweep":
		return decode(&preexec.SweepReport{})
	case name == "campaign":
		return decode(&preexec.CampaignReport{})
	}
	return nil
}

// renderStream decodes a JSON artifact stream (one {"artifact","report"}
// object per line, as emitted by -json or by cmd/sweep -json) and renders
// each artifact. Progress-event lines — objects carrying a "kind" and no
// "artifact", as in a daemon job's NDJSON event stream — are skipped
// without inspection of the kind, so streams from newer daemons with event
// kinds this build has never heard of still render.
func renderStream(path string) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 64<<20) // reports can be large
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var env struct {
			Artifact string          `json:"artifact"`
			Report   json.RawMessage `json:"report"`
			Kind     string          `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			return fmt.Errorf("artifact stream line %d: %w", n+1, err)
		}
		if env.Artifact == "" && env.Kind != "" {
			continue // progress event from a job stream; any kind, even unknown
		}
		decode := decoderFor(env.Artifact)
		if decode == nil {
			return fmt.Errorf("artifact stream line %d: unknown artifact %q", n+1, env.Artifact)
		}
		rep, err := decode(env.Report)
		if err != nil {
			return fmt.Errorf("artifact %q: %w", env.Artifact, err)
		}
		fmt.Println(rep.Render())
		n++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no artifacts in %s", path)
	}
	return nil
}

// emit serializes one artifact to JSON. In JSON mode the artifact streams
// out as {"artifact": name, "report": ...}; in text mode the JSON is
// decoded back into a fresh report and rendered from the decoded copy.
func emit(name string, rep preexec.Report, err error, asJSON bool, decode func([]byte) (preexec.Report, error)) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report: marshal:", err)
		os.Exit(1)
	}
	if asJSON {
		out, err := json.Marshal(struct {
			Artifact string          `json:"artifact"`
			Report   json.RawMessage `json:"report"`
		}{name, raw})
		if err != nil {
			fmt.Fprintln(os.Stderr, "report: marshal:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	decoded, err := decode(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report: decode:", err)
		os.Exit(1)
	}
	fmt.Println(decoded.Render())
}
