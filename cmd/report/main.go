// Command report regenerates the paper's evaluation artifacts: Figure 2,
// Figure 3, Table 3, Figure 4, Figure 5 (all three axes) and the ED² study.
//
// Usage:
//
//	report              # everything (several minutes)
//	report -fig 3       # one figure
//	report -table 3     # the validation table
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (2, 3, 4 or 5); 0 = all")
	table := flag.Int("table", 0, "regenerate one table (3); 0 = all")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	names := experiments.PaperBenchmarks()
	all := *fig == 0 && *table == 0

	emit := func(out string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if all || *fig == 2 {
		emit(experiments.Figure2(names, cfg))
	}
	if all || *fig == 3 {
		out, _, err := experiments.Figure3(names, cfg)
		emit(out, err)
	}
	if all || *table == 3 {
		_, out, err := experiments.Table3(experiments.Table3Benchmarks(), cfg)
		emit(out, err)
	}
	if all || *fig == 4 {
		emit(experiments.Figure4(names, cfg))
	}
	if all || *fig == 5 {
		for _, axis := range []experiments.SweepAxis{
			experiments.SweepIdleFactor, experiments.SweepMemLatency, experiments.SweepL2Size,
		} {
			emit(experiments.Figure5(axis, experiments.Figure5Benchmarks(axis), cfg))
		}
	}
	if all {
		emit(experiments.ED2Study(names, cfg))
	}
}
