// Command preexec runs one benchmark end-to-end: baseline simulation,
// p-thread selection under a chosen target, and the pre-execution run,
// printing the paper's metrics. Ctrl-C cancels a run mid-simulation.
//
// Usage:
//
//	preexec -bench mcf -target L
//	preexec -bench gap -target E -idle 0.10
//	preexec -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	preexec "repro"
	"repro/internal/program"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark name (see -list)")
	target := flag.String("target", "L", "selection target: O, L, E, P, P2")
	idle := flag.Float64("idle", 0.05, "idle energy factor")
	memlat := flag.Int("memlat", 200, "memory latency in cycles")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "log engine progress events to stderr")
	flag.Parse()

	if *list {
		for _, n := range preexec.Benchmarks() {
			bm, _ := program.ByName(n)
			fmt.Printf("%-10s %s\n", n, bm.Description)
		}
		return
	}

	tgt, err := preexec.ParseTarget(*target)
	if err != nil {
		fatal(err)
	}
	cfg := preexec.DefaultConfig()
	cfg.CPU.Energy.IdleFactor = *idle
	cfg.CPU.Hier.MemLatency = *memlat

	opts := []preexec.Option{preexec.WithConfig(cfg)}
	if *verbose {
		opts = append(opts, preexec.WithObserver(func(ev preexec.Event) {
			fmt.Fprintf(os.Stderr, "preexec: %s %s %s %s\n", ev.Kind, ev.Bench, ev.Input, ev.Target)
		}))
	}
	lab := preexec.New(opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	study, err := lab.AnalyzeBenchmark(ctx, *bench)
	if err != nil {
		fatal(err)
	}
	run, err := study.Run(ctx, tgt)
	if err != nil {
		fatal(err)
	}
	base := study.Baseline()
	fmt.Printf("benchmark      %s (train input)\n", *bench)
	fmt.Printf("baseline       %d cycles, IPC %.3f, %d L2 misses, energy %.0f\n",
		base.Cycles, base.IPC(), base.DemandL2Misses, base.Energy.Total())
	fmt.Printf("target         %s-p-threads: %d selected (avg len %.1f) from %d candidates\n",
		tgt, len(run.Sel.PThreads), run.AvgPThreadLen, run.Sel.CandidatesEvaluated)
	fmt.Printf("pre-execution  %d cycles, IPC %.3f\n", run.Res.Cycles, run.Res.IPC())
	fmt.Printf("speedup        %+.1f%%   energy %+.1f%%   ED %+.1f%%   ED2 %+.1f%%\n",
		run.SpeedupPct, run.EnergySavePct, run.EDSavePct, run.ED2SavePct)
	fmt.Printf("coverage       %.0f%% full + %.0f%% partial of baseline misses\n",
		run.FullCovPct, run.PartCovPct)
	fmt.Printf("overhead       %+.1f%% p-instructions, %.0f%% useful spawns\n",
		run.PInstIncPct, run.UsefulPct)
	fmt.Printf("predictions    LADVagg %.0f cycles, EADVagg %.0f energy units\n",
		run.Sel.PredLADV, run.Sel.PredEADV)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preexec:", err)
	os.Exit(1)
}
