// Command benchgate runs the simulator benchmark suite, writes the measured
// numbers to BENCH_sim.json (the CI artifact), and gates the build against a
// committed baseline:
//
//   - the event-engine hot-loop throughput (sim-cycles/s) must not regress
//     more than -tolerance (default 15%) below the baseline file,
//   - the event/scan engine speedup must stay at or above the baseline's
//     MinSpeedup (the PR 2 tentpole's machine-independent >= 1.5x
//     requirement), and
//   - the event engine's steady-state allocation rate must not exceed the
//     baseline's MaxEventAllocsPerOp / MaxEventBytesPerOp (0 since the
//     zero-allocation run-reuse tentpole: one Reset+run over the full suite
//     allocates nothing), and
//   - a warm 3-point sweep grid must not perform more heavy stage builds
//     (trace/profile/slice-tree executions) than the baseline's
//     MaxWarmGridStageBuilds (0 since the staged-pipeline tentpole: warm
//     sweep points reuse every cached upstream artifact), and
//   - the batched engine's paired speedup at width 4 (BenchmarkSimBatched/
//     speedup4, which interleaves four serial runs against one width-4 batch
//     per workload so machine-speed drift cancels out of the ratio) must
//     stay at or above the baseline's MinBatchSpeedupK4 (machine-independent
//     > 1.0: four batched runs must beat four serial runs), and
//   - the critical-path scheduler's paired cold-sweep gain on the 3-axis
//     grid (BenchmarkSweepSched, naive and scheduled sides interleaved per
//     iteration) must stay at or above the baseline's MinSweepSchedGain
//     (machine-independent; 1.0 = scheduling must never lose to naive
//     grid order), and
//   - the mapped trace-spill load (BenchmarkTraceSpill, v1 heap decode and
//     mapped open+verify interleaved per iteration so drift cancels) must
//     stay at or above the baseline's MinSpillMapGain over the v1 path
//     (machine-independent; the zero-copy tentpole's >= 5x requirement).
//
// Usage:
//
//	go run ./cmd/benchgate                 # measure + gate against testdata/bench_baseline.json
//	go run ./cmd/benchgate -update         # refresh the baseline from this machine
//
// The refresh procedure is documented in EXPERIMENTS.md: -update records
// this machine's measured throughput verbatim (and the measured allocation
// columns, which are machine-independent); when refreshing the committed
// baseline for heterogeneous CI runners, scale EventCyclesPerSec down (the
// repo commits ~50% of a reference run) so the 15% gate trips on real
// regressions rather than on runner lottery.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Report is the BENCH_sim.json artifact schema.
type Report struct {
	EventCyclesPerSec float64 // BenchmarkSimHotLoop/event sim-cycles/s
	ScanCyclesPerSec  float64 // BenchmarkSimHotLoop/scan sim-cycles/s
	Speedup           float64 // event / scan
	EventAllocsPerOp  float64 // steady-state allocations per full-suite op (event engine)
	EventBytesPerOp   float64 // steady-state bytes allocated per full-suite op

	// Trace spill columns (BenchmarkTraceSpill): seconds per warm load of
	// the full paper suite's spilled traces through the v1 heap path (read +
	// checksum + serial decode) vs the zero-copy mapped path (mmap + chunk
	// verify). The two sides run back to back per iteration, so the gated
	// SpillMapGain ratio (load / map) is robust to machine drift.
	TraceSpillLoadSec float64
	TraceSpillMapSec  float64
	SpillMapGain      float64

	// Batched engine columns (BenchmarkSimBatched): aggregate sim-cycles/s
	// across all instances of a batch, per width (informational — measured
	// at different times, so the ratios carry machine drift). The gated
	// column is BatchSpeedupK4, the paired speedup4 sub-benchmark's ratio:
	// four serial runs and one width-4 batch interleaved per workload, so
	// drift cancels. BatchAllocsPerOp is the k4 loop's steady-state
	// allocation rate (0 under batch-simulator reuse).
	BatchK1CyclesPerSec float64
	BatchK2CyclesPerSec float64
	BatchK4CyclesPerSec float64
	BatchK8CyclesPerSec float64
	BatchSpeedupK4      float64
	BatchAllocsPerOp    float64

	// Sweep grid columns (BenchmarkSweepGrid): seconds per 3-point
	// single-axis sweep, cold (fresh engine) vs warm (every stage
	// artifact cached), plus the heavy stage executions (trace + profile
	// + slice builds) each performs. Warm builds are the gated column:
	// the staged pipeline guarantees 0.
	SweepColdSec        float64
	SweepWarmSec        float64
	ColdGridStageBuilds float64
	WarmGridStageBuilds float64

	// Scheduler columns (BenchmarkSweepSched): seconds per cold 3-axis
	// 27-point sweep over three benchmarks under naive bench-major order
	// vs the critical-path scheduler, paired on interleaved timers within
	// each iteration so machine drift cancels out of SweepSchedGain
	// (naive / scheduled; > 1 means the scheduler wins). The gain ratio is
	// the gated column: the scheduler must never be slower than naive.
	SweepColdNaiveSec float64
	SweepColdSchedSec float64
	SweepSchedGain    float64
}

// Baseline is the committed gate (testdata/bench_baseline.json).
type Baseline struct {
	// EventCyclesPerSec is the throughput floor reference; the gate fails
	// when the measured value drops more than the tolerance below it.
	EventCyclesPerSec float64
	// MinSpeedup is the required event/scan ratio (machine-independent).
	MinSpeedup float64
	// MaxEventAllocsPerOp and MaxEventBytesPerOp cap the event engine's
	// steady-state allocation rate (machine-independent; 0 = the hot loop
	// must be allocation-free under simulator reuse).
	MaxEventAllocsPerOp float64
	MaxEventBytesPerOp  float64
	// MaxWarmGridStageBuilds caps the heavy stage executions (trace +
	// profile + slice builds) a warm 3-point sweep grid may perform
	// (machine-independent; 0 = warm sweep points must reuse every cached
	// upstream artifact — the staged-pipeline contract).
	MaxWarmGridStageBuilds float64
	// MinBatchSpeedupK4 is the required paired serial/batched wall-clock
	// ratio at width 4 (machine-independent; > 1.0 = a width-4 batch must
	// beat four serial runs of the same workloads).
	MinBatchSpeedupK4 float64
	// MinSweepSchedGain is the required paired naive/scheduled cold-sweep
	// wall-clock ratio (machine-independent; 1.0 = the critical-path
	// scheduler must be no worse than naive grid order on the 3-axis grid).
	MinSweepSchedGain float64
	// MinSpillMapGain is the required paired v1-decode/mapped-open ratio for
	// warm trace spill loads (machine-independent; the zero-copy mapped path
	// must load the paper suite's traces at least this much faster than the
	// v1 heap decode).
	MinSpillMapGain float64
	Note            string `json:",omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "testdata/bench_baseline.json", "committed baseline file")
	outPath := flag.String("out", "BENCH_sim.json", "where to write the measured report")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional throughput regression")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime for the hot loop")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	rep := Report{}
	// Ratio-gated columns (event/scan, k4/k1) are measured -count 3 and
	// aggregated best-of per column: on shared runners a single sample of
	// either side can swing ±20% from CPU steal, which would trip (or mask)
	// a ratio gate; the best observed throughput of each column is the
	// standard noise-resistant estimator.
	hot, err := runBench("BenchmarkSimHotLoop", *benchtime, 3)
	if err != nil {
		fatal("hot loop benchmark: %v", err)
	}
	event := hot["BenchmarkSimHotLoop/event"]
	rep.EventCyclesPerSec = event.metric
	rep.ScanCyclesPerSec = hot["BenchmarkSimHotLoop/scan"].metric
	if rep.EventCyclesPerSec <= 0 || rep.ScanCyclesPerSec <= 0 {
		fatal("missing sim-cycles/s metrics in benchmark output")
	}
	rep.Speedup = rep.EventCyclesPerSec / rep.ScanCyclesPerSec
	rep.EventAllocsPerOp = event.allocsPerOp
	rep.EventBytesPerOp = event.bytesPerOp

	batched, err := runBench("BenchmarkSimBatched/(k1|k2|k4|k8)", *benchtime, 3)
	if err != nil {
		fatal("batched benchmark: %v", err)
	}
	k4 := batched["BenchmarkSimBatched/k4"]
	rep.BatchK1CyclesPerSec = batched["BenchmarkSimBatched/k1"].metric
	rep.BatchK2CyclesPerSec = batched["BenchmarkSimBatched/k2"].metric
	rep.BatchK4CyclesPerSec = k4.metric
	rep.BatchK8CyclesPerSec = batched["BenchmarkSimBatched/k8"].metric
	if rep.BatchK1CyclesPerSec <= 0 || rep.BatchK4CyclesPerSec <= 0 {
		fatal("missing sim-cycles/s metrics in batched benchmark output")
	}
	rep.BatchAllocsPerOp = k4.allocsPerOp
	// The gated ratio comes from the paired sub-benchmark, not the k4/k1
	// columns above: pairing serial and batched timings per workload within
	// each iteration is what makes a 1.0 threshold meaningful on machines
	// whose clock drifts more than the batching win.
	paired, err := runBench("BenchmarkSimBatched/speedup4", "2x", 3)
	if err != nil {
		fatal("paired batch speedup benchmark: %v", err)
	}
	rep.BatchSpeedupK4 = paired["BenchmarkSimBatched/speedup4"].batchSpeedup
	if rep.BatchSpeedupK4 <= 0 {
		fatal("missing batch-speedup-k4 metric in paired benchmark output")
	}

	grid, err := runBench("BenchmarkSweepGrid", "1x", 1)
	if err != nil {
		fatal("sweep grid benchmark: %v", err)
	}
	cold, warm := grid["BenchmarkSweepGrid/cold"], grid["BenchmarkSweepGrid/warm"]
	rep.SweepColdSec = cold.nsPerOp / 1e9
	rep.SweepWarmSec = warm.nsPerOp / 1e9
	rep.ColdGridStageBuilds = cold.gridStageBuilds
	rep.WarmGridStageBuilds = warm.gridStageBuilds
	if rep.ColdGridStageBuilds <= 0 {
		fatal("missing grid-stage-builds metric in sweep grid benchmark output")
	}
	// The warm sub-benchmark is the gated one, and its expected metric is 0,
	// so "missing from the output" must not masquerade as a pass.
	if rep.SweepWarmSec <= 0 {
		fatal("missing warm sweep grid benchmark output (BenchmarkSweepGrid/warm)")
	}

	// The scheduler comparison is paired like speedup4: naive and scheduled
	// cold sweeps of the same 3-axis grid interleave within each iteration,
	// so the gain ratio is robust to drift; best-of over repeats, because a
	// single sample's ratio carries per-run noise the pairing cannot cancel.
	sched, err := runBench("BenchmarkSweepSched", "1x", 3)
	if err != nil {
		fatal("sweep scheduler benchmark: %v", err)
	}
	ss := sched["BenchmarkSweepSched"]
	rep.SweepColdNaiveSec = ss.sweepNaiveSec
	rep.SweepColdSchedSec = ss.sweepSchedSec
	rep.SweepSchedGain = ss.sweepSchedGain
	if rep.SweepSchedGain <= 0 {
		fatal("missing sweep-sched-gain metric in scheduler benchmark output")
	}

	// The spill comparison pairs its two sides per iteration like speedup4
	// and the scheduler gate; best-of over repeats for the same reason.
	spill, err := runBench("BenchmarkTraceSpill", "10x", 3)
	if err != nil {
		fatal("trace spill benchmark: %v", err)
	}
	sp := spill["BenchmarkTraceSpill"]
	rep.TraceSpillLoadSec = sp.spillLoadSec
	rep.TraceSpillMapSec = sp.spillMapSec
	rep.SpillMapGain = sp.spillMapGain
	if rep.SpillMapGain <= 0 {
		fatal("missing spill-map-gain metric in trace spill benchmark output")
	}

	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
		fatal("write %s: %v", *outPath, err)
	}
	fmt.Printf("benchgate: event %.0f sim-cycles/s (%.0f allocs/op, %.0f B/op), scan %.0f sim-cycles/s, speedup %.2fx\n",
		rep.EventCyclesPerSec, rep.EventAllocsPerOp, rep.EventBytesPerOp, rep.ScanCyclesPerSec, rep.Speedup)
	fmt.Printf("benchgate: sweep grid cold %.2fs (%.0f stage builds), warm %.2fs (%.0f stage builds)\n",
		rep.SweepColdSec, rep.ColdGridStageBuilds, rep.SweepWarmSec, rep.WarmGridStageBuilds)
	fmt.Printf("benchgate: batched k1 %.0f, k2 %.0f, k4 %.0f, k8 %.0f sim-cycles/s; paired k4 speedup %.2fx (%.0f allocs/op)\n",
		rep.BatchK1CyclesPerSec, rep.BatchK2CyclesPerSec, rep.BatchK4CyclesPerSec,
		rep.BatchK8CyclesPerSec, rep.BatchSpeedupK4, rep.BatchAllocsPerOp)
	fmt.Printf("benchgate: 3-axis cold sweep naive %.2fs, scheduled %.2fs, paired gain %.2fx\n",
		rep.SweepColdNaiveSec, rep.SweepColdSchedSec, rep.SweepSchedGain)
	fmt.Printf("benchgate: trace spill v1 decode %.4fs, mapped open %.4fs, paired gain %.2fx\n",
		rep.TraceSpillLoadSec, rep.TraceSpillMapSec, rep.SpillMapGain)

	if *update {
		b := Baseline{
			EventCyclesPerSec:      rep.EventCyclesPerSec,
			MinSpeedup:             1.5,
			MaxEventAllocsPerOp:    rep.EventAllocsPerOp,
			MaxEventBytesPerOp:     rep.EventBytesPerOp,
			MaxWarmGridStageBuilds: rep.WarmGridStageBuilds,
			MinBatchSpeedupK4:      1.0,
			MinSweepSchedGain:      1.0,
			MinSpillMapGain:        5.0,
			Note:                   "measured by cmd/benchgate -update; scale EventCyclesPerSec down for heterogeneous CI runners (see EXPERIMENTS.md)",
		}
		braw, _ := json.MarshalIndent(b, "", "  ")
		braw = append(braw, '\n')
		if err := os.WriteFile(*baselinePath, braw, 0o644); err != nil {
			fatal("write %s: %v", *baselinePath, err)
		}
		fmt.Printf("benchgate: baseline refreshed at %s\n", *baselinePath)
		return
	}

	braw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v (run with -update to create one)", err)
	}
	var base Baseline
	if err := json.Unmarshal(braw, &base); err != nil {
		fatal("parse baseline: %v", err)
	}
	floor := base.EventCyclesPerSec * (1 - *tolerance)
	if rep.EventCyclesPerSec < floor {
		fatal("throughput regression: event engine %.0f sim-cycles/s < floor %.0f (baseline %.0f - %.0f%%)",
			rep.EventCyclesPerSec, floor, base.EventCyclesPerSec, *tolerance*100)
	}
	if base.MinSpeedup > 0 && rep.Speedup < base.MinSpeedup {
		fatal("speedup regression: event/scan %.2fx < required %.2fx", rep.Speedup, base.MinSpeedup)
	}
	// Allocation gates are exact, not tolerance-scaled: the baseline commits
	// 0, and any steady-state allocation in the reused hot loop is a
	// regression of the zero-allocation contract.
	if rep.EventAllocsPerOp > base.MaxEventAllocsPerOp {
		fatal("allocation regression: event engine %.0f allocs/op > allowed %.0f (steady-state sim reuse must not allocate)",
			rep.EventAllocsPerOp, base.MaxEventAllocsPerOp)
	}
	if rep.EventBytesPerOp > base.MaxEventBytesPerOp {
		fatal("allocation regression: event engine %.0f B/op > allowed %.0f",
			rep.EventBytesPerOp, base.MaxEventBytesPerOp)
	}
	// The warm-grid gate is exact, like the allocation gates: a warm sweep
	// point re-running tracing, profiling or slicing breaks the staged
	// pipeline's reuse contract regardless of how fast the machine is.
	if rep.WarmGridStageBuilds > base.MaxWarmGridStageBuilds {
		fatal("stage-reuse regression: warm sweep grid performed %.0f heavy stage builds > allowed %.0f (warm points must reuse cached trace/profile/slices)",
			rep.WarmGridStageBuilds, base.MaxWarmGridStageBuilds)
	}
	if base.MinBatchSpeedupK4 > 0 && rep.BatchSpeedupK4 < base.MinBatchSpeedupK4 {
		fatal("batch speedup regression: paired k4 %.2fx < required %.2fx (a width-4 batch must beat four serial runs)",
			rep.BatchSpeedupK4, base.MinBatchSpeedupK4)
	}
	if base.MinSweepSchedGain > 0 && rep.SweepSchedGain < base.MinSweepSchedGain {
		fatal("scheduler regression: paired cold-sweep gain %.2fx < required %.2fx (critical-path scheduling must be no worse than naive grid order)",
			rep.SweepSchedGain, base.MinSweepSchedGain)
	}
	if base.MinSpillMapGain > 0 && rep.SpillMapGain < base.MinSpillMapGain {
		fatal("spill regression: paired mapped trace-load gain %.2fx < required %.2fx (the zero-copy mapped path must beat the v1 heap decode)",
			rep.SpillMapGain, base.MinSpillMapGain)
	}
	fmt.Printf("benchgate: PASS (floor %.0f sim-cycles/s, min speedup %.2fx, max %.0f allocs/op, max %.0f warm grid stage builds, min batch speedup %.2fx, min sched gain %.2fx, min spill map gain %.2fx)\n",
		floor, base.MinSpeedup, base.MaxEventAllocsPerOp, base.MaxWarmGridStageBuilds, base.MinBatchSpeedupK4, base.MinSweepSchedGain, base.MinSpillMapGain)
}

type benchLine struct {
	nsPerOp         float64
	metric          float64 // the benchmark's custom sim-cycles/s metric, if reported
	batchSpeedup    float64 // BenchmarkSimBatched/speedup4's paired batch-speedup-k4 ratio
	gridStageBuilds float64 // BenchmarkSweepGrid's grid-stage-builds metric
	sweepNaiveSec   float64 // BenchmarkSweepSched's sweep-cold-naive-sec metric
	sweepSchedSec   float64 // BenchmarkSweepSched's sweep-cold-sched-sec metric
	sweepSchedGain  float64 // BenchmarkSweepSched's paired sweep-sched-gain ratio
	spillLoadSec    float64 // BenchmarkTraceSpill's trace-spill-load-sec metric
	spillMapSec     float64 // BenchmarkTraceSpill's trace-spill-map-sec metric
	spillMapGain    float64 // BenchmarkTraceSpill's paired spill-map-gain ratio
	bytesPerOp      float64 // -benchmem B/op
	allocsPerOp     float64 // -benchmem allocs/op
}

// runBench executes one `go test -bench` selection and parses its result
// lines into name -> {ns/op, sim-cycles/s, B/op, allocs/op}. With count >
// 1, repeated lines per benchmark are folded best-of for the speed columns
// (max throughput, min ns/op) and worst-of for the gated allocation and
// stage-build columns.
func runBench(pattern, benchtime string, count int) (map[string]benchLine, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "^"+pattern+"$",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-benchmem", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%v\n%s", err, out)
	}
	res := map[string]benchLine{}
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// "BenchmarkName/sub-8  N  123 ns/op  456 sim-cycles/s  0 B/op  0 allocs/op"
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		var bl benchLine
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				bl.nsPerOp = v
			case "sim-cycles/s":
				bl.metric = v
			case "batch-speedup-k4":
				bl.batchSpeedup = v
			case "grid-stage-builds":
				bl.gridStageBuilds = v
			case "sweep-cold-naive-sec":
				bl.sweepNaiveSec = v
			case "sweep-cold-sched-sec":
				bl.sweepSchedSec = v
			case "sweep-sched-gain":
				bl.sweepSchedGain = v
			case "trace-spill-load-sec":
				bl.spillLoadSec = v
			case "trace-spill-map-sec":
				bl.spillMapSec = v
			case "spill-map-gain":
				bl.spillMapGain = v
			case "B/op":
				bl.bytesPerOp = v
			case "allocs/op":
				bl.allocsPerOp = v
			}
		}
		if prev, ok := res[name]; ok {
			bl.metric = max(bl.metric, prev.metric)
			bl.batchSpeedup = max(bl.batchSpeedup, prev.batchSpeedup)
			bl.nsPerOp = min(bl.nsPerOp, prev.nsPerOp)
			bl.allocsPerOp = max(bl.allocsPerOp, prev.allocsPerOp)
			bl.bytesPerOp = max(bl.bytesPerOp, prev.bytesPerOp)
			bl.gridStageBuilds = max(bl.gridStageBuilds, prev.gridStageBuilds)
			bl.sweepNaiveSec = min(bl.sweepNaiveSec, prev.sweepNaiveSec)
			bl.sweepSchedSec = min(bl.sweepSchedSec, prev.sweepSchedSec)
			bl.sweepSchedGain = max(bl.sweepSchedGain, prev.sweepSchedGain)
			bl.spillLoadSec = min(bl.spillLoadSec, prev.spillLoadSec)
			bl.spillMapSec = min(bl.spillMapSec, prev.spillMapSec)
			bl.spillMapGain = max(bl.spillMapGain, prev.spillMapGain)
		}
		res[name] = bl
	}
	return res, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
