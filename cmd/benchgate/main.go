// Command benchgate runs the simulator benchmark suite, writes the measured
// numbers to BENCH_sim.json (the CI artifact), and gates the build against a
// committed baseline:
//
//   - the event-engine hot-loop throughput (sim-cycles/s) must not regress
//     more than -tolerance (default 15%) below the baseline file, and
//   - the event/scan engine speedup must stay at or above the baseline's
//     MinSpeedup (the tentpole's machine-independent >= 1.5x requirement).
//
// Usage:
//
//	go run ./cmd/benchgate                 # measure + gate against testdata/bench_baseline.json
//	go run ./cmd/benchgate -update         # refresh the baseline from this machine
//	go run ./cmd/benchgate -skip-suite     # hot loop only (quick local check)
//
// The refresh procedure is documented in EXPERIMENTS.md: -update records
// this machine's measured throughput verbatim; when refreshing the committed
// baseline for heterogeneous CI runners, scale EventCyclesPerSec down (the
// repo commits ~50% of a reference run) so the 15% gate trips on real
// regressions rather than on runner lottery.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Report is the BENCH_sim.json artifact schema.
type Report struct {
	EventCyclesPerSec float64 // BenchmarkSimHotLoop/event sim-cycles/s
	ScanCyclesPerSec  float64 // BenchmarkSimHotLoop/scan sim-cycles/s
	Speedup           float64 // event / scan
	FigureSuiteSec    float64 // BenchmarkFigureSuite seconds per full suite (0 when skipped)
}

// Baseline is the committed gate (testdata/bench_baseline.json).
type Baseline struct {
	// EventCyclesPerSec is the throughput floor reference; the gate fails
	// when the measured value drops more than the tolerance below it.
	EventCyclesPerSec float64
	// MinSpeedup is the required event/scan ratio (machine-independent).
	MinSpeedup float64
	Note       string `json:",omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "testdata/bench_baseline.json", "committed baseline file")
	outPath := flag.String("out", "BENCH_sim.json", "where to write the measured report")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional throughput regression")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime for the hot loop")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	skipSuite := flag.Bool("skip-suite", false, "skip the full-figure-suite benchmark")
	flag.Parse()

	rep := Report{}
	hot, err := runBench("BenchmarkSimHotLoop", *benchtime)
	if err != nil {
		fatal("hot loop benchmark: %v", err)
	}
	rep.EventCyclesPerSec = hot["BenchmarkSimHotLoop/event"].metric
	rep.ScanCyclesPerSec = hot["BenchmarkSimHotLoop/scan"].metric
	if rep.EventCyclesPerSec <= 0 || rep.ScanCyclesPerSec <= 0 {
		fatal("missing sim-cycles/s metrics in benchmark output")
	}
	rep.Speedup = rep.EventCyclesPerSec / rep.ScanCyclesPerSec

	if !*skipSuite {
		suite, err := runBench("BenchmarkFigureSuite", "1x")
		if err != nil {
			fatal("figure suite benchmark: %v", err)
		}
		rep.FigureSuiteSec = suite["BenchmarkFigureSuite"].nsPerOp / 1e9
	}

	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
		fatal("write %s: %v", *outPath, err)
	}
	fmt.Printf("benchgate: event %.0f sim-cycles/s, scan %.0f sim-cycles/s, speedup %.2fx\n",
		rep.EventCyclesPerSec, rep.ScanCyclesPerSec, rep.Speedup)

	if *update {
		b := Baseline{
			EventCyclesPerSec: rep.EventCyclesPerSec,
			MinSpeedup:        1.5,
			Note:              "measured by cmd/benchgate -update; scale EventCyclesPerSec down for heterogeneous CI runners (see EXPERIMENTS.md)",
		}
		braw, _ := json.MarshalIndent(b, "", "  ")
		braw = append(braw, '\n')
		if err := os.WriteFile(*baselinePath, braw, 0o644); err != nil {
			fatal("write %s: %v", *baselinePath, err)
		}
		fmt.Printf("benchgate: baseline refreshed at %s\n", *baselinePath)
		return
	}

	braw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v (run with -update to create one)", err)
	}
	var base Baseline
	if err := json.Unmarshal(braw, &base); err != nil {
		fatal("parse baseline: %v", err)
	}
	floor := base.EventCyclesPerSec * (1 - *tolerance)
	if rep.EventCyclesPerSec < floor {
		fatal("throughput regression: event engine %.0f sim-cycles/s < floor %.0f (baseline %.0f - %.0f%%)",
			rep.EventCyclesPerSec, floor, base.EventCyclesPerSec, *tolerance*100)
	}
	if base.MinSpeedup > 0 && rep.Speedup < base.MinSpeedup {
		fatal("speedup regression: event/scan %.2fx < required %.2fx", rep.Speedup, base.MinSpeedup)
	}
	fmt.Printf("benchgate: PASS (floor %.0f sim-cycles/s, min speedup %.2fx)\n", floor, base.MinSpeedup)
}

type benchLine struct {
	nsPerOp float64
	metric  float64 // the benchmark's custom sim-cycles/s metric, if reported
}

// runBench executes one `go test -bench` selection and parses its result
// lines into name -> {ns/op, sim-cycles/s}.
func runBench(pattern, benchtime string) (map[string]benchLine, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "^"+pattern+"$",
		"-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%v\n%s", err, out)
	}
	res := map[string]benchLine{}
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// "BenchmarkName/sub-8  N  123 ns/op  456 sim-cycles/s ..."
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		var bl benchLine
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				bl.nsPerOp = v
			case "sim-cycles/s":
				bl.metric = v
			}
		}
		res[name] = bl
	}
	return res, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
