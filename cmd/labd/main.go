// Command labd runs the persistent lab daemon: one long-lived Lab engine
// whose artifact store is backed by an on-disk content-addressed spill
// tier, behind an HTTP+JSON API.
//
// Usage:
//
//	labd -dir /var/lib/labd                     # serve on :8080
//	labd -dir ./store -addr 127.0.0.1:9000      # explicit listen address
//	labd -dir ./store -max-store-bytes 1e9 -j 4 # byte-budgeted store, bounded pool
//
// Submit sweeps with cmd/sweep's -addr flag (the daemon-side twin of a
// local sweep), or directly:
//
//	curl -s localhost:8080/v1/sweep -d '{"axes":["idle"],"benchmarks":["gap"]}'
//	curl -sN localhost:8080/v1/jobs/j1/events | report -render -
//	curl -s localhost:8080/v1/stats
//
// Because every job runs through one engine, concurrent clients share
// in-flight builds, and the disk store makes every heavy preparation stage
// survive daemon restarts: re-submitting a sweep after a restart rebuilds
// nothing. See EXPERIMENTS.md for the API and disk-layout details.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/labd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "artifact store directory (required)")
	maxBytes := flag.Int64("max-store-bytes", 0, "disk store byte budget (0 = unlimited)")
	parallelism := flag.Int("j", 0, "worker-pool bound (0 = GOMAXPROCS)")
	engine := flag.String("engine", "", "simulation engine for every job: event, scan or batched")
	batch := flag.Int("batch", 0, "sweep batch width k: run up to k same-trace measurements per streaming pass (0/1 = serial)")
	mmapSpill := flag.Bool("mmap", true, "serve warm trace loads from read-only memory mappings (zero-copy; false = heap decode)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "labd: -dir is required")
		os.Exit(2)
	}
	srv, err := labd.New(labd.Config{Dir: *dir, MaxStoreBytes: *maxBytes,
		Parallelism: *parallelism, Engine: *engine, BatchWidth: *batch,
		DisableMappedSpill: !*mmapSpill})
	if err != nil {
		fmt.Fprintln(os.Stderr, "labd:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "labd: serving on %s, store in %s\n", *addr, *dir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "labd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful stop: cancel running jobs, then drain connections (their
	// event streams terminate with the cancelled jobs).
	fmt.Fprintln(os.Stderr, "labd: shutting down")
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "labd:", err)
		os.Exit(1)
	}
}
