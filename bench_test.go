// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end-to-end (profiling,
// selection, timing simulation) and reports the headline numbers as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's artifacts. Absolute magnitudes depend on the
// synthetic workload substitution (see DESIGN.md); the orderings and signs
// are the reproduction targets recorded in EXPERIMENTS.md.
package preexec

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/pthsel"
)

// fig3 runs the primary study once per iteration and reports geometric-mean
// improvements for the requested target.
func fig3Gmeans(b *testing.B, tgt pthsel.Target) (spd, energy, ed float64) {
	b.Helper()
	cfg := experiments.DefaultConfig()
	var results []*experiments.BenchResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunAll(experiments.PaperBenchmarks(), []pthsel.Target{tgt}, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var s, e, d []float64
	for _, br := range results {
		r := br.Runs[tgt]
		s = append(s, r.SpeedupPct)
		e = append(e, r.EnergySavePct)
		d = append(d, r.EDSavePct)
	}
	return metrics.GMeanPct(s), metrics.GMeanPct(e), metrics.GMeanPct(d)
}

// BenchmarkFigure2Latency regenerates Figure 2's execution-time breakdowns
// (unoptimized vs original-PTHSEL pre-execution).
func BenchmarkFigure2Latency(b *testing.B) {
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(experiments.PaperBenchmarks(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Energy regenerates Figure 2's energy breakdowns; the
// reported metrics are the O-p-thread gmean speedup and energy cost (the
// paper: +13.8% performance at +11.9% energy).
func BenchmarkFigure2Energy(b *testing.B) {
	spd, energy, _ := fig3Gmeans(b, pthsel.TargetO)
	b.ReportMetric(spd, "gmean-%ipc-O")
	b.ReportMetric(-energy, "gmean-%energy-cost-O")
}

// BenchmarkFigure3Improvements regenerates Figure 3's top graph for all four
// primary targets and reports the L-target gmeans (paper: +16.4% IPC,
// −8.7% energy, +6.6% ED).
func BenchmarkFigure3Improvements(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = experiments.Figure3(experiments.PaperBenchmarks(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out) == 0 {
		b.Fatal("empty figure")
	}
	spd, energy, ed := fig3Gmeans(b, pthsel.TargetL)
	b.ReportMetric(spd, "gmean-%ipc-L")
	b.ReportMetric(energy, "gmean-%energy-save-L")
	b.ReportMetric(ed, "gmean-%ED-save-L")
}

// BenchmarkFigure3Diagnostics reports the diagnostics row (coverage,
// usefulness, p-instruction increase) for E-p-threads — the paper's
// "energy-free pre-execution" flavour.
func BenchmarkFigure3Diagnostics(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var results []*experiments.BenchResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunAll(experiments.PaperBenchmarks(), []pthsel.Target{pthsel.TargetE}, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var spd, energy []float64
	for _, br := range results {
		r := br.Runs[pthsel.TargetE]
		spd = append(spd, r.SpeedupPct)
		energy = append(energy, r.EnergySavePct)
	}
	b.ReportMetric(metrics.GMeanPct(spd), "gmean-%ipc-E")
	b.ReportMetric(metrics.GMeanPct(energy), "gmean-%energy-save-E")
}

// BenchmarkFigure3Breakdowns regenerates the bottom two graphs (time and
// energy stacks for N/O/L/E/P) and reports the P-target ED gmean (paper:
// −8.8% ED, the best balance).
func BenchmarkFigure3Breakdowns(b *testing.B) {
	spd, energy, ed := fig3Gmeans(b, pthsel.TargetP)
	b.ReportMetric(spd, "gmean-%ipc-P")
	b.ReportMetric(energy, "gmean-%energy-save-P")
	b.ReportMetric(ed, "gmean-%ED-save-P")
}

// BenchmarkTable3Validation regenerates the model-validation ratios for
// L-p-threads on gcc/parser/vortex/vpr.place (paper: 0.64–1.21).
func BenchmarkTable3Validation(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Table3(experiments.Table3Benchmarks(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.LatencyPred
	}
	b.ReportMetric(sum/float64(len(rows)), "mean-latency-pred-ratio")
}

// BenchmarkFigure4RealisticProfiling selects p-threads from ref-input
// profiles and measures on train (paper §5.3: gains degrade ≤20% relative
// for most benchmarks).
func BenchmarkFigure4RealisticProfiling(b *testing.B) {
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(experiments.PaperBenchmarks(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFigure5(b *testing.B, axis experiments.SweepAxis) {
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(axis, experiments.Figure5Benchmarks(axis), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5IdleFactor sweeps the idle energy factor (0/5/10%).
func BenchmarkFigure5IdleFactor(b *testing.B) { benchFigure5(b, experiments.SweepIdleFactor) }

// BenchmarkFigure5MemLatency sweeps memory latency (100/200/300 cycles).
func BenchmarkFigure5MemLatency(b *testing.B) { benchFigure5(b, experiments.SweepMemLatency) }

// BenchmarkFigure5L2Size sweeps the L2 (128KB/256KB/512KB).
func BenchmarkFigure5L2Size(b *testing.B) { benchFigure5(b, experiments.SweepL2Size) }

// BenchmarkED2Target reproduces the §5.1 ED² discussion (P2 ≈ L; both
// improve ED² strongly).
func BenchmarkED2Target(b *testing.B) {
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ED2Study(experiments.PaperBenchmarks(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// cycles per wall-clock second) on the mcf baseline — a substrate-health
// metric rather than a paper artifact.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := experiments.DefaultConfig()
	prep, err := experiments.Prepare("gap", program.Train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunTarget(prep, prep, pthsel.TargetL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += run.Res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}
