// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end-to-end (profiling,
// selection, timing simulation) through a fresh Lab engine per iteration
// (cold artifact store, matching the paper's from-scratch evaluation) and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's artifacts. Absolute magnitudes depend on the
// synthetic workload substitution; the orderings and signs are the
// reproduction targets recorded in EXPERIMENTS.md.
package preexec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bytes"

	"repro/internal/artifactdisk"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/pthsel"
	"repro/internal/trace"
)

// fig3Gmeans runs the primary study for one target once per iteration on a
// cold engine (a single-target campaign, so only that target's simulations
// are timed) and reports its geometric-mean improvements.
func fig3Gmeans(b *testing.B, tgt Target) (spd, energy, ed float64) {
	b.Helper()
	ctx := context.Background()
	var rep *CampaignReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = New().RunCampaign(ctx, PaperBenchmarks(), []Target{tgt})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
	}
	var s, e, d []float64
	for _, br := range rep.Benchmarks {
		for _, r := range br.Runs {
			s = append(s, r.SpeedupPct)
			e = append(e, r.EnergySavePct)
			d = append(d, r.EDSavePct)
		}
	}
	return metrics.GMeanPct(s), metrics.GMeanPct(e), metrics.GMeanPct(d)
}

// BenchmarkPrepareCold measures a full from-scratch preparation (trace,
// profile, slice trees, criticality curves, baseline simulation): every
// iteration uses a fresh Lab whose artifact store is empty.
func BenchmarkPrepareCold(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := New().AnalyzeBenchmark(ctx, "gap"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N), "prepares")
}

// BenchmarkPrepareCached measures the same entry point against a warm
// artifact store: one Lab serves every iteration, so the engine performs
// exactly one preparation regardless of b.N — the O(figures × benchmarks) →
// O(benchmarks) win of the Lab redesign, visible as ns/op several orders of
// magnitude below BenchmarkPrepareCold.
func BenchmarkPrepareCached(b *testing.B) {
	ctx := context.Background()
	lab := New()
	if _, err := lab.AnalyzeBenchmark(ctx, "gap"); err != nil {
		b.Fatal(err) // warm the store outside the timed loop
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.AnalyzeBenchmark(ctx, "gap"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lab.StagePrepares(StagePrepared)), "prepares")
}

// BenchmarkFigure2Latency regenerates Figure 2's execution-time breakdowns
// (unoptimized vs original-PTHSEL pre-execution).
func BenchmarkFigure2Latency(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := New().Figure2(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Energy regenerates Figure 2's energy breakdowns; the
// reported metrics are the O-p-thread gmean speedup and energy cost (the
// paper: +13.8% performance at +11.9% energy).
func BenchmarkFigure2Energy(b *testing.B) {
	spd, energy, _ := fig3Gmeans(b, TargetO)
	b.ReportMetric(spd, "gmean-%ipc-O")
	b.ReportMetric(-energy, "gmean-%energy-cost-O")
}

// BenchmarkFigure3Improvements regenerates Figure 3's top graph for all four
// primary targets and reports the L-target gmeans (paper: +16.4% IPC,
// −8.7% energy, +6.6% ED).
func BenchmarkFigure3Improvements(b *testing.B) {
	ctx := context.Background()
	var rep *Figure3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = New().Figure3(ctx, PaperBenchmarks())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rep.Render()) == 0 {
		b.Fatal("empty figure")
	}
	spd, energy, ed := fig3Gmeans(b, TargetL)
	b.ReportMetric(spd, "gmean-%ipc-L")
	b.ReportMetric(energy, "gmean-%energy-save-L")
	b.ReportMetric(ed, "gmean-%ED-save-L")
}

// BenchmarkFigure3Diagnostics reports the diagnostics row (coverage,
// usefulness, p-instruction increase) for E-p-threads — the paper's
// "energy-free pre-execution" flavour.
func BenchmarkFigure3Diagnostics(b *testing.B) {
	spd, energy, _ := fig3Gmeans(b, TargetE)
	b.ReportMetric(spd, "gmean-%ipc-E")
	b.ReportMetric(energy, "gmean-%energy-save-E")
}

// BenchmarkFigure3Breakdowns regenerates the bottom two graphs (time and
// energy stacks) and reports the P-target ED gmean (paper: −8.8% ED, the
// best balance).
func BenchmarkFigure3Breakdowns(b *testing.B) {
	spd, energy, ed := fig3Gmeans(b, TargetP)
	b.ReportMetric(spd, "gmean-%ipc-P")
	b.ReportMetric(energy, "gmean-%energy-save-P")
	b.ReportMetric(ed, "gmean-%ED-save-P")
}

// BenchmarkTable3Validation regenerates the model-validation ratios for
// L-p-threads on gcc/parser/vortex/vpr.place (paper: 0.64–1.21).
func BenchmarkTable3Validation(b *testing.B) {
	ctx := context.Background()
	var rep *Table3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = New().Table3(ctx, Table3Benchmarks())
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rep.Rows {
		sum += r.LatencyPred
	}
	b.ReportMetric(sum/float64(len(rep.Rows)), "mean-latency-pred-ratio")
}

// BenchmarkFigure4RealisticProfiling selects p-threads from ref-input
// profiles and measures on train (paper §5.3: gains degrade ≤20% relative
// for most benchmarks).
func BenchmarkFigure4RealisticProfiling(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := New().Figure4(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFigure5(b *testing.B, axis SweepAxis) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := New().Figure5(ctx, axis, Figure5Benchmarks(axis)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5IdleFactor sweeps the idle energy factor (0/5/10%).
func BenchmarkFigure5IdleFactor(b *testing.B) { benchFigure5(b, SweepIdleFactor) }

// BenchmarkFigure5MemLatency sweeps memory latency (100/200/300 cycles).
func BenchmarkFigure5MemLatency(b *testing.B) { benchFigure5(b, SweepMemLatency) }

// BenchmarkFigure5L2Size sweeps the L2 (128KB/256KB/512KB).
func BenchmarkFigure5L2Size(b *testing.B) { benchFigure5(b, SweepL2Size) }

// sweepGridFixture is the benchmark grid: the paper's idle-factor axis on
// the smallest benchmark, under the default sensitivity targets.
func sweepGridFixture() Grid {
	return Grid{Axes: []Axis{GridAxis(SweepIdleFactor)}, Benchmarks: []string{"gap"}}
}

// heavyStageBuilds counts the expensive upstream stage executions (trace,
// profile, slice trees) an engine has performed — the per-stage reuse
// observable cmd/benchgate gates.
func heavyStageBuilds(lab *Lab) int64 {
	return lab.StagePrepares(StageTrace) + lab.StagePrepares(StageProfile) + lab.StagePrepares(StageSlices)
}

// BenchmarkSweepGrid measures a 3-point single-axis sweep grid cold (fresh
// engine, every stage built once thanks to per-stage sharing) versus warm
// (every artifact cached; only the target measurements run). Both variants
// report grid-stage-builds — heavy stage executions per sweep — which is 3
// cold (one trace + one profile + one slice build for the benchmark) and
// must be exactly 0 warm: cmd/benchgate gates the warm column, so a
// regression that re-runs tracing, profiling or slicing for already-seen
// sweep points fails CI.
func BenchmarkSweepGrid(b *testing.B) {
	ctx := context.Background()
	grid := sweepGridFixture()
	b.Run("cold", func(b *testing.B) {
		var builds int64
		for i := 0; i < b.N; i++ {
			lab := New()
			if _, err := lab.Sweep(ctx, grid); err != nil {
				b.Fatal(err)
			}
			builds += heavyStageBuilds(lab)
		}
		b.ReportMetric(float64(builds)/float64(b.N), "grid-stage-builds")
	})
	b.Run("warm", func(b *testing.B) {
		lab := New()
		if _, err := lab.Sweep(ctx, grid); err != nil {
			b.Fatal(err) // warm every stage artifact outside the timed loop
		}
		start := heavyStageBuilds(lab)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lab.Sweep(ctx, grid); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(heavyStageBuilds(lab)-start)/float64(b.N), "grid-stage-builds")
	})
}

// BenchmarkSweepSched compares a cold multi-axis sweep under naive
// bench-major scheduling against the critical-path scheduler on the same
// grid: five benchmarks × all three sensitivity axes (27 points each),
// measured under the L target with a fixed 8-worker pool. The two sides run
// back to back on interleaved timers within each iteration — the paired
// pattern of BenchmarkSimBatched — so machine-speed drift cancels out of
// the reported sweep-sched-gain ratio (naive / scheduled wall-clock; > 1
// means the scheduler wins). cmd/benchgate gates that ratio at no worse
// than naive. Each side uses a fresh Lab (cold store, cost model at
// priors), so the gain measured is pure ordering: starting the grid's long
// trace → profile → slices chains first and pre-building shared stages on
// idle workers instead of convoying every worker behind grid-order
// singleflight waits. The win requires real parallelism — on a single-core
// machine every order costs total-work time and the ratio sits at ~1.0 —
// which is why the committed benchgate floor carries a small noise margin.
func BenchmarkSweepSched(b *testing.B) {
	ctx := context.Background()
	grid := Grid{
		Axes: []Axis{GridAxis(SweepIdleFactor), GridAxis(SweepMemLatency),
			GridAxis(SweepL2Size)},
		Benchmarks: []string{"gap", "mcf", "parser", "twolf", "vortex"},
		Targets:    []Target{TargetL},
	}
	var naive, sched time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := New(WithParallelism(8), WithScheduling(false)).Sweep(ctx, grid); err != nil {
			b.Fatal(err)
		}
		naive += time.Since(start)
		start = time.Now()
		if _, err := New(WithParallelism(8), WithScheduling(true)).Sweep(ctx, grid); err != nil {
			b.Fatal(err)
		}
		sched += time.Since(start)
	}
	b.ReportMetric(naive.Seconds()/float64(b.N), "sweep-cold-naive-sec")
	b.ReportMetric(sched.Seconds()/float64(b.N), "sweep-cold-sched-sec")
	b.ReportMetric(naive.Seconds()/sched.Seconds(), "sweep-sched-gain")
}

// BenchmarkED2Target reproduces the §5.1 ED² discussion (P2 ≈ L; both
// improve ED² strongly).
func BenchmarkED2Target(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := New().ED2Study(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
	}
}

// hotLoopWorkload is one prepared (trace, p-threads) pair for the hot-loop
// benchmark; preparation and selection run once per process, outside any
// timed region.
type hotLoopWorkload struct {
	trace    *trace.Trace
	pthreads []*cpu.PThread
}

var hotLoop struct {
	once      sync.Once
	cfg       experiments.Config
	workloads []hotLoopWorkload
	err       error
}

func hotLoopWorkloads(b *testing.B) []hotLoopWorkload {
	b.Helper()
	hotLoop.once.Do(func() {
		ctx := context.Background()
		hotLoop.cfg = experiments.DefaultConfig()
		// The gated corpus is the pinned paper nine: tests in this binary
		// may have registered generated workloads, which must not leak into
		// the benchgate baseline.
		for _, name := range program.PaperNames() {
			prep, err := experiments.Prepare(ctx, name, program.Train, hotLoop.cfg)
			if err != nil {
				hotLoop.err = err
				return
			}
			sel := pthsel.Select(prep.Trace, prep.Prof, prep.Trees, prep.Params, pthsel.TargetL)
			hotLoop.workloads = append(hotLoop.workloads, hotLoopWorkload{
				trace:    prep.Trace,
				pthreads: sel.PThreads,
			})
		}
	})
	if hotLoop.err != nil {
		b.Fatal(hotLoop.err)
	}
	return hotLoop.workloads
}

// simHotLoop times the cycle simulator's hot loop alone — no preparation,
// no selection — across the full benchmark suite with L-p-threads
// installed, under the given engine, reporting simulated cycles per
// wall-clock second. One simulator per workload is built and warmed outside
// the timed region, then reused through Reset every iteration, exactly like
// the Lab's per-worker reuse: with every pool fully grown, the timed loop
// performs zero allocations (ReportAllocs must read 0 allocs/op; benchgate
// gates this).
func simHotLoop(b *testing.B, engine cpu.Engine) {
	ctx := context.Background()
	workloads := hotLoopWorkloads(b)
	simCfg := hotLoop.cfg.CPU
	simCfg.Engine = engine
	sims := make([]*cpu.Simulator, len(workloads))
	for i, wl := range workloads {
		s, err := cpu.NewSimulator(simCfg, wl.trace, wl.pthreads)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunContext(ctx); err != nil {
			b.Fatal(err) // warm-up run grows every internal pool
		}
		sims[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		for j, wl := range workloads {
			s := sims[j]
			if err := s.Reset(simCfg, wl.trace, wl.pthreads); err != nil {
				b.Fatal(err)
			}
			res, err := s.RunContext(ctx)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Cycles
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimHotLoop compares the event-driven wakeup scheduler against
// the reference per-cycle scan engine on the same prepared workloads (every
// paper benchmark, L-target p-threads installed). The event/scan
// sim-cycles/s ratio is the tentpole speedup that cmd/benchgate gates in CI
// (required: >= 1.5x), and the event engine's steady-state allocation rate
// is gated at 0 allocs/op.
func BenchmarkSimHotLoop(b *testing.B) {
	b.Run("event", func(b *testing.B) { simHotLoop(b, cpu.EngineEvent) })
	b.Run("scan", func(b *testing.B) { simHotLoop(b, cpu.EngineScan) })
}

// simBatched times the same hot loop through cpu.BatchSimulator at width k:
// every workload is simulated k instances at a time through one shared
// streaming pass over its trace chunks. Reported sim-cycles/s aggregates
// all k instances, so dividing by the serial (k1) column gives the batch
// speedup — how much cheaper k batched runs are than k serial ones. The
// batch simulator is built and warmed outside the timed region; with every
// pool grown the timed loop performs zero allocations.
func simBatched(b *testing.B, k int) {
	ctx := context.Background()
	workloads := hotLoopWorkloads(b)
	simCfg := hotLoop.cfg.CPU
	simCfg.Engine = cpu.EngineEvent
	cfgs := make([]cpu.Config, k)
	pthreads := make([][]*cpu.PThread, k)
	bs := cpu.NewBatchSimulator()
	run := func(wl hotLoopWorkload) int64 {
		for j := range cfgs {
			cfgs[j] = simCfg
			pthreads[j] = wl.pthreads
		}
		if err := bs.Reset(cfgs, wl.trace, pthreads); err != nil {
			b.Fatal(err)
		}
		results, errs, err := bs.RunContext(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var cycles int64
		for j, res := range results {
			if errs[j] != nil {
				b.Fatal(errs[j])
			}
			cycles += res.Cycles
		}
		return cycles
	}
	for _, wl := range workloads {
		run(wl) // warm-up pass grows every instance's pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		for _, wl := range workloads {
			cycles += run(wl)
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimBatched compares batched simulation against serial across
// widths: k1 is the serial event engine (the denominator), k2/k4/k8 run the
// same workloads through cpu.BatchSimulator, and speedup4 is the paired
// variant of the k4/k1 comparison: per workload, four serial runs and one
// width-4 batch execute back to back on interleaved timers, so machine-
// speed drift over the benchmark's lifetime cancels out of the reported
// batch-speedup-k4 ratio. cmd/benchgate gates that ratio (BatchSpeedupK4)
// above 1.0 — four batched runs must beat four serial runs — and the
// batched loop at 0 allocs/op. speedup1 is the paired control at width 1:
// it isolates the cost of the windowed-resume machinery itself (no sharing
// at width 1, and BatchSimulator skips the spawn oracle), so it should sit
// at ~1.0.
func BenchmarkSimBatched(b *testing.B) {
	b.Run("k1", func(b *testing.B) { simHotLoop(b, cpu.EngineEvent) })
	b.Run("k2", func(b *testing.B) { simBatched(b, 2) })
	b.Run("k4", func(b *testing.B) { simBatched(b, 4) })
	b.Run("k8", func(b *testing.B) { simBatched(b, 8) })
	b.Run("speedup1", func(b *testing.B) { simBatchSpeedup(b, 1) })
	b.Run("speedup4", func(b *testing.B) { simBatchSpeedup(b, 4) })
}

// simBatchSpeedup times k serial runs against one width-k batch of the same
// workload, interleaved per workload within each iteration, and reports the
// serial/batched wall-clock ratio. Pairing the two sides at ~seconds
// granularity makes the ratio robust to frequency scaling and CPU steal,
// which can swing independently-measured columns by ±20% on shared runners.
func simBatchSpeedup(b *testing.B, k int) {
	ctx := context.Background()
	workloads := hotLoopWorkloads(b)
	simCfg := hotLoop.cfg.CPU
	simCfg.Engine = cpu.EngineEvent
	sims := make([]*cpu.Simulator, len(workloads))
	for i, wl := range workloads {
		s, err := cpu.NewSimulator(simCfg, wl.trace, wl.pthreads)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunContext(ctx); err != nil {
			b.Fatal(err)
		}
		sims[i] = s
	}
	cfgs := make([]cpu.Config, k)
	pthreads := make([][]*cpu.PThread, k)
	bs := cpu.NewBatchSimulator()
	runBatch := func(wl hotLoopWorkload) {
		for j := range cfgs {
			cfgs[j] = simCfg
			pthreads[j] = wl.pthreads
		}
		if err := bs.Reset(cfgs, wl.trace, pthreads); err != nil {
			b.Fatal(err)
		}
		if _, _, err := bs.RunContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
	for _, wl := range workloads {
		runBatch(wl) // warm-up pass grows every instance's pools
	}
	b.ResetTimer()
	var serial, batched time.Duration
	for i := 0; i < b.N; i++ {
		for j, wl := range workloads {
			start := time.Now()
			for r := 0; r < k; r++ {
				if err := sims[j].Reset(simCfg, wl.trace, wl.pthreads); err != nil {
					b.Fatal(err)
				}
				if _, err := sims[j].RunContext(ctx); err != nil {
					b.Fatal(err)
				}
			}
			serial += time.Since(start)
			start = time.Now()
			runBatch(wl)
			batched += time.Since(start)
		}
	}
	b.ReportMetric(serial.Seconds()/batched.Seconds(), fmt.Sprintf("batch-speedup-k%d", k))
}

// BenchmarkFigureSuite regenerates the paper's full figure suite (Figures
// 2-5, Table 3 and the ED² study) through one shared Lab engine per
// iteration — the end-to-end number a full reproduction pays, dominated by
// simulation throughput. cmd/benchgate records it in BENCH_sim.json.
func BenchmarkFigureSuite(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		lab := New()
		if _, err := lab.Figure2(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
		if _, err := lab.Figure3(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
		if _, err := lab.Table3(ctx, Table3Benchmarks()); err != nil {
			b.Fatal(err)
		}
		if _, err := lab.Figure4(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
		for _, axis := range []SweepAxis{SweepIdleFactor, SweepMemLatency, SweepL2Size} {
			if _, err := lab.Figure5(ctx, axis, Figure5Benchmarks(axis)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := lab.ED2Study(ctx, PaperBenchmarks()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// cycles per wall-clock second) on the gap baseline — a substrate-health
// metric rather than a paper artifact.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ctx := context.Background()
	cfg := experiments.DefaultConfig()
	prep, err := experiments.Prepare(ctx, "gap", program.Train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunTarget(ctx, prep, prep, pthsel.TargetL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += run.Res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkTraceSpill times the two warm trace-load paths against each
// other over the paper suite's spilled traces: the v1 heap path (container
// read, whole-payload checksum, serial delta decode into fresh columns)
// versus the zero-copy mapped path (mmap, chunk-parallel checksum + PC-range
// verify, columns aliasing the mapping). Both sides run back to back per
// iteration so machine-speed drift cancels out of the reported
// spill-map-gain ratio, which cmd/benchgate gates (MinSpillMapGain).
func BenchmarkTraceSpill(b *testing.B) {
	if !artifactdisk.MapSupported() {
		b.Skip("platform cannot map files")
	}
	workloads := hotLoopWorkloads(b)
	store, err := artifactdisk.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	heapKeys := make([]artifactdisk.Key, len(workloads))
	mapKeys := make([]artifactdisk.Key, len(workloads))
	for i, wl := range workloads {
		name := fmt.Sprintf("wl%d", i)
		heapKeys[i] = artifactdisk.Key{Name: name, Input: "train", Stage: "trace", FP: "v1"}
		mapKeys[i] = artifactdisk.Key{Name: name, Input: "train", Stage: "trace", FP: "v2"}
		var v1buf, v2buf bytes.Buffer
		if err := wl.trace.EncodeBinary(&v1buf); err != nil {
			b.Fatal(err)
		}
		if err := store.Save(heapKeys[i], v1buf.Bytes()); err != nil {
			b.Fatal(err)
		}
		if err := wl.trace.EncodeBinaryV2(&v2buf); err != nil {
			b.Fatal(err)
		}
		if err := store.SaveAligned(mapKeys[i], v2buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var loadT, mapT time.Duration
	for i := 0; i < b.N; i++ {
		for j, wl := range workloads {
			start := time.Now()
			data, ok := store.Load(heapKeys[j])
			if !ok {
				b.Fatal("heap load missed")
			}
			if _, err := trace.DecodeBinary(bytes.NewReader(data), wl.trace.Prog); err != nil {
				b.Fatal(err)
			}
			loadT += time.Since(start)
			start = time.Now()
			m, ok := store.LoadMapped(mapKeys[j])
			if !ok {
				b.Fatal("mapped load missed")
			}
			if _, _, err := trace.MapBytes(m.Payload(), wl.trace.Prog); err != nil {
				b.Fatal(err)
			}
			// The unmap is untimed: production retains the mapping for the
			// engine's lifetime, so teardown is not part of the load path.
			mapT += time.Since(start)
			m.Close()
		}
	}
	b.ReportMetric(loadT.Seconds()/float64(b.N), "trace-spill-load-sec")
	b.ReportMetric(mapT.Seconds()/float64(b.N), "trace-spill-map-sec")
	b.ReportMetric(loadT.Seconds()/mapT.Seconds(), "spill-map-gain")
}
