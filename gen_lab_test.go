package preexec

import (
	"context"
	"strings"
	"testing"
)

// TestGenLabRegisterSpecs drives generated workloads through the public
// façade end to end: register specs, run a campaign over the returned names,
// and sweep a generator-knob axis against a config axis on one engine.
func TestGenLabRegisterSpecs(t *testing.T) {
	ctx := context.Background()
	lab := New()
	names, err := lab.RegisterSpecs(
		WorkloadSpec{Family: FamilyPointerChase, Seed: 301, WorkingSet: 1 << 13, Depth: 300},
		WorkloadSpec{Family: FamilyHashProbe, Seed: 302, WorkingSet: 1 << 13, Depth: 400},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	// Registered names are listed and buildable like built-ins.
	listed := map[string]bool{}
	for _, n := range Benchmarks() {
		listed[n] = true
	}
	for _, n := range names {
		if !listed[n] {
			t.Errorf("registered workload %s missing from Benchmarks()", n)
		}
		if _, err := lab.Benchmark(n); err != nil {
			t.Errorf("Benchmark(%s): %v", n, err)
		}
	}
	// But never leak into the paper's pinned benchmark list.
	for _, n := range PaperBenchmarks() {
		if strings.HasPrefix(n, "gen/") {
			t.Errorf("generated workload %s leaked into PaperBenchmarks", n)
		}
	}

	rep, err := lab.RunCampaign(ctx, names, []Target{TargetP})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("campaign covered %d benchmarks, want 2", len(rep.Benchmarks))
	}
	for _, cb := range rep.Benchmarks {
		if cb.Baseline == nil || len(cb.Runs) != 1 {
			t.Errorf("%s: incomplete campaign entry", cb.Name)
		}
	}
}

// TestGenLabSweepWorkloadAxis crosses a generator-knob axis with a config
// axis through the public Lab and verifies the per-stage reuse probe: the
// idle axis must not rebuild any functional stage of either workload.
func TestGenLabSweepWorkloadAxis(t *testing.T) {
	ctx := context.Background()
	lab := New()
	grid := Grid{
		Workloads: GenAxis(WorkloadSpec{Family: FamilyBlockedStream, Seed: 305, WorkingSet: 1 << 13},
			GenPoint{Label: "d=4", Mutate: func(s *WorkloadSpec) { s.Depth = 4 }},
			GenPoint{Label: "d=8", Mutate: func(s *WorkloadSpec) { s.Depth = 8 }},
		),
		Axes:    []Axis{GridAxis(SweepIdleFactor)},
		Targets: []Target{TargetP},
	}
	rep, err := lab.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(rep.Points))
	}
	if n := lab.StagePrepares(StageTrace); n != 2 {
		t.Errorf("idle sweep traced %d times, want once per workload (2)", n)
	}
	if n := lab.StagePrepares(StageSlices); n != 2 {
		t.Errorf("idle sweep sliced %d times, want once per workload (2)", n)
	}
	if got := rep.Render(); !strings.Contains(got, "d=4") || !strings.Contains(got, "d=8") {
		t.Errorf("rendered sweep missing workload labels:\n%s", got)
	}
}

// TestGenParseWorkloadSpec covers the public spec-grammar entry point.
func TestGenParseWorkloadSpec(t *testing.T) {
	s, err := ParseWorkloadSpec("tree-walk:12:depth=100")
	if err != nil {
		t.Fatal(err)
	}
	if s.Family != FamilyTreeWalk || s.Seed != 12 || s.Depth != 100 {
		t.Errorf("parsed %+v", s)
	}
	if _, err := ParseWorkloadSpec("tree-walk"); err == nil {
		t.Error("seedless spec accepted")
	}
	if len(WorkloadFamilies()) != 5 {
		t.Errorf("families = %v", WorkloadFamilies())
	}
}
