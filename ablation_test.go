// Ablation benchmarks for the design decisions DESIGN.md calls out: each
// switches one mechanism off and reports the consequence, quantifying why
// the mechanism exists.
package preexec

import (
	"context"
	"testing"

	"repro/internal/critpath"
	"repro/internal/experiments"
	"repro/internal/program"
	"repro/internal/pthsel"
)

// BenchmarkAblationStridePrefetcher compares baseline L2 misses with and
// without the conventional stride prefetcher. Without it, streaming loads
// masquerade as problem loads and pre-execution's value is inflated — the
// reason the substrate includes one (the paper's "defies address
// prediction" premise).
func BenchmarkAblationStridePrefetcher(b *testing.B) {
	withCfg := experiments.DefaultConfig()
	withoutCfg := experiments.DefaultConfig()
	withoutCfg.CPU.Hier.StrideEntries = 0
	var withMisses, withoutMisses int64
	for i := 0; i < b.N; i++ {
		pw, err := experiments.Prepare(context.Background(), "bzip2", program.Train, withCfg)
		if err != nil {
			b.Fatal(err)
		}
		po, err := experiments.Prepare(context.Background(), "bzip2", program.Train, withoutCfg)
		if err != nil {
			b.Fatal(err)
		}
		withMisses, withoutMisses = pw.Baseline.DemandL2Misses, po.Baseline.DemandL2Misses
	}
	b.ReportMetric(float64(withMisses), "L2miss-with-pref")
	b.ReportMetric(float64(withoutMisses), "L2miss-without-pref")
}

// BenchmarkAblationInteractionCost compares L-target selection driven by
// the paper's averaged (pessimistic+optimistic) cost curves against the
// flat cycle-for-cycle model (which is exactly TargetO), on a benchmark
// with heavily overlapped misses.
func BenchmarkAblationInteractionCost(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var flat, crit *experiments.TargetRun
	for i := 0; i < b.N; i++ {
		prep, err := experiments.Prepare(context.Background(), "twolf", program.Train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if flat, err = experiments.RunTarget(context.Background(), prep, prep, pthsel.TargetO, cfg); err != nil {
			b.Fatal(err)
		}
		if crit, err = experiments.RunTarget(context.Background(), prep, prep, pthsel.TargetL, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(flat.SpeedupPct, "%ipc-flat-cost")
	b.ReportMetric(crit.SpeedupPct, "%ipc-criticality")
	b.ReportMetric(flat.Sel.PredLADV/crit.Sel.PredLADV, "flat-overprediction-x")
}

// BenchmarkAblationBusEdges quantifies the memory-bus bandwidth edges in
// the critical-path model: without them the model over-estimates the
// benefit of tolerating one load's latency in a bandwidth-bound region.
func BenchmarkAblationBusEdges(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var withBus, withoutBus float64
	for i := 0; i < b.N; i++ {
		prep, err := experiments.Prepare(context.Background(), "vortex", program.Train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cpCfg := critpath.DefaultConfig(cfg.CPU.Hier)
		aWith := critpath.New(prep.Trace, prep.Prof, cpCfg)
		cpCfg.BusOcc = 0
		aWithout := critpath.New(prep.Trace, prep.Prof, cpCfg)
		var pc int32 = -1
		for k := range prep.Curves {
			pc = k
			break
		}
		if pc < 0 {
			b.Fatal("no problem loads")
		}
		withBus = aWith.CostCurve(pc).Gain[3]
		withoutBus = aWithout.CostCurve(pc).Gain[3]
	}
	b.ReportMetric(withBus, "per-miss-gain-with-bus")
	b.ReportMetric(withoutBus, "per-miss-gain-no-bus")
}

// BenchmarkAblationMerging compares spawn counts with the trigger-merging
// post-pass against disabling it by re-running selection per tree (every
// vpr.route neighbour gets its own p-thread without merging).
func BenchmarkAblationMerging(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var merged int
	var targets int
	for i := 0; i < b.N; i++ {
		prep, err := experiments.Prepare(context.Background(), "vpr.route", program.Train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sel := pthsel.Select(prep.Trace, prep.Prof, prep.Trees, prep.Params, pthsel.TargetL)
		merged = len(sel.PThreads)
		targets = 0
		for _, pt := range sel.PThreads {
			targets += len(pt.Targets)
		}
	}
	b.ReportMetric(float64(merged), "pthreads-after-merge")
	b.ReportMetric(float64(targets), "targets-covered")
}
