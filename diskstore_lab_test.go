package preexec

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// spillableLabStages are the pipeline stages the disk tier persists —
// everything except the final assembly stage, which is cheap to rebuild
// from its decoded parts.
func spillableLabStages() []Stage {
	var out []Stage
	for _, st := range Stages() {
		if st != StagePrepared {
			out = append(out, st)
		}
	}
	return out
}

// TestWithDiskStoreWarmRestart drives the public façade end to end: a Lab
// with a disk store prepares a benchmark cold, then a second Lab pointed at
// the same directory satisfies every heavy stage from disk — zero cold
// builds — which is the restart-warm guarantee the daemon relies on.
func TestWithDiskStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold := New(WithDiskStore(dir, 0))
	if err := cold.DiskStoreErr(); err != nil {
		t.Fatalf("DiskStoreErr: %v", err)
	}
	if _, err := cold.AnalyzeBenchmark(ctx, "gap"); err != nil {
		t.Fatalf("cold AnalyzeBenchmark: %v", err)
	}
	stats := cold.StoreStats()
	for _, st := range spillableLabStages() {
		if got := stats.Stages[st].Cold; got != 1 {
			t.Errorf("cold lab: stage %s Cold = %d, want 1", st, got)
		}
		if got := stats.Stages[st].SpillLoads; got != 0 {
			t.Errorf("cold lab: stage %s SpillLoads = %d, want 0", st, got)
		}
	}
	if stats.Disk == nil {
		t.Fatal("cold lab: StoreStats().Disk is nil with a disk store attached")
	}
	if want := int64(len(spillableLabStages())); stats.Disk.Saves != want {
		t.Errorf("cold lab: Disk.Saves = %d, want %d", stats.Disk.Saves, want)
	}

	warm := New(WithDiskStore(dir, 0))
	if err := warm.DiskStoreErr(); err != nil {
		t.Fatalf("warm DiskStoreErr: %v", err)
	}
	if _, err := warm.AnalyzeBenchmark(ctx, "gap"); err != nil {
		t.Fatalf("warm AnalyzeBenchmark: %v", err)
	}
	wstats := warm.StoreStats()
	for _, st := range spillableLabStages() {
		if got := wstats.Stages[st].Cold; got != 0 {
			t.Errorf("warm lab: stage %s Cold = %d, want 0", st, got)
		}
		if got := wstats.Stages[st].SpillLoads; got != 1 {
			t.Errorf("warm lab: stage %s SpillLoads = %d, want 1", st, got)
		}
	}

	// A second request on the warm Lab is an in-memory hit, not another
	// disk load.
	if _, err := warm.AnalyzeBenchmark(ctx, "gap"); err != nil {
		t.Fatalf("warm AnalyzeBenchmark (2nd): %v", err)
	}
	wstats = warm.StoreStats()
	for _, st := range spillableLabStages() {
		if got := wstats.Stages[st].SpillLoads; got != 1 {
			t.Errorf("warm lab after hit: stage %s SpillLoads = %d, want 1", st, got)
		}
	}
}

// TestWithDiskStoreBadDirDegrades pins the failure mode: a store directory
// that cannot be created surfaces through DiskStoreErr, but the Lab still
// works — preparations are simply uncached.
func TestWithDiskStoreBadDirDegrades(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	lab := New(WithDiskStore(filepath.Join(blocker, "store"), 0))
	if lab.DiskStoreErr() == nil {
		t.Fatal("DiskStoreErr = nil, want error for unusable directory")
	}
	if _, err := lab.AnalyzeBenchmark(context.Background(), "gap"); err != nil {
		t.Fatalf("AnalyzeBenchmark without disk store: %v", err)
	}
	if lab.StoreStats().Disk != nil {
		t.Error("StoreStats().Disk non-nil after failed disk attach")
	}
}
